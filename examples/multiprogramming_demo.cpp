// Multiprogramming under heavy occupancy: every node of the grid is busy
// with batch work, yet an interactive job in shared mode starts within
// seconds on a glide-in agent's interactive-vm, demoting the co-resident
// batch job per its PerformanceLoss (the paper's Section 5.2 / Figure 5
// scenario 4).
//
//   $ ./multiprogramming_demo
#include <iostream>

#include "grid/grid.hpp"
#include "util/stats.hpp"

using namespace cg;
using namespace cg::literals;

int main() {
  GridConfig config;
  config.sites = 2;
  config.nodes_per_site = 2;
  config.broker.dismiss_idle_agents = false;
  Grid grid{config};

  // Phase 1: fill the whole grid with batch jobs submitted through the
  // facade. Each lands inside a glide-in agent's batch-vm, so every node
  // also exports a free interactive-vm.
  auto batch = jdl::JobDescription::parse("Executable = \"lhc_reco\";").value();
  int batch_running = 0;
  for (int i = 0; i < 4; ++i) {
    broker::JobCallbacks callbacks;
    callbacks.on_running = [&](const broker::JobRecord&) { ++batch_running; };
    if (!grid.submit(batch, UserId{1}, lrms::Workload::cpu(3600_s * 2),
                     callbacks)) {
      std::cerr << "batch submission refused\n";
      return 1;
    }
  }
  grid.sim().run_until(SimTime::from_seconds(120));
  std::cout << "t=120s: " << batch_running << "/4 batch jobs running, "
            << grid.broker().agents().running_agents()
            << " glide-in agents up, free interactive VMs everywhere\n";

  // Phase 2: an interactive job arrives. Exclusive mode fails (no idle
  // machine); shared mode starts on a VM immediately. The exclusive refusal
  // surfaces asynchronously, classified by await() as a typed no-match.
  auto exclusive = jdl::JobDescription::parse(
      "Executable = \"viz\"; JobType = \"interactive\"; "
      "MachineAccess = \"exclusive\";").value();
  auto exclusive_job =
      grid.submit(exclusive, UserId{2}, lrms::Workload::cpu(60_s));
  if (!exclusive_job) {
    std::cerr << "exclusive submission refused up front\n";
    return 1;
  }
  auto exclusive_result = exclusive_job->await();
  if (!exclusive_result) {
    std::cout << "exclusive-mode submission failed as expected: "
              << to_string(exclusive_result.error().kind) << " ("
              << exclusive_result.error().cause.code << ")\n";
  }
  grid.sim().run_until(SimTime::from_seconds(300));

  auto shared = jdl::JobDescription::parse(
      "Executable = \"viz\"; JobType = \"interactive\"; "
      "MachineAccess = \"shared\"; PerformanceLoss = 25;").value();
  const SimTime submitted_at = grid.now();
  broker::JobCallbacks shared_callbacks;
  RunningStats cpu_bursts;
  shared_callbacks.on_running = [&](const broker::JobRecord& record) {
    std::cout << "shared-mode interactive job RUNNING "
              << fmt_fixed((grid.now() - submitted_at).to_seconds(), 2)
              << "s after submission (placement: "
              << to_string(record.placement) << ")\n";
  };
  shared_callbacks.phase_observer = [&](const lrms::Phase& phase,
                                        Duration measured) {
    if (phase.kind == lrms::PhaseKind::kCpu) {
      cpu_bursts.add(measured.to_seconds());
    }
  };
  auto shared_job = grid.submit(shared, UserId{2},
                                lrms::Workload::iterative(50, 6_ms, 921_ms),
                                shared_callbacks);
  if (!shared_job) {
    std::cerr << "shared submission refused\n";
    return 1;
  }
  if (!shared_job->await()) {
    std::cout << "interactive job did not finish!\n";
    return 1;
  }
  std::cout << "interactive job finished; mean CPU burst "
            << fmt_fixed(cpu_bursts.mean(), 3) << "s vs 0.921s reference ("
            << fmt_fixed((cpu_bursts.mean() / 0.921 - 1.0) * 100.0, 1)
            << "% overhead at PerformanceLoss=25; paper: ~22%)\n";
  std::cout << "batch jobs survived throughout: " << batch_running
            << "/4 still accounted for\n";
  // The glide-in layer counted the demotion and the applied PerformanceLoss.
  const auto snapshot = grid.metrics_snapshot();
  std::cout << "glidein.batch_demotions = "
            << snapshot.total("glidein.batch_demotions") << "\n";
  return 0;
}
