#include "broker/crossbroker.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "gsi/auth.hpp"
#include "lrms/site.hpp"
#include "mpijob/mpi_job.hpp"
#include "net/control_bus.hpp"
#include "util/log.hpp"

namespace cg::broker {

namespace {
constexpr const char* kLog = "broker";

/// Control-plane exchanges that today happen as direct calls: zero-latency
/// sends delivered synchronously so the event schedule (and the pinned chaos
/// goldens) is unchanged, while the exchange still flows through the bus for
/// sequencing, fault injection, and per-type observability.
net::SendOptions inline_send() {
  net::SendOptions options;
  options.inline_when_immediate = true;
  return options;
}
}  // namespace

CrossBroker::CrossBroker(sim::Simulation& sim, net::ControlBus& bus,
                         infosys::InformationSystem& infosys,
                         CrossBrokerConfig config, std::string endpoint)
    : sim_{sim},
      bus_{bus},
      infosys_{infosys},
      config_{config},
      endpoint_{std::move(endpoint)},
      rng_{config.seed},
      matchmaker_{config.matchmaker},
      leases_{sim},
      fair_share_{sim, config.fair_share},
      agents_{sim},
      site_health_{sim, config.site_health} {
  fair_share_.start();
  // Suspicion-aware placement: every matchmaking pass consults the health
  // scores, and the free-CPU index prunes hard-excluded sites from matching
  // queries using the decay-only projection to delivery time (the pruned
  // and unpruned discovery paths stay decision-identical; see SiteHealth).
  matchmaker_.set_site_health(&site_health_);
  // The horizon + epoch feeds let the index cache matching replies: the
  // excluded-site set is provably unchanged while no site entered exclusion
  // (epoch) and no pruned site could have decayed out (horizon).
  infosys_.set_health_provider(
      [this](SiteId site, SimTime delivery_time) {
        return site_health_.hard_excluded_at(site, delivery_time);
      },
      [this](SiteId site, SimTime delivery_time) {
        return site_health_.exclusion_ends_after(site, delivery_time);
      },
      [this] { return site_health_.exclusion_epoch(); });
  // Keep the information system's free-CPU index lease-aware: every
  // acquire/release/expiry adjusts the indexed effective count, so the
  // fast-path discovery prunes against live lease state.
  leases_.set_observer([this](SiteId site, int cpu_delta) {
    infosys_.apply_lease_delta(site, cpu_delta);
  });
  // Machine-ad cache invalidations (republish, unregister, lease deltas)
  // surface as a counter; no-op until observability is attached. This fires
  // on every publication and lease delta, so it dispatches to pre-bound
  // per-reason handles instead of building a label set per event.
  infosys_.set_invalidation_listener([this](SiteId, const char* reason) {
    if (std::strcmp(reason, "lease") == 0) {
      metrics_.invalidations_lease.inc();
    } else if (std::strcmp(reason, "republish") == 0) {
      metrics_.invalidations_republish.inc();
    } else {
      metrics_.invalidations_unregister.inc();
    }
  });
  bus_.bind(endpoint_,
            [this](const net::Envelope& envelope) { handle_bus_message(envelope); });
  if (config_.enable_agent_heartbeats) {
    sim_.schedule_daemon(config_.agent_heartbeat_interval,
                         [this] { heartbeat_tick(); });
  }
  if (config_.enable_liveness_probes) {
    sim_.schedule_daemon(config_.liveness_probe_interval,
                         [this] { liveness_tick(); });
  }
}

CrossBroker::~CrossBroker() {
  // The bus and information system outlive the broker; drop the callbacks
  // that capture `this`.
  bus_.unbind(endpoint_);
  infosys_.set_invalidation_listener(nullptr);
  infosys_.set_health_provider(nullptr);
}

void CrossBroker::handle_bus_message(const net::Envelope& envelope) {
  if (const auto* reg = std::get_if<net::AgentRegister>(&envelope.payload)) {
    handle_agent_register(reg->agent);
  } else if (const auto* echo = std::get_if<net::LivenessEcho>(&envelope.payload)) {
    on_liveness_echo(echo->agent, echo->seq);
  }
  // Every other type is outbound-only from the broker's perspective.
}

void CrossBroker::handle_agent_register(AgentId agent_id) {
  auto it = agent_info_.find(agent_id);
  if (it == agent_info_.end()) return;
  AgentInfo& info = it->second;
  supervise_agent(info);
  if (info.on_ready) {
    auto ready = std::move(info.on_ready);
    info.on_ready = nullptr;
    ready(info);
  }
}

void CrossBroker::enable_security(const gsi::Certificate* trust_anchor,
                                  std::vector<gsi::Credential> broker_credentials) {
  if (trust_anchor == nullptr) {
    throw std::invalid_argument{"enable_security: null anchor"};
  }
  trust_anchor_ = trust_anchor;
  broker_credentials_ = std::move(broker_credentials);
  for (auto& [id, site] : sites_) {
    site->gatekeeper().set_trust_anchor(trust_anchor_);
  }
}

void CrossBroker::set_user_credentials(UserId user,
                                       std::vector<gsi::Credential> ancestry) {
  if (!user.valid() || ancestry.empty()) {
    throw std::invalid_argument{"set_user_credentials: invalid input"};
  }
  user_credentials_.insert_or_assign(user, std::move(ancestry));
}

Status CrossBroker::check_user_security(UserId user) const {
  if (trust_anchor_ == nullptr) return Status::ok_status();
  const auto it = user_credentials_.find(user);
  if (it == user_credentials_.end()) {
    return make_error("gsi.no_credentials",
                      "user has no registered credentials");
  }
  return gsi::verify_chain(gsi::make_chain(it->second), *trust_anchor_,
                           sim_.now());
}

std::optional<gsi::CertificateChain> CrossBroker::chain_for(UserId user) const {
  if (trust_anchor_ == nullptr) return std::nullopt;
  const auto it = user_credentials_.find(user);
  if (it == user_credentials_.end()) return std::nullopt;
  return gsi::make_chain(it->second);
}

void CrossBroker::add_site(lrms::Site& site) {
  sites_.insert_or_assign(site.id(), &site);
  if (trust_anchor_ != nullptr) {
    site.gatekeeper().set_trust_anchor(trust_anchor_);
  }
  const SiteId site_id = site.id();
  site.scheduler().set_kill_observer([this, site_id](JobId job, NodeId node) {
    on_site_job_killed(site_id, job, node);
  });
  site.set_interactive_vm_counter(
      [this, site_id] { return advertised_interactive_vms(site_id); });
  int total = 0;
  for (const auto& [id, s] : sites_) total += s->config().worker_nodes;
  fair_share_.set_total_resources(std::max(total, 1));
}

Expected<JobId, SubmitError> CrossBroker::submit(jdl::JobDescription description,
                                                 UserId user,
                                                 lrms::Workload workload,
                                                 std::string submitter_endpoint,
                                                 JobCallbacks callbacks) {
  if (!user.valid()) {
    return make_submit_error(SubmitErrorKind::kBadDescription,
                             "broker.invalid_user",
                             "submission needs a valid user id");
  }
  if (description.node_number() < 1) {
    return make_submit_error(SubmitErrorKind::kBadDescription,
                             "broker.bad_description",
                             "NodeNumber must be at least 1");
  }
  // GSI pre-flight at the UI: a user without a valid proxy is refused before
  // the job enters the pipeline. (schedule_job re-checks for resubmissions,
  // where the proxy may have expired in the meantime.)
  const Status security = check_user_security(user);
  if (!security.ok()) return classify_submit_error(security.error());
  const JobId id = job_ids_.next();
  auto managed = std::make_unique<ManagedJob>();
  managed->record.id = id;
  managed->record.user = user;
  managed->record.description = std::move(description);
  managed->record.workload = std::move(workload);
  managed->record.submitter_endpoint = std::move(submitter_endpoint);
  managed->record.timestamps.submitted = sim_.now();
  managed->callbacks = std::move(callbacks);
  jobs_.emplace(id, std::move(managed));
  const auto& desc = jobs_[id]->record.description;
  const obs::LabelSet job_labels{
      {"type", std::string{jdl::to_string(desc.category())}},
      {"flavor", std::string{jdl::to_string(desc.flavor())}}};
  trace(id, "submitted",
        jdl::to_string(desc.category()) + " " + jdl::to_string(desc.flavor()) +
            " x" + std::to_string(desc.node_number()));
  tracev(id, obs::TraceEventKind::kSubmitted,
         jdl::to_string(desc.category()) + " " + jdl::to_string(desc.flavor()) +
             " x" + std::to_string(desc.node_number()),
         obs::LabelSet{{"user", std::to_string(user.value())},
                       {"type", std::string{jdl::to_string(desc.category())}}});
  count("broker.jobs_submitted", job_labels);
  log_info(kLog, "submitted ", id, " (", jdl::to_string(desc.category()), ", ",
           jdl::to_string(desc.flavor()), ")");
  sim_.schedule(Duration::zero(), [this, id] { schedule_job(id); });
  return id;
}

bool CrossBroker::cancel(JobId id) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || is_terminal(job->record.state)) return false;
  log_info(kLog, "cancelling ", id, " (state ", to_string(job->record.state), ")");

  // Terminal-ize first: every in-flight callback (kill observers, commit
  // acks, agent readiness) checks the state and becomes a no-op.
  release_leases(*job);
  fair_share_.job_finished(id);
  job->record.last_error = make_error("broker.cancelled", "cancelled by user");
  job->record.state = JobState::kFailed;

  // Out of the broker's own queue.
  waiting_batch_.erase(
      std::remove(waiting_batch_.begin(), waiting_batch_.end(), id),
      waiting_batch_.end());

  // Tear down every subjob wherever it is.
  for (auto& sub : job->record.subjobs) {
    if (sub.completed) continue;
    bool handled = false;
    if (sub.agent) {
      const auto info_it = agent_info_.find(*sub.agent);
      glidein::GlideinAgent* agent = agents_.find(*sub.agent);
      if (info_it != agent_info_.end() && agent != nullptr) {
        AgentInfo& info = info_it->second;
        lrms::Site* agent_site = find_site(info.site);
        const std::string site_dst =
            agent_site != nullptr ? agent_site->endpoint() : std::string{};
        const AgentId agent_id = *sub.agent;
        const JobId lrms_id = sub.lrms_job_id;
        std::erase(info.pending_interactive, id);
        if (info.pending_batch == id) info.pending_batch.reset();
        if (std::find(info.interactive_residents.begin(),
                      info.interactive_residents.end(),
                      id) != info.interactive_residents.end()) {
          bus_.send(endpoint_, site_dst, net::KillJob{lrms_id}, inline_send(),
                    [this, agent_id, lrms_id](const net::Envelope&) {
                      if (auto* a = agents_.find(agent_id)) {
                        a->cancel_interactive_job(lrms_id);
                      }
                    });
          std::erase(info.interactive_residents, id);
          // The batch job gets its machine (and application factor) back
          // once the last interactive resident is gone.
          if (info.batch_resident && info.interactive_residents.empty()) {
            fair_share_.set_application_factor(*info.batch_resident,
                                               application_factor_batch());
          }
          handled = true;
        }
        if (info.batch_resident == id) {
          bus_.send(endpoint_, site_dst, net::KillJob{lrms_id}, inline_send(),
                    [this, agent_id](const net::Envelope&) {
                      if (auto* a = agents_.find(agent_id)) {
                        a->cancel_slot(glidein::SlotType::kBatch);
                      }
                    });
          info.batch_resident.reset();
          handled = true;
        }
        info.ran_any_job = true;  // the slot was used; allow dismissal
        maybe_dismiss_agent(*sub.agent);
      }
    }
    if (!handled) {
      // Direct placement: remove from the site's queue or kill on the node.
      lrms::Site* site = find_site(sub.site);
      if (site != nullptr) {
        const SiteId site_id = sub.site;
        const JobId lrms_id = sub.lrms_job_id;
        bus_.send(endpoint_, site->endpoint(),
                  net::CancelJob{lrms_id, /*queued_only=*/false}, inline_send(),
                  [this, site_id, lrms_id](const net::Envelope&) {
                    if (lrms::Site* s = find_site(site_id)) {
                      s->gatekeeper().cancel(lrms_id, /*queued_only=*/false);
                    }
                  });
      }
    }
  }

  if (job->callbacks.on_state_change) job->callbacks.on_state_change(job->record);
  if (job->callbacks.on_failed) {
    job->callbacks.on_failed(job->record, *job->record.last_error);
  }
  return true;
}

void CrossBroker::preload_agent(SiteId site) {
  if (!sites_.contains(site)) throw std::invalid_argument{"preload_agent: unknown site"};
  create_agent_with_carrier(
      site, [](AgentInfo&) {},
      [] { log_warn(kLog, "preloaded agent submission failed"); });
}

const JobRecord* CrossBroker::record(JobId id) const {
  const auto it = jobs_.find(id);
  return it != jobs_.end() ? &it->second->record : nullptr;
}

std::vector<const JobRecord*> CrossBroker::all_records() const {
  std::vector<const JobRecord*> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(&job->record);
  return out;
}

CrossBroker::ManagedJob* CrossBroker::find_job(JobId id) {
  const auto it = jobs_.find(id);
  return it != jobs_.end() ? it->second.get() : nullptr;
}

lrms::Site* CrossBroker::find_site(SiteId id) {
  const auto it = sites_.find(id);
  return it != sites_.end() ? it->second : nullptr;
}

int CrossBroker::needed_cpus_per_site(const jdl::JobDescription& desc) const {
  // MPICH-P4 cannot span sites; MPICH-G2 subjobs need only one CPU each.
  if (desc.flavor() == jdl::JobFlavor::kMpichP4) return desc.node_number();
  return 1;
}

double CrossBroker::application_factor(const ManagedJob& job) const {
  if (job.record.description.is_interactive()) {
    return application_factor_interactive(job.record.description.performance_loss());
  }
  return application_factor_batch();
}

void CrossBroker::trace(JobId job, const std::string& kind,
                        const std::string& detail) {
  if (trace_ != nullptr) trace_->record(sim_.now(), job, kind, detail);
}

void CrossBroker::tracev(JobId job, obs::TraceEventKind kind, std::string detail,
                         obs::LabelSet attrs) {
  if (obs_ != nullptr) {
    obs_->tracer.record(sim_.now(), job, kind, std::move(detail),
                        std::move(attrs));
  }
}

void CrossBroker::count(const char* name, obs::LabelSet labels,
                        std::uint64_t by) {
  if (obs_ != nullptr) obs_->metrics.counter(name, std::move(labels)).inc(by);
}

void CrossBroker::observe(const char* name, double value, obs::LabelSet labels) {
  if (obs_ != nullptr) {
    obs_->metrics.histogram(name, std::move(labels)).observe(value);
  }
}

void CrossBroker::set_observability(obs::Observability* obs) {
  obs_ = obs;
  bus_.set_observability(obs);
  matchmaker_.set_metrics(obs != nullptr ? &obs->metrics : nullptr);
  site_health_.set_metrics(obs != nullptr ? &obs->metrics : nullptr);
  // Re-bind every pre-resolved handle against the new registry (or drop them
  // all: default-constructed handles are inert no-ops).
  metrics_ = BrokerMetrics{};
  if (obs == nullptr) return;
  obs::MetricsRegistry& m = obs->metrics;
  metrics_.invalidations_republish = m.counter_handle(
      "broker.match.cache_invalidations", obs::LabelSet{{"reason", "republish"}});
  metrics_.invalidations_unregister = m.counter_handle(
      "broker.match.cache_invalidations", obs::LabelSet{{"reason", "unregister"}});
  metrics_.invalidations_lease = m.counter_handle(
      "broker.match.cache_invalidations", obs::LabelSet{{"reason", "lease"}});
  metrics_.leases_acquired = m.counter_handle("broker.leases_acquired");
  metrics_.lease_revocations = m.counter_handle("broker.lease_revocations");
  metrics_.liveness_probes = m.counter_handle("broker.liveness_probes");
  for (std::size_t i = 0; i < metrics_.match_latency.size(); ++i) {
    metrics_.match_latency[i] = m.histogram_handle(
        "broker.match_latency_s",
        obs::LabelSet{
            {"placement", to_string(static_cast<PlacementKind>(i))}});
  }
}

obs::CounterHandle& CrossBroker::per_site_counter(
    std::map<SiteId, obs::CounterHandle>& cache, const char* name, SiteId site) {
  const auto it = cache.find(site);
  if (it != cache.end()) return it->second;
  obs::CounterHandle handle;
  if (obs_ != nullptr) {
    handle = obs_->metrics.counter_handle(
        name, obs::LabelSet{{"site", std::to_string(site.value())}});
  }
  return cache.emplace(site, std::move(handle)).first->second;
}

namespace {
obs::TraceEventKind trace_kind_for(JobState state) {
  switch (state) {
    case JobState::kSubmitted: return obs::TraceEventKind::kSubmitted;
    case JobState::kDiscovery: return obs::TraceEventKind::kDiscovery;
    case JobState::kSelection: return obs::TraceEventKind::kSelection;
    case JobState::kDispatching: return obs::TraceEventKind::kDispatched;
    case JobState::kQueuedLocal: return obs::TraceEventKind::kQueuedLocal;
    case JobState::kQueuedBroker: return obs::TraceEventKind::kQueuedBroker;
    case JobState::kRunning: return obs::TraceEventKind::kRunning;
    case JobState::kCompleted: return obs::TraceEventKind::kCompleted;
    case JobState::kFailed: return obs::TraceEventKind::kFailed;
    case JobState::kRejected: return obs::TraceEventKind::kRejected;
  }
  return obs::TraceEventKind::kInfo;
}
}  // namespace

void CrossBroker::set_state(ManagedJob& job, JobState state) {
  if (job.record.state == state) return;
  job.record.state = state;
  trace(job.record.id, "state", to_string(state));
  tracev(job.record.id, trace_kind_for(state), to_string(state));
  if (obs_ != nullptr) {
    obs_->metrics.gauge("broker.queue_depth")
        .set(static_cast<double>(waiting_batch_.size()));
  }
  if (job.callbacks.on_state_change) job.callbacks.on_state_change(job.record);
}

// ----------------------------------------------------------- scheduling ----

void CrossBroker::schedule_job(JobId id) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || is_terminal(job->record.state)) return;

  // GSI pre-flight: a user without a valid proxy never reaches the grid
  // (the UI refuses submission; here, the job fails immediately).
  const Status security = check_user_security(job->record.user);
  if (!security.ok()) {
    fail_job(id, security.error());
    return;
  }

  const auto& desc = job->record.description;
  // Shared-mode interactive jobs first look at the broker's own VM registry:
  // "the first two steps are not required ... because the information about
  // existing VMs is kept locally by CrossBroker" (Section 6.1).
  if (desc.is_interactive() &&
      desc.machine_access() == jdl::MachineAccess::kShared) {
    int free_vms = 0;
    for (auto* agent : agents_.agents()) {
      // Hard-excluded sites offer no VMs either: shared-mode placement
      // follows the same suspicion window as external matchmaking.
      if (site_health_.hard_excluded(agent->site())) continue;
      const auto info = agent_info_.find(agent->id());
      if (info == agent_info_.end()) continue;
      free_vms += info->second.reservable_slots(*agent);
    }
    if (free_vms >= desc.node_number() &&
        desc.flavor() != jdl::JobFlavor::kMpichP4) {
      sim_.schedule(config_.vm_lookup_cost, [this, id] {
        dispatch_interactive_on_vms(id);
      });
      return;
    }
    if (desc.flavor() == jdl::JobFlavor::kMpichP4) {
      // Check per-site VM availability for the single-site constraint.
      for (const auto& [site_id, site] : sites_) {
        if (site_health_.hard_excluded(site_id)) continue;
        int site_vms = 0;
        for (auto* agent : agents_.agents()) {
          if (agent->site() != site_id) continue;
          const auto info = agent_info_.find(agent->id());
          if (info == agent_info_.end()) continue;
          site_vms += info->second.reservable_slots(*agent);
        }
        if (site_vms >= desc.node_number()) {
          sim_.schedule(config_.vm_lookup_cost, [this, id] {
            dispatch_interactive_on_vms(id);
          });
          return;
        }
      }
    }
    // Fall through: no (sufficient) free VMs — search for idle machines and
    // submit agent + application together.
  }
  begin_discovery(id);
}

void CrossBroker::begin_discovery(JobId id) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || is_terminal(job->record.state)) return;
  set_state(*job, JobState::kDiscovery);
  if (config_.matchmaker.use_fast_path) {
    // The free-CPU index prunes sites that cannot possibly fit the job;
    // the pruning bound is lease-independent, so the surviving set equals
    // what the full snapshot would yield after begin_selection's filters.
    infosys_.query_index_matching(
        needed_cpus_per_site(job->record.description),
        [this, id](
            std::shared_ptr<const infosys::InformationSystem::IndexSnapshot>
                records) {
          ManagedJob* j = find_job(id);
          if (j == nullptr || is_terminal(j->record.state)) return;
          j->record.timestamps.discovery_done = sim_.now();
          begin_selection(id, std::move(records));
        });
  } else {
    infosys_.query_index([this, id](std::vector<infosys::SiteRecord> records) {
      ManagedJob* j = find_job(id);
      if (j == nullptr || is_terminal(j->record.state)) return;
      j->record.timestamps.discovery_done = sim_.now();
      begin_selection(id, std::move(records));
    });
  }
}

void CrossBroker::begin_selection(JobId id, std::vector<infosys::SiteRecord> stale) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || is_terminal(job->record.state)) return;
  set_state(*job, JobState::kSelection);

  // First filter on the (possibly stale) index data, excluding sites the job
  // already failed on.
  const int needed = needed_cpus_per_site(job->record.description);
  std::vector<infosys::SiteRecord> considered;
  for (auto& r : stale) {
    const SiteId sid = r.static_info.id;
    if (std::find(job->excluded_sites.begin(), job->excluded_sites.end(), sid) !=
        job->excluded_sites.end()) {
      continue;
    }
    if (sites_.contains(sid)) considered.push_back(std::move(r));
  }
  const bool fast = config_.matchmaker.use_fast_path;
  if (fast && job->compiled_match == nullptr) {
    job->compiled_match = matchmaker_.compile(job->record.description);
  }
  // Coarse pass on the (possibly stale) records: only the surviving site
  // ids matter here — rank is deferred to the fresh data below.
  continue_selection(
      id, matchmaker_.filter_sites(
              job->record.description,
              fast ? job->compiled_match.get() : nullptr,
              CandidateSource{considered}, leases_, needed));
}

void CrossBroker::begin_selection(
    JobId id,
    std::shared_ptr<const infosys::InformationSystem::IndexSnapshot> stale) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || is_terminal(job->record.state)) return;
  set_state(*job, JobState::kSelection);

  const int needed = needed_cpus_per_site(job->record.description);
  // Screen by raw pointer: the shared snapshot (held alive by `stale` for
  // the duration of this call) is the owner, so no shared_ptr refcount
  // traffic per considered record.
  std::vector<const infosys::SiteRecord*> considered;
  considered.reserve(stale->size());
  for (const auto& r : *stale) {
    const SiteId sid = r->static_info.id;
    if (std::find(job->excluded_sites.begin(), job->excluded_sites.end(), sid) !=
        job->excluded_sites.end()) {
      continue;
    }
    if (sites_.contains(sid)) considered.push_back(r.get());
  }
  if (job->compiled_match == nullptr) {
    job->compiled_match = matchmaker_.compile(job->record.description);
  }
  continue_selection(
      id, matchmaker_.filter_sites(job->record.description,
                                   job->compiled_match.get(),
                                   CandidateSource{considered}, leases_,
                                   needed));
}

void CrossBroker::continue_selection(JobId id, std::vector<SiteId> coarse) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || is_terminal(job->record.state)) return;
  if (coarse.empty()) {
    job->record.timestamps.selection_done = sim_.now();
    handle_no_resources(id);
    return;
  }

  // "Information may not be completely accurate and, therefore, CrossBroker
  // contacts each remote site individually and gets the most updated
  // information" (Section 6.1). Queries run concurrently; selection ends
  // when the slowest site answers.
  auto fresh = std::make_shared<std::vector<infosys::SiteRecord>>();
  auto remaining = std::make_shared<std::size_t>(coarse.size());
  for (const SiteId site : coarse) {
    infosys_.query_site(site,
                        [this, id, fresh, remaining](
                            std::optional<infosys::SiteRecord> record) {
      if (record) fresh->push_back(std::move(*record));
      if (--*remaining > 0) return;
      ManagedJob* j = find_job(id);
      if (j == nullptr || is_terminal(j->record.state)) return;
      j->record.timestamps.selection_done = sim_.now();
      const int cpus = needed_cpus_per_site(j->record.description);
      const auto& d = j->record.description;
      const bool shared_interactive =
          d.is_interactive() && d.machine_access() == jdl::MachineAccess::kShared;
      if (j->compiled_match != nullptr && !shared_interactive &&
          d.flavor() == jdl::JobFlavor::kSequential) {
        // Fast path, sequential, no VM placement possible in place_job:
        // fuse filter+select in one streaming pass. Shared-mode jobs keep
        // the two-step form because place_job may cover them with
        // interactive VMs without ever consulting the candidates (and
        // without consuming the tie-breaking rng).
        place_job(id, {},
                  matchmaker_.match_one(*j->compiled_match,
                                        CandidateSource{*fresh}, leases_, cpus,
                                        rng_));
        return;
      }
      std::vector<Candidate> final_candidates =
          j->compiled_match != nullptr
              ? matchmaker_.filter_compiled(*j->compiled_match, *fresh, leases_,
                                            cpus)
              : matchmaker_.filter(j->record.description, *fresh, leases_, cpus);
      place_job(id, std::move(final_candidates));
    });
  }
}

// ------------------------------------------------------------- placement ----

void CrossBroker::place_job(JobId id, std::vector<Candidate> candidates,
                            std::optional<Candidate> preselected) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || is_terminal(job->record.state)) return;
  const auto& desc = job->record.description;
  const int processes = desc.node_number();

  // Build per-process assignments.
  struct Assignment {
    SiteId site;
    enum class Kind { kIdle, kNewAgentInteractive, kNewAgentBatch, kVm } kind;
    AgentId vm_agent;  ///< for kVm
  };
  std::vector<Assignment> assignments;

  const bool interactive = desc.is_interactive();
  const bool shared = interactive &&
                      desc.machine_access() == jdl::MachineAccess::kShared;

  // Shared mode may combine existing free VMs with fresh agents on idle
  // machines ("it is possible to have a combination of machines with and
  // without agents for executing a parallel interactive application").
  int still_needed = processes;
  if (shared && desc.flavor() == jdl::JobFlavor::kMpichP4) {
    // MPICH-P4 cannot span sites: use VMs only if ONE site's reservable
    // slots cover the whole job; otherwise fall through to idle machines.
    for (const auto& [site_id, site] : sites_) {
      if (site_health_.hard_excluded(site_id)) continue;
      int takeable = 0;
      std::vector<std::pair<glidein::GlideinAgent*, AgentInfo*>> donors;
      for (auto* agent : agents_.agents()) {
        if (agent->site() != site_id) continue;
        const auto info = agent_info_.find(agent->id());
        if (info == agent_info_.end()) continue;
        const int slots = info->second.reservable_slots(*agent);
        if (slots > 0) {
          takeable += slots;
          donors.emplace_back(agent, &info->second);
        }
      }
      if (takeable < still_needed) continue;
      for (auto& [agent, info] : donors) {
        int slots = info->reservable_slots(*agent);
        while (slots > 0 && still_needed > 0) {
          assignments.push_back(
              Assignment{site_id, Assignment::Kind::kVm, agent->id()});
          info->pending_interactive.push_back(id);
          --slots;
          --still_needed;
        }
      }
      break;
    }
  }
  if (shared && desc.flavor() != jdl::JobFlavor::kMpichP4) {
    for (auto* agent : agents_.agents()) {
      if (still_needed == 0) break;
      if (site_health_.hard_excluded(agent->site())) continue;
      const auto info = agent_info_.find(agent->id());
      if (info == agent_info_.end()) continue;
      // With a multiprogramming degree above 1, one agent can host several
      // subjobs at once; take as many reservable slots as still needed.
      int takeable = info->second.reservable_slots(*agent);
      while (takeable > 0 && still_needed > 0) {
        assignments.push_back(
            Assignment{agent->site(), Assignment::Kind::kVm, agent->id()});
        // Reserve against concurrent placements in this event cascade.
        info->second.pending_interactive.push_back(id);
        --takeable;
        --still_needed;
      }
    }
  }

  if (still_needed > 0) {
    mpijob::AllocationPlan sequential_plan;
    Expected<mpijob::AllocationPlan> plan{sequential_plan};
    if (desc.flavor() == jdl::JobFlavor::kSequential) {
      // Sequential placement honours the job's Rank expression and the
      // randomized tie-breaking policy via the matchmaker. The fast path
      // already fused that decision into `preselected`.
      const auto site = preselected.has_value()
                            ? std::optional<SiteId>{preselected->site}
                            : matchmaker_.select(candidates, rng_);
      if (site) {
        sequential_plan.placements.push_back(mpijob::SubJobPlacement{*site, 1});
        plan = sequential_plan;
      } else {
        plan = make_error("mpijob.no_resources", "no site has a free CPU");
      }
    } else {
      std::vector<mpijob::SiteCapacity> capacity;
      capacity.reserve(candidates.size());
      for (const auto& c : candidates) {
        capacity.push_back(mpijob::SiteCapacity{c.site, c.effective_free_cpus});
      }
      // Parallel co-allocation; randomized site ordering unless disabled.
      Rng* plan_rng = config_.matchmaker.randomize_ties ? &rng_ : nullptr;
      plan = mpijob::plan_allocation(desc.flavor(), still_needed,
                                     std::move(capacity), plan_rng);
    }
    if (!plan) {
      // Roll back VM reservations; no machines for the remainder.
      for (const auto& a : assignments) {
        if (a.kind == Assignment::Kind::kVm) {
          const auto info = agent_info_.find(a.vm_agent);
          if (info != agent_info_.end()) {
            auto& pending = info->second.pending_interactive;
            const auto it = std::find(pending.begin(), pending.end(), id);
            if (it != pending.end()) pending.erase(it);
          }
        }
      }
      handle_no_resources(id);
      return;
    }
    // Exclusive temporal access: lease the matched CPUs so concurrent
    // submissions see them as taken until this dispatch resolves. A conflict
    // (another submission won the race for the same CPUs) rolls the match
    // back and routes through the no-resources path with a typed reason.
    if (config_.enable_match_leases) {
      for (const auto& placement : plan->placements) {
        lrms::Site* lease_site = find_site(placement.site);
        const int capacity =
            lease_site != nullptr ? lease_site->config().worker_nodes : -1;
        Expected<LeaseId> lease =
            leases_.acquire(placement.site, placement.processes,
                            config_.match_lease_ttl, capacity);
        if (!lease) {
          job->record.last_error = lease.error();
          trace(id, "lease", "conflict at site " +
                                 std::to_string(placement.site.value()) + ": " +
                                 lease.error().message);
          tracev(id, obs::TraceEventKind::kLeaseRevoked, lease.error().message,
                 obs::LabelSet{{"site", std::to_string(placement.site.value())}});
          count("broker.lease_conflicts",
                obs::LabelSet{{"site", std::to_string(placement.site.value())}});
          for (const auto& a : assignments) {
            if (a.kind == Assignment::Kind::kVm) {
              const auto info = agent_info_.find(a.vm_agent);
              if (info != agent_info_.end()) {
                std::erase(info->second.pending_interactive, id);
              }
            }
          }
          handle_no_resources(id);
          return;
        }
        job->held_leases.push_back(*lease);
        tracev(id, obs::TraceEventKind::kLeaseAcquired,
               std::to_string(placement.processes) + " cpus at site " +
                   std::to_string(placement.site.value()),
               obs::LabelSet{{"site", std::to_string(placement.site.value())}});
        metrics_.leases_acquired.inc();
      }
    }
    for (const auto& placement : plan->placements) {
      for (int i = 0; i < placement.processes; ++i) {
        Assignment::Kind kind = Assignment::Kind::kIdle;
        if (!interactive) {
          kind = Assignment::Kind::kNewAgentBatch;
        } else if (shared) {
          kind = Assignment::Kind::kNewAgentInteractive;
        }
        assignments.push_back(Assignment{placement.site, kind, AgentId::none()});
      }
    }
  }

  // Materialize subjob records and dispatch.
  set_state(*job, JobState::kDispatching);
  job->record.timestamps.dispatched = sim_.now();
  job->record.subjobs.clear();
  job->record.subjobs.reserve(assignments.size());
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    SubJobRecord sub;
    sub.id = subjob_ids_.next();
    sub.rank = static_cast<int>(i);
    sub.site = assignments[i].site;
    sub.lrms_job_id = job_ids_.next();
    if (assignments[i].kind == Assignment::Kind::kVm) {
      sub.agent = assignments[i].vm_agent;
    }
    job->record.subjobs.push_back(sub);
  }
  switch (desc.category()) {
    case jdl::JobCategory::kBatch:
      job->record.placement = PlacementKind::kNewAgent;
      break;
    case jdl::JobCategory::kInteractive:
      if (!shared) {
        job->record.placement = PlacementKind::kIdleMachine;
      } else if (still_needed == 0) {
        job->record.placement = PlacementKind::kInteractiveVm;
      } else {
        job->record.placement = PlacementKind::kNewAgent;
      }
      break;
  }

  setup_barrier_coordination(*job);
  // Match latency: submission to the end of resource selection, labelled by
  // how the job was placed (Table 1's scheduling-overhead breakdown).
  metrics_
      .match_latency[static_cast<std::size_t>(job->record.placement)]
      .observe((job->record.timestamps.selection_done.value_or(sim_.now()) -
                job->record.timestamps.submitted)
                   .to_seconds());
  for (const auto& sub : job->record.subjobs) {
    trace(id, "match",
          "rank " + std::to_string(sub.rank) + " -> site " +
              std::to_string(sub.site.value()) +
              (sub.agent ? " (interactive-vm)" : ""));
    tracev(id, obs::TraceEventKind::kMatched,
           "rank " + std::to_string(sub.rank) + " -> site " +
               std::to_string(sub.site.value()),
           obs::LabelSet{{"site", std::to_string(sub.site.value())},
                         {"rank", std::to_string(sub.rank)},
                         {"placement", to_string(job->record.placement)}});
  }
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    switch (assignments[i].kind) {
      case Assignment::Kind::kVm: {
        glidein::GlideinAgent* agent = agents_.find(assignments[i].vm_agent);
        if (agent == nullptr) {
          fail_job(id, make_error("broker.vm_gone", "reserved VM disappeared"));
          return;
        }
        dispatch_subjob_to_vm(id, i, *agent);
        break;
      }
      case Assignment::Kind::kIdle:
        dispatch_subjob_exclusive(id, i, assignments[i].site);
        break;
      case Assignment::Kind::kNewAgentInteractive:
        dispatch_subjob_with_new_agent(id, i, assignments[i].site, true);
        break;
      case Assignment::Kind::kNewAgentBatch:
        dispatch_subjob_with_new_agent(id, i, assignments[i].site, false);
        break;
    }
  }
}

void CrossBroker::setup_barrier_coordination(ManagedJob& job) {
  job.barrier_coordinator.reset();
  if (job.record.subjobs.size() < 2) return;
  if (job.record.workload.barrier_count() == 0) return;
  const JobId id = job.record.id;
  job.barrier_coordinator = std::make_unique<mpijob::RuntimeBarrierCoordinator>(
      static_cast<int>(job.record.subjobs.size()), [this, id](int) {
        ManagedJob* j = find_job(id);
        if (j == nullptr) return;
        // Release every rank wherever it runs (VM slot or bare node).
        for (const auto& sub : j->record.subjobs) {
          if (sub.agent) {
            glidein::GlideinAgent* agent = agents_.find(*sub.agent);
            if (agent != nullptr) agent->release_barrier(sub.lrms_job_id);
          } else {
            lrms::Site* site = find_site(sub.site);
            if (site != nullptr) {
              site->scheduler().release_barrier(sub.lrms_job_id);
            }
          }
        }
      });
}

lrms::TaskRunner::BarrierFn CrossBroker::barrier_handler_for(JobId id, int rank) {
  return [this, id, rank](int barrier_index) {
    ManagedJob* job = find_job(id);
    if (job != nullptr && job->barrier_coordinator) {
      job->barrier_coordinator->arrived(rank, barrier_index);
    }
  };
}

void CrossBroker::dispatch_interactive_on_vms(JobId id) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || is_terminal(job->record.state)) return;
  // Combined discovery+selection happened locally against the VM registry.
  job->record.timestamps.discovery_done = sim_.now();
  job->record.timestamps.selection_done = sim_.now();
  place_job(id, {});  // no external candidates needed: VMs cover the job
}

void CrossBroker::handle_no_resources(JobId id) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || is_terminal(job->record.state)) return;
  release_leases(*job);

  // Fair-share rejection under contention (Section 5.1): users whose
  // priority has degraded past the threshold do not get to queue or retry.
  if (config_.reject_priority_threshold > 0.0 &&
      fair_share_.priority(job->record.user) > config_.reject_priority_threshold) {
    reject_job(id, make_error("broker.fair_share",
                              "user priority exceeds rejection threshold"));
    return;
  }

  if (job->record.description.is_interactive()) {
    // "If there are not enough machines (with or without agents) to execute
    // an interactive application, its submission will fail." A lease conflict
    // keeps its typed reason so callers can distinguish losing the race from
    // an empty grid.
    Error reason = make_error("broker.no_resources",
                              "no machines available for interactive job");
    if (job->record.last_error &&
        job->record.last_error->code == "broker.lease_conflict") {
      reason = *job->record.last_error;
    }
    fail_job(id, reason);
    return;
  }
  // Batch jobs wait inside the broker for a machine to become idle. Site
  // exclusions are tactical — they steer the *immediate* resubmission away
  // from a site that just failed the job — not a permanent ban: once the job
  // has to wait anyway they are stale knowledge, and keeping them can leave
  // every site excluded so no poll could ever match (a livelock after
  // repeated evictions on a small grid).
  job->excluded_sites.clear();
  set_state(*job, JobState::kQueuedBroker);
  if (std::find(waiting_batch_.begin(), waiting_batch_.end(), id) ==
      waiting_batch_.end()) {
    waiting_batch_.push_back(id);
  }
  if (!queue_poll_armed_) {
    queue_poll_armed_ = true;
    sim_.schedule(config_.broker_queue_poll, [this] { poll_broker_queue(); });
  }
}

void CrossBroker::poll_broker_queue() {
  queue_poll_armed_ = false;
  if (waiting_batch_.empty()) return;
  // Serve the best-priority users first (unless configured as plain FIFO).
  std::vector<JobId> batch{waiting_batch_.begin(), waiting_batch_.end()};
  waiting_batch_.clear();
  if (config_.fair_share_queue_ordering) {
    std::stable_sort(batch.begin(), batch.end(), [this](JobId a, JobId b) {
      const ManagedJob* ja = find_job(a);
      const ManagedJob* jb = find_job(b);
      const double pa = ja ? fair_share_.priority(ja->record.user) : 0.0;
      const double pb = jb ? fair_share_.priority(jb->record.user) : 0.0;
      return pa < pb;
    });
  }
  for (const JobId id : batch) {
    ManagedJob* job = find_job(id);
    if (job == nullptr || is_terminal(job->record.state)) continue;
    begin_discovery(id);
  }
  if (!waiting_batch_.empty() && !queue_poll_armed_) {
    queue_poll_armed_ = true;
    sim_.schedule(config_.broker_queue_poll, [this] { poll_broker_queue(); });
  }
}

// -------------------------------------------------------------- dispatch ----

void CrossBroker::dispatch_subjob_to_vm(JobId id, std::size_t subjob_index,
                                        glidein::GlideinAgent& agent) {
  ManagedJob* job = find_job(id);
  if (job == nullptr) return;
  job->record.subjobs[subjob_index].agent = agent.id();

  // Direct broker -> agent channel (no Globus, no LRMS), then stage the
  // executable from the submitter, then spawn on the interactive-vm.
  const SiteId site_id = agent.site();
  lrms::Site* site = find_site(site_id);
  if (site == nullptr) {
    fail_job(id, make_error("broker.no_site", "agent site unknown"));
    return;
  }
  const AgentId agent_id = agent.id();
  const SubJobId expected_sub = job->record.subjobs[subjob_index].id;
  net::SendOptions options;
  options.channel_latency = config_.agent_channel_latency;
  options.payload_bytes = config_.executable_bytes;
  options.transfer_src = job->record.submitter_endpoint;
  bus_.send(endpoint_, site->endpoint(),
            net::DispatchJob{job->record.subjobs[subjob_index].lrms_job_id,
                             job->record.subjobs[subjob_index].rank},
            options,
            [this, id, subjob_index, agent_id, expected_sub](const net::Envelope&) {
    ManagedJob* j = find_job(id);
    if (j == nullptr || is_terminal(j->record.state)) return;
    // Stale dispatch: the job was resubmitted (e.g. its lease was revoked
    // when the agent missed heartbeats) while this event was in flight.
    if (subjob_index >= j->record.subjobs.size() ||
        j->record.subjobs[subjob_index].id != expected_sub) {
      return;
    }
    glidein::GlideinAgent* a = agents_.find(agent_id);
    const auto info_it = agent_info_.find(agent_id);
    if (a == nullptr || info_it == agent_info_.end() ||
        a->state() != glidein::AgentState::kRunning) {
      // The agent died while we were dispatching; try again from scratch.
      resubmit_job(id);
      return;
    }
    start_job_on_agent(id, subjob_index, info_it->second, /*interactive_slot=*/true);
  });
}

void CrossBroker::start_job_on_agent(JobId id, std::size_t subjob_index,
                                     AgentInfo& info, bool interactive_slot) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || is_terminal(job->record.state)) return;
  glidein::GlideinAgent* agent = agents_.find(info.id);
  if (agent == nullptr) {
    resubmit_job(id);
    return;
  }
  const AgentId agent_id = info.id;
  lrms::Site* agent_site = find_site(info.site);
  const std::string site_endpoint =
      agent_site != nullptr ? agent_site->endpoint() : std::string{};

  // GSI delegation: the agent acts on the user's behalf, so the broker
  // issues a further-restricted proxy from the user's credentials. An
  // expired user proxy fails the job here — the paper-era behaviour of a
  // grid job dying when its proxy runs out.
  if (trust_anchor_ != nullptr) {
    const auto cred_it = user_credentials_.find(job->record.user);
    if (cred_it == user_credentials_.end()) {
      fail_job(id, make_error("gsi.no_credentials",
                              "user has no registered credentials"));
      return;
    }
    auto delegated = gsi::delegate_proxy(cred_it->second.back(), sim_.now(),
                                         Duration::seconds(12 * 3600),
                                         config_.seed ^ id.value());
    if (!delegated) {
      fail_job(id, delegated.error());
      return;
    }
  }

  glidein::SlotJob slot_job;
  slot_job.id = job->record.subjobs[subjob_index].lrms_job_id;
  slot_job.owner = job->record.user;
  slot_job.workload = job->record.workload;
  slot_job.phase_observer = job->callbacks.phase_observer;
  if (job->barrier_coordinator) {
    slot_job.barrier_handler =
        barrier_handler_for(id, job->record.subjobs[subjob_index].rank);
  }
  slot_job.on_start = [this, id, subjob_index, site_endpoint] {
    bus_.send(site_endpoint, endpoint_,
              net::JobStatus{id, net::StatusPhase::kStarted}, inline_send(),
              [this, id, subjob_index](const net::Envelope&) {
                subjob_started(id, subjob_index);
              });
  };
  slot_job.on_complete = [this, id, subjob_index, agent_id, interactive_slot,
                          site_endpoint] {
    bus_.send(site_endpoint, endpoint_,
              net::JobStatus{id, net::StatusPhase::kCompleted}, inline_send(),
              [this, id, subjob_index, agent_id,
               interactive_slot](const net::Envelope&) {
      const auto it = agent_info_.find(agent_id);
      if (it != agent_info_.end()) {
        it->second.ran_any_job = true;
        if (interactive_slot) {
          auto& residents = it->second.interactive_residents;
          const auto res = std::find(residents.begin(), residents.end(), id);
          if (res != residents.end()) residents.erase(res);
          // The last interactive job finished: the batch job's original
          // priority (and application factor) are restored.
          if (it->second.batch_resident && residents.empty()) {
            fair_share_.set_application_factor(*it->second.batch_resident,
                                               application_factor_batch());
          }
        } else {
          it->second.batch_resident.reset();
        }
      }
      subjob_completed(id, subjob_index);
      maybe_dismiss_agent(agent_id);
    });
  };

  Status status = Status::ok_status();
  if (interactive_slot) {
    const int pl = job->record.description.performance_loss();
    status = agent->start_interactive_job(std::move(slot_job), pl);
    if (status.ok()) {
      info.interactive_residents.push_back(id);
      const auto pending_it = std::find(info.pending_interactive.begin(),
                                        info.pending_interactive.end(), id);
      if (pending_it != info.pending_interactive.end()) {
        info.pending_interactive.erase(pending_it);
      }
      // Demote the co-resident batch job in the fair-share books: its user
      // is charged only PL/100 while yielding the machine (the strongest
      // concession among residents governs).
      if (info.batch_resident) {
        const int governing_pl =
            std::max(pl, agent->max_running_performance_loss());
        fair_share_.set_application_factor(
            *info.batch_resident,
            application_factor_yielding_batch(governing_pl));
        count("glidein.batch_demotions",
              obs::LabelSet{{"site", std::to_string(info.site.value())}});
        observe("glidein.performance_loss_applied",
                static_cast<double>(governing_pl),
                obs::LabelSet{{"site", std::to_string(info.site.value())}});
      }
    }
  } else {
    status = agent->start_batch_job(std::move(slot_job));
    if (status.ok()) {
      info.batch_resident = id;
      info.pending_batch.reset();
    }
  }
  if (!status.ok()) {
    log_warn(kLog, "slot start failed for ", id, ": ", status.error().to_string());
    resubmit_job(id);
  }
}

void CrossBroker::dispatch_subjob_exclusive(JobId id, std::size_t subjob_index,
                                            SiteId site_id) {
  ManagedJob* job = find_job(id);
  if (job == nullptr) return;
  lrms::Site* site = find_site(site_id);
  if (site == nullptr) {
    fail_job(id, make_error("broker.no_site", "selected site unknown"));
    return;
  }

  lrms::GridJobRequest request;
  request.id = job->record.subjobs[subjob_index].lrms_job_id;
  request.owner = job->record.user;
  request.proxy_chain = chain_for(job->record.user);
  request.workload = job->record.workload;
  request.stage_bytes = config_.executable_bytes;
  request.submitter_endpoint = job->record.submitter_endpoint;
  request.phase_observer = job->callbacks.phase_observer;
  if (job->barrier_coordinator) {
    request.barrier_handler =
        barrier_handler_for(id, job->record.subjobs[subjob_index].rank);
  }
  const std::string site_endpoint = site->endpoint();
  request.on_start = [this, id, subjob_index, site_endpoint](NodeId) {
    bus_.send(site_endpoint, endpoint_,
              net::JobStatus{id, net::StatusPhase::kStarted}, inline_send(),
              [this, id, subjob_index](const net::Envelope&) {
                subjob_started(id, subjob_index);
              });
  };
  request.on_complete = [this, id, subjob_index, site_endpoint] {
    bus_.send(site_endpoint, endpoint_,
              net::JobStatus{id, net::StatusPhase::kCompleted}, inline_send(),
              [this, id, subjob_index](const net::Envelope&) {
                subjob_completed(id, subjob_index);
              });
  };

  // Two-phase commit: prepare detects error conditions (full site, auth
  // failure) before any state is moved. Both legs ride the bus as SubmitJob
  // messages (prepare, then commit).
  const JobId lrms_id = request.id;
  bus_.send(endpoint_, site_endpoint,
            net::SubmitJob{lrms_id, net::SubmitPhase::kPrepare}, inline_send(),
            [this, id, subjob_index, site_id,
             request = std::move(request)](const net::Envelope&) mutable {
    lrms::Site* prepare_site = find_site(site_id);
    if (prepare_site == nullptr) return;
    prepare_site->gatekeeper().prepare(request, [this, id, subjob_index, site_id,
                                                 request](Status prepared) mutable {
      ManagedJob* j = find_job(id);
      if (j == nullptr || is_terminal(j->record.state)) return;
      if (!prepared.ok()) {
        j->excluded_sites.push_back(site_id);
        resubmit_job(id);
        return;
      }
      lrms::Site* s = find_site(site_id);
      if (s == nullptr) return;
      bus_.send(endpoint_, s->endpoint(),
                net::SubmitJob{request.id, net::SubmitPhase::kCommit},
                inline_send(),
                [this, id, subjob_index, site_id,
                 request = std::move(request)](const net::Envelope&) mutable {
        lrms::Site* commit_site = find_site(site_id);
        if (commit_site == nullptr) return;
        commit_site->gatekeeper().commit(std::move(request),
                               [this, id, subjob_index, site_id](Status accepted) {
          ManagedJob* jj = find_job(id);
          if (jj == nullptr || is_terminal(jj->record.state)) return;
          if (!accepted.ok()) {
            jj->excluded_sites.push_back(site_id);
            resubmit_job(id);
            return;
          }
          // On-line scheduling: an interactive job must start immediately; if it
          // landed in the queue, cancel and resubmit elsewhere.
          if (jj->record.description.is_interactive() &&
              jj->record.subjobs.size() == 1) {
            arm_queue_detection(id, subjob_index, site_id);
          }
        });
      });
    });
  });
}

void CrossBroker::arm_queue_detection(JobId id, std::size_t subjob_index,
                                      SiteId site_id) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || job->queue_timer_armed) return;
  job->queue_timer_armed = true;
  const SubJobId expected_sub = job->record.subjobs[subjob_index].id;
  sim_.schedule(config_.queue_detect_timeout,
                [this, id, subjob_index, site_id, expected_sub] {
    ManagedJob* j = find_job(id);
    if (j == nullptr || is_terminal(j->record.state)) return;
    j->queue_timer_armed = false;
    // Stale timer: the job was resubmitted while this event was pending.
    if (subjob_index >= j->record.subjobs.size() ||
        j->record.subjobs[subjob_index].id != expected_sub) {
      return;
    }
    if (j->record.subjobs[subjob_index].started) return;  // it did start
    lrms::Site* site = find_site(site_id);
    if (site != nullptr) {
      const JobId lrms_id = j->record.subjobs[subjob_index].lrms_job_id;
      bus_.send(endpoint_, site->endpoint(),
                net::CancelJob{lrms_id, /*queued_only=*/true}, inline_send(),
                [this, site_id, lrms_id](const net::Envelope&) {
                  if (lrms::Site* s = find_site(site_id)) {
                    s->gatekeeper().cancel(lrms_id, /*queued_only=*/true);
                  }
                });
    }
    log_info(kLog, id, " was queued at site ", site_id.value(),
             "; resubmitting (on-line scheduling)");
    j->excluded_sites.push_back(site_id);
    resubmit_job(id);
  });
}

void CrossBroker::dispatch_subjob_with_new_agent(JobId id, std::size_t subjob_index,
                                                 SiteId site_id,
                                                 bool interactive_slot) {
  ManagedJob* job = find_job(id);
  if (job == nullptr) return;

  AgentInfo& info = create_agent_with_carrier(
      site_id,
      [this, id, subjob_index, interactive_slot](AgentInfo& ready) {
        start_job_on_agent(id, subjob_index, ready, interactive_slot);
      },
      [this, id, site_id] {
        ManagedJob* j = find_job(id);
        if (j == nullptr || is_terminal(j->record.state)) return;
        j->excluded_sites.push_back(site_id);
        resubmit_job(id);
      });
  if (interactive_slot) {
    info.pending_interactive.push_back(id);
  } else {
    info.pending_batch = id;
  }
  job->record.subjobs[subjob_index].agent = info.id;
}

// -------------------------------------------------------------- glide-in ----

CrossBroker::AgentInfo& CrossBroker::create_agent_with_carrier(
    SiteId site_id, std::function<void(AgentInfo&)> on_ready,
    std::function<void()> on_carrier_failed) {
  lrms::Site* site = find_site(site_id);
  if (site == nullptr) throw std::invalid_argument{"create_agent: unknown site"};

  glidein::GlideinAgent& agent = agents_.create(site_id, config_.glidein);
  const AgentId agent_id = agent.id();
  const JobId carrier = job_ids_.next();
  agent.set_carrier_job_id(carrier);
  trace(JobId::none(), "agent",
        "agent " + std::to_string(agent_id.value()) + " submitted to site " +
            std::to_string(site_id.value()));
  tracev(JobId::none(), obs::TraceEventKind::kAgentDeployed,
         "agent " + std::to_string(agent_id.value()) + " -> site " +
             std::to_string(site_id.value()),
         obs::LabelSet{{"site", std::to_string(site_id.value())}});
  count("broker.agents_deployed",
        obs::LabelSet{{"site", std::to_string(site_id.value())}});
  if (obs_ != nullptr) {
    agent.set_metrics(&obs_->metrics,
                      obs::LabelSet{{"site", std::to_string(site_id.value())}});
  }

  AgentInfo info;
  info.id = agent_id;
  info.site = site_id;
  info.carrier_job = carrier;
  info.on_ready = std::move(on_ready);
  auto [it, inserted] = agent_info_.emplace(agent_id, std::move(info));

  // Registration rides the bus: when the agent reaches kRunning it announces
  // itself with an AgentRegister message, whose delivery starts supervision
  // and fires on_ready (handle_agent_register). The observer only needs the
  // death path.
  agent.connect_control_plane(&bus_, site->endpoint(), endpoint_,
                              config_.agent_channel_latency);
  agent.set_state_observer([this, agent_id](glidein::AgentState state) {
    if (state == glidein::AgentState::kDead) {
      handle_agent_death(agent_id);
    }
  });

  lrms::GridJobRequest request;
  request.id = carrier;
  request.owner = UserId{};  // the broker itself, not billed to any user
  if (trust_anchor_ != nullptr && !broker_credentials_.empty()) {
    request.proxy_chain = gsi::make_chain(broker_credentials_);
  }
  request.workload = lrms::Workload::manual();
  request.stage_bytes = config_.glidein.binary_bytes + config_.executable_bytes;
  request.submitter_endpoint = endpoint_;
  request.on_start = [this, agent_id](NodeId node) {
    glidein::GlideinAgent* a = agents_.find(agent_id);
    if (a != nullptr) a->on_carrier_started(node);
  };
  request.on_complete = [this, agent_id] {
    // Manual finish: the agent left the machine voluntarily.
    const auto info_it = agent_info_.find(agent_id);
    if (info_it != agent_info_.end()) {
      unsupervise_agent(info_it->second);
      agent_info_.erase(info_it);
    }
    agents_.remove(agent_id);
  };

  bus_.send(endpoint_, site->endpoint(),
            net::SubmitJob{carrier, net::SubmitPhase::kPrepare}, inline_send(),
            [this, site_id, request = std::move(request),
             on_carrier_failed =
                 std::move(on_carrier_failed)](const net::Envelope&) mutable {
    lrms::Site* prepare_site = find_site(site_id);
    if (prepare_site == nullptr) {
      on_carrier_failed();
      return;
    }
    prepare_site->gatekeeper().prepare(request, [this, site_id, request,
                                                 on_carrier_failed =
                                                     std::move(on_carrier_failed)](
                                                    Status prepared) mutable {
      if (!prepared.ok()) {
        on_carrier_failed();
        return;
      }
      lrms::Site* s = find_site(site_id);
      if (s == nullptr) {
        on_carrier_failed();
        return;
      }
      bus_.send(endpoint_, s->endpoint(),
                net::SubmitJob{request.id, net::SubmitPhase::kCommit},
                inline_send(),
                [this, site_id, request = std::move(request),
                 on_carrier_failed =
                     std::move(on_carrier_failed)](const net::Envelope&) mutable {
        lrms::Site* commit_site = find_site(site_id);
        if (commit_site == nullptr) {
          on_carrier_failed();
          return;
        }
        commit_site->gatekeeper().commit(
            std::move(request),
            [on_carrier_failed = std::move(on_carrier_failed)](Status accepted) {
              if (!accepted.ok()) on_carrier_failed();
            });
      });
    });
  });

  return it->second;
}

void CrossBroker::maybe_dismiss_agent(AgentId agent_id) {
  if (!config_.dismiss_idle_agents) return;
  const auto it = agent_info_.find(agent_id);
  if (it == agent_info_.end() || !it->second.ran_any_job) return;
  if (!it->second.pending_interactive.empty() || it->second.pending_batch) return;
  glidein::GlideinAgent* agent = agents_.find(agent_id);
  if (agent == nullptr) return;
  if (agent->batch_vm_busy() || agent->interactive_vm_busy()) return;
  lrms::Site* site = find_site(it->second.site);
  if (site == nullptr) return;
  // Completing the manual carrier job frees the worker node; the carrier's
  // on_complete removes the agent from the registry.
  site->scheduler().finish_manual(it->second.carrier_job);
}

bool CrossBroker::agent_suspected(AgentId id) const {
  const auto it = agent_info_.find(id);
  return it != agent_info_.end() && it->second.suspected;
}

int CrossBroker::advertised_interactive_vms(SiteId site) {
  int n = 0;
  for (glidein::GlideinAgent* agent : agents_.agents()) {
    if (agent->site() != site) continue;
    const auto it = agent_info_.find(agent->id());
    if (it != agent_info_.end() && it->second.suspected) continue;
    n += agent->free_interactive_slots();
  }
  return n;
}

// ---------------------------------------------------------- heartbeats ----

void CrossBroker::supervise_agent(AgentInfo& info) {
  // Bucket at `now`: the agent becomes due at the next tick, exactly when
  // the old full scan would first have visited it.
  const SimTime now = sim_.now();
  if (config_.enable_agent_heartbeats && !info.hb_due) {
    info.hb_due = now;
    hb_buckets_[now].insert(info.id);
  }
  if (config_.enable_liveness_probes && !info.lv_due) {
    info.lv_due = now;
    lv_buckets_[now].insert(info.id);
  }
}

void CrossBroker::unsupervise_agent(AgentInfo& info) {
  if (info.hb_due) {
    const auto it = hb_buckets_.find(*info.hb_due);
    if (it != hb_buckets_.end()) {
      it->second.erase(info.id);
      if (it->second.empty()) hb_buckets_.erase(it);
    }
    info.hb_due.reset();
  }
  if (info.lv_due) {
    const auto it = lv_buckets_.find(*info.lv_due);
    if (it != lv_buckets_.end()) {
      it->second.erase(info.id);
      if (it->second.empty()) lv_buckets_.erase(it);
    }
    info.lv_due.reset();
  }
}

std::vector<AgentId> CrossBroker::extract_due_agents(
    std::map<SimTime, std::set<AgentId>>& buckets) {
  const SimTime now = sim_.now();
  std::vector<AgentId> due;
  std::size_t merged = 0;
  while (!buckets.empty() && buckets.begin()->first <= now) {
    const auto& ids = buckets.begin()->second;
    due.insert(due.end(), ids.begin(), ids.end());
    buckets.erase(buckets.begin());
    ++merged;
  }
  // Each bucket is already in ascending AgentId order; only a multi-bucket
  // merge needs a sort to restore the old full scan's visit order.
  if (merged > 1) std::sort(due.begin(), due.end());
  return due;
}

void CrossBroker::heartbeat_tick() {
  const SimTime now = sim_.now();
  for (const AgentId agent_id : extract_due_agents(hb_buckets_)) {
    const auto it = agent_info_.find(agent_id);
    if (it == agent_info_.end()) continue;
    AgentInfo& info = it->second;
    // Re-bucket first (the old scan revisited every agent each interval
    // whatever the outcome); the visit body may unsupervise via dismissal.
    const SimTime next = now + config_.agent_heartbeat_interval;
    info.hb_due = next;
    hb_buckets_[next].insert(agent_id);
    glidein::GlideinAgent* agent = agents_.find(agent_id);
    if (agent == nullptr || agent->state() != glidein::AgentState::kRunning) {
      continue;
    }
    lrms::Site* site = find_site(info.site);
    if (site == nullptr) continue;
    // The probe travels the broker <-> site link; a partitioned link means a
    // missed heartbeat whether or not the agent is actually alive.
    const bool reachable =
        bus_.probe(endpoint_, site->endpoint(), net::Heartbeat{agent_id});
    if (reachable) {
      info.missed_heartbeats = 0;
      // A passing link heartbeat alone is not proof of life: a wedged agent
      // behind a healthy link stays suspected until its liveness echo
      // returns too.
      if (info.suspected && clear_of_suspicion(info)) restore_agent(agent_id);
    } else {
      ++info.missed_heartbeats;
      site_health_.note_heartbeat_miss(info.site);
      per_site_counter(metrics_.heartbeat_misses, "broker.heartbeat_misses",
                       info.site)
          .inc();
      tracev(JobId::none(), obs::TraceEventKind::kHeartbeatMiss,
             "agent " + std::to_string(agent_id.value()) + " missed probe " +
                 std::to_string(info.missed_heartbeats),
             obs::LabelSet{{"site", std::to_string(info.site.value())}});
      if (!info.suspected &&
          info.missed_heartbeats >= config_.agent_heartbeat_miss_limit) {
        suspect_agent(agent_id, "heartbeat");
      }
    }
  }
  sim_.schedule_daemon(config_.agent_heartbeat_interval,
                       [this] { heartbeat_tick(); });
}

void CrossBroker::liveness_tick() {
  const SimTime now = sim_.now();
  for (const AgentId agent_id : extract_due_agents(lv_buckets_)) {
    const auto it = agent_info_.find(agent_id);
    if (it == agent_info_.end()) continue;
    AgentInfo& info = it->second;
    const SimTime next = now + config_.liveness_probe_interval;
    info.lv_due = next;
    lv_buckets_[next].insert(agent_id);
    glidein::GlideinAgent* agent = agents_.find(agent_id);
    if (agent == nullptr || agent->state() != glidein::AgentState::kRunning) {
      continue;
    }
    lrms::Site* site = find_site(info.site);
    if (site == nullptr) continue;
    if (info.probe_seq > info.echo_seq) {
      // The previous probe was never echoed: the agent's event loop is
      // stalled or the path is down. Either way the application-level
      // liveness contract failed, whatever the link heartbeat says.
      ++info.missed_echoes;
      site_health_.note_liveness_miss(info.site);
      per_site_counter(metrics_.liveness_misses, "broker.liveness_misses",
                       info.site)
          .inc();
      tracev(JobId::none(), obs::TraceEventKind::kLivenessMiss,
             "agent " + std::to_string(agent_id.value()) + " missed echo " +
                 std::to_string(info.missed_echoes) + " (probe " +
                 std::to_string(info.probe_seq) + ")",
             obs::LabelSet{{"site", std::to_string(info.site.value())}});
      if (!info.suspected &&
          info.missed_echoes >= config_.liveness_miss_limit) {
        suspect_agent(agent_id, "liveness");
      }
    }
    send_liveness_probe(agent_id, info, *site);
  }
  sim_.schedule_daemon(config_.liveness_probe_interval,
                       [this] { liveness_tick(); });
}

void CrossBroker::send_liveness_probe(AgentId agent_id, AgentInfo& info,
                                      const lrms::Site& site) {
  const std::uint64_t seq = ++info.probe_seq;
  metrics_.liveness_probes.inc();
  // The probe rides the direct broker <-> agent channel; on a partitioned
  // link it is simply lost and counted missing at the next tick. The echo
  // leg is the agent's (deliver_liveness_probe sends LivenessEcho back to
  // this broker's bus endpoint — a wedged or dead agent never answers).
  net::SendOptions options;
  options.channel_latency = config_.agent_channel_latency;
  options.drop_when_down = true;
  bus_.send(endpoint_, site.endpoint(), net::LivenessProbe{agent_id, seq},
            options, [this, agent_id, seq](const net::Envelope&) {
              glidein::GlideinAgent* agent = agents_.find(agent_id);
              if (agent != nullptr) agent->deliver_liveness_probe(seq);
            });
}

void CrossBroker::on_liveness_echo(AgentId agent_id, std::uint64_t seq) {
  const auto it = agent_info_.find(agent_id);
  if (it == agent_info_.end()) return;
  AgentInfo& info = it->second;
  if (seq > info.echo_seq) info.echo_seq = seq;
  info.missed_echoes = 0;
  if (info.suspected && clear_of_suspicion(info)) restore_agent(agent_id);
}

bool CrossBroker::clear_of_suspicion(const AgentInfo& info) const {
  const bool heartbeats_ok =
      !config_.enable_agent_heartbeats ||
      info.missed_heartbeats < config_.agent_heartbeat_miss_limit;
  const bool echoes_ok = !config_.enable_liveness_probes ||
                         info.missed_echoes < config_.liveness_miss_limit;
  return heartbeats_ok && echoes_ok;
}

void CrossBroker::suspect_agent(AgentId agent_id, const char* reason) {
  const auto it = agent_info_.find(agent_id);
  if (it == agent_info_.end() || it->second.suspected) return;
  AgentInfo& info = it->second;
  info.suspected = true;
  info.suspected_since = sim_.now();
  site_health_.note_suspected(info.site);
  const bool by_liveness = std::string_view{reason} == "liveness";
  const std::string cause =
      by_liveness ? std::to_string(info.missed_echoes) + " missed liveness echoes"
                  : std::to_string(info.missed_heartbeats) + " missed heartbeats";
  trace(JobId::none(), "agent",
        "agent " + std::to_string(agent_id.value()) + " suspected after " +
            cause);
  log_warn(kLog, "agent ", agent_id.value(), " suspected (", cause, ")");
  tracev(JobId::none(), obs::TraceEventKind::kAgentSuspected,
         "agent " + std::to_string(agent_id.value()) + " after " + cause,
         obs::LabelSet{{"site", std::to_string(info.site.value())},
                       {"reason", reason}});
  count("broker.agents_suspected", obs::LabelSet{{"reason", reason}});
  if (config_.running_job_grace > Duration::zero()) {
    const SimTime since = sim_.now();
    sim_.schedule(config_.running_job_grace, [this, agent_id, since] {
      evict_suspected_residents(agent_id, since);
    });
  }

  // Revoke the exclusive-temporal-access matches of jobs still waiting to
  // start on this agent: their leases are released inside resubmit_job and
  // the suspected agent is excluded from the fresh placement.
  std::vector<JobId> revoked = info.pending_interactive;
  if (info.pending_batch) revoked.push_back(*info.pending_batch);
  info.pending_interactive.clear();
  info.pending_batch.reset();
  for (const JobId id : revoked) {
    ManagedJob* job = find_job(id);
    if (job == nullptr || is_terminal(job->record.state)) continue;
    trace(id, "lease",
          "revoked: reserved agent " + std::to_string(agent_id.value()) +
              " missed heartbeats");
    tracev(id, obs::TraceEventKind::kLeaseRevoked,
           "reserved agent " + std::to_string(agent_id.value()) +
               " missed heartbeats",
           obs::LabelSet{{"site", std::to_string(info.site.value())}});
    count("broker.lease_revocations");
    resubmit_job(id);
  }
  // Running residents keep executing: their work is local to the node, and
  // if the agent really died the carrier-kill path takes over on arrival.
}

void CrossBroker::restore_agent(AgentId agent_id) {
  const auto it = agent_info_.find(agent_id);
  if (it == agent_info_.end() || !it->second.suspected) return;
  it->second.suspected = false;
  it->second.missed_heartbeats = 0;
  it->second.missed_echoes = 0;
  it->second.suspected_since.reset();
  site_health_.note_restored(it->second.site);
  trace(JobId::none(), "agent",
        "agent " + std::to_string(agent_id.value()) +
            " re-registered after partition healed");
  log_info(kLog, "agent ", agent_id.value(), " re-registered");
  tracev(JobId::none(), obs::TraceEventKind::kAgentRestored,
         "agent " + std::to_string(agent_id.value()) + " re-registered",
         obs::LabelSet{{"site", std::to_string(it->second.site.value())}});
  count("broker.agents_restored");
  // Residents may have been evicted while the agent was suspected, leaving
  // it idle: now that it is reachable again the usual idle-dismissal applies,
  // or its worker node would stay occupied by an empty carrier forever.
  maybe_dismiss_agent(agent_id);
}

void CrossBroker::evict_suspected_residents(AgentId agent_id,
                                            SimTime suspected_since) {
  const auto it = agent_info_.find(agent_id);
  if (it == agent_info_.end()) return;  // the agent died; the death path ran
  AgentInfo& info = it->second;
  if (!info.suspected || !info.suspected_since ||
      *info.suspected_since != suspected_since) {
    return;  // healed (or re-suspected anew) before the grace expired
  }
  glidein::GlideinAgent* agent = agents_.find(agent_id);
  // Time out every running resident: the agent has been suspected for the
  // whole grace window, so its residents are treated as orphaned.
  std::vector<std::pair<JobId, bool>> victims;  // (job, interactive slot)
  for (const JobId resident : info.interactive_residents) {
    victims.emplace_back(resident, true);
  }
  if (info.batch_resident) victims.emplace_back(*info.batch_resident, false);
  info.interactive_residents.clear();
  info.batch_resident.reset();
  if (!victims.empty()) info.ran_any_job = true;
  for (const auto& [job_id, interactive] : victims) {
    ManagedJob* job = find_job(job_id);
    // Best-effort local kill: behind a real partition the command may never
    // arrive, but the broker stops accounting for the resident either way.
    if (agent != nullptr && job != nullptr) {
      lrms::Site* agent_site = find_site(info.site);
      const std::string site_dst =
          agent_site != nullptr ? agent_site->endpoint() : std::string{};
      if (interactive) {
        for (const auto& sub : job->record.subjobs) {
          if (sub.agent == agent_id) {
            const JobId lrms_id = sub.lrms_job_id;
            bus_.send(endpoint_, site_dst, net::EvictNotice{job_id, agent_id},
                      inline_send(),
                      [this, agent_id, lrms_id](const net::Envelope&) {
                        if (auto* a = agents_.find(agent_id)) {
                          a->cancel_interactive_job(lrms_id);
                        }
                      });
          }
        }
      } else {
        bus_.send(endpoint_, site_dst, net::EvictNotice{job_id, agent_id},
                  inline_send(), [this, agent_id](const net::Envelope&) {
                    if (auto* a = agents_.find(agent_id)) {
                      a->cancel_slot(glidein::SlotType::kBatch);
                    }
                  });
      }
    }
    if (job == nullptr || is_terminal(job->record.state)) continue;
    // The strongest health evidence: a running resident lost to a
    // partition. The resulting score pushes the site past the exclusion
    // threshold so the resubmitted job's replacement agent avoids it.
    site_health_.note_eviction(info.site);
    trace(job_id, "evicted",
          "agent " + std::to_string(agent_id.value()) +
              " suspected past running_job_grace");
    tracev(job_id, obs::TraceEventKind::kJobEvicted,
           "agent " + std::to_string(agent_id.value()) +
               " suspected past running_job_grace",
           obs::LabelSet{{"reason", "partition"},
                         {"agent", std::to_string(agent_id.value())},
                         {"site", std::to_string(info.site.value())}});
    count("broker.jobs_evicted", obs::LabelSet{{"reason", "partition"}});
    // Subjobs on other agents cannot be rewound from here; resubmit_job then
    // reports the partial failure. The single-agent job — the normal
    // interactive case — is rewound and rescheduled from scratch.
    bool all_on_this_agent = true;
    for (const auto& sub : job->record.subjobs) {
      if (!sub.completed && sub.agent != agent_id) {
        all_on_this_agent = false;
        break;
      }
    }
    if (all_on_this_agent) {
      job->subjobs_running = 0;
      job->subjobs_completed = 0;
      fair_share_.job_finished(job_id);
    }
    resubmit_job(job_id);
  }
}

void CrossBroker::handle_agent_death(AgentId agent_id) {
  const auto it = agent_info_.find(agent_id);
  if (it == agent_info_.end()) return;
  unsupervise_agent(it->second);
  const AgentInfo info = it->second;
  agent_info_.erase(it);
  agents_.remove(agent_id);
  trace(JobId::none(), "agent",
        "agent " + std::to_string(agent_id.value()) + " died on site " +
            std::to_string(info.site.value()));
  log_warn(kLog, "agent ", agent_id.value(), " died on site ", info.site.value());
  tracev(JobId::none(), obs::TraceEventKind::kAgentDied,
         "agent " + std::to_string(agent_id.value()),
         obs::LabelSet{{"site", std::to_string(info.site.value())}});
  count("broker.agent_deaths",
        obs::LabelSet{{"site", std::to_string(info.site.value())}});

  // Resident and in-flight jobs died with the agent. Batch jobs are
  // resubmitted "when possible"; interactive jobs fail loudly (their user is
  // attached to the console and must act).
  const auto recover = [this](std::optional<JobId> maybe_job, bool interactive) {
    if (!maybe_job) return;
    ManagedJob* job = find_job(*maybe_job);
    if (job == nullptr || is_terminal(job->record.state)) return;
    if (interactive && !config_.resubmit_interactive_on_agent_death) {
      fail_job(*maybe_job,
               make_error("broker.agent_died", "glide-in agent was killed"));
    } else {
      // The resident job is dead, not merely partially started: rewind its
      // execution bookkeeping before resubmitting it from scratch.
      job->subjobs_running = 0;
      job->subjobs_completed = 0;
      fair_share_.job_finished(*maybe_job);
      resubmit_job(*maybe_job);
    }
  };
  recover(info.batch_resident, false);
  recover(info.pending_batch, false);
  for (const JobId resident : info.interactive_residents) recover(resident, true);
  for (const JobId pending : info.pending_interactive) recover(pending, true);
}

void CrossBroker::on_site_job_killed(SiteId site_id, JobId job_id, NodeId) {
  // An agent carrier?
  glidein::GlideinAgent* agent = agents_.find_by_carrier(job_id);
  if (agent != nullptr) {
    agent->on_carrier_killed();  // state observer triggers handle_agent_death
    return;
  }
  // A directly-placed job (exclusive interactive or plain batch).
  for (auto& [id, job] : jobs_) {
    for (auto& sub : job->record.subjobs) {
      if (sub.lrms_job_id == job_id && !sub.completed) {
        log_warn(kLog, "job ", id, " killed at site ", site_id.value());
        // The killed subjob no longer runs; rewind before resubmitting.
        // (Multi-subjob jobs with survivors still count as partial failures
        // inside resubmit_job.)
        if (job->record.subjobs.size() == 1) {
          job->subjobs_running = 0;
          job->subjobs_completed = 0;
          fair_share_.job_finished(id);
        }
        resubmit_job(id);
        return;
      }
    }
  }
}

// -------------------------------------------------------------- lifecycle ----

void CrossBroker::subjob_started(JobId id, std::size_t subjob_index) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || is_terminal(job->record.state)) return;
  SubJobRecord& sub = job->record.subjobs[subjob_index];
  if (sub.started) return;
  sub.started = true;
  ++job->subjobs_running;
  tracev(id, obs::TraceEventKind::kStarted,
         "rank " + std::to_string(sub.rank) + " at site " +
             std::to_string(sub.site.value()),
         obs::LabelSet{{"site", std::to_string(sub.site.value())},
                       {"rank", std::to_string(sub.rank)}});

  // MPICH-G2 startup barrier: the job runs once every subjob has started.
  if (job->subjobs_running == static_cast<int>(job->record.subjobs.size())) {
    release_leases(*job);
    set_state(*job, JobState::kRunning);
    job->record.timestamps.running = sim_.now();
    observe("broker.time_to_running_s",
            (sim_.now() - job->record.timestamps.submitted).to_seconds(),
            obs::LabelSet{{"placement", to_string(job->record.placement)},
                          {"type", std::string{jdl::to_string(
                               job->record.description.category())}}});
    observe("broker.dispatch_latency_s",
            (sim_.now() -
             job->record.timestamps.dispatched.value_or(sim_.now()))
                .to_seconds(),
            obs::LabelSet{{"placement", to_string(job->record.placement)}});
    fair_share_.job_started(job->record.user, id, application_factor(*job),
                            static_cast<int>(job->record.subjobs.size()));
    if (job->callbacks.on_running) job->callbacks.on_running(job->record);
  }
}

void CrossBroker::subjob_completed(JobId id, std::size_t subjob_index) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || is_terminal(job->record.state)) return;
  SubJobRecord& sub = job->record.subjobs[subjob_index];
  if (sub.completed) return;
  sub.completed = true;
  ++job->subjobs_completed;
  if (job->subjobs_completed == static_cast<int>(job->record.subjobs.size())) {
    complete_job(id);
  }
}

void CrossBroker::complete_job(JobId id) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || is_terminal(job->record.state)) return;

  // Stage the OutputSandbox back to the submitter before declaring the job
  // done (the reverse of the input staging the gatekeeper performed).
  const auto& outputs = job->record.description.output_sandbox();
  if (!outputs.empty() && !job->staging_out) {
    job->staging_out = true;
    const std::optional<SiteId> site_id = job->record.site();
    lrms::Site* site = site_id ? find_site(*site_id) : nullptr;
    const std::size_t bytes =
        site != nullptr ? outputs.size() * config_.output_file_bytes : 0;
    net::SendOptions options;
    options.payload_bytes = bytes;
    bus_.send(site != nullptr ? site->endpoint() : job->record.submitter_endpoint,
              job->record.submitter_endpoint,
              net::StageSandbox{id, bytes, /*inbound=*/false}, options,
              [this, id](const net::Envelope&) { complete_job(id); });
    return;
  }

  release_leases(*job);
  fair_share_.job_finished(id);
  job->record.timestamps.completed = sim_.now();
  // A clean completion is health evidence for every site that ran a subjob
  // (rewards are gated below the exclusion threshold; see SiteHealth).
  {
    std::vector<SiteId> rewarded;
    for (const auto& sub : job->record.subjobs) {
      if (std::find(rewarded.begin(), rewarded.end(), sub.site) !=
          rewarded.end()) {
        continue;
      }
      rewarded.push_back(sub.site);
      site_health_.note_completion(sub.site);
    }
  }
  count("broker.jobs_completed",
        obs::LabelSet{{"type", std::string{jdl::to_string(
                           job->record.description.category())}}});
  set_state(*job, JobState::kCompleted);
  if (job->callbacks.on_complete) job->callbacks.on_complete(job->record);
}

void CrossBroker::fail_job(JobId id, Error error) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || is_terminal(job->record.state)) return;
  release_leases(*job);
  fair_share_.job_finished(id);
  job->record.last_error = error;
  count("broker.jobs_failed", obs::LabelSet{{"code", error.code}});
  set_state(*job, JobState::kFailed);
  log_warn(kLog, id, " failed: ", error.to_string());
  if (job->callbacks.on_failed) job->callbacks.on_failed(job->record, error);
}

void CrossBroker::reject_job(JobId id, Error error) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || is_terminal(job->record.state)) return;
  release_leases(*job);
  job->record.last_error = error;
  count("broker.jobs_rejected", obs::LabelSet{{"code", error.code}});
  set_state(*job, JobState::kRejected);
  log_info(kLog, id, " rejected: ", error.to_string());
  if (job->callbacks.on_failed) job->callbacks.on_failed(job->record, error);
}

void CrossBroker::resubmit_job(JobId id) {
  ManagedJob* job = find_job(id);
  if (job == nullptr || is_terminal(job->record.state)) return;
  release_leases(*job);
  if (job->subjobs_running > 0) {
    // Partial starts cannot be rewound safely; report failure.
    fail_job(id, make_error("broker.partial_failure",
                            "a subjob failed after others had started"));
    return;
  }
  const int budget =
      job->record.description.retry_count().value_or(config_.max_resubmissions);
  if (job->record.resubmissions >= budget) {
    fail_job(id, make_error("broker.retries_exhausted",
                            "job failed after " +
                                std::to_string(job->record.resubmissions) +
                                " resubmissions"));
    return;
  }
  ++job->record.resubmissions;
  // Bounded exponential backoff: attempt n waits base * 2^(n-1), capped.
  Duration backoff = Duration::zero();
  if (config_.resubmit_backoff_base > Duration::zero()) {
    backoff = config_.resubmit_backoff_base;
    for (int i = 1; i < job->record.resubmissions; ++i) {
      if (backoff >= config_.resubmit_backoff_max) break;
      backoff = backoff + backoff;
    }
    if (backoff > config_.resubmit_backoff_max) {
      backoff = config_.resubmit_backoff_max;
    }
  }
  trace(id, "resubmit",
        "attempt " + std::to_string(job->record.resubmissions) + " (backoff " +
            std::to_string(backoff.count_micros() / 1000) + " ms)");
  tracev(id, obs::TraceEventKind::kResubmitted,
         "attempt " + std::to_string(job->record.resubmissions),
         obs::LabelSet{
             {"attempt", std::to_string(job->record.resubmissions)},
             {"backoff_ms", std::to_string(backoff.count_micros() / 1000)}});
  count("broker.resubmissions");
  observe("broker.resubmit_backoff_s", backoff.to_seconds());
  job->record.subjobs.clear();
  job->subjobs_running = 0;
  job->subjobs_completed = 0;
  sim_.schedule(backoff, [this, id] { schedule_job(id); });
}

void CrossBroker::release_leases(ManagedJob& job) {
  for (const LeaseId lease : job.held_leases) leases_.release(lease);
  job.held_leases.clear();
}

}  // namespace cg::broker
