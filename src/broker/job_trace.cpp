#include "broker/job_trace.hpp"

#include <sstream>

#include "util/stats.hpp"

namespace cg::broker {

void JobTrace::record(SimTime when, JobId job, std::string kind,
                      std::string detail) {
  events_.push_back(TraceEvent{when, job, std::move(kind), std::move(detail)});
}

std::vector<TraceEvent> JobTrace::for_job(JobId job) const {
  std::vector<TraceEvent> out;
  for (const auto& event : events_) {
    if (event.job == job) out.push_back(event);
  }
  return out;
}

std::vector<TraceEvent> JobTrace::of_kind(const std::string& kind) const {
  std::vector<TraceEvent> out;
  for (const auto& event : events_) {
    if (event.kind == kind) out.push_back(event);
  }
  return out;
}

std::size_t JobTrace::count(const std::string& kind) const {
  std::size_t n = 0;
  for (const auto& event : events_) {
    if (event.kind == kind) ++n;
  }
  return n;
}

std::string JobTrace::render() const {
  std::ostringstream os;
  for (const auto& event : events_) {
    os << "[" << fmt_fixed(event.when.to_seconds(), 3) << "s] ";
    if (event.job.valid()) {
      os << event.job << " ";
    }
    os << event.kind;
    if (!event.detail.empty()) os << ": " << event.detail;
    os << "\n";
  }
  return os.str();
}

std::string JobTrace::to_csv() const {
  std::ostringstream os;
  os << "when_s,job,kind,detail\n";
  for (const auto& event : events_) {
    // Commas inside detail are replaced to keep the CSV single-field simple.
    std::string detail = event.detail;
    for (char& c : detail) {
      if (c == ',') c = ';';
    }
    os << event.when.to_seconds() << ',' << event.job.value() << ','
       << event.kind << ',' << detail << '\n';
  }
  return os.str();
}

}  // namespace cg::broker
