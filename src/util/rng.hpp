// Deterministic pseudo-random number generation (xoshiro256**) with the
// distributions the simulator needs. Every stochastic component takes an
// explicit Rng so whole experiments replay bit-identically from one seed.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace cg {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded through SplitMix64.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent child generator; used to give each simulated
  /// component its own stream so adding events to one component does not
  /// perturb another.
  [[nodiscard]] Rng fork();

  std::uint64_t next_u64();
  result_type operator()() { return next_u64(); }
  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform01();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Exponential with the given mean (mean = 1/lambda). Requires mean > 0.
  double exponential(double mean);
  /// Normal via Box–Muller.
  double normal(double mean, double stddev);
  /// Lognormal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma);
  /// Bernoulli trial.
  bool chance(double p);

  /// Picks a uniformly random element index from a non-empty range size.
  std::size_t pick_index(std::size_t size);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[pick_index(i)]);
    }
  }

private:
  std::uint64_t s_[4];
};

}  // namespace cg
