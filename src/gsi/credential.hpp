// Grid Security Infrastructure substrate. The paper's components all speak
// GSI: users hold X.509 credentials, create short-lived *proxy certificates*
// (grid-proxy-init), the broker delegates restricted proxies to glide-in
// agents, and every gatekeeper performs mutual authentication before
// accepting a job. This module models that trust machinery over simulated
// time: certificate chains, signatures (a keyed digest stands in for RSA),
// validity windows, proxy depth limits, and chain verification.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/expected.hpp"
#include "util/time.hpp"

namespace cg::gsi {

/// A distinguished name, e.g. "/O=CrossGrid/OU=UAB/CN=enol".
using DistinguishedName = std::string;

/// Key material is modelled as an opaque 64-bit secret; signatures are keyed
/// digests over the certificate fields. SIMULATION-GRADE ONLY: the public id
/// is derived from the secret by a fixed public transform, which lets any
/// verifier check signatures without the secret. That catches every *bug*
/// class the middleware cares about (expired proxies, broken chains,
/// tampered fields, wrong issuers) while making no cryptographic-strength
/// claim whatsoever.
struct KeyPair {
  std::uint64_t public_id = 0;
  std::uint64_t secret = 0;

  [[nodiscard]] static KeyPair from_secret(std::uint64_t secret);
};

struct Certificate {
  DistinguishedName subject;
  DistinguishedName issuer;
  std::uint64_t subject_public_id = 0;
  SimTime not_before;
  SimTime not_after;
  /// 0 = end-entity/CA certificate; >= 1 marks a proxy and its depth.
  int proxy_depth = 0;
  std::uint64_t signature = 0;

  [[nodiscard]] bool is_proxy() const { return proxy_depth > 0; }
  /// The digest the issuer signs (excludes the signature itself).
  [[nodiscard]] std::uint64_t digest() const;
};

/// A certificate plus the private key that can sign with it.
struct Credential {
  Certificate certificate;
  KeyPair keys;
};

/// Signs `digest` with a secret (the keyed-digest stand-in for RSA).
[[nodiscard]] std::uint64_t sign(std::uint64_t digest, std::uint64_t secret);

/// Verifies a signature over `digest` against the signer's public id.
[[nodiscard]] bool verify_signature(std::uint64_t digest, std::uint64_t signature,
                                    std::uint64_t issuer_public_id);

/// A simulated certificate authority: the trust anchor that issues user and
/// host credentials.
class CertificateAuthority {
public:
  /// Creates a CA with a self-signed root valid for `lifetime`.
  CertificateAuthority(DistinguishedName name, SimTime now, Duration lifetime,
                       std::uint64_t seed);

  [[nodiscard]] const Certificate& root_certificate() const { return root_.certificate; }

  /// Issues an end-entity credential (user or host).
  [[nodiscard]] Credential issue(const DistinguishedName& subject, SimTime now,
                                 Duration lifetime);

private:
  Credential root_;
  std::uint64_t next_key_ = 1;
  std::uint64_t seed_;
};

/// Creates a proxy certificate from `parent` (grid-proxy-init). The proxy's
/// subject extends the parent's DN with "/CN=proxy"; its lifetime is clamped
/// to the parent's and its depth is parent.depth + 1.
[[nodiscard]] Expected<Credential> create_proxy(const Credential& parent,
                                                SimTime now, Duration lifetime,
                                                std::uint64_t key_seed);

/// A chain from end cert (front) back toward the trust anchor (excluded).
using CertificateChain = std::vector<Certificate>;

struct VerifyPolicy {
  /// Maximum allowed proxy depth (paper-era GT2 used short chains).
  int max_proxy_depth = 8;
};

/// Verifies a chain against a trust anchor at time `now`: signatures link,
/// validity windows cover `now`, subjects nest (a proxy's subject must
/// extend its issuer's), and depth is within policy.
[[nodiscard]] Status verify_chain(const CertificateChain& chain,
                                  const Certificate& trust_anchor, SimTime now,
                                  const VerifyPolicy& policy = {});

/// Assembles the chain for a credential derived through `ancestry`
/// (outermost proxy first, then each parent, ending above the anchor).
[[nodiscard]] CertificateChain make_chain(const std::vector<Credential>& ancestry);

}  // namespace cg::gsi
