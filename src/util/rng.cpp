#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace cg {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Avoid the all-zero state (xoshiro's single fixed point).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng Rng::fork() {
  return Rng{next_u64()};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument{"uniform_int: lo > hi"};
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Lemire's unbiased bounded generation with rejection.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto lowbits = static_cast<std::uint64_t>(m);
  if (lowbits < range) {
    const std::uint64_t threshold = (0 - range) % range;
    while (lowbits < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * range;
      lowbits = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument{"exponential: mean must be > 0"};
  double u = uniform01();
  // Guard against log(0): uniform01() can return exactly 0.
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform01();
  if (u1 <= 0) u1 = 0x1.0p-53;
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::chance(double p) {
  return uniform01() < p;
}

std::size_t Rng::pick_index(std::size_t size) {
  if (size == 0) throw std::invalid_argument{"pick_index: empty range"};
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

}  // namespace cg
