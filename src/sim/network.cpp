#include "sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cg::sim {

LinkSpec LinkSpec::campus() {
  return LinkSpec{
      .name = "campus",
      .latency = Duration::micros(250),        // ~0.5 ms RTT on 100 Mb/s LAN
      .bandwidth_bytes_per_sec = 12.5e6,       // 100 Mb/s
      .jitter_stddev = Duration::micros(40),
  };
}

LinkSpec LinkSpec::wan() {
  return LinkSpec{
      .name = "wan",
      .latency = Duration::millis(9),          // UAB <-> IFCA (~18 ms RTT)
      .bandwidth_bytes_per_sec = 4.0e6,        // ~32 Mb/s effective path
      .jitter_stddev = Duration::millis(1),
  };
}

LinkSpec LinkSpec::local() {
  return LinkSpec{
      .name = "local",
      .latency = Duration::micros(20),
      .bandwidth_bytes_per_sec = 1e9,
      .jitter_stddev = Duration::zero(),
  };
}

void FailureSchedule::add_outage(SimTime start, SimTime end) {
  if (end <= start) throw std::invalid_argument{"add_outage: end <= start"};
  windows_.emplace_back(start, end);
  normalize();
}

void FailureSchedule::normalize() {
  std::sort(windows_.begin(), windows_.end());
  std::vector<std::pair<SimTime, SimTime>> merged;
  for (const auto& w : windows_) {
    if (!merged.empty() && w.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, w.second);
    } else {
      merged.push_back(w);
    }
  }
  windows_ = std::move(merged);
}

bool FailureSchedule::is_down(SimTime t) const {
  // First window starting after t; the candidate is its predecessor.
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), t,
      [](SimTime v, const auto& w) { return v < w.first; });
  if (it == windows_.begin()) return false;
  --it;
  return t < it->second;
}

SimTime FailureSchedule::next_up(SimTime t) const {
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), t,
      [](SimTime v, const auto& w) { return v < w.first; });
  if (it == windows_.begin()) return t;
  --it;
  return t < it->second ? it->second : t;
}

std::optional<SimTime> FailureSchedule::next_outage_after(SimTime t) const {
  auto it = std::upper_bound(
      windows_.begin(), windows_.end(), t,
      [](SimTime v, const auto& w) { return v < w.first; });
  if (it == windows_.end()) return std::nullopt;
  return it->first;
}

Duration Link::transfer_duration(std::size_t bytes) {
  Duration d = nominal_transfer_duration(bytes);
  if (!spec_.jitter_stddev.is_zero()) {
    const double jitter =
        rng_.normal(0.0, static_cast<double>(spec_.jitter_stddev.count_micros()));
    // Jitter only ever adds delay; a negative sample is folded to positive so
    // the mean penalty stays small but transfers never beat the speed of light.
    d += Duration::micros(static_cast<std::int64_t>(std::llround(std::abs(jitter))));
  }
  return d + extra_latency_;
}

Duration Link::nominal_transfer_duration(std::size_t bytes) const {
  const double serialization_s =
      static_cast<double>(bytes) / spec_.bandwidth_bytes_per_sec;
  return spec_.latency + Duration::from_seconds(serialization_s);
}

Link& Network::add_link(const std::string& a, const std::string& b, LinkSpec spec) {
  auto k = key(a, b);
  auto link = std::make_unique<Link>(std::move(spec), rng_.fork());
  auto [it, inserted] = links_.insert_or_assign(std::move(k), std::move(link));
  return *it->second;
}

Link& Network::link(const std::string& a, const std::string& b) {
  const auto it = links_.find(key(a, b));
  if (it != links_.end()) return *it->second;
  if (!default_link_) {
    default_link_ = std::make_unique<Link>(LinkSpec::local(), rng_.fork());
  }
  return *default_link_;
}

bool Network::has_link(const std::string& a, const std::string& b) const {
  return links_.contains(key(a, b));
}

std::pair<std::string, std::string> Network::key(const std::string& a,
                                                 const std::string& b) {
  return a <= b ? std::pair{a, b} : std::pair{b, a};
}

}  // namespace cg::sim
