// Evaluator semantics: ClassAd three-valued logic, Undefined propagation,
// numeric coercion, built-in functions, scope switching, matchmaking.
#include <gtest/gtest.h>

#include <tuple>

#include "jdl/eval.hpp"
#include "jdl/parser.hpp"

namespace cg::jdl {
namespace {

Value eval_str(const std::string& source, const ClassAd* self = nullptr,
               const ClassAd* other = nullptr) {
  auto expr = parse_expression(source);
  EXPECT_TRUE(expr.has_value()) << source;
  EvalContext ctx;
  ctx.self = self;
  ctx.other = other;
  return evaluate(*expr.value(), ctx);
}

// -- three-valued logic truth tables (property sweep) -----------------------

// Operand domain: -1 = undefined, 0 = false, 1 = true.
using LogicCase = std::tuple<int, int>;

class ThreeValuedLogicTest : public ::testing::TestWithParam<LogicCase> {
protected:
  static Value make(int v) {
    if (v < 0) return Value::undefined();
    return Value::boolean(v == 1);
  }
  static int classify(const Value& v) {
    if (v.is_undefined()) return -1;
    return v.as_bool() ? 1 : 0;
  }
};

TEST_P(ThreeValuedLogicTest, AndTable) {
  const auto [a, b] = GetParam();
  const int result = classify(logical_and(make(a), make(b)));
  // Kleene AND: false dominates, then undefined, then true.
  const int expected = (a == 0 || b == 0) ? 0 : (a == 1 && b == 1) ? 1 : -1;
  EXPECT_EQ(result, expected) << "a=" << a << " b=" << b;
}

TEST_P(ThreeValuedLogicTest, OrTable) {
  const auto [a, b] = GetParam();
  const int result = classify(logical_or(make(a), make(b)));
  const int expected = (a == 1 || b == 1) ? 1 : (a == 0 && b == 0) ? 0 : -1;
  EXPECT_EQ(result, expected) << "a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, ThreeValuedLogicTest,
                         ::testing::Combine(::testing::Values(-1, 0, 1),
                                            ::testing::Values(-1, 0, 1)));

TEST(EvalTest, NotOnUndefined) {
  EXPECT_TRUE(logical_not(Value::undefined()).is_undefined());
  EXPECT_FALSE(logical_not(Value::boolean(true)).as_bool());
}

TEST(EvalTest, ShortCircuitMakesUndefinedAndFalseWork) {
  // `undefined && false` is false, so a missing attribute on the left must
  // not poison the whole expression.
  EXPECT_FALSE(eval_str("missing && false").is_undefined());
  EXPECT_FALSE(eval_str("missing && false").is_true());
  EXPECT_TRUE(eval_str("missing || true").is_true());
  EXPECT_TRUE(eval_str("missing && true").is_undefined());
}

// -- arithmetic --------------------------------------------------------------

TEST(EvalTest, IntRealPromotion) {
  EXPECT_TRUE(eval_str("1 + 2").is_int());
  EXPECT_TRUE(eval_str("1 + 2.0").is_real());
  EXPECT_DOUBLE_EQ(eval_str("1 + 2.5").as_real(), 3.5);
  EXPECT_TRUE(eval_str("3 / 2").is_int());
  EXPECT_EQ(eval_str("3 / 2").as_int(), 1);
  EXPECT_DOUBLE_EQ(eval_str("3.0 / 2").as_real(), 1.5);
}

TEST(EvalTest, DivisionByZeroIsUndefined) {
  EXPECT_TRUE(eval_str("1 / 0").is_undefined());
  EXPECT_TRUE(eval_str("1.0 / 0.0").is_undefined());
  EXPECT_TRUE(eval_str("1 % 0").is_undefined());
}

TEST(EvalTest, StringConcatenationWithPlus) {
  EXPECT_EQ(eval_str("\"a\" + \"b\"").as_string(), "ab");
}

TEST(EvalTest, MixedTypeArithmeticIsUndefined) {
  EXPECT_TRUE(eval_str("1 + \"a\"").is_undefined());
  EXPECT_TRUE(eval_str("true * 2").is_undefined());
  EXPECT_TRUE(eval_str("-\"x\"").is_undefined());
}

// -- comparisons --------------------------------------------------------------

TEST(EvalTest, StringComparisonCaseInsensitive) {
  EXPECT_TRUE(eval_str("\"LINUX\" == \"linux\"").is_true());
  EXPECT_TRUE(eval_str("\"abc\" < \"ABD\"").is_true());
}

TEST(EvalTest, CrossTypeComparisonUndefined) {
  EXPECT_TRUE(eval_str("1 == \"1\"").is_undefined());
  EXPECT_TRUE(eval_str("true < 1").is_undefined());
}

TEST(EvalTest, NumericComparisonCoerces) {
  EXPECT_TRUE(eval_str("2 == 2.0").is_true());
  EXPECT_TRUE(eval_str("1.5 < 2").is_true());
}

// -- functions ----------------------------------------------------------------

TEST(EvalTest, BuiltinFunctions) {
  EXPECT_TRUE(eval_str("isUndefined(missing)").is_true());
  EXPECT_FALSE(eval_str("isUndefined(1)").is_true());
  EXPECT_EQ(eval_str("abs(-3)").as_int(), 3);
  EXPECT_DOUBLE_EQ(eval_str("abs(-3.5)").as_real(), 3.5);
  EXPECT_EQ(eval_str("floor(2.7)").as_int(), 2);
  EXPECT_EQ(eval_str("ceil(2.1)").as_int(), 3);
  EXPECT_EQ(eval_str("round(2.5)").as_int(), 3);
  EXPECT_EQ(eval_str("int(2.9)").as_int(), 2);
  EXPECT_TRUE(eval_str("real(2)").is_real());
  EXPECT_EQ(eval_str("min({3, 1, 2})").as_int(), 1);
  EXPECT_EQ(eval_str("max(3, 1, 2)").as_int(), 3);
  EXPECT_EQ(eval_str("strcat(\"a\", \"b\", \"c\")").as_string(), "abc");
  EXPECT_EQ(eval_str("tolower(\"ABC\")").as_string(), "abc");
  EXPECT_EQ(eval_str("toupper(\"abc\")").as_string(), "ABC");
  EXPECT_EQ(eval_str("size(\"hello\")").as_int(), 5);
}

TEST(EvalTest, UnknownFunctionIsUndefined) {
  EXPECT_TRUE(eval_str("frobnicate(1)").is_undefined());
}

TEST(EvalTest, MemberWithUndefinedElements) {
  // No match but an undefined comparison present -> undefined.
  EXPECT_TRUE(eval_str("member(1, {\"a\", 2})").is_undefined());
  // A definite match wins over undefined comparisons.
  EXPECT_TRUE(eval_str("member(2, {\"a\", 2})").is_true());
}

// -- scope handling ------------------------------------------------------------

TEST(EvalTest, OtherScopeFlipsForNestedReferences) {
  // In `other.X`, a bare reference inside X resolves in the *other* ad.
  ClassAd machine;
  machine.set(std::string{"Score"}, parse_expression("Base * 2").value());
  machine.set_int("Base", 21);
  ClassAd job;
  EvalContext ctx{&job, &machine};
  const auto expr = parse_expression("other.Score");
  ASSERT_TRUE(expr.has_value());
  EXPECT_EQ(evaluate(*expr.value(), ctx).as_int(), 42);
}

TEST(EvalTest, CyclicAttributesTerminate) {
  ClassAd ad;
  ad.set(std::string{"a"}, parse_expression("b").value());
  ad.set(std::string{"b"}, parse_expression("a").value());
  EXPECT_TRUE(evaluate_attr(ad, "a").is_undefined());  // depth limit
}

TEST(EvalTest, SelfReferenceWithoutAdsIsUndefined) {
  EXPECT_TRUE(eval_str("self.x").is_undefined());
  EXPECT_TRUE(eval_str("other.x").is_undefined());
}

// -- matchmaking ---------------------------------------------------------------

TEST(EvalTest, SymmetricMatchBothSides) {
  ClassAd job;
  job.set(std::string{"Requirements"},
          parse_expression("other.FreeCPUs >= 2").value());
  job.set_int("MemoryNeededMB", 512);
  ClassAd machine;
  machine.set(std::string{"Requirements"},
              parse_expression("other.MemoryNeededMB <= 1024").value());
  machine.set_int("FreeCPUs", 4);
  EXPECT_TRUE(symmetric_match(job, machine));

  machine.set_int("FreeCPUs", 1);
  EXPECT_FALSE(symmetric_match(job, machine));
}

TEST(EvalTest, MissingRequirementsMatchesUnconditionally) {
  ClassAd a;
  ClassAd b;
  EXPECT_TRUE(symmetric_match(a, b));
}

TEST(EvalTest, UndefinedRequirementsDoNotMatch) {
  ClassAd job;
  job.set(std::string{"Requirements"},
          parse_expression("other.NoSuchAttr == 5").value());
  ClassAd machine;
  EXPECT_FALSE(symmetric_match(job, machine));
}

// -- values ---------------------------------------------------------------------

TEST(ValueTest, ToStringRendersSourceSyntax) {
  EXPECT_EQ(Value::undefined().to_string(), "undefined");
  EXPECT_EQ(Value::boolean(true).to_string(), "true");
  EXPECT_EQ(Value::integer(5).to_string(), "5");
  EXPECT_EQ(Value::string("x").to_string(), "\"x\"");
  EXPECT_EQ(Value::list({Value::integer(1), Value::integer(2)}).to_string(),
            "{1, 2}");
}

TEST(ValueTest, SameAsIsStructural) {
  EXPECT_TRUE(Value::integer(1).same_as(Value::integer(1)));
  EXPECT_FALSE(Value::integer(1).same_as(Value::real(1.0)));  // exact types
  EXPECT_TRUE(Value::undefined().same_as(Value::undefined()));
  EXPECT_TRUE(Value::list({Value::integer(1)})
                  .same_as(Value::list({Value::integer(1)})));
  EXPECT_FALSE(Value::list({Value::integer(1)}).same_as(Value::list({})));
}

}  // namespace
}  // namespace cg::jdl
