// The Grid Console (Section 4): a split-execution system made of Console
// Agents (one per sequential/MPICH-P4 job, one per MPICH-G2 subjob) on the
// worker nodes and a Console Shadow / Job Shadow on the user's machine.
// Agents trap the application's stdio and forward it over GSI-secured
// channels; the shadow merges subjob output through its own flush buffer and
// fans typed input lines out to every subjob.
//
// Output payloads travel as pooled ChunkRefs end to end: the agent's flush
// buffer hands the shadow a view of the same chunk it filled, so relaying a
// frame performs no per-hop payload copy or heap allocation.
//
// This is the *simulated* console used by the grid-side experiments; the
// real OS-level implementation lives in src/interpose.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "jdl/job_description.hpp"
#include "obs/observability.hpp"
#include "sim/disk.hpp"
#include "stream/channel_model.hpp"
#include "stream/chunk.hpp"
#include "stream/flush_buffer.hpp"
#include "stream/reliable_channel.hpp"

namespace cg::stream {

enum class StdStream { kStdout, kStderr };

struct GridConsoleConfig {
  jdl::StreamingMode mode = jdl::StreamingMode::kFast;
  ChannelSpec channel_spec = ChannelSpec::interposition_fast();
  FlushBufferConfig agent_buffer{};   ///< per-subjob output buffer on the WN
  FlushBufferConfig shadow_buffer{};  ///< Job Shadow buffer on the UI machine
  RetryPolicy retry{};
  /// Optional observability bundle (must outlive the console): flush-reason
  /// and spool counters, per-rank dropped-frame counts, and trace events
  /// (kFrameDropped / kReconnected) under `job`'s track.
  obs::Observability* obs = nullptr;
  JobId job{};  ///< trace track for the console's events
};

class ConsoleShadow;

/// One Console Agent: runs beside a subjob on a worker node, buffers its
/// stdout/stderr and relays them to the shadow; delivers forwarded stdin.
class ConsoleAgent {
public:
  using InputHandler = std::function<void(std::string line)>;

  ConsoleAgent(sim::Simulation& sim, int rank, const GridConsoleConfig& config,
               SimChannel uplink, sim::DiskModel* wn_disk, ConsoleShadow& shadow);
  ~ConsoleAgent();
  ConsoleAgent(const ConsoleAgent&) = delete;
  ConsoleAgent& operator=(const ConsoleAgent&) = delete;

  [[nodiscard]] int rank() const { return rank_; }

  /// The application writes to its (trapped) stdout/stderr.
  void write_stdout(std::string_view data);
  void write_stderr(std::string_view data);

  /// Fault injection (kAgentWedge): while wedged, the agent's relay loop is
  /// stalled. Fast mode loses every flushed frame exactly as on a down link
  /// (same counters, same kFrameDropped events, same reconnect report on
  /// unwedge) — the silent-loss gap a healthy link otherwise hides.
  void set_wedged(bool wedged) { wedged_ = wedged; }
  [[nodiscard]] bool wedged() const { return wedged_; }

  /// Flushes any buffered output (job exit).
  void close();

  /// The application's stdin handler (it is the user's responsibility that
  /// only one rank actually consumes input — the paper's rank-0 convention).
  void set_input_handler(InputHandler handler);

  /// Called by the shadow's input channel on delivery.
  void deliver_input(std::string line);

  [[nodiscard]] std::size_t output_bytes_lost() const { return lost_bytes_; }
  /// Fast-mode frames lost to a down link (each lost frame is one flushed
  /// buffer that never reached the shadow).
  [[nodiscard]] std::size_t frames_dropped() const { return frames_dropped_; }
  [[nodiscard]] bool failed() const { return failed_; }

private:
  friend class ConsoleShadow;
  void dispatch(StdStream stream, ChunkRef data);
  void on_fast_frame_lost(std::size_t lost);
  void report_drops_on_reconnect();

  sim::Simulation& sim_;
  int rank_;
  const GridConsoleConfig& config_;
  sim::DiskModel* wn_disk_;
  SimChannel uplink_;
  std::unique_ptr<ReliableChannel> reliable_uplink_;
  std::unique_ptr<FlushBuffer> out_buffer_;
  std::unique_ptr<FlushBuffer> err_buffer_;
  InputHandler input_handler_;
  ConsoleShadow& shadow_;
  std::size_t lost_bytes_ = 0;
  std::size_t frames_dropped_ = 0;
  /// Drops since the last successful delivery; reported to the shadow (and
  /// reset) when the link heals.
  std::size_t pending_dropped_frames_ = 0;
  std::size_t pending_dropped_bytes_ = 0;
  bool failed_ = false;
  bool wedged_ = false;
  /// Pre-resolved per-rank counters (inert without config.obs): these fire
  /// on the frame relay path and must not pay a registry lookup per frame.
  struct MetricHandles {
    obs::CounterHandle spool_full;
    obs::CounterHandle frames_dropped;
    obs::CounterHandle reconnects;
  };
  MetricHandles metrics_;
};

/// The Console/Job Shadow on the submitting machine.
class ConsoleShadow {
public:
  /// Receives merged, flush-policy-shaped output ready for the screen.
  /// Allocation-free flavour: the sink borrows the shadow buffer's chunk.
  using ChunkSink = util::InplaceFunction<void(ChunkRef data), 48>;
  /// String-copy convenience flavour (tests, examples).
  using ScreenSink = std::function<void(std::string data)>;
  /// Observes raw per-subjob frames before merging (tests, logging). The
  /// view borrows the agent's chunk; copy it to retain past the call.
  using FrameObserver = std::function<void(int rank, StdStream, std::string_view)>;
  /// Fired when a reliable channel exhausts retries (the job gets killed).
  using FatalHandler = std::function<void(int rank)>;

  ConsoleShadow(sim::Simulation& sim, GridConsoleConfig config,
                sim::DiskModel* ui_disk, ChunkSink sink);
  ConsoleShadow(sim::Simulation& sim, GridConsoleConfig config,
                sim::DiskModel* ui_disk, ScreenSink sink);
  ~ConsoleShadow() = default;
  ConsoleShadow(const ConsoleShadow&) = delete;
  ConsoleShadow& operator=(const ConsoleShadow&) = delete;

  /// Registers an agent's downlink (shadow -> agent) for input forwarding.
  void attach_agent(ConsoleAgent& agent, SimChannel downlink);

  /// The user typed a line and hit Enter: forwarded to every subjob
  /// (Section 4: "the input will be forwarded to every subjob").
  void type_line(std::string line);

  /// Incoming output frame from an agent (borrows the agent's chunk).
  void on_output_frame(int rank, StdStream stream, const ChunkRef& data);

  void set_frame_observer(FrameObserver observer) { frame_observer_ = std::move(observer); }
  void set_fatal_handler(FatalHandler handler) { fatal_handler_ = std::move(handler); }

  [[nodiscard]] const GridConsoleConfig& config() const { return config_; }
  [[nodiscard]] std::size_t frames_received() const { return frames_; }
  [[nodiscard]] std::size_t lines_typed() const { return lines_typed_; }
  /// Fast-mode frames its agents dropped during link outages, as reported
  /// when the link heals. The user-facing answer to "did I see everything?".
  [[nodiscard]] std::size_t frames_dropped() const { return frames_dropped_; }
  /// Number of reconnect reports received (one per healed outage per agent).
  [[nodiscard]] std::size_t drop_reports() const { return drop_reports_; }

private:
  friend class ConsoleAgent;
  void init(sim::DiskModel* ui_disk);
  void agent_failed(int rank);
  /// An agent's uplink healed after dropping fast-mode frames.
  void on_agent_reconnected(int rank, std::size_t frames, std::size_t bytes);

  struct AgentLink {
    ConsoleAgent* agent;
    std::unique_ptr<SimChannel> downlink;
    std::unique_ptr<ReliableChannel> reliable_downlink;
  };

  sim::Simulation& sim_;
  GridConsoleConfig config_;
  sim::DiskModel* ui_disk_;
  ChunkSink sink_;
  std::unique_ptr<FlushBuffer> screen_buffer_;
  std::vector<AgentLink> agents_;
  FrameObserver frame_observer_;
  FatalHandler fatal_handler_;
  std::size_t frames_ = 0;
  std::size_t lines_typed_ = 0;
  std::size_t frames_dropped_ = 0;
  std::size_t drop_reports_ = 0;
};

/// Convenience bundle: a shadow plus its agents for one (possibly parallel)
/// interactive job. Owns all components, including the chunk pool every
/// flush buffer in the console draws from.
class GridConsole {
public:
  GridConsole(sim::Simulation& sim, sim::Network& network, GridConsoleConfig config,
              std::string ui_endpoint, ConsoleShadow::ScreenSink sink, Rng rng);
  GridConsole(sim::Simulation& sim, sim::Network& network, GridConsoleConfig config,
              std::string ui_endpoint, ConsoleShadow::ChunkSink sink, Rng rng);

  /// Adds a Console Agent on a worker-node endpoint; returns its reference.
  ConsoleAgent& add_agent(int rank, const std::string& wn_endpoint);

  [[nodiscard]] ConsoleShadow& shadow() { return *shadow_; }
  [[nodiscard]] ConsoleAgent& agent(std::size_t i) { return *agents_.at(i); }
  [[nodiscard]] std::size_t agent_count() const { return agents_.size(); }
  /// Disks used by the reliable mode (exposed for experiment bookkeeping).
  [[nodiscard]] sim::DiskModel& ui_disk() { return ui_disk_; }
  [[nodiscard]] sim::DiskModel& wn_disk(std::size_t i) { return *wn_disks_.at(i); }
  [[nodiscard]] ChunkPool& chunk_pool() { return pool_; }

private:
  void init_pool();

  sim::Simulation& sim_;
  sim::Network& network_;
  GridConsoleConfig config_;
  std::string ui_endpoint_;
  Rng rng_;
  sim::DiskModel ui_disk_;
  ChunkPool pool_;  ///< shared by every agent/shadow flush buffer
  std::unique_ptr<ConsoleShadow> shadow_;
  std::vector<std::unique_ptr<sim::DiskModel>> wn_disks_;
  std::vector<std::unique_ptr<ConsoleAgent>> agents_;
};

}  // namespace cg::stream
