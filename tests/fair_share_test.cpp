// Fair-share accounting tests: the Section 5.1 priority formula, the
// application factors, half-life decay, and the rejection test.
#include <gtest/gtest.h>

#include <cmath>

#include "broker/fair_share.hpp"

namespace cg::broker {
namespace {

using namespace cg::literals;

TEST(ApplicationFactorTest, PaperValues) {
  EXPECT_DOUBLE_EQ(application_factor_batch(), 1.0);
  // Interactive jobs worsen priority faster: a_f = 2 - PL/100.
  EXPECT_DOUBLE_EQ(application_factor_interactive(0), 2.0);
  EXPECT_DOUBLE_EQ(application_factor_interactive(25), 1.75);
  // Yielding batch jobs are charged gently: a_f = PL/100.
  EXPECT_DOUBLE_EQ(application_factor_yielding_batch(25), 0.25);
  EXPECT_DOUBLE_EQ(application_factor_yielding_batch(0), 0.0);
}

class FairShareFixture : public ::testing::Test {
protected:
  FairShareConfig config() {
    FairShareConfig c;
    c.update_interval = 10_s;
    c.half_life = 100_s;
    c.total_resources = 10;
    return c;
  }

  sim::Simulation sim;
};

TEST_F(FairShareFixture, PriorityGrowsWhileRunningJobs) {
  FairShare fs{sim, config()};
  fs.start();
  EXPECT_EQ(fs.priority(UserId{1}), 0.0);
  fs.job_started(UserId{1}, JobId{1}, 1.0, 5);  // uses half the grid
  sim.run_until(SimTime::from_seconds(100));
  const double p = fs.priority(UserId{1});
  EXPECT_GT(p, 0.0);
  // Converges toward the steady-state usage a_f * r = 0.5.
  EXPECT_LT(p, 0.5);
  sim.run_until(SimTime::from_seconds(2000));
  EXPECT_NEAR(fs.priority(UserId{1}), 0.5, 0.01);
}

TEST_F(FairShareFixture, InteractiveChargesFasterThanBatch) {
  FairShare fs{sim, config()};
  fs.start();
  fs.job_started(UserId{1}, JobId{1}, application_factor_batch(), 2);
  fs.job_started(UserId{2}, JobId{2}, application_factor_interactive(0), 2);
  sim.run_until(SimTime::from_seconds(200));
  EXPECT_GT(fs.priority(UserId{2}), fs.priority(UserId{1}));
  EXPECT_NEAR(fs.priority(UserId{2}) / fs.priority(UserId{1}), 2.0, 0.01);
}

TEST_F(FairShareFixture, HalfLifeDecayRestoresCredits) {
  FairShare fs{sim, config()};
  fs.start();
  fs.job_started(UserId{1}, JobId{1}, 1.0, 10);
  sim.run_until(SimTime::from_seconds(1000));
  const double loaded = fs.priority(UserId{1});
  EXPECT_NEAR(loaded, 1.0, 0.01);
  fs.job_finished(JobId{1});
  // After one half-life of idleness the priority must have halved.
  sim.run_until(SimTime::from_seconds(1100));
  EXPECT_NEAR(fs.priority(UserId{1}), loaded / 2.0, 0.02);
  // And eventually the user is fully restored (entry dropped).
  sim.run_until(SimTime::from_seconds(20000));
  EXPECT_EQ(fs.priority(UserId{1}), 0.0);
}

TEST_F(FairShareFixture, ApplicationFactorSwitchMidFlight) {
  // A batch job demoted to "yielding" accumulates much more slowly.
  FairShare fs{sim, config()};
  fs.start();
  fs.job_started(UserId{1}, JobId{1}, application_factor_batch(), 10);
  sim.run_until(SimTime::from_seconds(200));
  const double before = fs.priority(UserId{1});
  fs.set_application_factor(JobId{1}, application_factor_yielding_batch(10));
  sim.run_until(SimTime::from_seconds(2000));
  // Steady state is now 0.1 * 1.0 = 0.1, far below the batch-rate value.
  EXPECT_LT(fs.priority(UserId{1}), before);
  EXPECT_NEAR(fs.priority(UserId{1}), 0.1, 0.01);
}

TEST_F(FairShareFixture, InstantaneousUsageSumsJobs) {
  FairShare fs{sim, config()};
  fs.job_started(UserId{1}, JobId{1}, 1.0, 2);
  fs.job_started(UserId{1}, JobId{2}, 2.0, 3);
  // 1*2/10 + 2*3/10 = 0.8
  EXPECT_DOUBLE_EQ(fs.instantaneous_usage(UserId{1}), 0.8);
  fs.job_finished(JobId{2});
  EXPECT_DOUBLE_EQ(fs.instantaneous_usage(UserId{1}), 0.2);
}

TEST_F(FairShareFixture, UsersByPriorityOrdersBestFirst) {
  FairShare fs{sim, config()};
  fs.start();
  fs.job_started(UserId{1}, JobId{1}, 1.0, 1);
  fs.job_started(UserId{2}, JobId{2}, 1.0, 8);
  sim.run_until(SimTime::from_seconds(100));
  const auto ordered = fs.users_by_priority();
  ASSERT_EQ(ordered.size(), 2u);
  EXPECT_EQ(ordered[0], UserId{1});
  EXPECT_EQ(ordered[1], UserId{2});
}

TEST_F(FairShareFixture, IsWorstIdentifiesHeaviestUser) {
  FairShare fs{sim, config()};
  fs.start();
  fs.job_started(UserId{1}, JobId{1}, 1.0, 1);
  fs.job_started(UserId{2}, JobId{2}, 1.0, 8);
  sim.run_until(SimTime::from_seconds(100));
  EXPECT_TRUE(fs.is_worst(UserId{2}));
  EXPECT_FALSE(fs.is_worst(UserId{1}));
  EXPECT_FALSE(fs.is_worst(UserId{3}));  // unknown user has zero priority
}

TEST_F(FairShareFixture, BetaMatchesHalfLifeFormula) {
  // One update step multiplies an idle user's priority by 0.5^(dt/h).
  FairShareConfig c = config();  // dt = 10, h = 100
  FairShare fs{sim, c};
  fs.job_started(UserId{1}, JobId{1}, 1.0, 10);
  fs.force_update();
  fs.job_finished(JobId{1});
  const double p0 = fs.priority(UserId{1});
  fs.force_update();
  const double expected_beta = std::pow(0.5, 10.0 / 100.0);
  EXPECT_NEAR(fs.priority(UserId{1}) / p0, expected_beta, 1e-9);
}

TEST_F(FairShareFixture, StopHaltsUpdates) {
  FairShare fs{sim, config()};
  fs.start();
  fs.job_started(UserId{1}, JobId{1}, 1.0, 10);
  sim.run_until(SimTime::from_seconds(50));
  fs.stop();
  const double frozen = fs.priority(UserId{1});
  sim.run_until(SimTime::from_seconds(500));
  EXPECT_EQ(fs.priority(UserId{1}), frozen);
}

TEST_F(FairShareFixture, Validation) {
  FairShareConfig bad = config();
  bad.update_interval = Duration::zero();
  EXPECT_THROW(FairShare(sim, bad), std::invalid_argument);
  bad = config();
  bad.half_life = Duration::zero();
  EXPECT_THROW(FairShare(sim, bad), std::invalid_argument);
  bad = config();
  bad.total_resources = 0;
  EXPECT_THROW(FairShare(sim, bad), std::invalid_argument);

  FairShare fs{sim, config()};
  EXPECT_THROW(fs.job_started(UserId{}, JobId{1}, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(fs.job_started(UserId{1}, JobId{1}, -1.0, 1), std::invalid_argument);
  EXPECT_THROW(fs.set_total_resources(0), std::invalid_argument);
}

}  // namespace
}  // namespace cg::broker
