#include "broker/grid_scenario.hpp"

#include <stdexcept>

namespace cg::broker {

using namespace cg::literals;

GridScenario::GridScenario(GridScenarioConfig config) : config_{config} {
  Rng rng{config_.seed};
  network_ = std::make_unique<sim::Network>(rng.fork());
  bus_ = std::make_unique<net::ControlBus>(sim_, *network_);
  infosys_ = std::make_unique<infosys::InformationSystem>(sim_, config_.infosys);
  broker_ = std::make_unique<CrossBroker>(sim_, *bus_, *infosys_,
                                          config_.broker, "broker");

  if (config_.enable_gsi) {
    // Trust fabric: one CA, long-lived; the broker holds a service
    // credential it presents when submitting glide-in carriers.
    ca_ = std::make_unique<gsi::CertificateAuthority>(
        "/O=CrossGrid/CN=CA", sim_.now(), 3600_s * 24 * 365, config_.seed ^ 0xca);
    std::vector<gsi::Credential> broker_creds;
    broker_creds.push_back(
        ca_->issue("/O=CrossGrid/CN=crossbroker", sim_.now(), 3600_s * 24 * 30));
    broker_->enable_security(&ca_->root_certificate(), std::move(broker_creds));
  }

  for (int i = 0; i < config_.sites; ++i) {
    lrms::SiteConfig site_config;
    site_config.name = "site" + std::to_string(i);
    site_config.worker_nodes = config_.nodes_per_site;
    site_config.lrms = config_.lrms;
    site_config.gatekeeper = config_.gatekeeper;
    site_config.info_query_latency = config_.site_info_latency;
    if (config_.customize_site) config_.customize_site(i, site_config);

    auto site = std::make_unique<lrms::Site>(sim_, *bus_, site_ids_.next(),
                                             site_config);
    // One shared profile for UI <-> site and broker <-> site paths.
    network_->add_link(ui_endpoint(), site->endpoint(), config_.site_link);
    network_->add_link(broker_->endpoint(), site->endpoint(), config_.site_link);

    lrms::Site* raw = site.get();
    infosys_->register_site(
        site->static_info(), [raw] { return raw->snapshot(); },
        config_.site_info_latency);
    infosys_->start_periodic_publication(site->id(), config_.publication_period);
    broker_->add_site(*site);
    sites_.push_back(std::move(site));
  }
}

const std::vector<gsi::Credential>& GridScenario::register_user(
    UserId user, const std::string& name) {
  if (!ca_) throw std::logic_error{"register_user requires enable_gsi"};
  std::vector<gsi::Credential> ancestry;
  ancestry.push_back(ca_->issue("/O=CrossGrid/CN=" + name, sim_.now(),
                                3600_s * 24 * 30));
  auto proxy = gsi::create_proxy(ancestry.back(), sim_.now(),
                                 config_.user_proxy_lifetime,
                                 config_.seed ^ user.value());
  if (!proxy) throw std::logic_error{"proxy creation failed"};
  ancestry.push_back(std::move(proxy.value()));
  auto [it, inserted] = user_ancestries_.insert_or_assign(user, std::move(ancestry));
  broker_->set_user_credentials(user, it->second);
  return it->second;
}

void GridScenario::take_site_offline(std::size_t index) {
  lrms::Site& site = *sites_.at(index);
  // The information system stops answering for this site (stale index
  // entries age out; direct queries return nothing).
  infosys_->unregister_site(site.id());
  // Every node loses its job; the broker's kill observer fires per job.
  for (std::size_t n = 0; n < site.scheduler().node_count(); ++n) {
    const auto running = site.scheduler().node(n).current_job();
    if (running) site.scheduler().kill_running(*running);
  }
}

void GridScenario::saturate_with_local_batch(Duration batch_length, UserId owner) {
  for (auto& site : sites_) {
    const int nodes = site->config().worker_nodes;
    for (int n = 0; n < nodes; ++n) {
      lrms::LocalJob job;
      // High id space keeps these out of the broker's JobId range, so kill
      // notifications can never be mistaken for broker-managed jobs.
      job.id = JobId{(1ULL << 32) + local_job_ids_.next().value()};
      job.owner = owner;
      job.workload = lrms::Workload::cpu(batch_length);
      site->scheduler().submit(std::move(job));
    }
  }
}

}  // namespace cg::broker
