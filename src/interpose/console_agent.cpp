#include "interpose/console_agent.hpp"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>

#include "util/log.hpp"

namespace cg::interpose {

namespace {
constexpr const char* kLog = "interpose.agent";
}

Expected<std::unique_ptr<ConsoleAgent>> ConsoleAgent::launch(
    std::vector<std::string> argv, ConsoleAgentConfig config) {
  if (config.shadow_port == 0 && config.shadow_uds_path.empty()) {
    return make_error("agent.config", "shadow_port or shadow_uds_path required");
  }
  if (config.mode == jdl::StreamingMode::kReliable && config.spool_path.empty()) {
    return make_error("agent.config", "reliable mode requires a spool_path");
  }
  auto child = ChildProcess::spawn(std::move(argv));
  if (!child) return child.error();

  std::unique_ptr<ConsoleAgent> agent{
      new ConsoleAgent{std::move(config), std::move(child.value())}};

  if (agent->config_.mode == jdl::StreamingMode::kReliable) {
    auto spool = SpoolFile::open(agent->config_.spool_path);
    if (!spool) return spool.error();
    agent->spool_.emplace(std::move(spool.value()));
  }

  // Establish the initial connection and replay any frames a previous
  // incarnation left behind.
  {
    const std::lock_guard lock{agent->send_mutex_};
    if (agent->ensure_connected_locked() < 0 &&
        agent->config_.mode == jdl::StreamingMode::kReliable) {
      return make_error("agent.connect", "cannot reach shadow");
    }
  }
  agent->start_threads();
  return agent;
}

ConsoleAgent::ConsoleAgent(ConsoleAgentConfig config, ChildProcess child)
    : config_{config},
      child_{std::make_unique<ChildProcess>(std::move(child))} {}

ConsoleAgent::~ConsoleAgent() {
  stopping_.store(true);
  child_->signal(SIGKILL);
  {
    const std::lock_guard lock{send_mutex_};
    disconnect_locked();
  }
  if (stdout_thread_.joinable()) stdout_thread_.join();
  if (stderr_thread_.joinable()) stderr_thread_.join();
  std::vector<std::thread> receivers;
  {
    const std::lock_guard lock{recv_threads_mutex_};
    receivers.swap(recv_threads_);
  }
  for (auto& t : receivers) {
    if (t.joinable()) t.join();
  }
}

void ConsoleAgent::start_threads() {
  stdout_thread_ = std::thread{[this] {
    reader_loop(child_->stdout_fd(), FrameType::kStdout);
  }};
  stderr_thread_ = std::thread{[this] {
    reader_loop(child_->stderr_fd(), FrameType::kStderr);
  }};
}

void ConsoleAgent::reader_loop(int fd, FrameType type) {
  std::string buffer;
  buffer.reserve(config_.buffer_capacity);
  bool has_deadline = false;
  auto deadline = std::chrono::steady_clock::now();

  const auto flush = [&] {
    if (buffer.empty()) return;
    send_frame(type, buffer);
    buffer.clear();  // keeps capacity: the reader reuses one buffer forever
    has_deadline = false;
  };

  while (!stopping_.load()) {
    int timeout_ms = config_.flush_timeout_ms;
    if (has_deadline) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      timeout_ms = static_cast<int>(left < 0 ? 0 : left);
    }
    const int ready = wait_readable(fd, timeout_ms);
    if (ready < 0) break;  // fd error/hangup with no data
    if (ready == 0) {
      // Timeout trigger.
      if (has_deadline) flush();
      // A reaped child means no more output is coming from *it*; don't hang
      // on a pipe kept open by an orphaned grandchild or after a kill.
      if (child_exited_.load() || gave_up_.load()) break;
      continue;
    }
    char chunk[4096];
    const long n = read_some(fd, chunk, sizeof(chunk));
    if (n <= 0) break;  // EOF (child exited) or error
    std::size_t offset = 0;
    while (offset < static_cast<std::size_t>(n)) {
      std::size_t take = static_cast<std::size_t>(n) - offset;
      bool newline = false;
      if (config_.flush_on_newline) {
        for (std::size_t i = 0; i < take; ++i) {
          if (chunk[offset + i] == '\n') {
            take = i + 1;
            newline = true;
            break;
          }
        }
      }
      const std::size_t room = config_.buffer_capacity - buffer.size();
      take = std::min(take, room);
      buffer.append(chunk + offset, take);
      offset += take;
      if (buffer.size() >= config_.buffer_capacity || (newline && take > 0)) {
        flush();
      } else if (!buffer.empty() && !has_deadline) {
        has_deadline = true;
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(config_.flush_timeout_ms);
      }
    }
  }
  flush();
  // Announce the closed stream.
  send_frame(FrameType::kEof, to_string(type));
}

int ConsoleAgent::ensure_connected_locked() {
  if (stopping_.load()) return -1;
  if (connection_ && connection_->valid()) {
    // Probe for a peer that already closed: a TCP write into a half-dead
    // socket "succeeds" into the kernel buffer, which would make reliable
    // mode advance its spool cursor over data the shadow never received.
    char probe = 0;
    const ssize_t r =
        ::recv(connection_->get(), &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    if (r == 0 || (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR)) {
      disconnect_locked();
    } else {
      return connection_->get();
    }
  }
  auto fd = config_.shadow_uds_path.empty()
                ? tcp_connect_loopback(config_.shadow_port,
                                       config_.connect_timeout_ms)
                : uds_connect(config_.shadow_uds_path, config_.connect_timeout_ms);
  if (!fd) return -1;
  connection_ = std::make_shared<Fd>(std::move(fd.value()));
  if (connection_generation_ > 0) reconnects_.fetch_add(1);
  ++connection_generation_;
  hello_sent_ = false;

  // Identify ourselves (header-only frame, encoded on the stack).
  char hello[kFrameHeaderBytes];
  encode_frame_header(hello, FrameType::kHello, config_.rank, 0);
  if (!write_all(connection_->get(), hello, sizeof(hello))) {
    connection_.reset();
    return -1;
  }
  hello_sent_ = true;

  // Spawn the stdin receiver for this connection; it shares ownership of
  // the Fd so the descriptor number cannot be recycled while it polls.
  const std::uint64_t generation = connection_generation_;
  const std::lock_guard lock{recv_threads_mutex_};
  recv_threads_.emplace_back([this, conn = connection_, generation] {
    receive_loop(conn, generation);
  });
  return connection_->get();
}

void ConsoleAgent::disconnect_locked() {
  if (connection_ && connection_->valid()) {
    // Shut down rather than close: the receive thread still holds a
    // reference; it wakes with EOF and the fd closes with the last owner.
    ::shutdown(connection_->get(), SHUT_RDWR);
  }
  connection_.reset();
}

void ConsoleAgent::replay_spool_locked() {
  if (!spool_) return;
  std::string scratch;  // one encode buffer reused across the whole replay
  while (auto frame = spool_->peek()) {
    if (!connection_ || !connection_->valid()) return;
    encode_frame_into(scratch, frame->type, frame->rank, frame->payload);
    if (!write_all(connection_->get(), scratch)) {
      disconnect_locked();
      return;
    }
    frames_sent_.fetch_add(1);
    if (!spool_->advance().ok()) return;
  }
}

bool ConsoleAgent::send_frame(FrameType type, std::string_view payload) {
  const std::lock_guard lock{send_mutex_};
  if (gave_up_.load()) return false;

  if (config_.mode == jdl::StreamingMode::kReliable && spool_) {
    // Spool first — a frame that never reaches disk is lost on the next
    // disconnect. A failing spool (full or faulty disk) is retried on the
    // same schedule as a failing link before the agent gives up.
    int append_attempts = 0;
    Status appended = spool_->append(type, config_.rank, payload);
    while (!appended.ok() && !stopping_.load()) {
      ++append_attempts;
      if (append_attempts > config_.max_retries) {
        gave_up_.store(true);
        log_error(kLog, "rank ", config_.rank, ": spool unusable, killing child: ",
                  appended.error().to_string());
        child_->signal(SIGKILL);
        return false;
      }
      log_warn(kLog, "spool append failed (attempt ", append_attempts,
               "): ", appended.error().to_string());
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.retry_interval_ms));
      appended = spool_->append(type, config_.rank, payload);
    }
    if (!appended.ok()) return false;
    // Transmission drains the spool so ordering survives reconnects.
    int attempts = 0;
    while (!stopping_.load()) {
      if (ensure_connected_locked() >= 0) {
        replay_spool_locked();
        if (spool_->pending() == 0) return true;
      }
      ++attempts;
      if (attempts > config_.max_retries) {
        // "After which they will give up and kill the process."
        gave_up_.store(true);
        log_error(kLog, "rank ", config_.rank, ": retries exhausted, killing child");
        child_->signal(SIGKILL);
        return false;
      }
      ++reconnects_;
      disconnect_locked();
      // Sleep outside any fast path; the reader thread tolerates the stall
      // (pipe backpressure slows the child, as with a real network outage).
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.retry_interval_ms));
    }
    return false;
  }

  // Fast mode: one attempt, drop on failure. Small frames are combined with
  // their header into one stack buffer (one syscall); large payloads are
  // written straight from the caller's buffer after the header — the payload
  // is never copied into an owned encode string.
  if (ensure_connected_locked() < 0) {
    frames_dropped_.fetch_add(1);
    return false;
  }
  char scratch[4096];
  bool ok;
  if (kFrameHeaderBytes + payload.size() <= sizeof(scratch)) {
    encode_frame_header(scratch, type, config_.rank, payload.size());
    if (!payload.empty()) {
      std::memcpy(scratch + kFrameHeaderBytes, payload.data(), payload.size());
    }
    ok = write_all(connection_->get(), scratch,
                   kFrameHeaderBytes + payload.size());
  } else {
    char header[kFrameHeaderBytes];
    encode_frame_header(header, type, config_.rank, payload.size());
    ok = write_all(connection_->get(), header, sizeof(header)) &&
         write_all(connection_->get(), payload);
  }
  if (!ok) {
    disconnect_locked();
    frames_dropped_.fetch_add(1);
    return false;
  }
  frames_sent_.fetch_add(1);
  return true;
}

void ConsoleAgent::receive_loop(std::shared_ptr<Fd> conn, std::uint64_t generation) {
  const int fd = conn->get();
  FrameDecoder decoder;
  char chunk[4096];
  const auto mark_connection_dead = [this, generation] {
    // Tell the sender the shadow hung up so the next frame reconnects (or
    // retries) instead of vanishing into a dead socket buffer.
    const std::lock_guard lock{send_mutex_};
    if (connection_generation_ == generation) disconnect_locked();
  };
  while (!stopping_.load()) {
    const int ready = wait_readable(fd, 200);
    if (ready < 0) {
      mark_connection_dead();
      break;
    }
    if (ready == 0) {
      // Check the connection is still current (reconnect replaces us).
      const std::lock_guard lock{send_mutex_};
      if (connection_generation_ != generation) break;
      continue;
    }
    const long n = read_some(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      mark_connection_dead();
      break;
    }
    // Zero-copy decode session over this read's bytes.
    decoder.begin(chunk, static_cast<std::size_t>(n));
    try {
      while (auto frame = decoder.next_view()) {
        if (frame->type == FrameType::kStdin) {
          if (!write_all(child_->stdin_fd(), frame->payload)) {
            // Child stdin closed; nothing to do.
          }
        } else if (frame->type == FrameType::kEof) {
          child_->close_stdin();
        }
      }
      decoder.end();
    } catch (const std::exception& e) {
      log_warn(kLog, "protocol error from shadow: ", e.what());
      break;
    }
  }
}

int ConsoleAgent::wait_for_exit() {
  // Readers exit on EOF once the child closes its pipes.
  const int status = child_->wait(/*grace_ms=*/-1);
  child_exited_.store(true);
  if (stdout_thread_.joinable()) stdout_thread_.join();
  if (stderr_thread_.joinable()) stderr_thread_.join();

  char status_buf[16];
  const int len =
      std::snprintf(status_buf, sizeof(status_buf), "%d", status);
  send_frame(FrameType::kExit,
             std::string_view{status_buf, static_cast<std::size_t>(len)});
  if (spool_ && !gave_up_.load() && spool_->pending() == 0) {
    spool_->remove_files();
  }
  return status;
}

}  // namespace cg::interpose
