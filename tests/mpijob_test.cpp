// MPI co-allocation planning and the startup barrier.
#include <gtest/gtest.h>

#include "lrms/workload.hpp"
#include "mpijob/mpi_job.hpp"

namespace cg::mpijob {
namespace {

std::vector<SiteCapacity> capacities(std::initializer_list<std::pair<int, int>> list) {
  std::vector<SiteCapacity> out;
  for (const auto& [id, free] : list) {
    out.push_back(SiteCapacity{SiteId{static_cast<std::uint64_t>(id)}, free});
  }
  return out;
}

TEST(PlanTest, SequentialPicksAnySiteWithFreeCpu) {
  auto plan = plan_allocation(jdl::JobFlavor::kSequential, 1,
                              capacities({{1, 0}, {2, 3}}));
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->placements.size(), 1u);
  EXPECT_EQ(plan->placements[0].site, SiteId{2});
  EXPECT_EQ(plan->total_processes(), 1);
}

TEST(PlanTest, SequentialFailsWhenNothingFree) {
  auto plan = plan_allocation(jdl::JobFlavor::kSequential, 1,
                              capacities({{1, 0}, {2, 0}}));
  EXPECT_FALSE(plan.has_value());
  EXPECT_EQ(plan.error().code, "mpijob.no_resources");
}

TEST(PlanTest, P4RequiresSingleSite) {
  // 4 processes; total free is 6 but no single site has 4 -> P4 must fail.
  auto plan = plan_allocation(jdl::JobFlavor::kMpichP4, 4,
                              capacities({{1, 3}, {2, 3}}));
  EXPECT_FALSE(plan.has_value());

  auto ok = plan_allocation(jdl::JobFlavor::kMpichP4, 4,
                            capacities({{1, 3}, {2, 5}}));
  ASSERT_TRUE(ok.has_value());
  ASSERT_EQ(ok->placements.size(), 1u);
  EXPECT_EQ(ok->placements[0].site, SiteId{2});
  EXPECT_EQ(ok->placements[0].processes, 4);
}

TEST(PlanTest, G2SpansSites) {
  auto plan = plan_allocation(jdl::JobFlavor::kMpichG2, 5,
                              capacities({{1, 3}, {2, 3}}));
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->total_processes(), 5);
  EXPECT_GE(plan->placements.size(), 2u);
}

TEST(PlanTest, G2FailsWhenGridTooSmall) {
  auto plan = plan_allocation(jdl::JobFlavor::kMpichG2, 10,
                              capacities({{1, 3}, {2, 3}}));
  EXPECT_FALSE(plan.has_value());
}

TEST(PlanTest, ConsoleAgentCounts) {
  auto g2 = plan_allocation(jdl::JobFlavor::kMpichG2, 5,
                            capacities({{1, 3}, {2, 3}}));
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->console_agents(jdl::JobFlavor::kMpichG2), 5);

  auto p4 = plan_allocation(jdl::JobFlavor::kMpichP4, 3, capacities({{1, 4}}));
  ASSERT_TRUE(p4.has_value());
  EXPECT_EQ(p4->console_agents(jdl::JobFlavor::kMpichP4), 1);
}

TEST(PlanTest, RandomizedSelectionSpreadsChoices) {
  // With an RNG, equal sites must not always receive the job (the paper's
  // randomized selection of resources).
  Rng rng{2024};
  std::set<std::uint64_t> chosen;
  for (int i = 0; i < 64; ++i) {
    auto plan = plan_allocation(jdl::JobFlavor::kSequential, 1,
                                capacities({{1, 2}, {2, 2}, {3, 2}}), &rng);
    ASSERT_TRUE(plan.has_value());
    chosen.insert(plan->placements[0].site.value());
  }
  EXPECT_EQ(chosen.size(), 3u);
}

TEST(PlanTest, InvalidProcessCount) {
  EXPECT_FALSE(plan_allocation(jdl::JobFlavor::kSequential, 0, {}).has_value());
}

TEST(BarrierTest, FiresExactlyOnceWhenAllArrive) {
  int fired = 0;
  StartupBarrier barrier{3, [&] { ++fired; }};
  barrier.arrive();
  barrier.arrive();
  EXPECT_EQ(fired, 0);
  EXPECT_FALSE(barrier.complete());
  barrier.arrive();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(barrier.complete());
  EXPECT_THROW(barrier.arrive(), std::logic_error);
}

TEST(BarrierTest, FailBlocksCompletion) {
  int fired = 0;
  StartupBarrier barrier{2, [&] { ++fired; }};
  barrier.arrive();
  barrier.fail();
  barrier.arrive();  // ignored after failure
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(barrier.failed());
}

TEST(RuntimeBarrierTest, ReleasesWhenAllRanksArrive) {
  std::vector<int> released;
  RuntimeBarrierCoordinator coord{3, [&](int index) { released.push_back(index); }};
  coord.arrived(0, 0);
  coord.arrived(1, 0);
  EXPECT_TRUE(released.empty());
  coord.arrived(2, 0);
  EXPECT_EQ(released, (std::vector<int>{0}));
  // A second barrier, arrivals in any order.
  coord.arrived(2, 1);
  coord.arrived(0, 1);
  coord.arrived(1, 1);
  EXPECT_EQ(released, (std::vector<int>{0, 1}));
  EXPECT_EQ(coord.completed_barriers(), 2);
}

TEST(RuntimeBarrierTest, RanksCanRunAhead) {
  // Rank 0 reaches barrier 1 while rank 1 is still before barrier 0: the
  // per-index accounting keeps them separate.
  std::vector<int> released;
  RuntimeBarrierCoordinator coord{2, [&](int index) { released.push_back(index); }};
  coord.arrived(0, 0);
  coord.arrived(0, 1);  // rank 0 already at the next barrier? (pipelined app)
  coord.arrived(1, 0);
  EXPECT_EQ(released, (std::vector<int>{0}));
  coord.arrived(1, 1);
  EXPECT_EQ(released, (std::vector<int>{0, 1}));
}

TEST(RuntimeBarrierTest, Validation) {
  EXPECT_THROW(RuntimeBarrierCoordinator(0, [](int) {}), std::invalid_argument);
  EXPECT_THROW(RuntimeBarrierCoordinator(1, nullptr), std::invalid_argument);
  RuntimeBarrierCoordinator coord{1, [](int) {}};
  EXPECT_THROW(coord.arrived(-1, 0), std::invalid_argument);
  EXPECT_THROW(coord.arrived(0, -1), std::invalid_argument);
}

TEST(WorkloadBspTest, Shape) {
  const auto w = cg::lrms::Workload::bulk_synchronous(5, cg::Duration::seconds(2));
  EXPECT_EQ(w.phases.size(), 10u);
  EXPECT_EQ(w.barrier_count(), 5);
  EXPECT_EQ(w.total_cpu().to_seconds(), 10.0);
  EXPECT_THROW(cg::lrms::Workload::bulk_synchronous(0, cg::Duration::seconds(1)),
               std::invalid_argument);
}

TEST(BarrierTest, Validation) {
  EXPECT_THROW(StartupBarrier(0, [] {}), std::invalid_argument);
  EXPECT_THROW(StartupBarrier(1, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace cg::mpijob
