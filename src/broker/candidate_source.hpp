// CandidateSource: a non-owning view unifying the two record-container
// shapes matchmaking scans — owned SiteRecord vectors (fresh per-site
// queries, legacy index replies) and shared IndexSnapshot pointer vectors
// (fast-path index replies). The matchmaker's coarse filter and fused
// match run over this one view, so site-health consultation and every other
// per-record policy lives in exactly one implementation instead of a
// template instantiated per container shape.
//
// The view is implicitly constructible from both containers and is only
// valid while the viewed container lives; matchmaker calls consume it
// within the call, never store it.
#pragma once

#include <cstddef>
#include <vector>

#include "infosys/information_system.hpp"
#include "infosys/site_record.hpp"

namespace cg::broker {

class CandidateSource {
public:
  // NOLINTNEXTLINE(google-explicit-constructor): a view, by design implicit.
  CandidateSource(const std::vector<infosys::SiteRecord>& records)
      : records_{&records} {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  CandidateSource(const infosys::InformationSystem::IndexSnapshot& snapshot)
      : snapshot_{&snapshot} {}
  /// Pre-filtered view over records owned elsewhere (e.g. a shared index
  /// snapshot the broker screened without copying shared_ptrs).
  // NOLINTNEXTLINE(google-explicit-constructor)
  CandidateSource(const std::vector<const infosys::SiteRecord*>& pointers)
      : pointers_{&pointers} {}

  [[nodiscard]] std::size_t size() const {
    if (records_ != nullptr) return records_->size();
    if (snapshot_ != nullptr) return snapshot_->size();
    return pointers_->size();
  }
  [[nodiscard]] const infosys::SiteRecord& operator[](std::size_t i) const {
    if (records_ != nullptr) return (*records_)[i];
    if (snapshot_ != nullptr) return *(*snapshot_)[i];
    return *(*pointers_)[i];
  }

private:
  const std::vector<infosys::SiteRecord>* records_ = nullptr;
  const infosys::InformationSystem::IndexSnapshot* snapshot_ = nullptr;
  const std::vector<const infosys::SiteRecord*>* pointers_ = nullptr;
};

}  // namespace cg::broker
