#include "sim/simulation.hpp"

#include <stdexcept>

namespace cg::sim {

EventHandle Simulation::schedule(Duration delay, Callback fn) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_impl(now_ + delay, std::move(fn), /*daemon=*/false);
}

EventHandle Simulation::schedule_at(SimTime when, Callback fn) {
  return schedule_impl(when, std::move(fn), /*daemon=*/false);
}

EventHandle Simulation::schedule_daemon(Duration delay, Callback fn) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_impl(now_ + delay, std::move(fn), /*daemon=*/true);
}

EventHandle Simulation::schedule_impl(SimTime when, Callback fn, bool daemon) {
  if (!fn) throw std::invalid_argument{"Simulation::schedule: null callback"};
  if (when < now_) when = now_;
  const EventHandle handle{next_seq_};
  queue_.push(Event{when, next_seq_, std::move(fn), daemon});
  pending_.emplace(next_seq_, daemon);
  if (!daemon) ++pending_user_;
  ++next_seq_;
  return handle;
}

bool Simulation::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  // Lazy deletion: drop from the pending set; pop_one discards stale entries.
  const auto it = pending_.find(handle.seq());
  if (it == pending_.end()) return false;
  if (!it->second) --pending_user_;
  pending_.erase(it);
  return true;
}

bool Simulation::pop_one(Event& out) {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    const auto it = pending_.find(ev.seq);
    if (it == pending_.end()) continue;  // cancelled
    if (!it->second) --pending_user_;
    pending_.erase(it);
    out = std::move(ev);
    return true;
  }
  return false;
}

std::size_t Simulation::run() {
  return run_until(SimTime::max());
}

std::size_t Simulation::run_until(SimTime deadline) {
  std::size_t n = 0;
  Event ev;
  // An unbounded run() stops when only daemon maintenance remains: an idle
  // grid whose information system keeps republishing is "finished". A run
  // to an explicit deadline processes daemons too — bounded experiments want
  // accounting ticks and publications to happen.
  const bool stop_when_only_daemons = deadline == SimTime::max();
  while ((!stop_when_only_daemons || pending_user_ > 0) && pop_one(ev)) {
    if (ev.when > deadline) {
      // The event fires after the horizon: requeue it and stop the clock at
      // the deadline.
      pending_.emplace(ev.seq, ev.daemon);
      if (!ev.daemon) ++pending_user_;
      queue_.push(std::move(ev));
      now_ = deadline;
      return n;
    }
    now_ = ev.when;
    ++processed_;
    ++n;
    ev.fn();
  }
  // The queue drained before the horizon: the clock still advances to it.
  if (!stop_when_only_daemons && now_ < deadline) now_ = deadline;
  return n;
}

bool Simulation::step() {
  Event ev;
  if (!pop_one(ev)) return false;
  now_ = ev.when;
  ++processed_;
  ev.fn();
  return true;
}

bool Simulation::empty() const {
  return pending_user_ == 0;
}

std::size_t Simulation::pending_events() const {
  return pending_user_;
}

}  // namespace cg::sim
