// Ablation A1: exclusive temporal access to resources. A burst of
// simultaneous interactive submissions lands on a grid whose information is
// only refreshed periodically. With match leases, concurrently dispatched
// jobs see each other's reservations and spread; without them they pile
// onto the same stale "free" CPUs, detect being queued, and must resubmit
// (or fail outright).
#include <iostream>

#include "broker/grid_scenario.hpp"
#include "util/stats.hpp"

namespace {

using namespace cg;
using namespace cg::broker;
using namespace cg::literals;

struct BurstResult {
  int completed = 0;
  int failed = 0;
  int total_resubmissions = 0;
  double mean_startup_s = 0.0;
};

BurstResult run_burst(bool leases_enabled, std::uint64_t seed) {
  GridScenarioConfig config;
  config.sites = 4;
  config.nodes_per_site = 2;
  config.seed = seed;
  config.publication_period = 300_s;  // stale index during the burst
  config.broker.enable_match_leases = leases_enabled;
  GridScenario grid{config};
  grid.sim().run_until(SimTime::from_seconds(1));

  constexpr int kBurst = 8;  // exactly the number of nodes in the grid
  BurstResult result;
  RunningStats startup;
  std::vector<std::optional<SimTime>> started(kBurst);
  const SimTime burst_at = grid.sim().now();

  for (int i = 0; i < kBurst; ++i) {
    auto jd = jdl::JobDescription::parse(
        "Executable = \"viz\"; JobType = \"interactive\";");
    JobCallbacks callbacks;
    callbacks.on_running = [&startup, burst_at, &grid](const JobRecord&) {
      startup.add((grid.sim().now() - burst_at).to_seconds());
    };
    callbacks.on_complete = [&result](const JobRecord&) { ++result.completed; };
    callbacks.on_failed = [&result](const JobRecord&, const Error&) {
      ++result.failed;
    };
    grid.broker().submit(jd.value(), UserId{static_cast<std::uint64_t>(i + 1)},
                         lrms::Workload::cpu(120_s), "ui", callbacks);
  }
  grid.sim().run_until(SimTime::from_seconds(1800));
  for (const auto* record : grid.broker().all_records()) {
    result.total_resubmissions += record->resubmissions;
  }
  result.mean_startup_s = startup.mean();
  return result;
}

}  // namespace

int main() {
  std::cout << "== Ablation A1: exclusive temporal access (match leases) ==\n"
            << "(8 simultaneous interactive jobs onto 8 nodes across 4 sites;\n"
            << " stale information system; 10 seeds)\n\n";

  RunningStats on_completed;
  RunningStats on_resub;
  RunningStats on_startup;
  RunningStats off_completed;
  RunningStats off_resub;
  RunningStats off_startup;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const BurstResult on = run_burst(true, seed);
    const BurstResult off = run_burst(false, seed);
    on_completed.add(on.completed);
    on_resub.add(on.total_resubmissions);
    on_startup.add(on.mean_startup_s);
    off_completed.add(off.completed);
    off_resub.add(off.total_resubmissions);
    off_startup.add(off.mean_startup_s);
  }

  cg::TablePrinter table{{"Leases", "Jobs completed (of 8)", "Resubmissions",
                          "Mean startup (s)"}};
  table.add_row({"on", cg::fmt_fixed(on_completed.mean(), 2),
                 cg::fmt_fixed(on_resub.mean(), 2),
                 cg::fmt_fixed(on_startup.mean(), 2)});
  table.add_row({"off", cg::fmt_fixed(off_completed.mean(), 2),
                 cg::fmt_fixed(off_resub.mean(), 2),
                 cg::fmt_fixed(off_startup.mean(), 2)});
  std::cout << table.render() << "\n";
  std::cout << (off_resub.mean() > on_resub.mean()
                    ? "[ok]   leases reduce wasted resubmissions under "
                      "concurrent submission\n"
                    : "[MISS] leases show no benefit in this configuration\n");
  return 0;
}
