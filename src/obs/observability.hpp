// The observability bundle threaded through the stack: one MetricsRegistry
// plus one JobTracer, owned by whoever owns the run (the cg::Grid facade, a
// bench harness, a test). Components take an `Observability*` and treat null
// as "not instrumented" — observation is always optional and free when off.
#pragma once

#include "obs/job_tracer.hpp"
#include "obs/metrics.hpp"

namespace cg::obs {

struct Observability {
  MetricsRegistry metrics;
  JobTracer tracer;
};

}  // namespace cg::obs
