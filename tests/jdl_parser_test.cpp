// Parser tests: documents, expression grammar, precedence, error reporting.
#include <gtest/gtest.h>

#include "jdl/eval.hpp"
#include "jdl/parser.hpp"

namespace cg::jdl {
namespace {

Value eval_source(const std::string& source, const ClassAd* self = nullptr,
                  const ClassAd* other = nullptr) {
  auto expr = parse_expression(source);
  EXPECT_TRUE(expr.has_value()) << source << " -> "
                                << (expr ? "" : expr.error().to_string());
  EvalContext ctx;
  ctx.self = self;
  ctx.other = other;
  return evaluate(*expr.value(), ctx);
}

TEST(ParserTest, ParsesFigure2Document) {
  auto ad = parse_classad(
      "Executable = \"interactive_mpich-g2_app\";\n"
      "JobType = {\"interactive\", \"mpich-g2\"};\n"
      "NodeNumber = 2;\n"
      "Arguments = \"-n\";\n");
  ASSERT_TRUE(ad.has_value());
  EXPECT_EQ(ad->size(), 4u);
  EXPECT_EQ(ad->get_string("Executable"), "interactive_mpich-g2_app");
  EXPECT_EQ(ad->get_int("NodeNumber"), 2);
  const auto types = ad->get_string_list("JobType");
  ASSERT_TRUE(types.has_value());
  EXPECT_EQ(types->size(), 2u);
}

TEST(ParserTest, AttributeNamesCaseInsensitive) {
  auto ad = parse_classad("nodenumber = 3;");
  ASSERT_TRUE(ad.has_value());
  EXPECT_EQ(ad->get_int("NodeNumber"), 3);
  EXPECT_TRUE(ad->has("NODENUMBER"));
}

TEST(ParserTest, TrailingSemicolonOptional) {
  EXPECT_TRUE(parse_classad("a = 1").has_value());
  EXPECT_TRUE(parse_classad("a = 1; b = 2").has_value());
}

TEST(ParserTest, BracketedClassAdForm) {
  auto ad = parse_classad("[ a = 1; b = \"x\"; ]");
  ASSERT_TRUE(ad.has_value());
  EXPECT_EQ(ad->get_int("a"), 1);
  EXPECT_EQ(ad->get_string("b"), "x");
}

TEST(ParserTest, MissingSemicolonBetweenAssignmentsFails) {
  EXPECT_FALSE(parse_classad("a = 1 b = 2").has_value());
}

TEST(ParserTest, MissingEqualsFails) {
  const auto result = parse_classad("a 1;");
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, "jdl.parse");
}

TEST(ParserTest, ArithmeticPrecedence) {
  EXPECT_EQ(eval_source("2 + 3 * 4").as_int(), 14);
  EXPECT_EQ(eval_source("(2 + 3) * 4").as_int(), 20);
  EXPECT_EQ(eval_source("10 - 4 - 3").as_int(), 3);  // left associative
  EXPECT_EQ(eval_source("20 / 2 / 5").as_int(), 2);
  EXPECT_EQ(eval_source("7 % 3").as_int(), 1);
}

TEST(ParserTest, ComparisonBindsLooserThanArithmetic) {
  EXPECT_TRUE(eval_source("1 + 1 == 2").is_true());
  EXPECT_TRUE(eval_source("2 * 3 > 5").is_true());
}

TEST(ParserTest, LogicalPrecedence) {
  // && binds tighter than ||.
  EXPECT_TRUE(eval_source("true || false && false").is_true());
  EXPECT_FALSE(eval_source("(true || false) && false").is_true());
}

TEST(ParserTest, UnaryOperators) {
  EXPECT_EQ(eval_source("-5").as_int(), -5);
  EXPECT_EQ(eval_source("--5").as_int(), 5);
  EXPECT_TRUE(eval_source("!false").is_true());
  EXPECT_FALSE(eval_source("!!false").is_true());
}

TEST(ParserTest, TernaryExpression) {
  EXPECT_EQ(eval_source("true ? 1 : 2").as_int(), 1);
  EXPECT_EQ(eval_source("false ? 1 : 2").as_int(), 2);
  // Nested in the false arm (right associative).
  EXPECT_EQ(eval_source("false ? 1 : true ? 2 : 3").as_int(), 2);
}

TEST(ParserTest, Lists) {
  const Value v = eval_source("{1, 2, 3}");
  ASSERT_TRUE(v.is_list());
  EXPECT_EQ(v.as_list().size(), 3u);
  const Value empty = eval_source("{}");
  ASSERT_TRUE(empty.is_list());
  EXPECT_TRUE(empty.as_list().empty());
}

TEST(ParserTest, FunctionCalls) {
  EXPECT_EQ(eval_source("size({1,2,3})").as_int(), 3);
  EXPECT_TRUE(eval_source("member(2, {1,2,3})").is_true());
  EXPECT_FALSE(eval_source("member(9, {1,2,3})").is_true());
}

TEST(ParserTest, ScopedReferences) {
  ClassAd self;
  self.set_int("x", 1);
  ClassAd other;
  other.set_int("x", 2);
  EXPECT_EQ(eval_source("self.x", &self, &other).as_int(), 1);
  EXPECT_EQ(eval_source("other.x", &self, &other).as_int(), 2);
  EXPECT_EQ(eval_source("x", &self, &other).as_int(), 1);  // bare = self
}

TEST(ParserTest, UnbalancedParenFails) {
  EXPECT_FALSE(parse_expression("(1 + 2").has_value());
  EXPECT_FALSE(parse_expression("{1, 2").has_value());
  EXPECT_FALSE(parse_expression("size(1,").has_value());
}

TEST(ParserTest, TrailingGarbageFails) {
  EXPECT_FALSE(parse_expression("1 + 2 extra").has_value());
}

TEST(ParserTest, RoundTripThroughSource) {
  auto ad = parse_classad(
      "Requirements = other.Arch == \"i686\" && other.FreeCPUs >= 2;\n"
      "Rank = other.FreeCPUs * 2;\n");
  ASSERT_TRUE(ad.has_value());
  // Reparse the rendered source and verify it still evaluates identically.
  auto reparsed = parse_classad(ad->to_source());
  ASSERT_TRUE(reparsed.has_value()) << ad->to_source();
  ClassAd machine;
  machine.set_string("Arch", "i686");
  machine.set_int("FreeCPUs", 4);
  EvalContext ctx1{&ad.value(), &machine};
  EvalContext ctx2{&reparsed.value(), &machine};
  EXPECT_TRUE(evaluate(*ad->lookup("Requirements"), ctx1).is_true());
  EXPECT_TRUE(evaluate(*reparsed->lookup("Requirements"), ctx2).is_true());
  EXPECT_EQ(evaluate(*reparsed->lookup("Rank"), ctx2).as_int(), 8);
}

TEST(ParserTest, ClassAdMutation) {
  ClassAd ad;
  ad.set_string("a", "x");
  EXPECT_TRUE(ad.has("a"));
  EXPECT_TRUE(ad.erase("A"));   // case-insensitive erase
  EXPECT_FALSE(ad.has("a"));
  EXPECT_FALSE(ad.erase("a"));
  EXPECT_TRUE(ad.empty());
}

TEST(ParserTest, GetStringListAcceptsSingleString) {
  ClassAd ad;
  ad.set_string("JobType", "interactive");
  const auto list = ad.get_string_list("JobType");
  ASSERT_TRUE(list.has_value());
  EXPECT_EQ(*list, (std::vector<std::string>{"interactive"}));
}

}  // namespace
}  // namespace cg::jdl
