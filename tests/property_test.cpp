// Cross-cutting property tests: determinism of whole-scenario runs, FIFO
// and conservation invariants of the streaming stack, parser robustness on
// adversarial input, and time-arithmetic laws.
#include <gtest/gtest.h>

#include <charconv>

#include <sstream>

#include "broker/grid_scenario.hpp"
#include "jdl/job_description.hpp"
#include "jdl/eval.hpp"
#include "jdl/parser.hpp"
#include "sim/fault.hpp"
#include "stream/echo_experiment.hpp"
#include "stream/grid_console.hpp"

namespace cg {
namespace {

using namespace cg::literals;

// ---------------------------------------------------------- determinism ----

/// Runs a mixed workload and returns a digest of every job's lifecycle.
std::string run_scenario_digest(std::uint64_t seed) {
  broker::GridScenarioConfig config;
  config.sites = 3;
  config.nodes_per_site = 2;
  config.seed = seed;
  broker::GridScenario grid{config};

  const char* jdls[] = {
      "Executable = \"a\";",
      "Executable = \"b\"; JobType = \"interactive\";",
      "Executable = \"c\"; JobType = \"interactive\"; MachineAccess = \"shared\";",
      "Executable = \"d\"; JobType = {\"interactive\", \"mpich-g2\"}; "
      "NodeNumber = 3;",
  };
  int i = 0;
  for (const char* jdl : jdls) {
    ++i;
    (void)grid.broker().submit(jdl::JobDescription::parse(jdl).value(),
                         UserId{static_cast<std::uint64_t>(i)},
                         lrms::Workload::cpu(Duration::seconds(30 * i)),
                         broker::GridScenario::ui_endpoint(), {});
  }
  grid.sim().run();

  std::ostringstream digest;
  for (const auto* record : grid.broker().all_records()) {
    digest << record->id << ":" << to_string(record->state) << ":"
           << (record->timestamps.running
                   ? record->timestamps.running->count_micros()
                   : -1)
           << ":"
           << (record->timestamps.completed
                   ? record->timestamps.completed->count_micros()
                   : -1)
           << ";";
  }
  digest << "events=" << grid.sim().processed_events();
  return digest.str();
}

TEST(DeterminismTest, IdenticalSeedsProduceIdenticalRuns) {
  EXPECT_EQ(run_scenario_digest(42), run_scenario_digest(42));
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Randomized selection must actually change *something* across seeds
  // (placements, hence timings) in a grid with equivalent choices.
  std::set<std::string> digests;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    digests.insert(run_scenario_digest(seed));
  }
  EXPECT_GT(digests.size(), 1u);
}

class EchoDeterminism
    : public ::testing::TestWithParam<std::tuple<stream::EchoMethod, std::size_t>> {};

TEST_P(EchoDeterminism, RerunsAreBitIdentical) {
  const auto [method, payload] = GetParam();
  stream::EchoConfig config;
  config.method = method;
  config.payload_bytes = payload;
  config.sequences = 50;
  const auto a = run_echo_experiment(sim::LinkSpec::wan(), config);
  const auto b = run_echo_experiment(sim::LinkSpec::wan(), config);
  ASSERT_EQ(a.round_trips_s.count(), b.round_trips_s.count());
  for (std::size_t i = 0; i < a.round_trips_s.count(); ++i) {
    EXPECT_EQ(a.round_trips_s.samples()[i], b.round_trips_s.samples()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndSizes, EchoDeterminism,
    ::testing::Combine(::testing::Values(stream::EchoMethod::kSsh,
                                         stream::EchoMethod::kGlogin,
                                         stream::EchoMethod::kFast,
                                         stream::EchoMethod::kReliable),
                       ::testing::Values(10u, 10000u)));

// -------------------------------------------------------- stream invariants ----

class StreamOrderSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamOrderSweep, ConsoleDeliversOutputInWriteOrder) {
  // FIFO end to end: whatever interleaving of writes, the screen sees the
  // concatenation in order for a single agent.
  const std::size_t chunk = GetParam();
  sim::Simulation sim;
  sim::Network network{Rng{5}};
  network.add_link("ui", "wn", sim::LinkSpec::wan());
  std::string screen;
  stream::GridConsoleConfig config;
  config.agent_buffer.capacity = 512;  // force multiple flushes
  stream::GridConsole console{sim, network, config, "ui",
                              [&](std::string d) { screen += d; }, Rng{6}};
  auto& agent = console.add_agent(0, "wn");

  std::string expected;
  for (int i = 0; i < 50; ++i) {
    std::string data = "line-" + std::to_string(i) + "-" +
                       std::string(chunk, 'x') + "\n";
    expected += data;
    agent.write_stdout(data);
  }
  agent.close();
  sim.run();
  EXPECT_EQ(screen, expected);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, StreamOrderSweep,
                         ::testing::Values(1u, 64u, 500u, 2000u));

class ReliableConservation : public ::testing::TestWithParam<double> {};

TEST_P(ReliableConservation, NoLossForAnyOutagePlacement) {
  // Property: wherever a 20 s outage falls, reliable mode delivers every
  // byte, in order.
  const double outage_start = GetParam();
  sim::Simulation sim;
  sim::Network network{Rng{5}};
  network.add_link("ui", "wn", sim::LinkSpec::campus());
  network.link("ui", "wn").failures().add_outage(
      SimTime::from_seconds(outage_start),
      SimTime::from_seconds(outage_start + 20));

  std::string screen;
  stream::GridConsoleConfig config;
  config.mode = jdl::StreamingMode::kReliable;
  config.retry.retry_interval = 1_s;
  config.retry.max_retries = 60;
  stream::GridConsole console{sim, network, config, "ui",
                              [&](std::string d) { screen += d; }, Rng{6}};
  auto& agent = console.add_agent(0, "wn");

  std::string expected;
  for (int i = 0; i < 30; ++i) {
    sim.schedule(Duration::seconds(i), [&agent, i] {
      agent.write_stdout("tick " + std::to_string(i) + "\n");
    });
    expected += "tick " + std::to_string(i) + "\n";
  }
  sim.run();
  EXPECT_EQ(screen, expected) << "outage at " << outage_start;
}

INSTANTIATE_TEST_SUITE_P(OutagePlacements, ReliableConservation,
                         ::testing::Values(0.0, 0.5, 5.0, 14.9, 25.0));

/// Extracts every "tick <n>" id from a frame payload, in order.
std::vector<int> extract_tick_ids(std::string_view blob) {
  std::vector<int> ids;
  std::size_t pos = 0;
  while ((pos = blob.find("tick ", pos)) != std::string::npos) {
    pos += 5;
    int id = 0;
    std::from_chars(blob.data() + pos, blob.data() + blob.size(), id);
    ids.push_back(id);
  }
  return ids;
}

TEST(RandomizedFaultProperty, StreamingContractsHoldUnderSeededOutages) {
  // For 100 random fault schedules: reliable mode delivers every stdout
  // frame exactly once and in order despite the injected disconnects; fast
  // mode may lose frames but never duplicates or reorders them.
  constexpr int kTicks = 40;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    for (const bool reliable : {true, false}) {
      sim::Simulation sim;
      sim::Network network{Rng{seed}};
      network.add_link("ui", "wn", sim::LinkSpec::campus());

      sim::FaultPlan::RandomLinkFaultOptions options;
      options.endpoint_a = "ui";
      options.endpoint_b = "wn";
      options.outages = 3;
      options.horizon = SimTime::from_seconds(kTicks);
      options.min_outage = 1_s;
      options.max_outage = 8_s;
      sim::FaultInjector injector{sim, &network};
      injector.arm(sim::FaultPlan::random_link_outages(seed, options));

      std::string screen;
      stream::GridConsoleConfig config;
      config.mode = reliable ? jdl::StreamingMode::kReliable
                             : jdl::StreamingMode::kFast;
      config.retry.retry_interval = Duration::millis(500);
      config.retry.max_retries = 200;
      stream::GridConsole console{sim, network, config, "ui",
                                  [&](std::string d) { screen += d; },
                                  Rng{seed ^ 0xfa1u}};
      std::vector<int> delivered;
      console.shadow().set_frame_observer(
          [&](int, stream::StdStream, std::string_view data) {
            for (const int id : extract_tick_ids(data)) delivered.push_back(id);
          });
      auto& agent = console.add_agent(0, "wn");
      for (int i = 0; i < kTicks; ++i) {
        sim.schedule(Duration::seconds(i), [&agent, i] {
          agent.write_stdout("tick " + std::to_string(i) + "\n");
        });
      }
      sim.run();

      if (reliable) {
        std::vector<int> all;
        std::string expected;
        for (int i = 0; i < kTicks; ++i) {
          all.push_back(i);
          expected += "tick " + std::to_string(i) + "\n";
        }
        EXPECT_EQ(delivered, all) << "seed " << seed;
        EXPECT_EQ(screen, expected) << "seed " << seed;
        EXPECT_FALSE(agent.failed()) << "seed " << seed;
      } else {
        // No duplicates, no reordering: strictly increasing ids.
        for (std::size_t i = 1; i < delivered.size(); ++i) {
          EXPECT_LT(delivered[i - 1], delivered[i]) << "seed " << seed;
        }
        EXPECT_LE(delivered.size(), static_cast<std::size_t>(kTicks));
      }
    }
  }
}

// --------------------------------------------------------- parser robustness ----

TEST(ParserRobustnessTest, GarbageNeverCrashes) {
  // Deterministic pseudo-fuzz: mangled JDL documents must fail cleanly (or
  // parse), never crash or hang.
  const std::string alphabet = "abX_=;{}()\"',.<>&|!?:0123456789 \n\\";
  Rng rng{777};
  for (int round = 0; round < 2000; ++round) {
    std::string source;
    const int length = static_cast<int>(rng.uniform_int(0, 80));
    for (int i = 0; i < length; ++i) {
      source += alphabet[rng.pick_index(alphabet.size())];
    }
    const auto result = jdl::parse_classad(source);
    (void)result;  // any outcome is fine; surviving is the property
  }
  SUCCEED();
}

TEST(ParserRobustnessTest, MutatedValidDocumentsFailCleanly) {
  const std::string valid =
      "Executable = \"app\"; JobType = {\"interactive\", \"mpich-g2\"}; "
      "NodeNumber = 4; Requirements = other.FreeCPUs >= 2 && "
      "member(\"x\", {\"x\", \"y\"});";
  ASSERT_TRUE(jdl::parse_classad(valid).has_value());
  Rng rng{888};
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = valid;
    // Delete, duplicate, or replace a random character.
    const std::size_t pos = rng.pick_index(mutated.size());
    switch (rng.uniform_int(0, 2)) {
      case 0: mutated.erase(pos, 1); break;
      case 1: mutated.insert(pos, 1, mutated[pos]); break;
      default: mutated[pos] = static_cast<char>(rng.uniform_int(32, 126));
    }
    const auto result = jdl::JobDescription::parse(mutated);
    (void)result;
  }
  SUCCEED();
}

TEST(ParserRobustnessTest, DeeplyNestedExpressionsBounded) {
  // 2,000 nested parens: must parse (or fail) without stack overflow being
  // triggered in evaluation.
  std::string source(2000, '(');
  source += "1";
  source += std::string(2000, ')');
  const auto expr = jdl::parse_expression(source);
  if (expr.has_value()) {
    jdl::EvalContext ctx;
    const jdl::Value v = jdl::evaluate(*expr.value(), ctx);
    EXPECT_TRUE(v.is_int());
  }
}

// ----------------------------------------------------------- time algebra ----

class DurationAlgebra : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DurationAlgebra, ScaledRoundTrip) {
  const Duration d = Duration::micros(GetParam());
  // scaled(x).scaled(1/x) returns within 1 us of the original for sane x.
  for (const double x : {1.5, 2.0, 3.7, 10.0}) {
    const Duration round = d.scaled(x).scaled(1.0 / x);
    EXPECT_NEAR(static_cast<double>(round.count_micros()),
                static_cast<double>(d.count_micros()), 1.0)
        << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, DurationAlgebra,
                         ::testing::Values(0, 1, 1000, 1'000'000,
                                           123'456'789'012LL));

}  // namespace
}  // namespace cg
