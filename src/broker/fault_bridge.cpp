#include "broker/fault_bridge.hpp"

namespace cg::broker {

FaultBridge::FaultBridge(GridScenario& grid, sim::FaultInjector& injector)
    : grid_{grid} {
  sim::install_victim_handlers(injector, *this);
}

std::optional<AgentId> FaultBridge::resolve_agent(
    const std::string& target) const {
  const auto query = sim::parse_victim_query(target);
  if (!query || query->fn == sim::VictimQuery::Fn::kNodeOf) return std::nullopt;
  if (query->ref == sim::VictimQuery::Ref::kAgent) return AgentId{query->id};
  const JobRecord* record = grid_.broker().record(JobId{query->id});
  if (record == nullptr) return std::nullopt;
  for (const auto& sub : record->subjobs) {
    if (sub.agent && !sub.completed) return *sub.agent;
  }
  return std::nullopt;
}

std::optional<FaultBridge::NodeRef> FaultBridge::resolve_node(
    const std::string& target) const {
  const auto query = sim::parse_victim_query(target);
  if (!query || query->fn != sim::VictimQuery::Fn::kNodeOf) return std::nullopt;
  if (query->ref == sim::VictimQuery::Ref::kAgent) {
    const glidein::GlideinAgent* agent =
        grid_.broker().agents().find(AgentId{query->id});
    if (agent == nullptr || !agent->node()) return std::nullopt;
    return locate_node(agent->site(), *agent->node());
  }
  const JobRecord* record = grid_.broker().record(JobId{query->id});
  if (record == nullptr) return std::nullopt;
  for (const auto& sub : record->subjobs) {
    if (sub.completed) continue;
    if (sub.agent) {
      // Agent-resident subjob: the node is wherever the carrier sits.
      const glidein::GlideinAgent* agent = grid_.broker().agents().find(*sub.agent);
      if (agent != nullptr && agent->node()) {
        return locate_node(agent->site(), *agent->node());
      }
      continue;
    }
    // Direct placement: ask the site scheduler where the LRMS job runs.
    for (std::size_t i = 0; i < grid_.site_count(); ++i) {
      lrms::Site& site = grid_.site(i);
      if (site.id() != sub.site) continue;
      const auto node = site.scheduler().node_of(sub.lrms_job_id);
      if (node) return locate_node(sub.site, *node);
    }
  }
  return std::nullopt;
}

std::optional<FaultBridge::NodeRef> FaultBridge::locate_node(SiteId site,
                                                             NodeId node) const {
  for (std::size_t s = 0; s < grid_.site_count(); ++s) {
    if (grid_.site(s).id() != site) continue;
    lrms::LocalScheduler& scheduler = grid_.site(s).scheduler();
    for (std::size_t n = 0; n < scheduler.node_count(); ++n) {
      if (scheduler.node(n).id() == node) return NodeRef{s, n};
    }
  }
  return std::nullopt;
}

bool FaultBridge::crash_agent(const std::string& target) {
  const auto agent_id = resolve_agent(target);
  if (!agent_id) return false;
  const glidein::GlideinAgent* agent = grid_.broker().agents().find(*agent_id);
  if (agent == nullptr) return false;
  // Killing the carrier job is how an agent dies: the kill observer chain
  // (scheduler -> broker) runs the normal death path.
  const JobId carrier = agent->carrier_job_id();
  for (std::size_t i = 0; i < grid_.site_count(); ++i) {
    if (grid_.site(i).scheduler().kill_running(carrier)) return true;
  }
  return false;
}

bool FaultBridge::set_agent_wedged(const std::string& target, bool wedged) {
  if (!wedged) {
    const auto it = wedged_agents_.find(target);
    if (it == wedged_agents_.end()) return false;
    glidein::GlideinAgent* agent = grid_.broker().agents().find(it->second);
    wedged_agents_.erase(it);
    if (agent != nullptr) agent->set_wedged(false);
    return true;
  }
  const auto agent_id = resolve_agent(target);
  if (!agent_id) return false;
  glidein::GlideinAgent* agent = grid_.broker().agents().find(*agent_id);
  if (agent == nullptr) return false;
  agent->set_wedged(true);
  wedged_agents_[target] = *agent_id;
  return true;
}

bool FaultBridge::set_node_failed(const std::string& target, bool failed) {
  if (!failed) {
    const auto it = crashed_nodes_.find(target);
    if (it == crashed_nodes_.end()) return false;
    grid_.site(it->second.site_index)
        .scheduler()
        .revive_node(it->second.node_index);
    crashed_nodes_.erase(it);
    return true;
  }
  const auto node = resolve_node(target);
  if (!node) return false;
  grid_.site(node->site_index).scheduler().fail_node(node->node_index);
  crashed_nodes_[target] = *node;
  return true;
}

}  // namespace cg::broker
