#include "stream/channel_model.hpp"

#include <cmath>
#include <stdexcept>

namespace cg::stream {

ChannelSpec ChannelSpec::interposition_fast() {
  return ChannelSpec{
      .name = "fast",
      .packet_payload = 32 * 1024,
      .per_message_overhead = Duration::micros(80),
      .per_packet_overhead = Duration::micros(60),
      .byte_factor = 1.02,
      .header_bytes = 32,
      .jitter_factor = 3.0,
  };
}

ChannelSpec ChannelSpec::ssh() {
  return ChannelSpec{
      .name = "ssh",
      // ssh-1.x/2.x era channel windows: data moves in small chunks, each
      // paying cipher + MAC + syscall costs on a ~2006 CPU.
      .packet_payload = 1460,
      .per_message_overhead = Duration::micros(150),
      .per_packet_overhead = Duration::micros(450),
      .byte_factor = 1.06,
      .header_bytes = 48,
      .jitter_factor = 1.0,
  };
}

ChannelSpec ChannelSpec::glogin() {
  return ChannelSpec{
      .name = "glogin",
      // Globus-IO with GSI wrapping: heavy fixed per-operation cost and
      // expensive per-packet processing (token wrapping + extra copies).
      .packet_payload = 4096,
      .per_message_overhead = Duration::micros(650),
      .per_packet_overhead = Duration::micros(900),
      .byte_factor = 1.12,
      .header_bytes = 96,
      .jitter_factor = 1.5,
  };
}

SimChannel::SimChannel(sim::Simulation& sim, sim::Link& link, ChannelSpec spec,
                       Rng rng)
    : sim_{sim}, link_{link}, spec_{std::move(spec)}, rng_{std::move(rng)} {
  if (spec_.packet_payload == 0) {
    throw std::invalid_argument{"ChannelSpec: packet_payload must be > 0"};
  }
}

SimChannel::SimChannel(SimChannel&& other)
    : sim_{other.sim_},
      link_{other.link_},
      spec_{std::move(other.spec_)},
      rng_{std::move(other.rng_)},
      last_delivery_{other.last_delivery_},
      messages_{other.messages_},
      failures_{other.failures_},
      bytes_{other.bytes_} {
  if (!other.pending_.empty()) {
    throw std::logic_error{"SimChannel: cannot move with deliveries in flight"};
  }
}

SimChannel::~SimChannel() {
  // Unfired deliveries would call into a destroyed channel; remove them.
  while (!pending_.empty()) {
    sim_.cancel(pending_.front().event);
    pending_.pop_front();
  }
}

Duration SimChannel::sample_duration(std::size_t bytes) {
  const std::size_t packets =
      bytes == 0 ? 1 : (bytes + spec_.packet_payload - 1) / spec_.packet_payload;
  const auto wire_bytes = static_cast<std::size_t>(
      std::llround(static_cast<double>(bytes) * spec_.byte_factor)) +
      packets * spec_.header_bytes;
  Duration d = spec_.per_message_overhead +
               spec_.per_packet_overhead * static_cast<std::int64_t>(packets) +
               link_.transfer_duration(wire_bytes);
  if (spec_.jitter_factor > 1.0) {
    // Transport-level variance beyond the link's own jitter (Fig. 7: our
    // fast mode matches ssh/Glogin on the WAN but with higher variance).
    const double extra_stddev =
        (spec_.jitter_factor - 1.0) *
        static_cast<double>(link_.spec().jitter_stddev.count_micros());
    if (extra_stddev > 0.0) {
      const double sample = std::abs(rng_.normal(0.0, extra_stddev));
      d += Duration::micros(static_cast<std::int64_t>(std::llround(sample)));
    }
  }
  return d;
}

Duration SimChannel::estimate(std::size_t bytes) {
  return sample_duration(bytes);
}

void SimChannel::send(std::size_t bytes, DeliverFn on_deliver, FailFn on_fail) {
  if (!on_deliver) throw std::invalid_argument{"SimChannel::send: null deliver"};
  ++messages_;
  if (!link_.is_up(sim_.now())) {
    ++failures_;
    if (on_fail) on_fail(bytes);
    return;
  }
  bytes_ += bytes;
  const Duration duration = sample_duration(bytes);
  // FIFO: a message cannot overtake the previous one on this channel.
  SimTime deliver_at = sim_.now() + duration;
  if (deliver_at < last_delivery_) deliver_at = last_delivery_;
  last_delivery_ = deliver_at;
  Pending& pending = pending_.push_back(Pending{});
  pending.bytes = bytes;
  pending.deliver = std::move(on_deliver);
  pending.event = sim_.schedule_at(deliver_at, [this] { deliver_front(); });
}

void SimChannel::deliver_front() {
  // Pop before invoking: the callback may send again on this channel.
  Pending pending = std::move(pending_.front());
  pending_.pop_front();
  pending.deliver(pending.bytes);
}

}  // namespace cg::stream
