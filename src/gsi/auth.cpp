#include "gsi/auth.hpp"

#include <stdexcept>

namespace cg::gsi {

Party make_party(const std::vector<Credential>& ancestry) {
  if (ancestry.empty()) throw std::invalid_argument{"make_party: no credentials"};
  Party party;
  party.chain = make_chain(ancestry);
  party.keys = ancestry.back().keys;  // the leaf's keys
  return party;
}

void mutual_authenticate(sim::Simulation& sim, sim::Link& link,
                         const Party& initiator, const Party& acceptor,
                         const Certificate& trust_anchor,
                         std::function<void(HandshakeResult)> callback,
                         HandshakeConfig config) {
  if (!callback) throw std::invalid_argument{"mutual_authenticate: null callback"};

  // Network time: round_trips * RTT with small handshake messages, plus
  // both sides' asymmetric-crypto work.
  Duration total = config.crypto_time * 2;
  for (int i = 0; i < config.round_trips; ++i) {
    total += link.transfer_duration(512);  // ->
    total += link.transfer_duration(512);  // <-
  }

  // Verification outcome is decided from the current state of both chains
  // as of handshake *completion* time.
  const SimTime done_at = sim.now() + total;
  sim.schedule(total, [&sim, initiator, acceptor, trust_anchor,
                       cb = std::move(callback), policy = config.policy,
                       done_at] {
    (void)sim;
    HandshakeResult result;
    const Status initiator_ok =
        verify_chain(initiator.chain, trust_anchor, done_at, policy);
    if (!initiator_ok.ok()) {
      result.status = initiator_ok;
      cb(std::move(result));
      return;
    }
    const Status acceptor_ok =
        verify_chain(acceptor.chain, trust_anchor, done_at, policy);
    if (!acceptor_ok.ok()) {
      result.status = acceptor_ok;
      cb(std::move(result));
      return;
    }
    result.initiator_name = initiator.name();
    result.acceptor_name = acceptor.name();
    // Session token derived from both parties' key material (a stand-in for
    // the TLS master secret).
    result.session_token = sign(initiator.keys.public_id ^
                                    acceptor.keys.public_id,
                                0x517cc1b727220a95ULL);
    cb(std::move(result));
  });
}

Expected<Credential> delegate_proxy(const Credential& delegate_from, SimTime now,
                                    Duration lifetime, std::uint64_t key_seed) {
  return create_proxy(delegate_from, now, lifetime, key_seed);
}

std::uint64_t protect(std::uint64_t session_token, const void* data,
                      std::size_t size) {
  std::uint64_t h = session_token ^ 0xcbf29ce484222325ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace cg::gsi
