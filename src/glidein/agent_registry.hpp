// Broker-side registry of glide-in agents. The paper's key startup result
// rests on this: "information about existing VMs is kept locally by
// CrossBroker", so interactive submission in shared mode skips the
// discovery and selection phases entirely.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "glidein/agent.hpp"

namespace cg::glidein {

class AgentRegistry {
public:
  explicit AgentRegistry(sim::Simulation& sim) : sim_{sim} {}

  /// Creates a new agent bound to a site; the caller submits its carrier job.
  GlideinAgent& create(SiteId site, GlideinAgentConfig config = {});

  /// Permanently removes an agent (after death or dismissal).
  void remove(AgentId id);

  [[nodiscard]] GlideinAgent* find(AgentId id);
  /// The agent whose carrier LRMS job is `job`, if any.
  [[nodiscard]] GlideinAgent* find_by_carrier(JobId job);

  /// A running agent with a free interactive-vm, preferring the given site
  /// ordering; nullptr if none exists anywhere.
  [[nodiscard]] GlideinAgent* find_free_interactive_vm();
  [[nodiscard]] GlideinAgent* find_free_interactive_vm(SiteId site);

  [[nodiscard]] int free_interactive_vms(SiteId site) const;
  [[nodiscard]] int total_agents() const { return static_cast<int>(agents_.size()); }
  [[nodiscard]] int running_agents() const;

  [[nodiscard]] std::vector<GlideinAgent*> agents();

private:
  sim::Simulation& sim_;
  IdGenerator<AgentId> ids_;
  std::map<AgentId, std::unique_ptr<GlideinAgent>> agents_;
};

}  // namespace cg::glidein
