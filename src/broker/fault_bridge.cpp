#include "broker/fault_bridge.hpp"

#include "util/log.hpp"

namespace cg::broker {

namespace {
constexpr const char* kLog = "fault-bridge";
}

FaultBridge::FaultBridge(GridScenario& grid, sim::FaultInjector& injector)
    : grid_{grid} {
  injector.set_handler(
      sim::FaultKind::kAgentCrash,
      [this](const sim::FaultSpec& spec) { on_agent_crash(spec); });
  injector.set_handler(
      sim::FaultKind::kAgentWedge,
      [this](const sim::FaultSpec& spec) { on_agent_wedge(spec); },
      [this](const sim::FaultSpec& spec) { on_agent_unwedge(spec); });
  injector.set_handler(
      sim::FaultKind::kNodeCrash,
      [this](const sim::FaultSpec& spec) { on_node_crash(spec); },
      [this](const sim::FaultSpec& spec) { on_node_revive(spec); });
}

std::optional<AgentId> FaultBridge::resolve_agent(
    const std::string& target) const {
  const auto query = sim::parse_victim_query(target);
  if (!query || query->fn == sim::VictimQuery::Fn::kNodeOf) return std::nullopt;
  if (query->ref == sim::VictimQuery::Ref::kAgent) return AgentId{query->id};
  const JobRecord* record = grid_.broker().record(JobId{query->id});
  if (record == nullptr) return std::nullopt;
  for (const auto& sub : record->subjobs) {
    if (sub.agent && !sub.completed) return *sub.agent;
  }
  return std::nullopt;
}

std::optional<FaultBridge::NodeRef> FaultBridge::resolve_node(
    const std::string& target) const {
  const auto query = sim::parse_victim_query(target);
  if (!query || query->fn != sim::VictimQuery::Fn::kNodeOf) return std::nullopt;
  if (query->ref == sim::VictimQuery::Ref::kAgent) {
    const glidein::GlideinAgent* agent =
        grid_.broker().agents().find(AgentId{query->id});
    if (agent == nullptr || !agent->node()) return std::nullopt;
    return locate_node(agent->site(), *agent->node());
  }
  const JobRecord* record = grid_.broker().record(JobId{query->id});
  if (record == nullptr) return std::nullopt;
  for (const auto& sub : record->subjobs) {
    if (sub.completed) continue;
    if (sub.agent) {
      // Agent-resident subjob: the node is wherever the carrier sits.
      const glidein::GlideinAgent* agent = grid_.broker().agents().find(*sub.agent);
      if (agent != nullptr && agent->node()) {
        return locate_node(agent->site(), *agent->node());
      }
      continue;
    }
    // Direct placement: ask the site scheduler where the LRMS job runs.
    for (std::size_t i = 0; i < grid_.site_count(); ++i) {
      lrms::Site& site = grid_.site(i);
      if (site.id() != sub.site) continue;
      const auto node = site.scheduler().node_of(sub.lrms_job_id);
      if (node) return locate_node(sub.site, *node);
    }
  }
  return std::nullopt;
}

std::optional<FaultBridge::NodeRef> FaultBridge::locate_node(SiteId site,
                                                             NodeId node) const {
  for (std::size_t s = 0; s < grid_.site_count(); ++s) {
    if (grid_.site(s).id() != site) continue;
    lrms::LocalScheduler& scheduler = grid_.site(s).scheduler();
    for (std::size_t n = 0; n < scheduler.node_count(); ++n) {
      if (scheduler.node(n).id() == node) return NodeRef{s, n};
    }
  }
  return std::nullopt;
}

void FaultBridge::on_agent_crash(const sim::FaultSpec& spec) {
  const auto agent_id = resolve_agent(spec.target);
  if (!agent_id) {
    log_warn(kLog, "agent-crash victim '", spec.target, "' did not resolve");
    return;
  }
  const glidein::GlideinAgent* agent = grid_.broker().agents().find(*agent_id);
  if (agent == nullptr) return;
  // Killing the carrier job is how an agent dies: the kill observer chain
  // (scheduler -> broker) runs the normal death path.
  const JobId carrier = agent->carrier_job_id();
  for (std::size_t i = 0; i < grid_.site_count(); ++i) {
    if (grid_.site(i).scheduler().kill_running(carrier)) return;
  }
}

void FaultBridge::on_agent_wedge(const sim::FaultSpec& spec) {
  const auto agent_id = resolve_agent(spec.target);
  if (!agent_id) {
    log_warn(kLog, "agent-wedge victim '", spec.target, "' did not resolve");
    return;
  }
  glidein::GlideinAgent* agent = grid_.broker().agents().find(*agent_id);
  if (agent == nullptr) return;
  agent->set_wedged(true);
  wedged_agents_[spec.target] = *agent_id;
}

void FaultBridge::on_agent_unwedge(const sim::FaultSpec& spec) {
  const auto it = wedged_agents_.find(spec.target);
  if (it == wedged_agents_.end()) return;
  glidein::GlideinAgent* agent = grid_.broker().agents().find(it->second);
  wedged_agents_.erase(it);
  if (agent != nullptr) agent->set_wedged(false);
}

void FaultBridge::on_node_crash(const sim::FaultSpec& spec) {
  const auto node = resolve_node(spec.target);
  if (!node) {
    log_warn(kLog, "node-crash victim '", spec.target, "' did not resolve");
    return;
  }
  grid_.site(node->site_index).scheduler().fail_node(node->node_index);
  crashed_nodes_[spec.target] = *node;
}

void FaultBridge::on_node_revive(const sim::FaultSpec& spec) {
  const auto it = crashed_nodes_.find(spec.target);
  if (it == crashed_nodes_.end()) return;
  grid_.site(it->second.site_index)
      .scheduler()
      .revive_node(it->second.node_index);
  crashed_nodes_.erase(it);
}

}  // namespace cg::broker
