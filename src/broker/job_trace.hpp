// Job event trace: the analogue of the DataGrid Logging & Bookkeeping
// service ("certain external tools taken from the DataGrid project",
// Section 6). Every decision the broker takes about a job is recorded with
// its virtual timestamp, giving users the post-mortem audit trail grid
// operators lived by — and giving tests a single place to assert on broker
// behaviour.
#pragma once

#include <string>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace cg::broker {

struct TraceEvent {
  SimTime when;
  JobId job;          ///< JobId::none() for broker-global events
  std::string kind;   ///< e.g. "submitted", "state", "match", "agent"
  std::string detail;
};

class JobTrace {
public:
  void record(SimTime when, JobId job, std::string kind, std::string detail);

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::vector<TraceEvent> for_job(JobId job) const;
  /// Events of one kind, in order.
  [[nodiscard]] std::vector<TraceEvent> of_kind(const std::string& kind) const;
  [[nodiscard]] std::size_t count(const std::string& kind) const;

  /// Human-readable rendering (one event per line).
  [[nodiscard]] std::string render() const;
  /// Machine-readable CSV: when_s,job,kind,detail.
  [[nodiscard]] std::string to_csv() const;

  void clear() { events_.clear(); }

private:
  std::vector<TraceEvent> events_;
};

}  // namespace cg::broker
