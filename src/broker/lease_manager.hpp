// Exclusive temporal access to resources (Section 3): once a resource has
// been matched to a job, it is excluded from further matches for a bounded
// time so that concurrent submissions do not all pile onto the same "free"
// CPUs before the information system catches up. Leases expire automatically
// or are released when the match either commits or fails.
#pragma once

#include <functional>
#include <map>

#include "sim/simulation.hpp"
#include "util/expected.hpp"
#include "util/ids.hpp"

namespace cg::broker {

class LeaseManager {
public:
  explicit LeaseManager(sim::Simulation& sim) : sim_{sim} {}
  ~LeaseManager();
  LeaseManager(const LeaseManager&) = delete;
  LeaseManager& operator=(const LeaseManager&) = delete;

  /// Leases `cpus` CPUs of a site for `ttl`. Fails with
  /// "broker.lease_invalid" on nonsense input, and — when the caller states
  /// the site's capacity (>= 0) — with "broker.lease_conflict" when the
  /// request would over-commit CPUs already under lease (a concurrent
  /// submission won the race). Capacity -1 skips the conflict check.
  [[nodiscard]] Expected<LeaseId> acquire(SiteId site, int cpus, Duration ttl,
                                          int site_capacity = -1);

  /// Releases a lease early (match committed or abandoned). Returns false
  /// if the lease already expired.
  bool release(LeaseId id);

  /// CPUs of a site currently under lease. O(log sites): answered from a
  /// per-site aggregate (the matchmaker asks once per scanned record).
  [[nodiscard]] int leased_cpus(SiteId site) const;
  [[nodiscard]] std::size_t active_leases() const { return leases_.size(); }

  /// Observer fired on every change to a site's leased-CPU total: positive
  /// delta on acquire, negative on release and on expiry. The broker wires
  /// this to the information system's free-CPU index so matchmaking pruning
  /// tracks leases incrementally. Single observer; nullptr detaches.
  using LeaseObserver = std::function<void(SiteId, int cpu_delta)>;
  void set_observer(LeaseObserver observer) { observer_ = std::move(observer); }

private:
  void notify(SiteId site, int cpu_delta) {
    if (observer_) observer_(site, cpu_delta);
  }

  struct Lease {
    SiteId site;
    int cpus;
    sim::EventHandle expiry;
  };

  /// Applies a delta to the per-site aggregate and notifies the observer.
  void account(SiteId site, int cpu_delta);

  sim::Simulation& sim_;
  IdGenerator<LeaseId> ids_;
  std::map<LeaseId, Lease> leases_;
  /// Leased CPUs per site (entries removed when they reach zero).
  std::map<SiteId, int> by_site_;
  LeaseObserver observer_;
};

}  // namespace cg::broker
