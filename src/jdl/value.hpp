// Runtime values of the Job Description Language. JDL follows ClassAd
// semantics: expressions evaluate to typed values with an explicit Undefined
// that propagates through operators (three-valued logic), which is what makes
// matchmaking robust to sites that do not publish an attribute.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace cg::jdl {

class Value;
using ValueList = std::vector<Value>;

class Value {
public:
  enum class Type { kUndefined, kBool, kInt, kReal, kString, kList };

  Value() : data_{Undefined{}} {}
  static Value undefined() { return Value{}; }
  static Value boolean(bool b) { return Value{b}; }
  static Value integer(std::int64_t i) { return Value{i}; }
  static Value real(double d) { return Value{d}; }
  static Value string(std::string s) { return Value{std::move(s)}; }
  static Value list(ValueList items) { return Value{std::move(items)}; }

  [[nodiscard]] Type type() const;
  [[nodiscard]] bool is_undefined() const { return type() == Type::kUndefined; }
  [[nodiscard]] bool is_bool() const { return type() == Type::kBool; }
  [[nodiscard]] bool is_int() const { return type() == Type::kInt; }
  [[nodiscard]] bool is_real() const { return type() == Type::kReal; }
  [[nodiscard]] bool is_number() const { return is_int() || is_real(); }
  [[nodiscard]] bool is_string() const { return type() == Type::kString; }
  [[nodiscard]] bool is_list() const { return type() == Type::kList; }

  /// Accessors; behaviour is undefined unless the type matches (callers check).
  [[nodiscard]] bool as_bool() const { return std::get<bool>(data_); }
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(data_); }
  [[nodiscard]] double as_real() const { return std::get<double>(data_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(data_); }
  [[nodiscard]] const ValueList& as_list() const { return std::get<ValueList>(data_); }

  /// Numeric value widened to double; requires is_number().
  [[nodiscard]] double as_number() const {
    return is_int() ? static_cast<double>(as_int()) : as_real();
  }

  /// True iff the value is boolean true (the matchmaking acceptance test:
  /// Undefined and non-bool values do NOT match).
  [[nodiscard]] bool is_true() const { return is_bool() && as_bool(); }

  /// Structural equality (exact, no numeric coercion); used by tests.
  [[nodiscard]] bool same_as(const Value& other) const;

  /// Renders the value in JDL source syntax.
  [[nodiscard]] std::string to_string() const;

private:
  struct Undefined {
    bool operator==(const Undefined&) const = default;
  };
  explicit Value(bool b) : data_{b} {}
  explicit Value(std::int64_t i) : data_{i} {}
  explicit Value(double d) : data_{d} {}
  explicit Value(std::string s) : data_{std::move(s)} {}
  explicit Value(ValueList l) : data_{std::move(l)} {}

  std::variant<Undefined, bool, std::int64_t, double, std::string, ValueList> data_;
};

// ---- ClassAd operator semantics (Undefined propagates; && and || use
// three-valued logic so `Undefined && false` is false). ----

[[nodiscard]] Value logical_and(const Value& a, const Value& b);
[[nodiscard]] Value logical_or(const Value& a, const Value& b);
[[nodiscard]] Value logical_not(const Value& a);

[[nodiscard]] Value arith_add(const Value& a, const Value& b);
[[nodiscard]] Value arith_sub(const Value& a, const Value& b);
[[nodiscard]] Value arith_mul(const Value& a, const Value& b);
[[nodiscard]] Value arith_div(const Value& a, const Value& b);
[[nodiscard]] Value arith_mod(const Value& a, const Value& b);
[[nodiscard]] Value arith_neg(const Value& a);

[[nodiscard]] Value cmp_eq(const Value& a, const Value& b);
[[nodiscard]] Value cmp_ne(const Value& a, const Value& b);
[[nodiscard]] Value cmp_lt(const Value& a, const Value& b);
[[nodiscard]] Value cmp_le(const Value& a, const Value& b);
[[nodiscard]] Value cmp_gt(const Value& a, const Value& b);
[[nodiscard]] Value cmp_ge(const Value& a, const Value& b);

}  // namespace cg::jdl
