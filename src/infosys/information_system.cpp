#include "infosys/information_system.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace cg::infosys {

InformationSystem::InformationSystem(sim::Simulation& sim,
                                     InformationSystemConfig config)
    : sim_{sim}, config_{config} {}

void InformationSystem::register_site(const SiteStaticInfo& info,
                                      FreshProvider provider,
                                      std::optional<Duration> site_query_latency) {
  if (!info.id.valid()) throw std::invalid_argument{"register_site: invalid id"};
  if (!provider) throw std::invalid_argument{"register_site: null provider"};
  SiteEntry entry;
  entry.static_info = info;
  entry.provider = std::move(provider);
  entry.query_latency = site_query_latency.value_or(config_.default_site_query_latency);
  sites_.insert_or_assign(info.id, std::move(entry));
}

void InformationSystem::unregister_site(SiteId id) {
  sites_.erase(id);
}

void InformationSystem::publish(const SiteRecord& record) {
  const auto it = sites_.find(record.static_info.id);
  if (it == sites_.end()) {
    log_warn("infosys", "publish for unregistered site ", record.static_info.name);
    return;
  }
  it->second.published = record;
  it->second.published->sampled_at = sim_.now();
}

void InformationSystem::publish_fresh(SiteId id) {
  const auto it = sites_.find(id);
  if (it == sites_.end()) return;
  SiteRecord record = it->second.provider();
  record.sampled_at = sim_.now();
  it->second.published = std::move(record);
}

void InformationSystem::start_periodic_publication(SiteId id, Duration period) {
  const auto it = sites_.find(id);
  if (it == sites_.end()) throw std::invalid_argument{"unknown site"};
  if (period <= Duration::zero()) throw std::invalid_argument{"period must be positive"};
  it->second.periodic = true;
  it->second.period = period;
  publish_fresh(id);
  schedule_publication(id);
}

void InformationSystem::schedule_publication(SiteId id) {
  const auto it = sites_.find(id);
  if (it == sites_.end() || !it->second.periodic) return;
  // Daemon event: periodic publication must not keep the simulation alive.
  sim_.schedule_daemon(it->second.period, [this, id] {
    // The site may have been unregistered while the timer was pending.
    const auto entry = sites_.find(id);
    if (entry == sites_.end() || !entry->second.periodic) return;
    publish_fresh(id);
    schedule_publication(id);
  });
}

void InformationSystem::query_index(IndexCallback callback) {
  if (!callback) throw std::invalid_argument{"query_index: null callback"};
  ++index_queries_;
  std::vector<SiteRecord> records;
  records.reserve(sites_.size());
  for (const auto& [id, entry] : sites_) {
    if (entry.published) records.push_back(*entry.published);
  }
  sim_.schedule(config_.index_query_latency,
                [cb = std::move(callback), recs = std::move(records)]() mutable {
                  cb(std::move(recs));
                });
}

void InformationSystem::query_site(SiteId id, SiteCallback callback) {
  if (!callback) throw std::invalid_argument{"query_site: null callback"};
  ++site_queries_;
  const auto it = sites_.find(id);
  if (it == sites_.end()) {
    sim_.schedule(Duration::zero(),
                  [cb = std::move(callback)]() mutable { cb(std::nullopt); });
    return;
  }
  const Duration latency = it->second.query_latency;
  sim_.schedule(latency, [this, id, cb = std::move(callback)]() mutable {
    // Re-check: the site may disappear while the query is in flight.
    const auto entry = sites_.find(id);
    if (entry == sites_.end()) {
      cb(std::nullopt);
      return;
    }
    SiteRecord record = entry->second.provider();
    record.sampled_at = sim_.now();
    cb(std::move(record));
  });
}

std::optional<SiteRecord> InformationSystem::published_record(SiteId id) const {
  const auto it = sites_.find(id);
  if (it == sites_.end()) return std::nullopt;
  return it->second.published;
}

}  // namespace cg::infosys
