// Wire protocol between a real Console Agent and Console Shadow: length-
// prefixed frames over a byte stream.
//
//   [u8 type][u32 rank (big-endian)][u32 length (big-endian)][payload]
//
// kHello announces an agent (rank in header, empty payload); kStdin flows
// shadow -> agent; kStdout/kStderr flow agent -> shadow; kEof marks a closed
// stream; kExit carries the child's wait status as a decimal string.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cg::interpose {

enum class FrameType : std::uint8_t {
  kHello = 0,
  kStdin = 1,
  kStdout = 2,
  kStderr = 3,
  kEof = 4,
  kExit = 5,
};

[[nodiscard]] const char* to_string(FrameType type);
[[nodiscard]] bool is_valid_frame_type(std::uint8_t raw);

struct Frame {
  FrameType type = FrameType::kStdout;
  std::uint32_t rank = 0;
  std::string payload;

  [[nodiscard]] bool operator==(const Frame&) const = default;
};

/// Fixed header size on the wire.
inline constexpr std::size_t kFrameHeaderBytes = 1 + 4 + 4;
/// Upper bound on a frame payload (sanity check against stream corruption).
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

/// Serializes a frame.
[[nodiscard]] std::string encode_frame(const Frame& frame);

/// Incremental decoder: feed bytes, pull complete frames.
class FrameDecoder {
public:
  /// Appends raw bytes from the stream.
  void feed(const char* data, std::size_t size);
  void feed(std::string_view data) { feed(data.data(), data.size()); }

  /// Extracts the next complete frame, if any. Returns nullopt when more
  /// bytes are needed. Throws std::runtime_error on a corrupt header.
  [[nodiscard]] std::optional<Frame> next();

  [[nodiscard]] std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

private:
  void compact();

  std::string buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace cg::interpose
