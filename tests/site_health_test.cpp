// SiteHealth unit tests: exponential suspicion decay, the hard-exclusion
// window and its end-by-decay, reward gating above the exclusion threshold,
// the suspicion cap and erase floor, the disabled no-op mode, and the
// matchmaker wiring (hard-excluded sites skipped, ranks penalized) asserted
// identically on the legacy and compiled fast paths.
#include <gtest/gtest.h>

#include <cmath>

#include "broker/matchmaker.hpp"
#include "broker/site_health.hpp"

namespace cg::broker {
namespace {

using namespace cg::literals;

constexpr SiteId kSite{7};

SiteHealthConfig tuned() {
  SiteHealthConfig c;
  c.half_life = Duration::seconds(100);
  return c;
}

TEST(SiteHealthTest, SuspicionHalvesEveryHalfLife) {
  sim::Simulation sim;
  SiteHealth health{sim, tuned()};
  health.note_suspected(kSite);  // +1.0
  EXPECT_DOUBLE_EQ(health.suspicion(kSite), 1.0);
  EXPECT_DOUBLE_EQ(health.score(kSite), 0.5);

  sim.run_until(SimTime::from_seconds(100));
  EXPECT_DOUBLE_EQ(health.suspicion(kSite), 0.5);
  sim.run_until(SimTime::from_seconds(300));
  EXPECT_DOUBLE_EQ(health.suspicion(kSite), 0.125);
  // Untracked sites are perfectly healthy.
  EXPECT_DOUBLE_EQ(health.suspicion(SiteId{8}), 0.0);
  EXPECT_DOUBLE_EQ(health.score(SiteId{8}), 1.0);
}

TEST(SiteHealthTest, HardExclusionEndsByDecay) {
  sim::Simulation sim;
  SiteHealth health{sim, tuned()};
  health.note_eviction(kSite);   // +2.0
  health.note_suspected(kSite);  // +1.0 -> 3.0, above the 1.5 threshold
  EXPECT_TRUE(health.hard_excluded(kSite));
  // 3.0 halves to 1.5 after one half-life: still at the threshold...
  EXPECT_TRUE(health.hard_excluded_at(kSite, SimTime::from_seconds(100)));
  // ...and strictly below it any moment later. The projection is what the
  // index consults for replies delivered in the future.
  EXPECT_FALSE(health.hard_excluded_at(kSite, SimTime::from_seconds(101)));
  sim.run_until(SimTime::from_seconds(101));
  EXPECT_FALSE(health.hard_excluded(kSite));
  EXPECT_GT(health.suspicion(kSite), 0.0);
}

TEST(SiteHealthTest, RewardsAreDroppedWhileHardExcluded) {
  sim::Simulation sim;
  SiteHealth health{sim, tuned()};
  health.note_eviction(kSite);  // 2.0 >= threshold
  health.note_completion(kSite);
  health.note_restored(kSite);
  // Gated: rewards must not end an exclusion window early (the index pruning
  // invariant depends on suspicion never dropping faster than decay).
  EXPECT_DOUBLE_EQ(health.suspicion(kSite), 2.0);

  sim.run_until(SimTime::from_seconds(100));  // decayed to 1.0, back in play
  health.note_completion(kSite);              // -0.25 now applies
  EXPECT_DOUBLE_EQ(health.suspicion(kSite), 0.75);
  // Rewards for untracked sites stay no-ops (no negative suspicion).
  health.note_completion(SiteId{8});
  EXPECT_EQ(health.tracked_sites(), 1u);
}

TEST(SiteHealthTest, SuspicionIsCappedAndTinyResidueIsErased) {
  sim::Simulation sim;
  SiteHealth health{sim, tuned()};
  for (int i = 0; i < 10; ++i) health.note_eviction(kSite);
  EXPECT_DOUBLE_EQ(health.suspicion(kSite), health.config().max_suspicion);

  sim::Simulation sim2;
  SiteHealth small{sim2, tuned()};
  small.note_heartbeat_miss(kSite);  // 0.1, well under the threshold
  sim2.run_until(SimTime::from_seconds(100));
  small.note_completion(kSite);  // 0.05 - 0.25 clamps to 0 -> erased
  EXPECT_EQ(small.tracked_sites(), 0u);
  EXPECT_DOUBLE_EQ(small.suspicion(kSite), 0.0);
}

TEST(SiteHealthTest, DisabledConfigIsANoOp) {
  sim::Simulation sim;
  SiteHealthConfig config = tuned();
  config.enabled = false;
  SiteHealth health{sim, config};
  health.note_eviction(kSite);
  health.note_suspected(kSite);
  EXPECT_EQ(health.tracked_sites(), 0u);
  EXPECT_DOUBLE_EQ(health.suspicion(kSite), 0.0);
  EXPECT_DOUBLE_EQ(health.score(kSite), 1.0);
  EXPECT_FALSE(health.hard_excluded(kSite));
  EXPECT_DOUBLE_EQ(health.rank_penalty(kSite), 0.0);
}

TEST(SiteHealthTest, PublishesHealthGauge) {
  sim::Simulation sim;
  obs::MetricsRegistry metrics;
  SiteHealth health{sim, tuned()};
  health.set_metrics(&metrics);
  health.note_suspected(kSite);
  const auto snapshot = metrics.snapshot(sim.now());
  const auto* sample = snapshot.find(
      "broker.site.health", obs::LabelSet{{"site", "7"}});
  ASSERT_NE(sample, nullptr);
  EXPECT_DOUBLE_EQ(sample->value, 0.5);  // score of suspicion 1.0
}

// ------------------------------------------------- matchmaker integration --

infosys::SiteRecord make_record(std::uint64_t id, int free_cpus) {
  infosys::SiteRecord r;
  r.static_info.id = SiteId{id};
  r.static_info.name = "site" + std::to_string(id);
  r.static_info.arch = "i686";
  r.static_info.worker_nodes = free_cpus;
  r.static_info.cpus_per_node = 1;
  r.dynamic_info.free_cpus = free_cpus;
  return r;
}

jdl::JobDescription make_job() {
  auto jd = jdl::JobDescription::parse("Executable = \"app\";");
  EXPECT_TRUE(jd.has_value()) << (jd ? "" : jd.error().to_string());
  return jd.value();
}

class SiteHealthMatchFixture : public ::testing::TestWithParam<bool> {
protected:
  sim::Simulation sim;
  LeaseManager leases{sim};
  SiteHealth health{sim, tuned()};
  Matchmaker matchmaker{MatchmakerConfig{.rank_tie_margin = 1e-9,
                                         .randomize_ties = true,
                                         .use_fast_path = GetParam()}};

  void SetUp() override { matchmaker.set_site_health(&health); }

  std::optional<SiteId> pick(const jdl::JobDescription& job,
                             const std::vector<infosys::SiteRecord>& records) {
    Rng rng{42};
    if (GetParam()) {
      const auto compiled = matchmaker.compile(job);
      const auto chosen =
          matchmaker.match_one(*compiled, CandidateSource{records}, leases, 1,
                               rng);
      return chosen ? std::optional<SiteId>{chosen->site} : std::nullopt;
    }
    return matchmaker.select(matchmaker.filter(job, records, leases, 1), rng);
  }
};

INSTANTIATE_TEST_SUITE_P(LegacyAndFast, SiteHealthMatchFixture,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& p) {
                           return p.param ? "Fast" : "Legacy";
                         });

TEST_P(SiteHealthMatchFixture, PenaltyBreaksTiesAwayFromDegradedSite) {
  // Equal capacity: without health both sites tie. A single heartbeat miss
  // (suspicion 0.1, far below exclusion) must break the tie the other way.
  health.note_heartbeat_miss(SiteId{1});
  const auto job = make_job();
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(pick(job, {make_record(1, 4), make_record(2, 4)}), SiteId{2});
  }
}

TEST_P(SiteHealthMatchFixture, HardExcludedSiteIsSkippedEvenWhenBest) {
  // Site 1 offers strictly better rank but sits above the threshold.
  health.note_eviction(SiteId{1});
  const auto job = make_job();
  EXPECT_EQ(pick(job, {make_record(1, 8), make_record(2, 2)}), SiteId{2});
  // Exclusion everywhere -> no match at all.
  health.note_eviction(SiteId{2});
  EXPECT_EQ(pick(job, {make_record(1, 8), make_record(2, 2)}), std::nullopt);
  // Decay re-admits: after two half-lives site 1 (2.0 -> 0.5) is back and
  // wins on rank despite the residual penalty (8 - 0.5 > 2 - 0.5).
  sim.run_until(SimTime::from_seconds(200));
  EXPECT_EQ(pick(job, {make_record(1, 8), make_record(2, 2)}), SiteId{1});
}

TEST_P(SiteHealthMatchFixture, DetachedHealthRestoresHealthBlindMatching) {
  health.note_eviction(SiteId{1});
  matchmaker.set_site_health(nullptr);
  const auto job = make_job();
  EXPECT_EQ(pick(job, {make_record(1, 8), make_record(2, 2)}), SiteId{1});
}

TEST(SiteHealthParityTest, FilterSitesPrunesIdenticallyOnBothPaths) {
  sim::Simulation sim;
  LeaseManager leases{sim};
  SiteHealth health{sim, tuned()};
  health.note_eviction(SiteId{2});
  health.note_heartbeat_miss(SiteId{3});

  Matchmaker legacy{MatchmakerConfig{.use_fast_path = false}};
  Matchmaker fast{MatchmakerConfig{.use_fast_path = true}};
  legacy.set_site_health(&health);
  fast.set_site_health(&health);

  const auto job = make_job();
  const auto compiled = fast.compile(job);
  const std::vector<infosys::SiteRecord> records{
      make_record(1, 4), make_record(2, 4), make_record(3, 4)};
  const auto a =
      legacy.filter_sites(job, nullptr, CandidateSource{records}, leases, 1);
  const auto b = fast.filter_sites(job, compiled.get(),
                                   CandidateSource{records}, leases, 1);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 2u);  // site 2 hard-excluded on both paths
  EXPECT_EQ(a[0], SiteId{1});
  EXPECT_EQ(a[1], SiteId{3});
}

}  // namespace
}  // namespace cg::broker
