// Ablation A5: degree of multiprogramming. The paper's agents create one
// interactive VM per node and name a larger, dynamic degree as future work
// ("our multi-programming system could allow a larger degree of
// multi-programming ... taking into account the behavior of applications").
// This ablation sweeps the degree on a saturated one-node grid and measures
// the trade-off: more concurrent interactive jobs start instantly, but each
// one's CPU bursts dilate as residents multiply.
#include <iostream>

#include "grid/grid.hpp"
#include "util/stats.hpp"

namespace {

using namespace cg;
using namespace cg::broker;
using namespace cg::literals;

struct DegreeResult {
  int started_immediately = 0;  ///< of the burst, how many got a VM at once
  int failed = 0;
  double mean_cpu_burst_s = 0.0;  ///< across all interactive jobs
  double batch_stretch = 0.0;     ///< batch runtime vs its undisturbed time
};

DegreeResult run_degree(int degree) {
  GridConfig config;
  config.sites = 1;
  config.nodes_per_site = 1;
  config.broker.glidein.interactive_slots = degree;
  config.broker.dismiss_idle_agents = false;
  Grid grid{config};

  // The node is busy with a broker-submitted batch job (inside an agent).
  std::optional<SimTime> batch_started;
  std::optional<SimTime> batch_finished;
  JobCallbacks batch_callbacks;
  batch_callbacks.on_running = [&](const JobRecord&) {
    batch_started = grid.sim().now();
  };
  batch_callbacks.on_complete = [&](const JobRecord&) {
    batch_finished = grid.sim().now();
  };
  if (!grid.submit(jdl::JobDescription::parse("Executable = \"bg\";").value(),
                   UserId{1}, lrms::Workload::cpu(600_s), batch_callbacks)) {
    std::cerr << "batch submission refused\n";
  }
  grid.sim().run_until(SimTime::from_seconds(120));

  // A burst of 4 interactive jobs in shared mode.
  DegreeResult result;
  RunningStats cpu_bursts;
  const SimTime burst_at = grid.sim().now();
  for (int i = 0; i < 4; ++i) {
    JobCallbacks callbacks;
    callbacks.on_running = [&result, &grid, burst_at](const JobRecord&) {
      if ((grid.sim().now() - burst_at).to_seconds() < 15.0) {
        ++result.started_immediately;
      }
    };
    callbacks.on_failed = [&result](const JobRecord&, const Error&) {
      ++result.failed;
    };
    callbacks.phase_observer = [&cpu_bursts](const lrms::Phase& phase,
                                             Duration measured) {
      if (phase.kind == lrms::PhaseKind::kCpu) {
        cpu_bursts.add(measured.to_seconds());
      }
    };
    if (!grid.submit(jdl::JobDescription::parse(
                         "Executable = \"viz\"; JobType = \"interactive\"; "
                         "MachineAccess = \"shared\"; PerformanceLoss = 10;")
                         .value(),
                     UserId{static_cast<std::uint64_t>(i + 2)},
                     lrms::Workload::iterative(30, 6_ms, 921_ms), callbacks)) {
      ++result.failed;
    }
  }
  grid.sim().run_until(SimTime::from_seconds(4 * 3600));
  result.mean_cpu_burst_s = cpu_bursts.mean();
  if (batch_started && batch_finished) {
    result.batch_stretch =
        (*batch_finished - *batch_started).to_seconds() / 600.0;
  }
  return result;
}

}  // namespace

int main() {
  std::cout << "== Ablation A5: degree of multiprogramming ==\n"
            << "(saturated 1-node grid; burst of 4 shared interactive jobs, "
               "PL=10; CPU burst reference 0.921 s)\n\n";

  cg::TablePrinter table{{"Degree", "Started immediately (of 4)", "Failed",
                          "Mean CPU burst (s)", "Batch stretch"}};
  std::vector<DegreeResult> results;
  for (const int degree : {1, 2, 3, 4}) {
    const DegreeResult r = run_degree(degree);
    results.push_back(r);
    table.add_row({std::to_string(degree),
                   std::to_string(r.started_immediately),
                   std::to_string(r.failed),
                   cg::fmt_fixed(r.mean_cpu_burst_s, 3),
                   cg::fmt_fixed(r.batch_stretch, 2) + "x"});
  }
  std::cout << table.render() << "\n";

  const auto check = [](const std::string& claim, bool holds) {
    std::cout << (holds ? "  [ok]   " : "  [MISS] ") << claim << "\n";
  };
  check("higher degree admits more of the burst immediately",
        results[3].started_immediately > results[0].started_immediately);
  check("degree 1 rejects the overflow (interactive jobs fail, not queue)",
        results[0].failed > 0);
  check("per-job CPU bursts dilate as the degree fills",
        results[3].mean_cpu_burst_s > results[0].mean_cpu_burst_s * 1.5);
  check("degree 4 hosts the whole burst with zero failures",
        results[3].failed == 0);
  return 0;
}
