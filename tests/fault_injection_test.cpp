// Scenario-based failure regression suite driven by the deterministic
// fault-injection subsystem (sim/fault): link partitions during streaming,
// glide-in agent crashes mid-job, worker-node crashes under exclusive
// interactive jobs, and spool I/O failures in the real interpose layer.
// Every simulated scenario must be bit-for-bit reproducible for a fixed
// seed, and every reliable-mode session must recover without losing frames.
#include <gtest/gtest.h>

#include <unistd.h>

#include <charconv>
#include <chrono>
#include <optional>
#include <sstream>
#include <thread>

#include "broker/fault_bridge.hpp"
#include "broker/grid_scenario.hpp"
#include "broker/job_trace.hpp"
#include "interpose/interactive_session.hpp"
#include "sim/fault.hpp"
#include "stream/grid_console.hpp"

namespace cg {
namespace {

using namespace cg::literals;

// --------------------------------------------------- streaming scenarios ----

/// Extracts every "tick <n>" id from a blob, in order of appearance.
std::vector<int> tick_ids(std::string_view blob) {
  std::vector<int> ids;
  std::size_t pos = 0;
  while ((pos = blob.find("tick ", pos)) != std::string::npos) {
    pos += 5;
    int id = 0;
    std::from_chars(blob.data() + pos, blob.data() + blob.size(), id);
    ids.push_back(id);
  }
  return ids;
}

struct StreamRun {
  std::string screen;
  std::string timeline;
  std::size_t events = 0;
  std::vector<int> delivered;
  std::size_t bytes_lost = 0;
  bool agent_failed = false;
};

/// One console session with a 20 s partition injected while 30 one-second
/// ticks stream from the worker node.
StreamRun run_partitioned_stream(std::uint64_t seed, jdl::StreamingMode mode) {
  sim::Simulation sim;
  sim::Network network{Rng{seed}};
  network.add_link("ui", "wn", sim::LinkSpec::campus());

  sim::FaultInjector injector{sim, &network};
  sim::FaultPlan plan;
  plan.partition_link("ui", "wn", SimTime::from_seconds(5.0),
                      Duration::seconds(20));
  injector.arm(plan);

  StreamRun result;
  stream::GridConsoleConfig config;
  config.mode = mode;
  config.retry.retry_interval = 1_s;
  config.retry.max_retries = 60;
  stream::GridConsole console{sim, network, config, "ui",
                              [&](std::string d) { result.screen += d; },
                              Rng{seed ^ 0x5a5a}};
  console.shadow().set_frame_observer(
      [&](int, stream::StdStream, std::string_view data) {
        for (const int id : tick_ids(data)) result.delivered.push_back(id);
      });
  auto& agent = console.add_agent(0, "wn");
  for (int i = 0; i < 30; ++i) {
    sim.schedule(Duration::seconds(i), [&agent, i] {
      agent.write_stdout("tick " + std::to_string(i) + "\n");
    });
  }
  sim.run();
  result.timeline = injector.timeline_digest();
  result.events = sim.processed_events();
  result.bytes_lost = agent.output_bytes_lost();
  result.agent_failed = agent.failed();
  return result;
}

TEST(FaultInjectionTest, PartitionDuringReliableStreamLosesNothing) {
  const StreamRun run =
      run_partitioned_stream(11, jdl::StreamingMode::kReliable);
  std::string expected;
  std::vector<int> all_ids;
  for (int i = 0; i < 30; ++i) {
    expected += "tick " + std::to_string(i) + "\n";
    all_ids.push_back(i);
  }
  // Spool-and-replay: every frame arrives, exactly once, in order.
  EXPECT_EQ(run.screen, expected);
  EXPECT_EQ(run.delivered, all_ids);
  EXPECT_EQ(run.bytes_lost, 0u);
  EXPECT_FALSE(run.agent_failed);
}

TEST(FaultInjectionTest, PartitionedReliableStreamIsBitForBitReproducible) {
  const StreamRun a = run_partitioned_stream(7, jdl::StreamingMode::kReliable);
  const StreamRun b = run_partitioned_stream(7, jdl::StreamingMode::kReliable);
  EXPECT_EQ(a.screen, b.screen);
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_EQ(a.events, b.events);  // same event count, same recovery timeline
  EXPECT_FALSE(a.timeline.empty());
}

TEST(FaultInjectionTest, PartitionDuringFastStreamIsLossyButOrdered) {
  const StreamRun run = run_partitioned_stream(11, jdl::StreamingMode::kFast);
  // The lossy contract of fast mode: frames sent into the outage vanish…
  EXPECT_GT(run.bytes_lost, 0u);
  EXPECT_LT(run.delivered.size(), 30u);
  // …but what does arrive is unique and in write order.
  for (std::size_t i = 1; i < run.delivered.size(); ++i) {
    EXPECT_LT(run.delivered[i - 1], run.delivered[i]);
  }
}

// ------------------------------------------------------- grid scenarios ----

jdl::JobDescription parse_job(const std::string& source) {
  auto jd = jdl::JobDescription::parse(source);
  EXPECT_TRUE(jd.has_value()) << (jd ? "" : jd.error().to_string());
  return jd.value();
}

struct Outcome {
  bool running = false;
  bool completed = false;
  bool failed = false;
  std::string error_code;
};

broker::JobCallbacks watch(Outcome& outcome) {
  broker::JobCallbacks cb;
  cb.on_running = [&outcome](const broker::JobRecord&) { outcome.running = true; };
  cb.on_complete = [&outcome](const broker::JobRecord&) {
    outcome.completed = true;
  };
  cb.on_failed = [&outcome](const broker::JobRecord&, const Error& e) {
    outcome.failed = true;
    outcome.error_code = e.code;
  };
  return cb;
}

struct AgentCrashRun {
  bool interactive_completed = false;
  int interactive_resubmissions = 0;
  std::optional<SimTime> resubmit_at;
  std::string digest;
  std::string decisions;
};

/// Timing-free projection of the trace: the sequence of decisions the broker
/// took, without the virtual timestamps. The matchmaker fast path must make
/// byte-identical decisions; only its internal latencies may differ.
std::string decision_digest(const broker::JobTrace& trace) {
  std::string out;
  for (const broker::TraceEvent& event : trace.events()) {
    out += std::to_string(event.job.value()) + "|" + event.kind + "|" +
           event.detail + "\n";
  }
  return out;
}

/// Shared-mode interactive job riding an agent whose carrier is killed at
/// t = 300 s by an injected agent-crash fault, with the victim named through
/// the FaultPlan victim-query DSL ("agent_of(job:N)") and resolved at fire
/// time by the FaultBridge. Recovery is opt-in via
/// resubmit_interactive_on_agent_death.
AgentCrashRun run_agent_crash_scenario(bool use_fast_path) {
  broker::JobTrace trace;
  broker::GridScenarioConfig config;
  config.sites = 3;
  config.nodes_per_site = 2;
  config.broker.resubmit_interactive_on_agent_death = true;
  config.broker.matchmaker.use_fast_path = use_fast_path;
  broker::GridScenario grid{config};
  grid.broker().set_trace(&trace);

  Outcome batch;
  (void)grid.broker().submit(parse_job("Executable = \"sim\";"), UserId{1},
                       lrms::Workload::cpu(1200_s),
                       broker::GridScenario::ui_endpoint(), watch(batch));
  grid.sim().run_until(SimTime::from_seconds(120));

  Outcome inter;
  const JobId inter_id = grid.broker().submit(
      parse_job("Executable = \"viz\"; JobType = \"interactive\"; "
                "MachineAccess = \"shared\"; PerformanceLoss = 10;"),
      UserId{2}, lrms::Workload::cpu(600_s),
      broker::GridScenario::ui_endpoint(), watch(inter)).value();
  grid.sim().run_until(SimTime::from_seconds(240));
  EXPECT_TRUE(inter.running);

  sim::FaultInjector injector{grid.sim(), &grid.network()};
  broker::FaultBridge bridge{grid, injector};
  sim::FaultPlan plan;
  plan.crash_agent("agent_of(job:" + std::to_string(inter_id.value()) + ")",
                   SimTime::from_seconds(300.0));
  injector.arm(plan);

  grid.sim().run_until(SimTime::from_seconds(1800));

  AgentCrashRun result;
  result.interactive_completed = inter.completed;
  const broker::JobRecord* record = grid.broker().record(inter_id);
  result.interactive_resubmissions = record->resubmissions;
  for (const broker::TraceEvent& event : trace.of_kind("resubmit")) {
    if (event.job == inter_id) {
      result.resubmit_at = event.when;
      break;
    }
  }
  std::ostringstream digest;
  digest << trace.to_csv() << "events=" << grid.sim().processed_events();
  result.digest = digest.str();
  result.decisions = decision_digest(trace);
  return result;
}

/// The chaos scenarios run on both matchmaker paths: recovery decisions must
/// not depend on which evaluation engine placed the jobs.
class FaultInjectionPathTest : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(MatchmakerPaths, FaultInjectionPathTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& param) {
                           return param.param ? "FastPath" : "LegacyPath";
                         });

TEST_P(FaultInjectionPathTest, AgentCrashMidJobResubmitsInteractiveWithinBackoff) {
  const AgentCrashRun run = run_agent_crash_scenario(GetParam());
  EXPECT_TRUE(run.interactive_completed);
  EXPECT_GE(run.interactive_resubmissions, 1);
  // The resubmission decision lands within the configured backoff bound of
  // the crash instant (attempt 1 waits only resubmit_backoff_base).
  ASSERT_TRUE(run.resubmit_at.has_value());
  const broker::CrossBrokerConfig defaults;
  EXPECT_GE(*run.resubmit_at, SimTime::from_seconds(300.0));
  EXPECT_LE(*run.resubmit_at,
            SimTime::from_seconds(300.0) + defaults.resubmit_backoff_max);
}

TEST_P(FaultInjectionPathTest, AgentCrashScenarioIsBitForBitReproducible) {
  const AgentCrashRun a = run_agent_crash_scenario(GetParam());
  const AgentCrashRun b = run_agent_crash_scenario(GetParam());
  EXPECT_EQ(a.digest, b.digest);
}

TEST(FaultInjectionTest, AgentCrashDecisionsAgreeAcrossMatchmakerPaths) {
  const AgentCrashRun fast = run_agent_crash_scenario(true);
  const AgentCrashRun legacy = run_agent_crash_scenario(false);
  EXPECT_EQ(fast.decisions, legacy.decisions);
  EXPECT_EQ(fast.interactive_completed, legacy.interactive_completed);
  EXPECT_EQ(fast.interactive_resubmissions, legacy.interactive_resubmissions);
}

TEST_P(FaultInjectionPathTest, NodeCrashDuringExclusiveInteractiveRecovers) {
  broker::GridScenarioConfig config;
  config.sites = 2;
  config.nodes_per_site = 2;
  config.broker.matchmaker.use_fast_path = GetParam();
  broker::GridScenario grid{config};

  Outcome outcome;
  const JobId id = grid.broker().submit(
      parse_job("Executable = \"shell\"; JobType = \"interactive\"; "
                "MachineAccess = \"exclusive\";"),
      UserId{1}, lrms::Workload::cpu(120_s),
      broker::GridScenario::ui_endpoint(), watch(outcome)).value();
  grid.sim().run_until(SimTime::from_seconds(30));
  ASSERT_TRUE(outcome.running);

  // The victim node ("whichever node runs the job") is named declaratively;
  // the FaultBridge resolves the query when the fault fires.
  sim::FaultInjector injector{grid.sim(), &grid.network()};
  broker::FaultBridge bridge{grid, injector};
  sim::FaultPlan plan;
  plan.crash_node("node_of(job:" + std::to_string(id.value()) + ")",
                  SimTime::from_seconds(40.0), Duration::seconds(60));
  injector.arm(plan);

  grid.sim().run_until(SimTime::from_seconds(70));
  int failed = 0;
  for (std::size_t s = 0; s < grid.site_count(); ++s) {
    failed += grid.site(s).scheduler().failed_nodes();
  }
  EXPECT_EQ(failed, 1);

  grid.sim().run_until(SimTime::from_seconds(600));
  // The broker saw the kill, resubmitted, and the job finished elsewhere;
  // the crashed node was revived and is back in service.
  EXPECT_TRUE(outcome.completed);
  EXPECT_GE(grid.broker().record(id)->resubmissions, 1);
  for (std::size_t s = 0; s < grid.site_count(); ++s) {
    EXPECT_EQ(grid.site(s).scheduler().failed_nodes(), 0);
  }
  EXPECT_EQ(injector.injected_faults(), 1u);
  EXPECT_EQ(injector.recoveries(), 1u);
}

// ----------------------------------------------- real interpose scenario ----

TEST(FaultInjectionRealTest, SpoolWriteFailureRecoversWithoutLoss) {
  using namespace std::chrono_literals;
  const std::string spool =
      "/tmp/cg-fault-spool-" + std::to_string(::getpid());
  std::remove(spool.c_str());
  std::remove((spool + ".cursor").c_str());

  auto shadow = interpose::ConsoleShadow::listen();
  ASSERT_TRUE(shadow.has_value());
  std::mutex mu;
  std::string received;
  (*shadow)->set_output_handler(
      [&](std::uint32_t, interpose::FrameType, std::string_view data) {
        const std::lock_guard lock{mu};
        received += data;
      });

  interpose::ConsoleAgentConfig config;
  config.mode = jdl::StreamingMode::kReliable;
  config.shadow_port = (*shadow)->port();
  config.spool_path = spool;
  config.retry_interval_ms = 100;
  config.max_retries = 100;
  config.flush_timeout_ms = 20;

  // The child prints one line before the fault window and one inside it.
  auto agent = interpose::ConsoleAgent::launch(
      {"/bin/sh", "-c", "echo first; sleep 1; echo second; sleep 0.2"}, config);
  ASSERT_TRUE(agent.has_value()) << agent.error().to_string();
  ASSERT_NE((*agent)->spool(), nullptr);

  std::this_thread::sleep_for(300ms);
  (*agent)->spool()->set_fail_appends(true);  // the disk "fails"
  std::this_thread::sleep_for(1200ms);
  (*agent)->spool()->set_fail_appends(false);  // …and recovers

  (*agent)->wait_for_exit();
  for (int i = 0; i < 200; ++i) {
    {
      const std::lock_guard lock{mu};
      if (received.find("second") != std::string::npos) break;
    }
    std::this_thread::sleep_for(20ms);
  }
  const std::lock_guard lock{mu};
  EXPECT_NE(received.find("first"), std::string::npos);
  EXPECT_NE(received.find("second"), std::string::npos);
  EXPECT_FALSE((*agent)->gave_up());
  std::remove(spool.c_str());
  std::remove((spool + ".cursor").c_str());
}

}  // namespace
}  // namespace cg
