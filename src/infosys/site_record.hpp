// Site descriptions as published to the information system. The broker's
// matchmaking converts these to machine ClassAds; staleness between published
// and live state is what forces the paper's two-step discovery+selection.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "jdl/classad.hpp"
#include "jdl/compiled_match.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace cg::infosys {

/// Attributes that do not change while a site is up.
struct SiteStaticInfo {
  SiteId id;
  std::string name;
  std::string arch = "i686";        ///< paper testbed: PIII..Xeon
  std::string op_sys = "linux-2.4";
  int worker_nodes = 0;
  int cpus_per_node = 1;
  std::int64_t memory_mb_per_node = 1024;
  std::int64_t storage_gb = 600;    ///< "most sites offer storage above 600GB"

  [[nodiscard]] int total_cpus() const { return worker_nodes * cpus_per_node; }

  [[nodiscard]] bool operator==(const SiteStaticInfo&) const = default;
};

/// Attributes that change as jobs come and go.
struct SiteDynamicInfo {
  int free_cpus = 0;
  int running_jobs = 0;
  int queued_jobs = 0;
  /// Free interactive-vm slots exported by glide-in agents on this site.
  int free_interactive_vms = 0;

  [[nodiscard]] bool operator==(const SiteDynamicInfo&) const = default;
};

/// The dense attribute layout every machine ad follows (matchmaking fast
/// path). Must stay in sync with SiteRecord::to_classad; compiled job
/// expressions resolve `other.X` references against this layout.
[[nodiscard]] const jdl::SlotLayout& machine_slot_layout();

/// Slot index of FreeCPUs in machine_slot_layout() — the one attribute the
/// matchmaker overrides per evaluation (leases shadow the published count).
[[nodiscard]] int machine_free_cpus_slot();

struct SiteRecord {
  /// The machine view of a record, built once per publication and shared by
  /// every copy of the record the information system hands out.
  struct MachineView {
    SiteStaticInfo static_info;    ///< inputs the view was built from
    SiteDynamicInfo dynamic_info;
    jdl::SlotValues slots;         ///< attribute values in layout order
    jdl::ClassAd ad;               ///< equivalent ClassAd (legacy path/tests)
  };

  SiteStaticInfo static_info;
  SiteDynamicInfo dynamic_info;
  /// When the dynamic half was sampled (publication timestamp).
  SimTime sampled_at;

  /// Machine ad used by the matchmaker (`other.*` in job Requirements).
  /// Always builds a fresh ad; the fast path uses machine_view() instead.
  [[nodiscard]] jdl::ClassAd to_classad() const;

  /// Cached machine view; rebuilt lazily when the record's fields no longer
  /// match the inputs the cache was built from (so stale caches can never
  /// leak through mutation — republishing or editing a record invalidates
  /// by value comparison, not by discipline).
  [[nodiscard]] const MachineView& machine_view() const;

  /// True when machine_view() would be a cache hit (metrics/tests).
  [[nodiscard]] bool cache_primed() const;

  /// Builds the cache eagerly; the information system primes records at
  /// publication so every handed-out copy shares one view.
  void prime_cache() const { (void)machine_view(); }

  /// Drops the cached view (tests).
  void invalidate_cache() const { cached_view_.reset(); }

private:
  mutable std::shared_ptr<const MachineView> cached_view_;
};

}  // namespace cg::infosys
