#!/usr/bin/env python3
"""Gate on the committed benchmark result files.

Walks every BENCH_*.json in the repository root and fails readably when any
correctness field is false — a digest mismatch or a broken zero-allocation
claim recorded into a committed result file must never slip through review.

Usage:
    bench_diff.py [repo_root]

Exit status: 0 when every gate field in every file is true, 1 otherwise
(2 on malformed input).
"""

import json
import pathlib
import sys

# Any boolean field whose name contains one of these substrings is a
# correctness gate, not a measurement.
GATE_KEYWORDS = ("digest", "zero_alloc")

# Fields every result row of a given file must carry. The keyword walk above
# only checks fields that exist; this schema makes their absence a failure,
# so a regressed benchmark cannot pass the gate by silently dropping its
# correctness fields.
REQUIRED_ROW_FIELDS = {
    "BENCH_stream_scale.json": ("digest_match", "zero_alloc_steady_state"),
}


def gate_fields(obj, path=""):
    """Yields (json_path, value) for every gate field in a nested object."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            where = f"{path}.{key}" if path else key
            if isinstance(value, bool) and any(k in key for k in GATE_KEYWORDS):
                yield where, value
            else:
                yield from gate_fields(value, where)
    elif isinstance(obj, list):
        for i, value in enumerate(obj):
            yield from gate_fields(value, f"{path}[{i}]")


def main():
    root = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(".")
    files = sorted(root.glob("BENCH_*.json"))
    if not files:
        print(f"bench_diff: no BENCH_*.json files under {root}", file=sys.stderr)
        return 2

    failures = []
    checked = 0
    for f in files:
        try:
            data = json.loads(f.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_diff: cannot read {f}: {err}", file=sys.stderr)
            return 2
        for where, value in gate_fields(data):
            checked += 1
            if not value:
                failures.append((f.name, where))
        required = REQUIRED_ROW_FIELDS.get(f.name)
        if required:
            rows = data.get("results", [])
            if not rows:
                failures.append((f.name, "results (empty)"))
            for i, row in enumerate(rows):
                for field in required:
                    checked += 1
                    if field not in row:
                        failures.append((f.name, f"results[{i}].{field} (missing)"))
        if f.name == "BENCH_stream_scale.json":
            # The streaming rewrite's headline claim: at >= 1000 concurrent
            # sessions some row must hold >= 2x messages/sec over the legacy
            # path (the coalescing configuration; lockstep rows pin digests).
            checked += 1
            rows = data.get("results", [])
            if not any(
                row.get("sessions", 0) >= 1000 and row.get("speedup", 0.0) >= 2.0
                for row in rows
            ):
                failures.append((f.name, "no row with sessions>=1000 and speedup>=2"))

    if failures:
        print("bench_diff: committed benchmark results record failures:")
        for name, where in failures:
            print(f"  {name}: {where} is false")
        print(
            "A false digest/zero-alloc field means the run that produced the"
            " file observed a correctness violation. Re-run the benchmark and"
            " fix the divergence; do not re-pin the numbers."
        )
        return 1

    names = ", ".join(f.name for f in files)
    print(f"bench_diff: {checked} gate fields true across {names}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
