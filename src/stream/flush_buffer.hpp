// Output buffering with the paper's three flush triggers (Section 4):
//   1. the buffer fills,
//   2. a timeout elapses since the first unflushed byte,
//   3. an end-of-line arrives.
// Used on each executing machine (per-subjob output buffer) and on the
// submitting machine (Job Shadow buffer flushed to the screen).
//
// The buffer writes directly into pooled chunks (see chunk.hpp): append() is
// a single pass over the input — each byte is copied exactly once into the
// current chunk — and every flush hands out a ChunkRef view of the flushed
// segment instead of a freshly allocated string, so the steady-state flush
// path never touches the heap.
#pragma once

#include <array>
#include <cstring>
#include <functional>
#include <string>

#include "obs/metrics.hpp"
#include "sim/simulation.hpp"
#include "stream/chunk.hpp"
#include "util/inplace_function.hpp"

namespace cg::stream {

struct FlushBufferConfig {
  std::size_t capacity = 64 * 1024;
  Duration timeout = Duration::millis(200);
  bool flush_on_newline = true;
  /// Chunk pool backing the buffer's segments (nullptr = ChunkPool::shared()).
  /// Must outlive the buffer and every ChunkRef it flushes.
  ChunkPool* pool = nullptr;
};

/// Which of the paper's triggers caused a flush (plus the explicit flush()
/// call used on job exit).
enum class FlushReason { kCapacity, kNewline, kTimeout, kExplicit };

[[nodiscard]] const char* to_string(FlushReason reason);

class FlushBuffer {
public:
  using FlushFn = util::InplaceFunction<void(ChunkRef), 48>;
  /// Compatibility shim: consumers that want an owned std::string per flush
  /// (tests, example sinks). Each flush materializes one string copy.
  using StringFlushFn = std::function<void(std::string data)>;

  FlushBuffer(sim::Simulation& sim, FlushBufferConfig config, FlushFn on_flush);
  FlushBuffer(sim::Simulation& sim, FlushBufferConfig config,
              StringFlushFn on_flush);
  ~FlushBuffer();
  FlushBuffer(const FlushBuffer&) = delete;
  FlushBuffer& operator=(const FlushBuffer&) = delete;

  /// Appends data, applying the flush policy. A single append may trigger
  /// multiple flushes (e.g. data larger than the capacity).
  void append(std::string_view data);

  /// Forces out any buffered data (job exit, explicit flush).
  void flush();

  [[nodiscard]] std::size_t buffered() const { return buffered_; }
  [[nodiscard]] std::size_t flush_count() const { return flushes_; }
  /// Flushes attributable to one trigger.
  [[nodiscard]] std::size_t flush_count(FlushReason reason) const {
    return reason_counts_[static_cast<std::size_t>(reason)];
  }
  [[nodiscard]] const FlushBufferConfig& config() const { return config_; }

  /// Attaches a metrics registry: every flush increments
  /// "stream.flushes"{reason=...} on top of `labels`. Must outlive the
  /// buffer (or be detached with nullptr).
  void set_metrics(obs::MetricsRegistry* metrics, obs::LabelSet labels = {});

private:
  void ensure_segment_chunk();
  void arm_timeout();
  void emit(FlushReason reason);

  sim::Simulation& sim_;
  FlushBufferConfig config_;
  ChunkPool* pool_;  ///< resolved (config_.pool or the shared pool)
  FlushFn on_flush_;
  /// Current write chunk (one writer reference held) and the open segment:
  /// bytes [seg_start_, seg_start_ + buffered_) are appended-but-unflushed.
  /// A segment never spans chunks — a fresh segment only opens in a chunk
  /// with at least `capacity` bytes of room.
  detail::ChunkHeader* chunk_ = nullptr;
  std::size_t seg_start_ = 0;
  std::size_t buffered_ = 0;
  std::size_t flushes_ = 0;
  std::array<std::size_t, 4> reason_counts_{};
  sim::ScopedTimer timer_;
  /// One pre-resolved counter handle per FlushReason (inert when detached);
  /// emit() runs on every interactive output line, so it must not rebuild
  /// the reason label per flush.
  std::array<obs::CounterHandle, 4> flush_counters_;
};

}  // namespace cg::stream
