#include "infosys/information_system.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace cg::infosys {

InformationSystem::InformationSystem(sim::Simulation& sim,
                                     InformationSystemConfig config)
    : sim_{sim}, config_{config} {}

void InformationSystem::register_site(const SiteStaticInfo& info,
                                      FreshProvider provider,
                                      std::optional<Duration> site_query_latency) {
  if (!info.id.valid()) throw std::invalid_argument{"register_site: invalid id"};
  if (!provider) throw std::invalid_argument{"register_site: null provider"};
  // Re-registration resets the entry; drop any stale index membership first
  // so the index never points at an entry whose index_key was wiped.
  if (const auto old = sites_.find(info.id); old != sites_.end()) {
    if (old->second.index_key) {
      const auto bucket = by_effective_.find(*old->second.index_key);
      if (bucket != by_effective_.end()) {
        bucket->second.erase(info.id);
        if (bucket->second.empty()) by_effective_.erase(bucket);
      }
    }
    leased_sites_.erase(info.id);
  }
  SiteEntry entry;
  entry.static_info = info;
  entry.provider = std::move(provider);
  entry.query_latency = site_query_latency.value_or(config_.default_site_query_latency);
  sites_.insert_or_assign(info.id, std::move(entry));
}

void InformationSystem::unregister_site(SiteId id) {
  const auto it = sites_.find(id);
  if (it == sites_.end()) return;
  if (it->second.index_key) {
    const auto bucket = by_effective_.find(*it->second.index_key);
    if (bucket != by_effective_.end()) {
      bucket->second.erase(id);
      if (bucket->second.empty()) by_effective_.erase(bucket);
    }
  }
  leased_sites_.erase(id);
  const bool had_published = it->second.published != nullptr;
  sites_.erase(it);
  if (had_published) notify_invalidation(id, "unregister");
}

void InformationSystem::publish(const SiteRecord& record) {
  const auto it = sites_.find(record.static_info.id);
  if (it == sites_.end()) {
    log_warn("infosys", "publish for unregistered site ", record.static_info.name);
    return;
  }
  store_published(it->first, it->second, record);
}

void InformationSystem::publish_fresh(SiteId id) {
  const auto it = sites_.find(id);
  if (it == sites_.end()) return;
  store_published(id, it->second, it->second.provider());
}

void InformationSystem::store_published(SiteId id, SiteEntry& entry,
                                        SiteRecord record) {
  if (entry.published) notify_invalidation(id, "republish");
  record.sampled_at = sim_.now();
  // Prime before storing: every copy of this record the index hands out
  // shares the one machine view built here.
  record.prime_cache();
  entry.published = std::make_shared<const SiteRecord>(std::move(record));
  reindex(id, entry);
}

void InformationSystem::reindex(SiteId id, SiteEntry& entry) {
  if (entry.index_key) {
    const auto bucket = by_effective_.find(*entry.index_key);
    if (bucket != by_effective_.end()) {
      bucket->second.erase(id);
      if (bucket->second.empty()) by_effective_.erase(bucket);
    }
    entry.index_key.reset();
  }
  if (entry.published) {
    const int effective =
        entry.published->dynamic_info.free_cpus - entry.leased_cpus;
    by_effective_[effective].insert_or_assign(id, &entry);
    entry.index_key = effective;
  }
}

void InformationSystem::apply_lease_delta(SiteId id, int cpu_delta) {
  const auto it = sites_.find(id);
  if (it == sites_.end() || cpu_delta == 0) return;
  it->second.leased_cpus += cpu_delta;
  if (it->second.leased_cpus > 0) {
    leased_sites_.insert_or_assign(id, &it->second);
  } else {
    leased_sites_.erase(id);
  }
  reindex(id, it->second);
  notify_invalidation(id, "lease");
}

std::optional<int> InformationSystem::effective_free(SiteId id) const {
  const auto it = sites_.find(id);
  if (it == sites_.end() || !it->second.published) return std::nullopt;
  return it->second.published->dynamic_info.free_cpus - it->second.leased_cpus;
}

std::size_t InformationSystem::index_size() const {
  std::size_t total = 0;
  for (const auto& [effective, ids] : by_effective_) total += ids.size();
  return total;
}

void InformationSystem::notify_invalidation(SiteId id, const char* reason) {
  if (invalidation_listener_) invalidation_listener_(id, reason);
}

void InformationSystem::start_periodic_publication(SiteId id, Duration period) {
  const auto it = sites_.find(id);
  if (it == sites_.end()) throw std::invalid_argument{"unknown site"};
  if (period <= Duration::zero()) throw std::invalid_argument{"period must be positive"};
  it->second.periodic = true;
  it->second.period = period;
  publish_fresh(id);
  schedule_publication(id);
}

void InformationSystem::schedule_publication(SiteId id) {
  const auto it = sites_.find(id);
  if (it == sites_.end() || !it->second.periodic) return;
  // Daemon event: periodic publication must not keep the simulation alive.
  sim_.schedule_daemon(it->second.period, [this, id] {
    // The site may have been unregistered while the timer was pending.
    const auto entry = sites_.find(id);
    if (entry == sites_.end() || !entry->second.periodic) return;
    publish_fresh(id);
    schedule_publication(id);
  });
}

void InformationSystem::query_index(IndexCallback callback) {
  if (!callback) throw std::invalid_argument{"query_index: null callback"};
  ++index_queries_;
  std::vector<SiteRecord> records;
  records.reserve(sites_.size());
  for (const auto& [id, entry] : sites_) {
    if (entry.published) records.push_back(*entry.published);
  }
  sim_.schedule(config_.index_query_latency,
                [cb = std::move(callback), recs = std::move(records)]() mutable {
                  cb(std::move(recs));
                });
}

void InformationSystem::query_index_matching(int needed_cpus,
                                             SnapshotCallback callback) {
  if (!callback) throw std::invalid_argument{"query_index_matching: null callback"};
  ++index_queries_;
  // Health pruning projects to *delivery* time: the broker's matchmaker
  // re-applies its health filter when the reply lands, and the provider
  // contract (decay-only lower bound) makes call-time pruning agree with it.
  const SimTime delivery = sim_.now() + config_.index_query_latency;
  const auto health_pruned = [&](SiteId id) {
    return health_provider_ && health_provider_(id, delivery);
  };
  IndexSnapshot survivors;
  // Prefix of the effective-free ordering: every site whose published free
  // CPUs minus leased CPUs already covers the request.
  for (auto it = by_effective_.rbegin();
       it != by_effective_.rend() && it->first >= needed_cpus; ++it) {
    for (const auto& [id, entry] : it->second) {
      if (health_pruned(id)) continue;
      survivors.push_back(entry->published);
    }
  }
  // Leased sites below the prefix whose published capacity still covers the
  // request: a lease may be released while this reply is in flight and the
  // broker subtracts live leases again at delivery time, so the pruning
  // bound must ignore leases to return exactly the sites query_index's
  // snapshot could have matched. Sites this rule excludes have
  // published free < needed, hence effective < needed at any later time.
  for (const auto& [id, site] : leased_sites_) {
    const SiteEntry& entry = *site;
    if (!entry.published || !entry.index_key) continue;
    if (*entry.index_key >= needed_cpus) continue;  // already in the prefix
    if (health_pruned(id)) continue;
    if (entry.published->dynamic_info.free_cpus >= needed_cpus) {
      survivors.push_back(entry.published);
    }
  }
  // Ascending site-id order — the order query_index delivers records in —
  // so downstream tie-breaking sees an identical candidate sequence.
  std::sort(survivors.begin(), survivors.end(),
            [](const std::shared_ptr<const SiteRecord>& a,
               const std::shared_ptr<const SiteRecord>& b) {
              return a->static_info.id < b->static_info.id;
            });
  sim_.schedule(config_.index_query_latency,
                [cb = std::move(callback), recs = std::move(survivors)]() mutable {
                  cb(std::move(recs));
                });
}

void InformationSystem::query_site(SiteId id, SiteCallback callback) {
  if (!callback) throw std::invalid_argument{"query_site: null callback"};
  ++site_queries_;
  const auto it = sites_.find(id);
  if (it == sites_.end()) {
    sim_.schedule(Duration::zero(),
                  [cb = std::move(callback)]() mutable { cb(std::nullopt); });
    return;
  }
  const Duration latency = it->second.query_latency;
  sim_.schedule(latency, [this, id, cb = std::move(callback)]() mutable {
    // Re-check: the site may disappear while the query is in flight.
    const auto entry = sites_.find(id);
    if (entry == sites_.end()) {
      cb(std::nullopt);
      return;
    }
    SiteRecord record = entry->second.provider();
    record.sampled_at = sim_.now();
    cb(std::move(record));
  });
}

std::optional<SiteRecord> InformationSystem::published_record(SiteId id) const {
  const auto it = sites_.find(id);
  if (it == sites_.end() || it->second.published == nullptr) return std::nullopt;
  return *it->second.published;
}

}  // namespace cg::infosys
