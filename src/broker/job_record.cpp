#include "broker/job_record.hpp"

namespace cg::broker {

std::string to_string(JobState state) {
  switch (state) {
    case JobState::kSubmitted: return "submitted";
    case JobState::kDiscovery: return "discovery";
    case JobState::kSelection: return "selection";
    case JobState::kDispatching: return "dispatching";
    case JobState::kQueuedLocal: return "queued-local";
    case JobState::kQueuedBroker: return "queued-broker";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kFailed: return "failed";
    case JobState::kRejected: return "rejected";
  }
  return "?";
}

bool is_terminal(JobState state) {
  return state == JobState::kCompleted || state == JobState::kFailed ||
         state == JobState::kRejected;
}

std::string to_string(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kNone: return "none";
    case PlacementKind::kIdleMachine: return "idle-machine";
    case PlacementKind::kInteractiveVm: return "interactive-vm";
    case PlacementKind::kNewAgent: return "new-agent";
    case PlacementKind::kLocalQueue: return "local-queue";
  }
  return "?";
}

}  // namespace cg::broker
