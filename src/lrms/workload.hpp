// Workload shapes for simulated jobs. A workload is a sequence of phases
// (CPU bursts and I/O operations). The Figure-8 experiment is an interactive
// job of 1,000 iterations, each an I/O operation followed by a CPU burst;
// batch background jobs are long CPU phases; glide-in agents are manual
// (they run until the broker dismisses them).
#pragma once

#include <cstddef>
#include <vector>

#include "util/time.hpp"

namespace cg::lrms {

enum class PhaseKind {
  kCpu,
  kIo,
  /// Synchronization point of a parallel job: the rank blocks until every
  /// sibling rank reaches the same barrier (released externally via
  /// TaskRunner::release_barrier). `base` is ignored.
  kBarrier,
};

struct Phase {
  PhaseKind kind = PhaseKind::kCpu;
  /// Undilated duration of the phase on an idle machine.
  Duration base = Duration::zero();
  /// Payload for I/O phases (bookkeeping only; timing is in `base`).
  std::size_t bytes = 0;
};

struct Workload {
  std::vector<Phase> phases;

  /// True for workloads that never finish on their own (glide-in agents,
  /// interactive sessions driven from outside); completed via external call.
  [[nodiscard]] bool is_manual() const { return phases.empty(); }

  /// Number of barrier phases.
  [[nodiscard]] int barrier_count() const;

  /// Total undilated CPU time across phases.
  [[nodiscard]] Duration total_cpu() const;
  /// Total undilated I/O time across phases.
  [[nodiscard]] Duration total_io() const;

  /// A single CPU phase of the given length.
  [[nodiscard]] static Workload cpu(Duration d);
  /// `iterations` repetitions of (I/O op, CPU burst) — the Fig. 8 shape.
  [[nodiscard]] static Workload iterative(int iterations, Duration io_op,
                                          Duration cpu_burst,
                                          std::size_t io_bytes = 0);
  /// BSP-style parallel workload: `supersteps` repetitions of (CPU burst,
  /// barrier) — the shape of the CrossGrid MPI applications, where each
  /// step's duration is gated by the slowest rank.
  [[nodiscard]] static Workload bulk_synchronous(int supersteps,
                                                 Duration cpu_burst);
  /// Runs until completed externally.
  [[nodiscard]] static Workload manual();
};

}  // namespace cg::lrms
