#include "stream/reliable_channel.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace cg::stream {

ReliableChannel::ReliableChannel(sim::Simulation& sim, SimChannel& channel,
                                 sim::DiskModel& sender_disk,
                                 sim::DiskModel* receiver_disk, RetryPolicy policy)
    : sim_{sim},
      channel_{channel},
      spool_{sender_disk},
      receiver_disk_{receiver_disk},
      policy_{policy} {
  if (policy_.max_retries < 0) throw std::invalid_argument{"max_retries < 0"};
  if (policy_.retry_interval <= Duration::zero()) {
    throw std::invalid_argument{"retry_interval must be positive"};
  }
}

ReliableChannel::~ReliableChannel() {
  // Invalidate in-flight SimChannel callbacks (they check the epoch).
  ++epoch_;
}

void ReliableChannel::set_metrics(obs::MetricsRegistry* metrics,
                                  obs::LabelSet labels) {
  metrics_ = metrics;
  metric_labels_ = std::move(labels);
}

void ReliableChannel::send(std::size_t bytes, DeliverFn on_deliver) {
  if (gave_up_) return;  // the process is being killed; drop silently
  const Duration write_cost = spool_.push(bytes);
  if (metrics_ != nullptr) {
    metrics_->counter("stream.bytes_spooled", metric_labels_).inc(bytes);
  }
  queue_.push_back(Entry{bytes, std::move(on_deliver), false});
  if (!transmitting_) {
    transmitting_ = true;
    transmit_head(write_cost);
  }
}

void ReliableChannel::transmit_head(Duration extra_delay) {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  const std::uint64_t epoch = epoch_;
  sim_.schedule(extra_delay, [this, epoch] {
    if (epoch != epoch_ || gave_up_ || queue_.empty()) return;
    const Entry& head = queue_.front();
    channel_.send(
        head.bytes,
        [this, epoch](std::size_t) {
          if (epoch == epoch_) on_head_delivered();
        },
        [this, epoch](std::size_t) {
          if (epoch == epoch_) on_head_failed();
        });
  });
}

void ReliableChannel::on_head_delivered() {
  if (queue_.empty()) return;
  if (failures_ > 0 && metrics_ != nullptr) {
    // First successful delivery after a failure streak: the link healed.
    metrics_->counter("stream.reconnects", metric_labels_).inc();
  }
  failures_ = 0;
  Entry head = std::move(queue_.front());
  queue_.pop_front();
  spool_.pop_acknowledged();
  if (head.on_deliver) {
    if (receiver_disk_ != nullptr) {
      // Receive-side intermediate file: the application sees the data only
      // after it has hit the other end's disk.
      receiver_disk_->note_write(head.bytes);
      const Duration cost = receiver_disk_->write_duration(head.bytes);
      sim_.schedule(cost, [cb = std::move(head.on_deliver), bytes = head.bytes] {
        cb(bytes);
      });
    } else {
      head.on_deliver(head.bytes);
    }
  }
  if (queue_.empty()) {
    transmitting_ = false;
  } else {
    // Subsequent messages were already spooled at send time; no extra cost.
    transmit_head(Duration::zero());
  }
}

void ReliableChannel::on_head_failed() {
  if (queue_.empty()) return;
  ++failures_;
  if (failures_ > policy_.max_retries) {
    gave_up_ = true;
    transmitting_ = false;
    log_warn("stream", "reliable channel exhausted ", policy_.max_retries,
             " retries; giving up");
    if (on_give_up_) on_give_up_();
    return;
  }
  ++retries_;
  if (metrics_ != nullptr) {
    metrics_->counter("stream.retries", metric_labels_).inc();
  }
  queue_.front().recovered_from_disk = true;
  retry_timer_.rearm(sim_, sim_.schedule(policy_.retry_interval, [this] {
    if (gave_up_ || queue_.empty()) return;
    // The in-memory copy is gone after a failure; re-read from the spool.
    const Duration read_cost = spool_.charge_recovery_read();
    transmit_head(read_cost);
  }));
}

}  // namespace cg::stream
