#include "glidein/agent.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/control_bus.hpp"
#include "util/log.hpp"

namespace cg::glidein {

GlideinAgent::GlideinAgent(sim::Simulation& sim, AgentId id, SiteId site,
                           GlideinAgentConfig config)
    : sim_{sim},
      id_{id},
      site_{site},
      config_{config},
      noise_rng_{0xa63e57a9b2c4d1ULL ^ id.value()} {
  if (!id.valid()) throw std::invalid_argument{"GlideinAgent: invalid id"};
  if (config_.interactive_slots < 1) {
    throw std::invalid_argument{"GlideinAgent: needs >= 1 interactive slot"};
  }
  interactive_.resize(static_cast<std::size_t>(config_.interactive_slots));
}

GlideinAgent::~GlideinAgent() {
  if (batch_job_ && batch_job_->runner) batch_job_->runner->cancel();
  for (auto& slot : interactive_) {
    if (slot && slot->runner) slot->runner->cancel();
  }
}

void GlideinAgent::on_carrier_started(NodeId node) {
  if (state_ != AgentState::kPending) {
    throw std::logic_error{"agent carrier started twice"};
  }
  node_ = node;
  bootstrap_timer_.rearm(sim_, sim_.schedule(config_.bootstrap_time, [this] {
    if (state_ == AgentState::kPending) set_state(AgentState::kRunning);
  }));
}

void GlideinAgent::on_carrier_killed() {
  if (state_ == AgentState::kDead) return;
  bootstrap_timer_.reset();
  // Resident jobs die with the agent; their completions never fire (the
  // broker observes the agent death and handles resubmission policy).
  if (batch_job_) {
    batch_job_->runner->cancel();
    batch_job_.reset();
  }
  for (auto& slot : interactive_) {
    if (slot) {
      slot->runner->cancel();
      slot.reset();
    }
  }
  update_occupancy_metrics();
  set_state(AgentState::kDead);
}

void GlideinAgent::set_state_observer(StateObserver observer) {
  observer_ = std::move(observer);
}

void GlideinAgent::connect_control_plane(net::ControlBus* bus,
                                         std::string site_endpoint,
                                         std::string broker_endpoint,
                                         Duration channel_latency) {
  bus_ = bus;
  site_endpoint_ = std::move(site_endpoint);
  broker_endpoint_ = std::move(broker_endpoint);
  channel_latency_ = channel_latency;
}

bool GlideinAgent::deliver_liveness_probe(std::uint64_t seq) {
  // The echo must come out of the agent's event loop: a wedged (or dead)
  // agent never answers even though the probe arrived.
  if (!echo_liveness_probe(seq)) return false;
  if (bus_ != nullptr) {
    net::SendOptions options;
    options.channel_latency = channel_latency_;
    options.drop_when_down = true;  // a partitioned link swallows the echo
    bus_->send(site_endpoint_, broker_endpoint_, net::LivenessEcho{id_, seq},
               options);
  }
  return true;
}

void GlideinAgent::set_metrics(obs::MetricsRegistry* metrics,
                               obs::LabelSet labels) {
  metrics_ = MetricHandles{};
  if (metrics != nullptr) {
    obs::LabelSet per_agent = labels;
    per_agent.set("agent", std::to_string(id_.value()));
    metrics_.interactive_vms_occupied =
        metrics->gauge_handle("glidein.interactive_vms_occupied", per_agent);
    metrics_.batch_vm_occupied =
        metrics->gauge_handle("glidein.batch_vm_occupied", std::move(per_agent));
    // The occupancy histogram feeds mean/peak utilisation of the interactive
    // VMs per site without per-agent cardinality.
    metrics_.interactive_occupancy =
        metrics->histogram_handle("glidein.interactive_occupancy", labels);
    obs::LabelSet batch = labels;
    batch.set("slot", "batch");
    metrics_.slot_starts_batch =
        metrics->counter_handle("glidein.slot_starts", std::move(batch));
    labels.set("slot", "interactive");
    metrics_.slot_starts_interactive =
        metrics->counter_handle("glidein.slot_starts", std::move(labels));
    metrics_.attached = true;
  }
  update_occupancy_metrics();
}

void GlideinAgent::update_occupancy_metrics() {
  if (!metrics_.attached) return;
  int occupied = 0;
  for (const auto& slot : interactive_) {
    if (slot) ++occupied;
  }
  metrics_.interactive_vms_occupied.set(static_cast<double>(occupied));
  metrics_.batch_vm_occupied.set(batch_job_ ? 1.0 : 0.0);
  metrics_.interactive_occupancy.observe(static_cast<double>(occupied));
}

void GlideinAgent::set_state(AgentState state) {
  state_ = state;
  if (observer_) observer_(state_);
  // Bootstrapped: announce the agent (and its fresh VMs) to the broker. The
  // registration is a local rendezvous on the already-open channel, so it is
  // delivered inline — same instant the state observer used to fire.
  if (state == AgentState::kRunning && bus_ != nullptr) {
    net::SendOptions options;
    options.inline_when_immediate = true;
    bus_->send(site_endpoint_, broker_endpoint_, net::AgentRegister{id_},
               options);
  }
}

bool GlideinAgent::interactive_vm_busy() const {
  return free_interactive_slots() == 0;
}

bool GlideinAgent::interactive_vm_free() const {
  return state_ == AgentState::kRunning && free_interactive_slots() > 0;
}

int GlideinAgent::free_interactive_slots() const {
  if (state_ != AgentState::kRunning) return 0;
  int free = 0;
  for (const auto& slot : interactive_) {
    if (!slot) ++free;
  }
  return free;
}

int GlideinAgent::interactive_slot_count() const {
  return config_.interactive_slots;
}

Status GlideinAgent::start_batch_job(SlotJob job) {
  return start_on_slot(-1, std::move(job), 0);
}

Status GlideinAgent::start_interactive_job(SlotJob job, int performance_loss) {
  if (performance_loss < 0 || performance_loss > 100) {
    return make_error("glidein.bad_pl", "PerformanceLoss out of range");
  }
  for (std::size_t i = 0; i < interactive_.size(); ++i) {
    if (!interactive_[i]) {
      return start_on_slot(static_cast<int>(i), std::move(job), performance_loss);
    }
  }
  return make_error("glidein.slot_busy", "all interactive VMs are occupied");
}

bool GlideinAgent::echo_liveness_probe(std::uint64_t seq) {
  if (state_ != AgentState::kRunning || wedged_) return false;
  if (seq > last_echoed_probe_) last_echoed_probe_ = seq;
  return true;
}

Status GlideinAgent::start_on_slot(int slot_index, SlotJob job,
                                   int performance_loss) {
  if (state_ != AgentState::kRunning) {
    return make_error("glidein.not_running", "agent is not running");
  }
  if (wedged_) {
    return make_error("glidein.wedged", "agent event loop is stalled");
  }
  auto& resident = slot_index < 0
                       ? batch_job_
                       : interactive_[static_cast<std::size_t>(slot_index)];
  if (resident) {
    return make_error("glidein.slot_busy", "virtual machine already occupied");
  }
  resident = std::make_unique<Resident>();
  resident->job = std::move(job);
  resident->performance_loss = performance_loss;
  resident->epoch = next_epoch_++;
  const std::uint64_t epoch = resident->epoch;

  auto dilation = [this, slot_index](lrms::PhaseKind kind) {
    return dilation_for(slot_index, kind);
  };
  auto on_complete = [this, slot_index] {
    auto& done = slot_index < 0
                     ? batch_job_
                     : interactive_[static_cast<std::size_t>(slot_index)];
    auto cb = done->job.on_complete;
    // Move the resident into a local rather than resetting in place: this
    // closure is owned by its runner, so freeing it here would destroy the
    // captures mid-execution. The local frees it after the body ends.
    auto finished = std::move(done);
    // The surviving jobs get their shares back from this instant.
    reapply_dilations();
    update_occupancy_metrics();
    if (cb) cb();
  };

  resident->runner = std::make_unique<lrms::TaskRunner>(
      sim_, resident->job.workload, std::move(dilation), std::move(on_complete),
      resident->job.phase_observer);
  if (resident->job.barrier_handler) {
    resident->runner->set_barrier_handler(resident->job.barrier_handler);
  }

  // Spawning on the slot costs job_start_overhead; dilations change the
  // moment the job actually starts.
  auto start_cb = resident->job.on_start;
  sim_.schedule(config_.job_start_overhead, [this, slot_index, epoch, start_cb] {
    auto& res = slot_index < 0
                    ? batch_job_
                    : interactive_[static_cast<std::size_t>(slot_index)];
    // The epoch check drops the event if the slot was cancelled (or re-used
    // by a different job) while this start was in flight.
    if (!res || res->epoch != epoch) return;
    if (start_cb) start_cb();
    res->runner->start();
    reapply_dilations();
  });
  (slot_index < 0 ? metrics_.slot_starts_batch
                  : metrics_.slot_starts_interactive)
      .inc();
  update_occupancy_metrics();
  return Status::ok_status();
}

void GlideinAgent::cancel_slot(SlotType slot) {
  if (slot == SlotType::kBatch) {
    if (!batch_job_) return;
    batch_job_->runner->cancel();
    batch_job_.reset();
    reapply_dilations();
    update_occupancy_metrics();
    return;
  }
  for (auto& resident : interactive_) {
    if (resident) {
      resident->runner->cancel();
      resident.reset();
      reapply_dilations();
      update_occupancy_metrics();
      return;
    }
  }
}

bool GlideinAgent::release_barrier(JobId id) {
  if (batch_job_ && batch_job_->job.id == id) {
    batch_job_->runner->release_barrier();
    return true;
  }
  for (auto& resident : interactive_) {
    if (resident && resident->job.id == id) {
      resident->runner->release_barrier();
      return true;
    }
  }
  return false;
}

bool GlideinAgent::cancel_interactive_job(JobId id) {
  for (auto& resident : interactive_) {
    if (resident && resident->job.id == id) {
      resident->runner->cancel();
      resident.reset();
      reapply_dilations();
      update_occupancy_metrics();
      return true;
    }
  }
  return false;
}

std::optional<JobId> GlideinAgent::batch_job_id() const {
  if (!batch_job_) return std::nullopt;
  return batch_job_->job.id;
}

std::optional<JobId> GlideinAgent::interactive_job_id() const {
  for (const auto& resident : interactive_) {
    if (resident) return resident->job.id;
  }
  return std::nullopt;
}

std::vector<JobId> GlideinAgent::interactive_job_ids() const {
  std::vector<JobId> out;
  for (const auto& resident : interactive_) {
    if (resident) out.push_back(resident->job.id);
  }
  return out;
}

void GlideinAgent::reapply_dilations() {
  if (batch_job_ && batch_job_->runner) batch_job_->runner->notify_dilation_changed();
  for (auto& resident : interactive_) {
    if (resident && resident->runner) resident->runner->notify_dilation_changed();
  }
}

int GlideinAgent::running_interactive_count() const {
  int n = 0;
  for (const auto& resident : interactive_) {
    if (resident && resident->runner && resident->runner->running()) ++n;
  }
  return n;
}

int GlideinAgent::max_running_performance_loss() const {
  int pl = 0;
  for (const auto& resident : interactive_) {
    if (resident && resident->runner && resident->runner->running()) {
      pl = std::max(pl, resident->performance_loss);
    }
  }
  return pl;
}

double GlideinAgent::dilation_for(int slot_index, lrms::PhaseKind kind) const {
  const int k = running_interactive_count();
  const bool batch_running =
      batch_job_ && batch_job_->runner && batch_job_->runner->running();

  double dilation = 1.0;
  double noise_fraction = 0.0;

  if (slot_index < 0) {
    // The batch slot concedes to the most demanding interactive resident.
    const VmDilations d = compute_dilations(
        config_.vm, max_running_performance_loss(), k > 0, batch_running);
    dilation = kind == lrms::PhaseKind::kCpu ? d.batch_cpu : d.batch_io;
    noise_fraction = kind == lrms::PhaseKind::kCpu ? config_.vm.cpu_noise_base
                                                   : config_.vm.io_noise_fraction;
  } else {
    const auto& self = interactive_[static_cast<std::size_t>(slot_index)];
    const int own_pl = self ? self->performance_loss : 0;
    const VmDilations d =
        compute_dilations(config_.vm, own_pl, k > 0, batch_running);
    if (kind == lrms::PhaseKind::kCpu) {
      // With degree > 1, running interactive jobs split the interactive CPU
      // share equally: each stretches by the number of active peers.
      dilation = d.interactive_cpu * static_cast<double>(std::max(k, 1));
      const double share = (k > 0 && batch_running)
                               ? static_cast<double>(own_pl) / 100.0
                               : 0.0;
      noise_fraction =
          config_.vm.cpu_noise_base + config_.vm.cpu_noise_per_share * share;
    } else {
      // Scheduling-latency interference grows mildly with extra residents.
      dilation = d.interactive_io * (1.0 + 0.03 * static_cast<double>(
                                                     std::max(k - 1, 0)));
      noise_fraction = config_.vm.io_noise_fraction;
    }
  }

  if (noise_fraction > 0.0) {
    const double factor = noise_rng_.normal(1.0, noise_fraction);
    if (factor > 0.0) dilation *= factor;
  }
  return dilation;
}

}  // namespace cg::glidein
