// Shared harness for the Section 6.2 streaming figures: runs the 1,000
// coordinated read/write sequences for every method and payload size and
// prints the mean / stddev / p95 rows the figures plot.
#pragma once

#include <fstream>
#include <iostream>
#include <vector>

#include "stream/echo_experiment.hpp"
#include "util/stats.hpp"

namespace cg::bench {

/// Pass `--csv <path>` to a figure harness to also dump the full
/// per-sequence series (what the paper's scatter plots show) as
/// `method,payload_bytes,sequence,seconds` rows.
inline std::string csv_path_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string{argv[i]} == "--csv") return argv[i + 1];
  }
  return {};
}

inline void run_streaming_figure(const std::string& title,
                                 const sim::LinkSpec& link,
                                 const std::string& csv_path = {}) {
  using stream::EchoMethod;
  const std::vector<std::size_t> sizes{10, 100, 1000, 10000};
  const std::vector<EchoMethod> methods{EchoMethod::kSsh, EchoMethod::kGlogin,
                                        EchoMethod::kFast,
                                        EchoMethod::kReliable};

  std::cout << "== " << title << " ==\n"
            << "(1,000 coordinated read/write sequences per series; "
               "round-trip seconds)\n\n";

  std::ofstream csv;
  if (!csv_path.empty()) {
    csv.open(csv_path);
    csv << "method,payload_bytes,sequence,seconds\n";
  }

  TablePrinter table{{"Method", "Payload B", "Mean (ms)", "Stddev (ms)",
                      "p95 (ms)", "Max (ms)"}};
  for (const std::size_t size : sizes) {
    for (const EchoMethod method : methods) {
      stream::EchoConfig config;
      config.method = method;
      config.payload_bytes = size;
      config.sequences = 1000;
      config.seed = 20060915 + size;
      const stream::EchoResult result = run_echo_experiment(link, config);
      table.add_row({to_string(method), std::to_string(size),
                     fmt_fixed(result.round_trips_s.mean() * 1e3, 3),
                     fmt_fixed(result.round_trips_s.stddev() * 1e3, 3),
                     fmt_fixed(result.round_trips_s.percentile(95) * 1e3, 3),
                     fmt_fixed(result.round_trips_s.max() * 1e3, 3)});
      if (csv.is_open()) {
        const auto& samples = result.round_trips_s.samples();
        for (std::size_t i = 0; i < samples.size(); ++i) {
          csv << to_string(method) << ',' << size << ',' << i << ','
              << samples[i] << '\n';
        }
      }
    }
  }
  std::cout << table.render() << "\n";
  if (csv.is_open()) {
    std::cout << "per-sequence series written to " << csv_path << "\n\n";
  }
}

/// Prints the figure's qualitative claims and whether this run matches them.
inline void check_claim(const std::string& claim, bool holds) {
  std::cout << (holds ? "  [ok]   " : "  [MISS] ") << claim << "\n";
}

inline double mean_ms(const sim::LinkSpec& link, stream::EchoMethod method,
                      std::size_t payload) {
  stream::EchoConfig config;
  config.method = method;
  config.payload_bytes = payload;
  config.sequences = 1000;
  config.seed = 20060915 + payload;
  return run_echo_experiment(link, config).round_trips_s.mean() * 1e3;
}

inline double stddev_ms(const sim::LinkSpec& link, stream::EchoMethod method,
                        std::size_t payload) {
  stream::EchoConfig config;
  config.method = method;
  config.payload_bytes = payload;
  config.sequences = 1000;
  config.seed = 20060915 + payload;
  return run_echo_experiment(link, config).round_trips_s.stddev() * 1e3;
}

}  // namespace cg::bench
