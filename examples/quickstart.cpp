// Quickstart: build a small simulated grid, submit an interactive job
// through the CrossBroker, and watch it stream output back through a Grid
// Console — the whole public API in one file.
//
//   $ ./quickstart
//
// Everything runs in virtual time: the program finishes instantly while the
// simulated clock covers minutes of grid activity.
#include <iostream>

#include "broker/grid_scenario.hpp"
#include "util/stats.hpp"
#include "stream/grid_console.hpp"

using namespace cg;
using namespace cg::literals;

int main() {
  // 1. A testbed: three sites of four worker nodes behind gatekeepers, an
  //    information system publishing every 30 s, and a CrossBroker.
  broker::GridScenarioConfig config;
  config.sites = 3;
  config.nodes_per_site = 4;
  broker::GridScenario grid{config};

  // 2. A job description in JDL — the same syntax as the paper's Figure 2.
  auto description = jdl::JobDescription::parse(R"(
      Executable    = "hep_visualizer";
      JobType       = "interactive";
      StreamingMode = "fast";
      Requirements  = other.Arch == "i686" && other.FreeCPUs >= 1;
      Rank          = other.FreeCPUs;
  )");
  if (!description) {
    std::cerr << "JDL error: " << description.error().to_string() << "\n";
    return 1;
  }

  // 3. Submit it. Callbacks trace the lifecycle; on_running wires up the
  //    split-execution console between the UI machine and the worker node.
  std::unique_ptr<stream::GridConsole> console;
  broker::JobCallbacks callbacks;
  callbacks.on_state_change = [&](const broker::JobRecord& record) {
    std::cout << "[" << fmt_fixed(grid.sim().now().to_seconds(), 2) << "s] "
              << record.id << " -> " << to_string(record.state) << "\n";
  };
  callbacks.on_running = [&](const broker::JobRecord& record) {
    stream::GridConsoleConfig console_config;
    console_config.mode = record.description.streaming_mode();
    console = std::make_unique<stream::GridConsole>(
        grid.sim(), grid.network(), console_config,
        broker::GridScenario::ui_endpoint(),
        [&](std::string data) { std::cout << "  [screen] " << data; },
        Rng{2024});
    // Find the execution site and attach one Console Agent there.
    for (std::size_t i = 0; i < grid.site_count(); ++i) {
      if (grid.site(i).id() == record.subjobs[0].site) {
        auto& agent = console->add_agent(0, grid.site(i).endpoint());
        agent.write_stdout("visualizer ready; type a command\n");
        agent.set_input_handler([&agent](std::string line) {
          agent.write_stdout("executing: " + line);
        });
      }
    }
  };
  callbacks.on_complete = [&](const broker::JobRecord& record) {
    std::cout << "[" << fmt_fixed(grid.sim().now().to_seconds(), 2) << "s] "
              << record.id << " completed; phases: discovery "
              << fmt_fixed((*record.timestamps.discovery_done -
                            record.timestamps.submitted)
                               .to_seconds(),
                           2)
              << "s, selection "
              << fmt_fixed((*record.timestamps.selection_done -
                            *record.timestamps.discovery_done)
                               .to_seconds(),
                           2)
              << "s, to-running "
              << fmt_fixed((*record.timestamps.running -
                            *record.timestamps.selection_done)
                               .to_seconds(),
                           2)
              << "s\n";
  };

  grid.broker().submit(std::move(description.value()), UserId{1},
                       lrms::Workload::cpu(90_s),
                       broker::GridScenario::ui_endpoint(), callbacks);

  // 4. The user steers the application one minute in.
  grid.sim().schedule(60_s, [&] {
    if (console) {
      std::cout << "  [user types] set-threshold 0.75\n";
      console->shadow().type_line("set-threshold 0.75");
    }
  });

  // 5. Run the virtual clock until the grid goes idle.
  grid.sim().run();
  std::cout << "simulation finished at t="
            << fmt_fixed(grid.sim().now().to_seconds(), 2) << "s ("
            << grid.sim().processed_events() << " events)\n";
  return 0;
}
