// GSI mutual authentication and delegation over the simulated network.
// "All the network communications are GSI-enabled and are therefore a secure
// connection" (Section 4): before any job crosses a site boundary both ends
// verify each other's certificate chains, paying the handshake's round trips
// and crypto time; the broker then *delegates* a restricted proxy so the
// glide-in agent can act on the user's behalf.
#pragma once

#include <functional>

#include "gsi/credential.hpp"
#include "sim/network.hpp"
#include "sim/simulation.hpp"

namespace cg::gsi {

/// A party in a handshake: its credential chain (leaf first, anchor
/// excluded) plus the leaf's keys.
struct Party {
  CertificateChain chain;
  KeyPair keys;
  [[nodiscard]] const DistinguishedName& name() const {
    return chain.front().subject;
  }
};

/// Builds a Party from the credential ancestry (root-most first).
[[nodiscard]] Party make_party(const std::vector<Credential>& ancestry);

struct HandshakeConfig {
  /// Round trips of the SSL-style exchange (hello, cert exchange, finished).
  int round_trips = 2;
  /// Asymmetric-crypto time per side per handshake (2006-era CPU).
  Duration crypto_time = Duration::millis(120);
  VerifyPolicy policy;
};

struct HandshakeResult {
  Status status = Status::ok_status();
  /// Identities each side authenticated (set on success).
  DistinguishedName initiator_name;
  DistinguishedName acceptor_name;
  /// Shared session token for message protection.
  std::uint64_t session_token = 0;
};

/// Performs mutual authentication between two parties across `link` on the
/// virtual clock. The callback fires after the handshake's network + crypto
/// time with the outcome; both chains are verified against `trust_anchor`.
void mutual_authenticate(sim::Simulation& sim, sim::Link& link,
                         const Party& initiator, const Party& acceptor,
                         const Certificate& trust_anchor,
                         std::function<void(HandshakeResult)> callback,
                         HandshakeConfig config = {});

/// Delegation: the holder of `delegate_from` (e.g. the broker, holding the
/// user's proxy) issues a further-restricted proxy for a remote party (the
/// glide-in agent). Depth grows by one; lifetime is clamped.
[[nodiscard]] Expected<Credential> delegate_proxy(const Credential& delegate_from,
                                                  SimTime now, Duration lifetime,
                                                  std::uint64_t key_seed);

/// Message protection: a keyed MAC over payload bytes under the session
/// token (the wrap/unwrap of GSI message integrity).
[[nodiscard]] std::uint64_t protect(std::uint64_t session_token,
                                    const void* data, std::size_t size);

}  // namespace cg::gsi
