#include "broker/site_health.hpp"

#include <algorithm>
#include <cmath>

namespace cg::broker {

namespace {
/// Below this a decayed entry is indistinguishable from healthy; it is
/// dropped so long runs do not accumulate dead per-site state.
constexpr double kSuspicionFloor = 1e-6;
}  // namespace

double SiteHealth::suspicion_at(SiteId site, SimTime when) const {
  if (!config_.enabled) return 0.0;
  const auto it = entries_.find(site);
  if (it == entries_.end()) return 0.0;
  const Duration dt = when - it->second.updated;
  if (dt <= Duration::zero()) return it->second.suspicion;
  const double halves = dt.to_seconds() / config_.half_life.to_seconds();
  return it->second.suspicion * std::pow(0.5, halves);
}

double SiteHealth::score_of(double suspicion) const {
  return std::pow(0.5, suspicion);
}

SimTime SiteHealth::exclusion_ends_after(SiteId site, SimTime when) const {
  const double s = suspicion_at(site, when);
  if (s < config_.exclusion_threshold) return when;
  // s * 0.5^(dt / h) < threshold  <=>  dt > h * log2(s / threshold).
  // Truncation rounds the exit *earlier*, which is the conservative side for
  // cache-validity horizons built on this bound.
  const double halves = std::log2(s / config_.exclusion_threshold);
  const auto dt_us = static_cast<std::int64_t>(
      halves * static_cast<double>(config_.half_life.count_micros()));
  return when + Duration::micros(dt_us);
}

void SiteHealth::apply(SiteId site, double delta) {
  if (!config_.enabled) return;
  const SimTime now = sim_.now();
  const double current = suspicion_at(site, now);
  if (delta < 0.0) {
    if (current == 0.0) return;  // nothing to reward away
    // Reward gating (pruning invariant, see header): while the site is
    // hard-excluded, only decay may lower its suspicion. Dropping the reward
    // keeps in-flight index prunes a lower bound on exclusion at delivery.
    if (current >= config_.exclusion_threshold) return;
  }
  const double next =
      std::clamp(current + delta, 0.0, config_.max_suspicion);
  if (current < config_.exclusion_threshold &&
      next >= config_.exclusion_threshold) {
    ++exclusion_epoch_;  // a site crossed into exclusion: cached prunes stale
  }
  if (next < kSuspicionFloor) {
    entries_.erase(site);
  } else {
    entries_[site] = Entry{next, now};
  }
  if (metrics_ != nullptr) {
    metrics_
        ->gauge("broker.site.health",
                obs::LabelSet{{"site", std::to_string(site.value())}})
        .set(score_of(next < kSuspicionFloor ? 0.0 : next));
  }
}

}  // namespace cg::broker
