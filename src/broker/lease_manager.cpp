#include "broker/lease_manager.hpp"

namespace cg::broker {

LeaseManager::~LeaseManager() {
  for (auto& [id, lease] : leases_) {
    if (lease.expiry.valid()) sim_.cancel(lease.expiry);
  }
}

Expected<LeaseId> LeaseManager::acquire(SiteId site, int cpus, Duration ttl,
                                        int site_capacity) {
  if (!site.valid() || cpus < 1 || ttl <= Duration::zero()) {
    return make_error("broker.lease_invalid",
                      "lease needs a valid site, cpus >= 1, positive ttl");
  }
  if (site_capacity >= 0 && leased_cpus(site) + cpus > site_capacity) {
    return make_error("broker.lease_conflict",
                      "site " + std::to_string(site.value()) + " has " +
                          std::to_string(leased_cpus(site)) + "/" +
                          std::to_string(site_capacity) +
                          " CPUs under lease; " + std::to_string(cpus) +
                          " more would over-commit");
  }
  const LeaseId id = ids_.next();
  const sim::EventHandle expiry = sim_.schedule(ttl, [this, id] { leases_.erase(id); });
  leases_.emplace(id, Lease{site, cpus, expiry});
  return id;
}

bool LeaseManager::release(LeaseId id) {
  const auto it = leases_.find(id);
  if (it == leases_.end()) return false;
  if (it->second.expiry.valid()) sim_.cancel(it->second.expiry);
  leases_.erase(it);
  return true;
}

int LeaseManager::leased_cpus(SiteId site) const {
  int total = 0;
  for (const auto& [id, lease] : leases_) {
    if (lease.site == site) total += lease.cpus;
  }
  return total;
}

}  // namespace cg::broker
