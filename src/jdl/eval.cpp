#include "jdl/eval.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace cg::jdl {

namespace {

Value eval_impl(const Expr& expr, const EvalContext& ctx, int depth);

}  // namespace

Value call_function(const std::string& fn, const std::vector<Value>& args) {
  if (fn == "isundefined") {
    if (args.size() != 1) return Value::undefined();
    return Value::boolean(args[0].is_undefined());
  }
  if (fn == "member") {
    // member(x, list): true iff some element equals x (ClassAd ==).
    if (args.size() != 2 || !args[1].is_list()) return Value::undefined();
    bool saw_undefined = false;
    for (const auto& item : args[1].as_list()) {
      const Value eq = cmp_eq(args[0], item);
      if (eq.is_true()) return Value::boolean(true);
      if (eq.is_undefined()) saw_undefined = true;
    }
    return saw_undefined ? Value::undefined() : Value::boolean(false);
  }
  if (fn == "size") {
    if (args.size() != 1) return Value::undefined();
    if (args[0].is_list()) {
      return Value::integer(static_cast<std::int64_t>(args[0].as_list().size()));
    }
    if (args[0].is_string()) {
      return Value::integer(static_cast<std::int64_t>(args[0].as_string().size()));
    }
    return Value::undefined();
  }
  if (fn == "abs") {
    if (args.size() != 1) return Value::undefined();
    if (args[0].is_int()) return Value::integer(std::abs(args[0].as_int()));
    if (args[0].is_real()) return Value::real(std::fabs(args[0].as_real()));
    return Value::undefined();
  }
  if (fn == "floor" || fn == "ceil" || fn == "round") {
    if (args.size() != 1 || !args[0].is_number()) return Value::undefined();
    const double x = args[0].as_number();
    double r = 0.0;
    if (fn == "floor") r = std::floor(x);
    else if (fn == "ceil") r = std::ceil(x);
    else r = std::round(x);
    return Value::integer(static_cast<std::int64_t>(r));
  }
  if (fn == "int") {
    if (args.size() != 1 || !args[0].is_number()) return Value::undefined();
    return Value::integer(static_cast<std::int64_t>(args[0].as_number()));
  }
  if (fn == "real") {
    if (args.size() != 1 || !args[0].is_number()) return Value::undefined();
    return Value::real(args[0].as_number());
  }
  if (fn == "min" || fn == "max") {
    // min/max over a list or over the argument values themselves.
    const ValueList* items = nullptr;
    ValueList direct;
    if (args.size() == 1 && args[0].is_list()) {
      items = &args[0].as_list();
    } else {
      direct = args;
      items = &direct;
    }
    if (items->empty()) return Value::undefined();
    double best = 0.0;
    bool first = true;
    bool all_int = true;
    for (const auto& v : *items) {
      if (!v.is_number()) return Value::undefined();
      all_int = all_int && v.is_int();
      const double x = v.as_number();
      if (first || (fn == "min" ? x < best : x > best)) best = x;
      first = false;
    }
    if (all_int) return Value::integer(static_cast<std::int64_t>(best));
    return Value::real(best);
  }
  if (fn == "strcat") {
    std::string out;
    for (const auto& v : args) {
      if (!v.is_string()) return Value::undefined();
      out += v.as_string();
    }
    return Value::string(std::move(out));
  }
  if (fn == "tolower" || fn == "toupper") {
    if (args.size() != 1 || !args[0].is_string()) return Value::undefined();
    std::string s = args[0].as_string();
    std::transform(s.begin(), s.end(), s.begin(), [&](unsigned char c) {
      return static_cast<char>(fn == "tolower" ? std::tolower(c) : std::toupper(c));
    });
    return Value::string(std::move(s));
  }
  return Value::undefined();  // unknown function
}

namespace {

Value eval_call(const Expr::Call& call, const EvalContext& ctx, int depth) {
  std::vector<Value> args;
  args.reserve(call.args.size());
  for (const auto& a : call.args) args.push_back(eval_impl(*a, ctx, depth));
  return call_function(call.function, args);
}

Value eval_impl(const Expr& expr, const EvalContext& ctx, int depth) {
  if (depth > kMaxEvalDepth) return Value::undefined();

  struct Visitor {
    const EvalContext& ctx;
    int depth;

    Value operator()(const Expr::Literal& l) const { return l.value; }

    Value operator()(const Expr::AttrRef& r) const {
      const ClassAd* ad = (r.scope == Scope::kOther) ? ctx.other : ctx.self;
      if (ad == nullptr) return Value::undefined();
      const ExprPtr e = ad->lookup(r.name);
      if (!e) return Value::undefined();
      // Attribute expressions are evaluated in the owning ad's scope: inside
      // `other.X`, further bare references resolve in the other ad.
      EvalContext inner = ctx;
      if (r.scope == Scope::kOther) {
        inner.self = ctx.other;
        inner.other = ctx.self;
      }
      return eval_impl(*e, inner, depth + 1);
    }

    Value operator()(const Expr::Unary& u) const {
      const Value v = eval_impl(*u.operand, ctx, depth + 1);
      return u.op == UnaryOp::kNot ? logical_not(v) : arith_neg(v);
    }

    Value operator()(const Expr::Binary& b) const {
      // Short-circuit where three-valued logic allows it.
      if (b.op == BinaryOp::kAnd) {
        const Value lhs = eval_impl(*b.lhs, ctx, depth + 1);
        if (lhs.is_bool() && !lhs.as_bool()) return Value::boolean(false);
        return logical_and(lhs, eval_impl(*b.rhs, ctx, depth + 1));
      }
      if (b.op == BinaryOp::kOr) {
        const Value lhs = eval_impl(*b.lhs, ctx, depth + 1);
        if (lhs.is_true()) return Value::boolean(true);
        return logical_or(lhs, eval_impl(*b.rhs, ctx, depth + 1));
      }
      const Value lhs = eval_impl(*b.lhs, ctx, depth + 1);
      const Value rhs = eval_impl(*b.rhs, ctx, depth + 1);
      switch (b.op) {
        case BinaryOp::kEq: return cmp_eq(lhs, rhs);
        case BinaryOp::kNe: return cmp_ne(lhs, rhs);
        case BinaryOp::kLt: return cmp_lt(lhs, rhs);
        case BinaryOp::kLe: return cmp_le(lhs, rhs);
        case BinaryOp::kGt: return cmp_gt(lhs, rhs);
        case BinaryOp::kGe: return cmp_ge(lhs, rhs);
        case BinaryOp::kAdd: return arith_add(lhs, rhs);
        case BinaryOp::kSub: return arith_sub(lhs, rhs);
        case BinaryOp::kMul: return arith_mul(lhs, rhs);
        case BinaryOp::kDiv: return arith_div(lhs, rhs);
        case BinaryOp::kMod: return arith_mod(lhs, rhs);
        case BinaryOp::kAnd:
        case BinaryOp::kOr: break;  // handled above
      }
      return Value::undefined();
    }

    Value operator()(const Expr::Ternary& t) const {
      const Value cond = eval_impl(*t.cond, ctx, depth + 1);
      if (!cond.is_bool()) return Value::undefined();
      return eval_impl(cond.as_bool() ? *t.if_true : *t.if_false, ctx, depth + 1);
    }

    Value operator()(const Expr::ListExpr& l) const {
      ValueList items;
      items.reserve(l.items.size());
      for (const auto& e : l.items) items.push_back(eval_impl(*e, ctx, depth + 1));
      return Value::list(std::move(items));
    }

    Value operator()(const Expr::Call& c) const { return eval_call(c, ctx, depth + 1); }
  };

  return std::visit(Visitor{ctx, depth}, expr.node);
}

}  // namespace

Value evaluate(const Expr& expr, const EvalContext& ctx) {
  return eval_impl(expr, ctx, 0);
}

Value evaluate_attr(const ClassAd& self, std::string_view name, const ClassAd* other) {
  const ExprPtr e = self.lookup(name);
  if (!e) return Value::undefined();
  EvalContext ctx;
  ctx.self = &self;
  ctx.other = other;
  return evaluate(*e, ctx);
}

bool symmetric_match(const ClassAd& left, const ClassAd& right) {
  const auto side_ok = [](const ClassAd& self, const ClassAd& other) {
    const ExprPtr req = self.lookup("requirements");
    if (!req) return true;
    EvalContext ctx;
    ctx.self = &self;
    ctx.other = &other;
    return evaluate(*req, ctx).is_true();
  };
  return side_ok(left, right) && side_ok(right, left);
}

}  // namespace cg::jdl
