// Wire-protocol tests: frame encoding, incremental decoding, corruption
// handling, and the disk spool file.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "interpose/spool_file.hpp"
#include "interpose/wire.hpp"

namespace cg::interpose {
namespace {

TEST(WireTest, EncodeDecodeRoundTrip) {
  Frame frame;
  frame.type = FrameType::kStdout;
  frame.rank = 7;
  frame.payload = "hello grid\n";
  const std::string encoded = encode_frame(frame);
  EXPECT_EQ(encoded.size(), kFrameHeaderBytes + frame.payload.size());

  FrameDecoder decoder;
  decoder.feed(encoded);
  const auto decoded = decoder.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, frame);
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(WireTest, EmptyPayloadFrames) {
  Frame hello;
  hello.type = FrameType::kHello;
  hello.rank = 3;
  FrameDecoder decoder;
  decoder.feed(encode_frame(hello));
  const auto decoded = decoder.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, FrameType::kHello);
  EXPECT_EQ(decoded->rank, 3u);
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(WireTest, IncrementalFeedByteByByte) {
  Frame frame;
  frame.type = FrameType::kStdin;
  frame.payload = "abcdef";
  const std::string encoded = encode_frame(frame);
  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < encoded.size(); ++i) {
    decoder.feed(&encoded[i], 1);
    EXPECT_FALSE(decoder.next().has_value());
  }
  decoder.feed(&encoded.back(), 1);
  const auto decoded = decoder.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload, "abcdef");
}

TEST(WireTest, MultipleFramesInOneBuffer) {
  std::string buffer;
  for (int i = 0; i < 5; ++i) {
    Frame f;
    f.type = FrameType::kStdout;
    f.rank = static_cast<std::uint32_t>(i);
    f.payload = "line " + std::to_string(i);
    buffer += encode_frame(f);
  }
  FrameDecoder decoder;
  decoder.feed(buffer);
  for (int i = 0; i < 5; ++i) {
    const auto f = decoder.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->rank, static_cast<std::uint32_t>(i));
  }
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(WireTest, BinaryPayloadSafe) {
  Frame frame;
  frame.type = FrameType::kStdout;
  frame.payload = std::string("\x00\x01\xff\n\x00", 5);
  FrameDecoder decoder;
  decoder.feed(encode_frame(frame));
  const auto decoded = decoder.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->payload.size(), 5u);
  EXPECT_EQ(decoded->payload, frame.payload);
}

TEST(WireTest, CorruptTypeThrows) {
  std::string bogus(kFrameHeaderBytes, '\0');
  bogus[0] = '\x7f';  // invalid frame type
  FrameDecoder decoder;
  decoder.feed(bogus);
  EXPECT_THROW((void)decoder.next(), std::runtime_error);
}

TEST(WireTest, ImplausibleLengthThrows) {
  Frame frame;
  frame.type = FrameType::kStdout;
  std::string encoded = encode_frame(frame);
  encoded[5] = '\x7f';  // length high byte -> ~2 GB
  FrameDecoder decoder;
  decoder.feed(encoded);
  EXPECT_THROW((void)decoder.next(), std::runtime_error);
}

TEST(WireTest, OversizedPayloadRejectedAtEncode) {
  Frame frame;
  frame.payload.resize(kMaxFramePayload + 1);
  EXPECT_THROW((void)encode_frame(frame), std::invalid_argument);
}

TEST(WireTest, CompactionKeepsDecoderCorrect) {
  // Force many decode cycles so the internal compaction path runs.
  FrameDecoder decoder;
  for (int i = 0; i < 2000; ++i) {
    Frame f;
    f.type = FrameType::kStdout;
    f.payload = "payload payload payload";
    decoder.feed(encode_frame(f));
    const auto out = decoder.next();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->payload, f.payload);
  }
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

// ----------------------------------------------------- zero-copy sessions ----

TEST(WireViewTest, HeaderScratchMatchesOwningEncoder) {
  Frame frame;
  frame.type = FrameType::kStderr;
  frame.rank = 42;
  frame.payload = "zero copy";
  const std::string owning = encode_frame(frame);
  char header[kFrameHeaderBytes];
  encode_frame_header(header, frame.type, frame.rank, frame.payload.size());
  EXPECT_EQ(std::string_view(header, kFrameHeaderBytes),
            std::string_view(owning).substr(0, kFrameHeaderBytes));
  std::string scratch = "stale contents from a previous frame";
  encode_frame_into(scratch, frame.type, frame.rank, frame.payload);
  EXPECT_EQ(scratch, owning);
  EXPECT_THROW(
      encode_frame_header(header, frame.type, 0, kMaxFramePayload + 1),
      std::invalid_argument);
}

TEST(WireViewTest, ViewsBorrowTheSessionSpan) {
  Frame frame;
  frame.type = FrameType::kStdout;
  frame.rank = 3;
  frame.payload = "borrowed bytes";
  const std::string encoded = encode_frame(frame);
  FrameDecoder decoder;
  decoder.begin(encoded);
  const auto view = decoder.next_view();
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->rank, 3u);
  EXPECT_EQ(view->payload, "borrowed bytes");
  // Zero-copy: the payload view points into the caller's buffer.
  EXPECT_EQ(view->payload.data(), encoded.data() + kFrameHeaderBytes);
  EXPECT_EQ(view->to_frame(), frame);
  EXPECT_FALSE(decoder.next_view().has_value());
  decoder.end();
  EXPECT_EQ(decoder.buffered_bytes(), 0u);  // nothing straddled, no copy
}

// --------------------------------------------------------- property test ----

/// A frame stream exercising the decoder's corners: empty payloads, 1-byte
/// payloads, payloads longer than a read, every frame type, binary bytes.
std::string corner_stream(std::vector<Frame>& out) {
  out.clear();
  const std::string payloads[] = {
      "",
      "x",
      "ordinary line\n",
      std::string(300, 'Q'),
      std::string("\x00\x01\xff\n\x00", 5),
      "tail",
  };
  std::uint32_t rank = 0;
  for (const auto& payload : payloads) {
    Frame f;
    f.type = static_cast<FrameType>(rank % 6);
    f.rank = rank++;
    f.payload = payload;
    out.push_back(f);
  }
  std::string stream;
  for (const Frame& f : out) stream += encode_frame(f);
  return stream;
}

/// Decodes `stream` delivered as the given consecutive pieces, one zero-copy
/// session per piece.
std::vector<Frame> decode_pieces(const std::string& stream,
                                 const std::vector<std::size_t>& cuts) {
  FrameDecoder decoder;
  std::vector<Frame> frames;
  std::size_t pos = 0;
  for (std::size_t cut : cuts) {
    decoder.begin(stream.data() + pos, cut - pos);
    while (const auto view = decoder.next_view()) frames.push_back(view->to_frame());
    decoder.end();
    pos = cut;
  }
  decoder.begin(stream.data() + pos, stream.size() - pos);
  while (const auto view = decoder.next_view()) frames.push_back(view->to_frame());
  decoder.end();
  return frames;
}

TEST(WireViewTest, SplitAtEveryByteBoundaryMatchesOneShot) {
  // Satellite property test: cut the stream at every byte offset — including
  // mid-header and mid-payload — and the two-session decode must yield
  // exactly the frames a one-shot decode yields.
  std::vector<Frame> expected;
  const std::string stream = corner_stream(expected);
  ASSERT_EQ(decode_pieces(stream, {}), expected);  // one-shot reference
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    ASSERT_EQ(decode_pieces(stream, {cut}), expected) << "cut at byte " << cut;
  }
}

TEST(WireViewTest, SeededRandomChunkingsMatchOneShot) {
  // 100 seeded shuffles of the read boundaries: each iteration carves the
  // stream into a different sequence of reads (many of them tiny, so frames
  // straddle session after session), and every chunking must decode to the
  // same frame sequence.
  std::vector<Frame> expected;
  const std::string stream = corner_stream(expected);
  std::uint64_t lcg = 0x2545f4914f6cdd1dULL;
  const auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg >> 33;
  };
  for (int iteration = 0; iteration < 100; ++iteration) {
    std::vector<std::size_t> cuts;
    std::size_t pos = 0;
    while (pos < stream.size()) {
      // Mostly small reads (1..16 bytes), occasionally a big gulp.
      const std::size_t step =
          next() % 8 == 0 ? 1 + next() % 200 : 1 + next() % 16;
      pos = std::min(stream.size(), pos + step);
      if (pos < stream.size()) cuts.push_back(pos);
    }
    ASSERT_EQ(decode_pieces(stream, cuts), expected)
        << "iteration " << iteration;
    // The owning feed()/next() shim must agree with the session API.
    FrameDecoder shim;
    std::vector<Frame> shim_frames;
    std::size_t prev = 0;
    for (std::size_t cut : cuts) {
      shim.feed(stream.data() + prev, cut - prev);
      while (const auto f = shim.next()) shim_frames.push_back(*f);
      prev = cut;
    }
    shim.feed(stream.data() + prev, stream.size() - prev);
    while (const auto f = shim.next()) shim_frames.push_back(*f);
    ASSERT_EQ(shim_frames, expected) << "shim iteration " << iteration;
  }
}

// ------------------------------------------------------------ spool file ----

class SpoolFileFixture : public ::testing::Test {
protected:
  void SetUp() override {
    path_ = "/tmp/cg-spool-test-" + std::to_string(::testing::UnitTest::GetInstance()
                                                       ->random_seed()) +
            "-" + std::to_string(counter_++);
    std::remove(path_.c_str());
    std::remove((path_ + ".cursor").c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".cursor").c_str());
  }

  static Frame frame(const std::string& payload) {
    Frame f;
    f.type = FrameType::kStdout;
    f.payload = payload;
    return f;
  }

  static int counter_;
  std::string path_;
};

int SpoolFileFixture::counter_ = 0;

TEST_F(SpoolFileFixture, AppendPeekAdvance) {
  auto spool = SpoolFile::open(path_);
  ASSERT_TRUE(spool.has_value());
  ASSERT_TRUE(spool->append(frame("one")).ok());
  ASSERT_TRUE(spool->append(frame("two")).ok());
  EXPECT_EQ(spool->pending(), 2u);

  auto first = spool->peek();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->payload, "one");
  ASSERT_TRUE(spool->advance().ok());

  auto second = spool->peek();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->payload, "two");
  ASSERT_TRUE(spool->advance().ok());
  EXPECT_FALSE(spool->peek().has_value());
  EXPECT_EQ(spool->pending(), 0u);
}

TEST_F(SpoolFileFixture, AdvanceWithoutPeekFails) {
  auto spool = SpoolFile::open(path_);
  ASSERT_TRUE(spool.has_value());
  ASSERT_TRUE(spool->append(frame("x")).ok());
  EXPECT_FALSE(spool->advance().ok());
}

TEST_F(SpoolFileFixture, CursorSurvivesReopen) {
  {
    auto spool = SpoolFile::open(path_);
    ASSERT_TRUE(spool.has_value());
    ASSERT_TRUE(spool->append(frame("sent")).ok());
    ASSERT_TRUE(spool->append(frame("unsent")).ok());
    ASSERT_TRUE(spool->peek().has_value());
    ASSERT_TRUE(spool->advance().ok());
  }  // close (simulated crash after sending the first frame)
  auto reopened = SpoolFile::open(path_);
  ASSERT_TRUE(reopened.has_value());
  EXPECT_EQ(reopened->pending(), 1u);
  const auto next = reopened->peek();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->payload, "unsent");
}

TEST_F(SpoolFileFixture, RemoveFilesCleansDisk) {
  auto spool = SpoolFile::open(path_);
  ASSERT_TRUE(spool.has_value());
  ASSERT_TRUE(spool->append(frame("x")).ok());
  spool->remove_files();
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

TEST_F(SpoolFileFixture, PeekOnEmptySpool) {
  auto spool = SpoolFile::open(path_);
  ASSERT_TRUE(spool.has_value());
  EXPECT_FALSE(spool->peek().has_value());
  EXPECT_EQ(spool->pending(), 0u);
}

TEST(WireTest, FrameTypeNames) {
  EXPECT_STREQ(to_string(FrameType::kHello), "hello");
  EXPECT_STREQ(to_string(FrameType::kExit), "exit");
  EXPECT_TRUE(is_valid_frame_type(0));
  EXPECT_TRUE(is_valid_frame_type(5));
  EXPECT_FALSE(is_valid_frame_type(6));
}

}  // namespace
}  // namespace cg::interpose
