// Matchmaker and lease-manager tests: Requirements filtering, Rank ordering,
// randomized tie-breaking, and exclusive temporal access. The fixture is
// parameterized over MatchmakerConfig::use_fast_path so every behaviour is
// asserted for both the legacy AST interpretation and the compiled fast path.
#include <gtest/gtest.h>

#include <set>

#include "broker/matchmaker.hpp"

namespace cg::broker {
namespace {

using namespace cg::literals;

infosys::SiteRecord make_record(std::uint64_t id, int free_cpus,
                                const std::string& arch = "i686") {
  infosys::SiteRecord r;
  r.static_info.id = SiteId{id};
  r.static_info.name = "site" + std::to_string(id);
  r.static_info.arch = arch;
  r.static_info.worker_nodes = free_cpus;
  r.static_info.cpus_per_node = 1;
  r.dynamic_info.free_cpus = free_cpus;
  return r;
}

jdl::JobDescription make_job(const std::string& extra = "") {
  auto jd = jdl::JobDescription::parse("Executable = \"app\";\n" + extra);
  EXPECT_TRUE(jd.has_value()) << (jd ? "" : jd.error().to_string());
  return jd.value();
}

class MatchmakerFixture : public ::testing::TestWithParam<bool> {
protected:
  [[nodiscard]] MatchmakerConfig config(double tie_margin = 1e-9) const {
    MatchmakerConfig c;
    c.rank_tie_margin = tie_margin;
    c.use_fast_path = GetParam();
    return c;
  }

  sim::Simulation sim;
  LeaseManager leases{sim};
  Matchmaker matchmaker{MatchmakerConfig{
      .rank_tie_margin = 1e-9, .randomize_ties = true,
      .use_fast_path = false}};  // overwritten in SetUp

  void SetUp() override { matchmaker = Matchmaker{config()}; }
};

INSTANTIATE_TEST_SUITE_P(LegacyAndFast, MatchmakerFixture, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& p) {
                           return p.param ? "Fast" : "Legacy";
                         });

TEST_P(MatchmakerFixture, CapacityFilter) {
  const auto job = make_job();
  const auto out = matchmaker.filter(
      job, {make_record(1, 0), make_record(2, 3)}, leases, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].site, SiteId{2});
  EXPECT_EQ(out[0].effective_free_cpus, 3);
}

TEST_P(MatchmakerFixture, RequirementsFilter) {
  const auto job = make_job("Requirements = other.Arch == \"x86_64\";");
  const auto out = matchmaker.filter(
      job, {make_record(1, 4, "i686"), make_record(2, 4, "x86_64")}, leases, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].site, SiteId{2});
}

TEST_P(MatchmakerFixture, NeededCpusRespectsParallelJobs) {
  const auto job = make_job();
  const auto out = matchmaker.filter(
      job, {make_record(1, 2), make_record(2, 8)}, leases, 4);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].site, SiteId{2});
}

TEST_P(MatchmakerFixture, LeasesShadowFreeCpus) {
  const auto job = make_job();
  ASSERT_TRUE(leases.acquire(SiteId{1}, 3, 60_s));
  const auto out = matchmaker.filter(job, {make_record(1, 4)}, leases, 2);
  // 4 free - 3 leased = 1 effective, below the 2 needed.
  EXPECT_TRUE(out.empty());
  const auto loose = matchmaker.filter(job, {make_record(1, 4)}, leases, 1);
  ASSERT_EQ(loose.size(), 1u);
  EXPECT_EQ(loose[0].effective_free_cpus, 1);
}

TEST_P(MatchmakerFixture, DefaultRankPrefersFreeCpus) {
  const auto job = make_job();
  const auto out = matchmaker.filter(
      job, {make_record(1, 2), make_record(2, 8)}, leases, 1);
  Rng rng{1};
  // Site 2 has strictly better rank; selection must always pick it.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(matchmaker.select(out, rng), SiteId{2});
  }
}

TEST_P(MatchmakerFixture, CustomRankExpression) {
  // Prefer the *fuller* site via a custom Rank.
  const auto job = make_job("Rank = -other.FreeCPUs;");
  const auto out = matchmaker.filter(
      job, {make_record(1, 2), make_record(2, 8)}, leases, 1);
  Rng rng{1};
  EXPECT_EQ(matchmaker.select(out, rng), SiteId{1});
}

TEST_P(MatchmakerFixture, RandomizedSelectionAmongTies) {
  // "Randomized selection of resources ... used to generate different
  // answers when there are multiple resource choices."
  const auto job = make_job();
  const auto out = matchmaker.filter(
      job, {make_record(1, 4), make_record(2, 4), make_record(3, 4)}, leases, 1);
  Rng rng{99};
  std::set<std::uint64_t> chosen;
  for (int i = 0; i < 100; ++i) {
    const auto site = matchmaker.select(out, rng);
    ASSERT_TRUE(site.has_value());
    chosen.insert(site->value());
  }
  EXPECT_EQ(chosen.size(), 3u);
}

TEST_P(MatchmakerFixture, SelectEmptyReturnsNullopt) {
  Rng rng{1};
  EXPECT_FALSE(matchmaker.select({}, rng).has_value());
}

TEST_P(MatchmakerFixture, NonNumericRankIsNeutral) {
  const auto job = make_job("Rank = \"not a number\";");
  const auto out = matchmaker.filter(job, {make_record(1, 4)}, leases, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].rank, 0.0);
}

TEST_P(MatchmakerFixture, TieMarginIsSymmetricUnderNegation) {
  // Regression for the asymmetric tie window: the old rule
  // `rank >= best - |best| * margin` scaled by the best rank's magnitude,
  // which for negative ranks is the *smallest* magnitude in the tie set —
  // ranks {10, 18} tied under margin 0.5 while the mirrored {-10, -18}
  // (gap 8, window |−10|·0.5 = 5) did not. The window now scales with the
  // larger magnitude, so negating every rank preserves the tie set.
  const Matchmaker wide{config(/*tie_margin=*/0.5)};
  const auto records = [&] {
    return std::vector<infosys::SiteRecord>{make_record(1, 10),
                                            make_record(2, 18)};
  };
  const auto draws = [&](const std::string& rank_expr) {
    const auto out =
        wide.filter(make_job(rank_expr), records(), leases, 1);
    EXPECT_EQ(out.size(), 2u);
    Rng rng{7};
    std::set<std::uint64_t> chosen;
    for (int i = 0; i < 200; ++i) {
      const auto site = wide.select(out, rng);
      if (site) chosen.insert(site->value());
    }
    return chosen;
  };
  // Ranks {10, 18}: gap 8 within 0.5 * 18 = 9 -> both are ties.
  EXPECT_EQ(draws("Rank = other.FreeCPUs;").size(), 2u);
  // Mirrored ranks {-10, -18}: same gap, same window -> still both ties.
  EXPECT_EQ(draws("Rank = -other.FreeCPUs;").size(), 2u);
}

// ---------------------------------------------------------------- leases ----

TEST(LeaseManagerTest, AcquireReleaseCounts) {
  sim::Simulation sim;
  LeaseManager leases{sim};
  const LeaseId a = leases.acquire(SiteId{1}, 2, 60_s).value();
  ASSERT_TRUE(leases.acquire(SiteId{1}, 1, 60_s));
  ASSERT_TRUE(leases.acquire(SiteId{2}, 5, 60_s));
  EXPECT_EQ(leases.leased_cpus(SiteId{1}), 3);
  EXPECT_EQ(leases.leased_cpus(SiteId{2}), 5);
  EXPECT_EQ(leases.active_leases(), 3u);
  EXPECT_TRUE(leases.release(a));
  EXPECT_FALSE(leases.release(a));  // double release
  EXPECT_EQ(leases.leased_cpus(SiteId{1}), 1);
}

TEST(LeaseManagerTest, ExpiryFreesAutomatically) {
  sim::Simulation sim;
  LeaseManager leases{sim};
  ASSERT_TRUE(leases.acquire(SiteId{1}, 4, 30_s));
  sim.run_until(SimTime::from_seconds(29));
  EXPECT_EQ(leases.leased_cpus(SiteId{1}), 4);
  sim.run_until(SimTime::from_seconds(31));
  EXPECT_EQ(leases.leased_cpus(SiteId{1}), 0);
  EXPECT_EQ(leases.active_leases(), 0u);
}

TEST(LeaseManagerTest, ReleaseCancelsExpiryEvent) {
  sim::Simulation sim;
  LeaseManager leases{sim};
  const LeaseId a = leases.acquire(SiteId{1}, 1, 30_s).value();
  EXPECT_TRUE(leases.release(a));
  sim.run();  // the cancelled expiry must not fire on a stale id
  EXPECT_EQ(leases.active_leases(), 0u);
}

TEST(LeaseManagerTest, Validation) {
  sim::Simulation sim;
  LeaseManager leases{sim};
  // Validation failures come back as typed errors, not throws.
  const auto bad_site = leases.acquire(SiteId{}, 1, 1_s);
  ASSERT_FALSE(bad_site);
  EXPECT_EQ(bad_site.error().code, "broker.lease_invalid");
  EXPECT_FALSE(leases.acquire(SiteId{1}, 0, 1_s));
  EXPECT_FALSE(leases.acquire(SiteId{1}, 1, Duration::zero()));
}

TEST(LeaseManagerTest, CapacityConflict) {
  sim::Simulation sim;
  LeaseManager leases{sim};
  ASSERT_TRUE(leases.acquire(SiteId{1}, 3, 60_s));
  // A 4-CPU site with 3 leased refuses 2 more but accepts 1.
  const auto conflict = leases.acquire(SiteId{1}, 2, 60_s, 4);
  ASSERT_FALSE(conflict);
  EXPECT_EQ(conflict.error().code, "broker.lease_conflict");
  EXPECT_TRUE(leases.acquire(SiteId{1}, 1, 60_s, 4));
  EXPECT_EQ(leases.leased_cpus(SiteId{1}), 4);
}

TEST(LeaseManagerTest, ObserverSeesAcquireReleaseAndExpiry) {
  sim::Simulation sim;
  LeaseManager leases{sim};
  std::vector<std::pair<std::uint64_t, int>> deltas;
  leases.set_observer([&](SiteId site, int delta) {
    deltas.emplace_back(site.value(), delta);
  });
  const LeaseId a = leases.acquire(SiteId{1}, 2, 60_s).value();
  ASSERT_TRUE(leases.acquire(SiteId{2}, 3, 10_s));
  EXPECT_TRUE(leases.release(a));
  sim.run();  // site 2's lease expires
  const std::vector<std::pair<std::uint64_t, int>> expected{
      {1, 2}, {2, 3}, {1, -2}, {2, -3}};
  EXPECT_EQ(deltas, expected);
}

}  // namespace
}  // namespace cg::broker
