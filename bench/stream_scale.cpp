// Streaming-path scale benchmark: drives N concurrent interactive sessions —
// agent-side FlushBuffer, wire framing, spool-then-send ReliableChannel,
// shadow-side decode and screen FlushBuffer — through the pre-rewrite
// streaming stack (std::string payload copies, std::deque queues, a
// heap-allocating std::function per message; embedded below verbatim) and
// the current pooled-chunk / inline-ring / InplaceFunction path, asserts
// both deliver the byte-identical message sequence (content, order, virtual
// timestamps, flush reasons), and reports messages/sec. For the current path
// it also proves the zero-allocation claim: once the chunk pool, rings and
// event slab reach their high-water marks, the steady-state
// append→flush→frame→spool→transmit→deliver→decode→screen cycle must not
// touch the global heap (counted via replaced operator new). A third run
// enables Nagle-style send coalescing (off by default in production) and
// checks it preserves per-message content and order while cutting spool
// write operations.
//
// Usage:
//   stream_scale                 full sweep (100..2000 sessions)
//   stream_scale --smoke         smallest grid only; exit 1 on any violation
//   stream_scale --json <path>   also write machine-readable results
#include <execinfo.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <new>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "interpose/wire.hpp"
#include "sim/disk.hpp"
#include "sim/network.hpp"
#include "sim/simulation.hpp"
#include "stream/channel_model.hpp"
#include "stream/chunk.hpp"
#include "stream/flush_buffer.hpp"
#include "stream/reliable_channel.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

// ------------------------------------------------- allocation accounting ----

namespace {
std::size_t g_alloc_count = 0;
bool g_alloc_trap = false;  // temporary: abort on steady-state alloc (debug)
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (g_alloc_trap) {
    g_alloc_trap = false;
    void* frames[32];
    const int n = backtrace(frames, 32);
    backtrace_symbols_fd(frames, n, 2);
    g_alloc_trap = true;
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align) {
  ++g_alloc_count;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc{};
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#pragma GCC diagnostic pop

namespace {

using namespace cg;
using cg::interpose::FrameType;
using cg::interpose::kFrameHeaderBytes;
using cg::interpose::kMaxFramePayload;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a_bytes(std::uint64_t h, const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Optional frame dump for divergence debugging (--dump <prefix> writes one
/// file per run with every frame's timestamp, rank, size and prefix).
std::FILE* g_dump = nullptr;

// ------------------------------------------------------- legacy stack -------
// Faithful copies of the streaming components this rewrite replaced, kept
// verbatim (minus metrics/log hooks) so the digest comparison pins the new
// path to the exact historical delivery sequence. Both stacks run on the
// current event engine — sim_scale already proves engine equivalence — so
// the comparison isolates the streaming data path itself.

namespace legacy {

using FlushReason = cg::stream::FlushReason;

struct FlushBufferConfig {
  std::size_t capacity = 64 * 1024;
  Duration timeout = Duration::millis(200);
  bool flush_on_newline = true;
};

class FlushBuffer {
public:
  using FlushFn = std::function<void(std::string data)>;

  FlushBuffer(sim::Simulation& sim, FlushBufferConfig config, FlushFn on_flush)
      : sim_{sim}, config_{config}, on_flush_{std::move(on_flush)} {}

  void append(std::string_view data) {
    while (!data.empty()) {
      const std::size_t room = config_.capacity - buffer_.size();
      std::size_t take = std::min(room, data.size());
      bool newline_flush = false;
      if (config_.flush_on_newline) {
        const std::size_t nl = data.substr(0, take).find('\n');
        if (nl != std::string_view::npos) {
          take = nl + 1;
          newline_flush = true;
        }
      }
      buffer_.append(data.substr(0, take));
      data.remove_prefix(take);
      if (buffer_.size() >= config_.capacity || newline_flush) {
        emit(newline_flush ? FlushReason::kNewline : FlushReason::kCapacity);
      } else if (!buffer_.empty() && !timer_.armed()) {
        arm_timeout();
      }
    }
  }

  void flush() {
    if (!buffer_.empty()) emit(FlushReason::kExplicit);
  }

  [[nodiscard]] std::size_t flush_count(FlushReason reason) const {
    return reason_counts_[static_cast<std::size_t>(reason)];
  }

private:
  void arm_timeout() {
    timer_.rearm(sim_, sim_.schedule(config_.timeout, [this] {
      if (!buffer_.empty()) emit(FlushReason::kTimeout);
    }));
  }

  void emit(FlushReason reason) {
    timer_.reset();
    std::string out;
    out.swap(buffer_);
    ++reason_counts_[static_cast<std::size_t>(reason)];
    on_flush_(std::move(out));
  }

  sim::Simulation& sim_;
  FlushBufferConfig config_;
  FlushFn on_flush_;
  std::string buffer_;
  std::array<std::size_t, 4> reason_counts_{};
  sim::ScopedTimer timer_;
};

class Spool {
public:
  explicit Spool(sim::DiskModel& disk) : disk_{disk} {}

  Duration push(std::size_t bytes) {
    entries_.push_back(bytes);
    pending_bytes_ += bytes;
    disk_.note_write(bytes);
    return disk_.write_duration(bytes);
  }

  [[nodiscard]] std::optional<Duration> try_push(std::size_t bytes) {
    const bool over_capacity =
        capacity_bytes_ != 0 && pending_bytes_ + bytes > capacity_bytes_;
    if (!disk_.healthy() || over_capacity) return std::nullopt;
    return push(bytes);
  }

  void set_capacity(std::size_t bytes) { capacity_bytes_ = bytes; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  void pop_acknowledged() {
    pending_bytes_ -= entries_.front();
    entries_.pop_front();
  }

  Duration charge_recovery_read() {
    const std::size_t bytes = entries_.front();
    disk_.note_read(bytes);
    return disk_.read_duration(bytes);
  }

private:
  sim::DiskModel& disk_;
  std::deque<std::size_t> entries_;
  std::size_t pending_bytes_ = 0;
  std::size_t capacity_bytes_ = 0;
};

/// The pre-rewrite SimChannel: std::function callbacks, one heap-scheduled
/// delivery per send. Packetization math is byte-identical to the current
/// one (stream/channel_model.cpp) so timings stay in lockstep.
class SimChannel {
public:
  using DeliverFn = std::function<void(std::size_t bytes)>;
  using FailFn = std::function<void(std::size_t bytes)>;

  SimChannel(sim::Simulation& sim, sim::Link& link, cg::stream::ChannelSpec spec,
             Rng rng)
      : sim_{sim}, link_{link}, spec_{std::move(spec)}, rng_{std::move(rng)} {}

  void send(std::size_t bytes, DeliverFn on_deliver, FailFn on_fail = nullptr) {
    ++messages_;
    if (!link_.is_up(sim_.now())) {
      ++failures_;
      if (on_fail) on_fail(bytes);
      return;
    }
    bytes_ += bytes;
    const Duration duration = sample_duration(bytes);
    SimTime deliver_at = sim_.now() + duration;
    if (deliver_at < last_delivery_) deliver_at = last_delivery_;
    last_delivery_ = deliver_at;
    sim_.schedule_at(deliver_at,
                     [cb = std::move(on_deliver), bytes] { cb(bytes); });
  }

private:
  [[nodiscard]] Duration sample_duration(std::size_t bytes) {
    const std::size_t packets =
        bytes == 0 ? 1
                   : (bytes + spec_.packet_payload - 1) / spec_.packet_payload;
    const auto wire_bytes =
        static_cast<std::size_t>(std::llround(static_cast<double>(bytes) *
                                              spec_.byte_factor)) +
        packets * spec_.header_bytes;
    Duration d = spec_.per_message_overhead +
                 spec_.per_packet_overhead * static_cast<std::int64_t>(packets) +
                 link_.transfer_duration(wire_bytes);
    if (spec_.jitter_factor > 1.0) {
      const double extra_stddev =
          (spec_.jitter_factor - 1.0) *
          static_cast<double>(link_.spec().jitter_stddev.count_micros());
      if (extra_stddev > 0.0) {
        const double sample = std::abs(rng_.normal(0.0, extra_stddev));
        d += Duration::micros(static_cast<std::int64_t>(std::llround(sample)));
      }
    }
    return d;
  }

  sim::Simulation& sim_;
  sim::Link& link_;
  cg::stream::ChannelSpec spec_;
  Rng rng_;
  SimTime last_delivery_;
  std::size_t messages_ = 0;
  std::size_t failures_ = 0;
  std::size_t bytes_ = 0;
};

struct RetryPolicy {
  Duration retry_interval = Duration::seconds(5);
  int max_retries = 12;
  std::size_t spool_capacity_bytes = 0;
};

class ReliableChannel {
public:
  using DeliverFn = std::function<void(std::size_t bytes)>;

  ReliableChannel(sim::Simulation& sim, SimChannel& channel,
                  sim::DiskModel& sender_disk, sim::DiskModel* receiver_disk,
                  RetryPolicy policy = {})
      : sim_{sim},
        channel_{channel},
        spool_{sender_disk},
        receiver_disk_{receiver_disk},
        policy_{policy} {
    spool_.set_capacity(policy_.spool_capacity_bytes);
  }

  ~ReliableChannel() { ++epoch_; }

  void send(std::size_t bytes, DeliverFn on_deliver) {
    if (gave_up_) return;
    queue_.push_back(Entry{bytes, std::move(on_deliver), false, false});
    pump_appends();
  }

private:
  struct Entry {
    std::size_t bytes = 0;
    DeliverFn on_deliver;
    bool recovered_from_disk = false;
    bool spooled = false;
  };

  void pump_appends() {
    Duration head_cost = Duration::zero();
    bool head_just_spooled = false;
    for (Entry& entry : queue_) {
      if (entry.spooled) continue;
      const std::optional<Duration> cost = spool_.try_push(entry.bytes);
      if (!cost) break;  // never hit in this workload (healthy disk)
      entry.spooled = true;
      if (&entry == &queue_.front()) {
        head_cost = *cost;
        head_just_spooled = true;
      }
    }
    if (!transmitting_ && !queue_.empty() && queue_.front().spooled) {
      transmitting_ = true;
      transmit_head(head_just_spooled ? head_cost : Duration::zero());
    }
  }

  void transmit_head(Duration extra_delay) {
    if (queue_.empty()) {
      transmitting_ = false;
      return;
    }
    const std::uint64_t epoch = epoch_;
    sim_.schedule(extra_delay, [this, epoch] {
      if (epoch != epoch_ || gave_up_ || queue_.empty()) return;
      const Entry& head = queue_.front();
      channel_.send(
          head.bytes,
          [this, epoch](std::size_t) {
            if (epoch == epoch_) on_head_delivered();
          },
          [this, epoch](std::size_t) {
            if (epoch == epoch_) on_head_failed();
          });
    });
  }

  void on_head_delivered() {
    if (queue_.empty()) return;
    failures_ = 0;
    Entry head = std::move(queue_.front());
    queue_.pop_front();
    spool_.pop_acknowledged();
    if (head.on_deliver) {
      if (receiver_disk_ != nullptr) {
        receiver_disk_->note_write(head.bytes);
        const Duration cost = receiver_disk_->write_duration(head.bytes);
        sim_.schedule(cost,
                      [cb = std::move(head.on_deliver), bytes = head.bytes] {
                        cb(bytes);
                      });
      } else {
        head.on_deliver(head.bytes);
      }
    }
    if (queue_.empty() || !queue_.front().spooled) {
      transmitting_ = false;
    } else {
      transmit_head(Duration::zero());
    }
  }

  void on_head_failed() {
    if (queue_.empty()) return;
    ++failures_;
    if (failures_ > policy_.max_retries) {
      gave_up_ = true;
      transmitting_ = false;
      return;
    }
    queue_.front().recovered_from_disk = true;
    retry_timer_.rearm(sim_, sim_.schedule(policy_.retry_interval, [this] {
      if (gave_up_ || queue_.empty()) return;
      const Duration read_cost = spool_.charge_recovery_read();
      transmit_head(read_cost);
    }));
  }

  sim::Simulation& sim_;
  SimChannel& channel_;
  Spool spool_;
  sim::DiskModel* receiver_disk_;
  RetryPolicy policy_;
  std::deque<Entry> queue_;
  bool transmitting_ = false;
  bool gave_up_ = false;
  int failures_ = 0;
  sim::ScopedTimer retry_timer_;
  std::uint64_t epoch_ = 0;
};

/// Pre-rewrite wire layer: encode_frame materializes one std::string per
/// frame (a full payload copy); the decoder buffers the stream and
/// materializes Frame::payload strings.
std::string encode_frame(FrameType type, std::uint32_t rank,
                         std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.push_back(static_cast<char>(type));
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((rank >> shift) & 0xff));
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((length >> shift) & 0xff));
  }
  out += payload;
  return out;
}

struct Frame {
  FrameType type = FrameType::kStdout;
  std::uint32_t rank = 0;
  std::string payload;
};

class FrameDecoder {
public:
  void feed(const char* data, std::size_t size) { buffer_.append(data, size); }

  std::optional<Frame> next() {
    const std::size_t available = buffer_.size() - consumed_;
    if (available < kFrameHeaderBytes) return std::nullopt;
    const char* p = buffer_.data() + consumed_;
    const auto raw_type = static_cast<std::uint8_t>(p[0]);
    const std::uint32_t rank = get_u32(p + 1);
    const std::uint32_t length = get_u32(p + 5);
    if (available < kFrameHeaderBytes + length) return std::nullopt;
    Frame frame;
    frame.type = static_cast<FrameType>(raw_type);
    frame.rank = rank;
    frame.payload.assign(p + kFrameHeaderBytes, length);
    consumed_ += kFrameHeaderBytes + length;
    if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
      buffer_.erase(0, consumed_);
      consumed_ = 0;
    }
    return frame;
  }

private:
  static std::uint32_t get_u32(const char* p) {
    return (static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
           static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]));
  }

  std::string buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace legacy

// ------------------------------------------------------------ workload ------
// Each session is an interactive program: every 5 ms (one producer event) it
// emits a burst of lines into its agent-side FlushBuffer. The LCG draws the
// mix — mostly newline-terminated lines of 40..200 bytes, occasional
// multi-kilobyte dumps that overflow the 1 KiB buffer (capacity flushes),
// and prompt fragments without a newline that ride the 3 ms flush timeout.
// Every flush is framed, spooled, transmitted over the reliable channel,
// written to the shadow's intermediate file, decoded, and appended to the
// shadow's screen buffer, whose flushes fold into the digest.

constexpr std::size_t kBufferCapacity = 1024;
const Duration kFlushTimeout = Duration::millis(3);

/// Message-rate knob (the sweep's second axis, set per grid row): lines per
/// burst and the burst period. The base rate (4 lines / 5 ms) sits below the
/// reliable channel's serial drain rate, so queues stay shallow; the high
/// rate (16 lines / 2 ms) models a subjob dumping output faster than the
/// spool+link chain drains it — the sustained-backlog regime coalescing is
/// for.
std::size_t g_burst_lines = 4;
Duration g_burst_interval = Duration::millis(5);

struct LineGen {
  std::uint64_t lcg = 0;

  explicit LineGen(std::uint64_t seed) : lcg{seed} {}

  std::uint64_t next() {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return lcg >> 29;
  }

  /// Writes one line into `buf` (>= 4096 bytes); returns its length.
  std::size_t make_line(std::uint32_t session, std::size_t n, char* buf) {
    const std::uint64_t r = next();
    const std::uint64_t r2 = next();
    // The first two bursts are all dumps: every session hits its worst-case
    // queue depth (and ring/pool high-water marks) inside the warm-up
    // window, so steady state never grows a ring.
    const std::uint64_t kind = n < 2 * g_burst_lines ? 15 : r % 16;
    std::size_t len;
    bool newline = true;
    if (kind == 15) {
      len = 2500 + r2 % 1200;  // dump: overflows the 1 KiB buffer
    } else if (kind >= 12) {
      len = 20 + r2 % 60;  // prompt fragment: no newline, timeout-flushed
      newline = false;
    } else {
      len = 40 + r2 % 160;  // ordinary output line
    }
    const int head = std::snprintf(buf, 64, "s%05u m%06zu ", session, n);
    const auto fill = static_cast<char>('a' + r2 % 26);
    std::memset(buf + head, fill, len - static_cast<std::size_t>(head));
    if (newline) buf[len - 1] = '\n';
    return len;
  }
};

/// Digest and throughput accumulator shared by every session of one run.
/// The timing digest chains globally (delivery timestamps + cross-session
/// arrival order); the content digest chains per session and is combined
/// commutatively, so it pins per-session message content and order while
/// staying invariant under cross-session interleaving (coalescing shifts
/// timings between sessions but must never reorder within one).
struct Accum {
  std::uint64_t timing_digest = 0xcbf29ce484222325ULL;
  std::vector<std::uint64_t> session_content;
  std::size_t messages = 0;   ///< frames decoded at the shadow
  std::size_t bytes = 0;      ///< payload bytes delivered
  std::size_t screen_flushes = 0;

  void on_frame(SimTime now, std::uint32_t rank, std::string_view payload) {
    ++messages;
    bytes += payload.size();
    const std::size_t prefix = std::min<std::size_t>(payload.size(), 32);
    timing_digest =
        fnv1a(timing_digest, static_cast<std::uint64_t>(now.count_micros()));
    timing_digest = fnv1a(timing_digest, rank);
    timing_digest = fnv1a(timing_digest, payload.size());
    timing_digest = fnv1a_bytes(timing_digest, payload.data(), prefix);
    std::uint64_t& chain = session_content[rank];
    chain = fnv1a(chain, payload.size());
    chain = fnv1a_bytes(chain, payload.data(), prefix);
    if (!payload.empty()) {
      chain = fnv1a(chain, static_cast<unsigned char>(payload.back()));
    }
    if (g_dump != nullptr) {
      std::fprintf(g_dump, "F %lld %u %zu %.*s\n",
                   static_cast<long long>(now.count_micros()), rank,
                   payload.size(), static_cast<int>(std::min<std::size_t>(
                                       payload.size(), 16)),
                   payload.data());
    }
  }

  void on_screen(SimTime now, std::string_view data) {
    ++screen_flushes;
    timing_digest =
        fnv1a(timing_digest, static_cast<std::uint64_t>(now.count_micros()));
    timing_digest = fnv1a(timing_digest, data.size());
    if (g_dump != nullptr) {
      std::fprintf(g_dump, "S %lld %zu\n",
                   static_cast<long long>(now.count_micros()), data.size());
    }
  }

  void fold_reasons(std::size_t agent_reason_count, std::size_t shadow_reason_count) {
    timing_digest = fnv1a(timing_digest, agent_reason_count);
    timing_digest = fnv1a(timing_digest, shadow_reason_count);
  }

  [[nodiscard]] std::uint64_t content_digest() const {
    std::uint64_t sum = 0;
    for (std::uint64_t chain : session_content) sum += chain;
    return sum;
  }
};

sim::LinkSpec bench_link_spec() {
  sim::LinkSpec spec;
  spec.name = "bench";
  spec.latency = Duration::micros(400);
  spec.bandwidth_bytes_per_sec = 12.5e6;
  spec.jitter_stddev = Duration::zero();  // deterministic: no RNG draws
  return spec;
}

cg::stream::ChannelSpec bench_channel_spec() {
  cg::stream::ChannelSpec spec;
  spec.name = "bench";
  spec.packet_payload = 32 * 1024;
  spec.per_message_overhead = Duration::micros(80);
  spec.per_packet_overhead = Duration::micros(60);
  spec.byte_factor = 1.02;
  spec.header_bytes = 32;
  spec.jitter_factor = 1.0;
  return spec;
}

// ------------------------------------------------------ legacy session ------

class LegacySession {
public:
  LegacySession(sim::Simulation& sim, Accum& accum, std::uint32_t id,
                std::size_t lines)
      : sim_{sim},
        accum_{accum},
        id_{id},
        lines_quota_{lines},
        gen_{0x9e3779b97f4a7c15ULL * (id + 1) ^ 0xcafef00dd15ea5e5ULL},
        link_{bench_link_spec(), Rng{id * 2 + 1}},
        channel_{sim, link_, bench_channel_spec(), Rng{id * 2 + 2}},
        reliable_{sim, channel_, sender_disk_, &receiver_disk_},
        agent_buf_{sim,
                   legacy::FlushBufferConfig{kBufferCapacity, kFlushTimeout, true},
                   [this](std::string data) { on_agent_flush(std::move(data)); }},
        shadow_buf_{sim,
                    legacy::FlushBufferConfig{kBufferCapacity, kFlushTimeout, true},
                    [this](std::string data) {
                      accum_.on_screen(sim_.now(), data);
                    }} {}

  void start() {
    // Small stagger so producers spread within a few burst intervals; every
    // session is live well before the warm-up window closes.
    sim_.schedule(
        Duration::micros(static_cast<std::int64_t>(37 * (id_ % 128 + 1))),
        [this] { produce(); });
  }

  [[nodiscard]] std::size_t flush_reasons(int i) const {
    return agent_buf_.flush_count(static_cast<legacy::FlushReason>(i)) * 1000 +
           shadow_buf_.flush_count(static_cast<legacy::FlushReason>(i));
  }

  [[nodiscard]] const sim::DiskModel& sender_disk() const { return sender_disk_; }

private:
  void produce() {
    char buf[4096];
    for (std::size_t i = 0; i < g_burst_lines && lines_emitted_ < lines_quota_;
         ++i) {
      const std::size_t len = gen_.make_line(id_, lines_emitted_, buf);
      ++lines_emitted_;
      agent_buf_.append(std::string_view{buf, len});
    }
    if (lines_emitted_ < lines_quota_) {
      sim_.schedule(g_burst_interval, [this] { produce(); });
    } else {
      agent_buf_.flush();
    }
  }

  void on_agent_flush(std::string payload) {
    // Pre-rewrite agent path: frame the payload into a fresh std::string
    // (full copy) and hold it in the delivery callback (heap-allocating
    // std::function — the capture exceeds the SOO buffer). The size must be
    // read before the lambda capture moves the string out.
    std::string encoded = legacy::encode_frame(FrameType::kStdout, id_, payload);
    const std::size_t wire_bytes = encoded.size();
    reliable_.send(wire_bytes,
                   [this, encoded = std::move(encoded)](std::size_t) {
                     on_delivered(encoded);
                   });
  }

  void on_delivered(const std::string& encoded) {
    // Pre-rewrite shadow path: buffer the stream, materialize each frame's
    // payload as an owned string, append it to the screen buffer.
    decoder_.feed(encoded.data(), encoded.size());
    while (auto frame = decoder_.next()) {
      accum_.on_frame(sim_.now(), frame->rank, frame->payload);
      shadow_buf_.append(frame->payload);
    }
  }

  sim::Simulation& sim_;
  Accum& accum_;
  std::uint32_t id_;
  std::size_t lines_quota_;
  std::size_t lines_emitted_ = 0;
  LineGen gen_;
  sim::Link link_;
  sim::DiskModel sender_disk_;
  sim::DiskModel receiver_disk_;
  legacy::SimChannel channel_;
  legacy::ReliableChannel reliable_;
  legacy::FrameDecoder decoder_;
  legacy::FlushBuffer agent_buf_;
  legacy::FlushBuffer shadow_buf_;
};

// ----------------------------------------------------- current session ------

class CurrentSession {
public:
  CurrentSession(sim::Simulation& sim, Accum& accum, std::uint32_t id,
                 std::size_t lines, cg::stream::ChunkPool& pool,
                 std::size_t max_coalesce_bytes)
      : sim_{sim},
        accum_{accum},
        id_{id},
        lines_quota_{lines},
        gen_{0x9e3779b97f4a7c15ULL * (id + 1) ^ 0xcafef00dd15ea5e5ULL},
        link_{bench_link_spec(), Rng{id * 2 + 1}},
        channel_{sim, link_, bench_channel_spec(), Rng{id * 2 + 2}},
        reliable_{sim, channel_, sender_disk_, &receiver_disk_,
                  cg::stream::RetryPolicy{.max_coalesce_bytes =
                                              max_coalesce_bytes}},
        agent_buf_{sim, buffer_config(pool),
                   cg::stream::FlushBuffer::FlushFn{[this](cg::stream::ChunkRef data) {
                     on_agent_flush(std::move(data));
                   }}},
        shadow_buf_{sim, buffer_config(pool),
                    cg::stream::FlushBuffer::FlushFn{[this](cg::stream::ChunkRef data) {
                      accum_.on_screen(sim_.now(), data.view());
                    }}} {
    // Pre-size the receive buffer for the largest frame so the transport
    // copy never grows it mid-run (the real shadow sizes its read buffer
    // up front too), and the channel's rings for the workload's outstanding
    // bound (messages queue up behind the in-flight transmit faster than the
    // serial spool+link chain drains them, and a 64 KiB coalesced batch can
    // move ~60 of them into the receiver-write pipeline at once).
    recv_buf_.reserve(4096 + kFrameHeaderBytes);
    reliable_.reserve(256);
  }

  void start() {
    sim_.schedule(
        Duration::micros(static_cast<std::int64_t>(37 * (id_ % 128 + 1))),
        [this] { produce(); });
  }

  [[nodiscard]] std::size_t flush_reasons(int i) const {
    return agent_buf_.flush_count(static_cast<cg::stream::FlushReason>(i)) * 1000 +
           shadow_buf_.flush_count(static_cast<cg::stream::FlushReason>(i));
  }

  [[nodiscard]] const sim::DiskModel& sender_disk() const { return sender_disk_; }
  [[nodiscard]] const cg::stream::ReliableChannel& reliable() const {
    return reliable_;
  }

private:
  static cg::stream::FlushBufferConfig buffer_config(cg::stream::ChunkPool& pool) {
    cg::stream::FlushBufferConfig config;
    config.capacity = kBufferCapacity;
    config.timeout = kFlushTimeout;
    config.flush_on_newline = true;
    config.pool = &pool;
    return config;
  }

  void produce() {
    char buf[4096];
    for (std::size_t i = 0; i < g_burst_lines && lines_emitted_ < lines_quota_;
         ++i) {
      const std::size_t len = gen_.make_line(id_, lines_emitted_, buf);
      ++lines_emitted_;
      agent_buf_.append(std::string_view{buf, len});
    }
    if (lines_emitted_ < lines_quota_) {
      sim_.schedule(g_burst_interval, [this] { produce(); });
    } else {
      agent_buf_.flush();
    }
  }

  void on_agent_flush(cg::stream::ChunkRef data) {
    // Current agent path: the frame header is 9 stack bytes written at
    // transmit time; the payload travels as a ChunkRef (refcount bump, no
    // copy) inside an InplaceFunction — still within its inline buffer.
    const std::size_t wire_bytes = kFrameHeaderBytes + data.size();
    reliable_.send(wire_bytes,
                   cg::stream::ReliableChannel::DeliverFn{
                       [this, data = std::move(data)](std::size_t) {
                         on_delivered(data);
                       }});
  }

  void on_delivered(const cg::stream::ChunkRef& data) {
    // Current shadow path: one transport copy into the reused receive
    // buffer (the socket read), then zero-copy decode — payload views
    // borrow the receive buffer, no per-frame string.
    char header[kFrameHeaderBytes];
    cg::interpose::encode_frame_header(header, FrameType::kStdout, id_,
                                       data.size());
    recv_buf_.clear();
    recv_buf_.append(header, sizeof(header));
    recv_buf_.append(data.view());
    decoder_.begin(recv_buf_.data(), recv_buf_.size());
    while (auto frame = decoder_.next_view()) {
      accum_.on_frame(sim_.now(), frame->rank, frame->payload);
      shadow_buf_.append(frame->payload);
    }
    decoder_.end();
  }

  sim::Simulation& sim_;
  Accum& accum_;
  std::uint32_t id_;
  std::size_t lines_quota_;
  std::size_t lines_emitted_ = 0;
  LineGen gen_;
  sim::Link link_;
  sim::DiskModel sender_disk_;
  sim::DiskModel receiver_disk_;
  cg::stream::SimChannel channel_;
  cg::stream::ReliableChannel reliable_;
  cg::interpose::FrameDecoder decoder_;
  std::string recv_buf_;
  cg::stream::FlushBuffer agent_buf_;
  cg::stream::FlushBuffer shadow_buf_;
};

// --------------------------------------------------------------- runner -----

struct RunResult {
  Accum accum;
  double seconds = 0.0;           ///< steady-state phase only (post warm-up)
  std::size_t warm_messages = 0;  ///< messages delivered during warm-up
  std::size_t steady_allocs = 0;  ///< only measured for the current path
  std::size_t spool_writes = 0;
  std::size_t coalesced_batches = 0;
  std::size_t coalesced_messages = 0;
};

template <class Session, class... Extra>
RunResult run_sessions(std::size_t n_sessions, std::size_t lines_per_session,
                       bool measure_allocs, Extra&... extra) {
  RunResult out;
  out.accum.session_content.assign(n_sessions, 0xcbf29ce484222325ULL);
  sim::Simulation sim;
  // Prime the event slab to the workload's in-flight bound (producer timer,
  // transmit, delivery, receiver write and flush timers per session):
  // schedule-then-cancel a burst of leaf events through BOTH stacks
  // identically, so slab growth is a start-up cost instead of a
  // mid-measurement one (sim_scale does the same).
  {
    std::vector<sim::EventHandle> primer;
    primer.reserve(n_sessions * 8 + 256);
    for (std::size_t i = 0; i < n_sessions * 8 + 256; ++i) {
      primer.push_back(sim.schedule(Duration::micros(1), [] {}));
    }
    for (sim::EventHandle& h : primer) sim.cancel(h);
  }
  std::vector<std::unique_ptr<Session>> sessions;
  sessions.reserve(n_sessions);
  for (std::size_t i = 0; i < n_sessions; ++i) {
    sessions.push_back(std::make_unique<Session>(
        sim, out.accum, static_cast<std::uint32_t>(i), lines_per_session,
        extra...));
    sessions.back()->start();
  }
  // Warm-up quarter (both stacks, identical protocol): caches fill, and on
  // the current path the chunk pool, rings, receive buffers and event slab
  // grow to their high-water marks. A quarter (by delivered messages)
  // covers the entire production phase even on the high-rate rows — queue
  // depth peaks when production ends, so the peak lands inside warm-up and
  // the timed steady state that follows never grows a ring or the pool.
  const std::size_t warm_target = n_sessions * lines_per_session / 4;
  while (out.accum.messages < warm_target && sim.step()) {
  }
  out.warm_messages = out.accum.messages;
  const std::size_t before = g_alloc_count;
  if (measure_allocs && std::getenv("STREAM_SCALE_TRAP") != nullptr) {
    g_alloc_trap = true;
  }
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  g_alloc_trap = false;
  if (measure_allocs) out.steady_allocs = g_alloc_count - before;
  for (int reason = 0; reason < 4; ++reason) {
    std::size_t agent_total = 0;
    std::size_t shadow_total = 0;
    for (const auto& session : sessions) {
      agent_total += session->flush_reasons(reason) / 1000;
      shadow_total += session->flush_reasons(reason) % 1000;
    }
    out.accum.fold_reasons(agent_total, shadow_total);
  }
  for (const auto& session : sessions) {
    out.spool_writes += session->sender_disk().write_ops();
    if constexpr (std::is_same_v<Session, CurrentSession>) {
      out.coalesced_batches += session->reliable().coalesced_batches();
      out.coalesced_messages += session->reliable().coalesced_messages();
    }
  }
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

/// Fastest wall time wins across repetitions; the allocation count keeps its
/// worst observation so a single dirty rep still fails.
void merge_rep(RunResult& best, RunResult rep) {
  const std::size_t allocs = std::max(best.steady_allocs, rep.steady_allocs);
  if (best.seconds == 0.0 || rep.seconds < best.seconds) best = std::move(rep);
  best.steady_allocs = allocs;
}

struct Row {
  std::size_t sessions = 0;
  std::size_t lines = 0;
  std::size_t burst_lines = 0;
  std::int64_t burst_interval_us = 0;
  RunResult legacy;
  RunResult current;
  RunResult coalesced;

  [[nodiscard]] bool digests_match() const {
    return legacy.accum.timing_digest == current.accum.timing_digest &&
           legacy.accum.content_digest() == current.accum.content_digest() &&
           legacy.accum.messages == current.accum.messages;
  }
  [[nodiscard]] bool coalesced_digest_match() const {
    return coalesced.accum.content_digest() == current.accum.content_digest() &&
           coalesced.accum.messages == current.accum.messages &&
           coalesced.accum.bytes == current.accum.bytes;
  }
  [[nodiscard]] bool zero_alloc() const {
    return current.steady_allocs == 0 && coalesced.steady_allocs == 0;
  }
  /// Headline throughput ratio: the new path in its coalescing configuration
  /// against the legacy stack. With coalescing off the new path is pinned to
  /// the legacy event sequence byte for byte (that run proves digest
  /// lockstep), so the throughput the rewrite buys comes from batching spool
  /// writes and transmits — the capability the old stack could not express.
  [[nodiscard]] double speedup() const {
    return coalesced.seconds > 0.0 ? legacy.seconds / coalesced.seconds : 0.0;
  }
  /// Wall-clock ratio of the lockstep (coalescing-off) run, which replays the
  /// identical simulated event sequence as legacy.
  [[nodiscard]] double lockstep_speedup() const {
    return current.seconds > 0.0 ? legacy.seconds / current.seconds : 0.0;
  }
  [[nodiscard]] double msgs_per_sec(const RunResult& r) const {
    const std::size_t measured = r.accum.messages - r.warm_messages;
    return r.seconds > 0.0 ? static_cast<double>(measured) / r.seconds : 0.0;
  }
};

/// Grows the pool's slab inventory to the workload's in-flight bound before
/// the clock starts: agent writer chunk, shadow writer chunk, and a few
/// flushed-but-undelivered segments per session.
void prime_pool(cg::stream::ChunkPool& pool, std::size_t n_sessions) {
  const std::string filler(kBufferCapacity, 'x');
  std::vector<cg::stream::ChunkRef> refs;
  refs.reserve(n_sessions * 10);
  for (std::size_t i = 0; i < n_sessions * 10; ++i) {
    refs.push_back(cg::stream::ChunkRef::copy_of(filler, pool));
  }
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream f{path};
  f << "{\n  \"bench\": \"stream_scale\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    f << "    {\"sessions\": " << r.sessions << ", \"lines\": " << r.lines
      << ", \"burst_lines\": " << r.burst_lines
      << ", \"burst_interval_us\": " << r.burst_interval_us
      << ", \"messages\": " << r.current.accum.messages
      << ", \"legacy_seconds\": " << r.legacy.seconds
      << ", \"new_seconds\": " << r.current.seconds
      << ", \"coalesced_seconds\": " << r.coalesced.seconds
      << ", \"legacy_msgs_per_sec\": " << r.msgs_per_sec(r.legacy)
      << ", \"new_msgs_per_sec\": " << r.msgs_per_sec(r.current)
      << ", \"coalesced_msgs_per_sec\": " << r.msgs_per_sec(r.coalesced)
      << ", \"speedup\": " << r.speedup()
      << ", \"lockstep_speedup\": " << r.lockstep_speedup()
      << ", \"digest_match\": " << (r.digests_match() ? "true" : "false")
      << ", \"zero_alloc_steady_state\": " << (r.zero_alloc() ? "true" : "false")
      << ", \"coalesced_digest_match\": "
      << (r.coalesced_digest_match() ? "true" : "false")
      << ", \"spool_writes\": " << r.current.spool_writes
      << ", \"coalesced_spool_writes\": " << r.coalesced.spool_writes
      << ", \"coalesced_batches\": " << r.coalesced.coalesced_batches
      << ", \"coalesced_messages\": " << r.coalesced.coalesced_messages
      << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int reps = 3;
  std::string json_path;
  std::string dump_prefix;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--dump" && i + 1 < argc) {
      dump_prefix = argv[++i];
    } else {
      std::cerr << "usage: stream_scale [--smoke] [--reps <n>] "
                   "[--json <path>] [--dump <prefix>]\n";
      return 2;
    }
  }

  // The sweep's two axes: session count and message rate. Base-rate rows
  // (4 lines / 5 ms) stay below the reliable channel's drain rate — shallow
  // queues, coalescing nearly moot. High-rate rows (16 lines / 2 ms) keep a
  // sustained backlog behind the in-flight transmit, the regime the paper's
  // output dumps create and the one coalescing is built for.
  struct Combo {
    std::size_t sessions;
    std::size_t lines;
    std::size_t burst_lines;
    std::int64_t burst_interval_us;
  };
  std::vector<Combo> combos;
  if (smoke) {
    combos = {{8, 50, 4, 5000}};
  } else {
    combos = {{100, 200, 4, 5000},
              {1000, 100, 4, 5000},
              {1000, 100, 16, 2000},
              {2000, 50, 16, 2000}};
  }

  std::cout << "== stream_scale: legacy vs pooled-chunk streaming path ==\n";
  std::vector<Row> rows;
  bool failed = false;
  for (const auto& [sessions, lines, burst_lines, burst_interval_us] : combos) {
    g_burst_lines = burst_lines;
    g_burst_interval = Duration::micros(burst_interval_us);
    Row row;
    row.sessions = sessions;
    row.lines = lines;
    row.burst_lines = burst_lines;
    row.burst_interval_us = burst_interval_us;
    // Interleave the stacks across repetitions and keep each one's fastest
    // run; digests are checked on every rep.
    for (int r = 0; r < reps; ++r) {
      const bool dumping = !dump_prefix.empty() && r == 0;
      if (dumping) g_dump = std::fopen((dump_prefix + ".legacy").c_str(), "w");
      merge_rep(row.legacy,
                run_sessions<LegacySession>(sessions, lines, false));
      if (g_dump != nullptr) { std::fclose(g_dump); g_dump = nullptr; }
      {
        // One pool serves every session; slabs are shared and recycled.
        cg::stream::ChunkPool pool{4096};
        prime_pool(pool, sessions);
        std::size_t off = 0;
        if (dumping) g_dump = std::fopen((dump_prefix + ".new").c_str(), "w");
        merge_rep(row.current, run_sessions<CurrentSession>(
                                   sessions, lines, true, pool, off));
        if (g_dump != nullptr) { std::fclose(g_dump); g_dump = nullptr; }
      }
      {
        cg::stream::ChunkPool pool{4096};
        prime_pool(pool, sessions);
        std::size_t coalesce = 64 * 1024;
        merge_rep(row.coalesced, run_sessions<CurrentSession>(
                                     sessions, lines, true, pool, coalesce));
      }
      if (!row.digests_match() || !row.coalesced_digest_match()) break;
    }
    if (!row.digests_match()) {
      failed = true;
      std::cerr << "[FAIL] delivery divergence at " << sessions << " sessions: "
                << "legacy=" << std::hex << row.legacy.accum.timing_digest
                << " new=" << row.current.accum.timing_digest << std::dec
                << " (messages " << row.legacy.accum.messages << " vs "
                << row.current.accum.messages << ")\n";
    }
    if (!row.coalesced_digest_match()) {
      failed = true;
      std::cerr << "[FAIL] coalescing changed message content/order at "
                << sessions << " sessions (messages "
                << row.coalesced.accum.messages << " vs "
                << row.current.accum.messages << ", bytes "
                << row.coalesced.accum.bytes << " vs "
                << row.current.accum.bytes << ", content "
                << std::hex << row.coalesced.accum.content_digest() << " vs "
                << row.current.accum.content_digest() << std::dec << ")\n";
    }
    if (!row.zero_alloc()) {
      failed = true;
      std::cerr << "[FAIL] "
                << std::max(row.current.steady_allocs,
                            row.coalesced.steady_allocs)
                << " heap allocations on the steady-state streaming path at "
                << sessions << " sessions\n";
    }
    rows.push_back(row);
  }

  cg::TablePrinter table{{"Sessions", "Rate", "Msgs", "Legacy msg/s",
                          "Lockstep msg/s", "Coalesced msg/s", "Speedup",
                          "Digest", "Allocs", "Spool ops (coalesced)"}};
  for (const Row& r : rows) {
    table.add_row(
        {std::to_string(r.sessions),
         std::to_string(r.burst_lines) + "/" +
             std::to_string(r.burst_interval_us / 1000) + "ms",
         std::to_string(r.current.accum.messages),
         cg::fmt_fixed(r.msgs_per_sec(r.legacy), 0),
         cg::fmt_fixed(r.msgs_per_sec(r.current), 0),
         cg::fmt_fixed(r.msgs_per_sec(r.coalesced), 0),
         cg::fmt_fixed(r.speedup(), 1) + "x",
         r.digests_match() && r.coalesced_digest_match() ? "match" : "DIVERGED",
         r.zero_alloc()
             ? "0"
             : std::to_string(std::max(r.current.steady_allocs,
                                       r.coalesced.steady_allocs)),
         std::to_string(r.current.spool_writes) + " -> " +
             std::to_string(r.coalesced.spool_writes)});
  }
  std::cout << table.render() << "\n";
  if (!json_path.empty()) write_json(json_path, rows);
  std::cout << (failed
                    ? "[MISS] streaming rewrite violated its contract\n"
                    : "[ok]   identical delivery sequence, allocation-free "
                      "steady state\n");
  return failed ? 1 : 0;
}
