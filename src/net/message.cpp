#include "net/message.hpp"

namespace cg::net {

std::optional<MsgType> type_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kMessageTypeCount; ++i) {
    const auto type = static_cast<MsgType>(i);
    if (to_string(type) == name) return type;
  }
  return std::nullopt;
}

JobId job_of(const Message& msg) {
  return std::visit(
      [](const auto& m) -> JobId {
        if constexpr (requires { m.job; }) {
          return m.job;
        } else {
          return JobId::none();
        }
      },
      msg);
}

}  // namespace cg::net
