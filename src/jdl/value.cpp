#include "jdl/value.hpp"

#include <cmath>
#include <optional>
#include <sstream>

#include "util/strings.hpp"

namespace cg::jdl {

Value::Type Value::type() const {
  switch (data_.index()) {
    case 0: return Type::kUndefined;
    case 1: return Type::kBool;
    case 2: return Type::kInt;
    case 3: return Type::kReal;
    case 4: return Type::kString;
    case 5: return Type::kList;
  }
  return Type::kUndefined;
}

bool Value::same_as(const Value& other) const {
  if (type() != other.type()) return false;
  switch (type()) {
    case Type::kUndefined: return true;
    case Type::kBool: return as_bool() == other.as_bool();
    case Type::kInt: return as_int() == other.as_int();
    case Type::kReal: return as_real() == other.as_real();
    case Type::kString: return as_string() == other.as_string();
    case Type::kList: {
      const auto& a = as_list();
      const auto& b = other.as_list();
      if (a.size() != b.size()) return false;
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (!a[i].same_as(b[i])) return false;
      }
      return true;
    }
  }
  return false;
}

std::string Value::to_string() const {
  switch (type()) {
    case Type::kUndefined: return "undefined";
    case Type::kBool: return as_bool() ? "true" : "false";
    case Type::kInt: return std::to_string(as_int());
    case Type::kReal: {
      std::ostringstream os;
      os << as_real();
      return os.str();
    }
    case Type::kString: return "\"" + as_string() + "\"";
    case Type::kList: {
      std::string out = "{";
      const auto& items = as_list();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) out += ", ";
        out += items[i].to_string();
      }
      return out + "}";
    }
  }
  return "undefined";
}

namespace {

bool both_numbers(const Value& a, const Value& b) {
  return a.is_number() && b.is_number();
}

bool both_ints(const Value& a, const Value& b) {
  return a.is_int() && b.is_int();
}

}  // namespace

Value logical_and(const Value& a, const Value& b) {
  // Three-valued AND: false dominates Undefined.
  const auto truth = [](const Value& v) -> int {
    if (v.is_bool()) return v.as_bool() ? 1 : 0;
    return -1;  // undefined / non-boolean
  };
  const int ta = truth(a);
  const int tb = truth(b);
  if (ta == 0 || tb == 0) return Value::boolean(false);
  if (ta == 1 && tb == 1) return Value::boolean(true);
  return Value::undefined();
}

Value logical_or(const Value& a, const Value& b) {
  const auto truth = [](const Value& v) -> int {
    if (v.is_bool()) return v.as_bool() ? 1 : 0;
    return -1;
  };
  const int ta = truth(a);
  const int tb = truth(b);
  if (ta == 1 || tb == 1) return Value::boolean(true);
  if (ta == 0 && tb == 0) return Value::boolean(false);
  return Value::undefined();
}

Value logical_not(const Value& a) {
  if (!a.is_bool()) return Value::undefined();
  return Value::boolean(!a.as_bool());
}

Value arith_add(const Value& a, const Value& b) {
  if (a.is_string() && b.is_string()) {
    return Value::string(a.as_string() + b.as_string());
  }
  if (!both_numbers(a, b)) return Value::undefined();
  if (both_ints(a, b)) return Value::integer(a.as_int() + b.as_int());
  return Value::real(a.as_number() + b.as_number());
}

Value arith_sub(const Value& a, const Value& b) {
  if (!both_numbers(a, b)) return Value::undefined();
  if (both_ints(a, b)) return Value::integer(a.as_int() - b.as_int());
  return Value::real(a.as_number() - b.as_number());
}

Value arith_mul(const Value& a, const Value& b) {
  if (!both_numbers(a, b)) return Value::undefined();
  if (both_ints(a, b)) return Value::integer(a.as_int() * b.as_int());
  return Value::real(a.as_number() * b.as_number());
}

Value arith_div(const Value& a, const Value& b) {
  if (!both_numbers(a, b)) return Value::undefined();
  if (both_ints(a, b)) {
    if (b.as_int() == 0) return Value::undefined();
    return Value::integer(a.as_int() / b.as_int());
  }
  if (b.as_number() == 0.0) return Value::undefined();
  return Value::real(a.as_number() / b.as_number());
}

Value arith_mod(const Value& a, const Value& b) {
  if (!both_ints(a, b) || b.as_int() == 0) return Value::undefined();
  return Value::integer(a.as_int() % b.as_int());
}

Value arith_neg(const Value& a) {
  if (a.is_int()) return Value::integer(-a.as_int());
  if (a.is_real()) return Value::real(-a.as_real());
  return Value::undefined();
}

namespace {

// Shared comparison kernel: returns -1/0/+1, or nullopt when incomparable.
// Strings compare case-insensitively, ClassAd style.
std::optional<int> compare(const Value& a, const Value& b) {
  if (both_numbers(a, b)) {
    const double x = a.as_number();
    const double y = b.as_number();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.is_string() && b.is_string()) {
    const std::string x = to_lower(a.as_string());
    const std::string y = to_lower(b.as_string());
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.is_bool() && b.is_bool()) {
    return static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
  }
  return std::nullopt;
}

}  // namespace

Value cmp_eq(const Value& a, const Value& b) {
  const auto c = compare(a, b);
  if (!c) return Value::undefined();
  return Value::boolean(*c == 0);
}

Value cmp_ne(const Value& a, const Value& b) {
  const auto c = compare(a, b);
  if (!c) return Value::undefined();
  return Value::boolean(*c != 0);
}

Value cmp_lt(const Value& a, const Value& b) {
  const auto c = compare(a, b);
  if (!c) return Value::undefined();
  return Value::boolean(*c < 0);
}

Value cmp_le(const Value& a, const Value& b) {
  const auto c = compare(a, b);
  if (!c) return Value::undefined();
  return Value::boolean(*c <= 0);
}

Value cmp_gt(const Value& a, const Value& b) {
  const auto c = compare(a, b);
  if (!c) return Value::undefined();
  return Value::boolean(*c > 0);
}

Value cmp_ge(const Value& a, const Value& b) {
  const auto c = compare(a, b);
  if (!c) return Value::undefined();
  return Value::boolean(*c >= 0);
}

}  // namespace cg::jdl
