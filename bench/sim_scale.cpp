// Event-engine scale benchmark: runs one deterministic workload — per-agent
// retry chains with heavy cancellation churn, cancel-and-rearm victim timers
// and periodic daemon lanes — through the pre-rewrite engine (binary
// priority_queue + std::function callbacks + tombstone cancellation,
// embedded below) and the current slab/4-ary-heap/timer-wheel engine,
// asserts both fire the byte-identical event sequence, and reports
// events/sec. For the current engine it also proves the zero-allocation
// claim: once the slab and heap reach their high-water mark, the
// steady-state schedule/cancel/fire cycle must not touch the global heap
// (counted via replaced operator new).
//
// Usage:
//   sim_scale                 full sweep (10^5..10^7 events, 10^2..10^4 agents)
//   sim_scale --smoke         smallest grid only; exit 1 on any violation
//   sim_scale --json <path>   also write machine-readable results
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <new>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

// ------------------------------------------------- allocation accounting ----
// Replacing global operator new lets the benchmark count every heap
// allocation made while the engine runs its steady state. Single-threaded by
// construction (the simulation is), so plain counters suffice.

namespace {
std::size_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t align) {
  ++g_alloc_count;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace cg;
using namespace cg::literals;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

// ------------------------------------------------------- legacy engine ------
// Faithful copy of the engine this rewrite replaced: a binary
// std::priority_queue of events holding std::function callbacks, with lazy
// (tombstone-map) cancellation. Kept verbatim so the digest comparison pins
// the new engine to the exact historical firing order.

class LegacyHandle {
public:
  constexpr LegacyHandle() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  [[nodiscard]] constexpr std::uint64_t seq() const { return seq_; }

  constexpr explicit LegacyHandle(std::uint64_t seq) : seq_{seq} {}

private:
  std::uint64_t seq_ = 0;
};

class LegacySimulation {
public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const { return now_; }

  LegacyHandle schedule(Duration delay, Callback fn) {
    if (delay.is_negative()) delay = Duration::zero();
    return schedule_impl(now_ + delay, std::move(fn), /*daemon=*/false);
  }

  LegacyHandle schedule_daemon(Duration delay, Callback fn) {
    if (delay.is_negative()) delay = Duration::zero();
    return schedule_impl(now_ + delay, std::move(fn), /*daemon=*/true);
  }

  bool cancel(LegacyHandle handle) {
    if (!handle.valid()) return false;
    const auto it = pending_.find(handle.seq());
    if (it == pending_.end()) return false;
    if (!it->second) --pending_user_;
    pending_.erase(it);
    return true;
  }

  std::size_t run() {
    std::size_t n = 0;
    Event ev;
    while (pending_user_ > 0 && pop_one(ev)) {
      now_ = ev.when;
      ++processed_;
      ++n;
      ev.fn();
    }
    return n;
  }

  bool step() {
    Event ev;
    if (!pop_one(ev)) return false;
    now_ = ev.when;
    ++processed_;
    ev.fn();
    return true;
  }

  [[nodiscard]] std::size_t processed_events() const { return processed_; }

private:
  struct Event {
    SimTime when;
    std::uint64_t seq = 0;
    Callback fn;
    bool daemon = false;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  LegacyHandle schedule_impl(SimTime when, Callback fn, bool daemon) {
    if (when < now_) when = now_;
    const LegacyHandle handle{next_seq_};
    queue_.push(Event{when, next_seq_, std::move(fn), daemon});
    pending_.emplace(next_seq_, daemon);
    if (!daemon) ++pending_user_;
    ++next_seq_;
    return handle;
  }

  bool pop_one(Event& out) {
    while (!queue_.empty()) {
      Event ev = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      const auto it = pending_.find(ev.seq);
      if (it == pending_.end()) continue;  // cancelled
      if (!it->second) --pending_user_;
      pending_.erase(it);
      out = std::move(ev);
      return true;
    }
    return false;
  }

  SimTime now_;
  std::uint64_t next_seq_ = 1;
  std::size_t processed_ = 0;
  std::size_t pending_user_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_map<std::uint64_t, bool> pending_;
};

// ------------------------------------------------------------ workload ------
// Per-agent retry chains mirroring the broker's hot paths: each firing folds
// its (virtual time, identity) into the digest, reschedules itself with an
// LCG-drawn delay, and every fourth firing cancels-and-rearms a victim timer
// (the ScopedTimer pattern: flush timeouts, match leases). Each agent also
// runs a periodic daemon lane riding the timer wheel. Capture sizes are
// deliberately beyond std::function's inline buffer — broker callbacks carry
// ids and endpoints — and within the engine's 48-byte budget.

template <class Engine>
struct Driver {
  using Handle = decltype(std::declval<Engine&>().schedule(Duration::zero(),
                                                           [] {}));

  struct AgentState {
    Handle victim{};
    std::uint64_t lcg = 0;
  };

  Engine& eng;
  std::size_t target;
  std::size_t issued = 0;
  std::size_t chain_fired = 0;
  std::uint64_t digest = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::vector<AgentState> agents;

  Driver(Engine& engine, std::size_t n_events, std::size_t n_agents)
      : eng{engine}, target{n_events}, agents(n_agents) {
    // Prime the event pool to the workload's in-flight bound (one chain, one
    // victim and one daemon per agent, plus transients): schedule-then-cancel
    // a burst of leaf events through BOTH engines. The call streams stay
    // identical so the firing digests still compare, the cancelled events
    // never fire, and pool growth becomes a start-up cost instead of a
    // mid-measurement one — which is exactly the claim the allocation counter
    // checks.
    std::vector<Handle> primer;
    primer.reserve(n_agents * 4 + 64);
    for (std::size_t i = 0; i < n_agents * 4 + 64; ++i) {
      primer.push_back(eng.schedule(Duration::micros(1), [] {}));
    }
    for (Handle& h : primer) {
      eng.cancel(h);
    }
    for (std::size_t a = 0; a < n_agents; ++a) {
      agents[a].lcg = 0x9e3779b97f4a7c15ULL * (a + 1) ^ 0xcafef00dd15ea5e5ULL;
      ++issued;
      const std::uint64_t salt = agents[a].lcg;
      eng.schedule(Duration::micros(static_cast<std::int64_t>(37 * (a + 1))),
                   [this, a, salt] { chain(a, salt); });
      eng.schedule_daemon(daemon_interval(a), [this, a] { daemon_tick(a); });
    }
  }

  [[nodiscard]] static Duration daemon_interval(std::size_t a) {
    return Duration::micros(static_cast<std::int64_t>(2048 + (a % 5) * 1024));
  }

  std::uint64_t next(std::size_t a) {
    std::uint64_t& s = agents[a].lcg;
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 29;
  }

  void chain(std::size_t a, std::uint64_t salt) {
    digest = fnv1a(digest, static_cast<std::uint64_t>(eng.now().count_micros()));
    digest = fnv1a(digest, salt ^ (a * 0x100000001b3ULL));
    ++chain_fired;
    const std::uint64_t r = next(a);
    if (r % 4 == 0) {
      // The cancel result is folded in too: a victim may already have fired,
      // and both engines must agree on exactly which ones did.
      const bool cancelled = eng.cancel(agents[a].victim);
      digest = fnv1a(digest, cancelled ? 1 : 0);
      const std::uint64_t vsalt = next(a);
      agents[a].victim =
          eng.schedule(Duration::micros(static_cast<std::int64_t>(100 + r % 20000)),
                       [this, a, vsalt] {
                         digest = fnv1a(digest, vsalt ^ (a + 0x5bd1e995ULL));
                       });
    }
    if (issued < target) {
      ++issued;
      const std::uint64_t nsalt = next(a);
      eng.schedule(Duration::micros(static_cast<std::int64_t>(50 + r % 10000)),
                   [this, a, nsalt] { chain(a, nsalt); });
    }
  }

  void daemon_tick(std::size_t a) {
    digest = fnv1a(digest, 0xda30000ULL + a);
    eng.schedule_daemon(daemon_interval(a), [this, a] { daemon_tick(a); });
  }
};

struct EngineResult {
  std::uint64_t digest = 0;
  double seconds = 0.0;
  std::size_t processed = 0;
  std::size_t steady_allocs = 0;  ///< only measured for the current engine
};

template <class Engine>
EngineResult run_engine(std::size_t n_events, std::size_t n_agents,
                        bool measure_allocs) {
  Engine eng;
  EngineResult out;
  const auto t0 = std::chrono::steady_clock::now();
  Driver<Engine> driver{eng, n_events, n_agents};
  if (measure_allocs) {
    // Warm-up fifth: the slab, heap and wheel grow to their in-flight
    // high-water mark. Everything after must run allocation-free.
    while (driver.chain_fired < n_events / 5 && eng.step()) {
    }
    const std::size_t before = g_alloc_count;
    eng.run();
    out.steady_allocs = g_alloc_count - before;
  } else {
    eng.run();
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.digest = driver.digest;
  out.processed = eng.processed_events();
  return out;
}

/// Folds a repetition into the kept result: fastest wall time wins (timing
/// noise on a shared box only ever slows a run down), while the allocation
/// count keeps its worst observation so a single dirty rep still fails.
void merge_rep(EngineResult& best, const EngineResult& rep) {
  const std::size_t allocs = std::max(best.steady_allocs, rep.steady_allocs);
  if (best.seconds == 0.0 || rep.seconds < best.seconds) best = rep;
  best.steady_allocs = allocs;
}

struct Row {
  std::size_t events = 0;
  std::size_t agents = 0;
  EngineResult legacy;
  EngineResult current;
  [[nodiscard]] bool digests_match() const {
    return legacy.digest == current.digest &&
           legacy.processed == current.processed;
  }
  [[nodiscard]] bool zero_alloc() const { return current.steady_allocs == 0; }
  [[nodiscard]] double speedup() const {
    return current.seconds > 0.0 ? legacy.seconds / current.seconds : 0.0;
  }
};

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream f{path};
  f << "{\n  \"bench\": \"sim_scale\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    f << "    {\"events\": " << r.events << ", \"agents\": " << r.agents
      << ", \"processed\": " << r.current.processed
      << ", \"legacy_seconds\": " << r.legacy.seconds
      << ", \"new_seconds\": " << r.current.seconds
      << ", \"legacy_events_per_sec\": "
      << static_cast<double>(r.legacy.processed) / r.legacy.seconds
      << ", \"new_events_per_sec\": "
      << static_cast<double>(r.current.processed) / r.current.seconds
      << ", \"speedup\": " << r.speedup()
      << ", \"digest_match\": " << (r.digests_match() ? "true" : "false")
      << ", \"zero_alloc_steady_state\": " << (r.zero_alloc() ? "true" : "false")
      << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int reps = 3;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::max(1, std::atoi(argv[++i]));
    } else {
      std::cerr << "usage: sim_scale [--smoke] [--reps <n>] [--json <path>]\n";
      return 2;
    }
  }

  std::vector<std::pair<std::size_t, std::size_t>> combos;
  if (smoke) {
    combos = {{20000, 100}};
  } else {
    combos = {{100000, 100},
              {1000000, 100},
              {1000000, 1000},
              {1000000, 10000},
              {10000000, 1000}};
  }

  std::cout << "== sim_scale: legacy vs slab/heap/wheel event engine ==\n";
  std::vector<Row> rows;
  bool failed = false;
  for (const auto& [events, agents] : combos) {
    Row row;
    row.events = events;
    row.agents = agents;
    // Interleave the engines across repetitions and keep each one's fastest
    // run: background load drifts on the order of seconds, so back-to-back
    // pairs see comparable conditions and the minimum approaches the true
    // cost. The digest is checked on every rep — determinism is per-run, not
    // best-of.
    for (int r = 0; r < reps; ++r) {
      merge_rep(row.legacy, run_engine<LegacySimulation>(events, agents, false));
      merge_rep(row.current, run_engine<cg::sim::Simulation>(events, agents, true));
      if (!row.digests_match()) break;
    }
    if (!row.digests_match()) {
      failed = true;
      std::cerr << "[FAIL] firing-order divergence at " << events << " events / "
                << agents << " agents: legacy=" << std::hex << row.legacy.digest
                << " new=" << row.current.digest << std::dec << " (processed "
                << row.legacy.processed << " vs " << row.current.processed
                << ")\n";
    }
    if (!row.zero_alloc()) {
      failed = true;
      std::cerr << "[FAIL] " << row.current.steady_allocs
                << " heap allocations on the steady-state path at " << events
                << " events / " << agents << " agents\n";
    }
    rows.push_back(row);
  }

  cg::TablePrinter table{{"Events", "Agents", "Legacy s", "New s", "Legacy ev/s",
                          "New ev/s", "Speedup", "Digest", "Allocs"}};
  for (const Row& r : rows) {
    table.add_row(
        {std::to_string(r.events), std::to_string(r.agents),
         cg::fmt_fixed(r.legacy.seconds, 3), cg::fmt_fixed(r.current.seconds, 3),
         cg::fmt_fixed(static_cast<double>(r.legacy.processed) / r.legacy.seconds,
                       0),
         cg::fmt_fixed(
             static_cast<double>(r.current.processed) / r.current.seconds, 0),
         cg::fmt_fixed(r.speedup(), 1) + "x",
         r.digests_match() ? "match" : "DIVERGED",
         r.zero_alloc() ? "0" : std::to_string(r.current.steady_allocs)});
  }
  std::cout << table.render() << "\n";
  if (!json_path.empty()) write_json(json_path, rows);
  std::cout << (failed ? "[MISS] engine rewrite violated its contract\n"
                       : "[ok]   identical firing order, allocation-free "
                         "steady state\n");
  return failed ? 1 : 0;
}
