// Discrete-event simulation engine. Single-threaded, deterministic: events at
// equal timestamps fire in scheduling order (a monotonic sequence number
// breaks ties). Every grid-side experiment in this repository runs on this
// engine in virtual time.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "util/time.hpp"

namespace cg::sim {

/// Token identifying a scheduled event; used to cancel timers (retry loops,
/// match leases, flush timeouts).
class EventHandle {
public:
  constexpr EventHandle() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  [[nodiscard]] constexpr std::uint64_t seq() const { return seq_; }
  constexpr bool operator==(const EventHandle&) const = default;

private:
  friend class Simulation;
  constexpr explicit EventHandle(std::uint64_t seq) : seq_{seq} {}
  std::uint64_t seq_ = 0;
};

/// The virtual clock and event queue.
class Simulation {
public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run `delay` after the current time. Negative delays
  /// are clamped to zero (fire "now", after already-queued events at now).
  EventHandle schedule(Duration delay, Callback fn);

  /// Schedules `fn` at an absolute time (clamped to now if in the past).
  EventHandle schedule_at(SimTime when, Callback fn);

  /// Schedules a *daemon* event: periodic maintenance work (information-
  /// system publication, fair-share updates) that must not keep the
  /// simulation alive. run()/run_until() stop once only daemon events remain.
  EventHandle schedule_daemon(Duration delay, Callback fn);

  /// Cancels a pending event. Returns true if the event had not yet fired.
  bool cancel(EventHandle handle);

  /// Runs until the queue is empty. Returns the number of events processed.
  std::size_t run();

  /// Runs until the queue is empty or the clock passes `deadline`. Events at
  /// exactly `deadline` are processed.
  std::size_t run_until(SimTime deadline);

  /// Processes a single event. Returns false if the queue was empty.
  bool step();

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t pending_events() const;

  /// Total events processed since construction.
  [[nodiscard]] std::size_t processed_events() const { return processed_; }

private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
    bool daemon = false;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_one(Event& out);
  EventHandle schedule_impl(SimTime when, Callback fn, bool daemon);

  SimTime now_;
  std::uint64_t next_seq_ = 1;
  std::size_t processed_ = 0;
  std::size_t pending_user_ = 0;  ///< non-daemon pending events
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Seq -> daemon flag of scheduled-but-not-fired events; cancel() removes
  // from here and pop_one() skips queue entries whose seq is absent.
  std::unordered_map<std::uint64_t, bool> pending_;
};

/// RAII timer that cancels its event on destruction; used by components whose
/// lifetime can end while a retry/flush timer is pending.
class ScopedTimer {
public:
  ScopedTimer() = default;
  ScopedTimer(Simulation& sim, EventHandle handle) : sim_{&sim}, handle_{handle} {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ScopedTimer(ScopedTimer&& other) noexcept { *this = std::move(other); }
  ScopedTimer& operator=(ScopedTimer&& other) noexcept {
    if (this != &other) {
      reset();
      sim_ = other.sim_;
      handle_ = other.handle_;
      other.sim_ = nullptr;
      other.handle_ = EventHandle{};
    }
    return *this;
  }
  ~ScopedTimer() { reset(); }

  /// Cancels the pending event, if any.
  void reset() {
    if (sim_ != nullptr && handle_.valid()) sim_->cancel(handle_);
    sim_ = nullptr;
    handle_ = EventHandle{};
  }

  /// Replaces the tracked event.
  void rearm(Simulation& sim, EventHandle handle) {
    reset();
    sim_ = &sim;
    handle_ = handle;
  }

  [[nodiscard]] bool armed() const { return sim_ != nullptr && handle_.valid(); }

private:
  Simulation* sim_ = nullptr;
  EventHandle handle_;
};

}  // namespace cg::sim
