// Small string helpers shared by the JDL parser and the bench harnesses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cg {

/// Splits on a single-character delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Case-insensitive ASCII equality.
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Used by the observability exporters.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace cg
