#include "jdl/lexer.hpp"

#include <cctype>
#include <charconv>

#include "util/strings.hpp"

namespace cg::jdl {

std::string_view to_string(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kInt: return "integer";
    case TokenKind::kReal: return "real";
    case TokenKind::kString: return "string";
    case TokenKind::kBoolTrue: return "true";
    case TokenKind::kBoolFalse: return "false";
    case TokenKind::kUndefined: return "undefined";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

namespace {

class Cursor {
public:
  explicit Cursor(std::string_view src) : src_{src} {}

  [[nodiscard]] bool eof() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  [[nodiscard]] std::size_t line() const { return line_; }
  [[nodiscard]] std::size_t column() const { return column_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::string_view slice(std::size_t from) const {
    return src_.substr(from, pos_ - from);
  }

private:
  std::string_view src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

Error lex_error(const Cursor& cur, const std::string& what) {
  return make_error("jdl.lex",
                    what + " at line " + std::to_string(cur.line()) + ", column " +
                        std::to_string(cur.column()));
}

}  // namespace

Expected<std::vector<Token>> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cur{source};

  const auto push = [&](TokenKind kind, std::size_t line, std::size_t col) {
    Token t;
    t.kind = kind;
    t.line = line;
    t.column = col;
    tokens.push_back(std::move(t));
  };

  while (!cur.eof()) {
    const char c = cur.peek();
    const std::size_t line = cur.line();
    const std::size_t col = cur.column();

    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      cur.advance();
      continue;
    }
    // Comments.
    if (c == '#' || (c == '/' && cur.peek(1) == '/')) {
      while (!cur.eof() && cur.peek() != '\n') cur.advance();
      continue;
    }
    if (c == '/' && cur.peek(1) == '*') {
      cur.advance();
      cur.advance();
      bool closed = false;
      while (!cur.eof()) {
        if (cur.peek() == '*' && cur.peek(1) == '/') {
          cur.advance();
          cur.advance();
          closed = true;
          break;
        }
        cur.advance();
      }
      if (!closed) return lex_error(cur, "unterminated block comment");
      continue;
    }
    // String literal.
    if (c == '"') {
      cur.advance();
      std::string text;
      bool closed = false;
      while (!cur.eof()) {
        const char ch = cur.advance();
        if (ch == '"') {
          closed = true;
          break;
        }
        if (ch == '\\') {
          if (cur.eof()) break;
          const char esc = cur.advance();
          switch (esc) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case 'r': text += '\r'; break;
            case '\\': text += '\\'; break;
            case '"': text += '"'; break;
            default: return lex_error(cur, std::string{"bad escape '\\"} + esc + "'");
          }
        } else {
          text += ch;
        }
      }
      if (!closed) return lex_error(cur, "unterminated string literal");
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(text);
      t.line = line;
      t.column = col;
      tokens.push_back(std::move(t));
      continue;
    }
    // Number.
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(cur.peek(1))) != 0)) {
      const std::size_t start = cur.pos();
      bool is_real = false;
      while (!cur.eof() && std::isdigit(static_cast<unsigned char>(cur.peek())) != 0) {
        cur.advance();
      }
      if (cur.peek() == '.' &&
          std::isdigit(static_cast<unsigned char>(cur.peek(1))) != 0) {
        is_real = true;
        cur.advance();
        while (!cur.eof() &&
               std::isdigit(static_cast<unsigned char>(cur.peek())) != 0) {
          cur.advance();
        }
      }
      if (cur.peek() == 'e' || cur.peek() == 'E') {
        std::size_t ahead = 1;
        if (cur.peek(1) == '+' || cur.peek(1) == '-') ahead = 2;
        if (std::isdigit(static_cast<unsigned char>(cur.peek(ahead))) != 0) {
          is_real = true;
          for (std::size_t i = 0; i < ahead; ++i) cur.advance();
          while (!cur.eof() &&
                 std::isdigit(static_cast<unsigned char>(cur.peek())) != 0) {
            cur.advance();
          }
        }
      }
      const std::string_view lexeme = cur.slice(start);
      Token t;
      t.line = line;
      t.column = col;
      if (is_real) {
        t.kind = TokenKind::kReal;
        t.real_value = std::stod(std::string{lexeme});
      } else {
        t.kind = TokenKind::kInt;
        std::int64_t v = 0;
        const auto [ptr, ec] =
            std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), v);
        if (ec != std::errc{}) return lex_error(cur, "integer literal out of range");
        t.int_value = v;
      }
      tokens.push_back(std::move(t));
      continue;
    }
    // Identifier / keyword.
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      const std::size_t start = cur.pos();
      while (!cur.eof() &&
             (std::isalnum(static_cast<unsigned char>(cur.peek())) != 0 ||
              cur.peek() == '_')) {
        cur.advance();
      }
      const std::string_view lexeme = cur.slice(start);
      Token t;
      t.line = line;
      t.column = col;
      if (iequals(lexeme, "true")) {
        t.kind = TokenKind::kBoolTrue;
      } else if (iequals(lexeme, "false")) {
        t.kind = TokenKind::kBoolFalse;
      } else if (iequals(lexeme, "undefined")) {
        t.kind = TokenKind::kUndefined;
      } else {
        t.kind = TokenKind::kIdent;
        t.text = std::string{lexeme};
      }
      tokens.push_back(std::move(t));
      continue;
    }
    // Operators and punctuation.
    cur.advance();
    switch (c) {
      case '=':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::kEq, line, col);
        } else {
          push(TokenKind::kAssign, line, col);
        }
        break;
      case ';': push(TokenKind::kSemicolon, line, col); break;
      case ',': push(TokenKind::kComma, line, col); break;
      case '.': push(TokenKind::kDot, line, col); break;
      case '(': push(TokenKind::kLParen, line, col); break;
      case ')': push(TokenKind::kRParen, line, col); break;
      case '{': push(TokenKind::kLBrace, line, col); break;
      case '}': push(TokenKind::kRBrace, line, col); break;
      case '[': push(TokenKind::kLBracket, line, col); break;
      case ']': push(TokenKind::kRBracket, line, col); break;
      case '+': push(TokenKind::kPlus, line, col); break;
      case '-': push(TokenKind::kMinus, line, col); break;
      case '*': push(TokenKind::kStar, line, col); break;
      case '/': push(TokenKind::kSlash, line, col); break;
      case '%': push(TokenKind::kPercent, line, col); break;
      case '?': push(TokenKind::kQuestion, line, col); break;
      case ':': push(TokenKind::kColon, line, col); break;
      case '!':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::kNe, line, col);
        } else {
          push(TokenKind::kBang, line, col);
        }
        break;
      case '&':
        if (cur.peek() == '&') {
          cur.advance();
          push(TokenKind::kAndAnd, line, col);
        } else {
          return lex_error(cur, "expected '&&'");
        }
        break;
      case '|':
        if (cur.peek() == '|') {
          cur.advance();
          push(TokenKind::kOrOr, line, col);
        } else {
          return lex_error(cur, "expected '||'");
        }
        break;
      case '<':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::kLe, line, col);
        } else {
          push(TokenKind::kLt, line, col);
        }
        break;
      case '>':
        if (cur.peek() == '=') {
          cur.advance();
          push(TokenKind::kGe, line, col);
        } else {
          push(TokenKind::kGt, line, col);
        }
        break;
      default:
        return lex_error(cur, std::string{"unexpected character '"} + c + "'");
    }
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.line = cur.line();
  end.column = cur.column();
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace cg::jdl
