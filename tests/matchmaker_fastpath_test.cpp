// Fast-path matchmaking tests: compiled-expression semantics, the free-CPU
// site index and its invalidation rules, fast-vs-legacy decision parity
// (down to rng lockstep and byte-identical trace exports), and the metrics
// the fast path emits. The legacy interpreter is the oracle throughout.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "broker/matchmaker.hpp"
#include "grid/grid.hpp"

namespace cg::broker {
namespace {

using namespace cg::literals;

infosys::SiteRecord make_record(std::uint64_t id, int free_cpus,
                                const std::string& arch = "i686",
                                std::int64_t memory_mb = 1024) {
  infosys::SiteRecord r;
  r.static_info.id = SiteId{id};
  r.static_info.name = "site" + std::to_string(id);
  r.static_info.arch = arch;
  r.static_info.worker_nodes = std::max(free_cpus, 1);
  r.static_info.cpus_per_node = 1;
  r.static_info.memory_mb_per_node = memory_mb;
  r.dynamic_info.free_cpus = free_cpus;
  return r;
}

jdl::JobDescription make_job(const std::string& extra = "") {
  auto jd = jdl::JobDescription::parse("Executable = \"app\";\n" + extra);
  EXPECT_TRUE(jd.has_value()) << (jd ? "" : jd.error().to_string());
  return jd.value();
}

// ------------------------------------------------- compiled expressions ----

jdl::CompiledMatch compile_job(const std::string& extra) {
  return jdl::CompiledMatch::compile(make_job(extra).ad(),
                                     infosys::machine_slot_layout());
}

jdl::SlotEvalContext context_for(const infosys::SiteRecord& record) {
  jdl::SlotEvalContext ctx;
  ctx.slots = &record.machine_view().slots;
  return ctx;
}

TEST(CompiledMatchTest, SiteIndependentConjunctsFoldAway) {
  // `true` and `1 + 1 == 2` are decidable at compile time; only the
  // site-dependent conjunct must survive to be evaluated per record.
  const auto compiled =
      compile_job("Requirements = true && 1 + 1 == 2 && other.FreeCPUs >= 1;");
  EXPECT_FALSE(compiled.never_matches());
  EXPECT_EQ(compiled.residual_conjunct_count(), 1u);
}

TEST(CompiledMatchTest, ConstantFalseConjunctNeverMatches) {
  const auto compiled =
      compile_job("Requirements = other.FreeCPUs >= 1 && 2 < 1;");
  EXPECT_TRUE(compiled.never_matches());
}

TEST(CompiledMatchTest, SelfScopeReferencesAreInlined) {
  // self.MinMem resolves against the job ad at compile time, so the
  // residual expression only reads machine slots.
  const auto compiled = compile_job(
      "MinMem = 2048;\nRequirements = other.MemoryMB >= self.MinMem;");
  EXPECT_EQ(compiled.residual_conjunct_count(), 1u);
  const auto small = make_record(1, 4, "i686", 1024);
  const auto big = make_record(2, 4, "i686", 4096);
  EXPECT_FALSE(compiled.matches(context_for(small)));
  EXPECT_TRUE(compiled.matches(context_for(big)));
}

TEST(CompiledMatchTest, UnknownAttributeIsStaticallyUnmatchable) {
  // Machine ads always carry exactly the slot-layout attributes, so a
  // reference to anything else is Undefined on every site — the compiler
  // may (and does) decide the requirement statically.
  const auto compiled = compile_job("Requirements = other.NoSuchAttr > 3;");
  EXPECT_TRUE(compiled.never_matches());
  EXPECT_FALSE(compiled.matches(context_for(make_record(1, 8))));
}

TEST(CompiledMatchTest, RankEvaluatesAgainstSlots) {
  const auto compiled = compile_job("Rank = other.FreeCPUs * 2 + 1;");
  ASSERT_TRUE(compiled.has_rank());
  EXPECT_EQ(compiled.rank(context_for(make_record(1, 5))), 11.0);
}

// ------------------------------------------------- fast/legacy parity ------

const std::vector<std::string>& job_templates() {
  static const std::vector<std::string> templates{
      "",
      "Requirements = other.Arch == \"x86_64\";",
      "Requirements = other.MemoryMB >= 1024 && other.FreeCPUs >= 2;",
      "Rank = -other.FreeCPUs;",
      "Requirements = other.Arch == \"i686\" || other.TotalCPUs > 6;\n"
      "Rank = other.MemoryMB + other.FreeCPUs;",
      "Requirements = false;",
      "Rank = 3;",
  };
  return templates;
}

std::vector<infosys::SiteRecord> parity_records() {
  std::vector<infosys::SiteRecord> records;
  for (std::uint64_t i = 1; i <= 12; ++i) {
    records.push_back(make_record(i, static_cast<int>(i * 5 % 9),
                                  i % 3 == 0 ? "x86_64" : "i686",
                                  512 << (i % 3)));
  }
  return records;
}

TEST(FastPathParityTest, FilterMatchesLegacyCandidateForCandidate) {
  sim::Simulation sim;
  LeaseManager leases{sim};
  ASSERT_TRUE(leases.acquire(SiteId{5}, 2, 3600_s));  // shadow one site
  MatchmakerConfig legacy_cfg;
  legacy_cfg.use_fast_path = false;
  const Matchmaker legacy{legacy_cfg};
  const Matchmaker fast{MatchmakerConfig{}};  // fast path is the default
  const auto records = parity_records();
  for (const auto& tmpl : job_templates()) {
    for (const int needed : {1, 4}) {
      const auto job = make_job(tmpl);
      const auto expect = legacy.filter(job, records, leases, needed);
      const auto got = fast.filter(job, records, leases, needed);
      ASSERT_EQ(got.size(), expect.size()) << tmpl << " needed=" << needed;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].site, expect[i].site) << tmpl;
        EXPECT_EQ(got[i].rank, expect[i].rank) << tmpl;
        EXPECT_EQ(got[i].effective_free_cpus, expect[i].effective_free_cpus)
            << tmpl;
      }
    }
  }
}

TEST(FastPathParityTest, MatchOneEqualsFilterPlusSelectInRngLockstep) {
  sim::Simulation sim;
  LeaseManager leases{sim};
  MatchmakerConfig legacy_cfg;
  legacy_cfg.use_fast_path = false;
  const Matchmaker legacy{legacy_cfg};
  const Matchmaker fast{MatchmakerConfig{}};
  const auto records = parity_records();
  for (const auto& tmpl : job_templates()) {
    for (const int needed : {1, 4}) {
      for (const std::uint64_t seed : {1ULL, 7ULL, 23ULL}) {
        const auto job = make_job(tmpl);
        Rng legacy_rng{seed};
        Rng fast_rng{seed};
        const auto candidates = legacy.filter(job, records, leases, needed);
        const auto expect = legacy.select(candidates, legacy_rng);
        const auto compiled = fast.compile(job);
        const auto got = fast.match_one(*compiled, CandidateSource{records},
                                        leases, needed, fast_rng);
        ASSERT_EQ(got.has_value(), expect.has_value()) << tmpl;
        if (expect) {
          EXPECT_EQ(got->site, *expect) << tmpl;
        }
        // Both paths must have consumed the exact same number of draws.
        EXPECT_EQ(fast_rng.next_u64(), legacy_rng.next_u64()) << tmpl;
      }
    }
  }
}

// ------------------------------------------------- free-CPU site index -----

class IndexFixture : public ::testing::Test {
protected:
  IndexFixture() : is{sim, fast_config()} {}

  static infosys::InformationSystemConfig fast_config() {
    infosys::InformationSystemConfig c;
    c.index_query_latency = Duration::millis(1);
    c.default_site_query_latency = Duration::millis(1);
    return c;
  }

  void add_site(std::uint64_t id, int free_cpus) {
    const auto record = make_record(id, free_cpus);
    is.register_site(record.static_info, [record] { return record; });
    is.publish(record);
  }

  std::vector<std::uint64_t> matching_ids(int needed) {
    std::vector<std::uint64_t> ids;
    is.query_index_matching(
        needed,
        [&ids](std::shared_ptr<const infosys::InformationSystem::IndexSnapshot>
                   records) {
          for (const auto& r : *records) {
            ids.push_back(r->static_info.id.value());
          }
        });
    sim.run_until(sim.now() + Duration::millis(2));
    return ids;
  }

  sim::Simulation sim;
  infosys::InformationSystem is;
};

TEST_F(IndexFixture, PrunesByPublishedFreeCpusInAscendingIdOrder) {
  add_site(3, 9);
  add_site(1, 0);
  add_site(2, 5);
  add_site(4, 2);
  EXPECT_EQ(is.index_size(), 4u);
  EXPECT_EQ(matching_ids(4), (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(matching_ids(1), (std::vector<std::uint64_t>{2, 3, 4}));
  EXPECT_EQ(matching_ids(10), (std::vector<std::uint64_t>{}));
}

TEST_F(IndexFixture, LeasedSitesStayVisibleWhilePublishedCapacityCovers) {
  add_site(1, 8);
  // A lease drops the effective count below the request, but the published
  // capacity still covers it: the lease may be gone by the time the broker
  // re-checks, so the site must stay in the reply (lease-independent bound).
  is.apply_lease_delta(SiteId{1}, 6);
  EXPECT_EQ(is.effective_free(SiteId{1}), 2);
  EXPECT_EQ(matching_ids(4), (std::vector<std::uint64_t>{1}));
  is.apply_lease_delta(SiteId{1}, -6);
  EXPECT_EQ(is.effective_free(SiteId{1}), 8);
  EXPECT_EQ(matching_ids(4), (std::vector<std::uint64_t>{1}));
}

TEST_F(IndexFixture, RepublishMovesSiteBetweenBuckets) {
  add_site(1, 8);
  EXPECT_EQ(matching_ids(4), (std::vector<std::uint64_t>{1}));
  auto drained = make_record(1, 1);
  is.publish(drained);  // site filled up: must leave the needed>=4 prefix
  EXPECT_EQ(matching_ids(4), (std::vector<std::uint64_t>{}));
  EXPECT_EQ(is.index_size(), 1u);
  is.publish(make_record(1, 8));
  EXPECT_EQ(matching_ids(4), (std::vector<std::uint64_t>{1}));
}

TEST_F(IndexFixture, UnregisterRemovesSiteFromIndex) {
  add_site(1, 8);
  add_site(2, 8);
  is.unregister_site(SiteId{1});
  EXPECT_EQ(is.index_size(), 1u);
  EXPECT_EQ(matching_ids(1), (std::vector<std::uint64_t>{2}));
}

TEST_F(IndexFixture, InvalidationListenerReportsEveryReason) {
  std::vector<std::pair<std::uint64_t, std::string>> events;
  is.set_invalidation_listener([&events](SiteId id, const char* reason) {
    events.emplace_back(id.value(), reason);
  });
  add_site(1, 8);  // first publication: nothing to invalidate
  EXPECT_TRUE(events.empty());
  is.publish(make_record(1, 3));
  is.apply_lease_delta(SiteId{1}, 2);
  is.unregister_site(SiteId{1});
  const std::vector<std::pair<std::uint64_t, std::string>> expected{
      {1, "republish"}, {1, "lease"}, {1, "unregister"}};
  EXPECT_EQ(events, expected);
}

TEST_F(IndexFixture, SnapshotsShareOnePrimedMachineView) {
  add_site(1, 8);
  using Snapshot = infosys::InformationSystem::IndexSnapshot;
  std::shared_ptr<const Snapshot> first;
  std::shared_ptr<const Snapshot> second;
  is.query_index_matching(
      1, [&first](std::shared_ptr<const Snapshot> r) { first = std::move(r); });
  is.query_index_matching(1, [&second](std::shared_ptr<const Snapshot> r) {
    second = std::move(r);
  });
  sim.run_until(sim.now() + Duration::millis(2));
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  ASSERT_EQ(first->size(), 1u);
  ASSERT_EQ(second->size(), 1u);
  // Publication primed the cache once; every snapshot aliases that record —
  // and with no index change in between, the queries share one cached
  // snapshot vector outright.
  EXPECT_TRUE((*first)[0]->cache_primed());
  EXPECT_EQ((*first)[0].get(), (*second)[0].get());
  EXPECT_EQ(first.get(), second.get());
}

// ------------------------------------------------- end-to-end A/B ----------

std::string run_trace(bool fast, std::uint64_t seed) {
  GridConfig config;
  config.sites = 6;
  config.nodes_per_site = 4;
  config.seed = seed;
  config.broker.matchmaker.use_fast_path = fast;
  Grid grid{config};
  const std::vector<std::string> jobs{
      "Executable = \"batch\";",
      "Executable = \"viz\"; JobType = \"interactive\";",
      "Executable = \"sim\"; Rank = -other.FreeCPUs;",
      "Executable = \"render\"; Requirements = other.FreeCPUs >= 2;",
      "Executable = \"viz2\"; JobType = \"interactive\"; Rank = 1;",
      "Executable = \"hold\"; Requirements = other.NoSuchAttr > 1;",
  };
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    auto jd = jdl::JobDescription::parse(jobs[i]);
    EXPECT_TRUE(jd.has_value());
    const auto handle =
        grid.submit(jd.value(), UserId{i + 1},
                    lrms::Workload::cpu(Duration::seconds(
                        60 * (static_cast<std::int64_t>(i) + 1))));
    EXPECT_TRUE(handle.has_value()) << jobs[i];
  }
  grid.run_for(Duration::seconds(3600));
  return grid.export_trace_jsonl();
}

TEST(FastPathEndToEndTest, SameSeedRunsExportByteIdenticalTraces) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const std::string legacy = run_trace(/*fast=*/false, seed);
    const std::string fast = run_trace(/*fast=*/true, seed);
    EXPECT_FALSE(fast.empty());
    EXPECT_EQ(fast, legacy) << "trace divergence at seed " << seed;
  }
}

TEST(FastPathEndToEndTest, OfflineSiteIsNeverMatchedFromStaleIndex) {
  GridConfig config;
  config.sites = 4;
  config.nodes_per_site = 4;
  config.seed = 11;
  Grid grid{config};
  const SiteId dead = grid.site(0).id();
  // Kill the site before any republication cycle: a missed index
  // invalidation would keep handing out its stale (idle) record, which
  // would out-rank every busy survivor.
  grid.scenario().take_site_offline(0);
  std::vector<JobHandle> handles;
  for (std::uint64_t u = 1; u <= 6; ++u) {
    auto jd = jdl::JobDescription::parse(
        "Executable = \"viz\"; JobType = \"interactive\";");
    ASSERT_TRUE(jd.has_value());
    auto handle = grid.submit(jd.value(), UserId{u},
                              lrms::Workload::cpu(Duration::seconds(300)));
    ASSERT_TRUE(handle.has_value());
    handles.push_back(*handle);
  }
  grid.run_for(Duration::seconds(1800));
  std::size_t placed = 0;
  for (const auto& handle : handles) {
    const JobRecord* record = handle.record();
    ASSERT_NE(record, nullptr);
    for (const auto& subjob : record->subjobs) {
      if (!subjob.site.valid()) continue;
      ++placed;
      EXPECT_NE(subjob.site, dead) << "job placed on an offline site";
    }
  }
  EXPECT_GT(placed, 0u);
}

TEST(FastPathEndToEndTest, FastPathEmitsCacheAndScanMetrics) {
  GridConfig config;
  config.sites = 4;
  config.nodes_per_site = 4;
  config.seed = 5;
  Grid grid{config};
  for (std::uint64_t u = 1; u <= 4; ++u) {
    auto jd = jdl::JobDescription::parse("Executable = \"app\";");
    ASSERT_TRUE(jd.has_value());
    ASSERT_TRUE(grid.submit(jd.value(), UserId{u},
                            lrms::Workload::cpu(Duration::seconds(120))));
  }
  grid.run_for(Duration::seconds(600));
  EXPECT_GT(grid.metrics().counter_total("broker.match.cache_hits"), 0u);
  // Match leases move sites in the free-CPU index -> "lease" invalidations.
  EXPECT_GE(grid.metrics().counter_total("broker.match.cache_invalidations"),
            1u);
  const auto* coarse = grid.metrics().find_histogram(
      "broker.match.sites_scanned", obs::LabelSet{{"pass", "coarse"}});
  ASSERT_NE(coarse, nullptr);
  EXPECT_GE(coarse->count(), 1u);
  const auto* fresh = grid.metrics().find_histogram(
      "broker.match.sites_scanned", obs::LabelSet{{"pass", "fresh"}});
  ASSERT_NE(fresh, nullptr);
  EXPECT_GE(fresh->count(), 1u);
}

}  // namespace
}  // namespace cg::broker
