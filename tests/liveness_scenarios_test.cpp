// Chaos scenario suite for the agent-liveness echo and partition-aware job
// eviction subsystems: a wedged agent on a healthy link (echoes stop while
// link heartbeats pass), partitions that heal inside and outside the
// running-job grace, and spool faults during reliable streaming. Each
// scenario asserts a full filtered trace-event digest against a golden
// sequence and byte-identical same-seed typed-trace exports.
//
// The binary has a custom main: `--list-scenarios` prints the registry (one
// scenario per line, name <TAB> description) and exits; anything else runs
// the gtest suite. Setting CG_DUMP_DIGESTS=1 prints each scenario's digest
// to stderr, which is how the goldens below were pinned.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "broker/fault_bridge.hpp"
#include "broker/grid_scenario.hpp"
#include "obs/observability.hpp"
#include "sim/fault.hpp"
#include "stream/grid_console.hpp"

namespace cg {
namespace {

using namespace cg::literals;

// ---------------------------------------------------------------- registry --

struct ScenarioInfo {
  const char* name;
  const char* description;
};

constexpr ScenarioInfo kScenarios[] = {
    {"wedged-agent-healthy-link",
     "agent event loop stalls while link heartbeats pass; liveness echoes "
     "miss, the agent is suspected, and its residents are evicted"},
    {"partition-heal-within-grace",
     "broker<->site partition heals before running_job_grace expires; the "
     "agent is restored and nothing is evicted"},
    {"partition-past-grace",
     "partition outlives running_job_grace; running residents are evicted "
     "with reason=partition and resubmitted elsewhere"},
    {"liveness-echo-blackhole",
     "a message fault drops only LivenessEcho on the broker<->site pair; "
     "heartbeats and probes still flow (zero heartbeat misses), yet the "
     "silent echo path alone drives suspicion and eviction"},
    {"spool-fault-during-streaming",
     "worker-node disk fails mid reliable stream; appends are rejected and "
     "retried until the disk heals, losing nothing"},
    {"suspected-site-avoidance",
     "partition-past-grace eviction drives the site past the SiteHealth "
     "exclusion threshold; the replacement provably lands elsewhere and the "
     "site is used again once suspicion decays below the threshold"},
};

// ------------------------------------------------------------ grid harness --

jdl::JobDescription parse_job(const std::string& source) {
  auto jd = jdl::JobDescription::parse(source);
  EXPECT_TRUE(jd.has_value()) << (jd ? "" : jd.error().to_string());
  return jd.value();
}

struct Outcome {
  bool running = false;
  bool completed = false;
  bool failed = false;
};

broker::JobCallbacks watch(Outcome& outcome) {
  broker::JobCallbacks cb;
  cb.on_running = [&outcome](const broker::JobRecord&) { outcome.running = true; };
  cb.on_complete = [&outcome](const broker::JobRecord&) {
    outcome.completed = true;
  };
  cb.on_failed = [&outcome](const broker::JobRecord&, const Error&) {
    outcome.failed = true;
  };
  return cb;
}

/// The filtered trace digest a scenario pins: every supervision and recovery
/// event, in simulation order, without timestamps (timing is covered by the
/// byte-identical jsonl assertion). One token per line, "kind" or "kind(jN)".
std::string kinds_digest(const obs::JobTracer& tracer) {
  std::string out;
  for (const obs::JobTraceEvent& event : tracer.events()) {
    switch (event.kind) {
      case obs::TraceEventKind::kHeartbeatMiss:
      case obs::TraceEventKind::kLivenessMiss:
      case obs::TraceEventKind::kAgentSuspected:
      case obs::TraceEventKind::kAgentRestored:
      case obs::TraceEventKind::kJobEvicted:
      case obs::TraceEventKind::kResubmitted:
      case obs::TraceEventKind::kSpoolFull:
      case obs::TraceEventKind::kCompleted:
      case obs::TraceEventKind::kFailed:
        out += to_string(event.kind);
        if (event.job != JobId::none()) {
          out += "(j" + std::to_string(event.job.value()) + ")";
        }
        out += "\n";
        break;
      default:
        break;
    }
  }
  return out;
}

void maybe_dump(const char* scenario, const std::string& digest) {
  if (std::getenv("CG_DUMP_DIGESTS") != nullptr) {
    std::cerr << "=== digest[" << scenario << "] ===\n" << digest << "===\n";
  }
}

struct ScenarioResult {
  Outcome batch;
  Outcome inter;
  int inter_resubmissions = 0;
  std::string digest;  ///< filtered trace-kind sequence (kinds_digest)
  std::string jsonl;   ///< full typed trace export (byte-comparable)
  std::uint64_t heartbeat_misses = 0;
  std::uint64_t liveness_misses = 0;
  std::uint64_t msg_drops = 0;  ///< net.msg.dropped across all types/reasons
  std::uint64_t suspected = 0;
  std::uint64_t restored = 0;
  std::uint64_t evictions = 0;
  std::optional<SimTime> suspected_at;
  std::optional<SimTime> inter_evicted_at;
  std::size_t active_leases = 0;
};

/// Context handed to a scenario's fault author: enough to name victims via
/// the DSL and to find the link carrying the victim agent's supervision.
struct FaultContext {
  broker::GridScenario& grid;
  broker::FaultBridge& bridge;
  JobId inter_id;

  [[nodiscard]] std::string inter_query() const {
    return "agent_of(job:" + std::to_string(inter_id.value()) + ")";
  }
  /// Endpoint of the site hosting the interactive job's agent.
  [[nodiscard]] std::string inter_site_endpoint() const {
    const auto agent_id = bridge.resolve_agent(inter_query());
    EXPECT_TRUE(agent_id.has_value());
    const glidein::GlideinAgent* agent =
        grid.broker().agents().find(*agent_id);
    EXPECT_NE(agent, nullptr);
    for (std::size_t i = 0; i < grid.site_count(); ++i) {
      if (grid.site(i).id() == agent->site()) return grid.site(i).endpoint();
    }
    ADD_FAILURE() << "agent site not found";
    return "";
  }
};

/// One grid chaos run: a long batch job plus a shared-mode interactive job
/// riding a glide-in agent, faults injected at t >= 300 s, supervision via
/// both link heartbeats and liveness echoes, eviction after a 60 s grace.
ScenarioResult run_grid_scenario(
    const char* name,
    const std::function<void(sim::FaultPlan&, const FaultContext&)>& author) {
  broker::GridScenarioConfig config;
  config.sites = 2;
  config.nodes_per_site = 2;
  config.broker.running_job_grace = Duration::seconds(60);
  obs::Observability obs;
  broker::GridScenario grid{config};
  grid.broker().set_observability(&obs);

  ScenarioResult result;
  (void)grid.broker().submit(parse_job("Executable = \"sim\";"), UserId{1},
                             lrms::Workload::cpu(1200_s),
                             broker::GridScenario::ui_endpoint(),
                             watch(result.batch));
  grid.sim().run_until(SimTime::from_seconds(120));

  const JobId inter_id =
      grid.broker()
          .submit(parse_job("Executable = \"viz\"; JobType = \"interactive\"; "
                            "MachineAccess = \"shared\"; PerformanceLoss = 10;"),
                  UserId{2}, lrms::Workload::cpu(600_s),
                  broker::GridScenario::ui_endpoint(), watch(result.inter))
          .value();
  grid.sim().run_until(SimTime::from_seconds(240));
  EXPECT_TRUE(result.inter.running);

  sim::FaultInjector injector{grid.sim(), &grid.network()};
  injector.register_message_sink(&grid.bus());
  broker::FaultBridge bridge{grid, injector};
  sim::FaultPlan plan;
  author(plan, FaultContext{grid, bridge, inter_id});
  injector.arm(plan);

  grid.sim().run_until(SimTime::from_seconds(2400));

  result.inter_resubmissions = grid.broker().record(inter_id)->resubmissions;
  result.digest = kinds_digest(obs.tracer);
  result.jsonl = obs.tracer.to_jsonl();
  result.heartbeat_misses =
      obs.metrics.counter_total("broker.heartbeat_misses");
  result.liveness_misses = obs.metrics.counter_total("broker.liveness_misses");
  result.msg_drops = obs.metrics.counter_total("net.msg.dropped");
  result.suspected = obs.metrics.counter_total("broker.agents_suspected");
  result.restored = obs.metrics.counter_total("broker.agents_restored");
  result.evictions = obs.metrics.counter_total("broker.jobs_evicted");
  for (const obs::JobTraceEvent& event :
       obs.tracer.of_kind(obs::TraceEventKind::kAgentSuspected)) {
    if (!result.suspected_at) result.suspected_at = event.when;
  }
  for (const obs::JobTraceEvent& event :
       obs.tracer.of_kind(obs::TraceEventKind::kJobEvicted)) {
    if (event.job == inter_id && !result.inter_evicted_at) {
      result.inter_evicted_at = event.when;
    }
  }
  result.active_leases = grid.broker().leases().active_leases();
  maybe_dump(name, result.digest);
  return result;
}

// -------------------------------------- scenario: wedged agent, healthy link

ScenarioResult run_wedged_agent() {
  return run_grid_scenario(
      "wedged-agent-healthy-link",
      [](sim::FaultPlan& plan, const FaultContext& ctx) {
        plan.wedge_agent(ctx.inter_query(), SimTime::from_seconds(300.0),
                         Duration::seconds(200));
      });
}

TEST(LivenessScenarioTest, WedgedAgentOnHealthyLinkIsSuspectedAndEvicts) {
  const ScenarioResult run = run_wedged_agent();
  // The link never went down, so not one link heartbeat was missed: only the
  // application-level echo saw the wedge.
  EXPECT_EQ(run.heartbeat_misses, 0u);
  EXPECT_GE(run.liveness_misses, 3u);
  EXPECT_EQ(run.suspected, 1u);
  // Suspected within (miss_limit + 1) probe intervals of the wedge: the
  // acceptance bound of the liveness tentpole.
  const broker::CrossBrokerConfig defaults;
  ASSERT_TRUE(run.suspected_at.has_value());
  EXPECT_GE(*run.suspected_at, SimTime::from_seconds(300.0));
  EXPECT_LE(*run.suspected_at,
            SimTime::from_seconds(300.0) +
                defaults.liveness_probe_interval *
                    (defaults.liveness_miss_limit + 1));
  // The running resident was evicted after the 60 s grace, resubmitted, and
  // finished elsewhere; the unwedged agent was eventually restored.
  ASSERT_TRUE(run.inter_evicted_at.has_value());
  EXPECT_GE(*run.inter_evicted_at, *run.suspected_at + Duration::seconds(60));
  EXPECT_GE(run.evictions, 1u);
  EXPECT_GE(run.inter_resubmissions, 1);
  EXPECT_TRUE(run.inter.completed);
  EXPECT_EQ(run.restored, 1u);
  EXPECT_EQ(run.active_leases, 0u);
}

TEST(LivenessScenarioTest, WedgedAgentScenarioIsByteIdenticalAcrossRuns) {
  const ScenarioResult a = run_wedged_agent();
  const ScenarioResult b = run_wedged_agent();
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_FALSE(a.jsonl.empty());
}

// ------------------------------- scenario: liveness-echo blackhole (kMsgDrop)

/// The message-fault twin of the wedge: the agent is perfectly healthy and
/// echoes every probe, but a kMsgDrop fault blackholes LivenessEcho — and
/// only LivenessEcho — on the broker<->site pair. Heartbeats and probes
/// match neither the type nor fail the link, so the echo channel alone
/// carries the suspicion signal.
ScenarioResult run_echo_blackhole() {
  return run_grid_scenario(
      "liveness-echo-blackhole",
      [](sim::FaultPlan& plan, const FaultContext& ctx) {
        plan.drop_messages("LivenessEcho", "broker", ctx.inter_site_endpoint(),
                           SimTime::from_seconds(300.0),
                           Duration::seconds(200));
      });
}

TEST(LivenessScenarioTest, EchoBlackholeSuspectsWithoutHeartbeatMisses) {
  const ScenarioResult run = run_echo_blackhole();
  // The link never failed and Heartbeat never matched the fault's type
  // filter: not one heartbeat miss. Every miss came from dropped echoes.
  EXPECT_EQ(run.heartbeat_misses, 0u);
  EXPECT_GE(run.liveness_misses, 3u);
  // The bus counted each blackholed echo (reason=fault) on the shared
  // registry — the fault fired through the typed delivery path, not around
  // it.
  EXPECT_GE(run.msg_drops, run.liveness_misses);
  EXPECT_EQ(run.suspected, 1u);
  const broker::CrossBrokerConfig defaults;
  ASSERT_TRUE(run.suspected_at.has_value());
  EXPECT_GE(*run.suspected_at, SimTime::from_seconds(300.0));
  EXPECT_LE(*run.suspected_at,
            SimTime::from_seconds(300.0) +
                defaults.liveness_probe_interval *
                    (defaults.liveness_miss_limit + 1));
  // Grace expired behind the blackhole: residents evicted and resubmitted,
  // and the agent restored once the fault healed and an echo got through.
  ASSERT_TRUE(run.inter_evicted_at.has_value());
  EXPECT_GE(*run.inter_evicted_at, *run.suspected_at + Duration::seconds(60));
  EXPECT_GE(run.evictions, 1u);
  EXPECT_GE(run.inter_resubmissions, 1);
  EXPECT_TRUE(run.inter.completed);
  EXPECT_EQ(run.restored, 1u);
  EXPECT_EQ(run.active_leases, 0u);
}

TEST(LivenessScenarioTest, EchoBlackholeIsByteIdenticalAcrossRuns) {
  const ScenarioResult a = run_echo_blackhole();
  const ScenarioResult b = run_echo_blackhole();
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_FALSE(a.jsonl.empty());
}

// ------------------------------------ scenario: partition heals within grace

ScenarioResult run_partition_within_grace() {
  return run_grid_scenario(
      "partition-heal-within-grace",
      [](sim::FaultPlan& plan, const FaultContext& ctx) {
        plan.partition_link("broker", ctx.inter_site_endpoint(),
                            SimTime::from_seconds(300.0),
                            Duration::seconds(40));
      });
}

TEST(LivenessScenarioTest, PartitionHealedWithinGraceEvictsNothing) {
  const ScenarioResult run = run_partition_within_grace();
  // The partition was long enough to suspect the agent…
  EXPECT_EQ(run.suspected, 1u);
  EXPECT_GE(run.heartbeat_misses, 3u);
  // …but healed before running_job_grace expired, so the armed eviction
  // timer found the agent restored and stood down: nothing was evicted, the
  // resident kept running where it was, and no resubmission happened.
  EXPECT_EQ(run.evictions, 0u);
  EXPECT_EQ(run.inter_resubmissions, 0);
  EXPECT_EQ(run.restored, 1u);
  EXPECT_TRUE(run.inter.completed);
  EXPECT_TRUE(run.batch.completed);
  EXPECT_EQ(run.active_leases, 0u);
}

// -------------------------------------- scenario: partition outlives grace

ScenarioResult run_partition_past_grace() {
  return run_grid_scenario(
      "partition-past-grace",
      [](sim::FaultPlan& plan, const FaultContext& ctx) {
        plan.partition_link("broker", ctx.inter_site_endpoint(),
                            SimTime::from_seconds(300.0),
                            Duration::seconds(150));
      });
}

TEST(LivenessScenarioTest, PartitionPastGraceEvictsAndResubmitsRunningJob) {
  const ScenarioResult run = run_partition_past_grace();
  // SiteHealth hard-excludes the partitioned site after suspicion + eviction,
  // so the replacement agent is deployed elsewhere and is never suspected:
  // exactly one suspicion cycle, exact sequence pinned by the golden digest.
  EXPECT_EQ(run.suspected, 1u);
  // The grace expired behind the partition: the running interactive resident
  // was timed out, evicted with reason=partition, and resubmitted.
  ASSERT_TRUE(run.inter_evicted_at.has_value());
  ASSERT_TRUE(run.suspected_at.has_value());
  EXPECT_GE(*run.inter_evicted_at, *run.suspected_at + Duration::seconds(60));
  EXPECT_GE(run.evictions, 1u);
  EXPECT_GE(run.inter_resubmissions, 1);
  EXPECT_TRUE(run.inter.completed);
  // Every healed agent re-registered once echoes made the round trip again.
  EXPECT_GE(run.restored, 1u);
  EXPECT_EQ(run.restored, run.suspected);
  EXPECT_EQ(run.active_leases, 0u);
}

TEST(LivenessScenarioTest, PartitionPastGraceIsByteIdenticalAcrossRuns) {
  const ScenarioResult a = run_partition_past_grace();
  const ScenarioResult b = run_partition_past_grace();
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.digest, b.digest);
}

// ------------------------- scenario: suspicion steers placement off-site --

struct AvoidanceRun {
  std::uint64_t original_site = 0;     ///< site the interactive job started on
  std::uint64_t replacement_site = 0;  ///< site after the eviction resubmit
  std::uint64_t late_site = 0;         ///< site of the post-recovery probe job
  bool excluded_mid_partition = false;
  bool excluded_at_probe = false;
  Outcome inter;
  Outcome probe;
  std::string digest;
  std::string jsonl;
};

/// Partition-past-grace chaos with site-identity assertions: the suspected
/// site is hard-excluded by SiteHealth, so the evicted job's replacement
/// provably lands on the other site; once suspicion decays below the
/// exclusion threshold a late probe job — with the healthy site kept full by
/// a long filler — returns to the recovered site.
AvoidanceRun run_suspected_site_avoidance() {
  broker::GridScenarioConfig config;
  config.sites = 2;
  config.nodes_per_site = 2;
  config.broker.running_job_grace = Duration::seconds(60);
  obs::Observability obs;
  broker::GridScenario grid{config};
  grid.broker().set_observability(&obs);

  // Live capture through the typed subscription API: every match, as it
  // happens, without scanning the tracer afterwards.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> matches;  // (job, site)
  obs.tracer.subscribe(
      obs::TraceEventKind::kMatched, [&matches](const obs::JobTraceEvent& e) {
        const std::string* site = e.attrs.find("site");
        ASSERT_NE(site, nullptr);
        matches.emplace_back(e.job.value(), std::stoull(*site));
      });
  const auto site_of = [&matches](JobId job, bool last) {
    std::optional<std::uint64_t> found;
    for (const auto& [j, site] : matches) {
      if (j != job.value()) continue;
      found = site;
      if (!last) break;
    }
    EXPECT_TRUE(found.has_value()) << "no match recorded for j" << job.value();
    return found.value_or(~std::uint64_t{0});
  };

  AvoidanceRun result;
  Outcome batch;
  (void)grid.broker().submit(parse_job("Executable = \"sim\";"), UserId{1},
                             lrms::Workload::cpu(3000_s),
                             broker::GridScenario::ui_endpoint(), watch(batch));
  grid.sim().run_until(SimTime::from_seconds(120));

  const JobId inter_id =
      grid.broker()
          .submit(parse_job("Executable = \"viz\"; JobType = \"interactive\"; "
                            "MachineAccess = \"shared\"; PerformanceLoss = 10;"),
                  UserId{2}, lrms::Workload::cpu(600_s),
                  broker::GridScenario::ui_endpoint(), watch(result.inter))
          .value();
  grid.sim().run_until(SimTime::from_seconds(240));
  EXPECT_TRUE(result.inter.running);
  result.original_site = site_of(inter_id, /*last=*/false);

  std::string endpoint;
  for (std::size_t i = 0; i < grid.site_count(); ++i) {
    if (grid.site(i).id().value() == result.original_site) {
      endpoint = grid.site(i).endpoint();
    }
  }
  EXPECT_FALSE(endpoint.empty());

  sim::FaultInjector injector{grid.sim(), &grid.network()};
  sim::FaultPlan plan;
  plan.partition_link("broker", endpoint, SimTime::from_seconds(300.0),
                      Duration::seconds(150));
  injector.arm(plan);

  // By 600 s the grace has expired behind the partition: the residents were
  // evicted, the site crossed the exclusion threshold, and the replacement
  // was matched somewhere it is allowed to go.
  grid.sim().run_until(SimTime::from_seconds(600));
  result.excluded_mid_partition =
      grid.broker().site_health().hard_excluded(SiteId{result.original_site});
  result.replacement_site = site_of(inter_id, /*last=*/true);

  // Fill the healthy site's remaining node for the rest of the run: the late
  // probe can only start if the recovered site is matchable again.
  Outcome filler;
  (void)grid.broker().submit(parse_job("Executable = \"sim\";"), UserId{3},
                             lrms::Workload::cpu(4000_s),
                             broker::GridScenario::ui_endpoint(), watch(filler));

  // Suspicion decays with a 600 s half-life: by 3000 s it is far below the
  // exclusion threshold and the original site is eligible again.
  grid.sim().run_until(SimTime::from_seconds(3000));
  result.excluded_at_probe =
      grid.broker().site_health().hard_excluded(SiteId{result.original_site});
  const JobId probe_id =
      grid.broker()
          .submit(parse_job("Executable = \"probe\";"), UserId{4},
                  lrms::Workload::cpu(300_s),
                  broker::GridScenario::ui_endpoint(), watch(result.probe))
          .value();
  grid.sim().run_until(SimTime::from_seconds(6000));

  result.late_site = site_of(probe_id, /*last=*/false);
  result.digest = kinds_digest(obs.tracer);
  result.jsonl = obs.tracer.to_jsonl();
  maybe_dump("suspected-site-avoidance", result.digest);
  return result;
}

TEST(LivenessScenarioTest, EvictionReplacementAvoidsSuspectedSiteUntilDecay) {
  const AvoidanceRun run = run_suspected_site_avoidance();
  // Mid-partition the suspected site sits above the exclusion threshold and
  // the evicted interactive job's replacement landed on the other site.
  EXPECT_TRUE(run.excluded_mid_partition);
  EXPECT_NE(run.replacement_site, run.original_site);
  EXPECT_TRUE(run.inter.completed);
  // After ~4 half-lives the exclusion has lapsed; with the healthy site kept
  // full, the probe job's only home is the recovered site — and it got it.
  EXPECT_FALSE(run.excluded_at_probe);
  EXPECT_EQ(run.late_site, run.original_site);
  EXPECT_TRUE(run.probe.completed);
}

TEST(LivenessScenarioTest, SuspectedSiteAvoidanceIsByteIdenticalAcrossRuns) {
  const AvoidanceRun a = run_suspected_site_avoidance();
  const AvoidanceRun b = run_suspected_site_avoidance();
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.digest, b.digest);
}

// ---------------------------------- scenario: spool fault during streaming

struct SpoolRun {
  std::string screen;
  std::size_t spool_rejections = 0;
  std::size_t bytes_lost = 0;
  bool agent_failed = false;
  std::uint64_t spool_full_events = 0;
  std::uint64_t spool_full_metric = 0;
  std::string jsonl;
};

/// Reliable-mode console session whose worker-node disk fails for 10 s while
/// 30 one-second ticks stream; the kSpoolFail fault flips the registered
/// DiskModel's health, so every append in the window is rejected through the
/// real spool state and retried until the disk heals.
SpoolRun run_spool_fault_stream(std::uint64_t seed) {
  sim::Simulation sim;
  sim::Network network{Rng{seed}};
  network.add_link("ui", "wn", sim::LinkSpec::campus());

  obs::Observability obs;
  SpoolRun result;
  stream::GridConsoleConfig config;
  config.mode = jdl::StreamingMode::kReliable;
  config.retry.retry_interval = 1_s;
  config.retry.max_retries = 60;
  config.obs = &obs;
  config.job = JobId{1};
  stream::GridConsole console{sim, network, config, "ui",
                              [&](std::string d) { result.screen += d; },
                              Rng{seed ^ 0x5a5a}};
  auto& agent = console.add_agent(0, "wn");

  sim::FaultInjector injector{sim, &network};
  injector.register_disk("wn-disk", &console.wn_disk(0));
  sim::FaultPlan plan;
  plan.fail_spool("wn-disk", SimTime::from_seconds(5.0),
                  Duration::seconds(10));
  injector.arm(plan);

  for (int i = 0; i < 30; ++i) {
    sim.schedule(Duration::seconds(i), [&agent, i] {
      agent.write_stdout("tick " + std::to_string(i) + "\n");
    });
  }
  sim.run();

  result.bytes_lost = agent.output_bytes_lost();
  result.agent_failed = agent.failed();
  result.spool_full_events =
      obs.tracer.count(obs::TraceEventKind::kSpoolFull);
  result.spool_full_metric = obs.metrics.counter_total("stream.spool_full");
  result.jsonl = obs.tracer.to_jsonl();
  maybe_dump("spool-fault-during-streaming", kinds_digest(obs.tracer));
  return result;
}

TEST(LivenessScenarioTest, SpoolFaultDuringStreamingRetriesWithoutLoss) {
  const SpoolRun run = run_spool_fault_stream(11);
  std::string expected;
  for (int i = 0; i < 30; ++i) expected += "tick " + std::to_string(i) + "\n";
  // Appends failed through real disk state while the fault was live…
  EXPECT_GE(run.spool_full_events, 1u);
  EXPECT_GE(run.spool_full_metric, 1u);
  // …yet the retry loop delivered every frame once the disk healed.
  EXPECT_EQ(run.screen, expected);
  EXPECT_EQ(run.bytes_lost, 0u);
  EXPECT_FALSE(run.agent_failed);
}

TEST(LivenessScenarioTest, SpoolFaultStreamIsByteIdenticalAcrossRuns) {
  const SpoolRun a = run_spool_fault_stream(7);
  const SpoolRun b = run_spool_fault_stream(7);
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.screen, b.screen);
}

/// A bounded spool also rejects appends with a healthy disk: capacity
/// pressure during an outage exercises the same retry machinery.
TEST(LivenessScenarioTest, SpoolCapacityPressureDuringPartitionLosesNothing) {
  sim::Simulation sim;
  sim::Network network{Rng{11}};
  network.add_link("ui", "wn", sim::LinkSpec::campus());

  sim::FaultInjector injector{sim, &network};
  sim::FaultPlan plan;
  plan.partition_link("ui", "wn", SimTime::from_seconds(5.0),
                      Duration::seconds(20));
  injector.arm(plan);

  std::string screen;
  stream::GridConsoleConfig config;
  config.mode = jdl::StreamingMode::kReliable;
  config.retry.retry_interval = 1_s;
  config.retry.max_retries = 60;
  // Room for roughly two frames: the partition backlog overflows it.
  config.retry.spool_capacity_bytes = 16;
  stream::GridConsole console{sim, network, config, "ui",
                              [&](std::string d) { screen += d; },
                              Rng{11 ^ 0x5a5a}};
  auto& agent = console.add_agent(0, "wn");
  for (int i = 0; i < 30; ++i) {
    sim.schedule(Duration::seconds(i), [&agent, i] {
      agent.write_stdout("tick " + std::to_string(i) + "\n");
    });
  }
  sim.run();

  std::string expected;
  for (int i = 0; i < 30; ++i) expected += "tick " + std::to_string(i) + "\n";
  EXPECT_EQ(screen, expected);
  EXPECT_EQ(agent.output_bytes_lost(), 0u);
  EXPECT_FALSE(agent.failed());
}

// ----------------------- fast-mode wedge: dropped frames stay accountable --

/// Broker-free victim resolution for pure stream tests: the DSL target names
/// one console agent directly, so fault plans drive stream scenarios through
/// sim::install_victim_handlers without a grid or a FaultBridge.
class ConsoleAgentResolver final : public sim::FaultVictimResolver {
public:
  ConsoleAgentResolver(std::string name, stream::ConsoleAgent& agent)
      : name_{std::move(name)}, agent_{agent} {}

  bool set_agent_wedged(const std::string& target, bool wedged) override {
    if (target != name_) return false;
    agent_.set_wedged(wedged);
    return true;
  }
  bool crash_agent(const std::string&) override { return false; }
  bool set_node_failed(const std::string&, bool) override { return false; }

private:
  std::string name_;
  stream::ConsoleAgent& agent_;
};

TEST(LivenessScenarioTest, FastModeWedgeDropsFramesVisiblyOnShadow) {
  sim::Simulation sim;
  sim::Network network{Rng{11}};
  network.add_link("ui", "wn", sim::LinkSpec::campus());

  obs::Observability obs;
  std::string screen;
  stream::GridConsoleConfig config;
  config.mode = jdl::StreamingMode::kFast;
  config.obs = &obs;
  config.job = JobId{1};
  stream::GridConsole console{sim, network, config, "ui",
                              [&](std::string d) { screen += d; },
                              Rng{11 ^ 0x5a5a}};
  auto& agent = console.add_agent(0, "wn");

  // The wedge stalls the agent's relay loop on a *healthy* link; the shared
  // victim-handler wiring resolves the DSL target through a stream-side
  // resolver (no grid, so no FaultBridge).
  sim::FaultInjector injector{sim, &network};
  ConsoleAgentResolver resolver{"console-agent", agent};
  sim::install_victim_handlers(injector, resolver);
  sim::FaultPlan plan;
  plan.wedge_agent("console-agent", SimTime::from_seconds(5.0),
                   Duration::seconds(10));
  injector.arm(plan);

  for (int i = 0; i < 30; ++i) {
    sim.schedule(Duration::seconds(i), [&agent, i] {
      agent.write_stdout("tick " + std::to_string(i) + "\n");
    });
  }
  sim.run();

  // Frames flushed during the wedge were dropped and counted on the agent…
  EXPECT_GT(agent.frames_dropped(), 0u);
  EXPECT_GT(agent.output_bytes_lost(), 0u);
  // …and the post-unwedge reconnect report made the loss visible on the
  // shadow's snapshot counters, exactly like a link outage would.
  EXPECT_EQ(console.shadow().frames_dropped(), agent.frames_dropped());
  EXPECT_GE(console.shadow().drop_reports(), 1u);
  EXPECT_EQ(obs.metrics.counter_total("stream.frames_dropped"),
            agent.frames_dropped());
  EXPECT_GE(obs.tracer.count(obs::TraceEventKind::kFrameDropped), 1u);
}

// ----------------------------------------------------------------- goldens --

// Pinned from the first deterministic run (CG_DUMP_DIGESTS=1); the fixed
// scenario seed (20060915) makes these exact. A change here means the
// supervision/eviction event sequence changed and must be reviewed.
// Wedged agent, healthy link: the echo path alone (not one heartbeat_miss)
// drives suspicion, eviction, resubmission, and eventual restoration.
constexpr std::string_view kWedgedAgentGolden = R"(liveness_miss
liveness_miss
liveness_miss
agent_suspected
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
job_evicted(j4)
resubmitted(j4)
job_evicted(j1)
resubmitted(j1)
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
agent_restored
completed(j4)
completed(j1)
)";

// Liveness-echo blackhole: the kMsgDrop message fault reproduces the wedge's
// signature — echo-only suspicion with zero heartbeat misses — through the
// typed delivery path. Pinned below after the first deterministic run.
constexpr std::string_view kEchoBlackholeGolden = R"(liveness_miss
liveness_miss
liveness_miss
agent_suspected
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
job_evicted(j4)
resubmitted(j4)
job_evicted(j1)
resubmitted(j1)
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
liveness_miss
agent_restored
completed(j4)
completed(j1)
)";

// Partition healed inside the grace: suspicion but no job_evicted anywhere.
constexpr std::string_view kPartitionWithinGraceGolden = R"(heartbeat_miss
heartbeat_miss
liveness_miss
heartbeat_miss
agent_suspected
liveness_miss
heartbeat_miss
liveness_miss
liveness_miss
agent_restored
completed(j4)
completed(j1)
)";

// Partition past the grace: residents evicted and resubmitted mid-partition.
// SiteHealth hard-excludes the partitioned site (suspicion + eviction push it
// past the exclusion threshold), so the replacement agent provably lands on
// the *other* site: exactly one agent_suspected / agent_restored pair, where
// before suspicion-aware placement the replacement was re-suspected on the
// still-partitioned site (two cycles).
constexpr std::string_view kPartitionPastGraceGolden = R"(heartbeat_miss
heartbeat_miss
liveness_miss
heartbeat_miss
agent_suspected
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
job_evicted(j4)
resubmitted(j4)
job_evicted(j1)
resubmitted(j1)
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
liveness_miss
agent_restored
completed(j4)
completed(j1)
)";

// Suspected-site avoidance: one suspicion cycle (the replacement lands on
// the healthy site, so no re-suspicion), then the filler (j10) and the
// post-recovery probe (j13) complete alongside the original pair.
constexpr std::string_view kSuspectedSiteAvoidanceGolden = R"(heartbeat_miss
heartbeat_miss
liveness_miss
heartbeat_miss
agent_suspected
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
job_evicted(j4)
resubmitted(j4)
job_evicted(j1)
resubmitted(j1)
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
heartbeat_miss
liveness_miss
liveness_miss
agent_restored
completed(j4)
completed(j13)
completed(j1)
completed(j10)
)";

TEST(LivenessScenarioTest, WedgedAgentTraceDigestMatchesGolden) {
  EXPECT_EQ(run_wedged_agent().digest, kWedgedAgentGolden);
}

TEST(LivenessScenarioTest, EchoBlackholeTraceDigestMatchesGolden) {
  EXPECT_EQ(run_echo_blackhole().digest, kEchoBlackholeGolden);
}

TEST(LivenessScenarioTest, PartitionWithinGraceTraceDigestMatchesGolden) {
  EXPECT_EQ(run_partition_within_grace().digest, kPartitionWithinGraceGolden);
}

TEST(LivenessScenarioTest, PartitionPastGraceTraceDigestMatchesGolden) {
  EXPECT_EQ(run_partition_past_grace().digest, kPartitionPastGraceGolden);
}

TEST(LivenessScenarioTest, SuspectedSiteAvoidanceTraceDigestMatchesGolden) {
  EXPECT_EQ(run_suspected_site_avoidance().digest,
            kSuspectedSiteAvoidanceGolden);
}

}  // namespace
}  // namespace cg

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--list-scenarios") {
      for (const cg::ScenarioInfo& scenario : cg::kScenarios) {
        std::cout << scenario.name << "\t" << scenario.description << "\n";
      }
      return 0;
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
