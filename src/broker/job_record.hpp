// Broker-side job bookkeeping: lifecycle states and the phase timestamps
// that the Table I evaluation reports (resource discovery, resource
// selection, submission-to-first-activity).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "jdl/job_description.hpp"
#include "lrms/workload.hpp"
#include "util/expected.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace cg::broker {

enum class JobState {
  kSubmitted,    ///< accepted by the broker, not yet scheduled
  kDiscovery,    ///< querying the information system index
  kSelection,    ///< contacting candidate sites for fresh state
  kDispatching,  ///< submitting to a gatekeeper or glide-in agent
  kQueuedLocal,  ///< sitting in a site's LRMS queue (batch path)
  kQueuedBroker, ///< waiting inside the broker for a free machine
  kRunning,
  kCompleted,
  kFailed,
  kRejected,     ///< refused by fair-share policy
};

[[nodiscard]] std::string to_string(JobState state);
[[nodiscard]] bool is_terminal(JobState state);

/// How the job was finally placed (Table I's row classes).
enum class PlacementKind {
  kNone,
  kIdleMachine,     ///< interactive exclusive / direct placement
  kInteractiveVm,   ///< glide-in interactive-vm (shared mode)
  kNewAgent,        ///< agent + job submitted together
  kLocalQueue,      ///< batch job queued at a site
};

[[nodiscard]] std::string to_string(PlacementKind kind);

struct JobTimestamps {
  SimTime submitted;
  std::optional<SimTime> discovery_done;
  std::optional<SimTime> selection_done;
  std::optional<SimTime> dispatched;
  std::optional<SimTime> running;
  std::optional<SimTime> completed;
};

struct JobRecord;

struct JobCallbacks {
  std::function<void(const JobRecord&)> on_state_change;
  std::function<void(const JobRecord&)> on_running;
  std::function<void(const JobRecord&)> on_complete;
  std::function<void(const JobRecord&, const Error&)> on_failed;
  /// Observes every executed workload phase with its measured (dilated)
  /// duration — the Fig. 8 instrumentation point. For parallel jobs the
  /// observer sees phases from every subjob.
  std::function<void(const lrms::Phase&, Duration measured)> phase_observer;
};

/// One subjob's placement (parallel jobs have several).
struct SubJobRecord {
  SubJobId id;
  int rank = 0;
  SiteId site;
  std::optional<AgentId> agent;  ///< set when running on an interactive-vm
  /// Grid-wide unique id under which this subjob is known to the site LRMS.
  JobId lrms_job_id;
  bool started = false;
  bool completed = false;
};

struct JobRecord {
  JobId id;
  UserId user;
  jdl::JobDescription description;
  lrms::Workload workload;
  std::string submitter_endpoint;
  JobState state = JobState::kSubmitted;
  PlacementKind placement = PlacementKind::kNone;
  JobTimestamps timestamps;
  std::vector<SubJobRecord> subjobs;
  int resubmissions = 0;
  std::optional<Error> last_error;

  /// The execution site for sequential jobs (first subjob's site).
  [[nodiscard]] std::optional<SiteId> site() const {
    if (subjobs.empty() || !subjobs.front().site.valid()) return std::nullopt;
    return subjobs.front().site;
  }
};

}  // namespace cg::broker
