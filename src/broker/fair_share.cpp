#include "broker/fair_share.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cg::broker {

double application_factor_batch() {
  return 1.0;
}

double application_factor_interactive(int performance_loss) {
  // "Interactive jobs worsen the priority faster": a_f = 2 - PL/100, so a
  // fully greedy interactive job (PL = 0) costs twice a batch job.
  return 2.0 - static_cast<double>(performance_loss) / 100.0;
}

double application_factor_yielding_batch(int performance_loss) {
  // A batch job that yielded its machine is charged only for the share it
  // retains.
  return static_cast<double>(performance_loss) / 100.0;
}

FairShare::FairShare(sim::Simulation& sim, FairShareConfig config)
    : sim_{sim}, config_{config} {
  if (config_.update_interval <= Duration::zero()) {
    throw std::invalid_argument{"FairShare: update_interval must be positive"};
  }
  if (config_.half_life <= Duration::zero()) {
    throw std::invalid_argument{"FairShare: half_life must be positive"};
  }
  if (config_.total_resources < 1) {
    throw std::invalid_argument{"FairShare: total_resources must be >= 1"};
  }
}

FairShare::~FairShare() = default;

void FairShare::start() {
  if (started_) return;
  started_ = true;
  schedule_update();
}

void FairShare::stop() {
  started_ = false;
  timer_.reset();
}

void FairShare::set_total_resources(int total) {
  if (total < 1) throw std::invalid_argument{"total_resources must be >= 1"};
  config_.total_resources = total;
}

void FairShare::schedule_update() {
  // Daemon event: accounting ticks must not keep the simulation alive.
  timer_.rearm(sim_, sim_.schedule_daemon(config_.update_interval, [this] {
    if (!started_) return;
    force_update();
    schedule_update();
  }));
}

double FairShare::beta() const {
  const double ratio = config_.update_interval.to_seconds() /
                       config_.half_life.to_seconds();
  return std::pow(0.5, ratio);
}

void FairShare::force_update() {
  const double b = beta();
  // Users with running jobs accumulate; idle users decay toward zero.
  // "User priorities are updated for each user whose current priority is
  // different (worse) than the initial priority" — plus active users.
  std::map<UserId, double> usage;
  for (const auto& [job, rj] : running_) {
    usage[rj.user] += rj.af * static_cast<double>(rj.nodes) /
                      static_cast<double>(config_.total_resources);
  }
  for (const auto& [user, used] : usage) {
    auto [it, inserted] = priorities_.try_emplace(user, 0.0);
    it->second = b * it->second + (1.0 - b) * used;
  }
  for (auto it = priorities_.begin(); it != priorities_.end();) {
    if (!usage.contains(it->first)) {
      it->second *= b;  // pure decay
      if (it->second < 1e-12) {
        it = priorities_.erase(it);  // fully restored credits
        continue;
      }
    }
    ++it;
  }
}

void FairShare::job_started(UserId user, JobId job, double af, int nodes) {
  if (!user.valid() || !job.valid()) {
    throw std::invalid_argument{"FairShare::job_started: invalid ids"};
  }
  if (af < 0.0 || nodes < 1) {
    throw std::invalid_argument{"FairShare::job_started: bad af/nodes"};
  }
  running_.insert_or_assign(job, RunningJob{user, af, nodes});
}

void FairShare::job_finished(JobId job) {
  running_.erase(job);
}

void FairShare::set_application_factor(JobId job, double af) {
  const auto it = running_.find(job);
  if (it == running_.end()) return;
  it->second.af = af;
}

double FairShare::priority(UserId user) const {
  const auto it = priorities_.find(user);
  return it != priorities_.end() ? it->second : 0.0;
}

double FairShare::instantaneous_usage(UserId user) const {
  double total = 0.0;
  for (const auto& [job, rj] : running_) {
    if (rj.user == user) {
      total += rj.af * static_cast<double>(rj.nodes) /
               static_cast<double>(config_.total_resources);
    }
  }
  return total;
}

std::vector<UserId> FairShare::users_by_priority() const {
  std::vector<UserId> users;
  users.reserve(priorities_.size());
  for (const auto& [user, p] : priorities_) users.push_back(user);
  std::stable_sort(users.begin(), users.end(), [this](UserId a, UserId b) {
    return priority(a) < priority(b);
  });
  return users;
}

bool FairShare::is_worst(UserId user, double epsilon) const {
  const double p = priority(user);
  if (p <= epsilon) return false;
  for (const auto& [other, op] : priorities_) {
    if (other != user && op >= p) return false;
  }
  return true;
}

}  // namespace cg::broker
