// Globus-MDS-like information system. Two query paths mirror the paper's
// Section 6.1 timing breakdown:
//   - index query ("resource discovery"): returns the last *published* record
//     for every site; one round trip to the (remote) index, ~0.5 s;
//   - direct site query ("resource selection"): contacts a site's GRIS for
//     fresh state; per-site latency, ~3 s total across 20 European sites.
// Publication is periodic, so index data is stale by up to one period — the
// reason the broker must re-contact candidate sites before committing.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "infosys/site_record.hpp"
#include "sim/simulation.hpp"

namespace cg::infosys {

struct InformationSystemConfig {
  /// Round-trip to the index (paper: index in Germany, broker in Spain).
  Duration index_query_latency = Duration::millis(500);
  /// Default round-trip for a direct (fresh) site query.
  Duration default_site_query_latency = Duration::millis(150);
};

class InformationSystem {
public:
  /// Supplies a site's live state when the IS (or broker) asks directly.
  using FreshProvider = std::function<SiteRecord()>;
  using IndexCallback = std::function<void(std::vector<SiteRecord>)>;
  using SiteCallback = std::function<void(std::optional<SiteRecord>)>;

  InformationSystem(sim::Simulation& sim, InformationSystemConfig config = {});

  /// Registers a site. `provider` answers direct queries with live state;
  /// `site_query_latency` overrides the default per-site round trip.
  void register_site(const SiteStaticInfo& info, FreshProvider provider,
                     std::optional<Duration> site_query_latency = std::nullopt);
  void unregister_site(SiteId id);

  /// Publishes a snapshot into the index (what GRIS pushes to GIIS).
  void publish(const SiteRecord& record);

  /// Publishes a fresh snapshot from the registered provider.
  void publish_fresh(SiteId id);

  /// Starts periodic publication for a site (every `period`, first at +period).
  void start_periodic_publication(SiteId id, Duration period);

  /// Asynchronous index query; callback fires after the index latency with
  /// the (possibly stale) published records.
  void query_index(IndexCallback callback);

  /// Asynchronous fresh query of a single site; nullopt if unknown.
  void query_site(SiteId id, SiteCallback callback);

  /// Synchronous accessors for tests and local bookkeeping (no latency).
  [[nodiscard]] std::optional<SiteRecord> published_record(SiteId id) const;
  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }
  [[nodiscard]] const InformationSystemConfig& config() const { return config_; }

  /// Total query counts (experiment bookkeeping).
  [[nodiscard]] std::size_t index_queries() const { return index_queries_; }
  [[nodiscard]] std::size_t site_queries() const { return site_queries_; }

private:
  struct SiteEntry {
    SiteStaticInfo static_info;
    FreshProvider provider;
    Duration query_latency;
    std::optional<SiteRecord> published;
    bool periodic = false;
    Duration period = Duration::zero();
  };

  void schedule_publication(SiteId id);

  sim::Simulation& sim_;
  InformationSystemConfig config_;
  std::map<SiteId, SiteEntry> sites_;
  std::size_t index_queries_ = 0;
  std::size_t site_queries_ = 0;
};

}  // namespace cg::infosys
