// Expression AST for the Job Description Language. Expressions are stored
// unevaluated inside a ClassAd (so `Requirements` can reference `other.*`
// attributes of a machine ad at matchmaking time) and evaluated on demand.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "jdl/value.hpp"

namespace cg::jdl {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class UnaryOp { kNot, kNeg };
enum class BinaryOp {
  kAnd, kOr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
};

/// Which ad a scoped reference resolves in.
enum class Scope { kSelf, kOther };

struct Expr {
  struct Literal {
    Value value;
  };
  struct AttrRef {
    Scope scope = Scope::kSelf;
    bool explicit_scope = false;  ///< written as self.X / other.X
    std::string name;
  };
  struct Unary {
    UnaryOp op;
    ExprPtr operand;
  };
  struct Binary {
    BinaryOp op;
    ExprPtr lhs;
    ExprPtr rhs;
  };
  struct Ternary {
    ExprPtr cond;
    ExprPtr if_true;
    ExprPtr if_false;
  };
  struct ListExpr {
    std::vector<ExprPtr> items;
  };
  struct Call {
    std::string function;  ///< lowercase
    std::vector<ExprPtr> args;
  };

  std::variant<Literal, AttrRef, Unary, Binary, Ternary, ListExpr, Call> node;
};

[[nodiscard]] ExprPtr make_literal(Value v);
[[nodiscard]] ExprPtr make_attr_ref(Scope scope, bool explicit_scope, std::string name);
[[nodiscard]] ExprPtr make_unary(UnaryOp op, ExprPtr operand);
[[nodiscard]] ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
[[nodiscard]] ExprPtr make_ternary(ExprPtr cond, ExprPtr t, ExprPtr f);
[[nodiscard]] ExprPtr make_list(std::vector<ExprPtr> items);
[[nodiscard]] ExprPtr make_call(std::string function, std::vector<ExprPtr> args);

/// Renders the expression in JDL source syntax (fully parenthesized).
[[nodiscard]] std::string to_source(const Expr& expr);

}  // namespace cg::jdl
