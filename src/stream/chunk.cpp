#include "stream/chunk.hpp"

#include <cstring>
#include <new>
#include <stdexcept>

namespace cg::stream {

namespace detail {

void chunk_unref(ChunkHeader* chunk) {
  if (chunk != nullptr && --chunk->refs == 0) chunk->pool->release(chunk);
}

}  // namespace detail

ChunkPool::ChunkPool(std::size_t slab_bytes) : slab_bytes_{slab_bytes} {
  if (slab_bytes_ == 0) {
    throw std::invalid_argument{"ChunkPool: slab_bytes must be > 0"};
  }
  if (slab_bytes_ > UINT32_MAX) {
    throw std::invalid_argument{"ChunkPool: slab_bytes exceeds chunk limit"};
  }
}

ChunkPool::~ChunkPool() {
  // Chunks reference the pool; by construction (FlushBuffers and in-flight
  // ChunkRefs are torn down first) everything is back on the free list here.
  for (detail::ChunkHeader* slab : slabs_) ::operator delete(slab);
}

ChunkPool& ChunkPool::shared() {
  static ChunkPool pool;
  return pool;
}

detail::ChunkHeader* ChunkPool::allocate(std::size_t payload_bytes) {
  void* raw = ::operator new(sizeof(detail::ChunkHeader) + payload_bytes);
  return ::new (raw) detail::ChunkHeader{
      this, 1, 0, static_cast<std::uint32_t>(payload_bytes)};
}

detail::ChunkHeader* ChunkPool::acquire(std::size_t min_bytes) {
  detail::ChunkHeader* chunk;
  if (min_bytes <= slab_bytes_) {
    if (!free_.empty()) {
      chunk = free_.back();
      free_.pop_back();
      chunk->refs = 1;
      chunk->write_pos = 0;
    } else {
      chunk = allocate(slab_bytes_);
      slabs_.push_back(chunk);
      // Every slab may be on the free list at once; reserving here keeps
      // release() allocation-free however the in-use count fluctuates.
      free_.reserve(slabs_.size());
      metrics_.allocated.set(static_cast<double>(slabs_.size()));
    }
  } else {
    if (min_bytes > UINT32_MAX) {
      throw std::invalid_argument{"ChunkPool: chunk request too large"};
    }
    chunk = allocate(min_bytes);
    ++oversize_;
    metrics_.oversize_allocs.inc();
  }
  ++in_use_;
  metrics_.in_use.set(static_cast<double>(in_use_));
  if (in_use_ > high_water_) {
    high_water_ = in_use_;
    metrics_.high_water.set(static_cast<double>(high_water_));
  }
  return chunk;
}

void ChunkPool::release(detail::ChunkHeader* chunk) {
  --in_use_;
  metrics_.in_use.set(static_cast<double>(in_use_));
  if (chunk->capacity == slab_bytes_) {
    free_.push_back(chunk);
  } else {
    ::operator delete(chunk);  // oversize one-off (header is trivial)
  }
}

void ChunkPool::set_metrics(obs::MetricsRegistry* metrics, obs::LabelSet labels) {
  metrics_ = MetricHandles{};
  if (metrics == nullptr) return;
  metrics_.in_use = metrics->gauge_handle("stream.chunk_pool.in_use", labels);
  metrics_.allocated = metrics->gauge_handle("stream.chunk_pool.allocated", labels);
  metrics_.high_water = metrics->gauge_handle("stream.chunk_pool.high_water", labels);
  metrics_.oversize_allocs =
      metrics->counter_handle("stream.chunk_pool.oversize_allocs", std::move(labels));
  metrics_.in_use.set(static_cast<double>(in_use_));
  metrics_.allocated.set(static_cast<double>(slabs_.size()));
  metrics_.high_water.set(static_cast<double>(high_water_));
}

ChunkRef ChunkRef::copy_of(std::string_view data, ChunkPool& pool) {
  ChunkRef ref;
  if (data.size() <= kInlineCapacity) {
    ref.inline_.len = static_cast<std::uint8_t>(data.size());
    if (!data.empty()) std::memcpy(ref.inline_.bytes, data.data(), data.size());
    return ref;
  }
  detail::ChunkHeader* chunk = pool.acquire(data.size());
  std::memcpy(chunk->data(), data.data(), data.size());
  chunk->write_pos = static_cast<std::uint32_t>(data.size());
  ref.chunk_ = chunk;  // adopts the acquire() reference
  ref.pooled_.offset = 0;
  ref.pooled_.length = static_cast<std::uint32_t>(data.size());
  return ref;
}

}  // namespace cg::stream
