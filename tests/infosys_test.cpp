// Information-system tests: publication, staleness, query latencies,
// lifecycle edge cases.
#include <gtest/gtest.h>

#include "infosys/information_system.hpp"

namespace cg::infosys {
namespace {

using namespace cg::literals;

class InfosysFixture : public ::testing::Test {
protected:
  SiteStaticInfo make_site(std::uint64_t id, int nodes) {
    SiteStaticInfo info;
    info.id = SiteId{id};
    info.name = "site" + std::to_string(id);
    info.worker_nodes = nodes;
    info.cpus_per_node = 1;
    return info;
  }

  sim::Simulation sim;
};

TEST_F(InfosysFixture, IndexQueryPaysConfiguredLatency) {
  InformationSystemConfig config;
  config.index_query_latency = 500_ms;
  InformationSystem is{sim, config};
  is.register_site(make_site(1, 4), [] {
    SiteRecord r;
    r.static_info.id = SiteId{1};
    r.dynamic_info.free_cpus = 4;
    return r;
  });
  is.publish_fresh(SiteId{1});

  SimTime answered;
  std::vector<SiteRecord> result;
  is.query_index([&](std::vector<SiteRecord> records) {
    answered = sim.now();
    result = std::move(records);
  });
  sim.run();
  EXPECT_EQ(answered.to_seconds(), 0.5);  // the paper's ~0.5 s discovery
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].dynamic_info.free_cpus, 4);
}

TEST_F(InfosysFixture, IndexServesStaleDataUntilNextPublication) {
  InformationSystem is{sim};
  int free_cpus = 4;
  is.register_site(make_site(1, 4), [&] {
    SiteRecord r;
    r.static_info.id = SiteId{1};
    r.dynamic_info.free_cpus = free_cpus;
    return r;
  });
  is.publish_fresh(SiteId{1});
  free_cpus = 0;  // the site filled up, but nothing was re-published

  int seen = -1;
  is.query_index([&](std::vector<SiteRecord> records) {
    seen = records.at(0).dynamic_info.free_cpus;
  });
  sim.run();
  EXPECT_EQ(seen, 4) << "index must serve the stale published value";

  // Direct site query sees the truth.
  int fresh_seen = -1;
  is.query_site(SiteId{1}, [&](std::optional<SiteRecord> r) {
    ASSERT_TRUE(r.has_value());
    fresh_seen = r->dynamic_info.free_cpus;
  });
  sim.run();
  EXPECT_EQ(fresh_seen, 0);
}

TEST_F(InfosysFixture, PeriodicPublicationRefreshes) {
  InformationSystem is{sim};
  int free_cpus = 4;
  is.register_site(make_site(1, 4), [&] {
    SiteRecord r;
    r.static_info.id = SiteId{1};
    r.dynamic_info.free_cpus = free_cpus;
    return r;
  });
  is.start_periodic_publication(SiteId{1}, 30_s);
  EXPECT_EQ(is.published_record(SiteId{1})->dynamic_info.free_cpus, 4);

  free_cpus = 1;
  sim.run_until(SimTime::from_seconds(29));
  EXPECT_EQ(is.published_record(SiteId{1})->dynamic_info.free_cpus, 4);
  sim.run_until(SimTime::from_seconds(31));
  EXPECT_EQ(is.published_record(SiteId{1})->dynamic_info.free_cpus, 1);
  EXPECT_EQ(is.published_record(SiteId{1})->sampled_at.to_seconds(), 30.0);
}

TEST_F(InfosysFixture, SiteQueryLatencyPerSiteOverride) {
  InformationSystemConfig config;
  config.default_site_query_latency = 150_ms;
  InformationSystem is{sim, config};
  is.register_site(make_site(1, 1), [] { return SiteRecord{}; });
  is.register_site(make_site(2, 1), [] { return SiteRecord{}; }, 400_ms);

  SimTime t1;
  SimTime t2;
  is.query_site(SiteId{1}, [&](auto) { t1 = sim.now(); });
  is.query_site(SiteId{2}, [&](auto) { t2 = sim.now(); });
  sim.run();
  EXPECT_EQ(t1.to_seconds(), 0.15);
  EXPECT_EQ(t2.to_seconds(), 0.40);
}

TEST_F(InfosysFixture, QueryUnknownSiteYieldsNullopt) {
  InformationSystem is{sim};
  bool called = false;
  is.query_site(SiteId{99}, [&](std::optional<SiteRecord> r) {
    called = true;
    EXPECT_FALSE(r.has_value());
  });
  sim.run();
  EXPECT_TRUE(called);
}

TEST_F(InfosysFixture, UnregisterDuringInFlightQueryIsSafe) {
  InformationSystem is{sim};
  is.register_site(make_site(1, 1), [] { return SiteRecord{}; });
  bool got_nullopt = false;
  is.query_site(SiteId{1}, [&](std::optional<SiteRecord> r) {
    got_nullopt = !r.has_value();
  });
  is.unregister_site(SiteId{1});
  sim.run();
  EXPECT_TRUE(got_nullopt);
}

TEST_F(InfosysFixture, UnregisterStopsPeriodicPublication) {
  InformationSystem is{sim};
  int publish_count = 0;
  is.register_site(make_site(1, 1), [&] {
    ++publish_count;
    return SiteRecord{};
  });
  is.start_periodic_publication(SiteId{1}, 10_s);
  sim.run_until(SimTime::from_seconds(25));
  is.unregister_site(SiteId{1});
  const int count_at_unregister = publish_count;
  sim.run_until(SimTime::from_seconds(100));
  EXPECT_EQ(publish_count, count_at_unregister);
}

TEST_F(InfosysFixture, QueryCountsTracked) {
  InformationSystem is{sim};
  is.register_site(make_site(1, 1), [] { return SiteRecord{}; });
  is.query_index([](auto) {});
  is.query_index([](auto) {});
  is.query_site(SiteId{1}, [](auto) {});
  sim.run();
  EXPECT_EQ(is.index_queries(), 2u);
  EXPECT_EQ(is.site_queries(), 1u);
}

TEST_F(InfosysFixture, RegisterValidation) {
  InformationSystem is{sim};
  EXPECT_THROW(is.register_site(SiteStaticInfo{}, [] { return SiteRecord{}; }),
               std::invalid_argument);
  EXPECT_THROW(is.register_site(make_site(1, 1), nullptr), std::invalid_argument);
}

TEST(SiteRecordTest, ToClassAdExportsMatchmakingAttributes) {
  SiteRecord r;
  r.static_info.id = SiteId{7};
  r.static_info.name = "ifca";
  r.static_info.arch = "i686";
  r.static_info.op_sys = "linux-2.4";
  r.static_info.worker_nodes = 10;
  r.static_info.cpus_per_node = 2;
  r.static_info.memory_mb_per_node = 2048;
  r.static_info.storage_gb = 600;
  r.dynamic_info.free_cpus = 5;
  r.dynamic_info.queued_jobs = 3;
  r.dynamic_info.free_interactive_vms = 2;

  const jdl::ClassAd ad = r.to_classad();
  EXPECT_EQ(ad.get_string("Name"), "ifca");
  EXPECT_EQ(ad.get_string("Arch"), "i686");
  EXPECT_EQ(ad.get_int("TotalCPUs"), 20);
  EXPECT_EQ(ad.get_int("FreeCPUs"), 5);
  EXPECT_EQ(ad.get_int("QueuedJobs"), 3);
  EXPECT_EQ(ad.get_int("FreeInteractiveVMs"), 2);
  EXPECT_EQ(ad.get_int("MemoryMB"), 2048);
}

}  // namespace
}  // namespace cg::infosys
