#!/usr/bin/env python3
"""Layering gate for the control plane.

Every simulated control-plane exchange must go through net::ControlBus —
no layer above src/net may touch sim::Network links directly or hand-roll
channel-latency delivery schedules. This script greps the source tree for
the patterns the bus refactor eliminated and fails readably if any creep
back in.

Allowed layers:
  * src/net   — the bus itself (the one place link latency is applied)
  * src/sim   — owns Network/Link; naturally calls its own API
  * src/stream — the data plane: streaming deliberately models transfers
    on raw links (spool/retry semantics the control bus does not carry)

Usage:
    check_layering.py [repo_root]

Exit status: 0 when the layering holds, 1 when a violation is found,
2 when the tree cannot be scanned.
"""

import pathlib
import re
import sys

# Directories (relative to src/) that may touch sim::Network directly.
ALLOWED_LINK_LAYERS = ("net", "sim", "stream")

# Raw link access: any ".link(" call on a network object. The control bus
# is the only component above src/sim that may resolve links.
RAW_LINK = re.compile(r"\bnetwork_?(\(\))?\s*\.\s*link\s*\(")

# Raw partition checks: consulting a link's failure schedule by hand
# instead of SendOptions::drop_when_down / ControlBus::probe.
RAW_IS_UP = re.compile(r"\.\s*is_up\s*\(")

# Hand-rolled delivery delays: scheduling a callback after a channel
# latency is exactly what ControlBus::send() centralizes.
MANUAL_DELAY = re.compile(r"schedule\s*\([^;]*channel_latency")


def allowed(rel: pathlib.PurePosixPath) -> bool:
    return len(rel.parts) >= 2 and rel.parts[1] in ALLOWED_LINK_LAYERS


def scan(root: pathlib.Path) -> list[str]:
    violations = []
    src = root / "src"
    if not src.is_dir():
        print(f"error: {src} is not a directory", file=sys.stderr)
        sys.exit(2)
    for path in sorted(src.rglob("*")):
        if path.suffix not in (".hpp", ".cpp"):
            continue
        rel = pathlib.PurePosixPath(path.relative_to(root).as_posix())
        if allowed(rel):
            continue
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            stripped = line.split("//")[0]
            for pattern, why in (
                (RAW_LINK, "raw Network::link() access (route via ControlBus)"),
                (RAW_IS_UP, "raw is_up() check (use drop_when_down or probe())"),
                (MANUAL_DELAY, "hand-rolled channel-latency schedule "
                               "(use ControlBus::send options)"),
            ):
                if pattern.search(stripped):
                    violations.append(f"{rel}:{lineno}: {why}\n    {line.strip()}")
    return violations


def main() -> int:
    root = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(".")
    violations = scan(root.resolve())
    if violations:
        print("[FAIL] control-plane layering violations:")
        for v in violations:
            print("  " + v)
        print(
            f"\n{len(violations)} violation(s). All broker/agent/site "
            "traffic must flow through net::ControlBus (docs/protocol.md)."
        )
        return 1
    print("[ok]   no raw network access outside src/net (data plane exempt)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
