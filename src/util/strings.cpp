#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace cg {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out{s};
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  return std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
    return std::tolower(static_cast<unsigned char>(x)) ==
           std::tolower(static_cast<unsigned char>(y));
  });
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace cg
