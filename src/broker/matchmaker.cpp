#include "broker/matchmaker.hpp"

#include <algorithm>

#include "jdl/eval.hpp"

namespace cg::broker {

std::vector<Candidate> Matchmaker::filter(
    const jdl::JobDescription& job, const std::vector<infosys::SiteRecord>& records,
    const LeaseManager& leases, int needed_cpus) const {
  std::vector<Candidate> out;
  for (const auto& record : records) {
    const int effective =
        record.dynamic_info.free_cpus - leases.leased_cpus(record.static_info.id);
    if (effective < needed_cpus) continue;

    jdl::ClassAd machine = record.to_classad();
    machine.set_int("FreeCPUs", effective);  // leases shadow the raw count
    if (!jdl::symmetric_match(job.ad(), machine)) continue;

    Candidate c;
    c.record = record;
    c.effective_free_cpus = effective;
    c.rank = rank_of(job, machine);
    out.push_back(std::move(c));
  }
  return out;
}

double Matchmaker::rank_of(const jdl::JobDescription& job,
                           const jdl::ClassAd& machine) const {
  const jdl::ExprPtr rank_expr = job.rank();
  if (rank_expr) {
    jdl::EvalContext ctx;
    ctx.self = &job.ad();
    ctx.other = &machine;
    const jdl::Value v = jdl::evaluate(*rank_expr, ctx);
    if (v.is_number()) return v.as_number();
    return 0.0;  // non-numeric rank: neutral
  }
  // Default rank: prefer emptier sites.
  const auto free = machine.get_int("FreeCPUs");
  return free ? static_cast<double>(*free) : 0.0;
}

std::optional<SiteId> Matchmaker::select(const std::vector<Candidate>& candidates,
                                         Rng& rng) const {
  if (candidates.empty()) return std::nullopt;
  const double best =
      std::max_element(candidates.begin(), candidates.end(),
                       [](const Candidate& a, const Candidate& b) {
                         return a.rank < b.rank;
                       })
          ->rank;
  const double margin = std::abs(best) * config_.rank_tie_margin + 1e-12;
  std::vector<const Candidate*> ties;
  for (const auto& c : candidates) {
    if (c.rank >= best - margin) ties.push_back(&c);
  }
  const Candidate* chosen =
      config_.randomize_ties ? ties[rng.pick_index(ties.size())] : ties.front();
  return chosen->record.static_info.id;
}

}  // namespace cg::broker
