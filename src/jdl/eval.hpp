// Expression evaluation against a pair of ads (self, other). Undefined
// attribute references evaluate to Undefined and flow through operators per
// ClassAd semantics; recursion through attribute references is depth-limited
// so cyclic ads cannot hang the matchmaker.
#pragma once

#include "jdl/ast.hpp"
#include "jdl/classad.hpp"

namespace cg::jdl {

/// Recursion cutoff shared by the interpreter and the compiler: any node
/// nested (or inlined through attribute references) deeper than this
/// evaluates to Undefined, so cyclic ads cannot hang the matchmaker.
inline constexpr int kMaxEvalDepth = 64;

struct EvalContext {
  const ClassAd* self = nullptr;
  const ClassAd* other = nullptr;
};

/// Evaluates `expr` in `ctx`. Never throws on malformed input: type errors
/// and unknown functions yield Undefined (matchmaking treats that as no
/// match), matching ClassAd behaviour.
[[nodiscard]] Value evaluate(const Expr& expr, const EvalContext& ctx);

/// Applies a ClassAd builtin function (name lowercase, as the parser emits)
/// to already-evaluated arguments. Unknown functions and arity/type errors
/// yield Undefined. Shared by the AST interpreter and the compiled
/// evaluator so both agree on builtin semantics.
[[nodiscard]] Value call_function(const std::string& function,
                                  const std::vector<Value>& args);

/// Convenience: evaluates an attribute of `self` (nullptr-safe).
[[nodiscard]] Value evaluate_attr(const ClassAd& self, std::string_view name,
                                  const ClassAd* other = nullptr);

/// The symmetric match test: both ads' Requirements must evaluate to true
/// with the opposite ad bound to `other`. An absent Requirements counts as
/// unconditionally true (a machine with no constraints accepts any job).
[[nodiscard]] bool symmetric_match(const ClassAd& left, const ClassAd& right);

}  // namespace cg::jdl
