// Reproduces Table I: response time (seconds) for job submission by method.
//
//   Method            Discovery  Selection  Submission(campus)  Submission(IFCA)
//   Glogin            hand-made  hand-made  16.43               20.12
//   Idle (exclusive)  0.5        3          17.2                —
//   Virtual machine   combined local        6.79                —
//   Job + agent       0.5        3          29.3                —
//
// "Submission" is the paper's response time: from the instant the job is
// handed to the remote gatekeeper (or glide-in agent) until the first output
// arrives on the user machine. 100 jobs per method, averaged. Constants are
// calibrated to 2006-era Globus 2.4 + PBS behaviour (GSI handshakes, GRAM
// jobmanager processing, LRMS scheduling cycles); the claim under test is
// the *ordering* and the >2x advantage of the shared-VM path, not absolute
// seconds.
#include <iostream>
#include <optional>

#include "grid/grid.hpp"
#include "stream/channel_model.hpp"
#include "stream/grid_console.hpp"
#include "util/stats.hpp"

namespace {

using namespace cg;
using namespace cg::literals;

constexpr int kJobsPerMethod = 100;
constexpr std::size_t kBannerBytes = 64;  // the application's first output

/// Calibrated 2006-era middleware constants shared by all methods.
GridConfig testbed_config(const sim::LinkSpec& link, std::uint64_t seed) {
  GridConfig config;
  config.sites = 20;  // "a set of 20 remote sites, located all over Europe"
  config.nodes_per_site = 4;
  config.site_link = link;
  config.seed = seed;
  // Discovery: index in Germany, broker in Spain, ~0.5 s round trip.
  config.infosys.index_query_latency = 500_ms;
  // Selection: fresh queries to every candidate run concurrently; the
  // slowest site's answer closes the phase at ~3 s.
  config.site_info_latency = 3_s;
  config.infosys.default_site_query_latency = 3_s;
  // Globus 2.4 GRAM: mutual GSI auth + jobmanager script processing.
  config.gatekeeper.gsi_auth_latency = Duration::millis(2500);
  config.gatekeeper.jobmanager_latency = Duration::millis(6500);
  config.gatekeeper.prepare_overhead = 400_ms;  // the 2PC premium
  // PBS scheduling iteration on the site.
  config.lrms.dispatch_latency = 6_s;
  // Glide-in: bootstrap after the carrier starts; spawn cost on a VM slot.
  config.broker.glidein.bootstrap_time = Duration::millis(4000);
  config.broker.glidein.job_start_overhead = Duration::millis(5000);
  config.broker.glidein.binary_bytes = 10u << 20;
  config.broker.agent_channel_latency = 400_ms;
  config.broker.vm_lookup_cost = 50_ms;
  config.broker.executable_bytes = 15u << 20;
  config.broker.dismiss_idle_agents = false;  // keep the warm VM pool
  return config;
}

struct PhaseTimes {
  double discovery = 0.0;
  double selection = 0.0;
  double submission = 0.0;
};

/// Measures the first-output leg: a banner written by the application as it
/// starts, shaped by the agent buffer, over the given channel spec.
double first_output_seconds(sim::Simulation& sim, sim::Network& network,
                            const std::string& site_endpoint,
                            const stream::ChannelSpec& spec, std::uint64_t seed) {
  sim::Link& link = network.link("ui", site_endpoint);
  stream::SimChannel channel{sim, link, spec, Rng{seed}};
  return channel.estimate(kBannerBytes).to_seconds();
}

/// One CrossBroker-mediated submission; returns per-phase times.
std::optional<PhaseTimes> run_broker_submission(const std::string& jdl,
                                                const sim::LinkSpec& link,
                                                std::uint64_t seed,
                                                bool preload_agent,
                                                bool warmup_shared) {
  Grid grid{testbed_config(link, seed)};
  if (preload_agent) {
    grid.broker().preload_agent(grid.site(0).id());
    grid.sim().run_until(SimTime::from_seconds(60));
  }
  (void)warmup_shared;

  auto description = jdl::JobDescription::parse(jdl);
  if (!description) {
    std::cerr << "bad jdl: " << description.error().to_string() << "\n";
    return std::nullopt;
  }

  auto job =
      grid.submit(description.value(), UserId{1}, lrms::Workload::cpu(60_s));
  if (!job) return std::nullopt;
  const auto done = job->await();
  if (!done) return std::nullopt;
  const broker::JobRecord& record = **done;
  if (!record.timestamps.running) return std::nullopt;

  PhaseTimes times;
  times.discovery = (*record.timestamps.discovery_done -
                     record.timestamps.submitted)
                        .to_seconds();
  times.selection = (*record.timestamps.selection_done -
                     *record.timestamps.discovery_done)
                        .to_seconds();
  // Submission ends at first output; the banner leg is added below.
  times.submission = (*record.timestamps.running -
                      *record.timestamps.selection_done)
                         .to_seconds();

  // First-output leg over the interposition channel from the execution site.
  for (std::size_t i = 0; i < grid.site_count(); ++i) {
    if (grid.site(i).id() == record.subjobs[0].site) {
      times.submission += first_output_seconds(
          grid.sim(), grid.network(), grid.site(i).endpoint(),
          stream::ChannelSpec::interposition_fast(), seed ^ 0x1234);
      break;
    }
  }
  return times;
}

/// Glogin baseline: the user selects the machine by hand (no discovery or
/// selection phases) and submits through GRAM directly; the interactive
/// shell's first output returns over the Globus-IO channel.
std::optional<double> run_glogin_submission(const sim::LinkSpec& link,
                                            std::uint64_t seed) {
  Grid grid{testbed_config(link, seed)};
  lrms::Site& site = grid.site(0);

  lrms::GridJobRequest request;
  request.id = JobId{1000};
  request.owner = UserId{1};
  request.workload = lrms::Workload::cpu(60_s);
  request.stage_bytes = 15u << 20;  // the shell bootstrap payload
  request.submitter_endpoint = "ui";
  std::optional<SimTime> started;
  request.on_start = [&](NodeId) { started = grid.sim().now(); };

  const SimTime submitted_at = grid.sim().now();
  site.gatekeeper().submit_direct(std::move(request), [](Status) {});
  grid.sim().run_until(SimTime::from_seconds(3600));
  if (!started) return std::nullopt;

  double total = (*started - submitted_at).to_seconds();
  total += first_output_seconds(grid.sim(), grid.network(), site.endpoint(),
                                stream::ChannelSpec::glogin(), seed ^ 0x77);
  return total;
}

struct Row {
  std::string method;
  std::string discovery;
  std::string selection;
  double campus = 0.0;
  double ifca = 0.0;
  std::string paper;
};

}  // namespace

int main() {
  std::cout << "== Table I: response time for jobs (seconds) ==\n"
            << "(" << kJobsPerMethod << " submissions per method; means)\n\n";

  const sim::LinkSpec campus = sim::LinkSpec::campus();
  const sim::LinkSpec ifca = sim::LinkSpec::wan();

  // -- Glogin -----------------------------------------------------------
  RunningStats glogin_campus;
  RunningStats glogin_ifca;
  for (int i = 0; i < kJobsPerMethod; ++i) {
    const auto seed = static_cast<std::uint64_t>(1000 + i);
    if (const auto t = run_glogin_submission(campus, seed)) glogin_campus.add(*t);
    if (const auto t = run_glogin_submission(ifca, seed)) glogin_ifca.add(*t);
  }

  // -- Interactive exclusive ("Idle") ------------------------------------
  const std::string exclusive_jdl =
      "Executable = \"app\"; JobType = \"interactive\"; "
      "MachineAccess = \"exclusive\";";
  RunningStats idle_disc;
  RunningStats idle_sel;
  RunningStats idle_campus;
  RunningStats idle_ifca;
  for (int i = 0; i < kJobsPerMethod; ++i) {
    const auto seed = static_cast<std::uint64_t>(2000 + i);
    if (const auto t = run_broker_submission(exclusive_jdl, campus, seed,
                                             false, false)) {
      idle_disc.add(t->discovery);
      idle_sel.add(t->selection);
      idle_campus.add(t->submission);
    }
    if (const auto t = run_broker_submission(exclusive_jdl, ifca, seed, false,
                                             false)) {
      idle_ifca.add(t->submission);
    }
  }

  // -- Interactive shared on a warm VM ("Virtual machine") ---------------
  const std::string shared_jdl =
      "Executable = \"app\"; JobType = \"interactive\"; "
      "MachineAccess = \"shared\"; PerformanceLoss = 10;";
  RunningStats vm_lookup;
  RunningStats vm_campus;
  RunningStats vm_ifca;
  for (int i = 0; i < kJobsPerMethod; ++i) {
    const auto seed = static_cast<std::uint64_t>(3000 + i);
    if (const auto t = run_broker_submission(shared_jdl, campus, seed, true,
                                             true)) {
      vm_lookup.add(t->discovery + t->selection);
      vm_campus.add(t->submission);
    }
    if (const auto t = run_broker_submission(shared_jdl, ifca, seed, true,
                                             true)) {
      vm_ifca.add(t->submission);
    }
  }

  // -- Batch ("Job + agent") ----------------------------------------------
  const std::string batch_jdl = "Executable = \"app\";";
  RunningStats batch_disc;
  RunningStats batch_sel;
  RunningStats batch_campus;
  RunningStats batch_ifca;
  for (int i = 0; i < kJobsPerMethod; ++i) {
    const auto seed = static_cast<std::uint64_t>(4000 + i);
    if (const auto t = run_broker_submission(batch_jdl, campus, seed, false,
                                             false)) {
      batch_disc.add(t->discovery);
      batch_sel.add(t->selection);
      batch_campus.add(t->submission);
    }
    if (const auto t = run_broker_submission(batch_jdl, ifca, seed, false,
                                             false)) {
      batch_ifca.add(t->submission);
    }
  }

  TablePrinter table{{"Method", "Discovery", "Selection", "Submission campus",
                      "Submission IFCA", "Paper (campus)"}};
  table.add_row({"Glogin", "hand-made", "hand-made",
                 fmt_fixed(glogin_campus.mean(), 2),
                 fmt_fixed(glogin_ifca.mean(), 2), "16.43 / 20.12 IFCA"});
  table.add_row({"Idle (exclusive)", fmt_fixed(idle_disc.mean(), 2),
                 fmt_fixed(idle_sel.mean(), 2), fmt_fixed(idle_campus.mean(), 2),
                 fmt_fixed(idle_ifca.mean(), 2), "0.5 / 3 / 17.2"});
  table.add_row({"Virtual machine", "combined",
                 fmt_fixed(vm_lookup.mean(), 2), fmt_fixed(vm_campus.mean(), 2),
                 fmt_fixed(vm_ifca.mean(), 2), "(local) / 6.79"});
  table.add_row({"Job + agent", fmt_fixed(batch_disc.mean(), 2),
                 fmt_fixed(batch_sel.mean(), 2),
                 fmt_fixed(batch_campus.mean(), 2),
                 fmt_fixed(batch_ifca.mean(), 2), "0.5 / 3 / 29.3"});
  std::cout << table.render() << "\n";

  // The paper's headline claims, checked explicitly:
  const double best_other = std::min(glogin_campus.mean(), idle_campus.mean());
  std::cout << "shared-VM startup advantage over best alternative: "
            << fmt_fixed(best_other / vm_campus.mean(), 2) << "x "
            << (best_other / vm_campus.mean() > 2.0 ? "(>2x, as in the paper)"
                                                    : "(<2x: MISMATCH)")
            << "\n";
  std::cout << "glogin slightly faster than exclusive (2PC premium): "
            << (glogin_campus.mean() < idle_campus.mean() ? "yes" : "NO")
            << "\n";
  std::cout << "batch (job+agent) slowest: "
            << (batch_campus.mean() > idle_campus.mean() ? "yes" : "NO")
            << "\n";
  return 0;
}
