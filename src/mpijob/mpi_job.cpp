#include "mpijob/mpi_job.hpp"

#include <algorithm>
#include <stdexcept>

namespace cg::mpijob {

int AllocationPlan::total_processes() const {
  int n = 0;
  for (const auto& p : placements) n += p.processes;
  return n;
}

int AllocationPlan::console_agents(jdl::JobFlavor flavor) const {
  // One CA per MPICH-G2 subjob process; a single CA otherwise (Section 4).
  if (flavor == jdl::JobFlavor::kMpichG2) return total_processes();
  return 1;
}

Expected<AllocationPlan> plan_allocation(jdl::JobFlavor flavor, int processes,
                                         std::vector<SiteCapacity> capacity,
                                         Rng* rng) {
  if (processes < 1) {
    return make_error("mpijob.plan", "process count must be >= 1");
  }
  AllocationPlan plan;

  if (flavor == jdl::JobFlavor::kSequential || processes == 1) {
    std::vector<const SiteCapacity*> fits;
    for (const auto& c : capacity) {
      if (c.free_cpus >= 1) fits.push_back(&c);
    }
    if (fits.empty()) {
      return make_error("mpijob.no_resources", "no site has a free CPU");
    }
    const SiteCapacity* chosen =
        rng != nullptr ? fits[rng->pick_index(fits.size())] : fits.front();
    plan.placements.push_back(SubJobPlacement{chosen->site, 1});
    return plan;
  }

  if (flavor == jdl::JobFlavor::kMpichP4) {
    // Single-site co-allocation: every fitting site is a candidate.
    std::vector<const SiteCapacity*> fits;
    for (const auto& c : capacity) {
      if (c.free_cpus >= processes) fits.push_back(&c);
    }
    if (fits.empty()) {
      return make_error("mpijob.no_resources",
                        "no single site can hold " + std::to_string(processes) +
                            " processes (MPICH-P4 cannot span sites)");
    }
    const SiteCapacity* chosen =
        rng != nullptr ? fits[rng->pick_index(fits.size())] : fits.front();
    plan.placements.push_back(SubJobPlacement{chosen->site, processes});
    return plan;
  }

  // MPICH-G2: greedy fill, randomized site order when an RNG is supplied.
  if (rng != nullptr) {
    rng->shuffle(capacity);
  } else {
    // Deterministic fallback: most free CPUs first minimizes subjob count.
    std::stable_sort(capacity.begin(), capacity.end(),
                     [](const SiteCapacity& a, const SiteCapacity& b) {
                       return a.free_cpus > b.free_cpus;
                     });
  }
  int remaining = processes;
  for (const auto& c : capacity) {
    if (remaining == 0) break;
    const int take = std::min(c.free_cpus, remaining);
    if (take > 0) {
      plan.placements.push_back(SubJobPlacement{c.site, take});
      remaining -= take;
    }
  }
  if (remaining > 0) {
    return make_error("mpijob.no_resources",
                      "grid-wide free CPUs are insufficient for " +
                          std::to_string(processes) + " processes");
  }
  return plan;
}

RuntimeBarrierCoordinator::RuntimeBarrierCoordinator(int ranks,
                                                     ReleaseAllFn release_all)
    : ranks_{ranks}, release_all_{std::move(release_all)} {
  if (ranks < 1) throw std::invalid_argument{"coordinator needs >= 1 rank"};
  if (!release_all_) throw std::invalid_argument{"coordinator needs a callback"};
}

void RuntimeBarrierCoordinator::arrived(int rank, int barrier_index) {
  if (rank < 0 || rank >= ranks_) throw std::invalid_argument{"bad rank"};
  if (barrier_index < 0) throw std::invalid_argument{"bad barrier index"};
  int& count = arrivals_[barrier_index];
  ++count;
  if (count > ranks_) throw std::logic_error{"barrier over-arrival"};
  if (count == ranks_) {
    ++completed_;
    release_all_(barrier_index);
  }
}

StartupBarrier::StartupBarrier(int expected, ReadyFn on_ready)
    : expected_{expected}, on_ready_{std::move(on_ready)} {
  if (expected < 1) throw std::invalid_argument{"barrier expects >= 1"};
  if (!on_ready_) throw std::invalid_argument{"barrier needs a callback"};
}

void StartupBarrier::arrive() {
  if (failed_) return;
  if (arrived_ >= expected_) throw std::logic_error{"barrier over-arrival"};
  ++arrived_;
  if (arrived_ == expected_ && !fired_) {
    fired_ = true;
    on_ready_();
  }
}

void StartupBarrier::fail() {
  failed_ = true;
}

}  // namespace cg::mpijob
