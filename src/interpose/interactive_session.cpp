#include "interpose/interactive_session.hpp"

#include <unistd.h>

#include <chrono>
#include <thread>

namespace cg::interpose {

Expected<std::unique_ptr<InteractiveSession>> InteractiveSession::start(
    std::vector<std::string> argv, InteractiveSessionConfig config) {
  std::unique_ptr<InteractiveSession> session{new InteractiveSession};

  ConsoleShadowConfig shadow_config;
  shadow_config.port = config.port;
  auto shadow = ConsoleShadow::listen(shadow_config);
  if (!shadow) return shadow.error();
  session->shadow_ = std::move(shadow.value());

  InteractiveSession* raw = session.get();
  session->shadow_->set_output_handler(
      [raw](std::uint32_t, FrameType, std::string_view data) {
        {
          const std::lock_guard lock{raw->mutex_};
          raw->output_ += data;
        }
        raw->output_cv_.notify_all();
      });
  session->shadow_->set_exit_handler([raw](std::uint32_t, int status) {
    {
      const std::lock_guard lock{raw->mutex_};
      raw->exit_status_ = status;
    }
    raw->output_cv_.notify_all();
  });

  ConsoleAgentConfig agent_config;
  agent_config.mode = config.mode;
  agent_config.shadow_port = session->shadow_->port();
  agent_config.flush_timeout_ms = config.flush_timeout_ms;
  if (config.mode == jdl::StreamingMode::kReliable) {
    const std::string dir = config.spool_dir.empty() ? "/tmp" : config.spool_dir;
    agent_config.spool_path = dir + "/cg-session-spool-" +
                              std::to_string(::getpid()) + "-" +
                              std::to_string(session->shadow_->port());
  }
  auto agent = ConsoleAgent::launch(std::move(argv), agent_config);
  if (!agent) return agent.error();
  session->agent_ = std::move(agent.value());

  // Wait for the agent's hello so that input typed immediately after start
  // is not broadcast into the void (the child may still be exec'ing).
  for (int waited_ms = 0; waited_ms < 5000; waited_ms += 10) {
    if (session->shadow_->connected_agents() > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (session->shadow_->connected_agents() == 0) {
    return make_error("session.connect", "agent never connected to the shadow");
  }
  return session;
}

InteractiveSession::~InteractiveSession() {
  // The agent (and its child) must die before the shadow stops accepting.
  agent_.reset();
  shadow_.reset();
}

void InteractiveSession::send_line(const std::string& line) {
  shadow_->send_line(line);
}

void InteractiveSession::send_eof() {
  shadow_->send_eof();
}

std::string InteractiveSession::drain_output() {
  const std::lock_guard lock{mutex_};
  std::string out;
  out.swap(output_);
  return out;
}

bool InteractiveSession::wait_for_output(const std::string& needle, int timeout_ms) {
  std::unique_lock lock{mutex_};
  return output_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return output_.find(needle) != std::string::npos;
  });
}

int InteractiveSession::wait_exit() {
  return agent_->wait_for_exit();
}

}  // namespace cg::interpose
