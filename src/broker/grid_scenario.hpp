// Builds a complete simulated testbed: N sites behind gatekeepers, an
// information system with periodic publication, a network with per-site
// links, and a CrossBroker — the fixture every integration test, example,
// and benchmark starts from. Defaults approximate the paper's environment
// (campus links, PIII-era sites, the IS a half-second away).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "broker/crossbroker.hpp"
#include "gsi/credential.hpp"
#include "infosys/information_system.hpp"
#include "lrms/site.hpp"
#include "net/control_bus.hpp"
#include "sim/network.hpp"
#include "sim/simulation.hpp"

namespace cg::broker {

struct GridScenarioConfig {
  int sites = 4;
  int nodes_per_site = 4;
  /// Optional per-site customization hook, called with the site's index and
  /// the default-constructed config before the site is built. Heterogeneous
  /// testbeds (mixed architectures, CPU speeds, node counts) are made here.
  std::function<void(int, lrms::SiteConfig&)> customize_site;
  /// Link profile between the user/broker machines and every site.
  sim::LinkSpec site_link = sim::LinkSpec::campus();
  /// Period of each site's push to the information-system index.
  Duration publication_period = Duration::seconds(30);
  infosys::InformationSystemConfig infosys;
  lrms::LocalSchedulerConfig lrms;
  lrms::GatekeeperConfig gatekeeper;
  CrossBrokerConfig broker;
  Duration site_info_latency = Duration::millis(150);
  /// Builds the full GSI trust fabric: a CA, a broker service credential,
  /// and gatekeepers that verify proxy chains. Users must then be
  /// registered via register_user() before submitting.
  bool enable_gsi = false;
  Duration user_proxy_lifetime = Duration::seconds(12 * 3600);
  std::uint64_t seed = 20060915;  ///< CLUSTER 2006 vintage
};

/// Owns the full stack in construction order (sim outlives everything).
class GridScenario {
public:
  explicit GridScenario(GridScenarioConfig config = {});
  GridScenario(const GridScenario&) = delete;
  GridScenario& operator=(const GridScenario&) = delete;

  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] sim::Network& network() { return *network_; }
  /// The typed control-plane bus every broker <-> agent <-> site exchange
  /// rides (fault-injection harnesses register it as a message-fault sink).
  [[nodiscard]] net::ControlBus& bus() { return *bus_; }
  [[nodiscard]] infosys::InformationSystem& infosys() { return *infosys_; }
  [[nodiscard]] CrossBroker& broker() { return *broker_; }
  [[nodiscard]] lrms::Site& site(std::size_t index) { return *sites_.at(index); }
  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }
  [[nodiscard]] const GridScenarioConfig& config() const { return config_; }

  /// The user-interface machine's network endpoint.
  [[nodiscard]] static std::string ui_endpoint() { return "ui"; }

  /// Fully occupies every node of every site with long batch work submitted
  /// straight into the LRMSes (bypassing the broker) — the "heavy occupancy"
  /// backdrop for multiprogramming experiments.
  void saturate_with_local_batch(Duration batch_length, UserId owner);

  /// Simulates a site failure: every running job on the site is killed (the
  /// broker sees the kills and reacts) and the site vanishes from the
  /// information system. The site object itself stays alive so in-flight
  /// callbacks resolve safely.
  void take_site_offline(std::size_t index);

  /// GSI (requires enable_gsi): issues a CA certificate for `name`, creates
  /// a proxy of the configured lifetime, and registers both with the
  /// broker. Returns the ancestry (certificate, proxy) for inspection.
  const std::vector<gsi::Credential>& register_user(UserId user,
                                                    const std::string& name);
  [[nodiscard]] gsi::CertificateAuthority* certificate_authority() {
    return ca_.get();
  }

private:
  GridScenarioConfig config_;
  sim::Simulation sim_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<net::ControlBus> bus_;
  std::unique_ptr<infosys::InformationSystem> infosys_;
  std::vector<std::unique_ptr<lrms::Site>> sites_;
  std::unique_ptr<CrossBroker> broker_;
  std::unique_ptr<gsi::CertificateAuthority> ca_;
  std::map<UserId, std::vector<gsi::Credential>> user_ancestries_;
  IdGenerator<SiteId> site_ids_;
  IdGenerator<JobId> local_job_ids_;
};

}  // namespace cg::broker
