// JobDescription validation: the paper's attribute domains (Figure 2 and
// Section 3).
#include <gtest/gtest.h>

#include "jdl/job_description.hpp"

namespace cg::jdl {
namespace {

TEST(JobDescriptionTest, ParsesPaperExample) {
  auto jd = JobDescription::parse(
      "Executable = \"interactive_mpich-g2_app\";\n"
      "JobType = {\"interactive\", \"mpich-g2\"};\n"
      "NodeNumber = 2;\n"
      "Arguments = \"-n\";\n");
  ASSERT_TRUE(jd.has_value()) << jd.error().to_string();
  EXPECT_EQ(jd->executable(), "interactive_mpich-g2_app");
  EXPECT_EQ(jd->arguments(), "-n");
  EXPECT_EQ(jd->category(), JobCategory::kInteractive);
  EXPECT_EQ(jd->flavor(), JobFlavor::kMpichG2);
  EXPECT_EQ(jd->node_number(), 2);
  EXPECT_TRUE(jd->is_interactive());
  EXPECT_TRUE(jd->is_parallel());
}

TEST(JobDescriptionTest, DefaultsAreBatchSequentialFastExclusive) {
  auto jd = JobDescription::parse("Executable = \"app\";");
  ASSERT_TRUE(jd.has_value());
  EXPECT_EQ(jd->category(), JobCategory::kBatch);
  EXPECT_EQ(jd->flavor(), JobFlavor::kSequential);
  EXPECT_EQ(jd->node_number(), 1);
  EXPECT_EQ(jd->streaming_mode(), StreamingMode::kFast);
  EXPECT_EQ(jd->machine_access(), MachineAccess::kExclusive);
  EXPECT_EQ(jd->performance_loss(), 0);
  EXPECT_FALSE(jd->shadow_port().has_value());
}

TEST(JobDescriptionTest, MissingExecutableFails) {
  EXPECT_FALSE(JobDescription::parse("NodeNumber = 2;").has_value());
  EXPECT_FALSE(JobDescription::parse("Executable = 5;").has_value());
  EXPECT_FALSE(JobDescription::parse("Executable = \"\";").has_value());
}

TEST(JobDescriptionTest, StreamingModes) {
  auto fast = JobDescription::parse(
      "Executable = \"a\"; JobType = \"interactive\"; StreamingMode = \"fast\";");
  ASSERT_TRUE(fast.has_value());
  EXPECT_EQ(fast->streaming_mode(), StreamingMode::kFast);

  auto reliable = JobDescription::parse(
      "Executable = \"a\"; JobType = \"interactive\"; StreamingMode = \"Reliable\";");
  ASSERT_TRUE(reliable.has_value());
  EXPECT_EQ(reliable->streaming_mode(), StreamingMode::kReliable);

  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; StreamingMode = \"turbo\";")
                   .has_value());
}

TEST(JobDescriptionTest, MachineAccessValidation) {
  auto shared = JobDescription::parse(
      "Executable = \"a\"; JobType = \"interactive\"; MachineAccess = \"shared\";");
  ASSERT_TRUE(shared.has_value());
  EXPECT_EQ(shared->machine_access(), MachineAccess::kShared);

  // Shared access is an interactive-job feature.
  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; JobType = \"batch\"; "
                   "MachineAccess = \"shared\";")
                   .has_value());
}

// Property sweep over the PerformanceLoss domain: "Values ... can be 0, 5,
// 10, 15, and so on".
class PerformanceLossTest : public ::testing::TestWithParam<int> {};

TEST_P(PerformanceLossTest, MultiplesOfFiveUpTo50Accepted) {
  const int pl = GetParam();
  auto jd = JobDescription::parse(
      "Executable = \"a\"; JobType = \"interactive\"; "
      "MachineAccess = \"shared\"; PerformanceLoss = " +
      std::to_string(pl) + ";");
  const bool should_accept = pl >= 0 && pl <= 50 && pl % 5 == 0;
  EXPECT_EQ(jd.has_value(), should_accept) << "PL=" << pl;
  if (jd.has_value()) {
    EXPECT_EQ(jd->performance_loss(), pl);
  }
}

INSTANTIATE_TEST_SUITE_P(Domain, PerformanceLossTest,
                         ::testing::Values(-5, 0, 3, 5, 10, 15, 25, 50, 55, 100));

TEST(JobDescriptionTest, NodeNumberValidation) {
  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; NodeNumber = 0;")
                   .has_value());
  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; NodeNumber = -1;")
                   .has_value());
  // Sequential jobs cannot ask for several nodes.
  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; JobType = \"sequential\"; NodeNumber = 4;")
                   .has_value());
  auto p4 = JobDescription::parse(
      "Executable = \"a\"; JobType = {\"batch\", \"mpich-p4\"}; NodeNumber = 4;");
  ASSERT_TRUE(p4.has_value());
  EXPECT_EQ(p4->node_number(), 4);
}

TEST(JobDescriptionTest, DuplicateJobTypeElementsFail) {
  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; JobType = {\"batch\", \"interactive\"};")
                   .has_value());
  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; JobType = {\"mpich-p4\", \"mpich-g2\"};")
                   .has_value());
}

TEST(JobDescriptionTest, UnknownJobTypeFails) {
  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; JobType = \"pvm\";")
                   .has_value());
}

TEST(JobDescriptionTest, ShadowPortDomain) {
  auto jd = JobDescription::parse(
      "Executable = \"a\"; JobType = \"interactive\"; ShadowPort = 9999;");
  ASSERT_TRUE(jd.has_value());
  EXPECT_EQ(jd->shadow_port(), 9999);
  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; ShadowPort = 0;")
                   .has_value());
  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; ShadowPort = 70000;")
                   .has_value());
}

TEST(JobDescriptionTest, ConsoleAgentCount) {
  // Section 4: one CA for sequential and MPICH-P4; one per subjob for G2.
  auto seq = JobDescription::parse(
      "Executable = \"a\"; JobType = \"interactive\";");
  ASSERT_TRUE(seq.has_value());
  EXPECT_EQ(seq->console_agent_count(), 1);

  auto p4 = JobDescription::parse(
      "Executable = \"a\"; JobType = {\"interactive\", \"mpich-p4\"}; "
      "NodeNumber = 8;");
  ASSERT_TRUE(p4.has_value());
  EXPECT_EQ(p4->console_agent_count(), 1);

  auto g2 = JobDescription::parse(
      "Executable = \"a\"; JobType = {\"interactive\", \"mpich-g2\"}; "
      "NodeNumber = 8;");
  ASSERT_TRUE(g2.has_value());
  EXPECT_EQ(g2->console_agent_count(), 8);
}

TEST(JobDescriptionTest, InputSandboxList) {
  auto jd = JobDescription::parse(
      "Executable = \"a\"; InputSandbox = {\"data.in\", \"config.xml\"};");
  ASSERT_TRUE(jd.has_value());
  EXPECT_EQ(jd->input_sandbox().size(), 2u);
  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; InputSandbox = 42;")
                   .has_value());
}

TEST(JobDescriptionTest, OutputSandboxList) {
  auto jd = JobDescription::parse(
      "Executable = \"a\"; OutputSandbox = {\"out.dat\", \"log.txt\"};");
  ASSERT_TRUE(jd.has_value());
  EXPECT_EQ(jd->output_sandbox().size(), 2u);
  auto none = JobDescription::parse("Executable = \"a\";");
  ASSERT_TRUE(none.has_value());
  EXPECT_TRUE(none->output_sandbox().empty());
  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; OutputSandbox = 1;")
                   .has_value());
}

TEST(JobDescriptionTest, RequirementsAndRankAccessible) {
  auto jd = JobDescription::parse(
      "Executable = \"a\";\n"
      "Requirements = other.Arch == \"i686\";\n"
      "Rank = other.FreeCPUs;\n");
  ASSERT_TRUE(jd.has_value());
  EXPECT_NE(jd->requirements(), nullptr);
  EXPECT_NE(jd->rank(), nullptr);
  auto no_req = JobDescription::parse("Executable = \"a\";");
  ASSERT_TRUE(no_req.has_value());
  EXPECT_EQ(no_req->requirements(), nullptr);
}

TEST(JobDescriptionTest, RetryCountDomain) {
  auto jd = JobDescription::parse("Executable = \"a\"; RetryCount = 5;");
  ASSERT_TRUE(jd.has_value());
  EXPECT_EQ(jd->retry_count(), 5);
  auto none = JobDescription::parse("Executable = \"a\";");
  ASSERT_TRUE(none.has_value());
  EXPECT_FALSE(none->retry_count().has_value());
  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; RetryCount = -1;").has_value());
  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; RetryCount = 500;").has_value());
}

TEST(JobDescriptionTest, EnvironmentEntries) {
  auto jd = JobDescription::parse(
      "Executable = \"a\"; Environment = {\"MODE=fast\", \"DEBUG=1\"};");
  ASSERT_TRUE(jd.has_value());
  ASSERT_EQ(jd->environment().size(), 2u);
  EXPECT_EQ(jd->environment()[0], "MODE=fast");
  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; Environment = {\"NOEQUALS\"};")
                   .has_value());
  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; Environment = {\"=value\"};")
                   .has_value());
}

TEST(JobDescriptionTest, VirtualOrganisation) {
  auto jd = JobDescription::parse(
      "Executable = \"a\"; VirtualOrganisation = \"crossgrid-hep\";");
  ASSERT_TRUE(jd.has_value());
  EXPECT_EQ(jd->virtual_organisation(), "crossgrid-hep");
  EXPECT_FALSE(JobDescription::parse(
                   "Executable = \"a\"; VirtualOrganisation = \"\";")
                   .has_value());
}

TEST(JobDescriptionTest, EnumToString) {
  EXPECT_EQ(to_string(JobCategory::kInteractive), "interactive");
  EXPECT_EQ(to_string(JobFlavor::kMpichG2), "mpich-g2");
  EXPECT_EQ(to_string(StreamingMode::kReliable), "reliable");
  EXPECT_EQ(to_string(MachineAccess::kShared), "shared");
}

}  // namespace
}  // namespace cg::jdl
