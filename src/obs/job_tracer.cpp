#include "obs/job_tracer.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/strings.hpp"

namespace cg::obs {

std::string_view to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSubmitted: return "submitted";
    case TraceEventKind::kDiscovery: return "discovery";
    case TraceEventKind::kSelection: return "selection";
    case TraceEventKind::kMatched: return "matched";
    case TraceEventKind::kLeaseAcquired: return "lease_acquired";
    case TraceEventKind::kLeaseRevoked: return "lease_revoked";
    case TraceEventKind::kDispatched: return "dispatched";
    case TraceEventKind::kQueuedLocal: return "queued_local";
    case TraceEventKind::kQueuedBroker: return "queued_broker";
    case TraceEventKind::kStarted: return "started";
    case TraceEventKind::kRunning: return "running";
    case TraceEventKind::kStreaming: return "streaming";
    case TraceEventKind::kResubmitted: return "resubmitted";
    case TraceEventKind::kJobEvicted: return "job_evicted";
    case TraceEventKind::kCompleted: return "completed";
    case TraceEventKind::kFailed: return "failed";
    case TraceEventKind::kRejected: return "rejected";
    case TraceEventKind::kAgentDeployed: return "agent_deployed";
    case TraceEventKind::kAgentSuspected: return "agent_suspected";
    case TraceEventKind::kAgentRestored: return "agent_restored";
    case TraceEventKind::kAgentDied: return "agent_died";
    case TraceEventKind::kHeartbeatMiss: return "heartbeat_miss";
    case TraceEventKind::kLivenessMiss: return "liveness_miss";
    case TraceEventKind::kLinkDown: return "link_down";
    case TraceEventKind::kLinkUp: return "link_up";
    case TraceEventKind::kFrameDropped: return "frame_dropped";
    case TraceEventKind::kReconnected: return "reconnected";
    case TraceEventKind::kSpoolFull: return "spool_full";
    case TraceEventKind::kMsgDropped: return "msg_dropped";
    case TraceEventKind::kMsgDuplicated: return "msg_duplicated";
    case TraceEventKind::kInfo: return "info";
  }
  return "?";
}

void JobTracer::record(SimTime when, JobId job, TraceEventKind kind,
                       std::string detail, LabelSet attrs) {
  events_.push_back(
      JobTraceEvent{when, job, kind, std::move(detail), std::move(attrs)});
  if (!subscriptions_.empty()) notify(events_.size() - 1);
}

void JobTracer::notify(std::size_t event_index) {
  // Index-based on both sides: a callback may append subscriptions (they
  // only see later events — the bound is fixed here), unsubscribe, or even
  // record (the event is re-indexed each call, so vector growth is safe).
  const std::size_t limit = subscriptions_.size();
  for (std::size_t i = 0; i < limit && i < subscriptions_.size(); ++i) {
    const TraceEventKind kind = events_[event_index].kind;
    if (subscriptions_[i].kind && *subscriptions_[i].kind != kind) continue;
    subscriptions_[i].fn(events_[event_index]);
  }
}

JobTracer::SubscriptionId JobTracer::subscribe(Listener listener) {
  const SubscriptionId id = next_subscription_++;
  subscriptions_.push_back(Subscription{id, std::nullopt, std::move(listener)});
  return id;
}

JobTracer::SubscriptionId JobTracer::subscribe(TraceEventKind kind,
                                               Listener listener) {
  const SubscriptionId id = next_subscription_++;
  subscriptions_.push_back(Subscription{id, kind, std::move(listener)});
  return id;
}

void JobTracer::unsubscribe(SubscriptionId id) {
  std::erase_if(subscriptions_,
                [id](const Subscription& s) { return s.id == id; });
}

std::vector<JobTraceEvent> JobTracer::for_job(JobId job) const {
  std::vector<JobTraceEvent> out;
  for (const auto& e : events_) {
    if (e.job == job) out.push_back(e);
  }
  return out;
}

std::vector<JobTraceEvent> JobTracer::of_kind(TraceEventKind kind) const {
  std::vector<JobTraceEvent> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::size_t JobTracer::count(TraceEventKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const JobTraceEvent& e) { return e.kind == kind; }));
}

const JobTraceEvent* JobTracer::first(JobId job, TraceEventKind kind) const {
  for (const auto& e : events_) {
    if (e.job == job && e.kind == kind) return &e;
  }
  return nullptr;
}

std::string JobTracer::render() const {
  std::ostringstream os;
  for (const auto& e : events_) {
    os << e.when.count_micros() << "us ";
    if (e.job.valid()) {
      os << "job-" << e.job.value();
    } else {
      os << "grid";
    }
    os << ' ' << to_string(e.kind);
    if (!e.detail.empty()) os << ": " << e.detail;
    const std::string attrs = e.attrs.to_string();
    if (!attrs.empty()) os << ' ' << attrs;
    os << '\n';
  }
  return os.str();
}

namespace {

void append_json_attrs(std::string& out, const LabelSet& attrs) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : attrs.entries()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":\"";
    out += json_escape(v);
    out += '"';
  }
  out += '}';
}

}  // namespace

std::string JobTracer::to_jsonl() const {
  std::string out;
  for (const auto& e : events_) {
    out += "{\"ts_us\":" + std::to_string(e.when.count_micros());
    out += ",\"job\":" + std::to_string(e.job.value());
    out += ",\"kind\":\"";
    out += to_string(e.kind);
    out += "\",\"detail\":\"" + json_escape(e.detail) + "\",\"attrs\":";
    append_json_attrs(out, e.attrs);
    out += "}\n";
  }
  return out;
}

std::string JobTracer::to_chrome_trace() const {
  // Group lifecycle events per job (preserving order); everything else
  // becomes an instant event on the grid track (tid 0).
  std::map<std::uint64_t, std::vector<const JobTraceEvent*>> per_job;
  std::vector<const JobTraceEvent*> global;
  for (const auto& e : events_) {
    if (e.job.valid()) {
      per_job[e.job.value()].push_back(&e);
    } else {
      global.push_back(&e);
    }
  }

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&out, &first](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  const auto common = [](const JobTraceEvent& e, std::uint64_t tid) {
    std::string s = "\"name\":\"" + std::string{to_string(e.kind)} + "\"";
    s += ",\"pid\":1,\"tid\":" + std::to_string(tid);
    s += ",\"ts\":" + std::to_string(e.when.count_micros());
    s += ",\"args\":{\"detail\":\"" + json_escape(e.detail) + "\"";
    for (const auto& [k, v] : e.attrs.entries()) {
      s += ",\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
    }
    s += "}";
    return s;
  };

  for (const auto& [job, evs] : per_job) {
    emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" +
         std::to_string(job) + ",\"args\":{\"name\":\"job-" +
         std::to_string(job) + "\"}}");
    // Consecutive events become complete slices: the slice named after event
    // i spans until event i+1, so the lifecycle reads as adjacent phases.
    for (std::size_t i = 0; i < evs.size(); ++i) {
      const JobTraceEvent& e = *evs[i];
      if (i + 1 < evs.size()) {
        const std::int64_t dur =
            evs[i + 1]->when.count_micros() - e.when.count_micros();
        emit("{\"ph\":\"X\"," + common(e, job) +
             ",\"dur\":" + std::to_string(dur) + "}");
      } else {
        emit("{\"ph\":\"i\",\"s\":\"t\"," + common(e, job) + "}");
      }
    }
  }
  for (const JobTraceEvent* e : global) {
    emit("{\"ph\":\"i\",\"s\":\"g\"," + common(*e, 0) + "}");
  }
  out += "\n]}\n";
  return out;
}

}  // namespace cg::obs
