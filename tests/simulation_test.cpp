// Tests for the allocation-free event engine: slab/heap handle semantics,
// exact pending counts, the timer-wheel daemon lane, and the small-buffer
// callback type the engine stores events in.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/simulation.hpp"
#include "util/inplace_function.hpp"

namespace cg::sim {
namespace {

using namespace cg::literals;

// ------------------------------------------------------- event ordering ----

TEST(SimulationEngineTest, EqualTimestampsFireInScheduleOrderAcrossCancels) {
  Simulation sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  handles.reserve(8);
  for (int i = 0; i < 8; ++i) {
    handles.push_back(sim.schedule(1_s, [&order, i] { order.push_back(i); }));
  }
  // Cancelling from the middle must not disturb the FIFO order of the
  // survivors (heap removal swaps the last node into the hole).
  EXPECT_TRUE(sim.cancel(handles[2]));
  EXPECT_TRUE(sim.cancel(handles[5]));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3, 4, 6, 7}));
}

TEST(SimulationEngineTest, NegativeDelayClampsToNow) {
  Simulation sim;
  SimTime fired_at;
  sim.schedule(2_s, [&] {
    sim.schedule(Duration::seconds(-5), [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, SimTime::from_seconds(2.0));
}

TEST(SimulationEngineTest, ScheduleAtPastClampsToNow) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(3_s, [&] {
    // Scheduled "at" an instant already in the past: runs at now, after
    // events already queued for now.
    sim.schedule_at(SimTime::from_seconds(1.0), [&] { order.push_back(2); });
    order.push_back(1);
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), SimTime::from_seconds(3.0));
}

// ------------------------------------------------------- daemon events -----

TEST(SimulationEngineTest, RunStopsWhenOnlyDaemonsRemain) {
  Simulation sim;
  int daemon_fires = 0;
  int user_fires = 0;
  // A self-rescheduling daemon would run forever under run(); termination
  // must key off the user-event count alone.
  std::function<void()> tick = [&] {
    ++daemon_fires;
    sim.schedule_daemon(1_s, tick);
  };
  sim.schedule_daemon(1_s, tick);
  sim.schedule(Duration::seconds(3) + Duration::millis(500),
               [&] { ++user_fires; });
  sim.run();
  EXPECT_EQ(user_fires, 1);
  EXPECT_EQ(daemon_fires, 3);  // t=1,2,3 fire before the last user event
  EXPECT_EQ(sim.now(), SimTime::from_seconds(3.5));
}

TEST(SimulationEngineTest, DaemonsInterleaveWithUserEventsInSeqOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_daemon(1_s, [&] { order.push_back(1); });
  sim.schedule(1_s, [&] { order.push_back(2); });
  sim.schedule_daemon(1_s, [&] { order.push_back(3); });
  sim.run();
  // Same timestamp: strict schedule order, whether an event rode the wheel
  // lane or the heap. The trailing daemon never fires: run() stops the
  // moment the last user event completes.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  sim.run_until(SimTime::from_seconds(1.0));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulationEngineTest, FarFutureDaemonCancellable) {
  Simulation sim;
  bool fired = false;
  // Far beyond the wheel horizon: the engine must fall back to the heap and
  // the handle must still cancel.
  const EventHandle h =
      sim.schedule_daemon(Duration::seconds(400000), [&] { fired = true; });
  EXPECT_EQ(sim.pending_events(), 0u);  // daemons never count as user events
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
  sim.run_until(SimTime::zero() + Duration::seconds(500000));
  EXPECT_FALSE(fired);
}

// --------------------------------------------- handles and slot reuse ------

TEST(SimulationEngineTest, CancelAfterFireReturnsFalse) {
  Simulation sim;
  const EventHandle h = sim.schedule(1_s, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
}

TEST(SimulationEngineTest, StaleHandleAfterSlotReuseCancelsNothing) {
  Simulation sim;
  bool first = false;
  bool second = false;
  const EventHandle a = sim.schedule(1_s, [&] { first = true; });
  EXPECT_TRUE(sim.cancel(a));
  // The freed slot is reused; the old handle's generation is dead.
  const EventHandle b = sim.schedule(1_s, [&] { second = true; });
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_FALSE(sim.cancel(a));  // must not kill b
  sim.run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
  EXPECT_FALSE(sim.cancel(b));
}

TEST(SimulationEngineTest, PendingEventsIsExactUnderCancellation) {
  Simulation sim;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(sim.schedule(Duration::seconds(i + 1), [] {}));
  }
  EXPECT_EQ(sim.pending_events(), 100u);
  for (std::size_t i = 0; i < handles.size(); i += 2) {
    EXPECT_TRUE(sim.cancel(handles[i]));
  }
  // True cancellation: no tombstones linger in the count.
  EXPECT_EQ(sim.pending_events(), 50u);
  EXPECT_EQ(sim.run_until(SimTime::from_seconds(1000.0)), 50u);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_TRUE(sim.empty());
}

TEST(SimulationEngineTest, NullCallbackThrows) {
  Simulation sim;
  EXPECT_THROW(sim.schedule(1_s, nullptr), std::invalid_argument);
  EXPECT_THROW(sim.schedule_daemon(1_s, nullptr), std::invalid_argument);
}

TEST(SimulationEngineTest, CancelFromInsideCallbackAtSameTimestamp) {
  Simulation sim;
  bool victim_fired = false;
  EventHandle victim;
  sim.schedule(1_s, [&] { EXPECT_TRUE(sim.cancel(victim)); });
  victim = sim.schedule(1_s, [&] { victim_fired = true; });
  sim.run();
  EXPECT_FALSE(victim_fired);
  EXPECT_EQ(sim.processed_events(), 1u);
}

// ------------------------------------------------------------ ScopedTimer --

TEST(SimulationEngineTest, ScopedTimerCancelsOnDestruction) {
  Simulation sim;
  bool fired = false;
  {
    ScopedTimer timer;
    timer.rearm(sim, sim.schedule(1_s, [&] { fired = true; }));
    EXPECT_TRUE(timer.armed());
  }
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimulationEngineTest, ScopedTimerMoveTransfersOwnership) {
  Simulation sim;
  bool fired = false;
  ScopedTimer outer;
  {
    ScopedTimer inner;
    inner.rearm(sim, sim.schedule(1_s, [&] { fired = true; }));
    outer = std::move(inner);
    EXPECT_FALSE(inner.armed());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(outer.armed());
  }  // inner's destruction must not cancel the moved-from timer
  sim.run();
  EXPECT_TRUE(fired);
  outer.reset();  // stale handle after the fire: cancels nothing
  EXPECT_FALSE(outer.armed());
}

// ------------------------------------------------------- InplaceFunction ---

TEST(InplaceFunctionTest, InvokesStoredLambda) {
  util::InplaceFunction<int(int), 48> f = [](int x) { return x + 1; };
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(41), 42);
}

TEST(InplaceFunctionTest, EmptyCallThrows) {
  util::InplaceFunction<void(), 48> f;
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_THROW(f(), std::bad_function_call);
}

TEST(InplaceFunctionTest, NullFunctionPointerIsEmpty) {
  void (*fp)() = nullptr;
  util::InplaceFunction<void(), 48> f = fp;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InplaceFunctionTest, MoveOnlyCaptureWorks) {
  auto p = std::make_unique<int>(7);
  util::InplaceFunction<int(), 48> f = [p = std::move(p)] { return *p; };
  util::InplaceFunction<int(), 48> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(g(), 7);
}

TEST(InplaceFunctionTest, CaptureUpToBufferSizeStaysInline) {
  // 48 bytes of capture must fit the engine's callback type (compile-time
  // guarantee; this is the documented SBO budget for scheduling paths).
  struct Big {
    char bytes[48];
  };
  static_assert(sizeof(Big) == 48);
  Big big{};
  big.bytes[0] = 'x';
  util::InplaceFunction<char(), 48> f = [big] { return big.bytes[0]; };
  EXPECT_EQ(f(), 'x');
}

}  // namespace
}  // namespace cg::sim
