#include "lrms/gatekeeper.hpp"

#include <stdexcept>
#include <utility>

#include "net/control_bus.hpp"
#include "util/log.hpp"

namespace cg::lrms {

Gatekeeper::Gatekeeper(sim::Simulation& sim, net::ControlBus& bus,
                       std::string endpoint, LocalScheduler& scheduler,
                       GatekeeperConfig config)
    : sim_{sim},
      bus_{bus},
      endpoint_{std::move(endpoint)},
      scheduler_{scheduler},
      config_{config} {}

Status Gatekeeper::check_credentials(const GridJobRequest& request) const {
  if (trust_anchor_ == nullptr) return Status::ok_status();
  if (!request.proxy_chain) {
    return make_error("gatekeeper.auth", "no proxy credentials presented");
  }
  const Status chain_ok =
      gsi::verify_chain(*request.proxy_chain, *trust_anchor_, sim_.now());
  if (!chain_ok.ok()) {
    return make_error("gatekeeper.auth",
                      "credential verification failed: " +
                          chain_ok.error().to_string());
  }
  return Status::ok_status();
}

void Gatekeeper::prepare(const GridJobRequest& request, StatusCallback callback) {
  if (!callback) throw std::invalid_argument{"prepare: null callback"};
  const Duration cost = config_.gsi_auth_latency + config_.prepare_overhead;
  const bool can_accept = scheduler_.has_capacity_or_queue_space();
  // Mutual authentication happens during the auth latency; the verdict is
  // evaluated against the chain's validity when the handshake completes.
  sim_.schedule(cost, [this, request, cb = std::move(callback), can_accept] {
    const Status auth = check_credentials(request);
    if (!auth.ok()) {
      cb(auth);
      return;
    }
    if (can_accept) {
      cb(Status::ok_status());
    } else {
      cb(make_error("gatekeeper.full",
                    "site cannot accept job (queue full)"));
    }
  });
}

void Gatekeeper::commit(GridJobRequest request, StatusCallback callback) {
  // Auth was already paid in prepare; commit stages and submits.
  stage_and_submit(std::move(request), std::move(callback));
}

void Gatekeeper::submit_direct(GridJobRequest request, StatusCallback callback) {
  const Duration auth = config_.gsi_auth_latency;
  sim_.schedule(auth, [this, request = std::move(request),
                       callback = std::move(callback)]() mutable {
    const Status auth_ok = check_credentials(request);
    if (!auth_ok.ok()) {
      callback(auth_ok);
      return;
    }
    stage_and_submit(std::move(request), std::move(callback));
  });
}

void Gatekeeper::stage_and_submit(GridJobRequest request, StatusCallback callback) {
  if (!callback) throw std::invalid_argument{"commit: null callback"};
  // The sandbox transfer rides the submitter's link; the jobmanager
  // processing is paid on arrival. Both travel as one StageSandbox message.
  net::SendOptions options;
  options.processing_latency = config_.jobmanager_latency;
  options.payload_bytes = request.stage_bytes;
  const std::string submitter = request.submitter_endpoint;
  const net::StageSandbox msg{request.id, request.stage_bytes, /*inbound=*/true};
  bus_.send(submitter, endpoint_, msg, options,
            [this, request = std::move(request),
             callback = std::move(callback)](const net::Envelope&) mutable {
              LocalJob job;
              job.id = request.id;
              job.owner = request.owner;
              job.workload = std::move(request.workload);
              job.on_start = std::move(request.on_start);
              job.on_complete = std::move(request.on_complete);
              job.phase_observer = std::move(request.phase_observer);
              job.dilation = std::move(request.dilation);
              job.barrier_handler = std::move(request.barrier_handler);
              if (scheduler_.submit(std::move(job))) {
                callback(Status::ok_status());
              } else {
                callback(make_error("gatekeeper.rejected",
                                    "LRMS queue rejected the job"));
              }
            });
}

bool Gatekeeper::cancel(JobId id, bool queued_only) {
  if (scheduler_.cancel_queued(id)) return true;
  if (queued_only) return false;
  return scheduler_.kill_running(id);
}

}  // namespace cg::lrms
