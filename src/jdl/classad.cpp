#include "jdl/classad.hpp"

#include "jdl/eval.hpp"
#include "util/strings.hpp"

namespace cg::jdl {

void ClassAd::set(std::string_view name, ExprPtr expr) {
  attrs_.insert_or_assign(to_lower(name), Attr{std::string{name}, std::move(expr)});
}

void ClassAd::set_string(std::string_view name, std::string value) {
  set(name, make_literal(Value::string(std::move(value))));
}

void ClassAd::set_int(std::string_view name, std::int64_t value) {
  set(name, make_literal(Value::integer(value)));
}

void ClassAd::set_real(std::string_view name, double value) {
  set(name, make_literal(Value::real(value)));
}

void ClassAd::set_bool(std::string_view name, bool value) {
  set(name, make_literal(Value::boolean(value)));
}

void ClassAd::set_string_list(std::string_view name,
                              const std::vector<std::string>& values) {
  ValueList items;
  items.reserve(values.size());
  for (const auto& v : values) items.push_back(Value::string(v));
  set(name, make_literal(Value::list(std::move(items))));
}

bool ClassAd::has(std::string_view name) const {
  return attrs_.contains(to_lower(name));
}

ExprPtr ClassAd::lookup(std::string_view name) const {
  const auto it = attrs_.find(to_lower(name));
  return it != attrs_.end() ? it->second.expr : nullptr;
}

bool ClassAd::erase(std::string_view name) {
  return attrs_.erase(to_lower(name)) > 0;
}

std::vector<std::string> ClassAd::names() const {
  std::vector<std::string> out;
  out.reserve(attrs_.size());
  for (const auto& [key, attr] : attrs_) out.push_back(attr.original_name);
  return out;
}

std::string ClassAd::to_source() const {
  std::string out;
  for (const auto& [key, attr] : attrs_) {
    out += attr.original_name;
    out += " = ";
    out += cg::jdl::to_source(*attr.expr);
    out += ";\n";
  }
  return out;
}

std::optional<std::string> ClassAd::get_string(std::string_view name) const {
  const Value v = evaluate_attr(*this, name);
  if (!v.is_string()) return std::nullopt;
  return v.as_string();
}

std::optional<std::int64_t> ClassAd::get_int(std::string_view name) const {
  const Value v = evaluate_attr(*this, name);
  if (v.is_int()) return v.as_int();
  return std::nullopt;
}

std::optional<double> ClassAd::get_real(std::string_view name) const {
  const Value v = evaluate_attr(*this, name);
  if (!v.is_number()) return std::nullopt;
  return v.as_number();
}

std::optional<bool> ClassAd::get_bool(std::string_view name) const {
  const Value v = evaluate_attr(*this, name);
  if (!v.is_bool()) return std::nullopt;
  return v.as_bool();
}

std::optional<std::vector<std::string>> ClassAd::get_string_list(
    std::string_view name) const {
  const Value v = evaluate_attr(*this, name);
  if (v.is_string()) return std::vector<std::string>{v.as_string()};
  if (!v.is_list()) return std::nullopt;
  std::vector<std::string> out;
  out.reserve(v.as_list().size());
  for (const auto& item : v.as_list()) {
    if (!item.is_string()) return std::nullopt;
    out.push_back(item.as_string());
  }
  return out;
}

}  // namespace cg::jdl
