#include "sim/simulation.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

namespace cg::sim {

namespace {
/// Events are totally ordered by (when, seq): virtual time first, scheduling
/// order as the tie-break.
constexpr bool node_less(const auto& a, const auto& b) {
  return a.when_us < b.when_us || (a.when_us == b.when_us && a.seq < b.seq);
}
}  // namespace

EventHandle Simulation::schedule(Duration delay, Callback fn) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_impl(now_ + delay, std::move(fn), /*daemon=*/false);
}

EventHandle Simulation::schedule_at(SimTime when, Callback fn) {
  return schedule_impl(when, std::move(fn), /*daemon=*/false);
}

EventHandle Simulation::schedule_daemon(Duration delay, Callback fn) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_impl(now_ + delay, std::move(fn), /*daemon=*/true);
}

EventHandle Simulation::schedule_impl(SimTime when, Callback fn, bool daemon) {
  if (!fn) throw std::invalid_argument{"Simulation::schedule: null callback"};
  if (when < now_) when = now_;
  const std::uint32_t idx = acquire_slot();
  Slot& s = slots_[idx];
  s.when_us = when.count_micros();
  s.seq = next_seq_++;
  s.fn = std::move(fn);
  s.daemon = daemon;
  if (daemon) {
    ++pending_daemon_;
  } else {
    ++pending_user_;
  }
  // Every in-horizon deadline rides the wheel (O(1) insert/cancel);
  // anything the wheel cannot hold — window already drained, or past the
  // horizon — goes to the heap, which is always exact.
  if (wheel_.insert(idx, s.when_us, s.seq)) {
    s.lane = Lane::kWheel;
  } else {
    heap_push(idx);
  }
  return EventHandle{idx, s.gen, s.seq};
}

bool Simulation::cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot_ >= slots_.size()) return false;
  Slot& s = slots_[handle.slot_];
  if (s.lane == Lane::kFree || s.gen != handle.gen_ || s.seq != handle.seq_) {
    return false;  // already fired/cancelled; slot may have been recycled
  }
  if (s.lane == Lane::kHeap) {
    heap_remove_at(s.heap_pos);
  } else if (!wheel_.remove(handle.slot_)) {
    // Wheel lane but no longer linked: the event sits in the drained due
    // window awaiting its turn. Mark it dead in place (peek skips it). The
    // scan is bounded by one window and this path is rare — cancelling an
    // event within the last few dozen µs before it fires.
    for (std::size_t i = due_head_; i < due_.size(); ++i) {
      if (due_[i].idx == handle.slot_) {
        due_[i].idx = kNil;
        break;
      }
    }
  }
  if (s.daemon) {
    --pending_daemon_;
  } else {
    --pending_user_;
  }
  release_slot(handle.slot_);
  return true;
}

std::uint32_t Simulation::acquire_slot_grow() {
  const auto idx = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  wheel_.ensure_capacity(slots_.size());
  // These structures hold at most one entry per slot, so sizing them to the
  // slab's capacity here keeps every later push_back allocation-free — even
  // when the free list balloons as the event population drains at run end.
  free_slots_.reserve(slots_.capacity());
  heap_.reserve(slots_.capacity());
  due_.reserve(slots_.capacity());
  scratch_.resize(slots_.capacity());
  return idx;
}

void Simulation::heap_push(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.lane = Lane::kHeap;
  s.heap_pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(HeapNode{s.when_us, s.seq, idx});
  sift_up(s.heap_pos);
}

void Simulation::heap_remove_at(std::uint32_t pos) {
  const auto last = static_cast<std::uint32_t>(heap_.size() - 1);
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  heap_[pos] = heap_[last];
  slots_[heap_[pos].slot].heap_pos = pos;
  heap_.pop_back();
  if (pos > 0 && node_less(heap_[pos], heap_[(pos - 1) / 4])) {
    sift_up(pos);
  } else {
    sift_down(pos);
  }
}

void Simulation::sift_up(std::uint32_t pos) {
  const HeapNode node = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!node_less(node, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos].slot].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = node;
  slots_[node.slot].heap_pos = pos;
}

void Simulation::sift_down(std::uint32_t pos) {
  const auto n = static_cast<std::uint32_t>(heap_.size());
  const HeapNode node = heap_[pos];
  for (;;) {
    const std::uint32_t first = 4 * pos + 1;
    if (first >= n) break;
    std::uint32_t best = first;
    const std::uint32_t end = std::min(first + 4, n);
    for (std::uint32_t c = first + 1; c < end; ++c) {
      if (node_less(heap_[c], heap_[best])) best = c;
    }
    if (!node_less(heap_[best], node)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos].slot].heap_pos = pos;
    pos = best;
  }
  heap_[pos] = node;
  slots_[node.slot].heap_pos = pos;
}

void Simulation::drain_wheel_window() {
  // The (when, seq) keys ride the wheel entries, so draining a window never
  // touches the slab: walk the list, append, sort. A window only drains
  // once the previous one is fully consumed (its entries all fire strictly
  // before the next window's start), so the due buffer is empty here and
  // the packed keys all share one tick-aligned base. Due-lane events keep
  // lane == kWheel; cancel and fire tell the lanes apart by link state.
  constexpr std::uint64_t kTickMask =
      (std::uint64_t{1} << TimerWheel::kTickShift) - 1;
  wheel_.drain_earliest(
      [this](std::uint32_t idx, std::int64_t when_us, std::uint64_t seq) {
        const auto when = static_cast<std::uint64_t>(when_us);
        due_base_us_ = static_cast<std::int64_t>(when & ~kTickMask);
        due_.push_back(DueNode{(when & kTickMask) << kDueDeltaShift | seq, idx});
      },
      [this](std::uint32_t idx) { heap_push(idx); });
  const std::size_t n = due_.size();
  constexpr auto key_less = [](const DueNode& a, const DueNode& b) {
    return a.key < b.key;
  };
  if (n > 48) {
    // Dense windows: two linear passes bucket the entries by their
    // in-window microsecond (the key's top bits), then each bucket needs
    // only a tiny seq-order sort — far cheaper than introsorting hundreds
    // of entries. The scratch buffer is pre-sized by acquire_slot.
    constexpr std::size_t kSpan = std::size_t{1} << TimerWheel::kTickShift;
    std::array<std::uint32_t, kSpan + 1> start{};
    for (std::size_t i = 0; i < n; ++i) {
      ++start[(due_[i].key >> kDueDeltaShift) + 1];
    }
    for (std::size_t d = 1; d <= kSpan; ++d) start[d] += start[d - 1];
    std::array<std::uint32_t, kSpan> pos;
    std::copy(start.begin(), start.begin() + kSpan, pos.begin());
    for (std::size_t i = 0; i < n; ++i) {
      scratch_[pos[due_[i].key >> kDueDeltaShift]++] = due_[i];
    }
    std::copy(scratch_.begin(),
              scratch_.begin() + static_cast<std::ptrdiff_t>(n), due_.begin());
    for (std::size_t d = 0; d < kSpan; ++d) {
      if (start[d + 1] - start[d] > 1) {
        std::sort(due_.begin() + start[d], due_.begin() + start[d + 1],
                  key_less);
      }
    }
  } else if (n > 1) {
    std::sort(due_.begin(), due_.end(), key_less);
  }
}

Simulation::HeapNode Simulation::peek_next() {
  // Skip entries cancelled since the window drained, and recycle the buffer
  // once a window is fully consumed (clear() keeps its capacity).
  while (due_head_ < due_.size() && due_[due_head_].idx == kNil) ++due_head_;
  if (due_head_ != 0 && due_head_ == due_.size()) {
    due_.clear();
    due_head_ = 0;
  }
  // Drain the wheel while its earliest window could still hold an event
  // that fires before (or ties with and out-sequences) the queue's front. A
  // window start is a lower bound on every entry inside it, so once the
  // bound passes both fronts, the front is the global minimum. (A window
  // only ever drains after the previous one was fully consumed, so the due
  // buffer holds at most one window.)
  while (!wheel_.empty()) {
    std::int64_t front_when = std::numeric_limits<std::int64_t>::max();
    if (!heap_.empty()) front_when = heap_.front().when_us;
    if (due_head_ < due_.size()) {
      const std::int64_t due_when =
          due_base_us_ +
          static_cast<std::int64_t>(due_[due_head_].key >> kDueDeltaShift);
      if (due_when < front_when) front_when = due_when;
    }
    if (wheel_.next_window_start_us() > front_when) break;
    drain_wheel_window();
  }
  const bool have_heap = !heap_.empty();
  if (due_head_ < due_.size()) {
    const DueNode& d = due_[due_head_];
    const HeapNode front{
        due_base_us_ + static_cast<std::int64_t>(d.key >> kDueDeltaShift),
        d.key & kDueSeqMask, d.idx};
    if (!have_heap || node_less(front, heap_.front())) return front;
  }
  return have_heap ? heap_.front() : HeapNode{0, 0, kNil};
}

void Simulation::fire(std::uint32_t idx) {
  Slot& s = slots_[idx];
  if (s.lane == Lane::kHeap) {
    heap_remove_at(s.heap_pos);
  } else {
    ++due_head_;  // wheel lane: peek only ever hands out the due front
    // Warm the likely next event's slot while this one's callback runs.
    if (due_head_ < due_.size() && due_[due_head_].idx != kNil) {
      __builtin_prefetch(&slots_[due_[due_head_].idx]);
    }
  }
  if (s.daemon) {
    --pending_daemon_;
  } else {
    --pending_user_;
  }
  now_ = SimTime::micros(s.when_us);
  ++processed_;
  // Move the callback out and free the slot *before* invoking: the callback
  // may reschedule (reusing this slot), and cancel() on the fired handle
  // must report false.
  Callback fn = std::move(s.fn);
  release_slot(idx);
  fn();
}

std::size_t Simulation::run() {
  return run_until(SimTime::max());
}

std::size_t Simulation::run_until(SimTime deadline) {
  std::size_t n = 0;
  // An unbounded run() stops when only daemon maintenance remains: an idle
  // grid whose information system keeps republishing is "finished". A run
  // to an explicit deadline processes daemons too — bounded experiments want
  // accounting ticks and publications to happen.
  const bool stop_when_only_daemons = deadline == SimTime::max();
  const std::int64_t deadline_us = deadline.count_micros();
  while (!stop_when_only_daemons || pending_user_ > 0) {
    const HeapNode next = peek_next();
    if (next.slot == kNil) break;
    if (next.when_us > deadline_us) {
      // The next event fires after the horizon: leave it queued (its slot
      // and sequence are untouched) and stop the clock at the deadline.
      now_ = deadline;
      return n;
    }
    fire(next.slot);
    ++n;
  }
  // The queue drained before the horizon: the clock still advances to it.
  if (!stop_when_only_daemons && now_ < deadline) now_ = deadline;
  return n;
}

bool Simulation::step() {
  const HeapNode next = peek_next();
  if (next.slot == kNil) return false;
  fire(next.slot);
  return true;
}

bool Simulation::empty() const {
  return pending_user_ == 0;
}

std::size_t Simulation::pending_events() const {
  return pending_user_;
}

}  // namespace cg::sim
