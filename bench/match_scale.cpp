// Matchmaking scale benchmark: runs the same deterministic workload through
// the legacy path (per-site ClassAd rebuild + AST interpretation over every
// published record) and the fast path (cached machine views, compiled
// Requirements/Rank, free-CPU + health index pruning, fused filter+select),
// asserts both produce byte-identical decision digests — with SiteHealth
// scoring active and nontrivial throughout — and reports throughput.
//
// Usage:
//   match_scale                 full sweep (sites {100,1000,10000} x jobs)
//   match_scale --smoke         smallest grid only; exit 1 on divergence
//   match_scale --json <path>   also write machine-readable results
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "broker/matchmaker.hpp"
#include "infosys/information_system.hpp"
#include "util/stats.hpp"

namespace {

using namespace cg;
using namespace cg::broker;
using namespace cg::literals;

constexpr std::uint64_t kSeed = 42;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Deterministic site population: mixed arches, node counts, memory sizes
/// and free-CPU levels (including full sites), all pure functions of the
/// site index so both paths see the identical grid.
infosys::SiteRecord make_site(std::uint64_t i) {
  infosys::SiteRecord r;
  r.static_info.id = SiteId{i};
  r.static_info.name = "site" + std::to_string(i);
  r.static_info.arch = (i % 4 == 0) ? "x86_64" : "i686";
  r.static_info.worker_nodes = static_cast<int>(1 + i % 32);
  r.static_info.cpus_per_node = static_cast<int>(1 + i % 2);
  r.static_info.memory_mb_per_node = static_cast<std::int64_t>(512 << (i % 3));
  const int total = r.static_info.total_cpus();
  r.dynamic_info.free_cpus =
      static_cast<int>((i * 7919) % static_cast<std::uint64_t>(total + 1));
  r.dynamic_info.running_jobs = total - r.dynamic_info.free_cpus;
  r.dynamic_info.free_interactive_vms = static_cast<int>(i % 3);
  return r;
}

/// Job mix: plain capacity jobs, arch constraints, compound Requirements,
/// negative and compound Rank expressions. Cycled per job index.
jdl::JobDescription make_job(std::size_t j) {
  static const char* kTemplates[] = {
      "Executable = \"app\";",
      "Executable = \"app\"; Requirements = other.Arch == \"x86_64\";",
      "Executable = \"app\"; Requirements = other.MemoryMB >= 1024 && "
      "other.FreeCPUs >= 2;",
      "Executable = \"app\"; Rank = -other.FreeCPUs;",
      "Executable = \"app\"; Requirements = other.Arch == \"i686\" || "
      "other.TotalCPUs > 16; Rank = other.MemoryMB + other.FreeCPUs;",
  };
  auto jd = jdl::JobDescription::parse(kTemplates[j % 5]);
  if (!jd) {
    std::cerr << "template parse failure: " << jd.error().to_string() << "\n";
    std::exit(2);
  }
  return std::move(jd).value();
}

int needed_cpus(std::size_t j) {
  static constexpr int kNeeded[] = {1, 2, 4, 8};
  return kNeeded[j % 4];
}

struct RunResult {
  std::uint64_t digest = 0;
  double seconds = 0.0;
  std::size_t matched = 0;
};

/// Runs `jobs` matchmaking rounds against `n_sites` published sites through
/// one path. Every decision (including "no match") folds into the digest;
/// matched jobs acquire a lease (with deterministic release churn) so the
/// free-CPU index sees deltas of both signs mid-run, and every 16th job a
/// site republishes with shifted load to exercise cache invalidation.
/// SiteHealth runs hot the whole time: a deterministic pre-seeded spread of
/// hard-excluded, penalized, and tie-biased sites plus in-loop miss/reward
/// churn, identical on both paths — the digest assertion therefore covers
/// suspicion-aware placement (including the fast path's index pruning).
RunResult run_path(std::size_t n_sites, std::size_t jobs, bool fast) {
  sim::Simulation sim;
  infosys::InformationSystemConfig icfg;
  icfg.index_query_latency = Duration::millis(1);
  icfg.default_site_query_latency = Duration::millis(1);
  infosys::InformationSystem is{sim, icfg};
  LeaseManager leases{sim};
  leases.set_observer(
      [&is](SiteId site, int delta) { is.apply_lease_delta(site, delta); });
  SiteHealth health{sim};
  MatchmakerConfig mc;
  mc.use_fast_path = fast;
  Matchmaker mm{mc};
  mm.set_site_health(&health);
  is.set_health_provider(
      [&health](SiteId site, SimTime delivery_time) {
        return health.hard_excluded_at(site, delivery_time);
      },
      [&health](SiteId site, SimTime delivery_time) {
        return health.exclusion_ends_after(site, delivery_time);
      },
      [&health] { return health.exclusion_epoch(); });
  Rng rng{kSeed};

  for (std::uint64_t i = 1; i <= n_sites; ++i) {
    const auto record = make_site(i);
    is.register_site(record.static_info, [record] { return record; });
    is.publish(record);
    // Nontrivial health state, a pure function of the site index: every 7th
    // site hard-excluded, every 5th rank-penalized, every 3rd tie-biased.
    if (i % 7 == 0) {
      health.note_eviction(SiteId{i});
    } else if (i % 5 == 0) {
      health.note_suspected(SiteId{i});
    } else if (i % 3 == 0) {
      health.note_heartbeat_miss(SiteId{i});
    }
  }

  RunResult out;
  out.digest = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  std::deque<LeaseId> active;
  const std::size_t max_active = std::max<std::size_t>(4, n_sites / 8);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t j = 0; j < jobs; ++j) {
    const auto desc = make_job(j);
    const int needed = needed_cpus(j);
    std::optional<Candidate> picked;
    bool delivered = false;
    if (fast) {
      is.query_index_matching(
          needed,
          [&, compiled = mm.compile(desc)](
              std::shared_ptr<const infosys::InformationSystem::IndexSnapshot>
                  records) {
            picked = mm.match_one(*compiled, CandidateSource{*records}, leases,
                                  needed, rng);
            delivered = true;
          });
    } else {
      is.query_index([&](std::vector<infosys::SiteRecord> records) {
        const auto candidates = mm.filter(desc, records, leases, needed);
        if (const auto site = mm.select(candidates, rng)) {
          for (const auto& c : candidates) {
            if (c.site == *site) picked = c;
          }
        }
        delivered = true;
      });
    }
    sim.run_until(sim.now() + Duration::millis(2));
    if (!delivered) {
      std::cerr << "index query never delivered\n";
      std::exit(2);
    }

    out.digest = fnv1a(out.digest, static_cast<std::uint64_t>(j));
    out.digest = fnv1a(out.digest, picked ? picked->site.value() : 0);
    if (picked) {
      ++out.matched;
      if (auto lease = leases.acquire(picked->site, needed, 3600_s)) {
        active.push_back(*lease);
      }
      while (active.size() > max_active) {
        leases.release(active.front());
        active.pop_front();
      }
    }
    // Health churn between rounds (both paths see the same sequence at the
    // same virtual times): fresh evidence against a rotating site, rewards
    // on some matched sites.
    if (j % 4 == 0) {
      health.note_liveness_miss(SiteId{1 + (j * 13) % n_sites});
    }
    if (picked && j % 8 == 3) health.note_completion(picked->site);
    if (j % 16 == 15) {
      // Republish one site with shifted load: invalidates its cached
      // machine view and moves it in the free-CPU index.
      auto churned = make_site(1 + (j * 31) % n_sites);
      churned.dynamic_info.free_cpus =
          (churned.dynamic_info.free_cpus + static_cast<int>(j)) %
          (churned.static_info.total_cpus() + 1);
      is.publish(churned);
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  return out;
}

struct Row {
  std::size_t sites = 0;
  std::size_t jobs = 0;
  RunResult legacy;
  RunResult fast;
  [[nodiscard]] bool digests_match() const {
    return legacy.digest == fast.digest && legacy.matched == fast.matched;
  }
  [[nodiscard]] double speedup() const {
    return fast.seconds > 0.0 ? legacy.seconds / fast.seconds : 0.0;
  }
};

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream f{path};
  f << "{\n  \"bench\": \"match_scale\",\n  \"seed\": " << kSeed
    << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    f << "    {\"sites\": " << r.sites << ", \"jobs\": " << r.jobs
      << ", \"matched\": " << r.legacy.matched
      << ", \"legacy_seconds\": " << r.legacy.seconds
      << ", \"fast_seconds\": " << r.fast.seconds
      << ", \"legacy_jobs_per_sec\": "
      << static_cast<double>(r.jobs) / r.legacy.seconds
      << ", \"fast_jobs_per_sec\": "
      << static_cast<double>(r.jobs) / r.fast.seconds
      << ", \"speedup\": " << r.speedup() << ", \"digest_match\": "
      << (r.digests_match() ? "true" : "false") << "}"
      << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  f << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: match_scale [--smoke] [--json <path>]\n";
      return 2;
    }
  }

  std::vector<std::pair<std::size_t, std::size_t>> combos;
  if (smoke) {
    combos = {{100, 16}};
  } else {
    combos = {{100, 128}, {1000, 128}, {10000, 64}};
  }

  std::cout << "== match_scale: legacy vs fast matchmaking ==\n";
  std::vector<Row> rows;
  bool diverged = false;
  for (const auto& [sites, jobs] : combos) {
    Row row;
    row.sites = sites;
    row.jobs = jobs;
    row.legacy = run_path(sites, jobs, /*fast=*/false);
    row.fast = run_path(sites, jobs, /*fast=*/true);
    if (!row.digests_match()) {
      diverged = true;
      std::cerr << "[FAIL] decision divergence at " << sites << " sites: legacy="
                << std::hex << row.legacy.digest << " fast=" << row.fast.digest
                << std::dec << " (matched " << row.legacy.matched << " vs "
                << row.fast.matched << ")\n";
    }
    rows.push_back(row);
  }

  cg::TablePrinter table{{"Sites", "Jobs", "Matched", "Legacy s", "Fast s",
                          "Speedup", "Digest"}};
  for (const Row& r : rows) {
    table.add_row({std::to_string(r.sites), std::to_string(r.jobs),
                   std::to_string(r.legacy.matched),
                   cg::fmt_fixed(r.legacy.seconds, 4),
                   cg::fmt_fixed(r.fast.seconds, 4),
                   cg::fmt_fixed(r.speedup(), 1) + "x",
                   r.digests_match() ? "match" : "DIVERGED"});
  }
  std::cout << table.render() << "\n";
  if (!json_path.empty()) write_json(json_path, rows);
  std::cout << (diverged
                    ? "[MISS] fast path diverged from legacy decisions\n"
                    : "[ok]   identical decisions on both paths\n");
  return diverged ? 1 : 0;
}
