// Network model for the simulated grid: point-to-point links with latency,
// bandwidth, jitter, and failure windows. Transfer times follow the usual
// first-order law  t = latency + bytes/bandwidth + jitter,  which is what the
// paper's streaming comparison actually exercises (per-op latency for small
// payloads, bandwidth and buffering for large ones).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace cg::sim {

/// Static characteristics of a link.
struct LinkSpec {
  std::string name;
  Duration latency = Duration::millis(1);      ///< one-way propagation delay
  double bandwidth_bytes_per_sec = 12.5e6;     ///< 100 Mb/s default (campus)
  Duration jitter_stddev = Duration::zero();   ///< per-transfer normal jitter

  /// Campus-grid profile from the paper's first scenario (100 Mb/s LAN).
  [[nodiscard]] static LinkSpec campus();
  /// Wide-area profile (UAB Barcelona <-> IFCA Santander over RedIRIS).
  [[nodiscard]] static LinkSpec wan();
  /// Loopback-like profile for co-located components.
  [[nodiscard]] static LinkSpec local();
};

/// Time windows during which a link is down. Drives the reliable-streaming
/// retry machinery and the broker's failure handling.
class FailureSchedule {
public:
  /// Adds a [start, end) outage window. Windows may be added in any order.
  void add_outage(SimTime start, SimTime end);

  [[nodiscard]] bool is_down(SimTime t) const;
  /// The instant the link next comes back up at-or-after t (t itself if up).
  [[nodiscard]] SimTime next_up(SimTime t) const;
  /// The start of the next outage strictly after t, if any.
  [[nodiscard]] std::optional<SimTime> next_outage_after(SimTime t) const;
  [[nodiscard]] bool empty() const { return windows_.empty(); }

private:
  void normalize();
  // Sorted, disjoint [start, end) windows.
  std::vector<std::pair<SimTime, SimTime>> windows_;
};

/// A directed link with stochastic jitter and a failure schedule. Jitter is
/// sampled from a dedicated RNG stream so transfer timing is reproducible.
class Link {
public:
  Link(LinkSpec spec, Rng rng) : spec_{std::move(spec)}, rng_{std::move(rng)} {}

  [[nodiscard]] const LinkSpec& spec() const { return spec_; }
  [[nodiscard]] FailureSchedule& failures() { return failures_; }
  [[nodiscard]] const FailureSchedule& failures() const { return failures_; }

  [[nodiscard]] bool is_up(SimTime t) const { return !failures_.is_down(t); }

  /// Samples the time to move `bytes` across the link (latency + serialization
  /// + jitter). Does not consult the failure schedule; callers decide what a
  /// down link means (drop vs. spool) per streaming mode.
  [[nodiscard]] Duration transfer_duration(std::size_t bytes);

  /// Deterministic transfer time with zero jitter (used by capacity planning).
  [[nodiscard]] Duration nominal_transfer_duration(std::size_t bytes) const;

  /// Fault injection: extra one-way latency added to every transfer while a
  /// degradation fault is active. Not part of nominal_transfer_duration, so
  /// capacity planning keeps seeing the healthy link.
  void set_extra_latency(Duration extra) { extra_latency_ = extra; }
  [[nodiscard]] Duration extra_latency() const { return extra_latency_; }

private:
  LinkSpec spec_;
  Rng rng_;
  FailureSchedule failures_;
  Duration extra_latency_ = Duration::zero();
};

/// Registry of links between named endpoints (symmetric by default).
class Network {
public:
  explicit Network(Rng rng) : rng_{std::move(rng)} {}

  /// Creates (or replaces) the link between two endpoints, both directions.
  Link& add_link(const std::string& a, const std::string& b, LinkSpec spec);

  /// Returns the link between two endpoints, or the default local link for
  /// unknown pairs (components on the same machine).
  [[nodiscard]] Link& link(const std::string& a, const std::string& b);

  [[nodiscard]] bool has_link(const std::string& a, const std::string& b) const;

private:
  [[nodiscard]] static std::pair<std::string, std::string> key(
      const std::string& a, const std::string& b);

  Rng rng_;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Link>> links_;
  std::unique_ptr<Link> default_link_;
};

}  // namespace cg::sim
