// Extension experiment E1: interactive availability under load — the
// scenario that motivates the whole paper ("the possibility of starting the
// application in the immediate future, also taking into account scenarios
// in which all computing resources might be running batch jobs").
//
// A Poisson stream of batch work drives the grid to a target occupancy; a
// sparse stream of interactive jobs arrives on top. We sweep the batch load
// and compare interactive startup time and failure rate between
//   exclusive mode (needs an idle machine), and
//   shared mode   (multiprogramming: lands on glide-in interactive VMs).
//
// Expected shape: exclusive-mode startup degrades into failures as
// occupancy rises; shared mode keeps starting interactive jobs in seconds
// all the way to saturation — at the PerformanceLoss cost quantified in
// Fig. 8.
#include <iostream>

#include "grid/grid.hpp"
#include "broker/workload_generator.hpp"
#include "util/stats.hpp"

namespace {

using namespace cg;
using namespace cg::broker;
using namespace cg::literals;

struct SweepPoint {
  double occupancy = 0.0;        ///< measured mean busy fraction
  double mean_startup_s = 0.0;
  double p95_startup_s = 0.0;
  double failure_rate = 0.0;
  int submitted = 0;
};

SweepPoint run_point(Duration batch_interarrival, jdl::MachineAccess access,
                     std::uint64_t seed) {
  GridConfig config;
  config.sites = 4;
  config.nodes_per_site = 2;
  config.seed = seed;
  Grid grid{config};

  WorkloadGeneratorConfig load;
  load.batch_interarrival = batch_interarrival;
  load.batch_runtime = 1800_s;
  load.interactive_interarrival = 600_s;
  load.interactive_runtime = 120_s;
  load.interactive_access = access;
  load.performance_loss = 10;
  load.horizon = SimTime::from_seconds(8 * 3600);
  load.seed = seed ^ 0xfeed;
  WorkloadGenerator generator{grid.sim(), grid.broker(), load};
  generator.start();

  // Sample occupancy every 5 minutes.
  RunningStats busy_fraction;
  const int total_nodes = config.sites * config.nodes_per_site;
  for (int t = 600; t <= 8 * 3600; t += 300) {
    grid.sim().schedule_at(SimTime::from_seconds(t), [&grid, &busy_fraction,
                                                      total_nodes] {
      int free = 0;
      for (std::size_t i = 0; i < grid.site_count(); ++i) {
        free += grid.site(i).scheduler().free_nodes();
      }
      busy_fraction.add(1.0 - static_cast<double>(free) /
                                  static_cast<double>(total_nodes));
    });
  }
  grid.sim().run_until(SimTime::from_seconds(10 * 3600));

  const WorkloadStats& stats = generator.stats();
  SweepPoint point;
  point.occupancy = busy_fraction.mean();
  point.submitted = stats.interactive_submitted;
  if (stats.interactive_startup_s.count() > 0) {
    point.mean_startup_s = stats.interactive_startup_s.mean();
    point.p95_startup_s = stats.interactive_startup_s.max();
  }
  point.failure_rate =
      stats.interactive_submitted > 0
          ? static_cast<double>(stats.interactive_failed) /
                static_cast<double>(stats.interactive_submitted)
          : 0.0;
  return point;
}

}  // namespace

int main() {
  std::cout << "== Extension E1: interactive availability vs background load ==\n"
            << "(8-node grid, 8 h of Poisson batch arrivals at increasing "
               "rate,\n interactive job every ~10 min; 3 seeds per point)\n\n";

  const std::vector<std::pair<const char*, Duration>> loads{
      {"light", 1200_s}, {"medium", 420_s}, {"heavy", 200_s}, {"saturating", 90_s}};

  cg::TablePrinter table{{"Batch load", "Occupancy", "Mode", "Mean startup (s)",
                          "Worst startup (s)", "Failure rate"}};
  double exclusive_heavy_failures = 0.0;
  double shared_heavy_failures = 0.0;
  double shared_heavy_startup = 0.0;
  for (const auto& [label, interarrival] : loads) {
    for (const jdl::MachineAccess access :
         {jdl::MachineAccess::kExclusive, jdl::MachineAccess::kShared}) {
      RunningStats occupancy;
      RunningStats startup;
      RunningStats worst;
      RunningStats failures;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const SweepPoint p = run_point(interarrival, access, seed);
        occupancy.add(p.occupancy);
        startup.add(p.mean_startup_s);
        worst.add(p.p95_startup_s);
        failures.add(p.failure_rate);
      }
      table.add_row({label, cg::fmt_fixed(occupancy.mean() * 100, 0) + "%",
                     access == jdl::MachineAccess::kShared ? "shared" : "exclusive",
                     cg::fmt_fixed(startup.mean(), 2),
                     cg::fmt_fixed(worst.mean(), 2),
                     cg::fmt_fixed(failures.mean() * 100, 1) + "%"});
      if (std::string{label} == "saturating") {
        if (access == jdl::MachineAccess::kExclusive) {
          exclusive_heavy_failures = failures.mean();
        } else {
          shared_heavy_failures = failures.mean();
          shared_heavy_startup = startup.mean();
        }
      }
    }
  }
  std::cout << table.render() << "\n";

  const auto check = [](const std::string& claim, bool holds) {
    std::cout << (holds ? "  [ok]   " : "  [MISS] ") << claim << "\n";
  };
  check("exclusive mode fails interactive jobs under saturating load",
        exclusive_heavy_failures > 0.2);
  check("shared mode keeps failures far lower at the same load",
        shared_heavy_failures < exclusive_heavy_failures / 2.0);
  check("shared-mode startup stays interactive (< 30 s) even saturated",
        shared_heavy_startup > 0.0 && shared_heavy_startup < 30.0);
  return 0;
}
