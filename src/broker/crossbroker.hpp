// CrossBroker: the resource-management service for batch and interactive
// jobs (Sections 3 and 5). Responsibilities:
//
//  * submission pipeline: resource discovery (information-system index),
//    resource selection (fresh per-site queries, Requirements/Rank
//    matchmaking, randomized tie-breaking), two-phase-commit dispatch;
//  * on-line scheduling for interactive jobs: never leave one sitting in a
//    local queue — cancel and resubmit elsewhere;
//  * exclusive temporal access: matched resources are leased so concurrent
//    submissions do not double-book stale "free" CPUs;
//  * job multi-programming: glide-in agents split worker nodes into a
//    batch-vm and an interactive-vm; interactive jobs in shared mode start
//    on a free interactive-vm directly (no Globus, no LRMS queue), demoting
//    the co-resident batch job per its PerformanceLoss;
//  * fair-share accounting with interactive-aware application factors and
//    rejection of over-consuming users under contention;
//  * MPI co-allocation: MPICH-P4 within a site, MPICH-G2 across sites with
//    a startup barrier.
#pragma once

#include <array>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "broker/fair_share.hpp"
#include "broker/job_record.hpp"
#include "broker/job_trace.hpp"
#include "broker/submit_error.hpp"
#include "gsi/credential.hpp"
#include "broker/lease_manager.hpp"
#include "broker/matchmaker.hpp"
#include "broker/site_health.hpp"
#include "glidein/agent_registry.hpp"
#include "infosys/information_system.hpp"
#include "obs/observability.hpp"

namespace cg::lrms {
class Site;
}
namespace cg::mpijob {
class RuntimeBarrierCoordinator;
}
namespace cg::net {
class ControlBus;
struct Envelope;
}  // namespace cg::net

namespace cg::broker {

struct CrossBrokerConfig {
  FairShareConfig fair_share;
  MatchmakerConfig matchmaker;
  glidein::GlideinAgentConfig glidein;
  /// Suspicion-aware placement: per-site health scores fed by the
  /// supervision paths (suspicions, misses, partition evictions,
  /// restorations, completions) and consulted by matchmaking as a rank
  /// penalty plus a hard-exclusion window, so eviction-driven resubmission
  /// steers replacement agents off the partitioned site until its score
  /// decays back under the threshold.
  SiteHealthConfig site_health;

  /// Exclusive temporal access (Section 3). Disabling it lets concurrent
  /// submissions double-book stale "free" CPUs (ablation A1).
  bool enable_match_leases = true;
  /// TTL of the exclusive-temporal-access lease taken at selection time.
  Duration match_lease_ttl = Duration::seconds(60);
  /// One-way latency of the direct broker <-> agent channel (no Globus).
  Duration agent_channel_latency = Duration::millis(250);
  /// Local processing to match a job against the in-broker VM registry
  /// (the combined discovery+selection step of shared mode).
  Duration vm_lookup_cost = Duration::millis(50);
  /// Default size of the executable + input sandbox staged per job.
  std::size_t executable_bytes = 5u << 20;
  /// Modelled size of each OutputSandbox file staged back on completion.
  std::size_t output_file_bytes = 1u << 20;

  /// Interactive exclusive mode: if the job has not started this long after
  /// the LRMS accepted it, it is queued, not running — cancel and resubmit.
  Duration queue_detect_timeout = Duration::seconds(8);
  int max_resubmissions = 3;

  /// Bounded exponential backoff between resubmissions: attempt n waits
  /// base * 2^(n-1), capped at max. A zero base keeps the paper-era
  /// immediate resubmission.
  Duration resubmit_backoff_base = Duration::millis(500);
  Duration resubmit_backoff_max = Duration::seconds(30);

  /// Heartbeat supervision of glide-in agents: the broker probes each
  /// running agent over the broker <-> site link every interval; after
  /// miss_limit consecutive failures the agent is *suspected* — its match
  /// leases for still-pending jobs are revoked, those jobs resubmitted, and
  /// the agent excluded from placement until the link heals, when it
  /// re-registers automatically.
  bool enable_agent_heartbeats = true;
  Duration agent_heartbeat_interval = Duration::seconds(10);
  int agent_heartbeat_miss_limit = 3;

  /// Application-level liveness echo, distinct from the link heartbeat: the
  /// broker sends a sequenced probe down the direct broker <-> agent channel
  /// every interval and the agent must echo it *from its event loop*. A
  /// wedged agent process (stalled loop, healthy link) misses echoes while
  /// link heartbeats still pass, and is suspected after miss_limit
  /// consecutive misses. A suspected agent is only restored once an echo
  /// makes the round trip again.
  bool enable_liveness_probes = true;
  Duration liveness_probe_interval = Duration::seconds(10);
  int liveness_miss_limit = 3;

  /// Partition-aware eviction of *running* residents: when an agent stays
  /// suspected past this grace, its running jobs are timed out — killed on
  /// the agent side (best effort), their leases released, a typed
  /// JobEvicted{reason=partition} event emitted, and the job resubmitted on
  /// the normal backoff policy (eviction implies resubmission; the
  /// resubmit_interactive_on_agent_death switch governs only *deaths*,
  /// where the resident is gone rather than orphaned). Zero disables
  /// eviction — the paper-era behaviour where running residents are left
  /// untouched behind a partition.
  Duration running_job_grace = Duration::zero();

  /// Resubmit interactive residents when their agent dies instead of
  /// failing them loudly. Off by default: the paper's position is that the
  /// user is attached to the console and must act. Fault-tolerance harnesses
  /// turn this on to get automatic recovery with backoff.
  bool resubmit_interactive_on_agent_death = false;

  /// Poll period for batch jobs waiting inside the broker for free machines.
  Duration broker_queue_poll = Duration::seconds(30);
  /// Serve the broker queue best-priority-first (fair share). Disabling it
  /// falls back to FIFO arrival order (ablation A4's baseline).
  bool fair_share_queue_ordering = true;

  /// Fair-share rejection: a submission from a user whose priority exceeds
  /// this is rejected when it cannot start on a free resource immediately.
  /// <= 0 disables rejection.
  double reject_priority_threshold = 0.0;

  /// Dismiss an agent when both of its VMs fall idle (after it has run at
  /// least one job). Disable to keep a warm agent pool.
  bool dismiss_idle_agents = true;

  std::uint64_t seed = 0x5eed;
};

class CrossBroker {
public:
  CrossBroker(sim::Simulation& sim, net::ControlBus& bus,
              infosys::InformationSystem& infosys, CrossBrokerConfig config = {},
              std::string endpoint = "broker");
  ~CrossBroker();
  CrossBroker(const CrossBroker&) = delete;
  CrossBroker& operator=(const CrossBroker&) = delete;

  /// Registers a site with the broker (and wires the glide-in bookkeeping).
  void add_site(lrms::Site& site);

  /// Submits a job. The workload is what the job does once running; the
  /// description is its JDL. Returns the broker-assigned job id, or a typed
  /// reason when the submission is refused up front (invalid user or
  /// description, failed GSI pre-flight). Failures later in the pipeline
  /// surface through the callbacks and the record's last_error.
  [[nodiscard]] Expected<JobId, SubmitError> submit(jdl::JobDescription description,
                                                    UserId user,
                                                    lrms::Workload workload,
                                                    std::string submitter_endpoint,
                                                    JobCallbacks callbacks);

  /// Enables GSI across the grid: the broker verifies users' proxies before
  /// scheduling, presents them at every gatekeeper (which start verifying),
  /// and delegates restricted proxies for jobs started on glide-in agents.
  /// The anchor must outlive the broker.
  void enable_security(const gsi::Certificate* trust_anchor,
                       std::vector<gsi::Credential> broker_credentials);

  /// Registers a user's credential ancestry (CA-issued certificate followed
  /// by their proxy). Submissions from unregistered users fail when
  /// security is enabled.
  void set_user_credentials(UserId user, std::vector<gsi::Credential> ancestry);

  /// Cancels a job in any non-terminal state: removes it from queues,
  /// releases its leases and reserved VMs, kills running subjobs, and fires
  /// on_failed with code "broker.cancelled". Returns false if the job is
  /// unknown or already terminal.
  bool cancel(JobId id);

  /// Proactively deploys a glide-in agent on a site (warm pool). The agent
  /// is submitted through the normal batch path.
  void preload_agent(SiteId site);

  /// Attaches a Logging-&-Bookkeeping trace; the broker records every
  /// decision into it. Must outlive the broker (or be detached with nullptr).
  void set_trace(JobTrace* trace) { trace_ = trace; }

  /// Attaches the observability bundle: lifecycle transitions go to its
  /// JobTracer as typed events and the hot paths update its MetricsRegistry
  /// (match latency, lease revocations, resubmission backoff, heartbeat
  /// misses, matchmaking scan/cache counters, ...). Must outlive the broker
  /// (or be detached with nullptr). Agents created after this call inherit
  /// the registry.
  void set_observability(obs::Observability* obs);

  [[nodiscard]] const JobRecord* record(JobId id) const;
  [[nodiscard]] FairShare& fair_share() { return fair_share_; }
  [[nodiscard]] SiteHealth& site_health() { return site_health_; }
  [[nodiscard]] const SiteHealth& site_health() const { return site_health_; }
  [[nodiscard]] glidein::AgentRegistry& agents() { return agents_; }
  [[nodiscard]] LeaseManager& leases() { return leases_; }
  [[nodiscard]] const std::string& endpoint() const { return endpoint_; }
  [[nodiscard]] std::size_t broker_queue_length() const { return waiting_batch_.size(); }

  /// All job records (inspection / experiment reporting).
  [[nodiscard]] std::vector<const JobRecord*> all_records() const;

  /// True while heartbeat supervision considers the agent unreachable.
  [[nodiscard]] bool agent_suspected(AgentId id) const;

  /// Free interactive VM slots on a site as the broker advertises them:
  /// suspected agents do not count (they may be dead behind the partition).
  [[nodiscard]] int advertised_interactive_vms(SiteId site);

private:
  struct ManagedJob {
    JobRecord record;
    JobCallbacks callbacks;
    /// Sites already tried and to be avoided on resubmission.
    std::vector<SiteId> excluded_sites;
    /// Leases held while dispatching (released on start or failure).
    std::vector<LeaseId> held_leases;
    int subjobs_running = 0;
    int subjobs_completed = 0;
    bool queue_timer_armed = false;
    bool staging_out = false;  ///< OutputSandbox transfer in progress
    /// Requirements/Rank compiled once per job, reused across scheduling
    /// attempts and resubmissions (fast path only).
    std::shared_ptr<const jdl::CompiledMatch> compiled_match;
    /// Runtime barrier coordination for BSP workloads (multi-rank only).
    std::unique_ptr<mpijob::RuntimeBarrierCoordinator> barrier_coordinator;
  };

  struct AgentInfo {
    AgentId id;
    SiteId site;
    JobId carrier_job;
    bool ran_any_job = false;
    std::optional<JobId> batch_resident;
    /// Interactive jobs resident on the agent's interactive VMs (one per
    /// slot; several with a multiprogramming degree above 1).
    std::vector<JobId> interactive_residents;
    /// Interactive jobs reserved onto slots but not yet started.
    std::vector<JobId> pending_interactive;
    std::optional<JobId> pending_batch;
    /// Heartbeat supervision (fault recovery): consecutive missed probes and
    /// whether the agent is currently suspected unreachable.
    int missed_heartbeats = 0;
    bool suspected = false;
    /// Liveness-echo supervision: highest probe sequence sent / echoed back,
    /// and consecutive unanswered probes. probe_seq > echo_seq means a probe
    /// is outstanding when the next tick fires.
    std::uint64_t probe_seq = 0;
    std::uint64_t echo_seq = 0;
    int missed_echoes = 0;
    /// When the current suspicion began; guards the eviction timer against
    /// suspect -> restore -> suspect races.
    std::optional<SimTime> suspected_since;
    /// Deadline-bucket membership for the supervision channels (absent:
    /// not bucketed). Ticks visit only agents whose deadline elapsed
    /// instead of scanning every known agent.
    std::optional<SimTime> hb_due;
    std::optional<SimTime> lv_due;
    /// Fired (once) when the agent's AgentRegister message arrives.
    std::function<void(AgentInfo&)> on_ready;
    /// Free slots minus reservations: what a new placement may still take.
    /// A suspected agent offers nothing until it re-registers.
    [[nodiscard]] int reservable_slots(const glidein::GlideinAgent& agent) const {
      if (suspected) return 0;
      return agent.free_interactive_slots() -
             static_cast<int>(pending_interactive.size());
    }
  };

  // -- pipeline ------------------------------------------------------------
  void schedule_job(JobId id);
  void begin_discovery(JobId id);
  void begin_selection(JobId id, std::vector<infosys::SiteRecord> stale_records);
  /// Fast-path variant: the shared index snapshot is scanned in place —
  /// neither the records nor their shared_ptrs are copied.
  void begin_selection(
      JobId id,
      std::shared_ptr<const infosys::InformationSystem::IndexSnapshot> stale);
  /// Common tail of both begin_selection overloads: fresh per-site queries
  /// over the coarse survivors, then the final filter + placement.
  void continue_selection(JobId id, std::vector<SiteId> coarse);
  /// `preselected` carries the fused filter+select decision of the fast
  /// path for sequential jobs; absent, the sequential branch selects from
  /// `fresh_candidates` itself (legacy path, or no match -> no resources).
  void place_job(JobId id, std::vector<Candidate> fresh_candidates,
                 std::optional<Candidate> preselected = std::nullopt);
  void handle_no_resources(JobId id);

  // -- dispatch ------------------------------------------------------------
  void dispatch_interactive_on_vms(JobId id);
  void dispatch_subjob_to_vm(JobId id, std::size_t subjob_index,
                             glidein::GlideinAgent& agent);
  void dispatch_subjob_exclusive(JobId id, std::size_t subjob_index, SiteId site);
  void dispatch_subjob_with_new_agent(JobId id, std::size_t subjob_index,
                                      SiteId site, bool interactive_slot);
  void arm_queue_detection(JobId id, std::size_t subjob_index, SiteId site);

  // -- lifecycle -----------------------------------------------------------
  void set_state(ManagedJob& job, JobState state);
  void subjob_started(JobId id, std::size_t subjob_index);
  void subjob_completed(JobId id, std::size_t subjob_index);
  void complete_job(JobId id);
  void fail_job(JobId id, Error error);
  void reject_job(JobId id, Error error);
  void resubmit_job(JobId id);
  void release_leases(ManagedJob& job);
  void poll_broker_queue();
  /// Barrier plumbing for parallel BSP workloads.
  void setup_barrier_coordination(ManagedJob& job);
  [[nodiscard]] lrms::TaskRunner::BarrierFn barrier_handler_for(JobId id, int rank);

  // -- glide-in management -------------------------------------------------
  AgentInfo& create_agent_with_carrier(SiteId site,
                                       std::function<void(AgentInfo&)> on_ready,
                                       std::function<void()> on_carrier_failed);
  void start_job_on_agent(JobId id, std::size_t subjob_index, AgentInfo& info,
                          bool interactive_slot);
  void maybe_dismiss_agent(AgentId agent_id);
  void handle_agent_death(AgentId agent_id);
  void on_site_job_killed(SiteId site, JobId job, NodeId node);

  // -- control plane ---------------------------------------------------------
  /// Dispatcher for messages arriving at the broker's bus endpoint
  /// (AgentRegister announcements, LivenessEcho replies).
  void handle_bus_message(const net::Envelope& envelope);
  void handle_agent_register(AgentId agent_id);

  // -- heartbeat + liveness supervision --------------------------------------
  /// Enters the (running) agent into the supervision deadline buckets, due
  /// at the next tick of each enabled channel.
  void supervise_agent(AgentInfo& info);
  /// Drops the agent from the supervision buckets (death / voluntary exit).
  void unsupervise_agent(AgentInfo& info);
  /// Pops every bucket due at or before now and returns the merged ids in
  /// ascending order (the old full scan's visit order).
  std::vector<AgentId> extract_due_agents(
      std::map<SimTime, std::set<AgentId>>& buckets);
  void heartbeat_tick();
  void liveness_tick();
  void send_liveness_probe(AgentId agent_id, AgentInfo& info,
                           const lrms::Site& site);
  void on_liveness_echo(AgentId agent_id, std::uint64_t seq);
  void suspect_agent(AgentId agent_id, const char* reason);
  void restore_agent(AgentId agent_id);
  /// True when nothing (link heartbeats, liveness echoes) still accuses the
  /// agent; gates restoration so a wedged agent on a healthy link is not
  /// resurrected by passing heartbeats alone.
  [[nodiscard]] bool clear_of_suspicion(const AgentInfo& info) const;
  void evict_suspected_residents(AgentId agent_id, SimTime suspected_since);

  [[nodiscard]] double application_factor(const ManagedJob& job) const;
  /// Pre-flight credential check (security enabled only); also used before
  /// delegating to agents.
  [[nodiscard]] Status check_user_security(UserId user) const;
  [[nodiscard]] std::optional<gsi::CertificateChain> chain_for(UserId user) const;
  [[nodiscard]] lrms::Site* find_site(SiteId id);
  [[nodiscard]] ManagedJob* find_job(JobId id);
  [[nodiscard]] int needed_cpus_per_site(const jdl::JobDescription& desc) const;

  sim::Simulation& sim_;
  net::ControlBus& bus_;
  infosys::InformationSystem& infosys_;
  CrossBrokerConfig config_;
  std::string endpoint_;
  Rng rng_;

  Matchmaker matchmaker_;
  LeaseManager leases_;
  FairShare fair_share_;
  glidein::AgentRegistry agents_;
  SiteHealth site_health_;

  void trace(JobId job, const std::string& kind, const std::string& detail);
  /// Typed lifecycle event into the attached obs::JobTracer (no-op without).
  void tracev(JobId job, obs::TraceEventKind kind, std::string detail,
              obs::LabelSet attrs = {});
  /// Counter / histogram shorthands against the attached MetricsRegistry.
  void count(const char* name, obs::LabelSet labels = {}, std::uint64_t by = 1);
  void observe(const char* name, double value, obs::LabelSet labels = {});

  /// Pre-resolved handles for the per-event hot paths (bound in
  /// set_observability; inert while no registry is attached). Everything
  /// labeled per-site is cached per site on first use.
  struct BrokerMetrics {
    obs::CounterHandle invalidations_republish;
    obs::CounterHandle invalidations_unregister;
    obs::CounterHandle invalidations_lease;
    obs::CounterHandle leases_acquired;
    obs::CounterHandle lease_revocations;
    obs::CounterHandle liveness_probes;
    /// Indexed by PlacementKind (the histogram's "placement" label).
    std::array<obs::HistogramHandle, 5> match_latency;
    std::map<SiteId, obs::CounterHandle> heartbeat_misses;
    std::map<SiteId, obs::CounterHandle> liveness_misses;
  };
  /// The cached per-site counter handle, binding it on first use.
  obs::CounterHandle& per_site_counter(
      std::map<SiteId, obs::CounterHandle>& cache, const char* name,
      SiteId site);

  JobTrace* trace_ = nullptr;
  obs::Observability* obs_ = nullptr;
  const gsi::Certificate* trust_anchor_ = nullptr;
  std::vector<gsi::Credential> broker_credentials_;
  std::map<UserId, std::vector<gsi::Credential>> user_credentials_;

  BrokerMetrics metrics_;

  std::map<SiteId, lrms::Site*> sites_;
  std::map<JobId, std::unique_ptr<ManagedJob>> jobs_;
  std::map<AgentId, AgentInfo> agent_info_;
  /// Supervision deadline buckets: tick time -> agents due then. A std::set
  /// per bucket keeps extraction in ascending AgentId order — the exact
  /// order the old full scans visited agents in.
  std::map<SimTime, std::set<AgentId>> hb_buckets_;
  std::map<SimTime, std::set<AgentId>> lv_buckets_;
  std::deque<JobId> waiting_batch_;
  IdGenerator<JobId> job_ids_;
  IdGenerator<SubJobId> subjob_ids_;
  bool queue_poll_armed_ = false;
};

}  // namespace cg::broker
