// Local resource management system (PBS/Condor-like): a FIFO (optionally
// priority-ordered) queue in front of a pool of worker nodes. The dispatch
// latency models the batch system's scheduling cycle — one of the costs that
// make normal grid submission slow for interactive jobs (Table I).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lrms/worker_node.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"

namespace cg::lrms {

enum class QueuePolicy {
  kFifo,            ///< strict arrival order (PBS default)
  kShortestFirst,   ///< shortest declared CPU first (illustrative alternative)
  /// Condor-style matchmaking: the earliest queued job whose ClassAd
  /// Requirements match a free node's machine ad runs on *that* node; jobs
  /// without an ad match any node. Heterogeneous pools schedule around
  /// non-matching jobs instead of head-of-line blocking.
  kMatchmaking,
};

struct LocalSchedulerConfig {
  QueuePolicy policy = QueuePolicy::kFifo;
  /// Time from "node free + job queued" to the job actually starting
  /// (the LRMS scheduling cycle, e.g. a PBS server iteration).
  Duration dispatch_latency = Duration::millis(2000);
  /// Upper bound on queued jobs; submissions beyond it are rejected.
  std::size_t max_queue_length = 1024;
};

class LocalScheduler {
public:
  using JobKilledFn = std::function<void(JobId, NodeId)>;

  LocalScheduler(sim::Simulation& sim, std::vector<WorkerNodeSpec> nodes,
                 LocalSchedulerConfig config = {});

  /// Enqueues a job. Returns false if the queue is full.
  bool submit(LocalJob job);

  /// Removes a queued job. Returns false if it is not in the queue
  /// (already running or unknown).
  bool cancel_queued(JobId id);

  /// Kills a running job wherever it is (simulates qdel / node failure).
  /// Fires the on_killed observer, not the job's on_complete.
  bool kill_running(JobId id);

  /// Completes a running manual-workload job (agent dismissal).
  bool finish_manual(JobId id);

  /// Simulated machine crash (fault injection): the node's resident job is
  /// killed (firing the kill observer) and the node stays out of service
  /// until revive_node. Index is 0-based. Returns the killed job's id.
  std::optional<JobId> fail_node(std::size_t index);

  /// Repairs a crashed node; queued jobs may dispatch onto it again.
  void revive_node(std::size_t index);

  /// Releases a running job from a barrier. Returns false if not running.
  bool release_barrier(JobId id);

  /// Installed by failure-injection tests and the glide-in layer to learn
  /// about kills.
  void set_kill_observer(JobKilledFn fn) { on_killed_ = std::move(fn); }

  /// Attaches a metrics registry (must outlive the scheduler, or be detached
  /// with nullptr): queue-depth gauge, dispatch-latency histogram (submit to
  /// job start, including the scheduling cycle) and rejection counter,
  /// labelled with `labels` (typically {"site": ...}).
  void set_metrics(obs::MetricsRegistry* metrics, obs::LabelSet labels = {});

  // -- State inspection (drives the information-system provider). ----------
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] int free_nodes() const;
  [[nodiscard]] int failed_nodes() const;
  [[nodiscard]] int running_jobs() const;
  [[nodiscard]] int queued_jobs() const { return static_cast<int>(queue_.size()); }
  [[nodiscard]] bool has_capacity_or_queue_space() const;
  [[nodiscard]] const LocalSchedulerConfig& config() const { return config_; }

  /// The node a job is running on, if it is running.
  [[nodiscard]] std::optional<NodeId> node_of(JobId id) const;
  /// Access to a node (tests, glide-in wiring). Index is 0-based.
  [[nodiscard]] WorkerNode& node(std::size_t index) { return *nodes_.at(index); }
  [[nodiscard]] WorkerNode* find_node(NodeId id);

private:
  void try_dispatch();
  void update_queue_metrics();
  [[nodiscard]] WorkerNode* first_idle_node();
  [[nodiscard]] std::deque<LocalJob>::iterator next_queued();
  /// Matchmaking dispatch: finds a (queued job, idle node) pair.
  [[nodiscard]] bool find_match(std::deque<LocalJob>::iterator& job_out,
                                WorkerNode** node_out);

  sim::Simulation& sim_;
  LocalSchedulerConfig config_;
  std::vector<std::unique_ptr<WorkerNode>> nodes_;
  std::deque<LocalJob> queue_;
  JobKilledFn on_killed_;
  IdGenerator<NodeId> node_ids_;

  /// Pre-resolved handles, bound once in set_metrics (inert when detached).
  /// Queue depth updates on every submit/cancel/dispatch, so the hot path
  /// must not re-resolve name+labels against the registry maps.
  struct MetricHandles {
    obs::GaugeHandle queue_depth;
    obs::CounterHandle jobs_rejected;
    obs::CounterHandle dispatches;
    obs::HistogramHandle dispatch_latency;
    bool attached = false;
  };
  MetricHandles metrics_;
  /// Submission instants of jobs not yet started (drives dispatch latency).
  std::map<JobId, SimTime> enqueued_at_;
};

}  // namespace cg::lrms
