// Ablation A4: what the fair-share machinery buys (Section 5.1).
//
// Part 1 — queue ordering. A spammer floods the broker queue with long
// batch jobs; an honest light user submits one batch job mid-flood. With
// fair-share priority ordering the honest job leapfrogs the spam backlog;
// with FIFO it waits behind all of it.
//
// Part 2 — rejection. The same flood as interactive jobs with a rejection
// threshold: once the spammer's priority degrades past it, their
// submissions are refused under contention, and idleness restores their
// credits with the configured half-life.
#include <iostream>
#include <optional>

#include "grid/grid.hpp"
#include "util/stats.hpp"

namespace {

using namespace cg;
using namespace cg::broker;
using namespace cg::literals;

jdl::JobDescription batch_job() {
  return jdl::JobDescription::parse("Executable = \"sim\";").value();
}

/// Part 1: honest batch job's wait behind a spam backlog.
double honest_wait_seconds(bool priority_ordering) {
  GridConfig config;
  config.sites = 2;
  config.nodes_per_site = 1;
  config.broker.fair_share_queue_ordering = priority_ordering;
  config.broker.fair_share.update_interval = 10_s;
  config.broker.fair_share.half_life = 3600_s;
  config.broker.broker_queue_poll = 30_s;
  Grid grid{config};

  const UserId spammer{1};
  const UserId honest{2};
  // 10 spam batch jobs of 600 s each: 2 run, 8 queue in the broker.
  for (int i = 0; i < 10; ++i) {
    grid.sim().schedule(Duration::seconds(i), [&grid, spammer] {
      if (!grid.submit(batch_job(), spammer, lrms::Workload::cpu(600_s))) {
        std::cerr << "spam submission refused\n";
      }
    });
  }
  std::optional<double> honest_started;
  grid.sim().schedule(300_s, [&grid, honest, &honest_started] {
    const SimTime submitted = grid.sim().now();
    JobCallbacks callbacks;
    callbacks.on_running = [&honest_started, submitted,
                            &grid](const JobRecord&) {
      honest_started = (grid.sim().now() - submitted).to_seconds();
    };
    if (!grid.submit(batch_job(), honest, lrms::Workload::cpu(100_s),
                     callbacks)) {
      std::cerr << "honest submission refused\n";
    }
  });
  grid.sim().run_until(SimTime::from_seconds(6 * 3600));
  return honest_started.value_or(-1.0);
}

/// Part 2: interactive spam against a rejection threshold.
struct RejectionStats {
  int completed = 0;
  int rejected = 0;
  int failed = 0;
  std::vector<std::pair<double, double>> priority_trace;
};

RejectionStats run_rejection_demo() {
  GridConfig config;
  config.sites = 2;
  config.nodes_per_site = 1;
  config.broker.reject_priority_threshold = 0.5;
  config.broker.fair_share.update_interval = 10_s;
  config.broker.fair_share.half_life = 900_s;
  Grid grid{config};

  RejectionStats stats;
  const UserId spammer{1};
  auto jd = jdl::JobDescription::parse(
      "Executable = \"viz\"; JobType = \"interactive\";");
  for (int i = 0; i < 24; ++i) {
    grid.sim().schedule(Duration::seconds(180 * i), [&grid, &stats, &jd,
                                                     spammer] {
      JobCallbacks callbacks;
      callbacks.on_complete = [&stats](const JobRecord&) { ++stats.completed; };
      callbacks.on_failed = [&stats](const JobRecord& record, const Error&) {
        if (record.state == JobState::kRejected) {
          ++stats.rejected;
        } else {
          ++stats.failed;
        }
      };
      // An up-front over-share refusal and an async kRejected count the same.
      if (const auto job = grid.submit(jd.value(), spammer,
                                       lrms::Workload::cpu(600_s), callbacks);
          !job && job.error().kind == SubmitErrorKind::kOverShare) {
        ++stats.rejected;
      }
    });
  }
  for (int t = 0; t <= 9000; t += 900) {
    grid.sim().schedule(Duration::seconds(t), [&grid, &stats, spammer, t] {
      stats.priority_trace.emplace_back(
          t, grid.broker().fair_share().priority(spammer));
    });
  }
  grid.sim().run_until(SimTime::from_seconds(9000));
  return stats;
}

}  // namespace

int main() {
  std::cout << "== Ablation A4: fair-share ordering and rejection ==\n\n";

  const double wait_priority = honest_wait_seconds(true);
  const double wait_fifo = honest_wait_seconds(false);
  cg::TablePrinter part1{{"Broker queue policy", "Honest job wait (s)"}};
  part1.add_row({"fair-share priority", cg::fmt_fixed(wait_priority, 1)});
  part1.add_row({"FIFO", cg::fmt_fixed(wait_fifo, 1)});
  std::cout << part1.render() << "\n";

  const RejectionStats rejection = run_rejection_demo();
  cg::TablePrinter part2{{"Spammer outcome", "Count"}};
  part2.add_row({"completed", std::to_string(rejection.completed)});
  part2.add_row({"rejected (fair share)", std::to_string(rejection.rejected)});
  part2.add_row({"failed (no resources)", std::to_string(rejection.failed)});
  std::cout << part2.render() << "\n";

  std::cout << "spammer priority trace (t, P), threshold 0.5:\n  ";
  for (const auto& [t, p] : rejection.priority_trace) {
    std::cout << "(" << t << ", " << cg::fmt_fixed(p, 3) << ") ";
  }
  std::cout << "\n\n";

  const auto check = [](const std::string& claim, bool holds) {
    std::cout << (holds ? "  [ok]   " : "  [MISS] ") << claim << "\n";
  };
  check("priority ordering lets the honest job leapfrog the spam backlog",
        wait_priority > 0.0 && wait_fifo > 0.0 &&
            wait_priority < wait_fifo / 2.0);
  check("spammer rejected under contention once their priority degraded",
        rejection.rejected > 0);
  check("rejection recovers: some later submissions still complete",
        rejection.completed >= 2);
  return 0;
}
