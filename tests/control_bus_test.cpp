// ControlBus: the typed control-plane message bus. Covers per-link FIFO
// delivery and sequence monotonicity, partition-drop parity with the old raw
// is_up() checks, the latency model (channel + processing + payload
// transfer), inline delivery, drop/dup/reorder message faults armed through
// the FaultPlan DSL, and the per-type metrics + trace emission.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "net/control_bus.hpp"
#include "obs/observability.hpp"
#include "sim/fault.hpp"
#include "sim/network.hpp"
#include "sim/simulation.hpp"

namespace cg::net {
namespace {

using namespace cg::literals;

class ControlBusTest : public ::testing::Test {
protected:
  ControlBusTest() : network{Rng{7}}, bus{sim, network} {}

  sim::Simulation sim;
  sim::Network network;
  ControlBus bus;
};

TEST_F(ControlBusTest, PerLinkFifoAndMonotonicSeq) {
  std::vector<std::uint64_t> seqs;
  SendOptions options;
  options.channel_latency = 250_ms;
  for (int i = 0; i < 3; ++i) {
    bus.send("broker", "site:a", Heartbeat{AgentId{1}}, options,
             [&](const Envelope& e) { seqs.push_back(e.seq); });
  }
  // A different directed pair sequences independently.
  std::uint64_t reverse_seq = 0;
  bus.send("site:a", "broker", Heartbeat{AgentId{1}}, options,
           [&](const Envelope& e) { reverse_seq = e.seq; });
  sim.run();
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(reverse_seq, 1u);
  EXPECT_EQ(bus.last_seq("broker", "site:a"), 3u);
  EXPECT_EQ(bus.last_seq("site:a", "broker"), 1u);
  EXPECT_EQ(bus.last_seq("broker", "site:b"), 0u);
}

TEST_F(ControlBusTest, EqualLatencySendsDeliverInSendOrder) {
  std::vector<int> order;
  SendOptions options;
  options.channel_latency = 100_ms;
  for (int i = 0; i < 4; ++i) {
    bus.send("broker", "site:a", LivenessProbe{AgentId{1}, std::uint64_t(i)},
             options, [&, i](const Envelope&) { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST_F(ControlBusTest, PartitionDropParityWithIsUp) {
  network.add_link("broker", "site:a", sim::LinkSpec::local());
  sim::FaultInjector injector{sim, &network};
  sim::FaultPlan plan;
  plan.partition_link("broker", "site:a", SimTime::from_seconds(10), 20_s);
  injector.arm(plan);

  int delivered = 0;
  int refused = 0;
  const auto try_send = [&](bool drop_when_down) {
    SendOptions options;
    options.drop_when_down = drop_when_down;
    if (!bus.send("broker", "site:a", Heartbeat{AgentId{1}}, options,
                  [&](const Envelope&) { ++delivered; })) {
      ++refused;
    }
  };
  // Before, inside, and after the window — is_up parity at send time.
  sim.schedule_at(SimTime::from_seconds(5), [&] { try_send(true); });
  sim.schedule_at(SimTime::from_seconds(15), [&] { try_send(true); });
  // Sends that historically ignored partitions still go through.
  sim.schedule_at(SimTime::from_seconds(16), [&] { try_send(false); });
  sim.schedule_at(SimTime::from_seconds(35), [&] { try_send(true); });
  sim.schedule_at(SimTime::from_seconds(5), [&] {
    EXPECT_TRUE(bus.probe("broker", "site:a", Heartbeat{AgentId{1}}));
  });
  sim.schedule_at(SimTime::from_seconds(15), [&] {
    EXPECT_FALSE(bus.probe("broker", "site:a", Heartbeat{AgentId{1}}));
  });
  sim.run();
  EXPECT_EQ(delivered, 3);  // 5 s, 16 s (ignores partition), 35 s
  EXPECT_EQ(refused, 1);    // 15 s with drop_when_down
}

TEST_F(ControlBusTest, LatencyModelSumsChannelProcessingAndTransfer) {
  network.add_link("ui", "site:a", sim::LinkSpec::campus());
  SendOptions options;
  options.channel_latency = 250_ms;
  options.processing_latency = 2_s;
  options.payload_bytes = 12'500'000;  // ~1 s on the 100 Mb/s campus link
  options.transfer_src = "ui";
  SimTime arrived;
  bus.send("broker", "site:a", StageSandbox{JobId{1}, 12'500'000, true},
           options, [&](const Envelope&) { arrived = sim.now(); });
  sim.run();
  // 0.25 s channel + 2 s processing + ~1 s serialization on the campus link.
  EXPECT_NEAR(arrived.to_seconds(), 3.25, 0.02);
}

TEST_F(ControlBusTest, InlineWhenImmediateDeliversSynchronously) {
  bool delivered = false;
  SendOptions inline_options;
  inline_options.inline_when_immediate = true;
  bus.send("broker", "site:a", KillJob{JobId{9}}, inline_options,
           [&](const Envelope& e) {
             delivered = true;
             EXPECT_EQ(std::get<KillJob>(e.payload).job, JobId{9});
           });
  EXPECT_TRUE(delivered);  // before sim.run(): no event was scheduled
  EXPECT_EQ(bus.in_flight(), 0u);

  // Without the flag, a zero-latency send still schedules one event.
  bool scheduled_delivered = false;
  bus.send("broker", "site:a", KillJob{JobId{10}}, {},
           [&](const Envelope&) { scheduled_delivered = true; });
  EXPECT_FALSE(scheduled_delivered);
  EXPECT_EQ(bus.in_flight(), 1u);
  sim.run();
  EXPECT_TRUE(scheduled_delivered);
}

TEST_F(ControlBusTest, BoundHandlerReceivesWhenNoContinuation) {
  std::vector<std::string> seen;
  bus.bind("broker", [&](const Envelope& e) {
    seen.push_back(std::string{to_string(type_of(e.payload))});
  });
  bus.send("site:a", "broker", AgentRegister{AgentId{3}});
  bus.send("site:a", "broker", LivenessEcho{AgentId{3}, 1});
  sim.run();
  EXPECT_EQ(seen, (std::vector<std::string>{"AgentRegister", "LivenessEcho"}));

  bus.unbind("broker");
  bus.send("site:a", "broker", AgentRegister{AgentId{4}});
  sim.run();  // nowhere to deliver; must not crash
  EXPECT_EQ(seen.size(), 2u);
}

TEST_F(ControlBusTest, DropFaultFiltersByTypeAndWindow) {
  sim::FaultInjector injector{sim, &network};
  injector.register_message_sink(&bus);
  sim::FaultPlan plan;
  plan.drop_messages("LivenessEcho", "", "", SimTime::from_seconds(10), 10_s);
  injector.arm(plan);

  int echoes = 0;
  int probes = 0;
  const auto send_both = [&] {
    bus.send("site:a", "broker", LivenessEcho{AgentId{1}, 1}, {},
             [&](const Envelope&) { ++echoes; });
    bus.send("broker", "site:a", LivenessProbe{AgentId{1}, 1}, {},
             [&](const Envelope&) { ++probes; });
  };
  sim.schedule_at(SimTime::from_seconds(5), send_both);
  sim.schedule_at(SimTime::from_seconds(15), send_both);  // echo blackholed
  sim.schedule_at(SimTime::from_seconds(25), send_both);  // healed
  sim.schedule_at(SimTime::from_seconds(15),
                  [&] { EXPECT_EQ(bus.active_message_faults(), 1u); });
  sim.run();
  EXPECT_EQ(echoes, 2);
  EXPECT_EQ(probes, 3);
  EXPECT_EQ(bus.active_message_faults(), 0u);
}

TEST_F(ControlBusTest, DropFaultFiltersByEndpointPair) {
  sim::FaultInjector injector{sim, &network};
  injector.register_message_sink(&bus);
  sim::FaultPlan plan;
  plan.drop_messages("*", "broker", "site:a", SimTime::from_seconds(0), 100_s);
  injector.arm(plan);

  int site_a = 0;
  int site_b = 0;
  sim.schedule_at(SimTime::from_seconds(1), [&] {
    bus.send("broker", "site:a", Heartbeat{AgentId{1}}, {},
             [&](const Envelope&) { ++site_a; });
    bus.send("broker", "site:b", Heartbeat{AgentId{2}}, {},
             [&](const Envelope&) { ++site_b; });
  });
  sim.run();
  EXPECT_EQ(site_a, 0);
  EXPECT_EQ(site_b, 1);
}

TEST_F(ControlBusTest, DupFaultDeliversTwice) {
  sim::FaultInjector injector{sim, &network};
  injector.register_message_sink(&bus);
  sim::FaultPlan plan;
  plan.duplicate_messages("Heartbeat", "", "", SimTime::from_seconds(0), 10_s);
  injector.arm(plan);

  int deliveries = 0;
  sim.schedule_at(SimTime::from_seconds(1), [&] {
    bus.send("broker", "site:a", Heartbeat{AgentId{1}}, {},
             [&](const Envelope&) { ++deliveries; });
  });
  sim.run();
  EXPECT_EQ(deliveries, 2);
}

TEST_F(ControlBusTest, ReorderFaultDelaysPastLaterTraffic) {
  sim::FaultInjector injector{sim, &network};
  injector.register_message_sink(&bus);
  sim::FaultPlan plan;
  plan.reorder_messages("JobStatus", "", "", SimTime::from_seconds(0), 10_s,
                        500_ms);
  injector.arm(plan);

  std::vector<std::string> order;
  sim.schedule_at(SimTime::from_seconds(1), [&] {
    bus.send("site:a", "broker", JobStatus{JobId{1}, StatusPhase::kStarted}, {},
             [&](const Envelope&) { order.push_back("status"); });
    bus.send("site:a", "broker", Heartbeat{AgentId{1}}, {},
             [&](const Envelope&) { order.push_back("heartbeat"); });
  });
  sim.run();
  // The reordered JobStatus arrives after the heartbeat sent after it.
  EXPECT_EQ(order, (std::vector<std::string>{"heartbeat", "status"}));
}

TEST_F(ControlBusTest, MetricsAndTraceEmission) {
  obs::Observability obs;
  bus.set_observability(&obs);
  sim::FaultInjector injector{sim, &network};
  injector.register_message_sink(&bus);
  sim::FaultPlan plan;
  plan.drop_messages("LivenessEcho", "", "", SimTime::from_seconds(0), 10_s);
  injector.arm(plan);

  SendOptions options;
  options.channel_latency = 250_ms;
  sim.schedule_at(SimTime::from_seconds(1), [&] {
    bus.send("broker", "site:a", Heartbeat{AgentId{1}}, options);
    bus.send("site:a", "broker", LivenessEcho{AgentId{1}, 1}, options);
  });
  sim.run();

  EXPECT_EQ(obs.metrics.counter("net.msg.sent", {{"type", "Heartbeat"}}).value(),
            1u);
  EXPECT_EQ(
      obs.metrics.counter("net.msg.delivered", {{"type", "Heartbeat"}}).value(),
      1u);
  EXPECT_EQ(
      obs.metrics.counter("net.msg.sent", {{"type", "LivenessEcho"}}).value(),
      1u);
  EXPECT_EQ(
      obs.metrics.counter("net.msg.dropped", {{"type", "LivenessEcho"}}).value(),
      1u);
  const obs::Histogram* latency =
      obs.metrics.find_histogram("net.msg.latency_s", {{"type", "Heartbeat"}});
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count(), 1u);
  EXPECT_NEAR(latency->mean(), 0.25, 1e-9);

  bool saw_drop_event = false;
  for (const auto& event : obs.tracer.events()) {
    if (event.kind == obs::TraceEventKind::kMsgDropped) saw_drop_event = true;
  }
  EXPECT_TRUE(saw_drop_event);
}

TEST_F(ControlBusTest, MessageTypeCatalogRoundTrips) {
  EXPECT_EQ(type_of(Message{SubmitJob{}}), MsgType::kSubmitJob);
  EXPECT_EQ(type_of(Message{LivenessEcho{}}), MsgType::kLivenessEcho);
  for (std::size_t i = 0; i < kMessageTypeCount; ++i) {
    const auto type = static_cast<MsgType>(i);
    EXPECT_EQ(type_from_name(to_string(type)), type);
  }
  EXPECT_FALSE(type_from_name("NoSuchMessage").has_value());
  EXPECT_TRUE(is_wildcard_type("*"));
  EXPECT_TRUE(is_wildcard_type(""));
  EXPECT_FALSE(is_wildcard_type("Heartbeat"));
}

}  // namespace
}  // namespace cg::net
