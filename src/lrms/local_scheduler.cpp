#include "lrms/local_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "jdl/eval.hpp"
#include "util/log.hpp"

namespace cg::lrms {

LocalScheduler::LocalScheduler(sim::Simulation& sim,
                               std::vector<WorkerNodeSpec> nodes,
                               LocalSchedulerConfig config)
    : sim_{sim}, config_{config} {
  if (nodes.empty()) throw std::invalid_argument{"LocalScheduler: no nodes"};
  nodes_.reserve(nodes.size());
  for (const auto& spec : nodes) {
    nodes_.push_back(std::make_unique<WorkerNode>(sim_, node_ids_.next(), spec));
  }
}

void LocalScheduler::set_metrics(obs::MetricsRegistry* metrics,
                                 obs::LabelSet labels) {
  metrics_ = MetricHandles{};
  if (metrics != nullptr) {
    metrics_.queue_depth = metrics->gauge_handle("lrms.queue_depth", labels);
    metrics_.jobs_rejected = metrics->counter_handle("lrms.jobs_rejected", labels);
    metrics_.dispatches = metrics->counter_handle("lrms.dispatches", labels);
    metrics_.dispatch_latency =
        metrics->histogram_handle("lrms.dispatch_latency_s", std::move(labels));
    metrics_.attached = true;
  }
  update_queue_metrics();
}

void LocalScheduler::update_queue_metrics() {
  metrics_.queue_depth.set(static_cast<double>(queue_.size()));
}

bool LocalScheduler::submit(LocalJob job) {
  // A full queue only matters when no node can take the job right away.
  if (queue_.size() >= config_.max_queue_length && first_idle_node() == nullptr) {
    log_warn("lrms", "queue full, rejecting ", job.id);
    metrics_.jobs_rejected.inc();
    return false;
  }
  // Wrap completion so a finishing job pulls the next one from the queue.
  auto user_complete = std::move(job.on_complete);
  job.on_complete = [this, user_complete = std::move(user_complete)] {
    if (user_complete) user_complete();
    try_dispatch();
  };
  enqueued_at_.emplace(job.id, sim_.now());
  queue_.push_back(std::move(job));
  update_queue_metrics();
  try_dispatch();
  return true;
}

bool LocalScheduler::cancel_queued(JobId id) {
  const auto it = std::find_if(queue_.begin(), queue_.end(),
                               [id](const LocalJob& j) { return j.id == id; });
  if (it == queue_.end()) return false;
  queue_.erase(it);
  enqueued_at_.erase(id);
  update_queue_metrics();
  return true;
}

bool LocalScheduler::kill_running(JobId id) {
  for (auto& node : nodes_) {
    if (node->current_job() == id) {
      const NodeId where = node->id();
      node->kill_current();
      if (on_killed_) on_killed_(id, where);
      try_dispatch();
      return true;
    }
  }
  return false;
}

bool LocalScheduler::release_barrier(JobId id) {
  for (auto& node : nodes_) {
    if (node->current_job() == id) {
      node->release_barrier();
      return true;
    }
  }
  return false;
}

bool LocalScheduler::finish_manual(JobId id) {
  for (auto& node : nodes_) {
    if (node->current_job() == id) {
      node->finish_current_manual();
      return true;
    }
  }
  return false;
}

std::optional<JobId> LocalScheduler::fail_node(std::size_t index) {
  WorkerNode& node = *nodes_.at(index);
  const NodeId where = node.id();
  const std::optional<JobId> killed = node.fail();
  if (killed && on_killed_) on_killed_(*killed, where);
  return killed;
}

void LocalScheduler::revive_node(std::size_t index) {
  nodes_.at(index)->revive();
  try_dispatch();
}

int LocalScheduler::failed_nodes() const {
  int n = 0;
  for (const auto& node : nodes_) {
    if (node->failed()) ++n;
  }
  return n;
}

int LocalScheduler::free_nodes() const {
  int n = 0;
  for (const auto& node : nodes_) {
    if (node->idle()) ++n;
  }
  return n;
}

int LocalScheduler::running_jobs() const {
  int n = 0;
  for (const auto& node : nodes_) {
    if (node->current_job()) ++n;
  }
  return n;
}

bool LocalScheduler::has_capacity_or_queue_space() const {
  return free_nodes() > 0 || queue_.size() < config_.max_queue_length;
}

std::optional<NodeId> LocalScheduler::node_of(JobId id) const {
  for (const auto& node : nodes_) {
    if (node->current_job() == id) return node->id();
  }
  return std::nullopt;
}

WorkerNode* LocalScheduler::find_node(NodeId id) {
  for (auto& node : nodes_) {
    if (node->id() == id) return node.get();
  }
  return nullptr;
}

WorkerNode* LocalScheduler::first_idle_node() {
  for (auto& node : nodes_) {
    if (node->idle()) return node.get();
  }
  return nullptr;
}

std::deque<LocalJob>::iterator LocalScheduler::next_queued() {
  if (config_.policy == QueuePolicy::kShortestFirst) {
    return std::min_element(queue_.begin(), queue_.end(),
                            [](const LocalJob& a, const LocalJob& b) {
                              return a.workload.total_cpu() < b.workload.total_cpu();
                            });
  }
  return queue_.begin();
}

bool LocalScheduler::find_match(std::deque<LocalJob>::iterator& job_out,
                                WorkerNode** node_out) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    for (auto& node : nodes_) {
      if (!node->idle()) continue;
      if (it->job_ad && !jdl::symmetric_match(*it->job_ad, node->machine_ad())) {
        continue;
      }
      job_out = it;
      *node_out = node.get();
      return true;
    }
  }
  return false;
}

void LocalScheduler::try_dispatch() {
  while (!queue_.empty()) {
    WorkerNode* node = nullptr;
    std::deque<LocalJob>::iterator it;
    if (config_.policy == QueuePolicy::kMatchmaking) {
      if (!find_match(it, &node)) return;
    } else {
      node = first_idle_node();
      if (node == nullptr) return;
      it = next_queued();
    }
    LocalJob job = std::move(*it);
    queue_.erase(it);
    update_queue_metrics();
    node->reserve();
    const NodeId node_id = node->id();
    sim_.schedule(config_.dispatch_latency, [this, node_id, job = std::move(job)]() mutable {
      WorkerNode* target = find_node(node_id);
      if (target == nullptr) return;
      if (target->failed()) {
        // The node crashed mid-dispatch; put the job back at the head.
        queue_.push_front(std::move(job));
        update_queue_metrics();
        try_dispatch();
        return;
      }
      if (metrics_.attached) {
        const auto enq = enqueued_at_.find(job.id);
        if (enq != enqueued_at_.end()) {
          metrics_.dispatch_latency.observe_duration(sim_.now() - enq->second);
          enqueued_at_.erase(enq);
        }
        metrics_.dispatches.inc();
      } else {
        enqueued_at_.erase(job.id);
      }
      target->run(std::move(job));
    });
  }
}

}  // namespace cg::lrms
