// Reliable streaming endpoint (Section 4): every message is spooled to local
// disk before transmission; failed sends stay in the spool and are retried
// at a fixed interval "for a certain number of times, after which they give
// up and kill the process". Delivery order is preserved across failures.
//
// Hot-path design: queue bookkeeping lives in inline rings, callbacks are
// InplaceFunctions (no per-message std::function heap allocation), and
// optional Nagle-style coalescing batches messages that queue up behind an
// in-flight transmit into one spool append and one channel send.
#pragma once

#include "obs/metrics.hpp"
#include "stream/channel_model.hpp"
#include "stream/spool.hpp"
#include "util/inplace_function.hpp"
#include "util/ring.hpp"

namespace cg::stream {

struct RetryPolicy {
  Duration retry_interval = Duration::seconds(5);
  int max_retries = 12;  ///< consecutive failed attempts before giving up
  /// Cap on un-acknowledged spooled bytes (0 = unlimited). A full spool
  /// rejects appends; they are retried on the same interval/budget as a
  /// failing link.
  std::size_t spool_capacity_bytes = 0;
  /// Nagle-style send coalescing: while a transmit is in flight, newly sent
  /// messages accumulate unspooled; when the channel frees up they are
  /// batched — up to this many bytes — into ONE spool append and ONE
  /// transmit, amortizing the per-operation disk and per-message channel
  /// overheads when the link round-trip dominates. 0 (the default) disables
  /// coalescing: every message is its own append and transmit, preserving
  /// the historical event sequence exactly (existing goldens and digests).
  std::size_t max_coalesce_bytes = 0;
};

class ReliableChannel {
public:
  using DeliverFn = util::InplaceFunction<void(std::size_t bytes), 48>;
  /// Fires once when the channel exhausts its retries (the paper's response:
  /// kill the process).
  using GiveUpFn = util::InplaceFunction<void(), 48>;
  /// Fires once per message whose first spool append was rejected (disk
  /// fault or full spool); the message stays queued and keeps retrying.
  using SpoolRejectFn = util::InplaceFunction<void(std::size_t bytes), 48>;

  /// `sender_disk` spools outgoing messages before transmission;
  /// `receiver_disk` (optional) models the other end's intermediate file —
  /// when present, delivery callbacks fire only after the receive-side write.
  ReliableChannel(sim::Simulation& sim, SimChannel& channel,
                  sim::DiskModel& sender_disk,
                  sim::DiskModel* receiver_disk = nullptr, RetryPolicy policy = {});
  ~ReliableChannel();
  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Queues a message. It is spooled to disk (cost charged) and transmitted
  /// as soon as all earlier messages have been delivered. A rejected append
  /// (unhealthy disk, full spool) leaves the message queued in memory; the
  /// append is retried on the retry interval and counts against the same
  /// budget as a failing link — nothing transmits before it is spooled.
  void send(std::size_t bytes, DeliverFn on_deliver);

  /// Capacity planning: pre-sizes the queue, in-flight delivery rings and
  /// spool bookkeeping for `entries` concurrently outstanding messages, so
  /// steady-state operation below that depth never grows a ring.
  void reserve(std::size_t entries);

  void set_give_up_handler(GiveUpFn fn) { on_give_up_ = std::move(fn); }
  void set_spool_reject_handler(SpoolRejectFn fn) {
    on_spool_reject_ = std::move(fn);
  }

  /// Attaches a metrics registry: bytes spooled, retry/reconnect and
  /// coalescing counters on top of `labels`. Must outlive the channel (or be
  /// detached with nullptr).
  void set_metrics(obs::MetricsRegistry* metrics, obs::LabelSet labels = {});

  [[nodiscard]] bool gave_up() const { return gave_up_; }
  [[nodiscard]] std::size_t in_flight_or_queued() const { return queue_.size(); }
  [[nodiscard]] const Spool& spool() const { return spool_; }
  [[nodiscard]] int consecutive_failures() const { return failures_; }
  [[nodiscard]] std::size_t retries_performed() const { return retries_; }
  /// Append attempts the spool rejected (every attempt, retries included).
  [[nodiscard]] std::size_t spool_rejections() const {
    return spool_.rejected_appends();
  }
  /// Batches that carried more than one message, and the messages they
  /// carried (0 unless max_coalesce_bytes is set).
  [[nodiscard]] std::size_t coalesced_batches() const { return coalesced_batches_; }
  [[nodiscard]] std::size_t coalesced_messages() const {
    return coalesced_messages_;
  }

private:
  struct Entry {
    std::size_t bytes = 0;
    DeliverFn on_deliver;
    /// Batch descriptor, meaningful on the head entry of a spooled batch:
    /// total bytes and message count of the one spool append / transmit it
    /// leads (equal to {bytes, 1} in the uncoalesced case).
    std::size_t batch_bytes = 0;
    std::uint32_t batch_count = 1;
    bool recovered_from_disk = false;
    bool spooled = false;          ///< on disk; only spooled entries transmit
    bool reject_reported = false;  ///< on_spool_reject fired for this entry
  };
  /// A delivered entry whose callback waits on the receiver-disk write.
  struct DeliveredEntry {
    std::size_t bytes = 0;
    DeliverFn on_deliver;
  };
  /// One receiver-disk write in flight. Completions can land out of order (a
  /// small batch's write finishes before a big predecessor's), so each event
  /// finds its batch by sequence number instead of assuming the ring head.
  struct PendingDelivery {
    std::uint64_t seq = 0;
    std::size_t entry_count = 0;
    sim::EventHandle event;
    bool fired = false;
  };

  [[nodiscard]] bool coalescing() const {
    return policy_.max_coalesce_bytes > 0;
  }
  /// Appends every not-yet-spooled entry in FIFO order (the spool is one
  /// sequential file) and starts transmission when the head is on disk.
  void pump_appends();
  /// Coalescing variant: forms at most one batch, only when the channel is
  /// idle (messages queued behind an in-flight transmit wait to be batched).
  void pump_appends_coalesced();
  void on_append_rejected(Entry& entry);
  void transmit_head(Duration extra_delay);
  void on_head_delivered();
  void on_head_failed();
  void fire_delivery(std::uint64_t seq);

  sim::Simulation& sim_;
  SimChannel& channel_;
  Spool spool_;
  sim::DiskModel* receiver_disk_;
  RetryPolicy policy_;
  GiveUpFn on_give_up_;
  SpoolRejectFn on_spool_reject_;

  util::Ring<Entry> queue_;
  /// Delivered-but-not-yet-reported entries (receiver-disk write pending),
  /// FIFO, grouped into batches by deliveries_.
  util::Ring<DeliveredEntry> delivered_;
  util::Ring<PendingDelivery> deliveries_;
  std::uint64_t next_delivery_seq_ = 1;
  bool transmitting_ = false;
  bool gave_up_ = false;
  int failures_ = 0;
  int spool_failures_ = 0;  ///< consecutive rejected appends
  std::size_t retries_ = 0;
  std::size_t coalesced_batches_ = 0;
  std::size_t coalesced_messages_ = 0;
  sim::ScopedTimer retry_timer_;
  sim::ScopedTimer spool_retry_timer_;
  sim::ScopedTimer transmit_timer_;
  std::uint64_t epoch_ = 0;  ///< invalidates in-flight callbacks on teardown
  /// Pre-resolved handles (bound once in set_metrics, inert when detached):
  /// spooling and retry accounting sit on the per-chunk transmit path.
  struct MetricHandles {
    obs::CounterHandle bytes_spooled;
    obs::CounterHandle spool_rejects;
    obs::CounterHandle reconnects;
    obs::CounterHandle retries;
    obs::CounterHandle coalesced_batches;
    obs::CounterHandle coalesced_messages;
  };
  MetricHandles metrics_;
};

}  // namespace cg::stream
