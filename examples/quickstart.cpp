// Quickstart: build a small simulated grid, submit an interactive job
// through the cg::Grid facade, watch it stream output back through a Grid
// Console, and read the run's metrics — the whole public API in one file.
//
//   $ ./quickstart
//
// Everything runs in virtual time: the program finishes instantly while the
// simulated clock covers minutes of grid activity.
#include <iostream>

#include "grid/grid.hpp"
#include "stream/grid_console.hpp"
#include "util/stats.hpp"

using namespace cg;
using namespace cg::literals;

int main() {
  // 1. A testbed: three sites of four worker nodes behind gatekeepers, an
  //    information system publishing every 30 s, and a CrossBroker — all
  //    owned and wired (trace + metrics) by one Grid object.
  GridConfig config;
  config.sites = 3;
  config.nodes_per_site = 4;
  Grid grid{config};

  // 2. A job description in JDL — the same syntax as the paper's Figure 2.
  auto description = jdl::JobDescription::parse(R"(
      Executable    = "hep_visualizer";
      JobType       = "interactive";
      StreamingMode = "fast";
      Requirements  = other.Arch == "i686" && other.FreeCPUs >= 1;
      Rank          = other.FreeCPUs;
  )");
  if (!description) {
    std::cerr << "JDL error: " << description.error().to_string() << "\n";
    return 1;
  }

  // 3. Submit it. Refusals come back as typed errors (no-match, auth,
  //    over-share, ...), not bools or throws. on_running wires up the
  //    split-execution console between the UI machine and the worker node.
  std::unique_ptr<stream::GridConsole> console;
  broker::JobCallbacks callbacks;
  callbacks.on_running = [&](const broker::JobRecord& record) {
    stream::GridConsoleConfig console_config;
    console_config.mode = record.description.streaming_mode();
    console_config.obs = grid.obs_ptr();
    console_config.job = record.id;
    console = std::make_unique<stream::GridConsole>(
        grid.sim(), grid.network(), console_config, Grid::ui_endpoint(),
        [&](std::string data) { std::cout << "  [screen] " << data; },
        Rng{2024});
    // Find the execution site and attach one Console Agent there.
    for (std::size_t i = 0; i < grid.site_count(); ++i) {
      if (grid.site(i).id() == record.subjobs[0].site) {
        auto& agent = console->add_agent(0, grid.site(i).endpoint());
        agent.write_stdout("visualizer ready; type a command\n");
        agent.set_input_handler([&agent](std::string line) {
          agent.write_stdout("executing: " + line);
        });
      }
    }
  };

  auto job = grid.submit(std::move(description.value()), UserId{1},
                         lrms::Workload::cpu(90_s), callbacks);
  if (!job) {
    std::cerr << "refused: " << to_string(job.error().kind) << " ("
              << job.error().cause.to_string() << ")\n";
    return 1;
  }

  // 4. The user steers the application one minute in.
  grid.sim().schedule(60_s, [&] {
    if (console) {
      std::cout << "  [user types] set-threshold 0.75\n";
      console->shadow().type_line("set-threshold 0.75");
    }
  });

  // 5. Run virtual time until the job finishes; await() returns the final
  //    record (or the classified failure).
  auto done = job->await();
  if (!done) {
    std::cerr << "failed: " << to_string(done.error().kind) << "\n";
    return 1;
  }
  const broker::JobRecord& record = **done;
  std::cout << "[" << fmt_fixed(grid.now().to_seconds(), 2) << "s] "
            << record.id << " completed; phases: discovery "
            << fmt_fixed((*record.timestamps.discovery_done -
                          record.timestamps.submitted)
                             .to_seconds(),
                         2)
            << "s, selection "
            << fmt_fixed((*record.timestamps.selection_done -
                          *record.timestamps.discovery_done)
                             .to_seconds(),
                         2)
            << "s, to-running "
            << fmt_fixed((*record.timestamps.running -
                          *record.timestamps.selection_done)
                             .to_seconds(),
                         2)
            << "s\n";

  // 6. The same run, from the instruments: every lifecycle transition is a
  //    typed trace event, and every hot path updated the metrics registry.
  std::cout << "\nlifecycle trace (" << job->trace().size() << " events):\n";
  for (const auto& event : job->trace()) {
    std::cout << "  +" << fmt_fixed(event.when.to_seconds(), 2) << "s "
              << obs::to_string(event.kind)
              << (event.detail.empty() ? "" : "  " + event.detail) << "\n";
  }
  std::cout << "\nmetrics:\n" << grid.metrics_snapshot().render();
  return 0;
}
