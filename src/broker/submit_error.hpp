// Typed failure reasons for the submission path. Everything that used to
// surface as a bool, a throw, or a bare error-code string on submit / lease
// acquisition is classified here, so callers can branch on *why* a
// submission failed without string-matching codes.
#pragma once

#include <string>
#include <string_view>

#include "util/expected.hpp"

namespace cg::broker {

enum class SubmitErrorKind {
  kBadDescription,  ///< invalid user / unusable job description
  kAuth,            ///< GSI pre-flight failed (no/invalid/expired credentials)
  kNoMatch,         ///< no resource satisfies Requirements / capacity
  kOverShare,       ///< fair-share rejection: user over-consuming
  kLeaseConflict,   ///< exclusive-temporal-access lease could not be taken
  kInternal,        ///< anything else (site vanished, agent died, ...)
};

[[nodiscard]] std::string_view to_string(SubmitErrorKind kind);

struct SubmitError {
  SubmitErrorKind kind = SubmitErrorKind::kInternal;
  Error cause;  ///< the underlying code/message

  [[nodiscard]] std::string to_string() const {
    return std::string{broker::to_string(kind)} + " (" + cause.to_string() + ")";
  }
};

[[nodiscard]] inline SubmitError make_submit_error(SubmitErrorKind kind,
                                                   std::string code,
                                                   std::string message) {
  return SubmitError{kind, make_error(std::move(code), std::move(message))};
}

/// Classifies a lifecycle Error (record.last_error) into a typed reason:
/// gsi.* -> kAuth, broker.fair_share -> kOverShare, *.no_resources /
/// matchmaker misses -> kNoMatch, lease codes -> kLeaseConflict, else
/// kInternal.
[[nodiscard]] SubmitError classify_submit_error(const Error& error);

}  // namespace cg::broker
