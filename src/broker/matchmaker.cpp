#include "broker/matchmaker.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "jdl/eval.hpp"

namespace cg::broker {

namespace {

/// Slot context for one record: every attribute comes from the cached
/// machine view except FreeCPUs, which leases shadow per evaluation.
jdl::SlotEvalContext slot_context(const infosys::SiteRecord::MachineView& view,
                                  int effective_free) {
  jdl::SlotEvalContext ctx;
  ctx.slots = &view.slots;
  ctx.override_slot = infosys::machine_free_cpus_slot();
  ctx.override_value = jdl::Value::integer(effective_free);
  return ctx;
}

}  // namespace

bool Matchmaker::health_excluded(SiteId site, std::size_t& excluded) const {
  if (health_ == nullptr || !health_->hard_excluded(site)) return false;
  ++excluded;
  return true;
}

double Matchmaker::health_penalty(SiteId site) const {
  return health_ != nullptr ? health_->rank_penalty(site) : 0.0;
}

std::vector<Candidate> Matchmaker::filter(
    const jdl::JobDescription& job, const std::vector<infosys::SiteRecord>& records,
    const LeaseManager& leases, int needed_cpus) const {
  if (config_.use_fast_path) {
    return filter_compiled(*compile(job), records, leases, needed_cpus);
  }
  std::vector<Candidate> out;
  out.reserve(records.size());
  std::size_t excluded = 0;
  for (const auto& record : records) {
    const int effective =
        record.dynamic_info.free_cpus - leases.leased_cpus(record.static_info.id);
    if (effective < needed_cpus) continue;
    if (health_excluded(record.static_info.id, excluded)) continue;

    jdl::ClassAd machine = record.to_classad();
    machine.set_int("FreeCPUs", effective);  // leases shadow the raw count
    if (!jdl::symmetric_match(job.ad(), machine)) continue;

    Candidate c;
    c.site = record.static_info.id;
    c.effective_free_cpus = effective;
    c.rank = rank_of(job, machine) - health_penalty(c.site);
    out.push_back(c);
  }
  note_scan("fresh", records.size(), 0, 0, excluded, !out.empty());
  return out;
}

std::vector<Candidate> Matchmaker::filter_compiled(
    const jdl::CompiledMatch& compiled,
    const std::vector<infosys::SiteRecord>& records, const LeaseManager& leases,
    int needed_cpus) const {
  std::vector<Candidate> out;
  if (compiled.never_matches()) {
    note_scan("fresh", 0, 0, 0);
    return out;
  }
  out.reserve(records.size());
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t excluded = 0;
  for (const auto& record : records) {
    const int effective =
        record.dynamic_info.free_cpus - leases.leased_cpus(record.static_info.id);
    if (effective < needed_cpus) continue;
    if (health_excluded(record.static_info.id, excluded)) continue;

    record.cache_primed() ? ++hits : ++misses;
    const auto ctx = slot_context(record.machine_view(), effective);
    if (!compiled.matches(ctx)) continue;

    Candidate c;
    c.site = record.static_info.id;
    c.effective_free_cpus = effective;
    c.rank = (compiled.has_rank() ? compiled.rank(ctx)
                                  : static_cast<double>(effective)) -
             health_penalty(c.site);
    out.push_back(c);
  }
  note_scan("fresh", records.size(), hits, misses, excluded, !out.empty());
  return out;
}

std::vector<SiteId> Matchmaker::filter_sites(
    const jdl::JobDescription& job, const jdl::CompiledMatch* compiled,
    CandidateSource records, const LeaseManager& leases, int needed_cpus) const {
  std::vector<SiteId> out;
  if (compiled != nullptr && compiled->never_matches()) {
    note_scan("coarse", 0, 0, 0);
    return out;
  }
  out.reserve(records.size());
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t excluded = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const infosys::SiteRecord& record = records[i];
    const int effective =
        record.dynamic_info.free_cpus - leases.leased_cpus(record.static_info.id);
    if (effective < needed_cpus) continue;
    if (health_excluded(record.static_info.id, excluded)) continue;
    if (compiled != nullptr) {
      record.cache_primed() ? ++hits : ++misses;
      if (!compiled->matches(slot_context(record.machine_view(), effective))) {
        continue;
      }
    } else {
      jdl::ClassAd machine = record.to_classad();
      machine.set_int("FreeCPUs", effective);
      if (!jdl::symmetric_match(job.ad(), machine)) continue;
    }
    out.push_back(record.static_info.id);
  }
  note_scan("coarse", records.size(), hits, misses, excluded, !out.empty());
  return out;
}

std::shared_ptr<const jdl::CompiledMatch> Matchmaker::compile(
    const jdl::JobDescription& job) const {
  return std::make_shared<const jdl::CompiledMatch>(
      jdl::CompiledMatch::compile(job.ad(), infosys::machine_slot_layout()));
}

std::optional<Candidate> Matchmaker::match_one(
    const jdl::CompiledMatch& compiled, CandidateSource records,
    const LeaseManager& leases, int needed_cpus, Rng& rng) const {
  // Streaming equivalent of filter()+select(): candidates are examined in
  // record order; `ties` holds, in encounter order, exactly those whose
  // rank ties the running best. Because the tie window is monotone in the
  // running best (rank_tie_margin < 1), pruning on each best-raise leaves
  // the same tie set select() would compute from the full candidate vector.
  std::vector<Candidate> ties;
  if (compiled.never_matches()) {
    note_scan("fresh", 0, 0, 0);
    return std::nullopt;
  }
  double best = 0.0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t excluded = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const infosys::SiteRecord& record = records[i];
    const int effective =
        record.dynamic_info.free_cpus - leases.leased_cpus(record.static_info.id);
    if (effective < needed_cpus) continue;
    if (health_excluded(record.static_info.id, excluded)) continue;

    record.cache_primed() ? ++hits : ++misses;
    const auto ctx = slot_context(record.machine_view(), effective);
    if (!compiled.matches(ctx)) continue;

    const double rank = (compiled.has_rank() ? compiled.rank(ctx)
                                             : static_cast<double>(effective)) -
                        health_penalty(record.static_info.id);
    Candidate c;
    c.site = record.static_info.id;
    c.effective_free_cpus = effective;
    c.rank = rank;
    if (ties.empty() || rank > best) {
      best = rank;
      std::erase_if(ties, [&](const Candidate& t) { return !is_tie(best, t.rank); });
      ties.push_back(c);
    } else if (is_tie(best, rank)) {
      ties.push_back(c);
    }
  }
  note_scan("fresh", records.size(), hits, misses, excluded, !ties.empty());
  if (ties.empty()) return std::nullopt;
  // Same rng consumption as select(): exactly one pick for a non-empty
  // candidate set when randomized tie-breaking is on.
  const Candidate& chosen =
      config_.randomize_ties ? ties[rng.pick_index(ties.size())] : ties.front();
  return chosen;
}

double Matchmaker::rank_of(const jdl::JobDescription& job,
                           const jdl::ClassAd& machine) const {
  const jdl::ExprPtr rank_expr = job.rank();
  if (rank_expr) {
    jdl::EvalContext ctx;
    ctx.self = &job.ad();
    ctx.other = &machine;
    const jdl::Value v = jdl::evaluate(*rank_expr, ctx);
    if (v.is_number()) return v.as_number();
    return 0.0;  // non-numeric rank: neutral
  }
  // Default rank: prefer emptier sites.
  const auto free = machine.get_int("FreeCPUs");
  return free ? static_cast<double>(*free) : 0.0;
}

std::optional<SiteId> Matchmaker::select(const std::vector<Candidate>& candidates,
                                         Rng& rng) const {
  if (candidates.empty()) return std::nullopt;
  const double best =
      std::max_element(candidates.begin(), candidates.end(),
                       [](const Candidate& a, const Candidate& b) {
                         return a.rank < b.rank;
                       })
          ->rank;
  std::vector<const Candidate*> ties;
  for (const auto& c : candidates) {
    if (is_tie(best, c.rank)) ties.push_back(&c);
  }
  const Candidate* chosen =
      config_.randomize_ties ? ties[rng.pick_index(ties.size())] : ties.front();
  return chosen->site;
}

bool Matchmaker::is_tie(double best, double rank) const {
  // Relative to the larger magnitude so the window is symmetric under
  // negation: ranks {10, 18} and {-10, -18} tie under the same margin.
  const double scale = std::max(std::abs(best), std::abs(rank));
  return best - rank <= config_.rank_tie_margin * scale + 1e-12;
}

void Matchmaker::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics == nullptr) {
    coarse_scan_ = ScanMetrics{};
    fresh_scan_ = ScanMetrics{};
    return;
  }
  const auto bind = [metrics](const char* pass) {
    const obs::LabelSet labels{{"pass", pass}};
    ScanMetrics m;
    m.sites_scanned =
        metrics->histogram_handle("broker.match.sites_scanned", labels);
    m.cache_hits = metrics->counter_handle("broker.match.cache_hits", labels);
    m.cache_misses =
        metrics->counter_handle("broker.match.cache_misses", labels);
    m.health_excluded =
        metrics->counter_handle("broker.match.health_excluded", labels);
    m.health_reroutes =
        metrics->counter_handle("broker.match.health_reroutes", labels);
    return m;
  };
  coarse_scan_ = bind("coarse");
  fresh_scan_ = bind("fresh");
}

void Matchmaker::note_scan(const char* pass, std::size_t scanned,
                           std::size_t cache_hits, std::size_t cache_misses,
                           std::size_t health_excluded, bool rerouted) const {
  if (metrics_ == nullptr) return;
  ScanMetrics& m =
      std::strcmp(pass, "coarse") == 0 ? coarse_scan_ : fresh_scan_;
  m.sites_scanned.observe(static_cast<double>(scanned));
  if (cache_hits > 0) m.cache_hits.inc(cache_hits);
  if (cache_misses > 0) m.cache_misses.inc(cache_misses);
  if (health_excluded > 0) {
    m.health_excluded.inc(health_excluded);
    if (rerouted) m.health_reroutes.inc();
  }
}

}  // namespace cg::broker
