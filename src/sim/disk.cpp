#include "sim/disk.hpp"

namespace cg::sim {

DiskSpec DiskSpec::default_2006() {
  return DiskSpec{};
}

Duration DiskModel::write_duration(std::size_t bytes) const {
  const double s = static_cast<double>(bytes) / spec_.write_bandwidth_bytes_per_sec;
  return spec_.op_overhead + Duration::from_seconds(s);
}

Duration DiskModel::read_duration(std::size_t bytes) const {
  const double s = static_cast<double>(bytes) / spec_.read_bandwidth_bytes_per_sec;
  return spec_.op_overhead + Duration::from_seconds(s);
}

}  // namespace cg::sim
