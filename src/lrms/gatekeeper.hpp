// Site gatekeeper: the Globus-GRAM-style front door. Every grid submission
// pays GSI authentication, jobmanager processing, and input staging over the
// submitter's link before the job even reaches the local queue — the layers
// whose cost Table I exposes and whose bypass (direct broker-to-agent
// submission) makes shared-mode startup more than twice as fast.
#pragma once

#include <functional>
#include <string>

#include <optional>

#include "gsi/credential.hpp"
#include "lrms/local_scheduler.hpp"
#include "sim/simulation.hpp"
#include "util/expected.hpp"

namespace cg::net {
class ControlBus;
}

namespace cg::lrms {

struct GatekeeperConfig {
  /// GSI mutual authentication round trips.
  Duration gsi_auth_latency = Duration::millis(1200);
  /// GRAM jobmanager processing (script generation, fork, LRMS submit call).
  Duration jobmanager_latency = Duration::millis(2500);
  /// Extra bookkeeping per two-phase-commit prepare (the paper: CrossBroker
  /// "uses a two phase commit protocol that guarantees a better detection of
  /// error conditions", costing slightly more than Glogin's direct path).
  Duration prepare_overhead = Duration::millis(400);
};

/// A job submission as it crosses the site boundary.
struct GridJobRequest {
  JobId id;
  UserId owner;
  /// GSI proxy chain presented at the gatekeeper (leaf first). Required
  /// when the gatekeeper has a trust anchor configured.
  std::optional<gsi::CertificateChain> proxy_chain;
  Workload workload;
  /// Input sandbox bytes staged from the submitter before execution.
  std::size_t stage_bytes = 0;
  /// Network endpoint of the submitting machine (for the staging link).
  std::string submitter_endpoint;
  std::function<void(NodeId)> on_start;
  std::function<void()> on_complete;
  TaskRunner::PhaseObserver phase_observer;
  TaskRunner::DilationFn dilation;
  TaskRunner::BarrierFn barrier_handler;
};

class Gatekeeper {
public:
  using StatusCallback = std::function<void(Status)>;

  Gatekeeper(sim::Simulation& sim, net::ControlBus& bus, std::string endpoint,
             LocalScheduler& scheduler, GatekeeperConfig config = {});

  /// Enables GSI verification: every prepare/submit must present a proxy
  /// chain valid against this trust anchor at arrival time.
  void set_trust_anchor(const gsi::Certificate* anchor) { trust_anchor_ = anchor; }

  /// Two-phase commit, phase 1: authenticate and check the site can take the
  /// job (free node or queue space). Reserves nothing; the check guards
  /// against submitting into a full site.
  void prepare(const GridJobRequest& request, StatusCallback callback);

  /// Two-phase commit, phase 2: stage the input sandbox and hand the job to
  /// the LRMS. The callback reports queue acceptance (not job start).
  void commit(GridJobRequest request, StatusCallback callback);

  /// One-shot submission without the 2PC prepare (the Glogin-style path).
  void submit_direct(GridJobRequest request, StatusCallback callback);

  /// Serves a CancelJob message: removes the job from the local queue, or —
  /// unless `queued_only` — kills it wherever it runs. Returns true when the
  /// job was found in either state.
  bool cancel(JobId id, bool queued_only);

  [[nodiscard]] const std::string& endpoint() const { return endpoint_; }
  [[nodiscard]] const GatekeeperConfig& config() const { return config_; }
  [[nodiscard]] LocalScheduler& scheduler() { return scheduler_; }

private:
  void stage_and_submit(GridJobRequest request, StatusCallback callback);
  [[nodiscard]] Status check_credentials(const GridJobRequest& request) const;

  const gsi::Certificate* trust_anchor_ = nullptr;
  sim::Simulation& sim_;
  net::ControlBus& bus_;
  std::string endpoint_;
  LocalScheduler& scheduler_;
  GatekeeperConfig config_;
};

}  // namespace cg::lrms
