// Local-disk cost model. The reliable streaming mode spools every message to
// disk at both ends; this model charges the per-operation overhead that makes
// reliable mode the slowest method for small payloads in Figure 6/7 while its
// large internal buffers let it beat ssh at 10 KB.
#pragma once

#include <cstddef>

#include "util/time.hpp"

namespace cg::sim {

struct DiskSpec {
  Duration op_overhead = Duration::micros(1000);  ///< syscall + filesystem cost
  double write_bandwidth_bytes_per_sec = 40e6;    ///< ~2006 IDE/SCSI disk
  double read_bandwidth_bytes_per_sec = 45e6;

  [[nodiscard]] static DiskSpec default_2006();
};

class DiskModel {
public:
  explicit DiskModel(DiskSpec spec = DiskSpec::default_2006()) : spec_{spec} {}

  [[nodiscard]] const DiskSpec& spec() const { return spec_; }

  [[nodiscard]] Duration write_duration(std::size_t bytes) const;
  [[nodiscard]] Duration read_duration(std::size_t bytes) const;

  /// Cumulative bytes written/read (experiment bookkeeping). `records` is
  /// the number of logical messages carried by the operation: a coalesced
  /// spool append is one op (one seek + syscall, one op_overhead charge)
  /// covering several records — the disk-side win of send coalescing.
  void note_write(std::size_t bytes, std::size_t records = 1) {
    bytes_written_ += bytes;
    ++writes_;
    records_written_ += records;
  }
  void note_read(std::size_t bytes, std::size_t records = 1) {
    bytes_read_ += bytes;
    ++reads_;
    records_read_ += records;
  }
  [[nodiscard]] std::size_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::size_t bytes_read() const { return bytes_read_; }
  [[nodiscard]] std::size_t write_ops() const { return writes_; }
  [[nodiscard]] std::size_t read_ops() const { return reads_; }
  [[nodiscard]] std::size_t records_written() const { return records_written_; }
  [[nodiscard]] std::size_t records_read() const { return records_read_; }

  /// Fault injection (kSpoolFail): while unhealthy, every spool append
  /// against this disk fails as if the device returned EIO. Reads of data
  /// already on the platter still succeed.
  void set_healthy(bool healthy) { healthy_ = healthy; }
  [[nodiscard]] bool healthy() const { return healthy_; }

private:
  DiskSpec spec_;
  bool healthy_ = true;
  std::size_t bytes_written_ = 0;
  std::size_t bytes_read_ = 0;
  std::size_t writes_ = 0;
  std::size_t reads_ = 0;
  std::size_t records_written_ = 0;
  std::size_t records_read_ = 0;
};

}  // namespace cg::sim
