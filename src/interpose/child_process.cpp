#include "interpose/child_process.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cg::interpose {

namespace {

struct PipePair {
  Fd read_end;
  Fd write_end;
};

Expected<PipePair> make_pipe() {
  int fds[2];
  if (::pipe2(fds, O_CLOEXEC) != 0) {
    return make_error("pipe", std::strerror(errno));
  }
  return PipePair{Fd{fds[0]}, Fd{fds[1]}};
}

}  // namespace

Expected<ChildProcess> ChildProcess::spawn(std::vector<std::string> argv) {
  if (argv.empty()) return make_error("spawn", "empty argv");
  ignore_sigpipe();

  auto in = make_pipe();
  if (!in) return in.error();
  auto out = make_pipe();
  if (!out) return out.error();
  auto err = make_pipe();
  if (!err) return err.error();

  std::vector<char*> c_argv;
  c_argv.reserve(argv.size() + 1);
  for (auto& arg : argv) c_argv.push_back(arg.data());
  c_argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return make_error("fork", std::strerror(errno));
  }
  if (pid == 0) {
    // Child: wire the pipe ends onto 0/1/2 and exec the unmodified binary.
    ::dup2(in->read_end.get(), STDIN_FILENO);
    ::dup2(out->write_end.get(), STDOUT_FILENO);
    ::dup2(err->write_end.get(), STDERR_FILENO);
    // O_CLOEXEC closes all the original pipe fds across exec.
    ::execvp(c_argv[0], c_argv.data());
    // exec failed: report on the (redirected) stderr and die hard.
    const char* msg = "console-agent: exec failed\n";
    [[maybe_unused]] const auto ignored = ::write(STDERR_FILENO, msg, std::strlen(msg));
    ::_exit(127);
  }
  return ChildProcess{static_cast<int>(pid), std::move(in->write_end),
                      std::move(out->read_end), std::move(err->read_end)};
}

ChildProcess::ChildProcess(int pid, Fd in, Fd out, Fd err)
    : pid_{pid}, stdin_{std::move(in)}, stdout_{std::move(out)},
      stderr_{std::move(err)} {}

ChildProcess::ChildProcess(ChildProcess&& other) noexcept
    : pid_{other.pid_},
      reaped_{other.reaped_},
      stdin_{std::move(other.stdin_)},
      stdout_{std::move(other.stdout_)},
      stderr_{std::move(other.stderr_)} {
  // The moved-from object must not kill the child on destruction.
  other.pid_ = -1;
  other.reaped_ = true;
}

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
  if (this != &other) {
    if (pid_ > 0 && !reaped_) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
    pid_ = other.pid_;
    reaped_ = other.reaped_;
    stdin_ = std::move(other.stdin_);
    stdout_ = std::move(other.stdout_);
    stderr_ = std::move(other.stderr_);
    other.pid_ = -1;
    other.reaped_ = true;
  }
  return *this;
}

ChildProcess::~ChildProcess() {
  if (pid_ > 0 && !reaped_) {
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
  }
}

void ChildProcess::close_stdin() {
  stdin_.reset();
}

std::optional<int> ChildProcess::try_wait() {
  if (reaped_ || pid_ <= 0) return std::nullopt;
  int status = 0;
  const pid_t rc = ::waitpid(pid_, &status, WNOHANG);
  if (rc == pid_) {
    reaped_ = true;
    return status;
  }
  return std::nullopt;
}

int ChildProcess::wait(int grace_ms) {
  if (reaped_ || pid_ <= 0) return -1;
  // Poll for exit, escalate to SIGKILL after the grace period.
  const int poll_step_ms = 20;
  int waited = 0;
  int status = 0;
  while (true) {
    const pid_t rc = ::waitpid(pid_, &status, WNOHANG);
    if (rc == pid_) {
      reaped_ = true;
      return status;
    }
    if (grace_ms >= 0 && waited >= grace_ms) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, &status, 0);
      reaped_ = true;
      return status;
    }
    ::usleep(static_cast<useconds_t>(poll_step_ms) * 1000);
    waited += poll_step_ms;
  }
}

void ChildProcess::signal(int signum) {
  if (pid_ > 0 && !reaped_) ::kill(pid_, signum);
}

}  // namespace cg::interpose
