// Ablation A3: internal buffer size of the interposition transport. The
// paper attributes the reliable mode's surprising 10 KB win over ssh to
// "larger internal buffers ... the disk overhead is compensated by a
// smaller number of IO operations". This ablation sweeps the transport's
// packet payload (its internal buffer) from ssh-like 1460 B up to 64 KB and
// shows where the crossover against ssh appears.
#include <iostream>

#include "sim/disk.hpp"
#include "stream/reliable_channel.hpp"
#include "util/stats.hpp"

namespace {

using namespace cg;
using namespace cg::literals;

/// Round-trip time for one 10 KB request/response pair over a reliable
/// channel whose underlying transport uses the given internal buffer.
double reliable_round_trip_ms(std::size_t buffer_bytes, std::size_t payload) {
  sim::Simulation sim;
  sim::LinkSpec spec = sim::LinkSpec::campus();
  spec.jitter_stddev = Duration::zero();
  sim::Link link{spec, Rng{1}};

  // Hold everything constant at ssh's per-packet costs and vary ONLY the
  // internal buffer, isolating the effect the paper credits for the 10 KB
  // crossover.
  stream::ChannelSpec channel_spec = stream::ChannelSpec::ssh();
  channel_spec.packet_payload = buffer_bytes;
  channel_spec.jitter_factor = 1.0;
  stream::SimChannel request{sim, link, channel_spec, Rng{2}};
  stream::SimChannel response{sim, link, channel_spec, Rng{3}};

  sim::DiskModel client_disk;
  sim::DiskModel server_disk;
  stream::ReliableChannel rel_request{sim, request, client_disk, &server_disk};
  stream::ReliableChannel rel_response{sim, response, server_disk, &client_disk};

  RunningStats rtt;
  for (int i = 0; i < 100; ++i) {
    const SimTime start = sim.now();
    bool done = false;
    rel_request.send(payload, [&](std::size_t) {
      rel_response.send(payload, [&](std::size_t) {
        rtt.add((sim.now() - start).to_seconds() * 1e3);
        done = true;
      });
    });
    sim.run();
    if (!done) break;
  }
  return rtt.mean();
}

double ssh_round_trip_ms(std::size_t payload) {
  sim::Simulation sim;
  sim::LinkSpec spec = sim::LinkSpec::campus();
  spec.jitter_stddev = Duration::zero();
  sim::Link link{spec, Rng{1}};
  stream::SimChannel request{sim, link, stream::ChannelSpec::ssh(), Rng{2}};
  stream::SimChannel response{sim, link, stream::ChannelSpec::ssh(), Rng{3}};
  RunningStats rtt;
  for (int i = 0; i < 100; ++i) {
    const SimTime start = sim.now();
    request.send(payload, [&](std::size_t) {
      response.send(payload, [&](std::size_t) {
        rtt.add((sim.now() - start).to_seconds() * 1e3);
      });
    });
    sim.run();
  }
  return rtt.mean();
}

}  // namespace

int main() {
  constexpr std::size_t kPayload = 10'000;
  std::cout << "== Ablation A3: transport internal buffer size ==\n"
            << "(reliable-mode 10 KB round trip on campus vs buffer size; "
               "ssh as the fixed baseline)\n\n";

  const double ssh_ms = ssh_round_trip_ms(kPayload);
  std::cout << "ssh baseline: " << cg::fmt_fixed(ssh_ms, 3) << " ms\n\n";

  cg::TablePrinter table{{"Buffer (B)", "Reliable RTT (ms)", "vs ssh"}};
  bool crossed = false;
  for (const std::size_t buffer :
       {std::size_t{1460}, std::size_t{4096}, std::size_t{8192},
        std::size_t{16384}, std::size_t{32768}, std::size_t{65536}}) {
    const double ms = reliable_round_trip_ms(buffer, kPayload);
    const bool wins = ms < ssh_ms;
    crossed = crossed || wins;
    table.add_row({std::to_string(buffer), cg::fmt_fixed(ms, 3),
                   wins ? "faster" : "slower"});
  }
  std::cout << table.render() << "\n";
  std::cout << (crossed
                    ? "[ok]   large internal buffers flip the 10 KB contest "
                      "in reliable mode's favour (the paper's explanation)\n"
                    : "[MISS] no buffer size beats ssh at 10 KB\n");
  return 0;
}
