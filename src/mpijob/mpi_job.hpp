// Simulated MPI job structure. The paper supports two parallel flavors:
// MPICH-P4 (all processes inside one site, one Console Agent) and MPICH-G2
// (subjobs co-allocated across sites, one Console Agent per subjob). This
// module plans allocations and coordinates the cross-site startup barrier;
// message-passing semantics are out of scope (the paper measures none).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "jdl/job_description.hpp"
#include "util/expected.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace cg::mpijob {

/// One MPI process group placed on a site.
struct SubJobPlacement {
  SiteId site;
  int processes = 0;
};

struct AllocationPlan {
  std::vector<SubJobPlacement> placements;
  [[nodiscard]] int total_processes() const;
  /// Number of Console Agents the plan needs for an interactive job.
  [[nodiscard]] int console_agents(jdl::JobFlavor flavor) const;
};

/// Free capacity advertised by a candidate site.
struct SiteCapacity {
  SiteId site;
  int free_cpus = 0;
};

/// Plans node allocation for an MPI job.
///  - MPICH-P4: the whole job must fit in a single site (the site with the
///    most free CPUs that fits; ties broken randomly when rng is given).
///  - MPICH-G2: subjobs may span sites; sites are filled greedily, in
///    randomized order when rng is given (the paper's randomized selection).
///  - Sequential: one process on any site with a free CPU.
[[nodiscard]] Expected<AllocationPlan> plan_allocation(
    jdl::JobFlavor flavor, int processes, std::vector<SiteCapacity> capacity,
    Rng* rng = nullptr);

/// Runtime barrier coordinator for BSP-style parallel workloads: each rank
/// reports reaching barrier k; when all ranks have, `release_all(k)` fires
/// and every rank proceeds. The slowest rank gates each superstep, exactly
/// the behaviour of the CrossGrid MPI applications.
class RuntimeBarrierCoordinator {
public:
  using ReleaseAllFn = std::function<void(int barrier_index)>;

  RuntimeBarrierCoordinator(int ranks, ReleaseAllFn release_all);

  /// Rank `rank` reached barrier `barrier_index`.
  void arrived(int rank, int barrier_index);

  [[nodiscard]] int ranks() const { return ranks_; }
  [[nodiscard]] int completed_barriers() const { return completed_; }

private:
  int ranks_;
  int completed_ = 0;
  std::map<int, int> arrivals_;  ///< barrier index -> count
  ReleaseAllFn release_all_;
};

/// Cross-site startup barrier: an MPICH-G2 job is running only once every
/// subjob has started on its worker node (MPICH-G2's DUROC-style barrier).
class StartupBarrier {
public:
  using ReadyFn = std::function<void()>;

  StartupBarrier(int expected, ReadyFn on_ready);

  /// A subjob reports in. Fires on_ready exactly once, when the last arrives.
  void arrive();

  /// A subjob failed to start; the barrier can never complete.
  void fail();

  [[nodiscard]] int arrived() const { return arrived_; }
  [[nodiscard]] int expected() const { return expected_; }
  [[nodiscard]] bool complete() const { return arrived_ == expected_; }
  [[nodiscard]] bool failed() const { return failed_; }

private:
  int expected_;
  int arrived_ = 0;
  bool failed_ = false;
  bool fired_ = false;
  ReadyFn on_ready_;
};

}  // namespace cg::mpijob
