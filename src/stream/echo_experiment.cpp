#include "stream/echo_experiment.hpp"

#include <memory>

#include "sim/disk.hpp"
#include "sim/simulation.hpp"
#include "stream/reliable_channel.hpp"

namespace cg::stream {

std::string to_string(EchoMethod method) {
  switch (method) {
    case EchoMethod::kSsh: return "ssh";
    case EchoMethod::kGlogin: return "glogin";
    case EchoMethod::kFast: return "fast";
    case EchoMethod::kReliable: return "reliable";
  }
  return "?";
}

namespace {

ChannelSpec spec_for(EchoMethod method) {
  switch (method) {
    case EchoMethod::kSsh: return ChannelSpec::ssh();
    case EchoMethod::kGlogin: return ChannelSpec::glogin();
    case EchoMethod::kFast:
    case EchoMethod::kReliable: return ChannelSpec::interposition_fast();
  }
  return ChannelSpec::interposition_fast();
}

/// Driver state machine for one experiment run.
class EchoDriver {
public:
  EchoDriver(sim::Simulation& sim, sim::Link& link, const EchoConfig& config)
      : sim_{sim}, config_{config}, rng_{config.seed} {
    const ChannelSpec spec = spec_for(config.method);
    request_channel_ = std::make_unique<SimChannel>(sim_, link, spec, rng_.fork());
    response_channel_ = std::make_unique<SimChannel>(sim_, link, spec, rng_.fork());
    if (config_.method == EchoMethod::kReliable) {
      reliable_request_ = std::make_unique<ReliableChannel>(
          sim_, *request_channel_, client_disk_, &server_disk_);
      reliable_response_ = std::make_unique<ReliableChannel>(
          sim_, *response_channel_, server_disk_, &client_disk_);
      reliable_request_->set_give_up_handler([this] { result_.gave_up = true; });
      reliable_response_->set_give_up_handler([this] { result_.gave_up = true; });
    }
    result_.round_trips_s.reserve(static_cast<std::size_t>(config.sequences));
  }

  void run() {
    start_sequence();
    sim_.run();
    result_.bytes_lost = request_channel_->messages_failed() * config_.payload_bytes +
                         response_channel_->messages_failed() * config_.payload_bytes;
    result_.disk_bytes_written =
        client_disk_.bytes_written() + server_disk_.bytes_written();
    result_.disk_ops = client_disk_.write_ops() + server_disk_.write_ops() +
                       client_disk_.read_ops() + server_disk_.read_ops();
  }

  [[nodiscard]] EchoResult take_result() { return std::move(result_); }

private:
  void start_sequence() {
    if (result_.sequences_completed >= config_.sequences || result_.gave_up) return;
    sequence_start_ = sim_.now();
    send_request();
  }

  void send_request() {
    auto on_deliver = [this](std::size_t) { server_respond(); };
    if (reliable_request_) {
      reliable_request_->send(config_.payload_bytes, std::move(on_deliver));
    } else {
      request_channel_->send(config_.payload_bytes, std::move(on_deliver),
                             [this](std::size_t) { drop_sequence(); });
    }
  }

  void server_respond() {
    auto on_deliver = [this](std::size_t) { complete_sequence(); };
    if (reliable_response_) {
      reliable_response_->send(config_.payload_bytes, std::move(on_deliver));
    } else {
      response_channel_->send(config_.payload_bytes, std::move(on_deliver),
                              [this](std::size_t) { drop_sequence(); });
    }
  }

  void complete_sequence() {
    result_.round_trips_s.add((sim_.now() - sequence_start_).to_seconds());
    ++result_.sequences_completed;
    start_sequence();
  }

  void drop_sequence() {
    // Fast mode on a down link: the sequence is lost; the coordinated client
    // retries the next one after a beat (a real client would notice the
    // missing answer via timeout).
    ++result_.sequences_completed;
    sim_.schedule(Duration::millis(100), [this] { start_sequence(); });
  }

  sim::Simulation& sim_;
  EchoConfig config_;
  Rng rng_;
  sim::DiskModel client_disk_;
  sim::DiskModel server_disk_;
  std::unique_ptr<SimChannel> request_channel_;
  std::unique_ptr<SimChannel> response_channel_;
  std::unique_ptr<ReliableChannel> reliable_request_;
  std::unique_ptr<ReliableChannel> reliable_response_;
  SimTime sequence_start_;
  EchoResult result_;
};

}  // namespace

EchoResult run_echo_experiment(const sim::LinkSpec& link_spec,
                               const EchoConfig& config) {
  sim::Simulation sim;
  Rng rng{config.seed ^ 0xabcdef12345678ULL};
  sim::Link link{link_spec, rng.fork()};
  if (config.outage_end_s > config.outage_start_s) {
    link.failures().add_outage(SimTime::from_seconds(config.outage_start_s),
                               SimTime::from_seconds(config.outage_end_s));
  }
  EchoDriver driver{sim, link, config};
  driver.run();
  return driver.take_result();
}

}  // namespace cg::stream
