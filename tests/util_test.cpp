// Unit tests for the util substrate: time arithmetic, deterministic RNG,
// Expected/Status, statistics accumulators, and string helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "util/expected.hpp"
#include "util/ids.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/time.hpp"

namespace cg {
namespace {

using namespace cg::literals;

// ----------------------------------------------------------------- time ----

TEST(DurationTest, ConstructorsAgree) {
  EXPECT_EQ(Duration::seconds(2).count_micros(), 2'000'000);
  EXPECT_EQ(Duration::millis(3).count_micros(), 3'000);
  EXPECT_EQ(Duration::micros(7).count_micros(), 7);
  EXPECT_EQ((2_s).count_micros(), (2000_ms).count_micros());
  EXPECT_EQ((1_ms).count_micros(), (1000_us).count_micros());
}

TEST(DurationTest, FromSecondsRounds) {
  EXPECT_EQ(Duration::from_seconds(0.0000015).count_micros(), 2);
  EXPECT_EQ(Duration::from_seconds(1.5).count_micros(), 1'500'000);
  EXPECT_EQ(Duration::from_seconds(-0.5).count_micros(), -500'000);
}

TEST(DurationTest, Arithmetic) {
  EXPECT_EQ((3_s + 500_ms).to_seconds(), 3.5);
  EXPECT_EQ((3_s - 500_ms).to_seconds(), 2.5);
  EXPECT_EQ((2_s * 3).to_seconds(), 6.0);
  EXPECT_EQ((6_s / 3).to_seconds(), 2.0);
  EXPECT_DOUBLE_EQ((1_s).scaled(1.5).to_seconds(), 1.5);
  EXPECT_TRUE((0_s).is_zero());
  EXPECT_TRUE((1_s - 2_s).is_negative());
}

TEST(SimTimeTest, Ordering) {
  const SimTime a = SimTime::from_seconds(1.0);
  const SimTime b = a + 500_ms;
  EXPECT_LT(a, b);
  EXPECT_EQ((b - a).to_seconds(), 0.5);
  EXPECT_EQ(SimTime::zero().count_micros(), 0);
}

// ------------------------------------------------------------------ rng ----

TEST(RngTest, DeterministicForSeed) {
  Rng a{12345};
  Rng b{12345};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent{99};
  Rng child = parent.fork();
  // Child and parent produce different streams.
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(RngTest, Uniform01InRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng{7};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all three values appear
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng{7};
  EXPECT_THROW(rng.uniform_int(5, 3), std::invalid_argument);
}

TEST(RngTest, ExponentialMean) {
  Rng rng{11};
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng{13};
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, ChanceProbability) {
  Rng rng{17};
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.25, 0.03);
}

TEST(RngTest, PickIndexEmptyThrows) {
  Rng rng{1};
  EXPECT_THROW(rng.pick_index(0), std::invalid_argument);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng{23};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ------------------------------------------------------------- expected ----

TEST(ExpectedTest, HoldsValue) {
  Expected<int> e{42};
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(e.value_or(0), 42);
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> e{make_error("code", "message")};
  ASSERT_FALSE(e.has_value());
  EXPECT_EQ(e.error().code, "code");
  EXPECT_EQ(e.value_or(-1), -1);
  EXPECT_THROW((void)e.value(), std::logic_error);
}

TEST(StatusTest, OkAndError) {
  const Status ok = Status::ok_status();
  EXPECT_TRUE(ok.ok());
  const Status bad = make_error("x", "y");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, "x");
  EXPECT_THROW((void)ok.error(), std::logic_error);
}

// ---------------------------------------------------------------- stats ----

TEST(RunningStatsTest, Basics) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  Rng rng{31};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 1.5);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(SampleSeriesTest, Percentiles) {
  SampleSeries s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.percentile(50), 50.0);
  EXPECT_EQ(s.percentile(99), 99.0);
  EXPECT_EQ(s.percentile(100), 100.0);
  EXPECT_EQ(s.percentile(0), 1.0);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 100.0);
  EXPECT_THROW((void)s.percentile(101), std::invalid_argument);
}

TEST(SampleSeriesTest, EmptyPercentileThrows) {
  const SampleSeries s;
  EXPECT_THROW((void)s.percentile(50), std::logic_error);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t{{"Method", "Time"}};
  t.add_row({"glogin", "16.43"});
  t.add_row({"vm", "6.79"});
  const std::string rendered = t.render();
  EXPECT_NE(rendered.find("| Method | Time  |"), std::string::npos);
  EXPECT_NE(rendered.find("| glogin | 16.43 |"), std::string::npos);
  EXPECT_NE(rendered.find("| vm     | 6.79  |"), std::string::npos);
}

TEST(FmtFixedTest, Decimals) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(2.0, 3), "2.000");
}

// ---------------------------------------------------------------- logger ----

TEST(LoggerTest, SinkCapturesAboveLevel) {
  auto& logger = Logger::instance();
  std::vector<std::string> captured;
  logger.set_sink([&](LogLevel level, std::string_view component,
                      std::string_view message) {
    captured.push_back(std::string{to_string(level)} + "/" +
                       std::string{component} + "/" + std::string{message});
  });
  logger.set_level(LogLevel::kWarn);
  log_debug("test", "too quiet");
  log_info("test", "still too quiet");
  log_warn("test", "heard ", 42);
  log_error("test", "loud");
  logger.set_sink(nullptr);
  logger.set_level(LogLevel::kWarn);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "WARN/test/heard 42");
  EXPECT_EQ(captured[1], "ERROR/test/loud");
}

TEST(LoggerTest, OffSilencesEverything) {
  auto& logger = Logger::instance();
  int count = 0;
  logger.set_sink([&](LogLevel, std::string_view, std::string_view) { ++count; });
  logger.set_level(LogLevel::kOff);
  log_error("test", "nobody hears this");
  logger.set_sink(nullptr);
  logger.set_level(LogLevel::kWarn);
  EXPECT_EQ(count, 0);
}

TEST(ExpectedTest, MoveOnlyValueWorks) {
  Expected<std::unique_ptr<int>> e{std::make_unique<int>(7)};
  ASSERT_TRUE(e.has_value());
  std::unique_ptr<int> taken = std::move(e).value();
  ASSERT_NE(taken, nullptr);
  EXPECT_EQ(*taken, 7);
}

TEST(ExpectedTest, ArrowAndStarOperators) {
  Expected<std::string> e{std::string{"grid"}};
  EXPECT_EQ(e->size(), 4u);
  EXPECT_EQ(*e, "grid");
}

// -------------------------------------------------------------- strings ----

TEST(StringsTest, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\nx"), "x");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(to_lower("MPICH-G2"), "mpich-g2");
  EXPECT_TRUE(iequals("Interactive", "INTERACTIVE"));
  EXPECT_FALSE(iequals("fast", "reliable"));
  EXPECT_TRUE(starts_with("site:foo", "site:"));
  EXPECT_FALSE(starts_with("si", "site:"));
}

// ------------------------------------------------------------------ ids ----

TEST(IdsTest, StrongTyping) {
  IdGenerator<JobId> gen;
  const JobId a = gen.next();
  const JobId b = gen.next();
  EXPECT_NE(a, b);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(JobId::none().valid());
  EXPECT_LT(a, b);
}

TEST(IdsTest, HashWorksInContainers) {
  std::set<SiteId> sites;
  IdGenerator<SiteId> gen;
  for (int i = 0; i < 10; ++i) sites.insert(gen.next());
  EXPECT_EQ(sites.size(), 10u);
}

}  // namespace
}  // namespace cg
