// GSI substrate tests: certificate issuance, proxy creation and delegation
// chains, chain verification (expiry, tampering, forged issuers, depth),
// the mutual-authentication handshake, and the broker-level security
// integration (pre-flight checks, gatekeeper verification, proxy expiry
// mid-flight).
#include <gtest/gtest.h>

#include "broker/grid_scenario.hpp"
#include "gsi/auth.hpp"

namespace cg::gsi {
namespace {

using namespace cg::literals;

class GsiFixture : public ::testing::Test {
protected:
  GsiFixture()
      : ca{"/O=CrossGrid/CN=CA", SimTime::zero(), Duration::seconds(365 * 24 * 3600),
           0xca} {}

  CertificateAuthority ca;
  const SimTime now = SimTime::from_seconds(100);
};

TEST_F(GsiFixture, CaIssuesVerifiableCredentials) {
  const Credential user = ca.issue("/O=CrossGrid/CN=enol", SimTime::zero(),
                                   Duration::seconds(30 * 24 * 3600));
  EXPECT_EQ(user.certificate.issuer, "/O=CrossGrid/CN=CA");
  EXPECT_FALSE(user.certificate.is_proxy());
  const Status ok = verify_chain({user.certificate}, ca.root_certificate(), now);
  EXPECT_TRUE(ok.ok()) << ok.error().to_string();
}

TEST_F(GsiFixture, ProxyChainVerifies) {
  const Credential user = ca.issue("/O=CrossGrid/CN=enol", SimTime::zero(),
                                   Duration::seconds(30 * 24 * 3600));
  auto proxy = create_proxy(user, now, Duration::seconds(12 * 3600), 7);
  ASSERT_TRUE(proxy.has_value());
  EXPECT_EQ(proxy->certificate.subject, "/O=CrossGrid/CN=enol/CN=proxy");
  EXPECT_EQ(proxy->certificate.proxy_depth, 1);

  const CertificateChain chain = make_chain({user, proxy.value()});
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain.front().subject, proxy->certificate.subject);  // leaf first
  const Status ok = verify_chain(chain, ca.root_certificate(), now);
  EXPECT_TRUE(ok.ok()) << ok.error().to_string();
}

TEST_F(GsiFixture, DelegationDeepensTheChain) {
  const Credential user = ca.issue("/O=CrossGrid/CN=enol", SimTime::zero(),
                                   Duration::seconds(30 * 24 * 3600));
  auto proxy = create_proxy(user, now, Duration::seconds(12 * 3600), 7);
  ASSERT_TRUE(proxy.has_value());
  auto delegated = delegate_proxy(proxy.value(), now, Duration::seconds(3600), 9);
  ASSERT_TRUE(delegated.has_value());
  EXPECT_EQ(delegated->certificate.proxy_depth, 2);
  const Status ok = verify_chain(
      make_chain({user, proxy.value(), delegated.value()}),
      ca.root_certificate(), now);
  EXPECT_TRUE(ok.ok()) << ok.error().to_string();
}

TEST_F(GsiFixture, ExpiredProxyFailsVerification) {
  const Credential user = ca.issue("/O=CrossGrid/CN=enol", SimTime::zero(),
                                   Duration::seconds(30 * 24 * 3600));
  auto proxy = create_proxy(user, now, Duration::seconds(60), 7);
  ASSERT_TRUE(proxy.has_value());
  const SimTime later = now + Duration::seconds(120);
  const Status result =
      verify_chain(make_chain({user, proxy.value()}), ca.root_certificate(), later);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "gsi.expired");
}

TEST_F(GsiFixture, ProxyLifetimeClampedToParent) {
  const Credential user =
      ca.issue("/O=CrossGrid/CN=enol", SimTime::zero(), Duration::seconds(1000));
  auto proxy = create_proxy(user, now, Duration::seconds(1'000'000), 7);
  ASSERT_TRUE(proxy.has_value());
  EXPECT_EQ(proxy->certificate.not_after, user.certificate.not_after);
}

TEST_F(GsiFixture, ProxyFromExpiredParentRefused) {
  const Credential user =
      ca.issue("/O=CrossGrid/CN=enol", SimTime::zero(), Duration::seconds(10));
  const auto result = create_proxy(user, now, Duration::seconds(60), 7);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, "gsi.expired");
}

TEST_F(GsiFixture, TamperedCertificateDetected) {
  Credential user = ca.issue("/O=CrossGrid/CN=enol", SimTime::zero(),
                             Duration::seconds(30 * 24 * 3600));
  // Extend the validity after issuance: the signature no longer matches.
  user.certificate.not_after = user.certificate.not_after + Duration::seconds(1);
  const Status result =
      verify_chain({user.certificate}, ca.root_certificate(), now);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "gsi.signature");
}

TEST_F(GsiFixture, ForeignCaRejected) {
  CertificateAuthority other_ca{"/O=Evil/CN=CA", SimTime::zero(),
                                Duration::seconds(365 * 24 * 3600), 0xbad};
  const Credential mallory = other_ca.issue("/O=Evil/CN=mallory", SimTime::zero(),
                                            Duration::seconds(30 * 24 * 3600));
  const Status result =
      verify_chain({mallory.certificate}, ca.root_certificate(), now);
  EXPECT_FALSE(result.ok());
}

TEST_F(GsiFixture, DepthLimitEnforced) {
  const Credential user = ca.issue("/O=CrossGrid/CN=enol", SimTime::zero(),
                                   Duration::seconds(30 * 24 * 3600));
  std::vector<Credential> ancestry{user};
  for (int i = 0; i < 4; ++i) {
    auto next = create_proxy(ancestry.back(), now, Duration::seconds(3600),
                             static_cast<std::uint64_t>(i));
    ASSERT_TRUE(next.has_value());
    ancestry.push_back(std::move(next.value()));
  }
  VerifyPolicy tight;
  tight.max_proxy_depth = 2;
  const Status result =
      verify_chain(make_chain(ancestry), ca.root_certificate(), now, tight);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "gsi.depth");
  // The default policy accepts it.
  EXPECT_TRUE(verify_chain(make_chain(ancestry), ca.root_certificate(), now).ok());
}

TEST_F(GsiFixture, EmptyChainRejected) {
  EXPECT_FALSE(verify_chain({}, ca.root_certificate(), now).ok());
}

// ------------------------------------------------------------- handshake ----

TEST_F(GsiFixture, MutualAuthenticationSucceedsAndCostsTime) {
  sim::Simulation sim;
  sim::Link link{sim::LinkSpec::wan(), Rng{1}};
  const Credential user = ca.issue("/O=CrossGrid/CN=enol", SimTime::zero(),
                                   Duration::seconds(30 * 24 * 3600));
  const Credential host = ca.issue("/O=CrossGrid/CN=gatekeeper0", SimTime::zero(),
                                   Duration::seconds(30 * 24 * 3600));
  auto proxy = create_proxy(user, sim.now(), Duration::seconds(12 * 3600), 7);
  ASSERT_TRUE(proxy.has_value());

  std::optional<HandshakeResult> outcome;
  mutual_authenticate(sim, link, make_party({user, proxy.value()}),
                      make_party({host}), ca.root_certificate(),
                      [&](HandshakeResult r) { outcome = std::move(r); });
  sim.run();
  ASSERT_TRUE(outcome.has_value());
  EXPECT_TRUE(outcome->status.ok()) << outcome->status.error().to_string();
  EXPECT_EQ(outcome->initiator_name, "/O=CrossGrid/CN=enol/CN=proxy");
  EXPECT_EQ(outcome->acceptor_name, "/O=CrossGrid/CN=gatekeeper0");
  EXPECT_NE(outcome->session_token, 0u);
  // 2 round trips on a ~9 ms link + 2 x 120 ms crypto: several hundred ms.
  EXPECT_GT(sim.now().to_seconds(), 0.25);
}

TEST_F(GsiFixture, HandshakeFailsWithExpiredInitiator) {
  sim::Simulation sim;
  sim::Link link{sim::LinkSpec::campus(), Rng{1}};
  const Credential user = ca.issue("/O=CrossGrid/CN=enol", SimTime::zero(),
                                   Duration::seconds(30 * 24 * 3600));
  const Credential host = ca.issue("/O=CrossGrid/CN=gk", SimTime::zero(),
                                   Duration::seconds(30 * 24 * 3600));
  // A proxy that dies before the handshake completes.
  auto proxy = create_proxy(user, sim.now(), Duration::micros(10), 7);
  ASSERT_TRUE(proxy.has_value());

  std::optional<HandshakeResult> outcome;
  mutual_authenticate(sim, link, make_party({user, proxy.value()}),
                      make_party({host}), ca.root_certificate(),
                      [&](HandshakeResult r) { outcome = std::move(r); });
  sim.run();
  ASSERT_TRUE(outcome.has_value());
  ASSERT_FALSE(outcome->status.ok());
  EXPECT_EQ(outcome->status.error().code, "gsi.expired");
}

TEST(GsiProtectTest, MacDetectsPayloadChanges) {
  const std::string payload = "steer 0.5\n";
  const std::uint64_t mac = protect(12345, payload.data(), payload.size());
  std::string altered = payload;
  altered[0] = 'S';
  EXPECT_NE(protect(12345, altered.data(), altered.size()), mac);
  EXPECT_NE(protect(54321, payload.data(), payload.size()), mac);
  EXPECT_EQ(protect(12345, payload.data(), payload.size()), mac);
}

// ------------------------------------------------- broker integration ----

class GsiBrokerFixture : public ::testing::Test {
protected:
  broker::GridScenarioConfig secure_config() {
    broker::GridScenarioConfig c;
    c.sites = 2;
    c.nodes_per_site = 2;
    c.enable_gsi = true;
    return c;
  }

  static jdl::JobDescription job(const std::string& extra = "") {
    return jdl::JobDescription::parse("Executable = \"app\";" + extra).value();
  }
};

TEST_F(GsiBrokerFixture, RegisteredUserRunsJobs) {
  broker::GridScenario grid{secure_config()};
  grid.register_user(UserId{1}, "enol");
  bool completed = false;
  broker::JobCallbacks callbacks;
  callbacks.on_complete = [&](const broker::JobRecord&) { completed = true; };
  (void)grid.broker().submit(job(), UserId{1}, lrms::Workload::cpu(30_s),
                       broker::GridScenario::ui_endpoint(), callbacks);
  grid.sim().run();
  EXPECT_TRUE(completed);
}

TEST_F(GsiBrokerFixture, UnregisteredUserRejectedUpFront) {
  broker::GridScenario grid{secure_config()};
  // The GSI pre-flight refuses synchronously with a typed auth error.
  const auto refused =
      grid.broker().submit(job(), UserId{2}, lrms::Workload::cpu(30_s),
                           broker::GridScenario::ui_endpoint(), {});
  ASSERT_FALSE(refused);
  EXPECT_EQ(refused.error().kind, broker::SubmitErrorKind::kAuth);
  EXPECT_EQ(refused.error().cause.code, "gsi.no_credentials");
}

TEST_F(GsiBrokerFixture, ExpiredProxyFailsSubmission) {
  broker::GridScenarioConfig config = secure_config();
  config.user_proxy_lifetime = Duration::seconds(60);
  broker::GridScenario grid{config};
  grid.register_user(UserId{1}, "enol");
  // Let the proxy expire before submitting.
  grid.sim().run_until(SimTime::from_seconds(120));

  const auto refused = grid.broker().submit(
      job("JobType = \"interactive\";"), UserId{1}, lrms::Workload::cpu(30_s),
      broker::GridScenario::ui_endpoint(), {});
  ASSERT_FALSE(refused);
  EXPECT_EQ(refused.error().kind, broker::SubmitErrorKind::kAuth);
  EXPECT_EQ(refused.error().cause.code, "gsi.expired");
}

TEST_F(GsiBrokerFixture, SecureInteractiveSharedPathStillWorks) {
  // The whole Figure 5 scenario with the trust fabric on: agents present
  // the broker's service credential at the gatekeeper; slot jobs get
  // delegated proxies.
  broker::GridScenario grid{secure_config()};
  grid.register_user(UserId{1}, "enol");
  grid.register_user(UserId{2}, "elisa");

  bool batch_running = false;
  broker::JobCallbacks batch_callbacks;
  batch_callbacks.on_running = [&](const broker::JobRecord&) {
    batch_running = true;
  };
  (void)grid.broker().submit(job(), UserId{1}, lrms::Workload::cpu(3600_s),
                       broker::GridScenario::ui_endpoint(), batch_callbacks);
  grid.sim().run_until(SimTime::from_seconds(120));
  ASSERT_TRUE(batch_running);

  bool interactive_done = false;
  broker::JobCallbacks inter_callbacks;
  inter_callbacks.on_complete = [&](const broker::JobRecord& record) {
    interactive_done = true;
    EXPECT_EQ(record.placement, broker::PlacementKind::kInteractiveVm);
  };
  (void)grid.broker().submit(
      jdl::JobDescription::parse(
          "Executable = \"viz\"; JobType = \"interactive\"; "
          "MachineAccess = \"shared\"; PerformanceLoss = 10;")
          .value(),
      UserId{2}, lrms::Workload::cpu(30_s), broker::GridScenario::ui_endpoint(),
      inter_callbacks);
  grid.sim().run();
  EXPECT_TRUE(interactive_done);
}

}  // namespace
}  // namespace cg::gsi
