// Thin RAII layer over POSIX sockets and file descriptors used by the real
// split-execution implementation. TCP on loopback stands in for the
// GSI-secured WAN channel; the framing and relay logic above it is identical.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/expected.hpp"

namespace cg::interpose {

/// Owning file descriptor.
class Fd {
public:
  Fd() = default;
  explicit Fd(int fd) : fd_{fd} {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_{other.fd_} { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Releases ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

private:
  int fd_ = -1;
};

/// Writes the whole buffer, retrying on EINTR/short writes.
/// Returns false on any hard error (EPIPE, ECONNRESET, ...).
[[nodiscard]] bool write_all(int fd, const char* data, std::size_t size);
[[nodiscard]] inline bool write_all(int fd, std::string_view data) {
  return write_all(fd, data.data(), data.size());
}

/// Reads up to `size` bytes; returns bytes read, 0 on EOF, -1 on error.
[[nodiscard]] long read_some(int fd, char* buffer, std::size_t size);

/// Waits until `fd` is readable or `timeout_ms` elapses (-1 = forever).
/// Returns +1 readable, 0 timeout, -1 error/hangup-with-no-data.
[[nodiscard]] int wait_readable(int fd, int timeout_ms);

/// TCP listener bound to 127.0.0.1. Port 0 picks a free port (the paper's
/// "randomly selected port probing for an available port"); a fixed port
/// models the user's firewall-pinned choice.
class TcpListener {
public:
  [[nodiscard]] static Expected<TcpListener> bind_loopback(std::uint16_t port);

  /// Blocks until a client connects or `timeout_ms` elapses.
  [[nodiscard]] Expected<Fd> accept(int timeout_ms = -1);

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool valid() const { return fd_.valid(); }
  /// Unblocks a pending accept by closing the listener.
  void close();

private:
  TcpListener(Fd fd, std::uint16_t port) : fd_{std::move(fd)}, port_{port} {}
  Fd fd_;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port.
[[nodiscard]] Expected<Fd> tcp_connect_loopback(std::uint16_t port,
                                                int timeout_ms = 5000);

/// Unix-domain-socket listener: the lower-overhead transport for a Console
/// Agent and Shadow on the same machine (co-located testing, or a site-edge
/// relay). The socket file is unlinked on close.
class UdsListener {
public:
  [[nodiscard]] static Expected<UdsListener> bind(const std::string& path);

  UdsListener(UdsListener&& other) noexcept;
  UdsListener& operator=(UdsListener&& other) noexcept;
  ~UdsListener();
  UdsListener(const UdsListener&) = delete;
  UdsListener& operator=(const UdsListener&) = delete;

  [[nodiscard]] Expected<Fd> accept(int timeout_ms = -1);
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool valid() const { return fd_.valid(); }
  void close();

private:
  UdsListener(Fd fd, std::string path) : fd_{std::move(fd)}, path_{std::move(path)} {}
  Fd fd_;
  std::string path_;
};

/// Connects to a Unix-domain socket at `path`.
[[nodiscard]] Expected<Fd> uds_connect(const std::string& path,
                                       int timeout_ms = 5000);

/// Disables SIGPIPE delivery for writes on this socket (portable enough for
/// Linux via MSG_NOSIGNAL in write_all; this sets it as a fallback no-op).
void configure_socket(int fd);

/// Installs SIG_IGN for SIGPIPE process-wide, once. Writes to pipes of dead
/// children then fail with EPIPE instead of killing the process.
void ignore_sigpipe();

}  // namespace cg::interpose
