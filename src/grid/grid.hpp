// cg::Grid — the facade over the whole stack. One object that owns the
// simulated testbed (sites, information system, network, CrossBroker), the
// observability bundle (metrics registry + job tracer), and the legacy
// Logging-&-Bookkeeping trace, wired together so every submission is
// instrumented without per-caller plumbing.
//
//   cg::Grid grid;
//   auto job = grid.submit(desc, user, workload);
//   if (!job) { /* typed reason: job.error().kind */ }
//   auto done = job->await();                  // runs virtual time
//   grid.metrics_snapshot().render();          // every instrument, sorted
//   grid.export_chrome_trace();                // chrome://tracing timeline
//
// Examples, benches, and tests talk to this API; CrossBroker/Site internals
// stay reachable through scenario() for surgical experiments (fault
// injection, saturation backdrops).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "broker/grid_scenario.hpp"
#include "broker/submit_error.hpp"
#include "obs/observability.hpp"

namespace cg {

using GridConfig = broker::GridScenarioConfig;

class Grid;

/// A submitted job: inspect its state, run virtual time until it finishes,
/// and pull its typed trace events. Cheap to copy; valid while the Grid
/// lives.
class JobHandle {
public:
  JobHandle() = default;

  [[nodiscard]] JobId id() const { return id_; }
  [[nodiscard]] bool valid() const { return grid_ != nullptr && id_.valid(); }

  /// The job's live record (null only on a default-constructed handle).
  [[nodiscard]] const broker::JobRecord* record() const;
  [[nodiscard]] broker::JobState state() const;
  [[nodiscard]] bool done() const;

  /// Runs the simulation until the job reaches a terminal state (or no
  /// non-daemon events remain). Completion returns the final record;
  /// failure/rejection returns the classified reason (kNoMatch, kAuth,
  /// kOverShare, kLeaseConflict, ...).
  Expected<const broker::JobRecord*, broker::SubmitError> await();

  /// This job's typed lifecycle events recorded so far.
  [[nodiscard]] std::vector<obs::JobTraceEvent> trace() const;

  /// Live subscription filtered to this job: `callback` runs synchronously
  /// whenever an event of `kind` is recorded for this job id. Returns the
  /// subscription id for Grid::unsubscribe. Invalid on a
  /// default-constructed handle (returns 0, never fires).
  obs::JobTracer::SubscriptionId on_event(
      obs::TraceEventKind kind,
      std::function<void(const obs::JobTraceEvent&)> callback);

private:
  friend class Grid;
  JobHandle(Grid* grid, JobId id) : grid_{grid}, id_{id} {}

  Grid* grid_ = nullptr;
  JobId id_;
};

class Grid {
public:
  explicit Grid(GridConfig config = {});
  Grid(const Grid&) = delete;
  Grid& operator=(const Grid&) = delete;

  // -- submission ----------------------------------------------------------
  /// Submits a job for `user`. The workload is what the job does once it
  /// runs; callbacks are optional. Refusals (bad description, failed GSI
  /// pre-flight) come back as typed errors instead of throws.
  [[nodiscard]] Expected<JobHandle, broker::SubmitError> submit(
      jdl::JobDescription description, UserId user, lrms::Workload workload,
      broker::JobCallbacks callbacks = {});

  /// Handle for a job submitted earlier (e.g. through scenario().broker()).
  [[nodiscard]] JobHandle job(JobId id) { return JobHandle{this, id}; }

  // -- virtual time --------------------------------------------------------
  /// Runs until no non-daemon events remain. Returns events processed.
  std::size_t run() { return scenario_.sim().run(); }
  /// Runs the clock forward by `d` (daemon events included).
  std::size_t run_for(Duration d) {
    return scenario_.sim().run_until(scenario_.sim().now() + d);
  }
  [[nodiscard]] SimTime now() { return scenario_.sim().now(); }

  // -- users ---------------------------------------------------------------
  /// GSI user registration (requires GridConfig::enable_gsi).
  const std::vector<gsi::Credential>& register_user(UserId user,
                                                    const std::string& name) {
    return scenario_.register_user(user, name);
  }

  // -- observability -------------------------------------------------------
  /// Typed event subscriptions: observe suspicion, eviction, reroute, and
  /// every other lifecycle event live — without reaching into CrossBroker
  /// internals or scanning the tracer after the fact. Listeners run
  /// synchronously at record time in deterministic simulation order.
  obs::JobTracer::SubscriptionId subscribe(obs::TraceEventKind kind,
                                           obs::JobTracer::Listener callback) {
    return obs_.tracer.subscribe(kind, std::move(callback));
  }
  /// Subscribes to every event kind.
  obs::JobTracer::SubscriptionId subscribe(obs::JobTracer::Listener callback) {
    return obs_.tracer.subscribe(std::move(callback));
  }
  void unsubscribe(obs::JobTracer::SubscriptionId id) {
    obs_.tracer.unsubscribe(id);
  }

  [[nodiscard]] obs::Observability& observability() { return obs_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return obs_.metrics; }
  [[nodiscard]] obs::JobTracer& tracer() { return obs_.tracer; }
  /// Frozen, sorted copy of every instrument, stamped with now().
  [[nodiscard]] obs::MetricsSnapshot metrics_snapshot() {
    return obs_.metrics.snapshot(scenario_.sim().now());
  }
  /// JSON-lines export of the full trace (one event per line).
  [[nodiscard]] std::string export_trace_jsonl() const {
    return obs_.tracer.to_jsonl();
  }
  /// chrome://tracing (trace_event format) export: one track per job.
  [[nodiscard]] std::string export_chrome_trace() const {
    return obs_.tracer.to_chrome_trace();
  }
  /// The legacy string-kind Logging-&-Bookkeeping trace (kept for tools that
  /// grep it; new code should prefer tracer()).
  [[nodiscard]] broker::JobTrace& trace_log() { return trace_log_; }

  /// A GridConsoleConfig-compatible pointer for stream-layer wiring.
  [[nodiscard]] obs::Observability* obs_ptr() { return &obs_; }

  // -- escape hatches ------------------------------------------------------
  /// The underlying testbed: site internals, network links, fault injection.
  [[nodiscard]] broker::GridScenario& scenario() { return scenario_; }
  [[nodiscard]] broker::CrossBroker& broker() { return scenario_.broker(); }
  [[nodiscard]] sim::Simulation& sim() { return scenario_.sim(); }
  [[nodiscard]] sim::Network& network() { return scenario_.network(); }
  [[nodiscard]] lrms::Site& site(std::size_t index) {
    return scenario_.site(index);
  }
  [[nodiscard]] std::size_t site_count() const { return scenario_.site_count(); }
  /// The user-interface machine's network endpoint.
  [[nodiscard]] static std::string ui_endpoint() {
    return broker::GridScenario::ui_endpoint();
  }

private:
  friend class JobHandle;

  obs::Observability obs_;  ///< declared first: outlives the scenario's broker
  broker::JobTrace trace_log_;
  broker::GridScenario scenario_;
};

}  // namespace cg
