#include "stream/flush_buffer.hpp"

#include <stdexcept>

namespace cg::stream {

FlushBuffer::FlushBuffer(sim::Simulation& sim, FlushBufferConfig config,
                         FlushFn on_flush)
    : sim_{sim}, config_{config}, on_flush_{std::move(on_flush)} {
  if (config_.capacity == 0) throw std::invalid_argument{"capacity must be > 0"};
  if (!on_flush_) throw std::invalid_argument{"null flush callback"};
}

void FlushBuffer::append(std::string_view data) {
  while (!data.empty()) {
    const std::size_t room = config_.capacity - buffer_.size();
    std::size_t take = std::min(room, data.size());

    // End-of-line trigger: cut the chunk at the first newline so the line
    // (including its '\n') goes out immediately.
    bool newline_flush = false;
    if (config_.flush_on_newline) {
      const std::size_t nl = data.substr(0, take).find('\n');
      if (nl != std::string_view::npos) {
        take = nl + 1;
        newline_flush = true;
      }
    }

    buffer_.append(data.substr(0, take));
    data.remove_prefix(take);

    if (buffer_.size() >= config_.capacity || newline_flush) {
      emit();
    } else if (!buffer_.empty() && !timer_.armed()) {
      arm_timeout();
    }
  }
}

void FlushBuffer::flush() {
  if (!buffer_.empty()) emit();
}

void FlushBuffer::arm_timeout() {
  timer_.rearm(sim_, sim_.schedule(config_.timeout, [this] { flush(); }));
}

void FlushBuffer::emit() {
  timer_.reset();
  std::string out;
  out.swap(buffer_);
  ++flushes_;
  on_flush_(std::move(out));
}

}  // namespace cg::stream
