#include "stream/grid_console.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace cg::stream {

// ---------------------------------------------------------------- agent ----

ConsoleAgent::ConsoleAgent(sim::Simulation& sim, int rank,
                           const GridConsoleConfig& config, SimChannel uplink,
                           sim::DiskModel* wn_disk, ConsoleShadow& shadow)
    : sim_{sim},
      rank_{rank},
      config_{config},
      wn_disk_{wn_disk},
      uplink_{std::move(uplink)},
      shadow_{shadow} {
  if (config_.obs != nullptr) {
    const obs::LabelSet rank_labels{{"rank", std::to_string(rank_)}};
    metrics_.spool_full =
        config_.obs->metrics.counter_handle("stream.spool_full", rank_labels);
    metrics_.frames_dropped =
        config_.obs->metrics.counter_handle("stream.frames_dropped", rank_labels);
    metrics_.reconnects =
        config_.obs->metrics.counter_handle("stream.reconnects", rank_labels);
  }
  if (config_.mode == jdl::StreamingMode::kReliable) {
    if (wn_disk == nullptr) {
      throw std::invalid_argument{"reliable mode requires a worker-node disk"};
    }
    reliable_uplink_ = std::make_unique<ReliableChannel>(
        sim_, uplink_, *wn_disk, shadow.ui_disk_, config_.retry);
    reliable_uplink_->set_give_up_handler([this] {
      failed_ = true;
      shadow_.agent_failed(rank_);
    });
    reliable_uplink_->set_spool_reject_handler([this](std::size_t bytes) {
      if (config_.obs == nullptr) return;
      metrics_.spool_full.inc();
      config_.obs->tracer.record(
          sim_.now(), config_.job, obs::TraceEventKind::kSpoolFull,
          std::to_string(bytes) + " byte append rejected; retrying",
          obs::LabelSet{{"rank", std::to_string(rank_)}});
    });
  }
  out_buffer_ = std::make_unique<FlushBuffer>(
      sim_, config_.agent_buffer, FlushBuffer::FlushFn{[this](ChunkRef data) {
        dispatch(StdStream::kStdout, std::move(data));
      }});
  err_buffer_ = std::make_unique<FlushBuffer>(
      sim_, config_.agent_buffer, FlushBuffer::FlushFn{[this](ChunkRef data) {
        dispatch(StdStream::kStderr, std::move(data));
      }});
  if (config_.obs != nullptr) {
    const obs::LabelSet labels{{"rank", std::to_string(rank_)},
                               {"side", "agent"}};
    out_buffer_->set_metrics(&config_.obs->metrics, labels);
    err_buffer_->set_metrics(&config_.obs->metrics, labels);
    if (reliable_uplink_) {
      reliable_uplink_->set_metrics(&config_.obs->metrics, labels);
    }
  }
}

ConsoleAgent::~ConsoleAgent() = default;

void ConsoleAgent::write_stdout(std::string_view data) {
  out_buffer_->append(data);
}

void ConsoleAgent::write_stderr(std::string_view data) {
  err_buffer_->append(data);
}

void ConsoleAgent::close() {
  out_buffer_->flush();
  err_buffer_->flush();
}

void ConsoleAgent::set_input_handler(InputHandler handler) {
  input_handler_ = std::move(handler);
}

void ConsoleAgent::deliver_input(std::string line) {
  if (input_handler_) input_handler_(std::move(line));
}

void ConsoleAgent::dispatch(StdStream stream, ChunkRef data) {
  const std::size_t bytes = data.size();
  if (wedged_ && !reliable_uplink_) {
    // A stalled relay loop loses fast-mode frames just like a down link —
    // the application keeps writing, nobody forwards.
    on_fast_frame_lost(bytes);
    return;
  }
  // 40-byte capture (this + stream + 24-byte ChunkRef): rides inline in the
  // channel's delivery slot; the payload itself is never copied.
  auto deliver = [this, stream, data = std::move(data)](std::size_t) {
    // A delivery after drops means the link healed: tell the shadow how
    // much of the stream it missed.
    if (pending_dropped_frames_ > 0) report_drops_on_reconnect();
    shadow_.on_output_frame(rank_, stream, data);
  };
  if (reliable_uplink_) {
    reliable_uplink_->send(bytes, std::move(deliver));
  } else {
    uplink_.send(bytes, std::move(deliver), [this](std::size_t lost) {
      // Fast mode: data on a down link is simply gone (Section 3: "the data
      // may be lost in case of network failure").
      on_fast_frame_lost(lost);
    });
  }
}

void ConsoleAgent::on_fast_frame_lost(std::size_t lost) {
  lost_bytes_ += lost;
  ++frames_dropped_;
  ++pending_dropped_frames_;
  pending_dropped_bytes_ += lost;
  if (config_.obs != nullptr) {
    metrics_.frames_dropped.inc();
    config_.obs->tracer.record(
        sim_.now(), config_.job, obs::TraceEventKind::kFrameDropped,
        std::to_string(lost) + " bytes lost on down link",
        obs::LabelSet{{"rank", std::to_string(rank_)}});
  }
}

void ConsoleAgent::report_drops_on_reconnect() {
  const std::size_t frames = pending_dropped_frames_;
  const std::size_t bytes = pending_dropped_bytes_;
  pending_dropped_frames_ = 0;
  pending_dropped_bytes_ = 0;
  if (config_.obs != nullptr) {
    metrics_.reconnects.inc();
    config_.obs->tracer.record(
        sim_.now(), config_.job, obs::TraceEventKind::kReconnected,
        "link healed after dropping " + std::to_string(frames) + " frames (" +
            std::to_string(bytes) + " bytes)",
        obs::LabelSet{{"rank", std::to_string(rank_)}});
  }
  shadow_.on_agent_reconnected(rank_, frames, bytes);
}

// --------------------------------------------------------------- shadow ----

ConsoleShadow::ConsoleShadow(sim::Simulation& sim, GridConsoleConfig config,
                             sim::DiskModel* ui_disk, ChunkSink sink)
    : sim_{sim}, config_{std::move(config)}, ui_disk_{ui_disk}, sink_{std::move(sink)} {
  init(ui_disk);
}

ConsoleShadow::ConsoleShadow(sim::Simulation& sim, GridConsoleConfig config,
                             sim::DiskModel* ui_disk, ScreenSink sink)
    : sim_{sim},
      config_{std::move(config)},
      ui_disk_{ui_disk},
      sink_{sink ? ChunkSink{[fn = std::move(sink)](ChunkRef data) {
              fn(data.to_string());
            }}
                 : ChunkSink{}} {
  init(ui_disk);
}

void ConsoleShadow::init(sim::DiskModel* ui_disk) {
  if (!sink_) throw std::invalid_argument{"ConsoleShadow: null screen sink"};
  if (config_.mode == jdl::StreamingMode::kReliable && ui_disk == nullptr) {
    throw std::invalid_argument{"reliable mode requires a UI-machine disk"};
  }
  screen_buffer_ = std::make_unique<FlushBuffer>(
      sim_, config_.shadow_buffer,
      FlushBuffer::FlushFn{[this](ChunkRef data) { sink_(std::move(data)); }});
  if (config_.obs != nullptr) {
    screen_buffer_->set_metrics(&config_.obs->metrics,
                                obs::LabelSet{{"side", "shadow"}});
  }
}

void ConsoleShadow::attach_agent(ConsoleAgent& agent, SimChannel downlink) {
  AgentLink link;
  link.agent = &agent;
  link.downlink = std::make_unique<SimChannel>(std::move(downlink));
  if (config_.mode == jdl::StreamingMode::kReliable) {
    link.reliable_downlink = std::make_unique<ReliableChannel>(
        sim_, *link.downlink, *ui_disk_, agent.wn_disk_, config_.retry);
    const int rank = agent.rank();
    link.reliable_downlink->set_give_up_handler([this, rank] { agent_failed(rank); });
  }
  agents_.push_back(std::move(link));
}

void ConsoleShadow::type_line(std::string line) {
  ++lines_typed_;
  // Forwarding happens when Enter is hit; ensure the newline is present.
  if (line.empty() || line.back() != '\n') line += '\n';
  for (auto& link : agents_) {
    ConsoleAgent* agent = link.agent;
    auto deliver = [agent, line](std::size_t) { agent->deliver_input(line); };
    if (link.reliable_downlink) {
      link.reliable_downlink->send(line.size(), std::move(deliver));
    } else {
      link.downlink->send(line.size(), std::move(deliver));
    }
  }
}

void ConsoleShadow::on_output_frame(int rank, StdStream stream,
                                    const ChunkRef& data) {
  ++frames_;
  if (frame_observer_) frame_observer_(rank, stream, data.view());
  screen_buffer_->append(data.view());
}

void ConsoleShadow::agent_failed(int rank) {
  log_warn("stream", "console agent rank ", rank, " exhausted retries");
  if (fatal_handler_) fatal_handler_(rank);
}

void ConsoleShadow::on_agent_reconnected(int rank, std::size_t frames,
                                         std::size_t bytes) {
  frames_dropped_ += frames;
  ++drop_reports_;
  log_warn("stream", "rank ", rank, " reconnected: ", frames,
           " fast-mode frame(s) (", bytes,
           " bytes) were dropped while the link was down");
}

// -------------------------------------------------------------- console ----

GridConsole::GridConsole(sim::Simulation& sim, sim::Network& network,
                         GridConsoleConfig config, std::string ui_endpoint,
                         ConsoleShadow::ScreenSink sink, Rng rng)
    : sim_{sim},
      network_{network},
      config_{std::move(config)},
      ui_endpoint_{std::move(ui_endpoint)},
      rng_{std::move(rng)},
      pool_{std::max({ChunkPool::kDefaultSlabBytes, config_.agent_buffer.capacity,
                      config_.shadow_buffer.capacity})} {
  init_pool();
  shadow_ = std::make_unique<ConsoleShadow>(
      sim_, config_,
      config_.mode == jdl::StreamingMode::kReliable ? &ui_disk_ : nullptr,
      std::move(sink));
}

GridConsole::GridConsole(sim::Simulation& sim, sim::Network& network,
                         GridConsoleConfig config, std::string ui_endpoint,
                         ConsoleShadow::ChunkSink sink, Rng rng)
    : sim_{sim},
      network_{network},
      config_{std::move(config)},
      ui_endpoint_{std::move(ui_endpoint)},
      rng_{std::move(rng)},
      pool_{std::max({ChunkPool::kDefaultSlabBytes, config_.agent_buffer.capacity,
                      config_.shadow_buffer.capacity})} {
  init_pool();
  shadow_ = std::make_unique<ConsoleShadow>(
      sim_, config_,
      config_.mode == jdl::StreamingMode::kReliable ? &ui_disk_ : nullptr,
      std::move(sink));
}

void GridConsole::init_pool() {
  // Every flush buffer in this console (agents + shadow) draws from one
  // pool, so a console's slabs recycle across its sessions.
  config_.agent_buffer.pool = &pool_;
  config_.shadow_buffer.pool = &pool_;
  if (config_.obs != nullptr) {
    pool_.set_metrics(&config_.obs->metrics, obs::LabelSet{});
  }
}

ConsoleAgent& GridConsole::add_agent(int rank, const std::string& wn_endpoint) {
  sim::Link& link = network_.link(ui_endpoint_, wn_endpoint);
  wn_disks_.push_back(std::make_unique<sim::DiskModel>());
  sim::DiskModel* wn_disk =
      config_.mode == jdl::StreamingMode::kReliable ? wn_disks_.back().get() : nullptr;

  auto agent = std::make_unique<ConsoleAgent>(
      sim_, rank, config_, SimChannel{sim_, link, config_.channel_spec, rng_.fork()},
      wn_disk, *shadow_);
  shadow_->attach_agent(*agent,
                        SimChannel{sim_, link, config_.channel_spec, rng_.fork()});
  agents_.push_back(std::move(agent));
  return *agents_.back();
}

}  // namespace cg::stream
