// The real Console Agent: launches an unmodified executable with interposed
// stdio and relays it to a Console Shadow over TCP. Implements the paper's
// two streaming modes —
//   fast:     failed sends are dropped (lowest latency, lossy on outages);
//   reliable: every outgoing frame is spooled to a local file first, and
//             sends are retried with reconnection "at regular intervals for
//             a certain number of times", after which the agent gives up and
//             kills the process.
// Output is shaped by the flush policy of Section 4: buffer-full, timeout,
// or end-of-line.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "interpose/child_process.hpp"
#include "interpose/spool_file.hpp"
#include "interpose/wire.hpp"
#include "jdl/job_description.hpp"
#include "util/expected.hpp"

namespace cg::interpose {

struct ConsoleAgentConfig {
  std::uint32_t rank = 0;
  jdl::StreamingMode mode = jdl::StreamingMode::kFast;
  /// Shadow's listening port on 127.0.0.1.
  std::uint16_t shadow_port = 0;
  /// Non-empty: connect to the shadow's Unix-domain socket instead of TCP
  /// (shadow_port is then ignored).
  std::string shadow_uds_path;
  /// Flush policy (Section 4).
  std::size_t buffer_capacity = 64 * 1024;
  int flush_timeout_ms = 200;
  bool flush_on_newline = true;
  /// Reliable mode: spool file path (required) and retry policy.
  std::string spool_path;
  int retry_interval_ms = 500;
  int max_retries = 10;
  /// Connect timeout per attempt.
  int connect_timeout_ms = 2000;
};

class ConsoleAgent {
public:
  /// Launches the application under the agent and connects to the shadow.
  /// Any frames left in an existing spool file (a previous incarnation that
  /// died mid-transfer) are replayed first.
  [[nodiscard]] static Expected<std::unique_ptr<ConsoleAgent>> launch(
      std::vector<std::string> argv, ConsoleAgentConfig config);

  ~ConsoleAgent();
  ConsoleAgent(const ConsoleAgent&) = delete;
  ConsoleAgent& operator=(const ConsoleAgent&) = delete;

  /// Blocks until the child exits and all output has been relayed; sends the
  /// kExit frame and returns the child's wait status.
  int wait_for_exit();

  /// True once the reliable mode has exhausted its retries (the child is
  /// killed per the paper's policy).
  [[nodiscard]] bool gave_up() const { return gave_up_.load(); }

  [[nodiscard]] std::size_t frames_sent() const { return frames_sent_.load(); }
  [[nodiscard]] std::size_t frames_dropped() const { return frames_dropped_.load(); }
  [[nodiscard]] std::size_t reconnects() const { return reconnects_.load(); }
  [[nodiscard]] int child_pid() const { return child_->pid(); }

  /// The reliable-mode spool, or null in fast mode. Exposed so fault
  /// harnesses can inject disk failures (SpoolFile::set_fail_appends).
  [[nodiscard]] SpoolFile* spool() { return spool_ ? &*spool_ : nullptr; }

private:
  ConsoleAgent(ConsoleAgentConfig config, ChildProcess child);

  void start_threads();
  void reader_loop(int fd, FrameType type);
  void receive_loop(std::shared_ptr<Fd> conn, std::uint64_t generation);
  /// Sends one frame (rank = config.rank) according to the mode, writing the
  /// payload straight from the caller's buffer — no owned Frame is built on
  /// the send path. Returns false if it was dropped.
  bool send_frame(FrameType type, std::string_view payload);
  /// Ensures a live connection (under send_mutex_); returns fd or -1.
  int ensure_connected_locked();
  void replay_spool_locked();
  void disconnect_locked();

  ConsoleAgentConfig config_;
  std::unique_ptr<ChildProcess> child_;
  std::optional<SpoolFile> spool_;

  std::mutex send_mutex_;
  /// Shared with the per-connection receive thread: disconnect shuts the
  /// socket down and drops this reference; the fd closes when the receiver
  /// drops its own, so the descriptor number cannot be reused underneath it.
  std::shared_ptr<Fd> connection_;
  std::uint64_t connection_generation_ = 0;
  bool hello_sent_ = false;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> gave_up_{false};
  /// Set once the child has been reaped: readers drain what is buffered and
  /// exit instead of waiting for EOF (a grandchild may hold the pipe open).
  std::atomic<bool> child_exited_{false};
  std::atomic<std::size_t> frames_sent_{0};
  std::atomic<std::size_t> frames_dropped_{0};
  std::atomic<std::size_t> reconnects_{0};

  std::thread stdout_thread_;
  std::thread stderr_thread_;
  std::mutex recv_threads_mutex_;
  std::vector<std::thread> recv_threads_;
};

}  // namespace cg::interpose
