// Figure 4, live: several ranks of a (stand-in) parallel application run
// under their own Console Agents, all connected to ONE Console Shadow on
// this machine. Output from every rank fans in; typed input fans out to all
// ranks — and, per the paper's convention, only rank 0 acts on it.
//
//   $ ./realtime_mpi_console          # 3 ranks of steerable_app
//   $ ./realtime_mpi_console 5        # 5 ranks
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "interpose/console_agent.hpp"
#include "interpose/console_shadow.hpp"

using namespace cg;
using namespace std::chrono_literals;

namespace {

const char* find_steerable_app() {
  for (const char* candidate :
       {"./examples/steerable_app", "examples/steerable_app",
        "../examples/steerable_app", "./steerable_app"}) {
    if (::access(candidate, X_OK) == 0) return candidate;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 3;
  if (ranks < 1 || ranks > 16) {
    std::cerr << "usage: realtime_mpi_console [ranks 1..16]\n";
    return 2;
  }
  const char* app = find_steerable_app();
  if (app == nullptr) {
    std::cerr << "steerable_app binary not found (build it first)\n";
    return 1;
  }

  auto shadow = interpose::ConsoleShadow::listen();
  if (!shadow) {
    std::cerr << "shadow: " << shadow.error().to_string() << "\n";
    return 1;
  }
  std::mutex mu;
  (*shadow)->set_output_handler(
      [&](std::uint32_t rank, interpose::FrameType stream,
          std::string_view data) {
        const std::lock_guard lock{mu};
        const char* tag =
            stream == interpose::FrameType::kStderr ? "!err" : "out ";
        std::cout << "[rank " << rank << " " << tag << "] " << data;
        if (data.empty() || data.back() != '\n') std::cout << "\n";
        std::cout << std::flush;
      });
  (*shadow)->set_exit_handler([&](std::uint32_t rank, int status) {
    const std::lock_guard lock{mu};
    std::cout << "[rank " << rank << "] exited with status "
              << (WIFEXITED(status) ? WEXITSTATUS(status) : -1) << "\n"
              << std::flush;
  });

  std::cout << "launching " << ranks << " ranks of " << app
            << " under Console Agents (shadow on 127.0.0.1:"
            << (*shadow)->port() << ")\n";

  std::vector<std::unique_ptr<interpose::ConsoleAgent>> agents;
  for (int rank = 0; rank < ranks; ++rank) {
    interpose::ConsoleAgentConfig config;
    config.rank = static_cast<std::uint32_t>(rank);
    config.shadow_port = (*shadow)->port();
    config.flush_timeout_ms = 50;
    auto agent = interpose::ConsoleAgent::launch({app, "5000"}, config);
    if (!agent) {
      std::cerr << "agent " << rank << ": " << agent.error().to_string() << "\n";
      return 1;
    }
    agents.push_back(std::move(agent.value()));
  }
  while ((*shadow)->connected_agents() < static_cast<std::size_t>(ranks)) {
    std::this_thread::sleep_for(20ms);
  }

  // Steer mid-run: every rank *receives* the command; in a real MPI job only
  // rank 0 would read stdin (the paper's rank-0 convention) — here every
  // steerable_app instance reads, which makes the fan-out visible.
  std::this_thread::sleep_for(300ms);
  std::cout << "[user types] status\n" << std::flush;
  (*shadow)->send_line("status");
  std::this_thread::sleep_for(500ms);
  std::cout << "[user types] stop\n" << std::flush;
  (*shadow)->send_line("stop");

  for (auto& agent : agents) agent->wait_for_exit();
  std::cout << "all ranks done; frames received by the shadow: "
            << (*shadow)->frames_received() << "\n";
  return 0;
}
