#include "broker/lease_manager.hpp"

#include <stdexcept>

namespace cg::broker {

LeaseManager::~LeaseManager() {
  for (auto& [id, lease] : leases_) {
    if (lease.expiry.valid()) sim_.cancel(lease.expiry);
  }
}

LeaseId LeaseManager::acquire(SiteId site, int cpus, Duration ttl) {
  if (!site.valid()) throw std::invalid_argument{"lease: invalid site"};
  if (cpus < 1) throw std::invalid_argument{"lease: cpus must be >= 1"};
  if (ttl <= Duration::zero()) throw std::invalid_argument{"lease: ttl must be positive"};
  const LeaseId id = ids_.next();
  const sim::EventHandle expiry = sim_.schedule(ttl, [this, id] { leases_.erase(id); });
  leases_.emplace(id, Lease{site, cpus, expiry});
  return id;
}

bool LeaseManager::release(LeaseId id) {
  const auto it = leases_.find(id);
  if (it == leases_.end()) return false;
  if (it->second.expiry.valid()) sim_.cancel(it->second.expiry);
  leases_.erase(it);
  return true;
}

int LeaseManager::leased_cpus(SiteId site) const {
  int total = 0;
  for (const auto& [id, lease] : leases_) {
    if (lease.site == site) total += lease.cpus;
  }
  return total;
}

}  // namespace cg::broker
