#include "glidein/vm_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace cg::glidein {

VmDilations compute_dilations(const VmModelConfig& config, int performance_loss,
                              bool interactive_present, bool batch_present) {
  if (performance_loss < 0 || performance_loss > 100) {
    throw std::invalid_argument{"performance_loss out of range"};
  }
  VmDilations d;
  const double overhead = 1.0 + config.agent_overhead;

  if (interactive_present && batch_present) {
    const double s = static_cast<double>(performance_loss) / 100.0;
    const double duty = std::clamp(config.batch_duty_cycle, 0.0, 1.0);
    // Interactive CPU: stretched by the share the batch job actually takes.
    d.interactive_cpu = (1.0 + s * duty) * overhead;
    // Interactive I/O: scheduling-latency interference, maximal at mid shares.
    d.interactive_io = 1.0 + config.io_penalty_coefficient * s * (1.0 - s);
    // Batch CPU: its concession plus the gaps the interactive job leaves idle.
    const double batch_share = s + (1.0 - s) * (1.0 - duty);
    d.batch_cpu = batch_share > 0.0 ? overhead / batch_share : 1e9;
    d.batch_io = d.interactive_io;
  } else if (interactive_present || batch_present) {
    // A lone job on an agent-managed machine: only the agent overhead.
    d.interactive_cpu = d.interactive_io = overhead;
    d.batch_cpu = d.batch_io = overhead;
  }
  // Dilations never speed a job up.
  d.interactive_cpu = std::max(d.interactive_cpu, 1.0);
  d.interactive_io = std::max(d.interactive_io, 1.0);
  d.batch_cpu = std::max(d.batch_cpu, 1.0);
  d.batch_io = std::max(d.batch_io, 1.0);
  return d;
}

}  // namespace cg::glidein
