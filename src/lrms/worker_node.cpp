#include "lrms/worker_node.hpp"

#include <stdexcept>

#include "jdl/parser.hpp"

namespace cg::lrms {

WorkerNode::WorkerNode(sim::Simulation& sim, NodeId id, WorkerNodeSpec spec)
    : sim_{sim}, id_{id}, spec_{std::move(spec)}, rng_{0x9e3779b9u ^ id.value()} {
  machine_ad_.set_int("MemoryMB", spec_.memory_mb);
  machine_ad_.set_real("CpuSpeed", spec_.cpu_speed);
  machine_ad_.set_int("NodeId", static_cast<std::int64_t>(id_.value()));
  for (const auto& [name, expression] : spec_.extra_attributes) {
    auto expr = jdl::parse_expression(expression);
    if (expr.has_value()) {
      machine_ad_.set(name, std::move(expr.value()));
    } else {
      throw std::invalid_argument{"WorkerNode: bad attribute expression for " +
                                  name + ": " + expr.error().to_string()};
    }
  }
}

std::optional<JobId> WorkerNode::current_job() const {
  if (!job_) return std::nullopt;
  return job_->id;
}

void WorkerNode::reserve() {
  if (runner_) throw std::logic_error{"WorkerNode::reserve: node is busy"};
  reserved_ = true;
}

void WorkerNode::release_reservation() {
  reserved_ = false;
}

void WorkerNode::run(LocalJob job) {
  if (runner_) throw std::logic_error{"WorkerNode::run: node is busy"};
  if (failed_) throw std::logic_error{"WorkerNode::run: node is failed"};
  reserved_ = false;
  job_ = std::move(job);

  auto dilation = job_->dilation;
  const double speed = spec_.cpu_speed;
  // Node speed composes with any job-supplied dilation: slower nodes stretch
  // CPU phases by 1/speed; I/O is unaffected by CPU speed. Multiplicative
  // execution noise reproduces the per-iteration scatter of real machines.
  TaskRunner::DilationFn effective = [this, dilation, speed](PhaseKind kind) {
    double d = dilation ? dilation(kind) : 1.0;
    if (kind == PhaseKind::kCpu && speed > 0.0) d /= speed;
    if (d < 1.0) d = 1.0;
    const double noise_fraction = kind == PhaseKind::kCpu
                                      ? spec_.cpu_noise_fraction
                                      : spec_.io_noise_fraction;
    if (noise_fraction > 0.0) {
      d *= rng_.normal(1.0, noise_fraction);
      if (d <= 0.0) d = noise_fraction;  // absurd tail sample
    }
    return d;
  };

  runner_ = std::make_unique<TaskRunner>(
      sim_, job_->workload, std::move(effective),
      [this] {
        // Keep the job's callback alive past the state reset: completion may
        // immediately re-dispatch another job onto this node.
        auto on_complete = job_ ? job_->on_complete : nullptr;
        // Move the runner into a local instead of resetting it: this closure
        // lives inside the runner, so destroying it here would free the
        // captures while the body is still executing. The local destroys it
        // after the last capture access, when the body ends.
        auto finished = std::move(runner_);
        job_.reset();
        if (on_complete) on_complete();
      },
      job_->phase_observer);
  if (job_->barrier_handler) runner_->set_barrier_handler(job_->barrier_handler);
  if (job_->on_start) job_->on_start(id_);
  runner_->start();
}

std::optional<JobId> WorkerNode::kill_current() {
  if (!runner_) return std::nullopt;
  const JobId killed = job_->id;
  runner_->cancel();
  runner_.reset();
  job_.reset();
  return killed;
}

std::optional<JobId> WorkerNode::fail() {
  failed_ = true;
  reserved_ = false;
  return kill_current();
}

void WorkerNode::finish_current_manual() {
  if (!runner_) return;
  runner_->finish_manual();
}

void WorkerNode::notify_dilation_changed() {
  if (runner_) runner_->notify_dilation_changed();
}

void WorkerNode::release_barrier() {
  if (runner_) runner_->release_barrier();
}

}  // namespace cg::lrms
