// Spawns an *unmodified* executable with its stdin/stdout/stderr replaced by
// pipes — the interposition point. The paper's agent is an LD_PRELOAD-style
// shared library trapping I/O calls; replacing the standard descriptors at
// exec time intercepts exactly the same traffic without recompilation, which
// is the property the paper requires ("users do not need to recompile their
// application").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "interpose/socket.hpp"
#include "util/expected.hpp"

namespace cg::interpose {

class ChildProcess {
public:
  /// Starts `argv[0]` with the given arguments. The child's fds 0/1/2 are
  /// connected to the pipes exposed below.
  [[nodiscard]] static Expected<ChildProcess> spawn(std::vector<std::string> argv);

  ChildProcess(ChildProcess&& other) noexcept;
  ChildProcess& operator=(ChildProcess&& other) noexcept;
  ~ChildProcess();
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;

  [[nodiscard]] int pid() const { return pid_; }
  /// Write end of the child's stdin.
  [[nodiscard]] int stdin_fd() const { return stdin_.get(); }
  /// Read ends of the child's stdout/stderr.
  [[nodiscard]] int stdout_fd() const { return stdout_.get(); }
  [[nodiscard]] int stderr_fd() const { return stderr_.get(); }

  /// Closes the child's stdin (EOF to the application).
  void close_stdin();

  /// Non-blocking reap. Returns the exit status if the child has exited.
  [[nodiscard]] std::optional<int> try_wait();

  /// Blocking reap with SIGKILL escalation after `grace_ms`; a negative
  /// grace waits forever without escalating.
  int wait(int grace_ms = 5000);

  /// Sends a signal to the child.
  void signal(int signum);

private:
  ChildProcess(int pid, Fd in, Fd out, Fd err);

  int pid_ = -1;
  bool reaped_ = false;
  Fd stdin_;
  Fd stdout_;
  Fd stderr_;
};

}  // namespace cg::interpose
