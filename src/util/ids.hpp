// Strongly typed identifiers for the entities the broker tracks. Each id is
// a distinct type, so a JobId cannot be passed where a SiteId is expected.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

namespace cg {

template <typename Tag>
class Id {
public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t v) : value_{v} {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != 0; }
  constexpr auto operator<=>(const Id&) const = default;

  /// The zero id, meaning "none".
  [[nodiscard]] static constexpr Id none() { return Id{}; }

private:
  std::uint64_t value_ = 0;
};

template <typename Tag>
std::ostream& operator<<(std::ostream& os, Id<Tag> id) {
  return os << Tag::prefix << id.value();
}

struct JobTag { static constexpr const char* prefix = "job-"; };
struct SubJobTag { static constexpr const char* prefix = "sub-"; };
struct SiteTag { static constexpr const char* prefix = "site-"; };
struct NodeTag { static constexpr const char* prefix = "node-"; };
struct AgentTag { static constexpr const char* prefix = "agent-"; };
struct UserTag { static constexpr const char* prefix = "user-"; };
struct LeaseTag { static constexpr const char* prefix = "lease-"; };

using JobId = Id<JobTag>;
using SubJobId = Id<SubJobTag>;
using SiteId = Id<SiteTag>;
using NodeId = Id<NodeTag>;
using AgentId = Id<AgentTag>;
using UserId = Id<UserTag>;
using LeaseId = Id<LeaseTag>;

/// Monotonic id generator; one per entity class, owned by its registry.
template <typename IdType>
class IdGenerator {
public:
  [[nodiscard]] IdType next() { return IdType{++counter_}; }

private:
  std::uint64_t counter_ = 0;
};

}  // namespace cg

namespace std {
template <typename Tag>
struct hash<cg::Id<Tag>> {
  size_t operator()(cg::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
