// The glide-in agent (Condor Glide-In style, Section 5.2). Submitted through
// the normal batch path as an ordinary local job; once running on a worker
// node it splits the node into a batch-vm and an interactive-vm, reports
// directly to the broker (bypassing Globus and the LRMS for subsequent
// interactive submissions), and enforces the PerformanceLoss CPU split.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "glidein/vm_model.hpp"
#include "lrms/task_runner.hpp"
#include "obs/metrics.hpp"
#include "sim/simulation.hpp"
#include "util/expected.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace cg::net {
class ControlBus;
}

namespace cg::glidein {

enum class SlotType { kBatch, kInteractive };

/// A job handed to one of the agent's virtual machines.
struct SlotJob {
  JobId id;
  UserId owner;
  lrms::Workload workload;
  std::function<void()> on_start;
  std::function<void()> on_complete;
  lrms::TaskRunner::PhaseObserver phase_observer;
  lrms::TaskRunner::BarrierFn barrier_handler;
};

struct GlideinAgentConfig {
  VmModelConfig vm;
  /// Degree of multiprogramming: how many interactive VMs the agent creates
  /// beside the batch-vm. The paper uses 1 and names a larger, dynamic
  /// degree as future work ("our multi-programming system could allow a
  /// larger degree of multi-programming, creating dynamically more than two
  /// virtual machines").
  int interactive_slots = 1;
  /// Agent bootstrap on the worker node after the LRMS starts it (unpacking,
  /// creating the VM slots, registering with the broker).
  Duration bootstrap_time = Duration::millis(2500);
  /// Receiving a job on a VM and spawning it (fork/exec, sandbox setup).
  Duration job_start_overhead = Duration::millis(900);
  /// Size of the agent bundle staged with the carrying batch submission.
  std::size_t binary_bytes = 10u << 20;
};

enum class AgentState { kPending, kRunning, kDead };

/// One agent instance bound to a worker node. Owned by the AgentRegistry.
class GlideinAgent {
public:
  using StateObserver = std::function<void(AgentState)>;

  GlideinAgent(sim::Simulation& sim, AgentId id, SiteId site,
               GlideinAgentConfig config = {});
  ~GlideinAgent();
  GlideinAgent(const GlideinAgent&) = delete;
  GlideinAgent& operator=(const GlideinAgent&) = delete;

  [[nodiscard]] AgentId id() const { return id_; }
  [[nodiscard]] SiteId site() const { return site_; }
  [[nodiscard]] AgentState state() const { return state_; }
  [[nodiscard]] const GlideinAgentConfig& config() const { return config_; }
  /// The LRMS job id the agent occupies on the node (valid once submitted).
  [[nodiscard]] JobId carrier_job_id() const { return carrier_job_id_; }
  void set_carrier_job_id(JobId id) { carrier_job_id_ = id; }
  [[nodiscard]] std::optional<NodeId> node() const { return node_; }

  /// Called when the LRMS starts the carrier job on a node. After
  /// `bootstrap_time` the agent becomes kRunning and the VMs exist.
  void on_carrier_started(NodeId node);

  /// Called when the carrier job is killed (scheduler kill, node failure).
  /// Both resident jobs die with it.
  void on_carrier_killed();

  /// Installed by the registry/broker to track availability.
  void set_state_observer(StateObserver observer);

  /// Wires the agent onto the control-plane bus. Once connected, the agent
  /// announces itself with an AgentRegister message when it reaches
  /// kRunning, and answers LivenessProbe deliveries with LivenessEcho
  /// messages over the broker <-> agent channel. The bus must outlive the
  /// agent (or be disconnected with nullptr).
  void connect_control_plane(net::ControlBus* bus, std::string site_endpoint,
                             std::string broker_endpoint,
                             Duration channel_latency);

  /// Delivery of a broker LivenessProbe message: processes it on the event
  /// loop (echo_liveness_probe) and, when connected, sends the LivenessEcho
  /// back over the bus. Returns false when the loop is wedged or not running
  /// — the probe dies unanswered, exactly the supervision signal.
  bool deliver_liveness_probe(std::uint64_t seq);

  /// Fault injection (kAgentWedge): a wedged agent's event loop is stalled —
  /// it stops echoing liveness probes and refuses new slot starts — while
  /// its carrier job, node, and link stay healthy and resident jobs keep
  /// executing (they are separate processes; only the control loop is stuck).
  void set_wedged(bool wedged) { wedged_ = wedged; }
  [[nodiscard]] bool wedged() const { return wedged_; }

  /// Delivery of a sequenced broker liveness probe. Returns true when the
  /// event loop processed it (the probe will be echoed), false when the
  /// agent is not running or its loop is wedged.
  [[nodiscard]] bool echo_liveness_probe(std::uint64_t seq);
  /// Highest probe sequence the loop has processed (0 before the first).
  [[nodiscard]] std::uint64_t last_echoed_probe() const {
    return last_echoed_probe_;
  }

  /// Attaches a metrics registry (must outlive the agent, or be detached
  /// with nullptr): VM occupancy gauges plus slot start/demotion counters,
  /// labelled with `labels` (typically {"site": ...}).
  void set_metrics(obs::MetricsRegistry* metrics, obs::LabelSet labels = {});

  // -- Virtual machine occupancy. ------------------------------------------
  [[nodiscard]] bool batch_vm_busy() const { return batch_job_ != nullptr; }
  /// True when every interactive slot is occupied.
  [[nodiscard]] bool interactive_vm_busy() const;
  /// True when the agent runs and at least one interactive slot is free.
  [[nodiscard]] bool interactive_vm_free() const;
  /// Number of currently free interactive slots (0 unless running).
  [[nodiscard]] int free_interactive_slots() const;
  [[nodiscard]] int interactive_slot_count() const;

  /// Starts a job on the batch-vm. Fails if the agent is not running or the
  /// slot is occupied.
  Status start_batch_job(SlotJob job);

  /// Starts a job on a free interactive-vm with the given PerformanceLoss;
  /// the co-resident batch job (if any) is immediately demoted.
  Status start_interactive_job(SlotJob job, int performance_loss);

  /// Cancels the job on a slot without firing its completion callback. For
  /// kInteractive this cancels the *first occupied* slot (degree-1 usage);
  /// with several slots prefer cancel_interactive_job.
  void cancel_slot(SlotType slot);

  /// Cancels a specific resident interactive job. Returns false if absent.
  bool cancel_interactive_job(JobId id);

  /// Releases a resident job (either slot kind) from a barrier.
  bool release_barrier(JobId id);

  /// Strongest CPU concession among currently running interactive jobs
  /// (0 when none run). Governs the batch slot and fair-share demotion.
  [[nodiscard]] int max_running_performance_loss() const;

  /// Ids of the jobs currently resident (for bookkeeping / kill fan-out).
  [[nodiscard]] std::optional<JobId> batch_job_id() const;
  /// First resident interactive job (degree-1 convenience).
  [[nodiscard]] std::optional<JobId> interactive_job_id() const;
  [[nodiscard]] std::vector<JobId> interactive_job_ids() const;

private:
  struct Resident {
    SlotJob job;
    std::unique_ptr<lrms::TaskRunner> runner;
    std::uint64_t epoch = 0;  ///< guards the delayed-start event
    int performance_loss = 0;
  };

  void set_state(AgentState state);
  void reapply_dilations();
  /// Refreshes the occupancy gauges after any slot change (no-op without a
  /// registry attached).
  void update_occupancy_metrics();
  /// Dilation for the batch slot (slot_index < 0) or interactive slot i.
  [[nodiscard]] double dilation_for(int slot_index, lrms::PhaseKind kind) const;
  Status start_on_slot(int slot_index, SlotJob job, int performance_loss);
  [[nodiscard]] int running_interactive_count() const;

  sim::Simulation& sim_;
  AgentId id_;
  SiteId site_;
  GlideinAgentConfig config_;
  net::ControlBus* bus_ = nullptr;
  std::string site_endpoint_;
  std::string broker_endpoint_;
  Duration channel_latency_ = Duration::zero();
  mutable Rng noise_rng_;  ///< execution-noise stream (dilation_for is const)
  AgentState state_ = AgentState::kPending;
  bool wedged_ = false;
  std::uint64_t last_echoed_probe_ = 0;
  StateObserver observer_;
  JobId carrier_job_id_;
  std::optional<NodeId> node_;
  sim::ScopedTimer bootstrap_timer_;

  std::unique_ptr<Resident> batch_job_;
  std::vector<std::unique_ptr<Resident>> interactive_;  ///< fixed slot array
  std::uint64_t next_epoch_ = 1;

  /// Pre-resolved handles (bound once in set_metrics, inert when detached):
  /// occupancy updates fire on every slot change, so the hot path must not
  /// rebuild label sets or walk the registry maps.
  struct MetricHandles {
    obs::GaugeHandle interactive_vms_occupied;
    obs::GaugeHandle batch_vm_occupied;
    obs::HistogramHandle interactive_occupancy;
    obs::CounterHandle slot_starts_batch;
    obs::CounterHandle slot_starts_interactive;
    bool attached = false;
  };
  MetricHandles metrics_;
};

}  // namespace cg::glidein
