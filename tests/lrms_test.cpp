// Local resource management tests: workloads, the dilation-aware task
// runner, worker nodes, the batch scheduler, and the gatekeeper's cost model.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "jdl/parser.hpp"
#include "lrms/site.hpp"
#include "net/control_bus.hpp"
#include "sim/network.hpp"

namespace cg::lrms {
namespace {

using namespace cg::literals;

// -------------------------------------------------------------- workload ----

TEST(WorkloadTest, Shapes) {
  const Workload cpu = Workload::cpu(10_s);
  EXPECT_EQ(cpu.phases.size(), 1u);
  EXPECT_EQ(cpu.total_cpu().to_seconds(), 10.0);
  EXPECT_EQ(cpu.total_io().to_seconds(), 0.0);

  const Workload iter = Workload::iterative(1000, 6_ms, 921_ms);
  EXPECT_EQ(iter.phases.size(), 2000u);
  EXPECT_NEAR(iter.total_cpu().to_seconds(), 921.0, 1e-9);
  EXPECT_NEAR(iter.total_io().to_seconds(), 6.0, 1e-9);

  EXPECT_TRUE(Workload::manual().is_manual());
  EXPECT_FALSE(cpu.is_manual());
  EXPECT_THROW(Workload::cpu(0_s), std::invalid_argument);
  EXPECT_THROW(Workload::iterative(0, 1_ms, 1_ms), std::invalid_argument);
}

// ------------------------------------------------------------ task runner ----

TEST(TaskRunnerTest, RunsUndilatedWorkloadExactly) {
  sim::Simulation sim;
  bool done = false;
  TaskRunner runner{sim, Workload::cpu(5_s), nullptr, [&] { done = true; }};
  runner.start();
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now().to_seconds(), 5.0);
}

TEST(TaskRunnerTest, ConstantDilationStretchesCpu) {
  sim::Simulation sim;
  bool done = false;
  TaskRunner runner{sim, Workload::cpu(10_s),
                    [](PhaseKind) { return 1.5; },
                    [&] { done = true; }};
  runner.start();
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(sim.now().to_seconds(), 15.0, 1e-6);
}

TEST(TaskRunnerTest, MidPhaseDilationChangeIsExact) {
  // 10 s of work; first 4 s at speed 1, remainder at half speed
  // (dilation 2) => total 4 + 12 = 16 s.
  sim::Simulation sim;
  double dilation = 1.0;
  bool done = false;
  TaskRunner runner{sim, Workload::cpu(10_s),
                    [&](PhaseKind) { return dilation; },
                    [&] { done = true; }};
  runner.start();
  sim.schedule(4_s, [&] {
    dilation = 2.0;
    runner.notify_dilation_changed();
  });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(sim.now().to_seconds(), 16.0, 1e-5);
}

TEST(TaskRunnerTest, DilationRestoredMidPhase) {
  // 10 s of work: 2 s at dilation 2 (consumes 1 s of work), then dilation 1
  // for the remaining 9 s => total 11 s.
  sim::Simulation sim;
  double dilation = 2.0;
  TaskRunner runner{sim, Workload::cpu(10_s),
                    [&](PhaseKind) { return dilation; }, [] {}};
  runner.start();
  sim.schedule(2_s, [&] {
    dilation = 1.0;
    runner.notify_dilation_changed();
  });
  sim.run();
  EXPECT_NEAR(sim.now().to_seconds(), 11.0, 1e-5);
}

TEST(TaskRunnerTest, PhaseObserverSeesMeasuredDurations) {
  sim::Simulation sim;
  std::vector<std::pair<PhaseKind, double>> observed;
  TaskRunner runner{sim, Workload::iterative(3, 10_ms, 100_ms),
                    [](PhaseKind kind) {
                      return kind == PhaseKind::kCpu ? 1.10 : 1.0;
                    },
                    [] {},
                    [&](const Phase& phase, Duration measured) {
                      observed.emplace_back(phase.kind, measured.to_seconds());
                    }};
  runner.start();
  sim.run();
  ASSERT_EQ(observed.size(), 6u);
  EXPECT_EQ(observed[0].first, PhaseKind::kIo);
  EXPECT_NEAR(observed[0].second, 0.010, 1e-9);
  EXPECT_EQ(observed[1].first, PhaseKind::kCpu);
  EXPECT_NEAR(observed[1].second, 0.110, 1e-6);
}

TEST(TaskRunnerTest, ManualWorkloadCompletesOnlyByRequest) {
  sim::Simulation sim;
  bool done = false;
  TaskRunner runner{sim, Workload::manual(), nullptr, [&] { done = true; }};
  runner.start();
  sim.run();
  EXPECT_FALSE(done);
  runner.finish_manual();
  EXPECT_TRUE(done);
  runner.finish_manual();  // idempotent
}

TEST(TaskRunnerTest, CancelSuppressesCompletion) {
  sim::Simulation sim;
  bool done = false;
  TaskRunner runner{sim, Workload::cpu(5_s), nullptr, [&] { done = true; }};
  runner.start();
  sim.schedule(1_s, [&] { runner.cancel(); });
  sim.run();
  EXPECT_FALSE(done);
}

TEST(TaskRunnerTest, InvalidDilationFallsBackToOne) {
  // Noise may legitimately dip a dilation slightly below 1.0, but NaN,
  // infinities, and non-positive values are rejected outright.
  for (const double bogus : {0.0, -1.0, std::nan(""),
                             std::numeric_limits<double>::infinity()}) {
    sim::Simulation sim;
    TaskRunner runner{sim, Workload::cpu(1_s),
                      [bogus](PhaseKind) { return bogus; }, [] {}};
    runner.start();
    sim.run();
    EXPECT_NEAR(sim.now().to_seconds(), 1.0, 1e-9) << bogus;
  }
}

TEST(TaskRunnerTest, SubUnityDilationIsHonoured) {
  // A 10% "speed-up" sample (execution noise) genuinely shortens the phase.
  sim::Simulation sim;
  TaskRunner runner{sim, Workload::cpu(1_s), [](PhaseKind) { return 0.9; },
                    [] {}};
  runner.start();
  sim.run();
  EXPECT_NEAR(sim.now().to_seconds(), 0.9, 1e-9);
}

TEST(TaskRunnerTest, DoubleStartThrows) {
  sim::Simulation sim;
  TaskRunner runner{sim, Workload::cpu(1_s), nullptr, [] {}};
  runner.start();
  EXPECT_THROW(runner.start(), std::logic_error);
}

// ------------------------------------------------------------ worker node ----

TEST(WorkerNodeTest, RunsJobAndFreesItself) {
  sim::Simulation sim;
  WorkerNode node{sim, NodeId{1}};
  EXPECT_TRUE(node.idle());
  bool started = false;
  bool completed = false;
  LocalJob job;
  job.id = JobId{1};
  job.workload = Workload::cpu(2_s);
  job.on_start = [&](NodeId id) {
    started = true;
    EXPECT_EQ(id, NodeId{1});
  };
  job.on_complete = [&] { completed = true; };
  node.run(std::move(job));
  EXPECT_TRUE(started);
  EXPECT_FALSE(node.idle());
  EXPECT_EQ(node.current_job(), JobId{1});
  sim.run();
  EXPECT_TRUE(completed);
  EXPECT_TRUE(node.idle());
}

TEST(WorkerNodeTest, SlowNodeStretchesCpuOnly) {
  sim::Simulation sim;
  WorkerNodeSpec half_speed;
  half_speed.cpu_speed = 0.5;
  WorkerNode node{sim, NodeId{1}, half_speed};
  LocalJob job;
  job.id = JobId{1};
  job.workload = Workload::iterative(1, 1_s, 4_s);  // 1 s IO + 4 s CPU
  node.run(std::move(job));
  sim.run();
  // IO unchanged (1 s) + CPU doubled (8 s).
  EXPECT_NEAR(sim.now().to_seconds(), 9.0, 1e-6);
}

TEST(WorkerNodeTest, KillSuppressesCompletion) {
  sim::Simulation sim;
  WorkerNode node{sim, NodeId{1}};
  bool completed = false;
  LocalJob job;
  job.id = JobId{5};
  job.workload = Workload::cpu(10_s);
  job.on_complete = [&] { completed = true; };
  node.run(std::move(job));
  EXPECT_EQ(node.kill_current(), JobId{5});
  sim.run();
  EXPECT_FALSE(completed);
  EXPECT_TRUE(node.idle());
  EXPECT_FALSE(node.kill_current().has_value());
}

TEST(WorkerNodeTest, BusyNodeRejectsSecondJob) {
  sim::Simulation sim;
  WorkerNode node{sim, NodeId{1}};
  LocalJob a;
  a.id = JobId{1};
  a.workload = Workload::cpu(5_s);
  node.run(std::move(a));
  LocalJob b;
  b.id = JobId{2};
  b.workload = Workload::cpu(5_s);
  EXPECT_THROW(node.run(std::move(b)), std::logic_error);
}

// -------------------------------------------------------------- scheduler ----

class SchedulerFixture : public ::testing::Test {
protected:
  LocalJob make_job(std::uint64_t id, Duration length) {
    LocalJob job;
    job.id = JobId{id};
    job.owner = UserId{1};
    job.workload = Workload::cpu(length);
    job.on_start = [this, id](NodeId) { start_order.push_back(id); };
    job.on_complete = [this, id] { completions.push_back(id); };
    return job;
  }

  sim::Simulation sim;
  std::vector<std::uint64_t> start_order;
  std::vector<std::uint64_t> completions;
};

TEST_F(SchedulerFixture, DispatchLatencyApplies) {
  LocalSchedulerConfig config;
  config.dispatch_latency = 2_s;
  LocalScheduler sched{sim, {WorkerNodeSpec{}}, config};
  SimTime started;
  LocalJob job = make_job(1, 1_s);
  job.on_start = [&](NodeId) { started = sim.now(); };
  ASSERT_TRUE(sched.submit(std::move(job)));
  sim.run();
  EXPECT_EQ(started.to_seconds(), 2.0);
}

TEST_F(SchedulerFixture, FifoOrderAcrossQueue) {
  LocalSchedulerConfig config;
  config.dispatch_latency = Duration::millis(1);
  LocalScheduler sched{sim, {WorkerNodeSpec{}}, config};  // one node
  ASSERT_TRUE(sched.submit(make_job(1, 10_s)));
  ASSERT_TRUE(sched.submit(make_job(2, 1_s)));
  ASSERT_TRUE(sched.submit(make_job(3, 1_s)));
  EXPECT_EQ(sched.queued_jobs(), 2);  // two waiting behind the running one
  sim.run();
  EXPECT_EQ(start_order, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(completions, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST_F(SchedulerFixture, ShortestFirstPolicy) {
  LocalSchedulerConfig config;
  config.policy = QueuePolicy::kShortestFirst;
  config.dispatch_latency = Duration::millis(1);
  LocalScheduler sched{sim, {WorkerNodeSpec{}}, config};
  ASSERT_TRUE(sched.submit(make_job(1, 10_s)));   // runs first (node idle)
  ASSERT_TRUE(sched.submit(make_job(2, 5_s)));
  ASSERT_TRUE(sched.submit(make_job(3, 1_s)));
  sim.run();
  EXPECT_EQ(start_order, (std::vector<std::uint64_t>{1, 3, 2}));
}

TEST_F(SchedulerFixture, ParallelNodesRunConcurrently) {
  LocalScheduler sched{sim, {WorkerNodeSpec{}, WorkerNodeSpec{}, WorkerNodeSpec{}}};
  for (std::uint64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(sched.submit(make_job(i, 10_s)));
  }
  sim.run();
  // All finish at dispatch + 10 s, not serialized.
  EXPECT_NEAR(sim.now().to_seconds(), 12.0, 0.1);
  EXPECT_EQ(sched.free_nodes(), 3);
}

TEST_F(SchedulerFixture, QueueLimitRejects) {
  LocalSchedulerConfig config;
  config.max_queue_length = 2;
  LocalScheduler sched{sim, {WorkerNodeSpec{}}, config};
  EXPECT_TRUE(sched.submit(make_job(1, 10_s)));  // dispatches to the node
  EXPECT_TRUE(sched.submit(make_job(2, 10_s)));  // queue slot 1
  EXPECT_TRUE(sched.submit(make_job(3, 10_s)));  // queue slot 2
  EXPECT_FALSE(sched.submit(make_job(4, 10_s)));  // queue full, node taken
  sim.run();
  EXPECT_EQ(completions, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST_F(SchedulerFixture, CancelQueuedRemovesOnlyQueued) {
  LocalSchedulerConfig config;
  config.dispatch_latency = Duration::millis(1);
  LocalScheduler sched{sim, {WorkerNodeSpec{}}, config};
  ASSERT_TRUE(sched.submit(make_job(1, 10_s)));
  ASSERT_TRUE(sched.submit(make_job(2, 1_s)));
  sim.run_until(SimTime::from_seconds(1));
  EXPECT_TRUE(sched.cancel_queued(JobId{2}));
  EXPECT_FALSE(sched.cancel_queued(JobId{1}));  // running, not queued
  sim.run();
  EXPECT_EQ(completions, (std::vector<std::uint64_t>{1}));
}

TEST_F(SchedulerFixture, KillRunningNotifiesObserverAndRedispatches) {
  LocalSchedulerConfig config;
  config.dispatch_latency = Duration::millis(1);
  LocalScheduler sched{sim, {WorkerNodeSpec{}}, config};
  std::vector<std::uint64_t> killed;
  sched.set_kill_observer([&](JobId id, NodeId) { killed.push_back(id.value()); });
  ASSERT_TRUE(sched.submit(make_job(1, 100_s)));
  ASSERT_TRUE(sched.submit(make_job(2, 1_s)));
  sim.run_until(SimTime::from_seconds(5));
  EXPECT_TRUE(sched.kill_running(JobId{1}));
  sim.run();
  EXPECT_EQ(killed, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(completions, (std::vector<std::uint64_t>{2}));  // queued job ran
  EXPECT_FALSE(sched.kill_running(JobId{42}));
}

TEST_F(SchedulerFixture, ManualJobFinishedExternally) {
  LocalScheduler sched{sim, {WorkerNodeSpec{}}};
  LocalJob agent = make_job(1, 1_s);
  agent.workload = Workload::manual();
  ASSERT_TRUE(sched.submit(std::move(agent)));
  sim.run();
  EXPECT_EQ(sched.free_nodes(), 0);  // still occupying the node
  EXPECT_TRUE(sched.finish_manual(JobId{1}));
  sim.run();
  EXPECT_EQ(completions, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(sched.free_nodes(), 1);
}

TEST_F(SchedulerFixture, NodeOfReportsLocation) {
  LocalScheduler sched{sim, {WorkerNodeSpec{}, WorkerNodeSpec{}}};
  ASSERT_TRUE(sched.submit(make_job(1, 10_s)));
  sim.run_until(SimTime::from_seconds(3));
  EXPECT_TRUE(sched.node_of(JobId{1}).has_value());
  EXPECT_FALSE(sched.node_of(JobId{2}).has_value());
}

// -- Condor-style matchmaking policy ----------------------------------------

class MatchmakingFixture : public ::testing::Test {
protected:
  static WorkerNodeSpec gpu_node() {
    WorkerNodeSpec spec;
    spec.extra_attributes = {{"HasGPU", "true"}};
    return spec;
  }
  static WorkerNodeSpec plain_node() {
    WorkerNodeSpec spec;
    spec.extra_attributes = {{"HasGPU", "false"}};
    return spec;
  }

  LocalJob job_with_requirements(std::uint64_t id, const std::string& req,
                                 Duration length = 10_s) {
    LocalJob job;
    job.id = JobId{id};
    job.workload = Workload::cpu(length);
    auto ad = std::make_shared<jdl::ClassAd>();
    ad->set(std::string{"Requirements"}, jdl::parse_expression(req).value());
    job.job_ad = std::move(ad);
    job.on_start = [this, id](NodeId node) { starts.emplace_back(id, node); };
    job.on_complete = [this, id] { completions.push_back(id); };
    return job;
  }

  sim::Simulation sim;
  std::vector<std::pair<std::uint64_t, NodeId>> starts;
  std::vector<std::uint64_t> completions;
};

TEST_F(MatchmakingFixture, JobRunsOnMatchingNodeOnly) {
  LocalSchedulerConfig config;
  config.policy = QueuePolicy::kMatchmaking;
  config.dispatch_latency = Duration::millis(10);
  LocalScheduler sched{sim, {plain_node(), gpu_node()}, config};
  const NodeId gpu_node_id = sched.node(1).id();

  ASSERT_TRUE(sched.submit(
      job_with_requirements(1, "other.HasGPU == true")));
  sim.run();
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_EQ(starts[0].second, gpu_node_id);
}

TEST_F(MatchmakingFixture, NonMatchingJobWaitsDoesNotBlockOthers) {
  // Head-of-line: a GPU job is first in the queue but only a plain node is
  // free; a later CPU-only job must run around it (Condor semantics, unlike
  // strict FIFO).
  LocalSchedulerConfig config;
  config.policy = QueuePolicy::kMatchmaking;
  config.dispatch_latency = Duration::millis(10);
  LocalScheduler sched{sim, {plain_node()}, config};

  ASSERT_TRUE(sched.submit(job_with_requirements(1, "other.HasGPU == true")));
  ASSERT_TRUE(sched.submit(job_with_requirements(2, "other.MemoryMB >= 512")));
  sim.run();
  // Only job 2 ran; job 1 still waits for a GPU that never comes.
  EXPECT_EQ(completions, (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(sched.queued_jobs(), 1);
}

TEST_F(MatchmakingFixture, AdlessJobsMatchAnywhere) {
  LocalSchedulerConfig config;
  config.policy = QueuePolicy::kMatchmaking;
  config.dispatch_latency = Duration::millis(10);
  LocalScheduler sched{sim, {gpu_node()}, config};
  LocalJob job;
  job.id = JobId{1};
  job.workload = Workload::cpu(1_s);
  job.on_complete = [this] { completions.push_back(1); };
  ASSERT_TRUE(sched.submit(std::move(job)));
  sim.run();
  EXPECT_EQ(completions, (std::vector<std::uint64_t>{1}));
}

TEST_F(MatchmakingFixture, MachineAdExportsNodeFacts) {
  WorkerNodeSpec spec;
  spec.memory_mb = 2048;
  spec.cpu_speed = 1.5;
  spec.extra_attributes = {{"Pool", "\"physics\""}};
  WorkerNode node{sim, NodeId{7}, spec};
  EXPECT_EQ(node.machine_ad().get_int("MemoryMB"), 2048);
  EXPECT_EQ(node.machine_ad().get_real("CpuSpeed"), 1.5);
  EXPECT_EQ(node.machine_ad().get_string("Pool"), "physics");
  EXPECT_EQ(node.machine_ad().get_int("NodeId"), 7);
}

TEST_F(MatchmakingFixture, BadAttributeExpressionThrows) {
  WorkerNodeSpec spec;
  spec.extra_attributes = {{"Broken", "((("}};
  EXPECT_THROW(WorkerNode(sim, NodeId{1}, spec), std::invalid_argument);
}

TEST(LocalSchedulerTest, RequiresNodes) {
  sim::Simulation sim;
  EXPECT_THROW(LocalScheduler(sim, {}), std::invalid_argument);
}

// -------------------------------------------------------------- gatekeeper ----

class GatekeeperFixture : public ::testing::Test {
protected:
  GatekeeperFixture()
      : network{Rng{1}},
        bus{sim, network},
        scheduler{sim, {WorkerNodeSpec{}}, fast_lrms()},
        gatekeeper{sim, bus, "site:test", scheduler, config()} {
    network.add_link("ui", "site:test", sim::LinkSpec::campus());
  }

  static LocalSchedulerConfig fast_lrms() {
    LocalSchedulerConfig c;
    c.dispatch_latency = Duration::millis(10);
    return c;
  }
  static GatekeeperConfig config() {
    GatekeeperConfig c;
    c.gsi_auth_latency = 1_s;
    c.jobmanager_latency = 2_s;
    c.prepare_overhead = 500_ms;
    return c;
  }

  GridJobRequest make_request(std::uint64_t id) {
    GridJobRequest r;
    r.id = JobId{id};
    r.owner = UserId{1};
    r.workload = Workload::cpu(1_s);
    r.submitter_endpoint = "ui";
    return r;
  }

  sim::Simulation sim;
  sim::Network network;
  net::ControlBus bus;
  LocalScheduler scheduler;
  Gatekeeper gatekeeper;
};

TEST_F(GatekeeperFixture, PrepareCostsAuthPlusOverhead) {
  SimTime prepared_at;
  gatekeeper.prepare(make_request(1), [&](Status s) {
    EXPECT_TRUE(s.ok());
    prepared_at = sim.now();
  });
  sim.run();
  EXPECT_NEAR(prepared_at.to_seconds(), 1.5, 1e-6);
}

TEST_F(GatekeeperFixture, DirectSubmissionSkipsPrepareOverhead) {
  GridJobRequest request = make_request(1);
  SimTime started;
  request.on_start = [&](NodeId) { started = sim.now(); };
  gatekeeper.submit_direct(std::move(request), [](Status s) {
    EXPECT_TRUE(s.ok());
  });
  sim.run();
  // auth (1 s) + jobmanager (2 s) + dispatch (10 ms); no staging (0 bytes).
  EXPECT_NEAR(started.to_seconds(), 3.01, 1e-3);
}

TEST_F(GatekeeperFixture, StagingPaysLinkTransfer) {
  GridJobRequest request = make_request(1);
  request.stage_bytes = 12'500'000;  // 1 s on the 100 Mb/s campus link
  SimTime started;
  request.on_start = [&](NodeId) { started = sim.now(); };
  gatekeeper.submit_direct(std::move(request), [](Status) {});
  sim.run();
  EXPECT_NEAR(started.to_seconds(), 4.01, 0.02);
}

TEST_F(GatekeeperFixture, PrepareDetectsFullSite) {
  // Saturate node + queue.
  LocalSchedulerConfig tiny;
  tiny.max_queue_length = 0;
  LocalScheduler full_sched{sim, {WorkerNodeSpec{}}, tiny};
  Gatekeeper gk{sim, bus, "site:full", full_sched, config()};
  bool rejected = false;
  gk.prepare(make_request(1), [&](Status s) {
    rejected = !s.ok();
    if (!s.ok()) {
      EXPECT_EQ(s.error().code, "gatekeeper.full");
    }
  });
  sim.run();
  // One free node -> accepted. Occupy it first:
  LocalJob blocker;
  blocker.id = JobId{77};
  blocker.workload = Workload::manual();
  full_sched.submit(std::move(blocker));
  sim.run();
  bool second_rejected = false;
  gk.prepare(make_request(2), [&](Status s) { second_rejected = !s.ok(); });
  sim.run();
  EXPECT_FALSE(rejected);
  EXPECT_TRUE(second_rejected);
}

// ------------------------------------------------------------------- site ----

TEST(SiteTest, SnapshotTracksSchedulerState) {
  sim::Simulation sim;
  sim::Network network{Rng{3}};
  net::ControlBus bus{sim, network};
  SiteConfig config;
  config.name = "uab";
  config.worker_nodes = 3;
  Site site{sim, bus, SiteId{1}, config};
  EXPECT_EQ(site.endpoint(), "site:uab");

  auto snap = site.snapshot();
  EXPECT_EQ(snap.dynamic_info.free_cpus, 3);
  EXPECT_EQ(snap.static_info.total_cpus(), 3);

  lrms::LocalJob job;
  job.id = JobId{1};
  job.workload = Workload::cpu(Duration::seconds(100));
  site.scheduler().submit(std::move(job));
  sim.run_until(SimTime::from_seconds(10));
  snap = site.snapshot();
  EXPECT_EQ(snap.dynamic_info.free_cpus, 2);
  EXPECT_EQ(snap.dynamic_info.running_jobs, 1);

  site.set_interactive_vm_counter([] { return 5; });
  EXPECT_EQ(site.snapshot().dynamic_info.free_interactive_vms, 5);
}

TEST(SiteTest, Validation) {
  sim::Simulation sim;
  sim::Network network{Rng{3}};
  net::ControlBus bus{sim, network};
  SiteConfig bad;
  bad.name = "";
  EXPECT_THROW(Site(sim, bus, SiteId{1}, bad), std::invalid_argument);
  SiteConfig no_nodes;
  no_nodes.name = "x";
  no_nodes.worker_nodes = 0;
  EXPECT_THROW(Site(sim, bus, SiteId{1}, no_nodes), std::invalid_argument);
}

}  // namespace
}  // namespace cg::lrms
