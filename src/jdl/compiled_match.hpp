// Compiled form of a job's Requirements/Rank expressions for the
// matchmaking fast path. Interpreting the raw AST per job×site pays for a
// ClassAd lookup (string lowercasing + map walk) at every attribute
// reference; compilation does that work once per job:
//
//  * self-scope attribute references are inlined (the job ad is fixed for
//    the lifetime of the compiled expression);
//  * other-scope references are resolved to dense *slot indices* into the
//    machine attribute layout published by the information system, so a
//    per-site evaluation is an array read, not a map lookup;
//  * constant subtrees are folded at compile time, and the top-level
//    Requirements conjunction is split so site-independent conjuncts are
//    decided once per job, not once per site (sound because
//    `is_true(a && b) == is_true(a) && is_true(b)` under the three-valued
//    logic of value.cpp).
//
// Exactness contract: for machine ads whose attributes are all literals in
// the given SlotLayout (what SiteRecord::to_classad produces), evaluating
// the compiled form equals evaluating the original AST with jdl::evaluate —
// including the depth-64 recursion cutoff, which is replicated statically.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "jdl/ast.hpp"
#include "jdl/classad.hpp"

namespace cg::jdl {

/// Dense attribute layout of a machine ad: name -> slot index. Built once
/// per schema (see infosys::machine_slot_layout()) and shared.
class SlotLayout {
public:
  /// Registers a name (case-insensitive) and returns its slot index;
  /// re-registering returns the existing index.
  int add(std::string_view name);
  /// Slot index for a name, or -1 when the layout has no such attribute.
  [[nodiscard]] int index_of(std::string_view name) const;
  [[nodiscard]] std::size_t size() const { return names_.size(); }

private:
  std::vector<std::string> names_;               ///< original spelling
  std::map<std::string, int> index_;             ///< lowercased -> slot
};

/// Per-site attribute values in slot order (parallel to a SlotLayout).
using SlotValues = std::vector<Value>;

/// Evaluation context for a compiled expression. `override_slot` lets the
/// matchmaker substitute one attribute without copying the vector (FreeCPUs
/// is replaced by the lease-adjusted count on every evaluation).
struct SlotEvalContext {
  const SlotValues* slots = nullptr;
  int override_slot = -1;
  Value override_value;
};

/// A job's Requirements and Rank, compiled against a machine SlotLayout.
class CompiledMatch {
public:
  /// Compiles `job_ad`'s requirements/rank. Never fails: malformed or
  /// unsatisfiable expressions become never_matches() / neutral rank,
  /// mirroring what interpretation would produce.
  [[nodiscard]] static CompiledMatch compile(const ClassAd& job_ad,
                                             const SlotLayout& layout);

  /// True when the requirements are site-independently non-true: no machine
  /// can match, so the per-site loop can be skipped entirely.
  [[nodiscard]] bool never_matches() const { return never_matches_; }

  /// Site-dependent requirements test (all residual conjuncts true).
  [[nodiscard]] bool matches(const SlotEvalContext& ctx) const;

  /// True when the job declares a Rank expression; otherwise the caller
  /// applies the default rank (free CPUs).
  [[nodiscard]] bool has_rank() const { return rank_ != nullptr; }

  /// The compiled Rank value; non-numeric ranks are neutral (0.0), matching
  /// Matchmaker::rank_of.
  [[nodiscard]] double rank(const SlotEvalContext& ctx) const;

  /// Site-dependent conjuncts left after constant folding (introspection).
  [[nodiscard]] std::size_t residual_conjunct_count() const {
    return conjuncts_.size();
  }

  // Compiled expression node. Public for the evaluator/tests; treat as
  // opaque elsewhere.
  struct Node {
    enum class Kind { kConst, kSlot, kUnary, kBinary, kTernary, kList, kCall };
    Kind kind = Kind::kConst;
    Value constant;                  ///< kConst
    int slot = -1;                   ///< kSlot
    UnaryOp uop = UnaryOp::kNot;     ///< kUnary
    BinaryOp bop = BinaryOp::kAnd;   ///< kBinary
    std::string function;            ///< kCall (lowercase)
    std::vector<Node> children;
    bool site_dependent = false;     ///< any kSlot in this subtree
  };

  /// Evaluates a compiled node (exposed for tests).
  [[nodiscard]] static Value eval(const Node& node, const SlotEvalContext& ctx);

private:
  std::vector<Node> conjuncts_;      ///< residual Requirements conjuncts
  std::unique_ptr<Node> rank_;
  bool never_matches_ = false;
};

}  // namespace cg::jdl
