// Structured per-job lifecycle tracing: every transition a job makes through
// the grid (submitted -> matched -> leased -> dispatched -> started ->
// streaming -> resubmitted/suspected -> done) is recorded as a *typed* event
// with its virtual timestamp. This replaces the string-kind JobTrace as the
// machine surface: exports are JSON-lines for tooling and Chrome
// `trace_event` format for flame-graph viewing (chrome://tracing, Perfetto).
//
// Determinism contract: events are appended in simulation order and exports
// contain nothing but virtual time and recorded fields, so two same-seed
// runs produce byte-identical exports.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"  // LabelSet
#include "util/ids.hpp"
#include "util/time.hpp"

namespace cg::obs {

enum class TraceEventKind {
  // Lifecycle spine.
  kSubmitted,
  kDiscovery,
  kSelection,
  kMatched,
  kLeaseAcquired,
  kLeaseRevoked,
  kDispatched,
  kQueuedLocal,
  kQueuedBroker,
  kStarted,       ///< a subjob started on its resource
  kRunning,       ///< the whole job runs (startup barrier passed)
  kStreaming,     ///< console/streaming activity (frames, reconnects)
  kResubmitted,
  kJobEvicted,    ///< running resident timed out behind a suspected agent
  kCompleted,
  kFailed,
  kRejected,
  // Infrastructure events (JobId::none() unless tied to one job).
  kAgentDeployed,
  kAgentSuspected,
  kAgentRestored,
  kAgentDied,
  kHeartbeatMiss,
  kLivenessMiss,  ///< sequenced probe not echoed from the agent's event loop
  kLinkDown,
  kLinkUp,
  kFrameDropped,
  kReconnected,
  kSpoolFull,     ///< reliable-mode append rejected (capacity or disk fault)
  kMsgDropped,    ///< control-plane message lost (partition or kMsgDrop fault)
  kMsgDuplicated, ///< control-plane message delivered twice (kMsgDup fault)
  kInfo,
};

[[nodiscard]] std::string_view to_string(TraceEventKind kind);

struct JobTraceEvent {
  SimTime when;
  JobId job;  ///< JobId::none() for grid-global events
  TraceEventKind kind = TraceEventKind::kInfo;
  std::string detail;
  /// Structured attributes (site, agent, rank, bytes, attempt, ...) —
  /// queryable without parsing the detail string.
  LabelSet attrs;
};

class JobTracer {
public:
  /// Live subscription to recorded events: listeners run synchronously from
  /// record(), after the event is appended, in subscription order. They see
  /// only simulation-ordered, deterministic data, so observing does not
  /// perturb a run. A listener may subscribe or unsubscribe (itself
  /// included) from within a callback; listeners added during a callback
  /// only see later events.
  using SubscriptionId = std::uint64_t;
  using Listener = std::function<void(const JobTraceEvent&)>;

  void record(SimTime when, JobId job, TraceEventKind kind, std::string detail,
              LabelSet attrs = {});

  /// Subscribes to every event.
  SubscriptionId subscribe(Listener listener);
  /// Subscribes to one event kind.
  SubscriptionId subscribe(TraceEventKind kind, Listener listener);
  /// Removes a subscription; unknown ids are ignored.
  void unsubscribe(SubscriptionId id);

  [[nodiscard]] const std::vector<JobTraceEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::vector<JobTraceEvent> for_job(JobId job) const;
  [[nodiscard]] std::vector<JobTraceEvent> of_kind(TraceEventKind kind) const;
  [[nodiscard]] std::size_t count(TraceEventKind kind) const;
  /// First event of a kind for a job, or null.
  [[nodiscard]] const JobTraceEvent* first(JobId job, TraceEventKind kind) const;

  /// Human-readable rendering, one event per line.
  [[nodiscard]] std::string render() const;

  /// One JSON object per line:
  ///   {"ts_us":1234,"job":7,"kind":"resubmitted","detail":"...","attrs":{...}}
  [[nodiscard]] std::string to_jsonl() const;

  /// Chrome trace_event JSON (load in chrome://tracing or ui.perfetto.dev).
  /// Each job is a track (tid); consecutive lifecycle events become complete
  /// ("X") slices so the lifecycle reads as a flame graph, and infrastructure
  /// events appear as instant ("i") marks.
  [[nodiscard]] std::string to_chrome_trace() const;

  /// Drops recorded events; subscriptions stay installed.
  void clear() { events_.clear(); }

private:
  struct Subscription {
    SubscriptionId id = 0;
    std::optional<TraceEventKind> kind;  ///< nullopt: every kind
    Listener fn;
  };

  void notify(std::size_t event_index);

  std::vector<JobTraceEvent> events_;
  std::vector<Subscription> subscriptions_;
  SubscriptionId next_subscription_ = 1;
};

}  // namespace cg::obs
