// Standard wiring between a FaultInjector and a GridScenario: the faults
// whose victims live above the sim layer (glide-in agents, worker nodes) are
// delivered through sim::install_victim_handlers, and the victim named by a
// FaultSpec's target is resolved *at fire time* through the victim-query DSL
// (sim::parse_victim_query) against live broker state. Scenarios declare
// what to break — "agent_of(job:7)", "node_of(agent:2)" — instead of each
// test hand-writing its own resolution handlers. The bridge is the broker's
// sim::FaultVictimResolver; pure stream tests (no broker) implement the same
// interface over their hand-built agents and reuse the same DSL.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "broker/grid_scenario.hpp"
#include "sim/fault.hpp"
#include "util/ids.hpp"

namespace cg::broker {

class FaultBridge : public sim::FaultVictimResolver {
public:
  /// Installs the canonical victim handlers (kAgentCrash, kAgentWedge,
  /// kNodeCrash) on the injector, resolving against this bridge (replacing
  /// any previously installed ones for those kinds). Both the scenario and
  /// the injector must outlive the bridge.
  FaultBridge(GridScenario& grid, sim::FaultInjector& injector);
  FaultBridge(const FaultBridge&) = delete;
  FaultBridge& operator=(const FaultBridge&) = delete;

  /// Resolves an agent-valued query ("agent:N", "agent_of(job:N)") against
  /// the broker's current state. Exposed for tests and custom handlers.
  [[nodiscard]] std::optional<AgentId> resolve_agent(
      const std::string& target) const;

  /// A worker node pinned down to its site: scheduler node indices are what
  /// fail_node/revive_node speak.
  struct NodeRef {
    std::size_t site_index = 0;
    std::size_t node_index = 0;
  };

  /// Resolves a node-valued query ("node_of(job:N)", "node_of(agent:N)").
  [[nodiscard]] std::optional<NodeRef> resolve_node(
      const std::string& target) const;

  // -- sim::FaultVictimResolver --------------------------------------------
  bool set_agent_wedged(const std::string& target, bool wedged) override;
  bool crash_agent(const std::string& target) override;
  bool set_node_failed(const std::string& target, bool failed) override;

private:
  /// NodeIds are only unique within one site's scheduler, so a lookup must
  /// always be scoped to the site the victim is known to live at.
  [[nodiscard]] std::optional<NodeRef> locate_node(SiteId site,
                                                  NodeId node) const;

  GridScenario& grid_;
  /// Fire-time resolutions remembered for the matching heal event: the
  /// queried state (which agent ran the job) may have changed by then.
  std::map<std::string, AgentId> wedged_agents_;
  std::map<std::string, NodeRef> crashed_nodes_;
};

}  // namespace cg::broker
