// Pooled chunk buffer, inline ring, and spool-ring tests: the allocation-free
// building blocks of the interactive streaming path (see docs/performance.md,
// "The streaming path").
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sim/disk.hpp"
#include "stream/chunk.hpp"
#include "stream/flush_buffer.hpp"
#include "stream/spool.hpp"
#include "util/ring.hpp"

namespace cg::stream {
namespace {

using namespace cg::literals;

// ------------------------------------------------------------- chunk refs ----

TEST(ChunkRefTest, SmallPayloadsStayInline) {
  ChunkPool pool{4096};
  const ChunkRef ref = ChunkRef::copy_of("prompt> ", pool);
  EXPECT_TRUE(ref.is_inline());
  EXPECT_EQ(ref.view(), "prompt> ");
  // Inline refs never touch the pool.
  EXPECT_EQ(pool.allocated_chunks(), 0u);
  EXPECT_EQ(pool.in_use_chunks(), 0u);
}

TEST(ChunkRefTest, InlineCapacityBoundary) {
  ChunkPool pool{4096};
  const std::string at_cap(ChunkRef::kInlineCapacity, 'a');
  const std::string over_cap(ChunkRef::kInlineCapacity + 1, 'b');
  const ChunkRef small = ChunkRef::copy_of(at_cap, pool);
  const ChunkRef large = ChunkRef::copy_of(over_cap, pool);
  EXPECT_TRUE(small.is_inline());
  EXPECT_FALSE(large.is_inline());
  EXPECT_EQ(small.view(), at_cap);
  EXPECT_EQ(large.view(), over_cap);
  EXPECT_EQ(pool.allocated_chunks(), 1u);
}

TEST(ChunkRefTest, CopySharesChunkAndLastReferenceRecycles) {
  ChunkPool pool{4096};
  const std::string payload(100, 'x');
  {
    ChunkRef a = ChunkRef::copy_of(payload, pool);
    EXPECT_EQ(pool.in_use_chunks(), 1u);
    {
      const ChunkRef b = a;  // refcount bump, same chunk
      ChunkRef c = std::move(a);
      EXPECT_EQ(pool.in_use_chunks(), 1u);
      EXPECT_EQ(b.view(), payload);
      EXPECT_EQ(c.view(), payload);
      EXPECT_EQ(b.data(), c.data());  // literally the same bytes
    }
    EXPECT_EQ(pool.in_use_chunks(), 0u);  // a was moved from, b/c released
    EXPECT_EQ(pool.free_chunks(), 1u);
  }
  // A later acquisition reuses the recycled slab instead of allocating.
  const ChunkRef d = ChunkRef::copy_of(payload, pool);
  EXPECT_EQ(pool.allocated_chunks(), 1u);
  EXPECT_EQ(pool.free_chunks(), 0u);
}

TEST(ChunkRefTest, MoveAssignmentReleasesOldTarget) {
  ChunkPool pool{4096};
  ChunkRef a = ChunkRef::copy_of(std::string(50, 'a'), pool);
  ChunkRef b = ChunkRef::copy_of(std::string(60, 'b'), pool);
  EXPECT_EQ(pool.in_use_chunks(), 2u);
  a = std::move(b);  // a's original chunk must be released
  EXPECT_EQ(pool.in_use_chunks(), 1u);
  EXPECT_EQ(a.size(), 60u);
}

TEST(ChunkPoolTest, OversizeRequestsAreOneOff) {
  ChunkPool pool{256};
  EXPECT_EQ(pool.oversize_allocations(), 0u);
  {
    const ChunkRef big = ChunkRef::copy_of(std::string(1000, 'z'), pool);
    EXPECT_EQ(big.size(), 1000u);
    EXPECT_EQ(pool.oversize_allocations(), 1u);
  }
  // Oversize chunks are freed on release, not pooled.
  EXPECT_EQ(pool.free_chunks(), 0u);
  EXPECT_EQ(pool.allocated_chunks(), 0u);
}

TEST(ChunkPoolTest, HighWaterTracksPeakOccupancy) {
  ChunkPool pool{128};
  std::vector<ChunkRef> refs;
  for (int i = 0; i < 5; ++i) {
    refs.push_back(ChunkRef::copy_of(std::string(100, 'x'), pool));
  }
  refs.clear();
  EXPECT_EQ(pool.in_use_chunks(), 0u);
  EXPECT_EQ(pool.high_water_in_use(), 5u);
  EXPECT_EQ(pool.free_chunks(), 5u);
}

// ----------------------------------------------------- flush buffer + pool ----

TEST(ChunkFlushTest, FlushedSegmentsBorrowThePool) {
  sim::Simulation sim;
  ChunkPool pool{4096};
  FlushBufferConfig config;
  config.capacity = 32;
  config.pool = &pool;
  std::vector<ChunkRef> flushed;
  FlushBuffer buf{sim, config,
                  FlushBuffer::FlushFn{[&](ChunkRef data) {
                    flushed.push_back(std::move(data));
                  }}};
  buf.append("first line\n");
  buf.append("second line\n");
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_EQ(flushed[0].view(), "first line\n");
  EXPECT_EQ(flushed[1].view(), "second line\n");
  // Both segments fit the same 4 KiB chunk: one slab serves many flushes.
  EXPECT_EQ(pool.allocated_chunks(), 1u);
}

// ------------------------------------------------------------------- ring ----

TEST(RingTest, FifoOrderAcrossGrowth) {
  util::Ring<int> ring;
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 100; ++i) ring.push_back(i);
  EXPECT_EQ(ring.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.front(), i);
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(RingTest, WraparoundKeepsIndicesStable) {
  // Interleave pushes and pops so head/tail lap the backing buffer several
  // times without triggering growth (capacity stays at the minimum of 8).
  util::Ring<int> ring;
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 5; ++i) ring.push_back(next_push++);
    for (int i = 0; i < 5; ++i) {
      ASSERT_EQ(ring.front(), next_pop);
      // Front-relative indexing must agree with front()/pop order.
      for (std::size_t j = 0; j < ring.size(); ++j) {
        ASSERT_EQ(ring[j], next_pop + static_cast<int>(j));
      }
      ring.pop_front();
      ++next_pop;
    }
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 8u);  // never grew
}

TEST(RingTest, GrowthMidWrapPreservesOrder) {
  util::Ring<int> ring;
  for (int i = 0; i < 8; ++i) ring.push_back(i);   // full at min capacity
  for (int i = 0; i < 4; ++i) ring.pop_front();    // head mid-buffer
  for (int i = 8; i < 20; ++i) ring.push_back(i);  // forces wrap, then growth
  EXPECT_EQ(ring.size(), 16u);
  for (int i = 4; i < 20; ++i) {
    ASSERT_EQ(ring.front(), i);
    ring.pop_front();
  }
}

TEST(RingTest, PopResetsSlotToDefault) {
  // Popped slots must release held resources immediately: a ChunkRef left in
  // a ring slot would pin its chunk until the slot is overwritten.
  ChunkPool pool{4096};
  util::Ring<ChunkRef> ring;
  ring.push_back(ChunkRef::copy_of(std::string(100, 'x'), pool));
  EXPECT_EQ(pool.in_use_chunks(), 1u);
  ring.pop_front();
  EXPECT_EQ(pool.in_use_chunks(), 0u);
}

// ------------------------------------------------------------- spool ring ----

TEST(SpoolTest, OverflowWraparoundFillAckRefill) {
  // Satellite regression: the spool's per-entry bookkeeping lives in an
  // inline ring. Fill past capacity, ack from the head, refill — many times
  // over, so ring indices wrap the backing buffer repeatedly and capacity
  // accounting stays exact throughout.
  sim::DiskModel disk;
  Spool spool{disk};
  spool.set_capacity(1000);
  std::size_t next_push = 0;
  std::size_t next_ack = 0;
  // Distinct sizes (300 + seq % 7) let front_bytes() prove FIFO identity.
  const auto size_of = [](std::size_t seq) { return 300 + seq % 7; };
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(spool.try_push(size_of(next_push)).has_value());
    ++next_push;
  }
  for (int round = 0; round < 20; ++round) {
    // Full: a fourth ~300-byte entry would exceed the 1000-byte cap.
    EXPECT_FALSE(spool.try_push(size_of(next_push)).has_value());
    EXPECT_EQ(spool.depth(), 3u);
    // Ack the head; the freed space admits exactly one more append.
    EXPECT_EQ(spool.front_bytes(), size_of(next_ack));
    spool.pop_acknowledged();
    ++next_ack;
    ASSERT_TRUE(spool.try_push(size_of(next_push)).has_value());
    ++next_push;
  }
  EXPECT_EQ(spool.rejected_appends(), 20u);
  // Drain completely; FIFO identity held across every wraparound.
  while (!spool.empty()) {
    EXPECT_EQ(spool.front_bytes(), size_of(next_ack));
    spool.pop_acknowledged();
    ++next_ack;
  }
  EXPECT_EQ(next_ack, next_push);
  EXPECT_EQ(spool.pending_bytes(), 0u);
}

TEST(SpoolTest, CoalescedAppendIsOneEntry) {
  sim::DiskModel disk;
  Spool spool{disk};
  const Duration batched = spool.push(3000, 3);
  EXPECT_EQ(spool.depth(), 1u);  // one ring entry, one disk op
  EXPECT_EQ(disk.write_ops(), 1u);
  EXPECT_EQ(spool.total_messages(), 3u);
  EXPECT_EQ(spool.total_spooled(), 3000u);
  // One 3000-byte sequential write beats three 1000-byte writes: the
  // per-operation overhead is paid once.
  sim::DiskModel fresh;
  Spool single{fresh};
  const Duration three = single.push(1000) + single.push(1000) + single.push(1000);
  EXPECT_LT(batched.count_micros(), three.count_micros());
}

}  // namespace
}  // namespace cg::stream
