#include "jdl/compiled_match.hpp"

#include <utility>
#include <variant>

#include "jdl/eval.hpp"
#include "util/strings.hpp"

namespace cg::jdl {

int SlotLayout::add(std::string_view name) {
  std::string key = to_lower(name);
  const auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const int idx = static_cast<int>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::move(key), idx);
  return idx;
}

int SlotLayout::index_of(std::string_view name) const {
  const auto it = index_.find(to_lower(name));
  return it == index_.end() ? -1 : it->second;
}

namespace {

using Node = CompiledMatch::Node;

Node make_const(Value v) {
  Node n;
  n.kind = Node::Kind::kConst;
  n.constant = std::move(v);
  return n;
}

/// Folds a freshly built node. A subtree without slot reads is evaluated
/// right now (it can never change per site); the partial folds below are
/// exact under the three-valued logic of value.cpp: a constant-false
/// operand forces && to false and a constant-true operand forces || to
/// true whatever the other side evaluates to, and a constant condition
/// decides a ternary outright.
Node fold(Node n) {
  if (n.kind != Node::Kind::kConst && !n.site_dependent) {
    return make_const(CompiledMatch::eval(n, SlotEvalContext{}));
  }
  if (n.kind == Node::Kind::kBinary) {
    const auto const_truth = [](const Node& c) -> int {
      if (c.kind != Node::Kind::kConst || !c.constant.is_bool()) return -1;
      return c.constant.as_bool() ? 1 : 0;
    };
    if (n.bop == BinaryOp::kAnd) {
      for (const Node& c : n.children) {
        if (const_truth(c) == 0) return make_const(Value::boolean(false));
      }
    } else if (n.bop == BinaryOp::kOr) {
      for (const Node& c : n.children) {
        if (const_truth(c) == 1) return make_const(Value::boolean(true));
      }
    }
  }
  if (n.kind == Node::Kind::kTernary &&
      n.children[0].kind == Node::Kind::kConst) {
    const Value& cond = n.children[0].constant;
    if (!cond.is_bool()) return make_const(Value::undefined());
    return std::move(n.children[cond.as_bool() ? 1u : 2u]);
  }
  return n;
}

/// Compiles a job-side expression. `depth` mirrors the interpreter's
/// recursion counter exactly — inlining an attribute reference costs one
/// level, so expressions nested past kMaxEvalDepth compile to the same
/// Undefined the interpreter would produce (this also bounds compilation of
/// cyclic self-references).
struct Compiler {
  const ClassAd& job;
  const SlotLayout& layout;

  [[nodiscard]] Node compile(const Expr& e, int depth) const {
    if (depth > kMaxEvalDepth) return make_const(Value::undefined());
    return std::visit([&](const auto& node) { return (*this)(node, depth); },
                      e.node);
  }

  Node operator()(const Expr::Literal& l, int) const {
    return make_const(l.value);
  }

  Node operator()(const Expr::AttrRef& r, int depth) const {
    if (r.scope == Scope::kOther) {
      // Machine attributes are literals published by the information
      // system: dereferencing one reads its slot (at depth+1, where the
      // interpreter would evaluate the literal), and a name outside the
      // layout is Undefined just like a missing attribute.
      if (depth + 1 > kMaxEvalDepth) return make_const(Value::undefined());
      const int slot = layout.index_of(r.name);
      if (slot < 0) return make_const(Value::undefined());
      Node n;
      n.kind = Node::Kind::kSlot;
      n.slot = slot;
      n.site_dependent = true;
      return n;
    }
    // Self scope: the job ad is fixed, so inline the referenced expression.
    const ExprPtr e = job.lookup(r.name);
    if (!e) return make_const(Value::undefined());
    return compile(*e, depth + 1);
  }

  Node operator()(const Expr::Unary& u, int depth) const {
    Node n;
    n.kind = Node::Kind::kUnary;
    n.uop = u.op;
    n.children.push_back(compile(*u.operand, depth + 1));
    n.site_dependent = n.children[0].site_dependent;
    return fold(std::move(n));
  }

  Node operator()(const Expr::Binary& b, int depth) const {
    Node n;
    n.kind = Node::Kind::kBinary;
    n.bop = b.op;
    n.children.push_back(compile(*b.lhs, depth + 1));
    n.children.push_back(compile(*b.rhs, depth + 1));
    n.site_dependent =
        n.children[0].site_dependent || n.children[1].site_dependent;
    return fold(std::move(n));
  }

  Node operator()(const Expr::Ternary& t, int depth) const {
    Node n;
    n.kind = Node::Kind::kTernary;
    n.children.push_back(compile(*t.cond, depth + 1));
    n.children.push_back(compile(*t.if_true, depth + 1));
    n.children.push_back(compile(*t.if_false, depth + 1));
    for (const Node& c : n.children) n.site_dependent |= c.site_dependent;
    return fold(std::move(n));
  }

  Node operator()(const Expr::ListExpr& l, int depth) const {
    Node n;
    n.kind = Node::Kind::kList;
    n.children.reserve(l.items.size());
    for (const auto& e : l.items) {
      n.children.push_back(compile(*e, depth + 1));
      n.site_dependent |= n.children.back().site_dependent;
    }
    return fold(std::move(n));
  }

  Node operator()(const Expr::Call& c, int depth) const {
    Node n;
    n.kind = Node::Kind::kCall;
    n.function = c.function;
    n.children.reserve(c.args.size());
    for (const auto& a : c.args) {
      n.children.push_back(compile(*a, depth + 1));
      n.site_dependent |= n.children.back().site_dependent;
    }
    return fold(std::move(n));
  }
};

/// Flattens the top-level && spine of compiled Requirements. Sound for the
/// match criterion because is_true(a && b) == is_true(a) && is_true(b):
/// constant-true conjuncts are vacuous, any constant non-true conjunct
/// (false, Undefined, non-boolean) makes the job unmatchable everywhere.
void flatten_and(Node n, std::vector<Node>& conjuncts, bool& never_matches) {
  if (n.kind == Node::Kind::kBinary && n.bop == BinaryOp::kAnd) {
    flatten_and(std::move(n.children[0]), conjuncts, never_matches);
    flatten_and(std::move(n.children[1]), conjuncts, never_matches);
    return;
  }
  if (n.kind == Node::Kind::kConst) {
    if (!n.constant.is_true()) never_matches = true;
    return;
  }
  conjuncts.push_back(std::move(n));
}

}  // namespace

CompiledMatch CompiledMatch::compile(const ClassAd& job_ad,
                                     const SlotLayout& layout) {
  CompiledMatch out;
  const Compiler compiler{job_ad, layout};
  if (const ExprPtr req = job_ad.lookup("requirements")) {
    flatten_and(compiler.compile(*req, 0), out.conjuncts_, out.never_matches_);
  }
  if (const ExprPtr rank_expr = job_ad.lookup("rank")) {
    out.rank_ = std::make_unique<Node>(compiler.compile(*rank_expr, 0));
  }
  return out;
}

bool CompiledMatch::matches(const SlotEvalContext& ctx) const {
  if (never_matches_) return false;
  for (const Node& conjunct : conjuncts_) {
    if (!eval(conjunct, ctx).is_true()) return false;
  }
  return true;
}

double CompiledMatch::rank(const SlotEvalContext& ctx) const {
  if (!rank_) return 0.0;
  const Value v = eval(*rank_, ctx);
  if (v.is_number()) return v.as_number();
  return 0.0;  // non-numeric rank: neutral (same as Matchmaker::rank_of)
}

Value CompiledMatch::eval(const Node& n, const SlotEvalContext& ctx) {
  switch (n.kind) {
    case Node::Kind::kConst:
      return n.constant;
    case Node::Kind::kSlot: {
      if (n.slot == ctx.override_slot) return ctx.override_value;
      if (ctx.slots == nullptr || n.slot < 0 ||
          static_cast<std::size_t>(n.slot) >= ctx.slots->size()) {
        return Value::undefined();
      }
      return (*ctx.slots)[static_cast<std::size_t>(n.slot)];
    }
    case Node::Kind::kUnary: {
      const Value v = eval(n.children[0], ctx);
      return n.uop == UnaryOp::kNot ? logical_not(v) : arith_neg(v);
    }
    case Node::Kind::kBinary: {
      // Same short-circuiting as the interpreter (three-valued logic).
      if (n.bop == BinaryOp::kAnd) {
        const Value lhs = eval(n.children[0], ctx);
        if (lhs.is_bool() && !lhs.as_bool()) return Value::boolean(false);
        return logical_and(lhs, eval(n.children[1], ctx));
      }
      if (n.bop == BinaryOp::kOr) {
        const Value lhs = eval(n.children[0], ctx);
        if (lhs.is_true()) return Value::boolean(true);
        return logical_or(lhs, eval(n.children[1], ctx));
      }
      const Value lhs = eval(n.children[0], ctx);
      const Value rhs = eval(n.children[1], ctx);
      switch (n.bop) {
        case BinaryOp::kEq: return cmp_eq(lhs, rhs);
        case BinaryOp::kNe: return cmp_ne(lhs, rhs);
        case BinaryOp::kLt: return cmp_lt(lhs, rhs);
        case BinaryOp::kLe: return cmp_le(lhs, rhs);
        case BinaryOp::kGt: return cmp_gt(lhs, rhs);
        case BinaryOp::kGe: return cmp_ge(lhs, rhs);
        case BinaryOp::kAdd: return arith_add(lhs, rhs);
        case BinaryOp::kSub: return arith_sub(lhs, rhs);
        case BinaryOp::kMul: return arith_mul(lhs, rhs);
        case BinaryOp::kDiv: return arith_div(lhs, rhs);
        case BinaryOp::kMod: return arith_mod(lhs, rhs);
        case BinaryOp::kAnd:
        case BinaryOp::kOr: break;  // handled above
      }
      return Value::undefined();
    }
    case Node::Kind::kTernary: {
      const Value cond = eval(n.children[0], ctx);
      if (!cond.is_bool()) return Value::undefined();
      return eval(n.children[cond.as_bool() ? 1u : 2u], ctx);
    }
    case Node::Kind::kList: {
      ValueList items;
      items.reserve(n.children.size());
      for (const Node& c : n.children) items.push_back(eval(c, ctx));
      return Value::list(std::move(items));
    }
    case Node::Kind::kCall: {
      std::vector<Value> args;
      args.reserve(n.children.size());
      for (const Node& c : n.children) args.push_back(eval(c, ctx));
      return call_function(n.function, args);
    }
  }
  return Value::undefined();
}

}  // namespace cg::jdl
