// Synthetic grid workload generator: Poisson arrivals of batch and
// interactive jobs with configurable mixes and runtimes. Drives load-sweep
// experiments (how does interactive startup behave as background occupancy
// grows — the situation the paper's multiprogramming mechanism exists for).
#pragma once

#include <functional>
#include <string>

#include "broker/crossbroker.hpp"
#include "util/stats.hpp"
#include "util/rng.hpp"

namespace cg::broker {

struct WorkloadGeneratorConfig {
  /// Mean inter-arrival time of batch jobs (Poisson process); zero disables.
  Duration batch_interarrival = Duration::seconds(120);
  /// Mean batch runtime (exponential).
  Duration batch_runtime = Duration::seconds(1800);
  /// Mean inter-arrival of interactive jobs; zero disables.
  Duration interactive_interarrival = Duration::seconds(300);
  /// Mean interactive runtime (exponential).
  Duration interactive_runtime = Duration::seconds(300);
  /// MachineAccess for generated interactive jobs.
  jdl::MachineAccess interactive_access = jdl::MachineAccess::kShared;
  int performance_loss = 10;
  /// Number of simulated users round-robined across submissions.
  int users = 4;
  /// Stop generating after this instant.
  SimTime horizon = SimTime::from_seconds(4 * 3600);
  std::uint64_t seed = 7;
};

/// Statistics the generator accumulates via its own callbacks.
struct WorkloadStats {
  int batch_submitted = 0;
  int batch_completed = 0;
  int interactive_submitted = 0;
  int interactive_completed = 0;
  int interactive_failed = 0;
  RunningStats interactive_startup_s;  ///< submit -> running
};

/// Drives a CrossBroker with the configured arrival processes. Create it,
/// call start(), run the simulation; read stats() afterwards.
class WorkloadGenerator {
public:
  WorkloadGenerator(sim::Simulation& sim, CrossBroker& broker,
                    WorkloadGeneratorConfig config = {});

  void start();

  [[nodiscard]] const WorkloadStats& stats() const { return stats_; }

private:
  void schedule_next_batch();
  void schedule_next_interactive();
  void submit_batch();
  void submit_interactive();
  [[nodiscard]] UserId next_user();

  sim::Simulation& sim_;
  CrossBroker& broker_;
  WorkloadGeneratorConfig config_;
  Rng rng_;
  WorkloadStats stats_;
  int user_cursor_ = 0;
};

}  // namespace cg::broker
