// CPU-sharing model for the lightweight virtual machines. A glide-in agent
// splits one worker node into a batch-vm and an interactive-vm; when both are
// occupied, the interactive job runs at higher priority and concedes
// `PerformanceLoss` percent of the CPU to the batch job (Section 5.2).
//
// Calibration against Figure 8: the batch job does not consume its entire
// concession (it blocks on its own I/O), so the interactive job's measured
// CPU overhead lands slightly below the nominal PerformanceLoss — the paper
// reports +8% at PL=10 and +22% at PL=25. With the default duty cycle of
// 0.85 this model yields +8.5% and +21.3%. I/O is network-bound and suffers
// only scheduling-latency interference, modelled as k·s·(1−s) (≈5% and ≈9.5%
// at PL=10/25; paper: 5% and 10%).
#pragma once

namespace cg::glidein {

struct VmModelConfig {
  /// Fraction of its CPU concession the batch job actually consumes.
  double batch_duty_cycle = 0.85;
  /// Multiplicative overhead of the agent itself ("negligible": Fig. 8 shows
  /// exclusive and shared-alone as indistinguishable).
  double agent_overhead = 0.001;
  /// Coefficient of the I/O interference term k·s·(1−s).
  double io_penalty_coefficient = 0.55;
  /// Per-phase execution noise, off by default. With both VMs busy the
  /// paper's scatter grows with the shared load: sd(cpu) ≈ base + k·s
  /// (0.001 s reference, 0.004 s at PL=10, 0.010 s at PL=25).
  double cpu_noise_base = 0.0;
  double cpu_noise_per_share = 0.0;
  double io_noise_fraction = 0.0;
};

/// Dilation factors (>= 1.0) for each resident job and phase kind.
struct VmDilations {
  double interactive_cpu = 1.0;
  double interactive_io = 1.0;
  double batch_cpu = 1.0;
  double batch_io = 1.0;
};

/// Computes dilation factors for the current slot occupancy.
/// `performance_loss` is the interactive job's attribute (0..50, % CPU ceded).
[[nodiscard]] VmDilations compute_dilations(const VmModelConfig& config,
                                            int performance_loss,
                                            bool interactive_present,
                                            bool batch_present);

}  // namespace cg::glidein
