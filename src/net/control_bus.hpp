// The control-plane message bus: the single delivery path for every typed
// broker <-> agent <-> site exchange. Exactly one implementation applies
//   * link latency (fixed control-channel delay + optional bulk transfer
//     riding the link's bandwidth/jitter model + receiver processing time),
//   * partition windows (a send may be dropped when its link is down, the
//     way the broker's raw is_up() checks used to behave),
//   * per-directed-link sequencing (monotonic seq per (src, dst) pair), and
//   * message-level fault injection (kMsgDrop / kMsgDup / kMsgReorder from
//     the FaultPlan DSL, filtered by message type and endpoint pair),
// with per-message-type metrics (net.msg.sent / delivered / dropped /
// duplicated counters, net.msg.latency_s histogram) and JobTracer hooks.
//
// Determinism contract: the bus schedules exactly one simulation event per
// (non-inline) delivery and consumes link RNG only for sends that carry
// payload bytes — a refactor from direct schedule() calls onto the bus is
// event-for-event identical, which is what keeps the pinned chaos-scenario
// golden digests unchanged.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "obs/metrics.hpp"
#include "sim/fault.hpp"
#include "util/time.hpp"

namespace cg::obs {
struct Observability;
}
namespace cg::sim {
class Network;
class Simulation;
}  // namespace cg::sim

namespace cg::net {

/// One message in flight: the typed payload plus its addressing and timing.
struct Envelope {
  std::uint64_t seq = 0;  ///< per directed (src, dst) pair, starting at 1
  std::string src_endpoint;
  std::string dst_endpoint;
  SimTime send_time;
  Message payload;
};

/// Per-send latency model and failure semantics. The defaults model an
/// instantaneous, never-dropped exchange; callers opt into each cost.
struct SendOptions {
  /// Fixed control-channel delay (e.g. the broker <-> agent channel).
  Duration channel_latency = Duration::zero();
  /// Receiver-side processing time added after the wire (GSI auth,
  /// jobmanager overhead, prepare bookkeeping).
  Duration processing_latency = Duration::zero();
  /// Bulk bytes riding the link's bandwidth + jitter model (sandbox and
  /// executable staging). Zero bytes never touches the link RNG.
  std::size_t payload_bytes = 0;
  /// Endpoint whose link to `dst` carries the transfer when it is not the
  /// message source (executable staged from the submitter, not the broker).
  std::string transfer_src;
  /// Consult the link's partition schedule at send time and drop the
  /// message if the link is down (today's is_up() semantics). Sends that
  /// historically ignored partitions leave this false.
  bool drop_when_down = false;
  /// Deliver synchronously (no scheduled event) when the modelled latency
  /// is zero — the bus equivalent of a direct method call. Paths that
  /// historically scheduled a zero-delay event leave this false.
  bool inline_when_immediate = false;
};

/// The bus. One instance per simulated grid; every control-plane component
/// holds a reference and sends through it. Implements MessageFaultSink so a
/// FaultInjector can arm message-level faults onto it.
class ControlBus final : public sim::MessageFaultSink {
public:
  using DeliverFn = std::function<void(const Envelope&)>;

  ControlBus(sim::Simulation& sim, sim::Network& network);
  ControlBus(const ControlBus&) = delete;
  ControlBus& operator=(const ControlBus&) = delete;
  ~ControlBus() override;

  /// Installs (or replaces) the delivery handler for messages addressed to
  /// `endpoint` that were sent without a continuation. The broker binds its
  /// endpoint for agent-originated traffic (AgentRegister, LivenessEcho).
  void bind(std::string endpoint, DeliverFn handler);
  void unbind(const std::string& endpoint);

  /// Sends a message. Returns false when the message was dropped at send
  /// time (partition with drop_when_down, or an active kMsgDrop fault);
  /// a dropped message's continuation never runs. `on_delivered`, when
  /// given, receives the envelope instead of the destination's bound
  /// handler — the caller-holds-the-continuation style the broker uses.
  bool send(const std::string& src, const std::string& dst, Message msg,
            const SendOptions& options = {}, DeliverFn on_delivered = {});

  /// Synchronous reachability probe: would a message of this type survive
  /// the partition schedule and active drop faults right now? Counts into
  /// the same per-type sent/delivered/dropped metrics but delivers nothing.
  /// This is the bus form of the heartbeat's raw is_up() check.
  [[nodiscard]] bool probe(const std::string& src, const std::string& dst,
                           const Message& msg);

  /// Attaches (or detaches, with nullptr) metrics + tracing. Safe to call
  /// mid-run; handles re-bind.
  void set_observability(obs::Observability* obs);

  // MessageFaultSink: armed/healed by the FaultInjector.
  void apply_message_fault(const sim::FaultSpec& spec) override;
  void clear_message_fault(const sim::FaultSpec& spec) override;

  [[nodiscard]] std::size_t in_flight() const { return pending_.size(); }
  [[nodiscard]] std::size_t active_message_faults() const {
    return faults_.size();
  }
  /// Last sequence number issued on a directed pair (0 if none yet).
  [[nodiscard]] std::uint64_t last_seq(const std::string& src,
                                       const std::string& dst) const;

private:
  struct Pending {
    Envelope envelope;
    DeliverFn on_delivered;  ///< empty: deliver to the bound handler
  };
  struct ActiveFault {
    sim::FaultKind kind = sim::FaultKind::kMsgDrop;
    std::optional<MsgType> type;  ///< nullopt: every type
    std::string endpoint_a;       ///< empty: any endpoint
    std::string endpoint_b;
    Duration extra_latency;  ///< kMsgReorder delay
  };

  [[nodiscard]] bool fault_matches(const ActiveFault& fault, MsgType type,
                                   const std::string& src,
                                   const std::string& dst) const;
  [[nodiscard]] bool drop_fault_active(MsgType type, const std::string& src,
                                       const std::string& dst) const;
  [[nodiscard]] Duration reorder_delay(MsgType type, const std::string& src,
                                       const std::string& dst) const;
  [[nodiscard]] bool dup_fault_active(MsgType type, const std::string& src,
                                      const std::string& dst) const;

  void count_drop(const Envelope& envelope, const char* reason);
  void deliver(std::uint64_t id);
  void deliver_envelope(const Envelope& envelope, const DeliverFn& handler);
  void schedule_delivery(Envelope envelope, DeliverFn on_delivered,
                         Duration delay);

  sim::Simulation& sim_;
  sim::Network& network_;
  obs::Observability* obs_ = nullptr;

  std::map<std::pair<std::string, std::string>, std::uint64_t> seq_;
  std::map<std::string, DeliverFn> handlers_;
  /// In-flight deliveries, keyed by id: scheduled events capture only
  /// [this, id] so they fit the simulation's inline-callback budget.
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_delivery_ = 0;
  std::vector<ActiveFault> faults_;

  std::array<obs::CounterHandle, kMessageTypeCount> sent_{};
  std::array<obs::CounterHandle, kMessageTypeCount> delivered_{};
  std::array<obs::CounterHandle, kMessageTypeCount> dropped_{};
  std::array<obs::CounterHandle, kMessageTypeCount> duplicated_{};
  std::array<obs::HistogramHandle, kMessageTypeCount> latency_{};
};

}  // namespace cg::net
