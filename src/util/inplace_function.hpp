// InplaceFunction: a move-only callable wrapper with a fixed small-buffer
// capacity. Callables whose state fits the buffer (and is nothrow-movable)
// are stored inline — constructing, moving, and destroying them never touches
// the heap. Larger or throwing-move callables fall back to a single heap
// allocation, so the type stays a drop-in replacement for std::function in
// APIs that accept arbitrary callables.
//
// Built for the simulation event engine: `Simulation::schedule` stores every
// event callback in a slab slot, and the retry/flush/lease hot paths must be
// able to schedule without allocating. 48 bytes of capacity covers the
// engine's real captures (a `this` pointer plus a handful of ids/durations —
// see docs/performance.md for the survey) while keeping a slab slot within
// two cache lines.
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace cg::util {

namespace detail {
template <typename T>
struct is_std_function : std::false_type {};
template <typename R, typename... Args>
struct is_std_function<std::function<R(Args...)>> : std::true_type {};
}  // namespace detail

template <typename Signature, std::size_t Capacity = 48>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InplaceFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    // Null function pointers and empty std::functions produce an empty
    // wrapper (mirroring std::function), so callers' null checks keep
    // working across the migration.
    if constexpr (std::is_pointer_v<D> || std::is_member_pointer_v<D> ||
                  detail::is_std_function<D>::value) {
      if (!fn) return;
    }
    emplace<D>(std::forward<F>(fn));
  }

  InplaceFunction(InplaceFunction&& other) noexcept { move_from(other); }
  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InplaceFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    if (invoke_ == nullptr) throw std::bad_function_call{};
    return invoke_(storage(), std::forward<Args>(args)...);
  }

  void reset() {
    if (manage_ != nullptr) manage_(storage(), nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  /// Replaces the held callable, constructing the new one directly in the
  /// buffer. Lets callers that store InplaceFunctions in slabs (the event
  /// engine) skip the construct-a-temporary-then-move step.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InplaceFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  void assign(F&& fn) {
    reset();
    if constexpr (std::is_pointer_v<D> || std::is_member_pointer_v<D> ||
                  detail::is_std_function<D>::value) {
      if (!fn) return;
    }
    emplace<D>(std::forward<F>(fn));
  }

  /// True when the held callable lives in the inline buffer (diagnostics).
  [[nodiscard]] bool is_inline() const { return invoke_ != nullptr && inline_; }

private:
  using Invoke = R (*)(void*, Args&&...);
  /// target == nullptr: destroy self. Otherwise: move self into target's
  /// (raw) storage; self is left destroyed.
  using Manage = void (*)(void* self, void* target);

  template <typename D>
  static constexpr bool fits_inline =
      sizeof(D) <= Capacity && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D, typename F>
  void emplace(F&& fn) {
    if constexpr (fits_inline<D>) {
      ::new (storage()) D(std::forward<F>(fn));
      invoke_ = [](void* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(s)))(
            std::forward<Args>(args)...);
      };
      if constexpr (std::is_trivially_copyable_v<D> &&
                    std::is_trivially_destructible_v<D>) {
        // Trivially relocatable (the common case: `this` + a few ids): no
        // manager at all — moves are a buffer memcpy, destruction is free.
        manage_ = nullptr;
      } else {
        manage_ = [](void* self, void* target) {
          D* held = std::launder(reinterpret_cast<D*>(self));
          if (target != nullptr) ::new (target) D(std::move(*held));
          held->~D();
        };
      }
      inline_ = true;
    } else {
      ::new (storage()) D*(new D(std::forward<F>(fn)));
      invoke_ = [](void* s, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<D**>(s)))(
            std::forward<Args>(args)...);
      };
      manage_ = [](void* self, void* target) {
        D** held = std::launder(reinterpret_cast<D**>(self));
        if (target != nullptr) {
          ::new (target) D*(*held);
        } else {
          delete *held;
        }
      };
      inline_ = false;
    }
  }

  void move_from(InplaceFunction& other) noexcept {
    if (other.invoke_ == nullptr) return;
    if (other.manage_ == nullptr) {
      std::memcpy(buffer_, other.buffer_, Capacity);
    } else {
      other.manage_(other.storage(), storage());
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    inline_ = other.inline_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void* storage() { return static_cast<void*>(buffer_); }

  alignas(std::max_align_t) unsigned char buffer_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
  bool inline_ = false;
};

}  // namespace cg::util
