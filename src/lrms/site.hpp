// A grid site: static description + local scheduler + gatekeeper, wired to
// the network under a stable endpoint name. Produces the fresh SiteRecord
// snapshots the information system serves.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "infosys/site_record.hpp"
#include "lrms/gatekeeper.hpp"
#include "lrms/local_scheduler.hpp"

namespace cg::net {
class ControlBus;
}

namespace cg::lrms {

struct SiteConfig {
  std::string name;
  std::string arch = "i686";
  std::string op_sys = "linux-2.4";
  int worker_nodes = 4;
  std::int64_t memory_mb_per_node = 1024;
  std::int64_t storage_gb = 600;
  double cpu_speed = 1.0;
  LocalSchedulerConfig lrms;
  GatekeeperConfig gatekeeper;
  /// Round-trip for a direct information query against this site.
  Duration info_query_latency = Duration::millis(150);
};

class Site {
public:
  Site(sim::Simulation& sim, net::ControlBus& bus, SiteId id, SiteConfig config);

  [[nodiscard]] SiteId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }
  /// Network endpoint of the gatekeeper ("site:<name>").
  [[nodiscard]] const std::string& endpoint() const { return endpoint_; }
  [[nodiscard]] const SiteConfig& config() const { return config_; }

  [[nodiscard]] LocalScheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] const LocalScheduler& scheduler() const { return *scheduler_; }
  [[nodiscard]] Gatekeeper& gatekeeper() { return *gatekeeper_; }

  [[nodiscard]] infosys::SiteStaticInfo static_info() const;
  /// Live snapshot: the information system's FreshProvider.
  [[nodiscard]] infosys::SiteRecord snapshot() const;

  /// Hook installed by the glide-in registry: how many free interactive VMs
  /// this site currently exports.
  void set_interactive_vm_counter(std::function<int()> counter);

private:
  sim::Simulation& sim_;
  SiteId id_;
  SiteConfig config_;
  std::string endpoint_;
  std::unique_ptr<LocalScheduler> scheduler_;
  std::unique_ptr<Gatekeeper> gatekeeper_;
  std::function<int()> interactive_vm_counter_;
};

}  // namespace cg::lrms
