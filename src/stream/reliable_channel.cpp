#include "stream/reliable_channel.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace cg::stream {

ReliableChannel::ReliableChannel(sim::Simulation& sim, SimChannel& channel,
                                 sim::DiskModel& sender_disk,
                                 sim::DiskModel* receiver_disk, RetryPolicy policy)
    : sim_{sim},
      channel_{channel},
      spool_{sender_disk},
      receiver_disk_{receiver_disk},
      policy_{policy} {
  if (policy_.max_retries < 0) throw std::invalid_argument{"max_retries < 0"};
  if (policy_.retry_interval <= Duration::zero()) {
    throw std::invalid_argument{"retry_interval must be positive"};
  }
  spool_.set_capacity(policy_.spool_capacity_bytes);
}

ReliableChannel::~ReliableChannel() {
  // Invalidate in-flight SimChannel callbacks (they check the epoch) and
  // remove receiver-write completions outright.
  ++epoch_;
  for (std::size_t i = 0; i < deliveries_.size(); ++i) {
    sim_.cancel(deliveries_[i].event);
  }
}

void ReliableChannel::reserve(std::size_t entries) {
  queue_.reserve(entries);
  delivered_.reserve(entries);
  deliveries_.reserve(entries);
  spool_.reserve(entries);
}

void ReliableChannel::set_metrics(obs::MetricsRegistry* metrics,
                                  obs::LabelSet labels) {
  metrics_ = MetricHandles{};
  if (metrics == nullptr) return;
  metrics_.bytes_spooled = metrics->counter_handle("stream.bytes_spooled", labels);
  metrics_.spool_rejects = metrics->counter_handle("stream.spool_rejects", labels);
  metrics_.reconnects = metrics->counter_handle("stream.reconnects", labels);
  metrics_.retries = metrics->counter_handle("stream.retries", labels);
  metrics_.coalesced_batches =
      metrics->counter_handle("stream.coalesced_batches", labels);
  metrics_.coalesced_messages =
      metrics->counter_handle("stream.coalesced_messages", std::move(labels));
}

void ReliableChannel::send(std::size_t bytes, DeliverFn on_deliver) {
  if (gave_up_) return;  // the process is being killed; drop silently
  Entry& entry = queue_.push_back(Entry{});
  entry.bytes = bytes;
  entry.on_deliver = std::move(on_deliver);
  entry.batch_bytes = bytes;
  pump_appends();
}

void ReliableChannel::pump_appends() {
  if (coalescing()) {
    pump_appends_coalesced();
    return;
  }
  Duration head_cost = Duration::zero();
  bool head_just_spooled = false;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    Entry& entry = queue_[i];
    if (entry.spooled) continue;
    const std::optional<Duration> cost = spool_.try_push(entry.bytes);
    if (!cost) {
      on_append_rejected(entry);
      break;  // FIFO file: later entries cannot be appended first
    }
    spool_failures_ = 0;
    entry.spooled = true;
    metrics_.bytes_spooled.inc(entry.bytes);
    if (i == 0) {
      head_cost = *cost;
      head_just_spooled = true;
    }
  }
  if (!transmitting_ && !queue_.empty() && queue_.front().spooled) {
    transmitting_ = true;
    transmit_head(head_just_spooled ? head_cost : Duration::zero());
  }
}

void ReliableChannel::pump_appends_coalesced() {
  // Messages that arrive behind an in-flight transmit stay unspooled; they
  // are batched when the channel frees up (on_head_delivered re-pumps).
  if (transmitting_ || queue_.empty()) return;
  Duration head_cost = Duration::zero();
  if (!queue_.front().spooled) {
    // Greedy head-most run of unspooled entries under the byte cap; the head
    // itself always fits (a batch is never empty).
    std::size_t total = queue_.front().bytes;
    std::size_t count = 1;
    while (count < queue_.size() && !queue_[count].spooled &&
           total + queue_[count].bytes <= policy_.max_coalesce_bytes) {
      total += queue_[count].bytes;
      ++count;
    }
    const std::optional<Duration> cost = spool_.try_push(total, count);
    if (!cost) {
      on_append_rejected(queue_.front());
      return;
    }
    spool_failures_ = 0;
    for (std::size_t i = 0; i < count; ++i) queue_[i].spooled = true;
    queue_.front().batch_bytes = total;
    queue_.front().batch_count = static_cast<std::uint32_t>(count);
    metrics_.bytes_spooled.inc(total);
    if (count > 1) {
      ++coalesced_batches_;
      coalesced_messages_ += count;
      metrics_.coalesced_batches.inc();
      metrics_.coalesced_messages.inc(count);
    }
    head_cost = *cost;
  }
  transmitting_ = true;
  transmit_head(head_cost);
}

void ReliableChannel::on_append_rejected(Entry& entry) {
  ++spool_failures_;
  metrics_.spool_rejects.inc();
  if (!entry.reject_reported) {
    entry.reject_reported = true;
    if (on_spool_reject_) on_spool_reject_(entry.bytes);
  }
  if (spool_failures_ > policy_.max_retries) {
    gave_up_ = true;
    transmitting_ = false;
    log_warn("stream", "spool rejected ", policy_.max_retries,
             " consecutive appends; giving up");
    if (on_give_up_) on_give_up_();
    return;
  }
  // Delivered acknowledgements free spool space in the meantime; poll the
  // append again on the same schedule as a failing link.
  spool_retry_timer_.rearm(sim_, sim_.schedule(policy_.retry_interval, [this] {
    if (gave_up_) return;
    pump_appends();
  }));
}

void ReliableChannel::transmit_head(Duration extra_delay) {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  const std::uint64_t epoch = epoch_;
  transmit_timer_.rearm(sim_, sim_.schedule(extra_delay, [this, epoch] {
    if (epoch != epoch_ || gave_up_ || queue_.empty()) return;
    const Entry& head = queue_.front();
    channel_.send(
        head.batch_bytes,
        [this, epoch](std::size_t) {
          if (epoch == epoch_) on_head_delivered();
        },
        [this, epoch](std::size_t) {
          if (epoch == epoch_) on_head_failed();
        });
  }));
}

void ReliableChannel::on_head_delivered() {
  if (queue_.empty()) return;
  if (failures_ > 0) {
    // First successful delivery after a failure streak: the link healed.
    metrics_.reconnects.inc();
  }
  failures_ = 0;
  const std::size_t batch_bytes = queue_.front().batch_bytes;
  const std::uint32_t batch_count = queue_.front().batch_count;
  spool_.pop_acknowledged();
  if (batch_count == 1 && !queue_.front().on_deliver) {
    // No one is waiting on this message; skip the receiver-side write.
    queue_.pop_front();
  } else if (receiver_disk_ != nullptr) {
    // Receive-side intermediate file: the application sees the data only
    // after it has hit the other end's disk. One write covers the whole
    // batch; the completion fires every callback it carried, in order.
    receiver_disk_->note_write(batch_bytes, batch_count);
    const Duration cost = receiver_disk_->write_duration(batch_bytes);
    for (std::uint32_t i = 0; i < batch_count; ++i) {
      DeliveredEntry& d = delivered_.push_back(DeliveredEntry{});
      d.bytes = queue_.front().bytes;
      d.on_deliver = std::move(queue_.front().on_deliver);
      queue_.pop_front();
    }
    PendingDelivery& pending = deliveries_.push_back(PendingDelivery{});
    const std::uint64_t seq = next_delivery_seq_++;
    pending.seq = seq;
    pending.entry_count = batch_count;
    const std::uint64_t epoch = epoch_;
    pending.event = sim_.schedule(cost, [this, epoch, seq] {
      if (epoch == epoch_) fire_delivery(seq);
    });
  } else {
    for (std::uint32_t i = 0; i < batch_count; ++i) {
      Entry entry = std::move(queue_.front());
      queue_.pop_front();
      if (entry.on_deliver) entry.on_deliver(entry.bytes);
    }
  }
  if (coalescing()) {
    transmitting_ = false;
    pump_appends();  // batch whatever queued up behind this transmit
  } else if (queue_.empty() || !queue_.front().spooled) {
    // Nothing ready: an unspooled head (rejected append) transmits only
    // after its retry succeeds, via pump_appends.
    transmitting_ = false;
  } else {
    // Subsequent messages were already spooled at send time; no extra cost.
    transmit_head(Duration::zero());
  }
}

void ReliableChannel::fire_delivery(std::uint64_t seq) {
  // Receiver writes can complete out of order (a small batch's write beats a
  // large predecessor's), but the receive-side intermediate file is consumed
  // front to back: a batch becomes visible to the application only once its
  // own write AND every earlier batch's write have completed. Mark this
  // batch's write done, then release callbacks from the front, in order.
  for (std::size_t i = 0; i < deliveries_.size(); ++i) {
    if (deliveries_[i].seq == seq) {
      deliveries_[i].fired = true;
      break;
    }
  }
  while (!deliveries_.empty() && deliveries_.front().fired) {
    std::size_t remaining = deliveries_.front().entry_count;
    deliveries_.pop_front();
    for (; remaining > 0; --remaining) {
      DeliveredEntry entry = std::move(delivered_.front());
      delivered_.pop_front();
      if (entry.on_deliver) entry.on_deliver(entry.bytes);
    }
  }
}

void ReliableChannel::on_head_failed() {
  if (queue_.empty()) return;
  ++failures_;
  if (failures_ > policy_.max_retries) {
    gave_up_ = true;
    transmitting_ = false;
    log_warn("stream", "reliable channel exhausted ", policy_.max_retries,
             " retries; giving up");
    if (on_give_up_) on_give_up_();
    return;
  }
  ++retries_;
  metrics_.retries.inc();
  queue_.front().recovered_from_disk = true;
  retry_timer_.rearm(sim_, sim_.schedule(policy_.retry_interval, [this] {
    if (gave_up_ || queue_.empty()) return;
    // The in-memory copy is gone after a failure; re-read from the spool.
    const Duration read_cost = spool_.charge_recovery_read();
    transmit_head(read_cost);
  }));
}

}  // namespace cg::stream
