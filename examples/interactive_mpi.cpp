// Interactive MPICH-G2 job across sites: the paper's flagship scenario. A
// 6-process interactive MPI application is co-allocated over several sites;
// each subjob gets its own Console Agent; the Job Shadow merges their output
// and fans the user's steering input out to every rank (rank 0 consumes it,
// per the paper's convention).
//
//   $ ./interactive_mpi
#include <iostream>

#include "grid/grid.hpp"
#include "stream/grid_console.hpp"
#include "util/stats.hpp"

using namespace cg;
using namespace cg::literals;

int main() {
  GridConfig config;
  config.sites = 3;
  config.nodes_per_site = 3;
  Grid grid{config};

  auto description = jdl::JobDescription::parse(R"(
      Executable    = "airpollution_sim";
      JobType       = {"interactive", "mpich-g2"};
      NodeNumber    = 6;
      StreamingMode = "reliable";
      Arguments     = "--grid-domain iberia";
  )");
  if (!description) {
    std::cerr << "JDL error: " << description.error().to_string() << "\n";
    return 1;
  }
  std::cout << "submitting a " << description->node_number()
            << "-process interactive MPICH-G2 job (needs "
            << description->console_agent_count() << " console agents)\n";

  std::unique_ptr<stream::GridConsole> console;
  broker::JobCallbacks callbacks;
  callbacks.on_running = [&](const broker::JobRecord& record) {
    std::cout << "co-allocation (startup barrier passed at t="
              << fmt_fixed(grid.now().to_seconds(), 1) << "s):\n";
    for (const auto& sub : record.subjobs) {
      std::cout << "  rank " << sub.rank << " -> site "
                << sub.site.value() << "\n";
    }

    stream::GridConsoleConfig console_config;
    console_config.mode = jdl::StreamingMode::kReliable;
    console_config.obs = grid.obs_ptr();
    console_config.job = record.id;
    console = std::make_unique<stream::GridConsole>(
        grid.sim(), grid.network(), console_config, Grid::ui_endpoint(),
        [](std::string data) { std::cout << "  [screen] " << data; },
        Rng{99});

    // One Console Agent per MPICH-G2 subjob (Section 4 / Figure 4).
    for (const auto& sub : record.subjobs) {
      for (std::size_t i = 0; i < grid.site_count(); ++i) {
        if (grid.site(i).id() != sub.site) continue;
        auto& agent = console->add_agent(sub.rank, grid.site(i).endpoint());
        const int rank = sub.rank;
        agent.write_stdout("rank " + std::to_string(rank) + ": initialized\n");
        // Only rank 0 reads stdin — the user's responsibility per the paper.
        agent.set_input_handler([&agent, rank](std::string line) {
          if (rank == 0) {
            agent.write_stdout("rank 0: steering accepted -> " + line);
          }
        });
      }
    }
  };

  auto job = grid.submit(std::move(description.value()), UserId{7},
                         lrms::Workload::cpu(300_s), callbacks);
  if (!job) {
    std::cerr << "submission refused: " << to_string(job.error().kind) << "\n";
    return 1;
  }

  grid.sim().schedule(120_s, [&] {
    if (console) {
      std::cout << "  [user types] emission-rate 0.4\n";
      console->shadow().type_line("emission-rate 0.4");
    }
  });

  const auto done = job->await();
  grid.run();  // drain the remaining console traffic
  std::cout << (done ? "MPI job completed" : "MPI job DID NOT complete")
            << " at t=" << fmt_fixed(grid.now().to_seconds(), 1) << "s\n";
  if (done) {
    std::cout << "bytes spooled through reliable console channels: "
              << grid.metrics_snapshot().total("stream.bytes_spooled") << "\n";
  }
  return done ? 0 : 1;
}
