#include "util/log.hpp"

#include <iostream>

namespace cg {

std::string_view to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  const std::lock_guard lock{mutex_};
  level_ = level;
}

LogLevel Logger::level() const {
  const std::lock_guard lock{mutex_};
  return level_;
}

void Logger::set_sink(Sink sink) {
  const std::lock_guard lock{mutex_};
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message) {
  Sink sink;
  {
    const std::lock_guard lock{mutex_};
    if (level < level_) return;
    sink = sink_;
  }
  if (sink) {
    sink(level, component, message);
  } else {
    std::cerr << "[" << to_string(level) << "] " << component << ": " << message
              << '\n';
  }
}

}  // namespace cg
