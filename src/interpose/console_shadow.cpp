#include "interpose/console_shadow.hpp"

#include <algorithm>
#include <charconv>

#include "util/log.hpp"

namespace cg::interpose {

namespace {
constexpr const char* kLog = "interpose.shadow";
}

Expected<std::unique_ptr<ConsoleShadow>> ConsoleShadow::listen(
    ConsoleShadowConfig config) {
  ignore_sigpipe();
  std::unique_ptr<ConsoleShadow> shadow{new ConsoleShadow};

  if (!config.uds_path.empty()) {
    auto listener = UdsListener::bind(config.uds_path);
    if (!listener) return listener.error();
    shadow->uds_listener_.emplace(std::move(listener.value()));
  } else if (config.port == 0 && config.port_range_begin != 0 &&
             config.port_range_end >= config.port_range_begin) {
    // Probe the firewall-approved range for an available port.
    Expected<TcpListener> listener = make_error("socket.bind", "no port tried");
    for (std::uint32_t p = config.port_range_begin;
         p <= config.port_range_end; ++p) {
      listener = TcpListener::bind_loopback(static_cast<std::uint16_t>(p));
      if (listener.has_value()) break;
    }
    if (!listener.has_value()) {
      return make_error("socket.bind",
                        "no free port in [" +
                            std::to_string(config.port_range_begin) + ", " +
                            std::to_string(config.port_range_end) + "]");
    }
    shadow->tcp_listener_.emplace(std::move(listener.value()));
  } else {
    auto listener = TcpListener::bind_loopback(config.port);
    if (!listener) return listener.error();
    shadow->tcp_listener_.emplace(std::move(listener.value()));
  }
  shadow->accept_thread_ = std::thread{[raw = shadow.get()] { raw->accept_loop(); }};
  return shadow;
}

ConsoleShadow::~ConsoleShadow() {
  shutdown();
}

void ConsoleShadow::shutdown() {
  if (stopping_.exchange(true)) {
    // Already shut down; still join anything left (idempotent).
  }
  if (tcp_listener_) tcp_listener_->close();
  if (uds_listener_) uds_listener_->close();
  {
    const std::lock_guard lock{mutex_};
    agents_.clear();  // closes the shared fds once readers drop their refs
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> readers;
  {
    const std::lock_guard lock{conn_threads_mutex_};
    readers.swap(conn_threads_);
  }
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
}

void ConsoleShadow::set_output_handler(OutputHandler handler) {
  const std::lock_guard lock{mutex_};
  output_handler_ = std::move(handler);
}

void ConsoleShadow::set_exit_handler(ExitHandler handler) {
  const std::lock_guard lock{mutex_};
  exit_handler_ = std::move(handler);
}

void ConsoleShadow::set_hello_handler(HelloHandler handler) {
  const std::lock_guard lock{mutex_};
  hello_handler_ = std::move(handler);
}

Expected<Fd> ConsoleShadow::accept_once(int timeout_ms) {
  if (uds_listener_) return uds_listener_->accept(timeout_ms);
  if (tcp_listener_) return tcp_listener_->accept(timeout_ms);
  return make_error("socket.accept", "no listener");
}

void ConsoleShadow::accept_loop() {
  while (!stopping_.load()) {
    auto client = accept_once(200);
    if (!client) {
      if (stopping_.load()) break;
      continue;  // timeout or transient error; keep listening
    }
    auto conn = std::make_shared<Fd>(std::move(client.value()));
    const std::lock_guard lock{conn_threads_mutex_};
    conn_threads_.emplace_back([this, conn] { connection_loop(conn); });
  }
}

void ConsoleShadow::connection_loop(std::shared_ptr<Fd> conn) {
  FrameDecoder decoder;
  char chunk[8192];
  bool registered = false;
  std::uint32_t rank = 0;

  while (!stopping_.load()) {
    const int fd = conn->get();
    if (fd < 0) break;
    const int ready = wait_readable(fd, 200);
    if (ready < 0) break;
    if (ready == 0) continue;
    const long n = read_some(fd, chunk, sizeof(chunk));
    if (n <= 0) break;
    // Zero-copy decode session: frames wholly inside this read are handled
    // as views into `chunk`; only boundary-straddling frames are stashed.
    decoder.begin(chunk, static_cast<std::size_t>(n));
    try {
      while (auto frame = decoder.next_view()) {
        frames_.fetch_add(1);
        switch (frame->type) {
          case FrameType::kHello: {
            rank = frame->rank;
            registered = true;
            HelloHandler handler;
            {
              const std::lock_guard lock{mutex_};
              agents_.emplace_back(rank, conn);
              handler = hello_handler_;
            }
            if (handler) handler(rank);
            break;
          }
          case FrameType::kStdout:
          case FrameType::kStderr: {
            OutputHandler handler;
            {
              const std::lock_guard lock{mutex_};
              handler = output_handler_;
            }
            if (handler) handler(frame->rank, frame->type, frame->payload);
            break;
          }
          case FrameType::kExit: {
            ExitHandler handler;
            {
              const std::lock_guard lock{mutex_};
              handler = exit_handler_;
            }
            if (handler) {
              const std::string_view payload = frame->payload;
              int status = 0;
              const auto [_, ec] = std::from_chars(
                  payload.data(), payload.data() + payload.size(), status);
              if (ec != std::errc{}) status = -1;
              handler(frame->rank, status);
            }
            break;
          }
          case FrameType::kEof:
          case FrameType::kStdin:
            break;  // informational / not expected from agents
        }
      }
      decoder.end();
    } catch (const std::exception& e) {
      log_warn(kLog, "protocol error from agent: ", e.what());
      break;
    }
  }

  if (registered) {
    const std::lock_guard lock{mutex_};
    agents_.erase(std::remove_if(agents_.begin(), agents_.end(),
                                 [&](const auto& entry) {
                                   return entry.second == conn;
                                 }),
                  agents_.end());
  }
}

std::size_t ConsoleShadow::broadcast(FrameType type, std::string_view payload) {
  // Encode once, write to every agent.
  std::string encoded;
  encode_frame_into(encoded, type, /*rank=*/0, payload);
  std::vector<std::shared_ptr<Fd>> targets;
  {
    const std::lock_guard lock{mutex_};
    targets.reserve(agents_.size());
    for (const auto& [rank, conn] : agents_) targets.push_back(conn);
  }
  std::size_t delivered = 0;
  for (const auto& conn : targets) {
    const int fd = conn->get();
    if (fd >= 0 && write_all(fd, encoded)) ++delivered;
  }
  return delivered;
}

std::size_t ConsoleShadow::send_line(std::string line) {
  if (line.empty() || line.back() != '\n') line += '\n';
  return send_stdin(line);
}

std::size_t ConsoleShadow::send_stdin(std::string_view data) {
  return broadcast(FrameType::kStdin, data);
}

std::size_t ConsoleShadow::send_eof() {
  return broadcast(FrameType::kEof, {});
}

std::size_t ConsoleShadow::connected_agents() const {
  const std::lock_guard lock{mutex_};
  return agents_.size();
}

}  // namespace cg::interpose
