#include "lrms/site.hpp"

#include <stdexcept>

namespace cg::lrms {

Site::Site(sim::Simulation& sim, net::ControlBus& bus, SiteId id, SiteConfig config)
    : sim_{sim}, id_{id}, config_{std::move(config)} {
  if (config_.name.empty()) throw std::invalid_argument{"Site: empty name"};
  if (config_.worker_nodes < 1) throw std::invalid_argument{"Site: needs >= 1 node"};
  endpoint_ = "site:" + config_.name;
  WorkerNodeSpec node_spec;
  node_spec.memory_mb = config_.memory_mb_per_node;
  node_spec.cpu_speed = config_.cpu_speed;
  std::vector<WorkerNodeSpec> nodes(
      static_cast<std::size_t>(config_.worker_nodes), node_spec);
  scheduler_ = std::make_unique<LocalScheduler>(sim_, std::move(nodes), config_.lrms);
  gatekeeper_ = std::make_unique<Gatekeeper>(sim_, bus, endpoint_, *scheduler_,
                                             config_.gatekeeper);
}

infosys::SiteStaticInfo Site::static_info() const {
  infosys::SiteStaticInfo info;
  info.id = id_;
  info.name = config_.name;
  info.arch = config_.arch;
  info.op_sys = config_.op_sys;
  info.worker_nodes = config_.worker_nodes;
  info.cpus_per_node = 1;
  info.memory_mb_per_node = config_.memory_mb_per_node;
  info.storage_gb = config_.storage_gb;
  return info;
}

infosys::SiteRecord Site::snapshot() const {
  infosys::SiteRecord record;
  record.static_info = static_info();
  record.dynamic_info.free_cpus = scheduler_->free_nodes();
  record.dynamic_info.running_jobs = scheduler_->running_jobs();
  record.dynamic_info.queued_jobs = scheduler_->queued_jobs();
  record.dynamic_info.free_interactive_vms =
      interactive_vm_counter_ ? interactive_vm_counter_() : 0;
  record.sampled_at = sim_.now();
  return record;
}

void Site::set_interactive_vm_counter(std::function<int()> counter) {
  interactive_vm_counter_ = std::move(counter);
}

}  // namespace cg::lrms
