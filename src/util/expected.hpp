// Minimal expected/result type (std::expected is C++23; we target C++20).
// Used at API boundaries where failure is a normal outcome: JDL parsing,
// matchmaking, socket setup.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace cg {

/// Error payload: a machine-checkable code plus a human-readable message.
struct Error {
  std::string code;
  std::string message;

  [[nodiscard]] std::string to_string() const { return code + ": " + message; }
};

[[nodiscard]] inline Error make_error(std::string code, std::string message) {
  return Error{std::move(code), std::move(message)};
}

/// Result of an operation that produces a T or fails with an error payload
/// (cg::Error by default; any type with a to_string() member works — e.g.
/// broker::SubmitError on the submission path).
template <typename T, typename E = Error>
class Expected {
public:
  Expected(T value) : data_{std::in_place_index<0>, std::move(value)} {}  // NOLINT(google-explicit-constructor)
  Expected(E error) : data_{std::in_place_index<1>, std::move(error)} {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const { return data_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] T& value() & {
    require_value();
    return std::get<0>(data_);
  }
  [[nodiscard]] const T& value() const& {
    require_value();
    return std::get<0>(data_);
  }
  [[nodiscard]] T&& value() && {
    require_value();
    return std::get<0>(std::move(data_));
  }

  [[nodiscard]] const E& error() const {
    if (has_value()) throw std::logic_error{"Expected: no error present"};
    return std::get<1>(data_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<0>(data_) : std::move(fallback);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

private:
  void require_value() const {
    if (!has_value()) {
      throw std::logic_error{"Expected: accessed value of failed result: " +
                             std::get<1>(data_).to_string()};
    }
  }

  std::variant<T, E> data_;
};

/// Specialization-free void result.
class Status {
public:
  Status() = default;
  Status(Error error) : error_{std::move(error)}, ok_{false} {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Status ok_status() { return Status{}; }
  [[nodiscard]] bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  [[nodiscard]] const Error& error() const {
    if (ok_) throw std::logic_error{"Status: no error present"};
    return error_;
  }

private:
  Error error_{};
  bool ok_ = true;
};

}  // namespace cg
