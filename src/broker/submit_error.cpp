#include "broker/submit_error.hpp"

#include "util/strings.hpp"

namespace cg::broker {

std::string_view to_string(SubmitErrorKind kind) {
  switch (kind) {
    case SubmitErrorKind::kBadDescription: return "bad-description";
    case SubmitErrorKind::kAuth: return "auth";
    case SubmitErrorKind::kNoMatch: return "no-match";
    case SubmitErrorKind::kOverShare: return "over-share";
    case SubmitErrorKind::kLeaseConflict: return "lease-conflict";
    case SubmitErrorKind::kInternal: return "internal";
  }
  return "?";
}

SubmitError classify_submit_error(const Error& error) {
  SubmitErrorKind kind = SubmitErrorKind::kInternal;
  if (starts_with(error.code, "gsi.")) {
    kind = SubmitErrorKind::kAuth;
  } else if (error.code == "broker.fair_share") {
    kind = SubmitErrorKind::kOverShare;
  } else if (error.code == "broker.no_resources" ||
             error.code == "mpijob.no_resources" ||
             error.code == "broker.retries_exhausted") {
    kind = SubmitErrorKind::kNoMatch;
  } else if (error.code == "broker.lease_conflict") {
    kind = SubmitErrorKind::kLeaseConflict;
  } else if (error.code == "broker.bad_description" ||
             error.code == "broker.invalid_user") {
    kind = SubmitErrorKind::kBadDescription;
  }
  return SubmitError{kind, error};
}

}  // namespace cg::broker
