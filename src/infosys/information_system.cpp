#include "infosys/information_system.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/log.hpp"

namespace cg::infosys {

InformationSystem::InformationSystem(sim::Simulation& sim,
                                     InformationSystemConfig config)
    : sim_{sim}, config_{config} {}

void InformationSystem::register_site(const SiteStaticInfo& info,
                                      FreshProvider provider,
                                      std::optional<Duration> site_query_latency) {
  if (!info.id.valid()) throw std::invalid_argument{"register_site: invalid id"};
  if (!provider) throw std::invalid_argument{"register_site: null provider"};
  // Re-registration resets the entry; drop any stale index membership first
  // so the index never points at an entry whose index_key was wiped.
  if (const auto old = sites_.find(info.id); old != sites_.end()) {
    if (old->second.index_key) {
      const auto bucket = by_effective_.find(*old->second.index_key);
      if (bucket != by_effective_.end()) {
        bucket->second.erase(info.id);
        if (bucket->second.empty()) by_effective_.erase(bucket);
      }
    }
    leased_sites_.erase(info.id);
    if (old->second.published) ++publish_version_;
  }
  SiteEntry entry;
  entry.static_info = info;
  entry.provider = std::move(provider);
  entry.query_latency = site_query_latency.value_or(config_.default_site_query_latency);
  sites_.insert_or_assign(info.id, std::move(entry));
}

void InformationSystem::unregister_site(SiteId id) {
  const auto it = sites_.find(id);
  if (it == sites_.end()) return;
  if (it->second.index_key) {
    const auto bucket = by_effective_.find(*it->second.index_key);
    if (bucket != by_effective_.end()) {
      bucket->second.erase(id);
      if (bucket->second.empty()) by_effective_.erase(bucket);
    }
  }
  leased_sites_.erase(id);
  const bool had_published = it->second.published != nullptr;
  sites_.erase(it);
  if (had_published) {
    ++publish_version_;
    notify_invalidation(id, "unregister");
  }
}

void InformationSystem::publish(const SiteRecord& record) {
  const auto it = sites_.find(record.static_info.id);
  if (it == sites_.end()) {
    log_warn("infosys", "publish for unregistered site ", record.static_info.name);
    return;
  }
  store_published(it->first, it->second, record);
}

void InformationSystem::publish_fresh(SiteId id) {
  const auto it = sites_.find(id);
  if (it == sites_.end()) return;
  store_published(id, it->second, it->second.provider());
}

void InformationSystem::store_published(SiteId id, SiteEntry& entry,
                                        SiteRecord record) {
  if (entry.published) notify_invalidation(id, "republish");
  record.sampled_at = sim_.now();
  // Prime before storing: every copy of this record the index hands out
  // shares the one machine view built here.
  record.prime_cache();
  entry.published = std::make_shared<const SiteRecord>(std::move(record));
  ++publish_version_;
  reindex(id, entry);
}

void InformationSystem::reindex(SiteId id, SiteEntry& entry) {
  if (entry.index_key) {
    const auto bucket = by_effective_.find(*entry.index_key);
    if (bucket != by_effective_.end()) {
      bucket->second.erase(id);
      if (bucket->second.empty()) by_effective_.erase(bucket);
    }
    entry.index_key.reset();
  }
  if (entry.published) {
    const int effective =
        entry.published->dynamic_info.free_cpus - entry.leased_cpus;
    by_effective_[effective].insert_or_assign(id, &entry);
    entry.index_key = effective;
  }
}

void InformationSystem::apply_lease_delta(SiteId id, int cpu_delta) {
  const auto it = sites_.find(id);
  if (it == sites_.end() || cpu_delta == 0) return;
  it->second.leased_cpus += cpu_delta;
  if (it->second.leased_cpus > 0) {
    leased_sites_.insert_or_assign(id, &it->second);
  } else {
    leased_sites_.erase(id);
  }
  reindex(id, it->second);
  notify_invalidation(id, "lease");
}

std::optional<int> InformationSystem::effective_free(SiteId id) const {
  const auto it = sites_.find(id);
  if (it == sites_.end() || !it->second.published) return std::nullopt;
  return it->second.published->dynamic_info.free_cpus - it->second.leased_cpus;
}

std::size_t InformationSystem::index_size() const {
  std::size_t total = 0;
  for (const auto& [effective, ids] : by_effective_) total += ids.size();
  return total;
}

void InformationSystem::notify_invalidation(SiteId id, const char* reason) {
  if (invalidation_listener_) invalidation_listener_(id, reason);
}

void InformationSystem::start_periodic_publication(SiteId id, Duration period) {
  const auto it = sites_.find(id);
  if (it == sites_.end()) throw std::invalid_argument{"unknown site"};
  if (period <= Duration::zero()) throw std::invalid_argument{"period must be positive"};
  it->second.periodic = true;
  it->second.period = period;
  publish_fresh(id);
  schedule_publication(id);
}

void InformationSystem::schedule_publication(SiteId id) {
  const auto it = sites_.find(id);
  if (it == sites_.end() || !it->second.periodic) return;
  // Daemon event: periodic publication must not keep the simulation alive.
  sim_.schedule_daemon(it->second.period, [this, id] {
    // The site may have been unregistered while the timer was pending.
    const auto entry = sites_.find(id);
    if (entry == sites_.end() || !entry->second.periodic) return;
    publish_fresh(id);
    schedule_publication(id);
  });
}

void InformationSystem::query_index(IndexCallback callback) {
  if (!callback) throw std::invalid_argument{"query_index: null callback"};
  ++index_queries_;
  std::vector<SiteRecord> records;
  records.reserve(sites_.size());
  for (const auto& [id, entry] : sites_) {
    if (entry.published) records.push_back(*entry.published);
  }
  sim_.schedule(config_.index_query_latency,
                [cb = std::move(callback), recs = std::move(records)]() mutable {
                  cb(std::move(recs));
                });
}

void InformationSystem::query_index_matching(int needed_cpus,
                                             SnapshotCallback callback) {
  if (!callback) throw std::invalid_argument{"query_index_matching: null callback"};
  ++index_queries_;
  // Health pruning projects to *delivery* time: the broker's matchmaker
  // re-applies its health filter when the reply lands, and the provider
  // contract (decay-only lower bound) makes call-time pruning agree with it.
  const SimTime delivery = sim_.now() + config_.index_query_latency;
  sim_.schedule(config_.index_query_latency,
                [cb = std::move(callback),
                 snap = matching_snapshot(needed_cpus, delivery)]() mutable {
                  cb(std::move(snap));
                });
}

void InformationSystem::refresh_all_published() {
  if (all_published_version_ == publish_version_) return;
  all_published_.clear();
  all_published_.reserve(sites_.size());
  for (const auto& [id, entry] : sites_) {
    if (entry.published) all_published_.push_back(entry.published);
  }
  all_published_version_ = publish_version_;
}

std::shared_ptr<const InformationSystem::IndexSnapshot>
InformationSystem::matching_snapshot(int needed_cpus, SimTime delivery) {
  // Without a health provider the reply depends only on the published set;
  // with one, caching additionally needs the horizon + epoch feeds to prove
  // the excluded-site set unchanged.
  const bool cacheable =
      !health_provider_ || (health_horizon_ && health_epoch_);
  const std::uint64_t epoch = health_epoch_ ? health_epoch_() : 0;
  if (cacheable) {
    const auto it = matching_cache_.find(needed_cpus);
    if (it != matching_cache_.end() &&
        it->second.version == publish_version_ && it->second.epoch == epoch &&
        delivery <= it->second.valid_until) {
      return it->second.snapshot;
    }
  }
  // Rebuild. The survivor set is exactly {published free_cpus >= needed}:
  // the old prefix-walk (effective >= needed) is a subset of it whenever
  // leases are nonnegative, and the leased-site pass admitted precisely the
  // remainder. Pruning must stay lease-independent — a lease may be released
  // while the reply is in flight and the broker re-checks live leases at
  // delivery — which is also what makes lease deltas cache-neutral.
  // Walking sites_ in map order yields ascending site ids: the delivery
  // order query_index uses, with no per-query sort.
  refresh_all_published();
  auto snap = std::make_shared<IndexSnapshot>();
  snap->reserve(all_published_.size());
  // Horizon: the reply stays exact until the first pruned site could leave
  // exclusion by decay (entering exclusion bumps the epoch instead).
  SimTime valid_until = SimTime::max();
  for (const auto& rec : all_published_) {
    if (rec->dynamic_info.free_cpus < needed_cpus) continue;
    const SiteId id = rec->static_info.id;
    if (health_provider_ && health_provider_(id, delivery)) {
      if (health_horizon_) {
        const SimTime end = health_horizon_(id, delivery);
        if (end < valid_until) valid_until = end;
      }
      continue;
    }
    snap->push_back(rec);
  }
  std::shared_ptr<const IndexSnapshot> result = std::move(snap);
  if (cacheable) {
    matching_cache_[needed_cpus] =
        CachedMatching{publish_version_, epoch, valid_until, result};
  }
  return result;
}

void InformationSystem::query_site(SiteId id, SiteCallback callback) {
  if (!callback) throw std::invalid_argument{"query_site: null callback"};
  ++site_queries_;
  const auto it = sites_.find(id);
  if (it == sites_.end()) {
    sim_.schedule(Duration::zero(),
                  [cb = std::move(callback)]() mutable { cb(std::nullopt); });
    return;
  }
  const Duration latency = it->second.query_latency;
  sim_.schedule(latency, [this, id, cb = std::move(callback)]() mutable {
    // Re-check: the site may disappear while the query is in flight.
    const auto entry = sites_.find(id);
    if (entry == sites_.end()) {
      cb(std::nullopt);
      return;
    }
    SiteRecord record = entry->second.provider();
    record.sampled_at = sim_.now();
    cb(std::move(record));
  });
}

std::optional<SiteRecord> InformationSystem::published_record(SiteId id) const {
  const auto it = sites_.find(id);
  if (it == sites_.end() || it->second.published == nullptr) return std::nullopt;
  return *it->second.published;
}

}  // namespace cg::infosys
