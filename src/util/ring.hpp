// Ring: a growable power-of-two circular buffer used by the streaming hot
// paths (reliable-channel queues, spool bookkeeping, in-flight channel
// deliveries) in place of std::deque. Elements live in a contiguous vector
// that is reused in steady state — push/pop never allocate once the ring has
// grown to its working depth, and popped slots are reset to a default-
// constructed T so held resources (callbacks, chunk references) are released
// immediately rather than when the slot is overwritten.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace cg::util {

/// Requirements on T: default-constructible and move-assignable. Indexing is
/// front-relative: ring[0] is the oldest element, ring[size() - 1] the
/// newest.
template <typename T>
class Ring {
public:
  Ring() = default;
  explicit Ring(std::size_t initial_capacity) { reserve(initial_capacity); }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t capacity() const { return buf_.size(); }

  [[nodiscard]] T& front() {
    assert(count_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    assert(count_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] T& back() {
    assert(count_ > 0);
    return buf_[(head_ + count_ - 1) & mask_];
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < count_);
    return buf_[(head_ + i) & mask_];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < count_);
    return buf_[(head_ + i) & mask_];
  }

  T& push_back(T value) {
    if (count_ == buf_.size()) grow(buf_.empty() ? kMinCapacity : buf_.size() * 2);
    T& slot = buf_[(head_ + count_) & mask_];
    slot = std::move(value);
    ++count_;
    return slot;
  }

  void pop_front() {
    assert(count_ > 0);
    buf_[head_] = T{};  // release held resources now, not at overwrite
    head_ = (head_ + 1) & mask_;
    --count_;
    // Park an empty ring at slot zero: a shallow push/pop pattern then reuses
    // the same few cache-hot slots instead of marching cold through the whole
    // buffer one slot per message.
    if (count_ == 0) head_ = 0;
  }

  void clear() {
    while (count_ > 0) pop_front();
    head_ = 0;
  }

  /// Pre-sizes the ring (rounded up to a power of two).
  void reserve(std::size_t n) {
    if (n > buf_.size()) grow(n);
  }

private:
  static constexpr std::size_t kMinCapacity = 8;

  void grow(std::size_t at_least) {
    std::size_t new_cap = kMinCapacity;
    while (new_cap < at_least) new_cap *= 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace cg::util
