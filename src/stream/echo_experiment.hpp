// The Section 6.2 measurement harness: a client on the submission machine
// and a server on the execution machine run a coordinated sequence of 1,000
// read/write operations over their stdio — client writes N bytes, server
// reads and answers with N bytes, client reads; the round trip of each
// sequence is recorded. Methods compared: ssh, Glogin, and our interposition
// agents in fast and reliable modes (Figures 6 and 7).
#pragma once

#include <cstddef>
#include <string>

#include "sim/network.hpp"
#include "util/stats.hpp"

namespace cg::stream {

enum class EchoMethod { kSsh, kGlogin, kFast, kReliable };

[[nodiscard]] std::string to_string(EchoMethod method);

struct EchoConfig {
  EchoMethod method = EchoMethod::kFast;
  std::size_t payload_bytes = 10;
  int sequences = 1000;
  std::uint64_t seed = 42;
  /// Optional outage window injected into the link, [start, end) in seconds
  /// of experiment time (0 width = none). Exercises failure behaviour.
  double outage_start_s = 0.0;
  double outage_end_s = 0.0;
};

struct EchoResult {
  SampleSeries round_trips_s;   ///< per-sequence round-trip time, seconds
  int sequences_completed = 0;
  std::size_t bytes_lost = 0;   ///< fast mode only: payload dropped on outage
  bool gave_up = false;         ///< reliable mode ran out of retries
  std::size_t disk_bytes_written = 0;
  std::size_t disk_ops = 0;
};

/// Runs the echo experiment on a fresh simulation over the given link
/// profile. Deterministic for a given config.
[[nodiscard]] EchoResult run_echo_experiment(const sim::LinkSpec& link_spec,
                                             const EchoConfig& config);

}  // namespace cg::stream
