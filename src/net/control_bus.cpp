#include "net/control_bus.hpp"

#include <algorithm>
#include <utility>

#include "obs/observability.hpp"
#include "sim/network.hpp"
#include "sim/simulation.hpp"

namespace cg::net {

ControlBus::ControlBus(sim::Simulation& sim, sim::Network& network)
    : sim_{sim}, network_{network} {}

ControlBus::~ControlBus() = default;

void ControlBus::bind(std::string endpoint, DeliverFn handler) {
  handlers_[std::move(endpoint)] = std::move(handler);
}

void ControlBus::unbind(const std::string& endpoint) {
  handlers_.erase(endpoint);
}

void ControlBus::set_observability(obs::Observability* obs) {
  obs_ = obs;
  if (obs == nullptr) {
    sent_ = {};
    delivered_ = {};
    dropped_ = {};
    duplicated_ = {};
    latency_ = {};
    return;
  }
  for (std::size_t i = 0; i < kMessageTypeCount; ++i) {
    const obs::LabelSet labels{
        {"type", std::string{to_string(static_cast<MsgType>(i))}}};
    sent_[i] = obs->metrics.counter_handle("net.msg.sent", labels);
    delivered_[i] = obs->metrics.counter_handle("net.msg.delivered", labels);
    dropped_[i] = obs->metrics.counter_handle("net.msg.dropped", labels);
    duplicated_[i] = obs->metrics.counter_handle("net.msg.duplicated", labels);
    latency_[i] = obs->metrics.histogram_handle("net.msg.latency_s", labels);
  }
}

bool ControlBus::fault_matches(const ActiveFault& fault, MsgType type,
                               const std::string& src,
                               const std::string& dst) const {
  if (fault.type && *fault.type != type) return false;
  // Endpoint filters are unordered (like the network's link keys): a named
  // endpoint must be one of the two ends, and a fully named pair must be
  // exactly {src, dst}.
  const auto matches_pair = [&](const std::string& a, const std::string& b) {
    if (a.empty() && b.empty()) return true;
    if (b.empty()) return a == src || a == dst;
    if (a.empty()) return b == src || b == dst;
    return (a == src && b == dst) || (a == dst && b == src);
  };
  return matches_pair(fault.endpoint_a, fault.endpoint_b);
}

bool ControlBus::drop_fault_active(MsgType type, const std::string& src,
                                   const std::string& dst) const {
  return std::any_of(faults_.begin(), faults_.end(), [&](const ActiveFault& f) {
    return f.kind == sim::FaultKind::kMsgDrop && fault_matches(f, type, src, dst);
  });
}

bool ControlBus::dup_fault_active(MsgType type, const std::string& src,
                                  const std::string& dst) const {
  return std::any_of(faults_.begin(), faults_.end(), [&](const ActiveFault& f) {
    return f.kind == sim::FaultKind::kMsgDup && fault_matches(f, type, src, dst);
  });
}

Duration ControlBus::reorder_delay(MsgType type, const std::string& src,
                                   const std::string& dst) const {
  Duration delay = Duration::zero();
  for (const ActiveFault& f : faults_) {
    if (f.kind == sim::FaultKind::kMsgReorder && fault_matches(f, type, src, dst))
      delay = delay + f.extra_latency;
  }
  return delay;
}

void ControlBus::count_drop(const Envelope& envelope, const char* reason) {
  const auto index = envelope.payload.index();
  dropped_[index].inc();
  if (obs_ != nullptr) {
    obs_->tracer.record(sim_.now(), job_of(envelope.payload),
                        obs::TraceEventKind::kMsgDropped, reason,
                        obs::LabelSet{
                            {"type", std::string{to_string(
                                         type_of(envelope.payload))}},
                            {"src", envelope.src_endpoint},
                            {"dst", envelope.dst_endpoint},
                        });
  }
}

std::uint64_t ControlBus::last_seq(const std::string& src,
                                   const std::string& dst) const {
  const auto it = seq_.find({src, dst});
  return it == seq_.end() ? 0 : it->second;
}

bool ControlBus::send(const std::string& src, const std::string& dst,
                      Message msg, const SendOptions& options,
                      DeliverFn on_delivered) {
  const MsgType type = type_of(msg);
  const auto index = msg.index();
  sent_[index].inc();

  Envelope envelope{++seq_[{src, dst}], src, dst, sim_.now(), std::move(msg)};

  if (options.drop_when_down &&
      !network_.link(src, dst).is_up(sim_.now())) {
    count_drop(envelope, "partition");
    return false;
  }
  if (drop_fault_active(type, src, dst)) {
    count_drop(envelope, "fault");
    return false;
  }

  Duration delay = options.channel_latency + options.processing_latency;
  if (options.payload_bytes > 0) {
    // The transfer rides the same link (and consumes the same jitter RNG
    // draw) the pre-bus call sites used, in send order.
    const std::string& from =
        options.transfer_src.empty() ? src : options.transfer_src;
    delay = delay +
            network_.link(from, dst).transfer_duration(options.payload_bytes);
  }
  delay = delay + reorder_delay(type, src, dst);

  const bool duplicate = dup_fault_active(type, src, dst);

  if (options.inline_when_immediate && delay.count_micros() == 0 &&
      !duplicate) {
    delivered_[index].inc();
    latency_[index].observe(0.0);
    deliver_envelope(envelope, on_delivered);
    return true;
  }

  if (duplicate) {
    duplicated_[index].inc();
    if (obs_ != nullptr) {
      obs_->tracer.record(sim_.now(), job_of(envelope.payload),
                          obs::TraceEventKind::kMsgDuplicated, "fault",
                          obs::LabelSet{
                              {"type", std::string{to_string(type)}},
                              {"src", src},
                              {"dst", dst},
                          });
    }
    schedule_delivery(envelope, on_delivered, delay);  // the copy
  }
  schedule_delivery(std::move(envelope), std::move(on_delivered), delay);
  return true;
}

void ControlBus::schedule_delivery(Envelope envelope, DeliverFn on_delivered,
                                   Duration delay) {
  const std::uint64_t id = ++next_delivery_;
  pending_.emplace(id, Pending{std::move(envelope), std::move(on_delivered)});
  sim_.schedule(delay, [this, id] { deliver(id); });
}

void ControlBus::deliver(std::uint64_t id) {
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  Pending pending = std::move(it->second);
  pending_.erase(it);  // before the handler runs: handlers send more messages
  const auto index = pending.envelope.payload.index();
  delivered_[index].inc();
  latency_[index].observe_duration(sim_.now() - pending.envelope.send_time);
  deliver_envelope(pending.envelope, pending.on_delivered);
}

void ControlBus::deliver_envelope(const Envelope& envelope,
                                  const DeliverFn& handler) {
  if (handler) {
    handler(envelope);
    return;
  }
  const auto it = handlers_.find(envelope.dst_endpoint);
  if (it != handlers_.end() && it->second) it->second(envelope);
}

bool ControlBus::probe(const std::string& src, const std::string& dst,
                       const Message& msg) {
  const MsgType type = type_of(msg);
  const auto index = msg.index();
  sent_[index].inc();
  const bool up = network_.link(src, dst).is_up(sim_.now()) &&
                  !drop_fault_active(type, src, dst);
  if (up) {
    delivered_[index].inc();
  } else {
    const Envelope envelope{0, src, dst, sim_.now(), msg};
    count_drop(envelope, "probe");
  }
  return up;
}

void ControlBus::apply_message_fault(const sim::FaultSpec& spec) {
  if (!sim::is_message_fault(spec.kind)) return;
  ActiveFault fault;
  fault.kind = spec.kind;
  if (!is_wildcard_type(spec.target)) {
    const auto type = type_from_name(spec.target);
    if (!type) return;  // unknown type name: the fault can match nothing
    fault.type = *type;
  }
  fault.endpoint_a = spec.endpoint_a;
  fault.endpoint_b = spec.endpoint_b;
  fault.extra_latency = spec.extra_latency;
  faults_.push_back(std::move(fault));
}

void ControlBus::clear_message_fault(const sim::FaultSpec& spec) {
  if (!sim::is_message_fault(spec.kind)) return;
  std::optional<MsgType> type;
  if (!is_wildcard_type(spec.target)) {
    type = type_from_name(spec.target);
    if (!type) return;
  }
  const auto it = std::find_if(
      faults_.begin(), faults_.end(), [&](const ActiveFault& f) {
        return f.kind == spec.kind && f.type == type &&
               f.endpoint_a == spec.endpoint_a &&
               f.endpoint_b == spec.endpoint_b &&
               f.extra_latency == spec.extra_latency;
      });
  if (it != faults_.end()) faults_.erase(it);
}

}  // namespace cg::net
