#include "lrms/task_runner.hpp"

#include <cmath>
#include <stdexcept>

namespace cg::lrms {

TaskRunner::TaskRunner(sim::Simulation& sim, Workload workload, DilationFn dilation,
                       CompletionFn on_complete, PhaseObserver observer)
    : sim_{sim},
      workload_{std::move(workload)},
      dilation_{std::move(dilation)},
      on_complete_{std::move(on_complete)},
      observer_{std::move(observer)} {
  if (!on_complete_) throw std::invalid_argument{"TaskRunner: null completion"};
}

TaskRunner::~TaskRunner() {
  if (pending_.valid()) sim_.cancel(pending_);
}

void TaskRunner::start() {
  if (state_ != State::kIdle) throw std::logic_error{"TaskRunner: already started"};
  state_ = State::kRunning;
  if (workload_.is_manual()) return;  // waits for finish_manual()
  begin_phase();
}

void TaskRunner::begin_phase() {
  if (phase_index_ >= workload_.phases.size()) {
    state_ = State::kFinished;
    on_complete_();
    return;
  }
  const Phase& phase = workload_.phases[phase_index_];
  phase_first_started_at_ = sim_.now();
  if (phase.kind == PhaseKind::kBarrier) {
    if (barrier_handler_) {
      // Block until a sibling coordinator releases us.
      at_barrier_ = true;
      barrier_handler_(barriers_passed_);
    } else {
      // No coordination requested: the barrier is free.
      if (observer_) observer_(phase, Duration::zero());
      ++barriers_passed_;
      ++phase_index_;
      begin_phase();
    }
    return;
  }
  phase_remaining_base_ = phase.base;
  schedule_phase_end();
}

void TaskRunner::set_barrier_handler(BarrierFn handler) {
  if (state_ != State::kIdle) {
    throw std::logic_error{"set_barrier_handler: task already started"};
  }
  barrier_handler_ = std::move(handler);
}

void TaskRunner::release_barrier() {
  if (state_ != State::kRunning || !at_barrier_) return;
  at_barrier_ = false;
  const Phase& phase = workload_.phases[phase_index_];
  if (observer_) observer_(phase, sim_.now() - phase_first_started_at_);
  ++barriers_passed_;
  ++phase_index_;
  begin_phase();
}

void TaskRunner::schedule_phase_end() {
  const Phase& phase = workload_.phases[phase_index_];
  current_dilation_ = dilation_for(phase.kind);
  phase_started_at_ = sim_.now();
  const Duration dilated = phase_remaining_base_.scaled(current_dilation_);
  pending_ = sim_.schedule(dilated, [this] { on_phase_end(); });
}

void TaskRunner::on_phase_end() {
  pending_ = sim::EventHandle{};
  if (state_ != State::kRunning) return;
  const Phase& phase = workload_.phases[phase_index_];
  if (observer_) observer_(phase, sim_.now() - phase_first_started_at_);
  ++phase_index_;
  begin_phase();
}

void TaskRunner::notify_dilation_changed() {
  if (state_ != State::kRunning || workload_.is_manual()) return;
  if (phase_index_ >= workload_.phases.size()) return;
  const Phase& phase = workload_.phases[phase_index_];
  const double new_dilation = dilation_for(phase.kind);
  if (new_dilation == current_dilation_) return;
  // Convert elapsed dilated time back to consumed base work, then re-time
  // the remainder under the new factor.
  const Duration elapsed = sim_.now() - phase_started_at_;
  const Duration consumed_base = elapsed.scaled(1.0 / current_dilation_);
  phase_remaining_base_ -= consumed_base;
  if (phase_remaining_base_.is_negative()) phase_remaining_base_ = Duration::zero();
  if (pending_.valid()) sim_.cancel(pending_);
  schedule_phase_end();
}

void TaskRunner::finish_manual() {
  if (state_ != State::kRunning || !workload_.is_manual()) return;
  state_ = State::kFinished;
  on_complete_();
}

void TaskRunner::cancel() {
  if (state_ == State::kFinished || state_ == State::kCancelled) return;
  if (pending_.valid()) sim_.cancel(pending_);
  pending_ = sim::EventHandle{};
  state_ = State::kCancelled;
}

double TaskRunner::dilation_for(PhaseKind kind) const {
  double d = dilation_ ? dilation_(kind) : 1.0;
  // Execution noise may dip a hair below 1.0; only nonsense is rejected.
  if (!(d > 0.0) || !std::isfinite(d)) d = 1.0;
  return d;
}

}  // namespace cg::lrms
