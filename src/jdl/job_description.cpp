#include "jdl/job_description.hpp"

#include "jdl/parser.hpp"
#include "util/strings.hpp"

namespace cg::jdl {

std::string to_string(JobCategory c) {
  return c == JobCategory::kBatch ? "batch" : "interactive";
}

std::string to_string(JobFlavor f) {
  switch (f) {
    case JobFlavor::kSequential: return "sequential";
    case JobFlavor::kMpichP4: return "mpich-p4";
    case JobFlavor::kMpichG2: return "mpich-g2";
  }
  return "?";
}

std::string to_string(StreamingMode m) {
  return m == StreamingMode::kFast ? "fast" : "reliable";
}

std::string to_string(MachineAccess a) {
  return a == MachineAccess::kExclusive ? "exclusive" : "shared";
}

Expected<JobDescription> JobDescription::parse(std::string_view source) {
  auto ad = parse_classad(source);
  if (!ad) return ad.error();
  return from_classad(std::move(ad.value()));
}

Expected<JobDescription> JobDescription::from_classad(ClassAd ad) {
  JobDescription jd;

  const auto exec = ad.get_string("Executable");
  if (!exec || exec->empty()) {
    return make_error("jdl.validate", "Executable is required and must be a string");
  }
  jd.executable_ = *exec;
  jd.arguments_ = ad.get_string("Arguments").value_or("");

  // JobType: a single string or a list combining category and flavor, e.g.
  // {"interactive", "mpich-g2"}. Defaults: batch, sequential.
  if (ad.has("JobType")) {
    const auto types = ad.get_string_list("JobType");
    if (!types) {
      return make_error("jdl.validate", "JobType must be a string or list of strings");
    }
    bool category_seen = false;
    bool flavor_seen = false;
    for (const auto& t : *types) {
      if (iequals(t, "batch") || iequals(t, "normal")) {
        if (category_seen) return make_error("jdl.validate", "duplicate job category in JobType");
        jd.category_ = JobCategory::kBatch;
        category_seen = true;
      } else if (iequals(t, "interactive")) {
        if (category_seen) return make_error("jdl.validate", "duplicate job category in JobType");
        jd.category_ = JobCategory::kInteractive;
        category_seen = true;
      } else if (iequals(t, "sequential")) {
        if (flavor_seen) return make_error("jdl.validate", "duplicate job flavor in JobType");
        jd.flavor_ = JobFlavor::kSequential;
        flavor_seen = true;
      } else if (iequals(t, "mpich-p4") || iequals(t, "mpich_p4")) {
        if (flavor_seen) return make_error("jdl.validate", "duplicate job flavor in JobType");
        jd.flavor_ = JobFlavor::kMpichP4;
        flavor_seen = true;
      } else if (iequals(t, "mpich-g2") || iequals(t, "mpich_g2")) {
        if (flavor_seen) return make_error("jdl.validate", "duplicate job flavor in JobType");
        jd.flavor_ = JobFlavor::kMpichG2;
        flavor_seen = true;
      } else {
        return make_error("jdl.validate", "unknown JobType element: \"" + t + "\"");
      }
    }
  }

  if (ad.has("NodeNumber")) {
    const auto nn = ad.get_int("NodeNumber");
    if (!nn || *nn < 1) {
      return make_error("jdl.validate", "NodeNumber must be an integer >= 1");
    }
    if (*nn > 100000) {
      return make_error("jdl.validate", "NodeNumber is implausibly large");
    }
    jd.node_number_ = static_cast<int>(*nn);
  }
  if (jd.flavor_ == JobFlavor::kSequential && jd.node_number_ != 1) {
    return make_error("jdl.validate", "sequential jobs must have NodeNumber = 1");
  }

  if (ad.has("StreamingMode")) {
    const auto mode = ad.get_string("StreamingMode");
    if (!mode) return make_error("jdl.validate", "StreamingMode must be a string");
    if (iequals(*mode, "fast")) {
      jd.streaming_mode_ = StreamingMode::kFast;
    } else if (iequals(*mode, "reliable")) {
      jd.streaming_mode_ = StreamingMode::kReliable;
    } else {
      return make_error("jdl.validate",
                        "StreamingMode must be \"fast\" or \"reliable\"");
    }
  }

  if (ad.has("MachineAccess")) {
    const auto access = ad.get_string("MachineAccess");
    if (!access) return make_error("jdl.validate", "MachineAccess must be a string");
    if (iequals(*access, "exclusive")) {
      jd.machine_access_ = MachineAccess::kExclusive;
    } else if (iequals(*access, "shared")) {
      jd.machine_access_ = MachineAccess::kShared;
    } else {
      return make_error("jdl.validate",
                        "MachineAccess must be \"exclusive\" or \"shared\"");
    }
  }

  if (ad.has("PerformanceLoss")) {
    const auto pl = ad.get_int("PerformanceLoss");
    // Paper: "Values for Performance Loss can be 0, 5, 10, 15, and so on" —
    // multiples of 5; it must leave the interactive job a strict majority.
    if (!pl || *pl < 0 || *pl > 50 || *pl % 5 != 0) {
      return make_error(
          "jdl.validate",
          "PerformanceLoss must be a multiple of 5 between 0 and 50");
    }
    jd.performance_loss_ = static_cast<int>(*pl);
  }

  if (ad.has("ShadowPort")) {
    const auto port = ad.get_int("ShadowPort");
    if (!port || *port < 1 || *port > 65535) {
      return make_error("jdl.validate", "ShadowPort must be in [1, 65535]");
    }
    jd.shadow_port_ = static_cast<std::uint16_t>(*port);
  }

  if (ad.has("InputSandbox")) {
    const auto files = ad.get_string_list("InputSandbox");
    if (!files) {
      return make_error("jdl.validate", "InputSandbox must be a list of strings");
    }
    jd.input_sandbox_ = *files;
  }

  if (ad.has("OutputSandbox")) {
    const auto files = ad.get_string_list("OutputSandbox");
    if (!files) {
      return make_error("jdl.validate", "OutputSandbox must be a list of strings");
    }
    jd.output_sandbox_ = *files;
  }

  if (ad.has("RetryCount")) {
    const auto retries = ad.get_int("RetryCount");
    if (!retries || *retries < 0 || *retries > 100) {
      return make_error("jdl.validate", "RetryCount must be in [0, 100]");
    }
    jd.retry_count_ = static_cast<int>(*retries);
  }

  if (ad.has("Environment")) {
    const auto env = ad.get_string_list("Environment");
    if (!env) {
      return make_error("jdl.validate", "Environment must be a list of strings");
    }
    for (const auto& entry : *env) {
      const auto eq = entry.find('=');
      if (eq == std::string::npos || eq == 0) {
        return make_error("jdl.validate",
                          "Environment entries must look like NAME=value: " +
                              entry);
      }
    }
    jd.environment_ = *env;
  }

  if (ad.has("VirtualOrganisation")) {
    const auto vo = ad.get_string("VirtualOrganisation");
    if (!vo || vo->empty()) {
      return make_error("jdl.validate",
                        "VirtualOrganisation must be a non-empty string");
    }
    jd.virtual_organisation_ = *vo;
  }

  // Streaming attributes only make sense for interactive jobs.
  if (jd.category_ == JobCategory::kBatch && ad.has("MachineAccess") &&
      jd.machine_access_ == MachineAccess::kShared) {
    return make_error("jdl.validate",
                      "MachineAccess = \"shared\" applies to interactive jobs only");
  }

  jd.ad_ = std::move(ad);
  return jd;
}

int JobDescription::console_agent_count() const {
  if (flavor_ == JobFlavor::kMpichG2) return node_number_;
  return 1;
}

}  // namespace cg::jdl
