// A worker node: one execution resource managed by a site's local batch
// system. A node runs one local job at a time natively; when that job is a
// glide-in agent, the agent layers its two lightweight virtual machines on
// top (src/glidein) without the LRMS knowing.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "jdl/classad.hpp"
#include "lrms/task_runner.hpp"
#include "lrms/workload.hpp"
#include "sim/simulation.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"

namespace cg::lrms {

/// A job as seen by the local scheduler.
struct LocalJob {
  JobId id;
  UserId owner;
  Workload workload;
  /// Optional job ClassAd for Condor-style local matchmaking (see
  /// QueuePolicy::kMatchmaking): the job's Requirements are evaluated
  /// against each candidate node's machine ad.
  std::shared_ptr<const jdl::ClassAd> job_ad;
  /// Fires when the job begins executing on a node.
  std::function<void(NodeId)> on_start;
  /// Fires when the workload completes (not on cancel/kill).
  std::function<void()> on_complete;
  /// Observes each executed phase (Fig. 8 instrumentation).
  TaskRunner::PhaseObserver phase_observer;
  /// Dilation factors while running; defaults to 1.0 (dedicated node).
  TaskRunner::DilationFn dilation;
  /// Barrier handler for parallel (BSP) workloads; see TaskRunner.
  TaskRunner::BarrierFn barrier_handler;
};

struct WorkerNodeSpec {
  std::int64_t memory_mb = 1024;
  /// Relative CPU speed (1.0 = reference Pentium III of the testbed).
  double cpu_speed = 1.0;
  /// Per-phase multiplicative execution noise, off by default (virtual time
  /// is exact). The Fig. 8 harness enables it with the paper's measured
  /// scatter: sd 0.001 s on a 0.921 s burst, 6.9e-5 s on a 6 ms I/O op.
  double cpu_noise_fraction = 0.0;
  double io_noise_fraction = 0.0;
  /// Free-form machine attributes exported in the node's ClassAd (Condor
  /// style), e.g. {"HasGPU", "true"} or {"Pool", "\"physics\""} — values
  /// are JDL expressions.
  std::vector<std::pair<std::string, std::string>> extra_attributes;
};

class WorkerNode {
public:
  WorkerNode(sim::Simulation& sim, NodeId id, WorkerNodeSpec spec = {});

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const WorkerNodeSpec& spec() const { return spec_; }
  /// The node's machine ClassAd (Condor-style), built once at construction.
  [[nodiscard]] const jdl::ClassAd& machine_ad() const { return machine_ad_; }
  [[nodiscard]] bool idle() const { return !failed_ && !runner_ && !reserved_; }
  [[nodiscard]] bool reserved() const { return reserved_; }
  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] std::optional<JobId> current_job() const;

  /// Marks the node as promised to an in-flight dispatch so concurrent
  /// dispatches cannot double-book it.
  void reserve();
  void release_reservation();

  /// Starts a job. The node must be idle or reserved.
  void run(LocalJob job);

  /// Forcibly removes the current job (machine failure, scheduler kill).
  /// Does not fire on_complete. Returns the killed job's id, if any.
  std::optional<JobId> kill_current();

  /// Takes the node out of service (machine crash): the resident job is
  /// killed, any reservation is dropped, and the node refuses work until
  /// revive(). Returns the killed job's id, if any.
  std::optional<JobId> fail();

  /// Returns a crashed node to service (repair / reboot).
  void revive() { failed_ = false; }

  /// Completes a manual-workload job (glide-in agent leaving the machine).
  void finish_current_manual();

  /// Re-times the current job after a dilation change.
  void notify_dilation_changed();

  /// Releases the current job from a barrier (parallel-job coordination).
  void release_barrier();

private:
  sim::Simulation& sim_;
  NodeId id_;
  WorkerNodeSpec spec_;
  jdl::ClassAd machine_ad_;
  Rng rng_;  ///< execution-noise stream, seeded from the node id
  bool reserved_ = false;
  bool failed_ = false;
  std::optional<LocalJob> job_;
  std::unique_ptr<TaskRunner> runner_;
};

}  // namespace cg::lrms
