// Observability subsystem tests: metric primitives (histogram percentiles,
// labeled-counter merging), the typed job tracer and its exports, the
// determinism contract (two same-seed runs produce byte-identical exports),
// and the acceptance scenario — a link partition during fast-mode streaming
// whose trace shows the drops, the ConsoleShadow counter incrementing, and
// the recovery.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "grid/grid.hpp"
#include "obs/observability.hpp"
#include "sim/fault.hpp"
#include "stream/grid_console.hpp"
#include "util/stats.hpp"

namespace cg {
namespace {

using namespace cg::literals;
using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::JobTraceEvent;
using obs::JobTracer;
using obs::LabelSet;
using obs::MetricsRegistry;
using obs::TraceEventKind;

// ----------------------------------------------------------- primitives ----

TEST(LabelSetTest, OrderingIsCanonical) {
  const LabelSet a{{"site", "1"}, {"user", "7"}};
  const LabelSet b{{"user", "7"}, {"site", "1"}};
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_string(), "{site=\"1\",user=\"7\"}");
  EXPECT_TRUE(LabelSet{}.to_string().empty());
}

TEST(HistogramTest, MomentsAreExact) {
  Histogram h;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
}

TEST(HistogramTest, PercentilesApproximateTheDistribution) {
  Histogram h;
  // 1..1000 ms uniformly.
  for (int i = 1; i <= 1000; ++i) h.observe(i / 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), h.min());
  EXPECT_DOUBLE_EQ(h.percentile(100), h.max());
  // Log-spaced buckets: estimates land within one bucket (~6%) of truth.
  EXPECT_NEAR(h.percentile(50), 0.5, 0.5 * 0.08);
  EXPECT_NEAR(h.percentile(95), 0.95, 0.95 * 0.08);
  // Percentiles never step outside the observed range.
  EXPECT_GE(h.percentile(99.9), h.min());
  EXPECT_LE(h.percentile(99.9), h.max());
}

TEST(HistogramTest, EmptyAndOutOfRangeValues) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  // Values outside the bucket span clamp into edge buckets; min/max stay
  // exact because they come from RunningStats.
  h.observe(1e-9);
  h.observe(1e9);
  EXPECT_DOUBLE_EQ(h.min(), 1e-9);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  EXPECT_GE(h.percentile(50), h.min());
  EXPECT_LE(h.percentile(50), h.max());
}

TEST(HistogramTest, MergeCombinesMomentsAndBuckets) {
  Histogram a;
  Histogram b;
  for (int i = 1; i <= 100; ++i) a.observe(i / 100.0);
  for (int i = 1; i <= 100; ++i) b.observe(10.0 + i / 100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_DOUBLE_EQ(a.max(), 10.0 + 1.0);
  // The median sits at the boundary between the halves; the bucketed
  // estimate may land one log-spaced bucket (factor 10^0.1) above it.
  EXPECT_NEAR(a.percentile(50), 1.0, 0.3);
  EXPECT_GT(a.percentile(75), 10.0 * 0.9);        // upper half from b
}

TEST(MetricsRegistryTest, LabeledCountersAreIndependentInstruments) {
  MetricsRegistry registry;
  registry.counter("jobs", {{"site", "1"}}).inc(3);
  registry.counter("jobs", {{"site", "2"}}).inc(4);
  registry.counter("jobs").inc();  // unlabeled is its own instrument
  EXPECT_EQ(registry.counter("jobs", {{"site", "1"}}).value(), 3u);
  EXPECT_EQ(registry.counter("jobs", {{"site", "2"}}).value(), 4u);
  EXPECT_EQ(registry.counter_total("jobs"), 8u);
  EXPECT_EQ(registry.find_counter("jobs", {{"site", "3"}}), nullptr);
}

TEST(MetricsRegistryTest, MergeAddsCountersByLabelSet) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("jobs", {{"site", "1"}}).inc(2);
  b.counter("jobs", {{"site", "1"}}).inc(5);
  b.counter("jobs", {{"site", "2"}}).inc(1);
  b.gauge("depth", {{"site", "1"}}).set(4.0);
  a.gauge("depth", {{"site", "1"}}).set(9.0);
  b.histogram("lat").observe(1.0);
  a.merge(b);
  // Counters add per label set; missing sets are created.
  EXPECT_EQ(a.counter("jobs", {{"site", "1"}}).value(), 7u);
  EXPECT_EQ(a.counter("jobs", {{"site", "2"}}).value(), 1u);
  // Gauges keep the high-water mark.
  EXPECT_DOUBLE_EQ(a.gauge("depth", {{"site", "1"}}).value(), 9.0);
  // Histograms fold their moments in.
  EXPECT_EQ(a.histogram("lat").count(), 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndQueryable) {
  MetricsRegistry registry;
  registry.counter("z.last").inc();
  registry.counter("a.first", {{"k", "v"}}).inc(2);
  registry.histogram("m.hist").observe(0.5);
  const auto snap = registry.snapshot(SimTime::from_seconds(42));
  ASSERT_EQ(snap.samples.size(), 3u);
  EXPECT_EQ(snap.samples[0].name, "a.first");
  EXPECT_EQ(snap.samples[2].name, "z.last");
  const auto* sample = snap.find("a.first", {{"k", "v"}});
  ASSERT_NE(sample, nullptr);
  EXPECT_DOUBLE_EQ(sample->value, 2.0);
  EXPECT_FALSE(snap.to_jsonl().empty());
  EXPECT_FALSE(snap.render().empty());
}

// --------------------------------------------------------------- tracer ----

TEST(JobTracerTest, RecordsAndQueriesTypedEvents) {
  JobTracer tracer;
  const JobId job{7};
  tracer.record(SimTime::from_seconds(1), job, TraceEventKind::kSubmitted, "");
  tracer.record(SimTime::from_seconds(2), job, TraceEventKind::kMatched,
                "site 3", {{"site", "3"}});
  tracer.record(SimTime::from_seconds(3), JobId{8}, TraceEventKind::kSubmitted,
                "");
  EXPECT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.for_job(job).size(), 2u);
  EXPECT_EQ(tracer.count(TraceEventKind::kSubmitted), 2u);
  const auto* match = tracer.first(job, TraceEventKind::kMatched);
  ASSERT_NE(match, nullptr);
  ASSERT_NE(match->attrs.find("site"), nullptr);
  EXPECT_EQ(*match->attrs.find("site"), "3");
  EXPECT_EQ(tracer.first(job, TraceEventKind::kFailed), nullptr);
}

TEST(JobTracerTest, ExportsAreWellFormed) {
  JobTracer tracer;
  tracer.record(SimTime::from_seconds(1), JobId{1}, TraceEventKind::kSubmitted,
                "a \"quoted\" detail", {{"user", "u\\1"}});
  const std::string jsonl = tracer.to_jsonl();
  EXPECT_NE(jsonl.find("\"kind\":\"submitted\""), std::string::npos);
  EXPECT_NE(jsonl.find("\\\"quoted\\\""), std::string::npos);
  const std::string chrome = tracer.to_chrome_trace();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\""), std::string::npos);
}

// ------------------------------------------------- facade + determinism ----

/// A small grid run with one interactive job; returns the Grid's exports.
struct RunArtifacts {
  std::string trace_jsonl;
  std::string chrome;
  std::string metrics_jsonl;
  bool completed = false;
};

RunArtifacts run_instrumented_grid(std::uint64_t seed) {
  GridConfig config;
  config.sites = 2;
  config.nodes_per_site = 2;
  config.seed = seed;
  Grid grid{config};

  auto jd = jdl::JobDescription::parse(
      "Executable = \"viz\"; JobType = \"interactive\";");
  auto job = grid.submit(jd.value(), UserId{1}, lrms::Workload::cpu(60_s));
  EXPECT_TRUE(job.has_value());

  RunArtifacts artifacts;
  artifacts.completed = job && job->await().has_value();
  grid.run();
  artifacts.trace_jsonl = grid.export_trace_jsonl();
  artifacts.chrome = grid.export_chrome_trace();
  artifacts.metrics_jsonl = grid.metrics_snapshot().to_jsonl();
  return artifacts;
}

TEST(GridFacadeTest, JobLifecycleIsTraced) {
  GridConfig config;
  config.sites = 2;
  config.nodes_per_site = 2;
  Grid grid{config};
  auto jd = jdl::JobDescription::parse("Executable = \"app\";");
  auto job = grid.submit(jd.value(), UserId{1}, lrms::Workload::cpu(30_s));
  ASSERT_TRUE(job.has_value());
  // Live subscriptions, installed before virtual time runs: the per-job
  // handle filter plus a grid-wide kind subscription see the lifecycle as it
  // happens instead of scanning the tracer afterwards.
  int matched = 0;
  int completed_events = 0;
  job->on_event(TraceEventKind::kMatched,
                [&matched](const JobTraceEvent&) { ++matched; });
  const auto sub = grid.subscribe(
      TraceEventKind::kCompleted,
      [&completed_events](const JobTraceEvent&) { ++completed_events; });
  const auto done = job->await();
  ASSERT_TRUE(done.has_value()) << to_string(done.error().kind);
  EXPECT_EQ((*done)->state, broker::JobState::kCompleted);

  const auto events = job->trace();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, TraceEventKind::kSubmitted);
  EXPECT_GE(matched, 1);
  EXPECT_GE(completed_events, 1);
  grid.unsubscribe(sub);
  // The after-the-fact queries agree with what the subscriptions saw.
  EXPECT_NE(grid.tracer().first(job->id(), TraceEventKind::kMatched), nullptr);
  EXPECT_NE(grid.tracer().first(job->id(), TraceEventKind::kCompleted),
            nullptr);
  // Hot paths fed the registry along the way.
  EXPECT_GE(grid.metrics().counter_total("broker.jobs_submitted"), 1u);
  EXPECT_GE(grid.metrics().counter_total("broker.jobs_completed"), 1u);
  EXPECT_NE(grid.metrics().find_histogram(
                "broker.match_latency_s",
                {{"placement", to_string((*done)->placement)}}),
            nullptr);
}

TEST(GridFacadeTest, TypedRefusalForUnmatchableJob) {
  GridConfig config;
  config.sites = 1;
  config.nodes_per_site = 1;
  Grid grid{config};
  // Needs 4 nodes; the grid has 1: async no-match classified by await().
  auto jd = jdl::JobDescription::parse(
      "Executable = \"mpi\"; JobType = {\"interactive\", \"mpich-g2\"}; "
      "NodeNumber = 4;");
  auto job = grid.submit(jd.value(), UserId{1}, lrms::Workload::cpu(30_s));
  ASSERT_TRUE(job.has_value());
  const auto done = job->await();
  ASSERT_FALSE(done.has_value());
  EXPECT_EQ(done.error().kind, broker::SubmitErrorKind::kNoMatch);
}

TEST(ObsDeterminismTest, SameSeedRunsYieldByteIdenticalExports) {
  const RunArtifacts a = run_instrumented_grid(1234);
  const RunArtifacts b = run_instrumented_grid(1234);
  EXPECT_TRUE(a.completed);
  ASSERT_FALSE(a.trace_jsonl.empty());
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
  EXPECT_EQ(a.chrome, b.chrome);
  EXPECT_EQ(a.metrics_jsonl, b.metrics_jsonl);
}

// ----------------------------------- partition during fast streaming ------

/// The acceptance scenario: a 20 s link partition while an agent fast-streams
/// one frame per second. Returns the observability bundle's exports plus the
/// shadow counters.
struct PartitionRun {
  std::size_t shadow_frames_dropped = 0;
  std::size_t shadow_drop_reports = 0;
  std::size_t agent_frames_dropped = 0;
  std::string screen;
  std::string trace_jsonl;
  std::vector<obs::JobTraceEvent> drop_events;
  std::vector<obs::JobTraceEvent> reconnect_events;
  std::uint64_t dropped_counter = 0;
};

PartitionRun run_partitioned_fast_stream(std::uint64_t seed) {
  sim::Simulation sim;
  sim::Network network{Rng{seed}};
  network.add_link("ui", "wn", sim::LinkSpec::campus());

  sim::FaultInjector injector{sim, &network};
  sim::FaultPlan plan;
  plan.partition_link("ui", "wn", SimTime::from_seconds(5.0),
                      Duration::seconds(20));
  injector.arm(plan);

  obs::Observability obs;
  PartitionRun result;
  stream::GridConsoleConfig config;
  config.mode = jdl::StreamingMode::kFast;
  config.retry.retry_interval = 1_s;
  config.retry.max_retries = 60;
  config.obs = &obs;
  config.job = JobId{42};
  stream::GridConsole console{sim, network, config, "ui",
                              [&](std::string d) { result.screen += d; },
                              Rng{seed ^ 0x5a5a}};
  auto& agent = console.add_agent(0, "wn");
  for (int i = 0; i < 30; ++i) {
    sim.schedule(Duration::seconds(i), [&agent, i] {
      agent.write_stdout("tick " + std::to_string(i) + "\n");
    });
  }
  sim.run();

  result.shadow_frames_dropped = console.shadow().frames_dropped();
  result.shadow_drop_reports = console.shadow().drop_reports();
  result.agent_frames_dropped = agent.frames_dropped();
  result.trace_jsonl = obs.tracer.to_jsonl();
  result.drop_events = obs.tracer.of_kind(obs::TraceEventKind::kFrameDropped);
  result.reconnect_events =
      obs.tracer.of_kind(obs::TraceEventKind::kReconnected);
  result.dropped_counter = obs.metrics.counter_total("stream.frames_dropped");
  return result;
}

TEST(PartitionObservabilityTest, FastModeDropsAreCountedTracedAndReported) {
  const PartitionRun run = run_partitioned_fast_stream(11);

  // Frames written into the outage vanished — and were *counted*, on the
  // agent, on the shadow, in the registry, and in the trace.
  ASSERT_GT(run.agent_frames_dropped, 0u);
  EXPECT_EQ(run.shadow_frames_dropped, run.agent_frames_dropped);
  EXPECT_EQ(run.dropped_counter, run.agent_frames_dropped);
  EXPECT_EQ(run.drop_events.size(), run.agent_frames_dropped);

  // Recovery: the first delivery after the outage carried the drop report.
  ASSERT_GE(run.reconnect_events.size(), 1u);
  EXPECT_GE(run.shadow_drop_reports, 1u);

  // The trace tells the whole story in order: drops happen strictly inside
  // the outage, the reconnect strictly after it began.
  const SimTime partition_start = SimTime::from_seconds(5.0);
  const SimTime partition_end = partition_start + Duration::seconds(20);
  for (const auto& event : run.drop_events) {
    EXPECT_GE(event.when, partition_start);
    EXPECT_LE(event.when, partition_end + Duration::seconds(2));
    EXPECT_EQ(event.job, JobId{42});
  }
  EXPECT_GT(run.reconnect_events.front().when, partition_start);

  // Post-recovery frames still reached the screen.
  EXPECT_NE(run.screen.find("tick 29"), std::string::npos);

  // And the export shows it all without touching internals.
  EXPECT_NE(run.trace_jsonl.find("\"kind\":\"frame_dropped\""),
            std::string::npos);
  EXPECT_NE(run.trace_jsonl.find("\"kind\":\"reconnected\""),
            std::string::npos);
}

TEST(PartitionObservabilityTest, PartitionedRunExportIsDeterministic) {
  const PartitionRun a = run_partitioned_fast_stream(7);
  const PartitionRun b = run_partitioned_fast_stream(7);
  ASSERT_FALSE(a.trace_jsonl.empty());
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
  EXPECT_EQ(a.shadow_frames_dropped, b.shadow_frames_dropped);
}

}  // namespace
}  // namespace cg
