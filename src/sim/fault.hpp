// Deterministic fault injection for the simulated grid: a seeded,
// virtual-time schedule of failures (link partitions, latency degradation,
// node/agent crashes, spool I/O faults) armed onto a Simulation. The same
// plan on the same scenario reproduces the same event sequence bit for bit,
// which is what makes failure-recovery paths regression-testable.
//
// Layering: the injector manipulates the network model directly (it lives in
// sim/), but node, agent, and spool faults are delivered through registered
// handlers so this layer never depends on lrms/, glidein/, or interpose/.
// Tests and harnesses wire the handlers to the component under attack.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/disk.hpp"

#include "sim/network.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace cg::sim {

enum class FaultKind {
  kLinkPartition,  ///< link fully down for [at, at + duration)
  kLinkDegrade,    ///< extra one-way latency on a link while active
  kNodeCrash,      ///< worker-node failure; delivered to a handler
  kAgentCrash,     ///< glide-in agent (carrier) kill; delivered to a handler
  kAgentWedge,     ///< agent event loop stalls (link stays up); via handler
  kSpoolFail,      ///< spool I/O failure window; registered disk + handler
  // Message-level faults on the control-plane bus, filtered by message type
  // (`target`, "*" for all) and endpoint pair (empty endpoints match any).
  // Delivered through registered MessageFaultSinks (net::ControlBus).
  kMsgDrop,     ///< matching messages are silently discarded at send
  kMsgDup,      ///< matching messages are delivered twice
  kMsgReorder,  ///< matching messages are delayed past later traffic
};

[[nodiscard]] constexpr bool is_message_fault(FaultKind kind) {
  return kind == FaultKind::kMsgDrop || kind == FaultKind::kMsgDup ||
         kind == FaultKind::kMsgReorder;
}

[[nodiscard]] std::string_view to_string(FaultKind kind);

/// The victim-query DSL: fault targets may name their victim *indirectly*
/// ("whichever agent job 7 runs on") so plans stay declarative and the
/// resolution happens at fire time against live broker state. Grammar:
///
///   query := func "(" ref ")" | ref
///   func  := "agent_of" | "node_of"
///   ref   := ("job" | "agent") ":" <decimal id>
///
/// Examples: "agent_of(job:7)", "node_of(agent:2)", "node_of(job:7)",
/// "agent:3". Targets that do not parse are treated as opaque strings and
/// passed to handlers unchanged (the pre-DSL behaviour).
struct VictimQuery {
  enum class Fn { kNone, kAgentOf, kNodeOf };
  enum class Ref { kJob, kAgent };
  Fn fn = Fn::kNone;
  Ref ref = Ref::kJob;
  std::uint64_t id = 0;
};

[[nodiscard]] std::optional<VictimQuery> parse_victim_query(
    std::string_view text);

/// One scheduled fault. Link faults name the two endpoints; the other kinds
/// carry an opaque `target` string the registered handler interprets (a node
/// index, an agent id, a spool path — whatever the harness wired up).
struct FaultSpec {
  FaultKind kind = FaultKind::kLinkPartition;
  SimTime at;
  /// Zero means instantaneous (no recovery event is scheduled).
  Duration duration = Duration::zero();
  std::string endpoint_a;
  std::string endpoint_b;
  std::string target;
  Duration extra_latency = Duration::zero();  ///< kLinkDegrade only
};

/// A reproducible fault schedule: built explicitly by a scenario, or
/// generated from a seed for randomized-fault property tests.
class FaultPlan {
public:
  FaultPlan& partition_link(std::string a, std::string b, SimTime at,
                            Duration duration);
  FaultPlan& degrade_link(std::string a, std::string b, SimTime at,
                          Duration duration, Duration extra_latency);
  FaultPlan& crash_node(std::string target, SimTime at,
                        Duration down_for = Duration::zero());
  FaultPlan& crash_agent(std::string target, SimTime at);
  /// Stalls an agent's event loop for the window without touching its link:
  /// the process stops echoing liveness probes and accepting work while its
  /// residents keep running. The canonical "wedged but pingable" failure.
  FaultPlan& wedge_agent(std::string target, SimTime at, Duration duration);
  FaultPlan& fail_spool(std::string target, SimTime at, Duration duration);

  // Message-level faults on the control-plane bus. `type` names one message
  // type from the net catalog ("LivenessEcho", ...) or "*" for all; `a`/`b`
  // filter by endpoint pair (empty matches any endpoint). The window is
  // [at, at + duration).
  FaultPlan& drop_messages(std::string type, std::string a, std::string b,
                           SimTime at, Duration duration);
  FaultPlan& duplicate_messages(std::string type, std::string a, std::string b,
                                SimTime at, Duration duration);
  /// Delays matching messages by `delay` beyond their modelled latency, so
  /// under per-link FIFO they arrive after later-sent traffic.
  FaultPlan& reorder_messages(std::string type, std::string a, std::string b,
                              SimTime at, Duration duration, Duration delay);

  struct RandomLinkFaultOptions {
    std::string endpoint_a;
    std::string endpoint_b;
    int outages = 3;
    /// Outage start times are drawn uniformly from [0, horizon).
    SimTime horizon = SimTime::from_seconds(60.0);
    Duration min_outage = Duration::seconds(1);
    Duration max_outage = Duration::seconds(10);
  };

  /// Seeded schedule of link partitions on one link: the workhorse of the
  /// randomized-fault properties. The same seed yields the same plan.
  [[nodiscard]] static FaultPlan random_link_outages(
      std::uint64_t seed, const RandomLinkFaultOptions& options);

  [[nodiscard]] const std::vector<FaultSpec>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }

private:
  std::vector<FaultSpec> events_;
};

class FaultInjector;

/// Broker-free victim resolution: how kAgentCrash / kAgentWedge / kNodeCrash
/// faults find and hit their concrete victims. The `target` strings are the
/// FaultPlan's — victim-query DSL or opaque names — and each method returns
/// false when the target does not resolve against the harness's state (the
/// installed handlers log that and move on). broker::FaultBridge implements
/// this against live CrossBroker state for grid scenarios; pure stream tests
/// implement it over their hand-built console agents, so both layers declare
/// faults through the same FaultPlan DSL instead of wiring raw handlers.
class FaultVictimResolver {
public:
  virtual ~FaultVictimResolver() = default;
  /// Stalls (or unstalls) the victim agent's event loop.
  virtual bool set_agent_wedged(const std::string& target, bool wedged) = 0;
  /// Kills the victim agent (its carrier job, for glide-ins).
  virtual bool crash_agent(const std::string& target) = 0;
  /// Fails (or revives) the victim worker node.
  virtual bool set_node_failed(const std::string& target, bool failed) = 0;
};

/// How message-level faults (kMsgDrop / kMsgDup / kMsgReorder) reach the
/// control-plane bus without sim/ depending on net/: the bus implements this
/// interface and registers itself on the injector, which forwards each fire
/// and heal. The spec's `target` carries the message-type filter.
class MessageFaultSink {
public:
  virtual ~MessageFaultSink() = default;
  virtual void apply_message_fault(const FaultSpec& spec) = 0;
  virtual void clear_message_fault(const FaultSpec& spec) = 0;
};

/// Installs the canonical kAgentCrash / kAgentWedge / kNodeCrash handlers on
/// the injector, forwarding each fire/heal to the resolver (unresolved
/// targets are logged, not fatal). Replaces any handlers previously set for
/// those kinds. The resolver must outlive the injector's armed plans.
void install_victim_handlers(FaultInjector& injector,
                             FaultVictimResolver& resolver);

/// Arms a FaultPlan onto a simulation. Link faults are applied to the given
/// Network; the rest fire registered handlers at their scheduled times. The
/// injector records a virtual-time timeline of everything it did, whose
/// digest lets tests assert bit-for-bit reproducibility of a failure run.
class FaultInjector {
public:
  using Handler = std::function<void(const FaultSpec&)>;

  /// `network` may be null when the plan contains no link faults.
  explicit FaultInjector(Simulation& sim, Network* network = nullptr);

  /// Installs the delivery handlers for one fault kind. `on_fault` fires at
  /// spec.at; `on_recover` (optional) fires at spec.at + spec.duration.
  void set_handler(FaultKind kind, Handler on_fault, Handler on_recover = {});

  /// Registers every fault in the plan. Link partitions are written into the
  /// link's FailureSchedule immediately (the schedule is time-indexed);
  /// everything else is event-driven. May be called more than once.
  void arm(const FaultPlan& plan);

  /// Registers a spool disk under a name. A kSpoolFail whose target matches
  /// flips the disk unhealthy for the window — the fault fires through real
  /// sim state (appends fail at the DiskModel) instead of relying on a
  /// handler; any kSpoolFail handler still runs afterwards. The disk must
  /// outlive the injector (or be unregistered by registering nullptr).
  void register_disk(std::string name, DiskModel* disk);

  /// Registers a control-plane bus (or any sink) for message-level faults:
  /// every kMsgDrop / kMsgDup / kMsgReorder fire and heal is forwarded to
  /// each registered sink. The sink must outlive the injector's armed plans
  /// (or be unregistered).
  void register_message_sink(MessageFaultSink* sink);
  void unregister_message_sink(MessageFaultSink* sink);

  [[nodiscard]] std::size_t injected_faults() const { return injected_; }
  [[nodiscard]] std::size_t recoveries() const { return recovered_; }
  [[nodiscard]] const std::vector<std::string>& timeline() const {
    return timeline_;
  }
  /// One line per timeline entry; equal digests mean equal failure runs.
  [[nodiscard]] std::string timeline_digest() const;

private:
  void fire(const FaultSpec& spec);
  void heal(const FaultSpec& spec);
  void note(const std::string& entry);
  [[nodiscard]] Link* link_for(const FaultSpec& spec);

  struct Handlers {
    Handler on_fault;
    Handler on_recover;
  };

  Simulation& sim_;
  Network* network_;
  std::map<FaultKind, Handlers> handlers_;
  std::map<std::string, DiskModel*> disks_;
  std::vector<MessageFaultSink*> message_sinks_;
  std::vector<std::string> timeline_;
  std::size_t injected_ = 0;
  std::size_t recovered_ = 0;
};

}  // namespace cg::sim
