#include "interpose/wire.hpp"

#include <cstring>
#include <stdexcept>

namespace cg::interpose {

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kStdin: return "stdin";
    case FrameType::kStdout: return "stdout";
    case FrameType::kStderr: return "stderr";
    case FrameType::kEof: return "eof";
    case FrameType::kExit: return "exit";
  }
  return "?";
}

bool is_valid_frame_type(std::uint8_t raw) {
  return raw <= static_cast<std::uint8_t>(FrameType::kExit);
}

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>(v & 0xff));
}

std::uint32_t get_u32(const char* p) {
  return (static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3]));
}

}  // namespace

std::string encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    throw std::invalid_argument{"frame payload too large"};
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  out.push_back(static_cast<char>(frame.type));
  put_u32(out, frame.rank);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out += frame.payload;
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return std::nullopt;
  const char* p = buffer_.data() + consumed_;

  const auto raw_type = static_cast<std::uint8_t>(p[0]);
  if (!is_valid_frame_type(raw_type)) {
    throw std::runtime_error{"FrameDecoder: corrupt frame type " +
                             std::to_string(raw_type)};
  }
  const std::uint32_t rank = get_u32(p + 1);
  const std::uint32_t length = get_u32(p + 5);
  if (length > kMaxFramePayload) {
    throw std::runtime_error{"FrameDecoder: implausible frame length"};
  }
  if (available < kFrameHeaderBytes + length) return std::nullopt;

  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.rank = rank;
  frame.payload.assign(p + kFrameHeaderBytes, length);
  consumed_ += kFrameHeaderBytes + length;
  compact();
  return frame;
}

void FrameDecoder::compact() {
  // Reclaim consumed space once it dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

}  // namespace cg::interpose
