#include "infosys/site_record.hpp"

namespace cg::infosys {

jdl::ClassAd SiteRecord::to_classad() const {
  jdl::ClassAd ad;
  ad.set_string("Name", static_info.name);
  ad.set_string("Arch", static_info.arch);
  ad.set_string("OpSys", static_info.op_sys);
  ad.set_int("WorkerNodes", static_info.worker_nodes);
  ad.set_int("CpusPerNode", static_info.cpus_per_node);
  ad.set_int("TotalCPUs", static_info.total_cpus());
  ad.set_int("MemoryMB", static_info.memory_mb_per_node);
  ad.set_int("StorageGB", static_info.storage_gb);
  ad.set_int("FreeCPUs", dynamic_info.free_cpus);
  ad.set_int("RunningJobs", dynamic_info.running_jobs);
  ad.set_int("QueuedJobs", dynamic_info.queued_jobs);
  ad.set_int("FreeInteractiveVMs", dynamic_info.free_interactive_vms);
  return ad;
}

}  // namespace cg::infosys
