// Tests for the discrete-event engine, the network/failure models, and the
// disk model.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "sim/disk.hpp"
#include "sim/network.hpp"
#include "sim/simulation.hpp"

namespace cg::sim {
namespace {

using namespace cg::literals;

// ------------------------------------------------------------ simulation ----

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(3_s, [&] { order.push_back(3); });
  sim.schedule(1_s, [&] { order.push_back(1); });
  sim.schedule(2_s, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().to_seconds(), 3.0);
}

TEST(SimulationTest, EqualTimesFireInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(1_s, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulationTest, NestedSchedulingAdvancesClock) {
  Simulation sim;
  SimTime inner_time;
  sim.schedule(1_s, [&] {
    sim.schedule(2_s, [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_time.to_seconds(), 3.0);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const EventHandle h = sim.schedule(1_s, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(sim.cancel(h));  // double cancel is a no-op
}

TEST(SimulationTest, CancelAfterFireReturnsFalse) {
  Simulation sim;
  const EventHandle h = sim.schedule(1_s, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(h));
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  sim.schedule(1_s, [&] { ++fired; });
  sim.schedule(5_s, [&] { ++fired; });
  const std::size_t n = sim.run_until(SimTime::from_seconds(2.0));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().to_seconds(), 2.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, EventAtExactDeadlineRuns) {
  Simulation sim;
  bool fired = false;
  sim.schedule(2_s, [&] { fired = true; });
  sim.run_until(SimTime::from_seconds(2.0));
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, StepProcessesOne) {
  Simulation sim;
  int fired = 0;
  sim.schedule(1_s, [&] { ++fired; });
  sim.schedule(2_s, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation sim;
  sim.schedule(1_s, [&] {
    bool fired = false;
    sim.schedule(Duration::seconds(-5), [&] { fired = true; });
    // Fires later in the same instant, not in the past.
    EXPECT_FALSE(fired);
  });
  sim.run();
  EXPECT_EQ(sim.now().to_seconds(), 1.0);
}

TEST(SimulationTest, NullCallbackThrows) {
  Simulation sim;
  EXPECT_THROW(sim.schedule(1_s, nullptr), std::invalid_argument);
}

TEST(SimulationTest, PendingCountsExcludeCancelled) {
  Simulation sim;
  const EventHandle a = sim.schedule(1_s, [] {});
  sim.schedule(2_s, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_TRUE(sim.empty());
}

TEST(SimulationTest, DaemonEventsDoNotKeepRunAlive) {
  Simulation sim;
  int daemon_fires = 0;
  // A self-rescheduling daemon heartbeat (the information-system pattern).
  std::function<void()> heartbeat = [&] {
    ++daemon_fires;
    sim.schedule_daemon(10_s, heartbeat);
  };
  sim.schedule_daemon(10_s, heartbeat);
  bool user_fired = false;
  sim.schedule(25_s, [&] { user_fired = true; });

  sim.run();  // must terminate despite the endless daemon chain
  EXPECT_TRUE(user_fired);
  // Daemons at t=10 and t=20 ran before the last user event at t=25.
  EXPECT_EQ(daemon_fires, 2);
  EXPECT_EQ(sim.now().to_seconds(), 25.0);
}

TEST(SimulationTest, RunUntilProcessesDaemons) {
  Simulation sim;
  int daemon_fires = 0;
  std::function<void()> heartbeat = [&] {
    ++daemon_fires;
    sim.schedule_daemon(10_s, heartbeat);
  };
  sim.schedule_daemon(10_s, heartbeat);
  sim.run_until(SimTime::from_seconds(45));
  EXPECT_EQ(daemon_fires, 4);  // t = 10, 20, 30, 40
  EXPECT_EQ(sim.now().to_seconds(), 45.0);
}

TEST(SimulationTest, RunUntilAdvancesClockToDeadlineWhenIdle) {
  Simulation sim;
  sim.run_until(SimTime::from_seconds(7));
  EXPECT_EQ(sim.now().to_seconds(), 7.0);
}

TEST(SimulationTest, CancelledDaemonStops) {
  Simulation sim;
  bool fired = false;
  const EventHandle h = sim.schedule_daemon(1_s, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run_until(SimTime::from_seconds(5));
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CancellingDaemonUnblocksRunWithUserEventsLeft) {
  // A daemon that keeps rescheduling itself is cancelled mid-run: run()
  // finishes with the remaining user events and the daemon never fires again.
  Simulation sim;
  int daemon_fires = 0;
  EventHandle daemon;
  std::function<void()> tick = [&] {
    ++daemon_fires;
    daemon = sim.schedule_daemon(1_s, tick);
  };
  daemon = sim.schedule_daemon(1_s, tick);
  sim.schedule(Duration::seconds(3) + Duration::millis(500),
               [&] { EXPECT_TRUE(sim.cancel(daemon)); });
  sim.run();
  EXPECT_EQ(daemon_fires, 3);
  EXPECT_EQ(sim.now(), SimTime::zero() + Duration::seconds(3) +
                           Duration::millis(500));
}

TEST(SimulationTest, CancelFiredDaemonHandleReturnsFalse) {
  Simulation sim;
  const EventHandle h = sim.schedule_daemon(1_s, [] {});
  sim.schedule(2_s, [] {});  // keeps run() alive past the daemon event
  sim.run();
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(EventHandle{}));  // invalid handle is a no-op too
}

TEST(SimulationTest, NegativeDelayFiresAfterEventsAlreadyQueuedAtNow) {
  // The documented clamp ordering: a negative delay lands *at* now but
  // behind everything already queued for now (sequence order breaks ties).
  Simulation sim;
  std::vector<int> order;
  sim.schedule(1_s, [&] {
    sim.schedule(Duration::zero(), [&] { order.push_back(1); });
    sim.schedule(Duration::seconds(-5), [&] { order.push_back(2); });
    sim.schedule(Duration::zero(), [&] { order.push_back(3); });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::zero() + Duration::seconds(1));
}

TEST(ScopedTimerTest, CancelsOnDestruction) {
  Simulation sim;
  bool fired = false;
  {
    ScopedTimer timer{sim, sim.schedule(1_s, [&] { fired = true; })};
  }
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(ScopedTimerTest, RearmReplacesEvent) {
  Simulation sim;
  int which = 0;
  ScopedTimer timer{sim, sim.schedule(1_s, [&] { which = 1; })};
  timer.rearm(sim, sim.schedule(2_s, [&] { which = 2; }));
  sim.run();
  EXPECT_EQ(which, 2);
}

// -------------------------------------------------------------- network ----

TEST(FailureScheduleTest, WindowsAndQueries) {
  FailureSchedule f;
  f.add_outage(SimTime::from_seconds(10), SimTime::from_seconds(20));
  f.add_outage(SimTime::from_seconds(30), SimTime::from_seconds(40));
  EXPECT_FALSE(f.is_down(SimTime::from_seconds(5)));
  EXPECT_TRUE(f.is_down(SimTime::from_seconds(10)));
  EXPECT_TRUE(f.is_down(SimTime::from_seconds(19.999)));
  EXPECT_FALSE(f.is_down(SimTime::from_seconds(20)));  // [start, end)
  EXPECT_TRUE(f.is_down(SimTime::from_seconds(35)));

  EXPECT_EQ(f.next_up(SimTime::from_seconds(15)).to_seconds(), 20.0);
  EXPECT_EQ(f.next_up(SimTime::from_seconds(5)).to_seconds(), 5.0);
  ASSERT_TRUE(f.next_outage_after(SimTime::from_seconds(20)).has_value());
  EXPECT_EQ(f.next_outage_after(SimTime::from_seconds(20))->to_seconds(), 30.0);
  EXPECT_FALSE(f.next_outage_after(SimTime::from_seconds(40)).has_value());
}

TEST(FailureScheduleTest, OverlappingWindowsMerge) {
  FailureSchedule f;
  f.add_outage(SimTime::from_seconds(10), SimTime::from_seconds(20));
  f.add_outage(SimTime::from_seconds(15), SimTime::from_seconds(25));
  EXPECT_TRUE(f.is_down(SimTime::from_seconds(22)));
  EXPECT_EQ(f.next_up(SimTime::from_seconds(12)).to_seconds(), 25.0);
}

TEST(FailureScheduleTest, InvalidWindowThrows) {
  FailureSchedule f;
  EXPECT_THROW(f.add_outage(SimTime::from_seconds(5), SimTime::from_seconds(5)),
               std::invalid_argument);
}

TEST(LinkTest, NominalTransferLaw) {
  LinkSpec spec;
  spec.latency = 10_ms;
  spec.bandwidth_bytes_per_sec = 1e6;
  spec.jitter_stddev = Duration::zero();
  Link link{spec, Rng{1}};
  // 1 MB over 1 MB/s + 10 ms latency = 1.01 s.
  EXPECT_NEAR(link.nominal_transfer_duration(1'000'000).to_seconds(), 1.01, 1e-6);
  EXPECT_EQ(link.transfer_duration(1'000'000).to_seconds(),
            link.nominal_transfer_duration(1'000'000).to_seconds());
}

TEST(LinkTest, JitterOnlyAddsDelay) {
  LinkSpec spec = LinkSpec::campus();
  spec.jitter_stddev = 1_ms;
  Link link{spec, Rng{5}};
  const double nominal = link.nominal_transfer_duration(1000).to_seconds();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(link.transfer_duration(1000).to_seconds(), nominal);
  }
}

TEST(LinkTest, ProfilesAreOrdered) {
  // WAN must be slower than campus, which is slower than local.
  Link local{LinkSpec::local(), Rng{1}};
  Link campus{LinkSpec::campus(), Rng{2}};
  Link wan{LinkSpec::wan(), Rng{3}};
  const std::size_t bytes = 10'000;
  EXPECT_LT(local.nominal_transfer_duration(bytes).count_micros(),
            campus.nominal_transfer_duration(bytes).count_micros());
  EXPECT_LT(campus.nominal_transfer_duration(bytes).count_micros(),
            wan.nominal_transfer_duration(bytes).count_micros());
}

TEST(NetworkTest, SymmetricLinkLookup) {
  Network net{Rng{9}};
  net.add_link("a", "b", LinkSpec::wan());
  EXPECT_TRUE(net.has_link("a", "b"));
  EXPECT_TRUE(net.has_link("b", "a"));
  EXPECT_EQ(&net.link("a", "b"), &net.link("b", "a"));
  EXPECT_EQ(net.link("a", "b").spec().name, "wan");
}

TEST(NetworkTest, UnknownPairGetsLocalDefault) {
  Network net{Rng{9}};
  EXPECT_EQ(net.link("x", "y").spec().name, "local");
  EXPECT_FALSE(net.has_link("x", "y"));
}

// ----------------------------------------------------------------- disk ----

TEST(DiskModelTest, CostLaw) {
  DiskSpec spec;
  spec.op_overhead = 1_ms;
  spec.write_bandwidth_bytes_per_sec = 1e6;
  spec.read_bandwidth_bytes_per_sec = 2e6;
  const DiskModel disk{spec};
  EXPECT_NEAR(disk.write_duration(1'000'000).to_seconds(), 1.001, 1e-6);
  EXPECT_NEAR(disk.read_duration(1'000'000).to_seconds(), 0.501, 1e-6);
}

TEST(DiskModelTest, Bookkeeping) {
  DiskModel disk;
  disk.note_write(100);
  disk.note_write(200);
  disk.note_read(50);
  EXPECT_EQ(disk.bytes_written(), 300u);
  EXPECT_EQ(disk.bytes_read(), 50u);
  EXPECT_EQ(disk.write_ops(), 2u);
  EXPECT_EQ(disk.read_ops(), 1u);
}

// Property sweep: transfer duration is monotone in payload size for every
// link profile.
class LinkMonotoneTest : public ::testing::TestWithParam<LinkSpec> {};

TEST_P(LinkMonotoneTest, TransferMonotoneInSize) {
  Link link{GetParam(), Rng{42}};
  Duration prev = Duration::zero();
  for (std::size_t bytes = 1; bytes <= 1u << 20; bytes *= 4) {
    const Duration d = link.nominal_transfer_duration(bytes);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

INSTANTIATE_TEST_SUITE_P(Profiles, LinkMonotoneTest,
                         ::testing::Values(LinkSpec::local(), LinkSpec::campus(),
                                           LinkSpec::wan()),
                         [](const auto& param_info) { return param_info.param.name; });

}  // namespace
}  // namespace cg::sim
