#include "lrms/workload.hpp"

#include <stdexcept>

namespace cg::lrms {

Duration Workload::total_cpu() const {
  Duration total = Duration::zero();
  for (const auto& p : phases) {
    if (p.kind == PhaseKind::kCpu) total += p.base;
  }
  return total;
}

Duration Workload::total_io() const {
  Duration total = Duration::zero();
  for (const auto& p : phases) {
    if (p.kind == PhaseKind::kIo) total += p.base;
  }
  return total;
}

Workload Workload::cpu(Duration d) {
  if (d <= Duration::zero()) throw std::invalid_argument{"cpu workload must be positive"};
  Workload w;
  w.phases.push_back(Phase{PhaseKind::kCpu, d, 0});
  return w;
}

Workload Workload::iterative(int iterations, Duration io_op, Duration cpu_burst,
                             std::size_t io_bytes) {
  if (iterations <= 0) throw std::invalid_argument{"iterations must be positive"};
  Workload w;
  w.phases.reserve(static_cast<std::size_t>(iterations) * 2);
  for (int i = 0; i < iterations; ++i) {
    w.phases.push_back(Phase{PhaseKind::kIo, io_op, io_bytes});
    w.phases.push_back(Phase{PhaseKind::kCpu, cpu_burst, 0});
  }
  return w;
}

Workload Workload::bulk_synchronous(int supersteps, Duration cpu_burst) {
  if (supersteps <= 0) throw std::invalid_argument{"supersteps must be positive"};
  Workload w;
  w.phases.reserve(static_cast<std::size_t>(supersteps) * 2);
  for (int i = 0; i < supersteps; ++i) {
    w.phases.push_back(Phase{PhaseKind::kCpu, cpu_burst, 0});
    w.phases.push_back(Phase{PhaseKind::kBarrier, Duration::zero(), 0});
  }
  return w;
}

int Workload::barrier_count() const {
  int n = 0;
  for (const auto& p : phases) {
    if (p.kind == PhaseKind::kBarrier) ++n;
  }
  return n;
}

Workload Workload::manual() {
  return Workload{};
}

}  // namespace cg::lrms
