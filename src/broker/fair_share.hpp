// Fair-share accounting (Section 5.1). Each user carries a dynamic priority
//
//   P(u,t) = beta * P(u, t - dt) + (1 - beta) * a_f * r(u,t),
//   beta   = 0.5^(dt / h)        (h = half-life period)
//
// where r(u,t) is the normalized resource usage and a_f the application
// factor: 1 for batch jobs, (2 - PL/100) for interactive jobs, and PL/100
// for a batch job forced to yield its machine to an interactive one. Higher
// P means *worse* priority. Idle users decay back toward zero with
// half-life h ("the original number of credits will gradually be restored").
//
// Note: the paper prints the decay constant as "beta = 0.5*dt/h"; we read it
// as the standard exponential half-life form 0.5^(dt/h), which is the only
// interpretation under which priorities "gradually restore according to h".
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sim/simulation.hpp"
#include "util/ids.hpp"

namespace cg::broker {

struct FairShareConfig {
  /// Update period dt.
  Duration update_interval = Duration::seconds(10);
  /// Half-life h of the priority decay.
  Duration half_life = Duration::seconds(3600);
  /// Resources in the grid used to normalize r(u,t); set by the broker.
  int total_resources = 1;
};

/// Application factors (Section 5.1).
[[nodiscard]] double application_factor_batch();
[[nodiscard]] double application_factor_interactive(int performance_loss);
[[nodiscard]] double application_factor_yielding_batch(int performance_loss);

class FairShare {
public:
  FairShare(sim::Simulation& sim, FairShareConfig config);
  ~FairShare();
  FairShare(const FairShare&) = delete;
  FairShare& operator=(const FairShare&) = delete;

  /// Starts the periodic update loop (idempotent).
  void start();
  /// Stops the loop (tests; destruction also stops it).
  void stop();

  void set_total_resources(int total);

  /// Records a job consuming `nodes` resources with application factor `af`.
  void job_started(UserId user, JobId job, double af, int nodes);
  void job_finished(JobId job);

  /// Changes a running job's application factor (a batch job demoted to
  /// yield its machine gets af = PL/100, Section 5.1).
  void set_application_factor(JobId job, double af);

  /// Current priority (higher = worse). Unknown users have priority 0.
  [[nodiscard]] double priority(UserId user) const;

  /// Instantaneous weighted usage a_f * r for a user (before smoothing).
  [[nodiscard]] double instantaneous_usage(UserId user) const;

  /// Users ordered best (lowest P) to worst.
  [[nodiscard]] std::vector<UserId> users_by_priority() const;

  /// True if `user` has the strictly worst priority among all tracked users
  /// with any priority above `epsilon` (the rejection test used when
  /// resources run short).
  [[nodiscard]] bool is_worst(UserId user, double epsilon = 1e-9) const;

  [[nodiscard]] const FairShareConfig& config() const { return config_; }
  /// Applies one update step immediately (tests).
  void force_update();

private:
  struct RunningJob {
    UserId user;
    double af;
    int nodes;
  };

  void schedule_update();
  [[nodiscard]] double beta() const;

  sim::Simulation& sim_;
  FairShareConfig config_;
  std::map<UserId, double> priorities_;
  std::map<JobId, RunningJob> running_;
  bool started_ = false;
  sim::ScopedTimer timer_;
};

}  // namespace cg::broker
