#include "stream/flush_buffer.hpp"

#include <stdexcept>

namespace cg::stream {

const char* to_string(FlushReason reason) {
  switch (reason) {
    case FlushReason::kCapacity: return "capacity";
    case FlushReason::kNewline: return "newline";
    case FlushReason::kTimeout: return "timeout";
    case FlushReason::kExplicit: return "explicit";
  }
  return "?";
}

FlushBuffer::FlushBuffer(sim::Simulation& sim, FlushBufferConfig config,
                         FlushFn on_flush)
    : sim_{sim},
      config_{config},
      pool_{config.pool != nullptr ? config.pool : &ChunkPool::shared()},
      on_flush_{std::move(on_flush)} {
  if (config_.capacity == 0) throw std::invalid_argument{"capacity must be > 0"};
  if (!on_flush_) throw std::invalid_argument{"null flush callback"};
}

FlushBuffer::FlushBuffer(sim::Simulation& sim, FlushBufferConfig config,
                         StringFlushFn on_flush)
    : FlushBuffer{sim, config,
                  on_flush ? FlushFn{[fn = std::move(on_flush)](ChunkRef data) {
                    fn(data.to_string());
                  }}
                           : FlushFn{}} {}

FlushBuffer::~FlushBuffer() {
  if (chunk_ != nullptr) detail::chunk_unref(chunk_);
}

void FlushBuffer::set_metrics(obs::MetricsRegistry* metrics,
                              obs::LabelSet labels) {
  for (std::size_t i = 0; i < flush_counters_.size(); ++i) {
    if (metrics == nullptr) {
      flush_counters_[i] = obs::CounterHandle{};
      continue;
    }
    obs::LabelSet with_reason = labels;
    with_reason.set("reason", to_string(static_cast<FlushReason>(i)));
    flush_counters_[i] =
        metrics->counter_handle("stream.flushes", std::move(with_reason));
  }
}

void FlushBuffer::append(std::string_view data) {
  while (!data.empty()) {
    const std::size_t room = config_.capacity - buffered_;
    std::size_t take = std::min(room, data.size());

    // End-of-line trigger: cut the chunk at the first newline so the line
    // (including its '\n') goes out immediately.
    bool newline_flush = false;
    if (config_.flush_on_newline) {
      const std::size_t nl = data.substr(0, take).find('\n');
      if (nl != std::string_view::npos) {
        take = nl + 1;
        newline_flush = true;
      }
    }

    ensure_segment_chunk();
    std::memcpy(chunk_->data() + chunk_->write_pos, data.data(), take);
    chunk_->write_pos += static_cast<std::uint32_t>(take);
    buffered_ += take;
    data.remove_prefix(take);

    if (buffered_ >= config_.capacity || newline_flush) {
      emit(newline_flush ? FlushReason::kNewline : FlushReason::kCapacity);
    } else if (buffered_ != 0 && !timer_.armed()) {
      arm_timeout();
    }
  }
}

void FlushBuffer::ensure_segment_chunk() {
  // Mid-segment appends always fit: the segment reserved `capacity` bytes of
  // room when it opened, and a segment flushes before exceeding capacity.
  if (buffered_ > 0) return;
  if (chunk_ != nullptr &&
      chunk_->capacity - chunk_->write_pos >= config_.capacity) {
    seg_start_ = chunk_->write_pos;
    return;
  }
  detail::ChunkHeader* fresh =
      pool_->acquire(std::max(config_.capacity, pool_->slab_bytes()));
  if (chunk_ != nullptr) detail::chunk_unref(chunk_);
  chunk_ = fresh;
  seg_start_ = 0;
}

void FlushBuffer::flush() {
  if (buffered_ > 0) emit(FlushReason::kExplicit);
}

void FlushBuffer::arm_timeout() {
  timer_.rearm(sim_, sim_.schedule(config_.timeout, [this] {
    if (buffered_ > 0) emit(FlushReason::kTimeout);
  }));
}

void FlushBuffer::emit(FlushReason reason) {
  timer_.reset();
  ChunkRef out;
  if (buffered_ <= ChunkRef::kInlineCapacity) {
    // Tiny flushes (keystroke echoes, short lines) detach from the chunk so
    // a long-lived consumer cannot pin a whole slab for a few bytes.
    out = ChunkRef::copy_of(
        std::string_view{chunk_->data() + seg_start_, buffered_}, *pool_);
  } else {
    out = ChunkRef{chunk_, static_cast<std::uint32_t>(seg_start_),
                   static_cast<std::uint32_t>(buffered_)};
  }
  seg_start_ += buffered_;
  buffered_ = 0;
  ++flushes_;
  ++reason_counts_[static_cast<std::size_t>(reason)];
  flush_counters_[static_cast<std::size_t>(reason)].inc();
  on_flush_(std::move(out));
}

}  // namespace cg::stream
