#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/strings.hpp"

namespace cg::obs {

// ------------------------------------------------------------- LabelSet ----

LabelSet::LabelSet(
    std::initializer_list<std::pair<std::string, std::string>> labels) {
  for (const auto& [k, v] : labels) labels_.insert_or_assign(k, v);
}

void LabelSet::set(std::string key, std::string value) {
  labels_.insert_or_assign(std::move(key), std::move(value));
}

const std::string* LabelSet::find(const std::string& key) const {
  const auto it = labels_.find(key);
  return it != labels_.end() ? &it->second : nullptr;
}

std::string LabelSet::to_string() const {
  if (labels_.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels_) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += v;
    out += '"';
  }
  out += '}';
  return out;
}

// ------------------------------------------------------------ Histogram ----

Histogram::Histogram() : Histogram{Buckets{}} {}

Histogram::Histogram(Buckets buckets) : spec_{buckets} {
  if (spec_.count < 1) spec_.count = 1;
  if (spec_.min_value <= 0.0) spec_.min_value = 1e-9;
  if (spec_.max_value <= spec_.min_value) spec_.max_value = spec_.min_value * 10;
  log_min_ = std::log(spec_.min_value);
  log_width_ = (std::log(spec_.max_value) - log_min_) / spec_.count;
  buckets_.assign(static_cast<std::size_t>(spec_.count) + 2, 0);  // +under/over
}

std::size_t Histogram::bucket_index(double value) const {
  if (value < spec_.min_value) return 0;  // underflow bucket
  if (value >= spec_.max_value) return buckets_.size() - 1;  // overflow bucket
  const auto i =
      static_cast<std::size_t>((std::log(value) - log_min_) / log_width_);
  return std::min(i + 1, buckets_.size() - 2);
}

double Histogram::bucket_upper_bound(std::size_t index) const {
  if (index == 0) return spec_.min_value;
  if (index >= buckets_.size() - 1) return spec_.max_value;
  return std::exp(log_min_ + log_width_ * static_cast<double>(index));
}

void Histogram::observe(double value) {
  stats_.add(value);
  ++buckets_[bucket_index(value)];
}

double Histogram::percentile(double p) const {
  if (stats_.count() == 0) return 0.0;
  if (p <= 0.0) return stats_.min();
  if (p >= 100.0) return stats_.max();
  const double rank = p / 100.0 * static_cast<double>(stats_.count());
  double seen = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += static_cast<double>(buckets_[i]);
    if (seen >= rank) {
      // Clamp the bucket bound into the observed range so estimates never
      // step outside [min, max].
      return std::clamp(bucket_upper_bound(i), stats_.min(), stats_.max());
    }
  }
  return stats_.max();
}

void Histogram::merge(const Histogram& other) {
  stats_.merge(other.stats_);
  if (other.buckets_.size() == buckets_.size()) {
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  } else {
    // Differently-shaped histograms: re-bucket the other side's mass at its
    // mean (moments stay exact; percentiles become approximate).
    if (other.stats_.count() > 0) {
      buckets_[bucket_index(other.stats_.mean())] += other.stats_.count();
    }
  }
}

// ----------------------------------------------------------- MetricKind ----

std::string to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

// ------------------------------------------------------ MetricsSnapshot ----

const MetricSample* MetricsSnapshot::find(const std::string& name,
                                          const LabelSet& labels) const {
  for (const auto& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

double MetricsSnapshot::total(const std::string& name) const {
  double sum = 0.0;
  for (const auto& s : samples) {
    if (s.name == name) sum += s.value;
  }
  return sum;
}

std::string MetricsSnapshot::render() const {
  TablePrinter table{{"Metric", "Labels", "Kind", "Value", "Count", "Mean",
                      "p95", "Max"}};
  for (const auto& s : samples) {
    const bool hist = s.kind == MetricKind::kHistogram;
    table.add_row({s.name, s.labels.to_string(), obs::to_string(s.kind),
                   fmt_fixed(s.value, 3), std::to_string(s.count),
                   hist ? fmt_fixed(s.mean, 4) : "-",
                   hist ? fmt_fixed(s.p95, 4) : "-",
                   hist ? fmt_fixed(s.max, 4) : "-"});
  }
  return table.render();
}

namespace {

void append_json_labels(std::string& out, const LabelSet& labels) {
  out += '{';
  bool first = true;
  for (const auto& [k, v] : labels.entries()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(k);
    out += "\":\"";
    out += json_escape(v);
    out += '"';
  }
  out += '}';
}

std::string json_number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::string MetricsSnapshot::to_jsonl() const {
  std::string out;
  for (const auto& s : samples) {
    out += "{\"name\":\"" + json_escape(s.name) + "\",\"labels\":";
    append_json_labels(out, s.labels);
    out += ",\"kind\":\"" + obs::to_string(s.kind) + "\"";
    out += ",\"value\":" + json_number(s.value);
    out += ",\"count\":" + std::to_string(s.count);
    if (s.kind == MetricKind::kHistogram) {
      out += ",\"mean\":" + json_number(s.mean);
      out += ",\"p50\":" + json_number(s.p50);
      out += ",\"p95\":" + json_number(s.p95);
      out += ",\"max\":" + json_number(s.max);
    }
    out += "}\n";
  }
  return out;
}

// ------------------------------------------------------ MetricsRegistry ----

Counter& MetricsRegistry::counter(const std::string& name,
                                  const LabelSet& labels) {
  auto& slot = counters_[Key{name, labels}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const LabelSet& labels) {
  auto& slot = gauges_[Key{name, labels}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const LabelSet& labels,
                                      Histogram::Buckets buckets) {
  auto& slot = histograms_[Key{name, labels}];
  if (!slot) slot = std::make_unique<Histogram>(buckets);
  return *slot;
}

CounterHandle MetricsRegistry::counter_handle(std::string name,
                                              LabelSet labels) {
  handle_slots_.push_back(detail::HandleSlot{
      this, std::move(name), std::move(labels), {}, nullptr});
  return CounterHandle{&handle_slots_.back()};
}

GaugeHandle MetricsRegistry::gauge_handle(std::string name, LabelSet labels) {
  handle_slots_.push_back(detail::HandleSlot{
      this, std::move(name), std::move(labels), {}, nullptr});
  return GaugeHandle{&handle_slots_.back()};
}

HistogramHandle MetricsRegistry::histogram_handle(std::string name,
                                                  LabelSet labels,
                                                  Histogram::Buckets buckets) {
  handle_slots_.push_back(detail::HandleSlot{
      this, std::move(name), std::move(labels), buckets, nullptr});
  return HistogramHandle{&handle_slots_.back()};
}

void CounterHandle::materialize() {
  slot_->instrument = &slot_->owner->counter(slot_->name, slot_->labels);
}

void GaugeHandle::materialize() {
  slot_->instrument = &slot_->owner->gauge(slot_->name, slot_->labels);
}

void HistogramHandle::materialize() {
  slot_->instrument =
      &slot_->owner->histogram(slot_->name, slot_->labels, slot_->buckets);
}

const Counter* MetricsRegistry::find_counter(const std::string& name,
                                             const LabelSet& labels) const {
  const auto it = counters_.find(Key{name, labels});
  return it != counters_.end() ? it->second.get() : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name,
                                         const LabelSet& labels) const {
  const auto it = gauges_.find(Key{name, labels});
  return it != gauges_.end() ? it->second.get() : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name,
                                                 const LabelSet& labels) const {
  const auto it = histograms_.find(Key{name, labels});
  return it != histograms_.end() ? it->second.get() : nullptr;
}

std::uint64_t MetricsRegistry::counter_total(const std::string& name) const {
  std::uint64_t total = 0;
  for (const auto& [key, c] : counters_) {
    if (key.first == name) total += c->value();
  }
  return total;
}

MetricsSnapshot MetricsRegistry::snapshot(SimTime now) const {
  MetricsSnapshot snap;
  snap.taken_at = now;
  snap.samples.reserve(instrument_count());
  for (const auto& [key, c] : counters_) {
    MetricSample s;
    s.name = key.first;
    s.labels = key.second;
    s.kind = MetricKind::kCounter;
    s.value = static_cast<double>(c->value());
    s.count = c->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [key, g] : gauges_) {
    MetricSample s;
    s.name = key.first;
    s.labels = key.second;
    s.kind = MetricKind::kGauge;
    s.value = g->value();
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [key, h] : histograms_) {
    MetricSample s;
    s.name = key.first;
    s.labels = key.second;
    s.kind = MetricKind::kHistogram;
    s.value = h->sum();
    s.count = h->count();
    s.mean = h->mean();
    s.p50 = h->percentile(50);
    s.p95 = h->percentile(95);
    s.max = h->max();
    snap.samples.push_back(std::move(s));
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return snap;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [key, c] : other.counters_) {
    counter(key.first, key.second).merge(*c);
  }
  for (const auto& [key, g] : other.gauges_) {
    gauge(key.first, key.second).merge(*g);
  }
  for (const auto& [key, h] : other.histograms_) {
    histogram(key.first, key.second).merge(*h);
  }
}

std::size_t MetricsRegistry::instrument_count() const {
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace cg::obs
