// Reliable streaming endpoint (Section 4): every message is spooled to local
// disk before transmission; failed sends stay in the spool and are retried
// at a fixed interval "for a certain number of times, after which they give
// up and kill the process". Delivery order is preserved across failures.
#pragma once

#include <deque>
#include <functional>

#include "obs/metrics.hpp"
#include "stream/channel_model.hpp"
#include "stream/spool.hpp"

namespace cg::stream {

struct RetryPolicy {
  Duration retry_interval = Duration::seconds(5);
  int max_retries = 12;  ///< consecutive failed attempts before giving up
  /// Cap on un-acknowledged spooled bytes (0 = unlimited). A full spool
  /// rejects appends; they are retried on the same interval/budget as a
  /// failing link.
  std::size_t spool_capacity_bytes = 0;
};

class ReliableChannel {
public:
  using DeliverFn = std::function<void(std::size_t bytes)>;
  /// Fires once when the channel exhausts its retries (the paper's response:
  /// kill the process).
  using GiveUpFn = std::function<void()>;
  /// Fires once per message whose first spool append was rejected (disk
  /// fault or full spool); the message stays queued and keeps retrying.
  using SpoolRejectFn = std::function<void(std::size_t bytes)>;

  /// `sender_disk` spools outgoing messages before transmission;
  /// `receiver_disk` (optional) models the other end's intermediate file —
  /// when present, delivery callbacks fire only after the receive-side write.
  ReliableChannel(sim::Simulation& sim, SimChannel& channel,
                  sim::DiskModel& sender_disk,
                  sim::DiskModel* receiver_disk = nullptr, RetryPolicy policy = {});
  ~ReliableChannel();
  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Queues a message. It is spooled to disk (cost charged) and transmitted
  /// as soon as all earlier messages have been delivered. A rejected append
  /// (unhealthy disk, full spool) leaves the message queued in memory; the
  /// append is retried on the retry interval and counts against the same
  /// budget as a failing link — nothing transmits before it is spooled.
  void send(std::size_t bytes, DeliverFn on_deliver);

  void set_give_up_handler(GiveUpFn fn) { on_give_up_ = std::move(fn); }
  void set_spool_reject_handler(SpoolRejectFn fn) {
    on_spool_reject_ = std::move(fn);
  }

  /// Attaches a metrics registry: bytes spooled, retry and reconnect
  /// counters on top of `labels`. Must outlive the channel (or be detached
  /// with nullptr).
  void set_metrics(obs::MetricsRegistry* metrics, obs::LabelSet labels = {});

  [[nodiscard]] bool gave_up() const { return gave_up_; }
  [[nodiscard]] std::size_t in_flight_or_queued() const { return queue_.size(); }
  [[nodiscard]] const Spool& spool() const { return spool_; }
  [[nodiscard]] int consecutive_failures() const { return failures_; }
  [[nodiscard]] std::size_t retries_performed() const { return retries_; }
  /// Append attempts the spool rejected (every attempt, retries included).
  [[nodiscard]] std::size_t spool_rejections() const {
    return spool_.rejected_appends();
  }

private:
  struct Entry {
    std::size_t bytes;
    DeliverFn on_deliver;
    bool recovered_from_disk = false;
    bool spooled = false;          ///< on disk; only spooled entries transmit
    bool reject_reported = false;  ///< on_spool_reject fired for this entry
  };

  /// Appends every not-yet-spooled entry in FIFO order (the spool is one
  /// sequential file) and starts transmission when the head is on disk.
  void pump_appends();
  void on_append_rejected(Entry& entry);
  void transmit_head(Duration extra_delay);
  void on_head_delivered();
  void on_head_failed();

  sim::Simulation& sim_;
  SimChannel& channel_;
  Spool spool_;
  sim::DiskModel* receiver_disk_;
  RetryPolicy policy_;
  GiveUpFn on_give_up_;
  SpoolRejectFn on_spool_reject_;

  std::deque<Entry> queue_;
  bool transmitting_ = false;
  bool gave_up_ = false;
  int failures_ = 0;
  int spool_failures_ = 0;  ///< consecutive rejected appends
  std::size_t retries_ = 0;
  sim::ScopedTimer retry_timer_;
  sim::ScopedTimer spool_retry_timer_;
  std::uint64_t epoch_ = 0;  ///< invalidates in-flight callbacks on teardown
  /// Pre-resolved handles (bound once in set_metrics, inert when detached):
  /// spooling and retry accounting sit on the per-chunk transmit path.
  struct MetricHandles {
    obs::CounterHandle bytes_spooled;
    obs::CounterHandle spool_rejects;
    obs::CounterHandle reconnects;
    obs::CounterHandle retries;
  };
  MetricHandles metrics_;
};

}  // namespace cg::stream
