// Wire protocol between a real Console Agent and Console Shadow: length-
// prefixed frames over a byte stream.
//
//   [u8 type][u32 rank (big-endian)][u32 length (big-endian)][payload]
//
// kHello announces an agent (rank in header, empty payload); kStdin flows
// shadow -> agent; kStdout/kStderr flow agent -> shadow; kEof marks a closed
// stream; kExit carries the child's wait status as a decimal string.
//
// The hot path is zero-copy in both directions: encode_frame_header writes
// the 9 header bytes into caller scratch so the payload can be sent from
// wherever it already lives, and the decoder's begin/next_view/end session
// yields FrameViews that borrow the receive buffer — only frames that
// straddle a read boundary copy (and only the bytes they still need). The
// owning Frame/encode_frame/next API remains as a compatibility shim.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cg::interpose {

enum class FrameType : std::uint8_t {
  kHello = 0,
  kStdin = 1,
  kStdout = 2,
  kStderr = 3,
  kEof = 4,
  kExit = 5,
};

[[nodiscard]] const char* to_string(FrameType type);
[[nodiscard]] bool is_valid_frame_type(std::uint8_t raw);

struct Frame {
  FrameType type = FrameType::kStdout;
  std::uint32_t rank = 0;
  std::string payload;

  [[nodiscard]] bool operator==(const Frame&) const = default;
};

/// A decoded frame whose payload borrows the decoder's current input; valid
/// until the next decoder call. Copy via to_frame() to retain.
struct FrameView {
  FrameType type = FrameType::kStdout;
  std::uint32_t rank = 0;
  std::string_view payload;

  [[nodiscard]] Frame to_frame() const {
    return Frame{type, rank, std::string{payload}};
  }
};

/// Fixed header size on the wire.
inline constexpr std::size_t kFrameHeaderBytes = 1 + 4 + 4;
/// Upper bound on a frame payload (sanity check against stream corruption).
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

/// Writes the 9-byte header into `out` (caller scratch of at least
/// kFrameHeaderBytes); the payload itself is transmitted from wherever it
/// already lives. Throws std::invalid_argument on an oversized payload.
void encode_frame_header(char* out, FrameType type, std::uint32_t rank,
                         std::size_t payload_size);

/// Appends one encoded frame to `out` (clears it first, reusing capacity —
/// the replay path encodes many frames through one scratch string).
void encode_frame_into(std::string& out, FrameType type, std::uint32_t rank,
                       std::string_view payload);

/// Serializes a frame into a fresh string (compatibility shim).
[[nodiscard]] std::string encode_frame(const Frame& frame);

/// Incremental decoder. Two ways to drive it:
///
///  - Zero-copy sessions: begin(span) → next_view() until nullopt → end().
///    Frames wholly inside the span are yielded as borrowed views; a frame
///    that straddles session boundaries is completed in the internal stash,
///    copying only the bytes it needs. end() stashes the unconsumed tail.
///  - Owning shim: feed(bytes), then next() for materialized Frames.
///
/// Throws std::runtime_error on a corrupt header (bad type byte or
/// implausible length), from whichever call first sees the full header.
class FrameDecoder {
public:
  /// Starts a decode session over a borrowed span. The span must stay valid
  /// until end(); any previous session must have been ended.
  void begin(const char* data, std::size_t size);
  void begin(std::string_view data) { begin(data.data(), data.size()); }

  /// Next complete frame, or nullopt when the remaining bytes are partial.
  /// The view borrows the session span (or the stash) until the next call.
  [[nodiscard]] std::optional<FrameView> next_view();

  /// Ends the session: the unconsumed tail of the span is copied into the
  /// stash so the next session can complete the straddling frame.
  void end();

  /// Appends raw bytes to the stash (owning shim).
  void feed(const char* data, std::size_t size);
  void feed(std::string_view data) { feed(data.data(), data.size()); }

  /// Extracts the next complete frame, if any (owning shim). Returns nullopt
  /// when more bytes are needed.
  [[nodiscard]] std::optional<Frame> next();

  [[nodiscard]] std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

private:
  struct Header {
    FrameType type;
    std::uint32_t rank;
    std::uint32_t length;
  };
  [[nodiscard]] static Header parse_header(const char* p);
  /// Moves up to `need` unread session bytes into the stash.
  void stash_from_session(std::size_t need);
  void compact();

  std::string buffer_;        ///< stash: bytes owned by the decoder
  std::size_t consumed_ = 0;  ///< consumed prefix of the stash
  const char* ext_ = nullptr;  ///< borrowed span of the active session
  std::size_t ext_size_ = 0;
  std::size_t ext_pos_ = 0;
};

}  // namespace cg::interpose
