// steerable_app: a stand-in for the paper's interactive CrossGrid
// applications (medical simulation, air-pollution model, HEP visualizer).
// It iterates a "simulation", prints progress to stdout, and accepts
// steering commands on stdin — completely unaware that a Console Agent may
// be trapping its stdio. Run it directly, or under split execution:
//
//   $ ./steerable_app 20
//   $ ./realtime_console -- ./steerable_app 50
//
// Commands (one per line on stdin):
//   rate <float>    change the simulated work per step
//   status          print the current state immediately
//   stop            finish early
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace {

/// Burns a deterministic amount of CPU (no sleeping: the point is to look
/// like a compute-bound simulation step).
double burn(double iterations) {
  double acc = 0.0;
  for (long i = 0; i < static_cast<long>(iterations); ++i) {
    acc += std::sin(static_cast<double>(i) * 1e-3);
  }
  return acc;
}

/// Non-blocking-ish line read: returns false when stdin is exhausted.
bool poll_command(std::string& line) {
  // Check stdin readability without blocking the simulation loop.
  fd_set set;
  FD_ZERO(&set);
  FD_SET(STDIN_FILENO, &set);
  timeval tv{0, 0};
  if (::select(STDIN_FILENO + 1, &set, nullptr, nullptr, &tv) <= 0) return false;
  return static_cast<bool>(std::getline(std::cin, line));
}

}  // namespace

int main(int argc, char** argv) {
  const int steps = argc > 1 ? std::atoi(argv[1]) : 20;
  if (steps <= 0) {
    std::cerr << "usage: steerable_app [steps]\n";
    return 2;
  }
  double rate = 1.0;
  double energy = 0.0;
  std::cout << "steerable_app: starting " << steps << " steps\n" << std::flush;

  for (int step = 1; step <= steps; ++step) {
    energy += burn(50000.0 * rate);

    std::string line;
    while (poll_command(line)) {
      std::istringstream parser{line};
      std::string command;
      parser >> command;
      if (command == "rate") {
        double new_rate = 0.0;
        if (parser >> new_rate && new_rate > 0.0) {
          rate = new_rate;
          std::cout << "steering: rate set to " << rate << "\n" << std::flush;
        } else {
          std::cerr << "steering: bad rate\n";
        }
      } else if (command == "status") {
        std::cout << "status: step " << step << "/" << steps << ", energy "
                  << energy << "\n"
                  << std::flush;
      } else if (command == "stop") {
        std::cout << "steering: stop requested at step " << step << "\n"
                  << std::flush;
        std::cout << "steerable_app: done (energy " << energy << ")\n";
        return 0;
      } else if (!command.empty()) {
        std::cerr << "steering: unknown command '" << command << "'\n";
      }
    }

    if (step % 5 == 0 || step == steps) {
      std::cout << "progress: step " << step << "/" << steps << "\n"
                << std::flush;
    }
  }
  std::cout << "steerable_app: done (energy " << energy << ")\n";
  return 0;
}
