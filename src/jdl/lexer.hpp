// Tokenizer for the Job Description Language (ClassAd-style syntax used by
// the EU DataGrid / CrossGrid JDL, see Figure 2 of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/expected.hpp"

namespace cg::jdl {

enum class TokenKind {
  kIdent,
  kInt,
  kReal,
  kString,
  kBoolTrue,
  kBoolFalse,
  kUndefined,
  kAssign,      // =
  kSemicolon,   // ;
  kComma,       // ,
  kDot,         // .
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kBang,        // !
  kAndAnd,
  kOrOr,
  kEq,          // ==
  kNe,          // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kQuestion,    // ?
  kColon,       // :
  kEnd,
};

[[nodiscard]] std::string_view to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;          ///< identifier or string contents
  std::int64_t int_value = 0;
  double real_value = 0.0;
  std::size_t line = 1;      ///< 1-based source line, for error messages
  std::size_t column = 1;
};

/// Tokenizes JDL source. Comments: `//` and `#` to end of line, `/* */`.
/// Keywords `true`/`false`/`undefined` are case-insensitive, like ClassAds.
[[nodiscard]] Expected<std::vector<Token>> tokenize(std::string_view source);

}  // namespace cg::jdl
