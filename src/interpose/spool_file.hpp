// Disk-backed frame spool for the real reliable mode: outgoing frames are
// appended to a file before transmission; a read cursor tracks what has been
// acknowledged. After a connection failure, unsent frames are replayed from
// the file, surviving even an agent restart.
#pragma once

#include <cstdio>
#include <mutex>
#include <optional>
#include <string>

#include "interpose/wire.hpp"
#include "util/expected.hpp"

namespace cg::interpose {

class SpoolFile {
public:
  /// Opens (creating or appending to) the spool at `path`. An existing spool
  /// resumes from its persisted cursor side-file (`path` + ".cursor").
  [[nodiscard]] static Expected<SpoolFile> open(std::string path);

  SpoolFile(SpoolFile&& other) noexcept;
  SpoolFile& operator=(SpoolFile&& other) noexcept;
  ~SpoolFile();
  SpoolFile(const SpoolFile&) = delete;
  SpoolFile& operator=(const SpoolFile&) = delete;

  /// Appends a frame (stack-encoded header + payload written straight from
  /// the caller's buffer) and flushes it to the OS. Thread-safe.
  [[nodiscard]] Status append(FrameType type, std::uint32_t rank,
                              std::string_view payload);
  [[nodiscard]] Status append(const Frame& frame) {
    return append(frame.type, frame.rank, frame.payload);
  }

  /// Reads the frame at the cursor without advancing. nullopt when drained.
  [[nodiscard]] std::optional<Frame> peek();

  /// Advances the cursor past the frame returned by the last peek() and
  /// persists the new position.
  [[nodiscard]] Status advance();

  /// Frames remaining between cursor and end of file.
  [[nodiscard]] std::size_t pending() const;

  /// Deletes the spool files from disk (called on clean shutdown).
  void remove_files();

  /// Fault injection (tests): while set, append() fails as if the disk
  /// returned an I/O error. Reads and cursor persistence are unaffected.
  void set_fail_appends(bool fail);

  [[nodiscard]] const std::string& path() const { return path_; }

private:
  SpoolFile(std::string path, std::FILE* file, long cursor);
  void persist_cursor();
  void close();

  std::string path_;
  std::FILE* file_ = nullptr;
  long cursor_ = 0;        ///< byte offset of the next unacknowledged frame
  long last_peek_size_ = 0;
  bool fail_appends_ = false;  ///< injected disk fault
  mutable std::mutex mutex_;
};

}  // namespace cg::interpose
