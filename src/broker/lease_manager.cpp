#include "broker/lease_manager.hpp"

namespace cg::broker {

LeaseManager::~LeaseManager() {
  for (auto& [id, lease] : leases_) {
    if (lease.expiry.valid()) sim_.cancel(lease.expiry);
  }
}

Expected<LeaseId> LeaseManager::acquire(SiteId site, int cpus, Duration ttl,
                                        int site_capacity) {
  if (!site.valid() || cpus < 1 || ttl <= Duration::zero()) {
    return make_error("broker.lease_invalid",
                      "lease needs a valid site, cpus >= 1, positive ttl");
  }
  if (site_capacity >= 0 && leased_cpus(site) + cpus > site_capacity) {
    return make_error("broker.lease_conflict",
                      "site " + std::to_string(site.value()) + " has " +
                          std::to_string(leased_cpus(site)) + "/" +
                          std::to_string(site_capacity) +
                          " CPUs under lease; " + std::to_string(cpus) +
                          " more would over-commit");
  }
  const LeaseId id = ids_.next();
  const sim::EventHandle expiry = sim_.schedule(ttl, [this, id] {
    const auto it = leases_.find(id);
    if (it == leases_.end()) return;
    const SiteId expired_site = it->second.site;
    const int expired_cpus = it->second.cpus;
    leases_.erase(it);
    account(expired_site, -expired_cpus);
  });
  leases_.emplace(id, Lease{site, cpus, expiry});
  account(site, cpus);
  return id;
}

bool LeaseManager::release(LeaseId id) {
  const auto it = leases_.find(id);
  if (it == leases_.end()) return false;
  if (it->second.expiry.valid()) sim_.cancel(it->second.expiry);
  const SiteId site = it->second.site;
  const int cpus = it->second.cpus;
  leases_.erase(it);
  account(site, -cpus);
  return true;
}

int LeaseManager::leased_cpus(SiteId site) const {
  const auto it = by_site_.find(site);
  return it != by_site_.end() ? it->second : 0;
}

void LeaseManager::account(SiteId site, int cpu_delta) {
  const auto it = by_site_.try_emplace(site, 0).first;
  it->second += cpu_delta;
  if (it->second <= 0) by_site_.erase(it);
  notify(site, cpu_delta);
}

}  // namespace cg::broker
