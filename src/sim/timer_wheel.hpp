// Hierarchical timer wheel: the event engine's primary lane. Every event
// whose deadline fits the horizon — user callbacks and periodic daemon work
// alike — files here in O(1); four levels of 64 slots at a 64 µs tick cover
// ~18 min of virtual time (longer deadlines take the engine's exact heap
// lane), and per-level occupancy bitmasks make finding the next occupied
// window a couple of bit scans (the result is cached, so the engine's
// per-pop bound check is one compare).
//
// The wheel does not fire events itself and it never reorders them: entries
// keep their exact (when, seq) and are *drained* window by window, strictly
// before the engine pops anything at or past the window's start — level-0
// windows hand their entries to the engine's sorted due buffer, upper-level
// windows cascade into lower levels on the way down. The engine therefore
// sees one totally-ordered event stream whatever lane an event travelled —
// determinism (same seed ⇒ same digests) is preserved by construction. See
// docs/performance.md.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cg::sim {

class TimerWheel {
public:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 6;  ///< 64 slots per level
  static constexpr int kSlotsPerLevel = 1 << kSlotBits;
  /// Tick granularity: 2^6 us. Power of two keeps the slot math shift-only,
  /// and a small tick keeps level-0 windows small — the engine sorts each
  /// drained window, so the tick bounds both the sort size and the bits a
  /// packed due-key needs for the in-window offset. Horizon: 64^4 ticks
  /// ~= 18 minutes of virtual time; later deadlines use the heap lane.
  static constexpr int kTickShift = 6;

  /// Grows per-entry link storage to cover slab indices < `capacity`.
  void ensure_capacity(std::size_t capacity) {
    if (entries_.size() < capacity) entries_.resize(capacity);
  }

  /// Files slab entry `idx` (firing at `when_us`, engine sequence `seq`)
  /// into the wheel. Returns false when the wheel cannot hold it — the tick
  /// already drained or the deadline is past the horizon — and the caller
  /// keeps it in the heap. The (when, seq) key rides the wheel entry so
  /// draining never has to chase the slab. Defined inline: this is the
  /// engine's per-schedule fast path.
  bool insert(std::uint32_t idx, std::int64_t when_us, std::uint64_t seq) {
    const std::int64_t tick = when_us >> kTickShift;
    if (tick < base_tick_) return false;  // window already drained
    // File at the lowest level whose parent digit matches the cursor's.
    // This is stricter than "delta fits the level's span": it guarantees
    // the slot lies within one lap *ahead* of the cursor, so the
    // occupancy-mask rotate in earliest() is exact and a cascade always
    // re-files strictly lower. (A span-based rule admits entries exactly
    // one lap ahead on the cursor's own slot — earliest() would then
    // report a stale window and the cascade would re-file the entry in
    // place, looping forever.) "Lowest level whose parent digit matches"
    // == floor(h / kSlotBits) where h is the highest bit in which tick and
    // the cursor differ — one bit scan instead of a per-level loop.
    const auto diff = static_cast<std::uint64_t>(tick ^ base_tick_);
    const int level =
        diff == 0 ? 0 : (63 - std::countl_zero(diff)) / kSlotBits;
    if (level >= kLevels) return false;  // beyond the horizon
    const std::uint32_t slot =
        static_cast<std::uint32_t>(tick >> (kSlotBits * level)) &
        (kSlotsPerLevel - 1);
    Entry& e = entries_[idx];
    e.when_us = when_us;
    e.seq = seq;
    e.level = static_cast<std::uint8_t>(level);
    e.slot = static_cast<std::uint8_t>(slot);
    e.prev = kNil;
    e.next = heads_[static_cast<std::size_t>(level)][slot];
    if (e.next != kNil) entries_[e.next].prev = idx;
    heads_[static_cast<std::size_t>(level)][slot] = idx;
    occupied_[static_cast<std::size_t>(level)] |= 1ULL << slot;
    e.linked = true;
    ++size_;
    // Keep the cached earliest-window pick exact: a strictly earlier start
    // takes over, and on an equal start the higher level wins — mirroring
    // earliest()'s highest-level-first scan, so a drain cascades
    // upper-level entries before any level-0 window at the same start
    // fires.
    const std::int64_t window_tick =
        (tick >> (kSlotBits * level)) << (kSlotBits * level);
    std::int64_t start_tick = window_tick;
    if (start_tick < base_tick_) start_tick = base_tick_;
    const std::int64_t start_us = start_tick << kTickShift;
    if (start_us < next_start_us_ ||
        (start_us == next_start_us_ && level > next_level_)) {
      next_start_us_ = start_us;
      next_window_tick_ = window_tick;
      next_level_ = level;
    }
    return true;
  }

  /// Unlinks a pending entry (O(1)); false if it is not in the wheel.
  bool remove(std::uint32_t idx);

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Start (in us) of the earliest occupied slot window: a lower bound on
  /// every pending entry's `when`. INT64_MAX when empty. The engine drains
  /// while this bound does not exceed its next queued event. Cached: insert
  /// min-updates it, remove and drain recompute it.
  [[nodiscard]] std::int64_t next_window_start_us() const {
    return size_ == 0 ? kNoWindow : next_start_us_;
  }

  /// Drains the earliest occupied window: level-0 entries are handed to
  /// `push_due(idx, when_us, seq)` (they fire next, in window-sorted
  /// order); upper-level windows cascade into lower levels, and entries
  /// that no longer fit — window already reached — go to `push_heap(idx)`.
  /// Precondition: !empty().
  template <typename PushDue, typename PushHeap>
  void drain_earliest(PushDue&& push_due, PushHeap&& push_heap) {
    // The earliest window (level and tick, not just its start) is cached by
    // insert/remove/recompute, so entering a drain costs no bit scan.
    const int level = next_level_;
    const std::int64_t window_tick = next_window_tick_;
    const std::uint32_t slot =
        static_cast<std::uint32_t>(window_tick >> (kSlotBits * level)) &
        (kSlotsPerLevel - 1);
    std::uint32_t idx = heads_[static_cast<std::size_t>(level)][slot];
    heads_[static_cast<std::size_t>(level)][slot] = kNil;
    occupied_[static_cast<std::size_t>(level)] &= ~(1ULL << slot);
    if (level == 0) {
      // The window is done: everything in it fires via the due buffer.
      base_tick_ = window_tick + 1;
      while (idx != kNil) {
        Entry& e = entries_[idx];
        const std::uint32_t next = e.next;
        // Entries are scattered across the slab; overlapping the next
        // line's fetch with this entry's handoff hides most of the miss.
        if (next != kNil) __builtin_prefetch(&entries_[next]);
        e.linked = false;
        --size_;
        push_due(idx, e.when_us, e.seq);
        idx = next;
      }
    } else {
      // Cascade: the wheel's floor advances to this window, so every entry
      // re-files at a strictly lower level (or the heap).
      if (base_tick_ < window_tick) base_tick_ = window_tick;
      while (idx != kNil) {
        Entry& e = entries_[idx];
        const std::uint32_t next = e.next;
        if (next != kNil) __builtin_prefetch(&entries_[next]);
        e.linked = false;
        --size_;
        if (!insert(idx, e.when_us, e.seq)) push_heap(idx);
        idx = next;
      }
    }
    recompute_next_start();
  }

private:
  struct Entry {
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::int64_t when_us = 0;
    std::uint64_t seq = 0;
    std::uint8_t level = 0;
    std::uint8_t slot = 0;
    bool linked = false;
  };

  static constexpr std::int64_t kNoWindow = 0x7fffffffffffffff;

  /// Locates the level and window tick of the earliest occupied window.
  void earliest(int& level, std::int64_t& window_tick) const;
  /// Refreshes the cached earliest-window bound from the occupancy masks.
  void recompute_next_start();

  std::int64_t base_tick_ = 0;  ///< first tick not yet drained
  std::int64_t next_start_us_ = kNoWindow;  ///< cached earliest-window start
  std::int64_t next_window_tick_ = 0;  ///< cached earliest window (unclamped)
  int next_level_ = 0;                 ///< cached earliest window's level
  std::size_t size_ = 0;
  std::array<std::uint64_t, kLevels> occupied_{};
  std::array<std::array<std::uint32_t, kSlotsPerLevel>, kLevels> heads_ =
      make_nil_heads();
  std::vector<Entry> entries_;

  static constexpr std::array<std::array<std::uint32_t, kSlotsPerLevel>,
                              kLevels>
  make_nil_heads() {
    std::array<std::array<std::uint32_t, kSlotsPerLevel>, kLevels> heads{};
    for (auto& level : heads) {
      for (auto& head : level) head = kNil;
    }
    return heads;
  }
};

}  // namespace cg::sim
