#include "jdl/parser.hpp"

#include "jdl/lexer.hpp"
#include "util/strings.hpp"

namespace cg::jdl {

namespace {

class Parser {
public:
  explicit Parser(std::vector<Token> tokens) : tokens_{std::move(tokens)} {}

  Expected<ClassAd> parse_document() {
    ClassAd ad;
    // Optional classad wrapper: [ a = 1; b = 2; ]
    const bool bracketed = peek().kind == TokenKind::kLBracket;
    if (bracketed) advance();
    while (peek().kind != TokenKind::kEnd &&
           !(bracketed && peek().kind == TokenKind::kRBracket)) {
      if (peek().kind != TokenKind::kIdent) {
        return error("expected attribute name");
      }
      const std::string name = advance().text;
      if (peek().kind != TokenKind::kAssign) {
        return error("expected '=' after attribute name");
      }
      advance();
      auto expr = parse_expr();
      if (!expr) return expr.error();
      ad.set(name, std::move(expr.value()));
      // Semicolons separate assignments; the final one is optional.
      if (peek().kind == TokenKind::kSemicolon) {
        advance();
      } else if (peek().kind != TokenKind::kEnd &&
                 !(bracketed && peek().kind == TokenKind::kRBracket)) {
        return error("expected ';' after attribute value");
      }
    }
    if (bracketed) {
      if (peek().kind != TokenKind::kRBracket) return error("expected ']'");
      advance();
      if (peek().kind != TokenKind::kEnd) return error("trailing input after ']'");
    }
    return ad;
  }

  Expected<ExprPtr> parse_single_expression() {
    auto expr = parse_expr();
    if (!expr) return expr;
    if (peek().kind == TokenKind::kSemicolon) advance();
    if (peek().kind != TokenKind::kEnd) return error("trailing input after expression");
    return expr;
  }

private:
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  [[nodiscard]] Error error(const std::string& what) const {
    const Token& t = peek();
    return make_error("jdl.parse",
                      what + " (got " + std::string{cg::jdl::to_string(t.kind)} +
                          " at line " + std::to_string(t.line) + ", column " +
                          std::to_string(t.column) + ")");
  }

  // Recursive descent burns one stack frame chain per nesting level; a hard
  // depth cap turns hostile inputs (thousands of nested parens or unary
  // operators) into a parse error instead of a stack overflow.
  static constexpr int kMaxDepth = 256;

  Expected<ExprPtr> parse_expr() {
    if (depth_ >= kMaxDepth) return error("expression nesting too deep");
    ++depth_;
    auto result = parse_ternary();
    --depth_;
    return result;
  }

  Expected<ExprPtr> parse_ternary() {
    auto cond = parse_or();
    if (!cond) return cond;
    if (peek().kind != TokenKind::kQuestion) return cond;
    advance();
    auto t = parse_expr();
    if (!t) return t;
    if (peek().kind != TokenKind::kColon) return error("expected ':' in ternary");
    advance();
    auto f = parse_expr();
    if (!f) return f;
    return make_ternary(std::move(cond.value()), std::move(t.value()),
                        std::move(f.value()));
  }

  Expected<ExprPtr> parse_or() {
    auto lhs = parse_and();
    if (!lhs) return lhs;
    while (peek().kind == TokenKind::kOrOr) {
      advance();
      auto rhs = parse_and();
      if (!rhs) return rhs;
      lhs = make_binary(BinaryOp::kOr, std::move(lhs.value()), std::move(rhs.value()));
    }
    return lhs;
  }

  Expected<ExprPtr> parse_and() {
    auto lhs = parse_comparison();
    if (!lhs) return lhs;
    while (peek().kind == TokenKind::kAndAnd) {
      advance();
      auto rhs = parse_comparison();
      if (!rhs) return rhs;
      lhs = make_binary(BinaryOp::kAnd, std::move(lhs.value()), std::move(rhs.value()));
    }
    return lhs;
  }

  Expected<ExprPtr> parse_comparison() {
    auto lhs = parse_additive();
    if (!lhs) return lhs;
    BinaryOp op{};
    switch (peek().kind) {
      case TokenKind::kEq: op = BinaryOp::kEq; break;
      case TokenKind::kNe: op = BinaryOp::kNe; break;
      case TokenKind::kLt: op = BinaryOp::kLt; break;
      case TokenKind::kLe: op = BinaryOp::kLe; break;
      case TokenKind::kGt: op = BinaryOp::kGt; break;
      case TokenKind::kGe: op = BinaryOp::kGe; break;
      default: return lhs;
    }
    advance();
    auto rhs = parse_additive();
    if (!rhs) return rhs;
    return make_binary(op, std::move(lhs.value()), std::move(rhs.value()));
  }

  Expected<ExprPtr> parse_additive() {
    auto lhs = parse_multiplicative();
    if (!lhs) return lhs;
    while (peek().kind == TokenKind::kPlus || peek().kind == TokenKind::kMinus) {
      const BinaryOp op =
          peek().kind == TokenKind::kPlus ? BinaryOp::kAdd : BinaryOp::kSub;
      advance();
      auto rhs = parse_multiplicative();
      if (!rhs) return rhs;
      lhs = make_binary(op, std::move(lhs.value()), std::move(rhs.value()));
    }
    return lhs;
  }

  Expected<ExprPtr> parse_multiplicative() {
    auto lhs = parse_unary();
    if (!lhs) return lhs;
    while (true) {
      BinaryOp op{};
      switch (peek().kind) {
        case TokenKind::kStar: op = BinaryOp::kMul; break;
        case TokenKind::kSlash: op = BinaryOp::kDiv; break;
        case TokenKind::kPercent: op = BinaryOp::kMod; break;
        default: return lhs;
      }
      advance();
      auto rhs = parse_unary();
      if (!rhs) return rhs;
      lhs = make_binary(op, std::move(lhs.value()), std::move(rhs.value()));
    }
  }

  Expected<ExprPtr> parse_unary() {
    if (depth_ >= kMaxDepth) return error("expression nesting too deep");
    ++depth_;
    auto result = parse_unary_impl();
    --depth_;
    return result;
  }

  Expected<ExprPtr> parse_unary_impl() {
    if (peek().kind == TokenKind::kBang) {
      advance();
      auto operand = parse_unary();
      if (!operand) return operand;
      return make_unary(UnaryOp::kNot, std::move(operand.value()));
    }
    if (peek().kind == TokenKind::kMinus) {
      advance();
      auto operand = parse_unary();
      if (!operand) return operand;
      return make_unary(UnaryOp::kNeg, std::move(operand.value()));
    }
    return parse_primary();
  }

  Expected<ExprPtr> parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::kInt: {
        advance();
        return make_literal(Value::integer(t.int_value));
      }
      case TokenKind::kReal: {
        advance();
        return make_literal(Value::real(t.real_value));
      }
      case TokenKind::kString: {
        advance();
        return make_literal(Value::string(t.text));
      }
      case TokenKind::kBoolTrue:
        advance();
        return make_literal(Value::boolean(true));
      case TokenKind::kBoolFalse:
        advance();
        return make_literal(Value::boolean(false));
      case TokenKind::kUndefined:
        advance();
        return make_literal(Value::undefined());
      case TokenKind::kLParen: {
        advance();
        auto inner = parse_expr();
        if (!inner) return inner;
        if (peek().kind != TokenKind::kRParen) return error("expected ')'");
        advance();
        return inner;
      }
      case TokenKind::kLBrace: {
        advance();
        std::vector<ExprPtr> items;
        if (peek().kind != TokenKind::kRBrace) {
          while (true) {
            auto item = parse_expr();
            if (!item) return item;
            items.push_back(std::move(item.value()));
            if (peek().kind == TokenKind::kComma) {
              advance();
              continue;
            }
            break;
          }
        }
        if (peek().kind != TokenKind::kRBrace) return error("expected '}' after list");
        advance();
        return make_list(std::move(items));
      }
      case TokenKind::kIdent:
        return parse_ident();
      default:
        return error("expected expression");
    }
  }

  Expected<ExprPtr> parse_ident() {
    const std::string first = advance().text;
    const std::string lowered = to_lower(first);

    // Scoped references: self.X / other.X
    if ((lowered == "self" || lowered == "other") &&
        peek().kind == TokenKind::kDot) {
      advance();
      if (peek().kind != TokenKind::kIdent) {
        return error("expected attribute name after scope");
      }
      const std::string attr = advance().text;
      return make_attr_ref(lowered == "other" ? Scope::kOther : Scope::kSelf,
                           /*explicit_scope=*/true, attr);
    }
    // Function call.
    if (peek().kind == TokenKind::kLParen) {
      advance();
      std::vector<ExprPtr> args;
      if (peek().kind != TokenKind::kRParen) {
        while (true) {
          auto arg = parse_expr();
          if (!arg) return arg;
          args.push_back(std::move(arg.value()));
          if (peek().kind == TokenKind::kComma) {
            advance();
            continue;
          }
          break;
        }
      }
      if (peek().kind != TokenKind::kRParen) return error("expected ')' after arguments");
      advance();
      return make_call(lowered, std::move(args));
    }
    // Bare attribute reference (self scope).
    return make_attr_ref(Scope::kSelf, /*explicit_scope=*/false, first);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Expected<ClassAd> parse_classad(std::string_view source) {
  auto tokens = tokenize(source);
  if (!tokens) return tokens.error();
  Parser parser{std::move(tokens.value())};
  return parser.parse_document();
}

Expected<ExprPtr> parse_expression(std::string_view source) {
  auto tokens = tokenize(source);
  if (!tokens) return tokens.error();
  Parser parser{std::move(tokens.value())};
  return parser.parse_single_expression();
}

}  // namespace cg::jdl
