#include "interpose/spool_file.hpp"

#include <cstdio>
#include <cstring>

namespace cg::interpose {

namespace {

std::string cursor_path(const std::string& path) {
  return path + ".cursor";
}

long load_cursor(const std::string& path) {
  std::FILE* f = std::fopen(cursor_path(path).c_str(), "rb");
  if (f == nullptr) return 0;
  long value = 0;
  if (std::fscanf(f, "%ld", &value) != 1 || value < 0) value = 0;
  std::fclose(f);
  return value;
}

}  // namespace

Expected<SpoolFile> SpoolFile::open(std::string path) {
  // "a+b": reads anywhere, writes always append.
  std::FILE* file = std::fopen(path.c_str(), "a+b");
  if (file == nullptr) {
    return make_error("spool.open", path + ": " + std::strerror(errno));
  }
  const long cursor = load_cursor(path);
  return SpoolFile{std::move(path), file, cursor};
}

SpoolFile::SpoolFile(std::string path, std::FILE* file, long cursor)
    : path_{std::move(path)}, file_{file}, cursor_{cursor} {}

SpoolFile::SpoolFile(SpoolFile&& other) noexcept {
  const std::lock_guard lock{other.mutex_};
  path_ = std::move(other.path_);
  file_ = other.file_;
  cursor_ = other.cursor_;
  last_peek_size_ = other.last_peek_size_;
  fail_appends_ = other.fail_appends_;
  other.file_ = nullptr;
}

SpoolFile& SpoolFile::operator=(SpoolFile&& other) noexcept {
  if (this != &other) {
    close();
    const std::lock_guard lock{other.mutex_};
    path_ = std::move(other.path_);
    file_ = other.file_;
    cursor_ = other.cursor_;
    last_peek_size_ = other.last_peek_size_;
    fail_appends_ = other.fail_appends_;
    other.file_ = nullptr;
  }
  return *this;
}

SpoolFile::~SpoolFile() {
  close();
}

void SpoolFile::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status SpoolFile::append(FrameType type, std::uint32_t rank,
                         std::string_view payload) {
  const std::lock_guard lock{mutex_};
  if (file_ == nullptr) return make_error("spool.append", "spool closed");
  if (fail_appends_) {
    return make_error("spool.append", "injected I/O failure");
  }
  char header[kFrameHeaderBytes];
  encode_frame_header(header, type, rank, payload.size());
  if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header)) {
    return make_error("spool.append", std::strerror(errno));
  }
  if (!payload.empty() &&
      std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size()) {
    return make_error("spool.append", std::strerror(errno));
  }
  if (std::fflush(file_) != 0) {
    return make_error("spool.append", std::strerror(errno));
  }
  return Status::ok_status();
}

std::optional<Frame> SpoolFile::peek() {
  const std::lock_guard lock{mutex_};
  if (file_ == nullptr) return std::nullopt;
  std::fflush(file_);
  if (std::fseek(file_, cursor_, SEEK_SET) != 0) return std::nullopt;

  char header[kFrameHeaderBytes];
  if (std::fread(header, 1, sizeof(header), file_) != sizeof(header)) {
    std::fseek(file_, 0, SEEK_END);
    return std::nullopt;
  }
  FrameDecoder decoder;
  decoder.feed(header, sizeof(header));
  // Header alone never yields a frame unless the payload is empty; decode by
  // reading the declared payload length manually.
  const auto length =
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[5])) << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[6])) << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(header[7])) << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(header[8]));
  if (length > kMaxFramePayload) {
    std::fseek(file_, 0, SEEK_END);
    return std::nullopt;
  }
  std::string payload(length, '\0');
  if (length > 0 && std::fread(payload.data(), 1, length, file_) != length) {
    std::fseek(file_, 0, SEEK_END);
    return std::nullopt;
  }
  std::fseek(file_, 0, SEEK_END);

  decoder.feed(payload.data(), payload.size());
  std::optional<Frame> frame;
  try {
    frame = decoder.next();
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (frame) {
    last_peek_size_ = static_cast<long>(kFrameHeaderBytes + length);
  }
  return frame;
}

Status SpoolFile::advance() {
  const std::lock_guard lock{mutex_};
  if (last_peek_size_ <= 0) {
    return make_error("spool.advance", "advance without a successful peek");
  }
  cursor_ += last_peek_size_;
  last_peek_size_ = 0;
  persist_cursor();
  return Status::ok_status();
}

void SpoolFile::set_fail_appends(bool fail) {
  const std::lock_guard lock{mutex_};
  fail_appends_ = fail;
}

std::size_t SpoolFile::pending() const {
  std::size_t count = 0;
  long saved_cursor;
  {
    const std::lock_guard lock{mutex_};
    saved_cursor = cursor_;
  }
  // Walk the file from the cursor, counting frames.
  long walk = saved_cursor;
  while (true) {
    const std::lock_guard lock{mutex_};
    if (file_ == nullptr) break;
    std::fflush(file_);
    if (std::fseek(file_, walk, SEEK_SET) != 0) break;
    char header[kFrameHeaderBytes];
    if (std::fread(header, 1, sizeof(header), file_) != sizeof(header)) {
      std::fseek(file_, 0, SEEK_END);
      break;
    }
    const auto length =
        (static_cast<std::uint32_t>(static_cast<unsigned char>(header[5])) << 24) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(header[6])) << 16) |
        (static_cast<std::uint32_t>(static_cast<unsigned char>(header[7])) << 8) |
        static_cast<std::uint32_t>(static_cast<unsigned char>(header[8]));
    std::fseek(file_, 0, SEEK_END);
    walk += static_cast<long>(kFrameHeaderBytes + length);
    ++count;
  }
  return count;
}

void SpoolFile::persist_cursor() {
  std::FILE* f = std::fopen(cursor_path(path_).c_str(), "wb");
  if (f == nullptr) return;
  std::fprintf(f, "%ld", cursor_);
  std::fclose(f);
}

void SpoolFile::remove_files() {
  const std::lock_guard lock{mutex_};
  close();
  std::remove(path_.c_str());
  std::remove(cursor_path(path_).c_str());
}

}  // namespace cg::interpose
